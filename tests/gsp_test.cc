#include "algo/gsp.h"

#include <gtest/gtest.h>

#include "miner/enumerate.h"
#include "test_util.h"

namespace lash {
namespace {

TEST(GspTest, ReproducesPaperExample) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  GspStats stats;
  PatternMap mined = RunGspExtended(ex.pre, params, &stats);
  EXPECT_EQ(testing::Sorted(mined), testing::Sorted(ex.ExpectedOutput()));
  EXPECT_GT(stats.candidates, mined.size());
  EXPECT_GE(stats.database_scans, 2u);
}

TEST(GspTest, ExtendedDatabaseInflatesWithDepth) {
  // The core inefficiency the paper calls out: the extended database grows
  // by roughly the hierarchy depth.
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  GspStats stats;
  RunGspExtended(ex.pre, params, &stats);
  size_t raw_items = 0;
  for (SequenceView t : ex.pre.database) raw_items += t.size();
  EXPECT_GT(stats.extended_items, raw_items);
}

TEST(GspTest, AgreesWithEnumerationOnRandomData) {
  Rng rng(424242);
  for (int trial = 0; trial < 12; ++trial) {
    GsmParams params{.sigma = 2,
                     .gamma = static_cast<uint32_t>(rng.Uniform(3)),
                     .lambda = static_cast<uint32_t>(2 + rng.Uniform(3))};
    const size_t n = 4 + rng.Uniform(6);
    Hierarchy h = testing::RandomRankHierarchy(n, 0.4, &rng);
    Database db = testing::RandomDatabase(14, 7, n, &rng);
    PreprocessResult pre = Preprocess(db, h);
    PatternMap expected =
        MineByEnumeration(pre.database, pre.hierarchy, params);
    PatternMap mined = RunGspExtended(pre, params);
    ASSERT_EQ(testing::Sorted(mined), testing::Sorted(expected))
        << "trial " << trial;
  }
}

TEST(GspTest, EmptyWhenNothingFrequent) {
  Hierarchy h = Hierarchy::Flat(3);
  Database db = {{1, 2}, {2, 3}};
  PreprocessResult pre = Preprocess(db, h);
  GsmParams params{.sigma = 5, .gamma = 0, .lambda = 3};
  EXPECT_TRUE(RunGspExtended(pre, params).empty());
}

}  // namespace
}  // namespace lash
