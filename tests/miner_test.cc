#include "miner/miner.h"

#include <gtest/gtest.h>

#include "core/rewrite.h"
#include "miner/enumerate.h"
#include "test_util.h"

namespace lash {
namespace {

// Builds the aggregated partition P_w from a database exactly as LASH's map
// + combine phases would (rewrite, drop empties, merge duplicates).
Partition BuildPartition(const FlatDatabase& db, const Hierarchy& h,
                         const GsmParams& params, ItemId pivot) {
  Rewriter rewriter(&h, params.gamma, params.lambda);
  PatternMap aggregated;
  for (SequenceView t : db) {
    Sequence rewritten = rewriter.Rewrite(t, pivot);
    if (!rewritten.empty()) ++aggregated[rewritten];
  }
  Partition partition;
  for (auto& [seq, weight] : aggregated) partition.Add(seq, weight);
  return partition;
}

class MinerPaperTest : public ::testing::TestWithParam<MinerKind> {
 protected:
  testing::PaperExample ex_;
};

TEST_P(MinerPaperTest, MinesPaperPartitions) {
  // Mining each of the five partitions P_a .. P_D must reproduce exactly
  // the per-partition outputs of Fig. 2.
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  const Hierarchy& h = ex_.pre.hierarchy;
  auto miner = MakeLocalMiner(GetParam(), &h, params);

  PatternMap all;
  for (ItemId pivot = 1; pivot <= 5; ++pivot) {
    Partition partition = BuildPartition(ex_.pre.database, h, params, pivot);
    MinerStats stats;
    PatternMap mined = miner->Mine(partition, pivot, &stats);
    for (const auto& [seq, freq] : mined) {
      // Every mined sequence is a pivot sequence of this partition.
      EXPECT_EQ(*std::max_element(seq.begin(), seq.end()), pivot);
      EXPECT_GE(seq.size(), 2u);
      EXPECT_LE(seq.size(), params.lambda);
      all.emplace(seq, freq);
    }
  }
  EXPECT_EQ(testing::Sorted(all), testing::Sorted(ex_.ExpectedOutput()));
}

TEST_P(MinerPaperTest, PartitionPdOfSection5) {
  // The partition of Eq. (4): P_D = {aDDa, cab1D, ca DB, BaaDb1c} with
  // sigma=2, gamma=1, lambda=4. Fig. 3 shows the frequent pivot sequences:
  // DB, aD, aDB, caD, caDB (and their discovery order).
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  const Hierarchy& h = ex_.pre.hierarchy;
  ItemId a = ex_.Rank("a"), b1 = ex_.Rank("b1"), B = ex_.Rank("B"),
         c = ex_.Rank("c"), D = ex_.Rank("D");
  Partition partition;
  partition.Add({a, D, D, a}, 1);
  partition.Add({c, a, b1, D}, 1);
  partition.Add({c, a, kBlank, D, B}, 1);
  partition.Add({B, a, a, D, b1, c}, 1);

  auto miner = MakeLocalMiner(GetParam(), &h, params);
  MinerStats stats;
  PatternMap mined = miner->Mine(partition, D, &stats);

  // Frequent pivot sequences (solid nodes of Fig. 3). caDB is *explored*
  // (RE 7) but has support 1 and is not output.
  PatternMap expected;
  expected.emplace(Sequence{D, B}, 2);
  expected.emplace(Sequence{a, D}, 4);
  expected.emplace(Sequence{a, D, B}, 2);
  expected.emplace(Sequence{c, a, D}, 2);
  EXPECT_EQ(testing::Sorted(mined), testing::Sorted(expected));
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerPaperTest,
                         ::testing::Values(MinerKind::kNaive, MinerKind::kBfs,
                                           MinerKind::kDfs, MinerKind::kPsm,
                                           MinerKind::kPsmIndex),
                         [](const auto& info) {
                           switch (info.param) {
                             case MinerKind::kNaive: return "Naive";
                             case MinerKind::kBfs: return "BFS";
                             case MinerKind::kDfs: return "DFS";
                             case MinerKind::kPsm: return "PSM";
                             case MinerKind::kPsmIndex: return "PSMIndex";
                           }
                           return "Unknown";
                         });

// Randomized agreement: every miner must produce exactly the pivot
// sequences of the reference enumerator, on every partition.
struct AgreementParam {
  MinerKind kind;
  uint32_t gamma;
  uint32_t lambda;
};

class MinerAgreementTest : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(MinerAgreementTest, AgreesWithEnumerationOnRandomPartitions) {
  const AgreementParam param = GetParam();
  GsmParams params{.sigma = 2, .gamma = param.gamma, .lambda = param.lambda};
  Rng rng(777 + param.gamma * 101 + param.lambda * 7 +
          static_cast<uint32_t>(param.kind));
  for (int trial = 0; trial < 40; ++trial) {
    const size_t num_items = 3 + rng.Uniform(7);
    Hierarchy h = testing::RandomRankHierarchy(num_items, 0.4, &rng);
    FlatDatabase db = FlatDatabase::FromDatabase(
        testing::RandomDatabase(12, 9, num_items, &rng));
    auto miner = MakeLocalMiner(param.kind, &h, params);
    for (ItemId pivot = 1; pivot <= num_items; ++pivot) {
      Partition partition = BuildPartition(db, h, params, pivot);
      PatternMap expected =
          MinePartitionByEnumeration(partition, h, params, pivot);
      MinerStats stats;
      PatternMap mined = miner->Mine(partition, pivot, &stats);
      ASSERT_EQ(testing::Sorted(mined), testing::Sorted(expected))
          << "miner=" << miner->name() << " pivot=" << pivot
          << " trial=" << trial;
    }
  }
}

std::vector<AgreementParam> AgreementGrid() {
  std::vector<AgreementParam> grid;
  for (MinerKind kind : {MinerKind::kBfs, MinerKind::kDfs, MinerKind::kPsm,
                         MinerKind::kPsmIndex}) {
    for (uint32_t gamma : {0u, 1u, 2u}) {
      for (uint32_t lambda : {2u, 3u, 5u}) {
        grid.push_back({kind, gamma, lambda});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, MinerAgreementTest,
                         ::testing::ValuesIn(AgreementGrid()));

TEST(MinerStatsTest, PsmExploresFewerCandidatesThanDfs) {
  // Sec. 5.2 "Analysis": PSM's search space is a strict subset — on the
  // P_D example the paper reports 13 (PSM) vs 37 (DFS) explored patterns.
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  const Hierarchy& h = ex.pre.hierarchy;
  ItemId a = ex.Rank("a"), b1 = ex.Rank("b1"), B = ex.Rank("B"),
         c = ex.Rank("c"), D = ex.Rank("D");
  Partition partition;
  partition.Add({a, D, D, a}, 1);
  partition.Add({c, a, b1, D}, 1);
  partition.Add({c, a, kBlank, D, B}, 1);
  partition.Add({B, a, a, D, b1, c}, 1);

  MinerStats dfs_stats, psm_stats, psm_index_stats;
  MakeLocalMiner(MinerKind::kDfs, &h, params)->Mine(partition, D, &dfs_stats);
  MakeLocalMiner(MinerKind::kPsm, &h, params)->Mine(partition, D, &psm_stats);
  MakeLocalMiner(MinerKind::kPsmIndex, &h, params)
      ->Mine(partition, D, &psm_index_stats);
  // Sec. 5.2: DFS evaluates 37 patterns (5 items + 17 2-seqs + 13 3-seqs +
  // 2 4-seqs) — we match that exactly. For PSM we evaluate 18 candidates
  // (RE1: Da,Db1,DB,Dc; RE2: DBc; LE3: DD,aD,b1D,BD; RE4: aDa,aDB,aDb1,aDc;
  // RE5: aDBc; LE6: caD,aaD,BaD; RE7: caDB) versus the paper's narration of
  // "13 solid nodes": the index prunes aDa/aDb1/aDc (R_aD={B}) and skips
  // RE5 entirely (R_DB=∅), leaving 14 — one off the paper's figure count,
  // which does not resolve every LE6 node in the text. The invariant that
  // matters (and that Fig. 4(d) measures) is the strict ordering below.
  EXPECT_EQ(dfs_stats.candidates, 37u);
  EXPECT_EQ(psm_stats.candidates, 18u);
  EXPECT_EQ(psm_index_stats.candidates, 14u);
  EXPECT_LT(psm_index_stats.candidates, psm_stats.candidates);
  EXPECT_LT(psm_stats.candidates, dfs_stats.candidates);
  EXPECT_EQ(psm_stats.outputs, 4u);
  EXPECT_EQ(psm_index_stats.outputs, 4u);
}

TEST(MinerRawPartitionTest, PsmHandlesNonGeneralizedPartitions) {
  // Under RewriteLevel::kNone a partition holds the *raw* sequences, where
  // the pivot may occur only as a descendant and items above the pivot
  // survive. All miners must still produce exactly the pivot sequences.
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  Rng rng(90210);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t num_items = 4 + rng.Uniform(6);
    Hierarchy h = testing::RandomRankHierarchy(num_items, 0.4, &rng);
    Database db = testing::RandomDatabase(12, 8, num_items, &rng);
    for (ItemId pivot = 1; pivot <= num_items; ++pivot) {
      Partition partition;
      for (const Sequence& t : db) partition.Add(t, 1);
      PatternMap expected =
          MinePartitionByEnumeration(partition, h, params, pivot);
      for (MinerKind kind : {MinerKind::kBfs, MinerKind::kDfs,
                             MinerKind::kPsm, MinerKind::kPsmIndex}) {
        auto miner = MakeLocalMiner(kind, &h, params);
        PatternMap mined = miner->Mine(partition, pivot, nullptr);
        ASSERT_EQ(testing::Sorted(mined), testing::Sorted(expected))
            << "miner=" << miner->name() << " pivot=" << pivot
            << " trial=" << trial;
      }
    }
  }
}

TEST(MinerFactoryTest, ParseMinerKind) {
  EXPECT_EQ(ParseMinerKind("psm"), MinerKind::kPsm);
  EXPECT_EQ(ParseMinerKind("PSM+Index"), MinerKind::kPsmIndex);
  EXPECT_EQ(ParseMinerKind("BFS"), MinerKind::kBfs);
  EXPECT_EQ(ParseMinerKind("dfs"), MinerKind::kDfs);
  EXPECT_EQ(ParseMinerKind("Naive"), MinerKind::kNaive);
  EXPECT_THROW(ParseMinerKind("spade"), std::invalid_argument);
}

}  // namespace
}  // namespace lash
