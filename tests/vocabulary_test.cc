#include "core/vocabulary.h"

#include <gtest/gtest.h>

#include "core/database.h"

namespace lash {
namespace {

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary vocab;
  ItemId a = vocab.AddItem("alpha");
  ItemId b = vocab.AddItem("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.AddItem("alpha"), a);  // Idempotent.
  EXPECT_EQ(vocab.Lookup("alpha"), a);
  EXPECT_EQ(vocab.Lookup("missing"), kInvalidItem);
  EXPECT_EQ(vocab.Name(a), "alpha");
  EXPECT_EQ(vocab.NumItems(), 2u);
}

TEST(VocabularyTest, IdsStartAtOne) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.AddItem("first"), 1u);
  EXPECT_EQ(vocab.NumItems(), 1u);
}

TEST(VocabularyTest, ParentRegistration) {
  Vocabulary vocab;
  ItemId child = vocab.AddItemWithParent("child", "parent");
  EXPECT_EQ(vocab.Parent(child), vocab.Lookup("parent"));
  EXPECT_EQ(vocab.Parent(vocab.Lookup("parent")), kInvalidItem);
  // Re-registering the same relation is fine.
  EXPECT_EQ(vocab.AddItemWithParent("child", "parent"), child);
}

TEST(VocabularyTest, ConflictingParentRejected) {
  Vocabulary vocab;
  vocab.AddItemWithParent("child", "parent1");
  EXPECT_THROW(vocab.AddItemWithParent("child", "parent2"),
               std::invalid_argument);
}

TEST(VocabularyTest, SelfParentRejected) {
  Vocabulary vocab;
  EXPECT_THROW(vocab.AddItemWithParent("x", "x"), std::invalid_argument);
}

TEST(VocabularyTest, ParentDeclaredAfterChildUse) {
  Vocabulary vocab;
  vocab.AddItem("leaf");
  vocab.AddItemWithParent("leaf", "root");
  Hierarchy h = vocab.BuildHierarchy();
  EXPECT_TRUE(h.GeneralizesTo(vocab.Lookup("leaf"), vocab.Lookup("root")));
}

TEST(VocabularyTest, BuildHierarchyDetectsCycles) {
  Vocabulary vocab;
  vocab.AddItemWithParent("a", "b");
  vocab.AddItemWithParent("b", "a");
  EXPECT_THROW(vocab.BuildHierarchy(), std::invalid_argument);
}

TEST(DatabaseStatsTest, ComputesTable1Fields) {
  Database db = {{1, 2, 3}, {1}, {2, 2, 2, 2}};
  DatasetStats stats = ComputeStats(db);
  EXPECT_EQ(stats.num_sequences, 3u);
  EXPECT_EQ(stats.total_items, 8u);
  EXPECT_EQ(stats.max_length, 4u);
  EXPECT_EQ(stats.unique_items, 3u);
  EXPECT_NEAR(stats.avg_length, 8.0 / 3, 1e-9);
  // The flat-form overload agrees field for field.
  EXPECT_EQ(ComputeStats(FlatDatabase::FromDatabase(db)), stats);
}

TEST(DatabaseStatsTest, EmptyDatabase) {
  DatasetStats stats = ComputeStats(Database{});
  EXPECT_EQ(stats.num_sequences, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_length, 0.0);
}

}  // namespace
}  // namespace lash
