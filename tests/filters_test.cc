#include "stats/filters.h"

#include <gtest/gtest.h>

#include "core/match.h"
#include "miner/enumerate.h"
#include "test_util.h"

namespace lash {
namespace {

TEST(FiltersTest, PaperExampleMaximal) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap output =
      MineByEnumeration(ex.pre.database, ex.pre.hierarchy, params);
  PatternMap maximal = FilterMaximal(output, ex.pre.hierarchy);
  // Hand-derived (see stats_test): {aa, ac, ab1, b1a, aBc, b1D}.
  PatternMap expected;
  auto add = [&](std::vector<std::string> names, Frequency f) {
    expected.emplace(ex.RankSeq(names), f);
  };
  add({"a", "a"}, 2);
  add({"a", "c"}, 2);
  add({"a", "b1"}, 2);
  add({"b1", "a"}, 2);
  add({"a", "B", "c"}, 2);
  add({"b1", "D"}, 2);
  EXPECT_EQ(testing::Sorted(maximal), testing::Sorted(expected));
}

TEST(FiltersTest, PaperExampleClosed) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap output =
      MineByEnumeration(ex.pre.database, ex.pre.hierarchy, params);
  PatternMap closed = FilterClosed(output, ex.pre.hierarchy);
  // Non-closed: Ba (b1a, equal freq), Bc (aBc), BD (b1D). aB stays: its
  // frequency 3 differs from every supersequence's.
  EXPECT_EQ(closed.size(), 7u);
  EXPECT_TRUE(closed.contains(ex.RankSeq({"a", "B"})));
  EXPECT_FALSE(closed.contains(ex.RankSeq({"B", "a"})));
  EXPECT_FALSE(closed.contains(ex.RankSeq({"B", "c"})));
  EXPECT_FALSE(closed.contains(ex.RankSeq({"B", "D"})));
}

TEST(FiltersTest, MaximalSubsetOfClosed) {
  // Every maximal pattern is closed (no frequent supersequence at all, so
  // in particular none with equal frequency).
  Rng rng(4711);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 4 + rng.Uniform(6);
    Hierarchy h = testing::RandomRankHierarchy(n, 0.4, &rng);
    Database db = testing::RandomDatabase(12, 8, n, &rng);
    PatternMap output = MineByEnumeration(db, h, params);
    PatternMap maximal = FilterMaximal(output, h);
    PatternMap closed = FilterClosed(output, h);
    for (const auto& [s, freq] : maximal) {
      EXPECT_TRUE(closed.contains(s)) << "trial " << trial;
    }
  }
}

TEST(FiltersTest, MaximalAgainstBruteForce) {
  // Brute force: S is maximal iff no other output pattern S' has S ⊑0 S'.
  Rng rng(1213);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 3 + rng.Uniform(5);
    Hierarchy h = testing::RandomRankHierarchy(n, 0.4, &rng);
    Database db = testing::RandomDatabase(10, 7, n, &rng);
    PatternMap output = MineByEnumeration(db, h, params);
    PatternMap maximal = FilterMaximal(output, h);
    for (const auto& [s, freq] : output) {
      bool has_super = false;
      for (const auto& [other, f2] : output) {
        if (other != s && Matches(s, other, h, 0)) {
          has_super = true;
          break;
        }
      }
      EXPECT_EQ(!has_super, maximal.contains(s))
          << "trial " << trial << " len " << s.size();
    }
  }
}

TEST(FiltersTest, ClosedAgainstBruteForce) {
  Rng rng(3141);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 3 + rng.Uniform(5);
    Hierarchy h = testing::RandomRankHierarchy(n, 0.4, &rng);
    Database db = testing::RandomDatabase(10, 7, n, &rng);
    PatternMap output = MineByEnumeration(db, h, params);
    PatternMap closed = FilterClosed(output, h);
    for (const auto& [s, freq] : output) {
      bool has_equal_super = false;
      for (const auto& [other, f2] : output) {
        if (other != s && f2 == freq && Matches(s, other, h, 0)) {
          has_equal_super = true;
          break;
        }
      }
      EXPECT_EQ(!has_equal_super, closed.contains(s)) << "trial " << trial;
    }
  }
}

TEST(FiltersTest, TopKOrderingAndTies) {
  PatternMap output;
  output.emplace(Sequence{1, 2}, 5);
  output.emplace(Sequence{1, 3}, 9);
  output.emplace(Sequence{2, 2}, 5);
  output.emplace(Sequence{3, 1}, 1);
  auto top = TopK(output, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, (Sequence{1, 3}));
  EXPECT_EQ(top[1].first, (Sequence{1, 2}));  // Tie broken lexicographically.
  EXPECT_EQ(top[2].first, (Sequence{2, 2}));
  EXPECT_EQ(TopK(output, 100).size(), 4u);
  EXPECT_TRUE(TopK({}, 5).empty());
}

}  // namespace
}  // namespace lash
