#include "core/hierarchy.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.h"

namespace lash {
namespace {

TEST(HierarchyTest, FlatHierarchy) {
  Hierarchy h = Hierarchy::Flat(5);
  EXPECT_EQ(h.NumItems(), 5u);
  EXPECT_EQ(h.MaxDepth(), 0);
  EXPECT_EQ(h.NumLevels(), 1);
  EXPECT_EQ(h.NumRoots(), 5u);
  EXPECT_EQ(h.NumLeaves(), 5u);
  EXPECT_EQ(h.NumIntermediate(), 0u);
  for (ItemId w = 1; w <= 5; ++w) {
    EXPECT_TRUE(h.IsRoot(w));
    EXPECT_TRUE(h.IsLeaf(w));
    EXPECT_TRUE(h.GeneralizesTo(w, w));
  }
  EXPECT_FALSE(h.GeneralizesTo(1, 2));
}

TEST(HierarchyTest, ChainDepths) {
  // 1 <- 2 <- 3 <- 4 (4 most specific).
  Hierarchy h({kInvalidItem, kInvalidItem, 1, 2, 3});
  EXPECT_EQ(h.Depth(1), 0);
  EXPECT_EQ(h.Depth(4), 3);
  EXPECT_EQ(h.MaxDepth(), 3);
  EXPECT_EQ(h.NumLevels(), 4);
  EXPECT_TRUE(h.GeneralizesTo(4, 1));
  EXPECT_TRUE(h.GeneralizesTo(4, 3));
  EXPECT_FALSE(h.GeneralizesTo(1, 4));
  EXPECT_TRUE(h.IsRankMonotone());
  EXPECT_EQ(h.NumLeaves(), 1u);
  EXPECT_EQ(h.NumRoots(), 1u);
  EXPECT_EQ(h.NumIntermediate(), 2u);
}

TEST(HierarchyTest, ForestStatistics) {
  // Roots 1, 2; children of 1: 3, 4; child of 2: 5; child of 3: 6.
  Hierarchy h({kInvalidItem, kInvalidItem, kInvalidItem, 1, 1, 2, 3});
  EXPECT_EQ(h.NumRoots(), 2u);
  EXPECT_EQ(h.NumLeaves(), 3u);  // 4, 5, 6.
  EXPECT_EQ(h.NumIntermediate(), 1u);  // 3.
  EXPECT_DOUBLE_EQ(h.AvgFanOut(), 4.0 / 3.0);  // 1->2, 2->1, 3->1.
  EXPECT_EQ(h.MaxFanOut(), 2u);
}

TEST(HierarchyTest, RejectsCycle) {
  EXPECT_THROW(Hierarchy({kInvalidItem, 2, 1}), std::invalid_argument);
}

TEST(HierarchyTest, RejectsSelfParent) {
  EXPECT_THROW(Hierarchy({kInvalidItem, 1}), std::invalid_argument);
}

TEST(HierarchyTest, RejectsOutOfRangeParent) {
  EXPECT_THROW(Hierarchy({kInvalidItem, 9}), std::invalid_argument);
}

TEST(HierarchyTest, NonMonotoneDetected) {
  // 1's parent is 2: valid forest, but not rank-monotone.
  Hierarchy h({kInvalidItem, 2, kInvalidItem});
  EXPECT_FALSE(h.IsRankMonotone());
}

TEST(HierarchyTest, AncestorIterationOrder) {
  Hierarchy h({kInvalidItem, kInvalidItem, 1, 2});
  std::vector<ItemId> chain;
  h.ForEachAncestorOrSelf(3, [&](ItemId a) { chain.push_back(a); });
  EXPECT_EQ(chain, (std::vector<ItemId>{3, 2, 1}));
}

TEST(HierarchyTest, RandomRankHierarchiesAreMonotone) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Hierarchy h = testing::RandomRankHierarchy(30, 0.3, &rng);
    EXPECT_TRUE(h.IsRankMonotone());
    EXPECT_EQ(h.NumItems(), 30u);
  }
}

TEST(HierarchyTest, AncestorSpanOnFlatHierarchy) {
  Hierarchy h = Hierarchy::Flat(4);
  for (ItemId w = 1; w <= 4; ++w) {
    auto span = h.AncestorSpan(w);
    ASSERT_EQ(span.size(), 1u);
    EXPECT_EQ(span[0], w);
  }
}

TEST(HierarchyTest, AncestorSpanOnChain) {
  // 1 <- 2 <- 3 <- 4.
  Hierarchy h({kInvalidItem, kInvalidItem, 1, 2, 3});
  auto span = h.AncestorSpan(4);
  EXPECT_EQ(std::vector<ItemId>(span.begin(), span.end()),
            (std::vector<ItemId>{4, 3, 2, 1}));
  EXPECT_EQ(h.AncestorSpan(1).size(), 1u);
}

TEST(HierarchyTest, AncestorSpanOnForestMatchesParentWalk) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    Hierarchy h = testing::RandomRankHierarchy(40, 0.25, &rng);
    for (ItemId w = 1; w <= 40; ++w) {
      std::vector<ItemId> walked;
      for (ItemId a = w; a != kInvalidItem; a = h.Parent(a)) walked.push_back(a);
      auto span = h.AncestorSpan(w);
      ASSERT_EQ(std::vector<ItemId>(span.begin(), span.end()), walked)
          << "item " << w;
      ASSERT_EQ(span.size(), static_cast<size_t>(h.Depth(w)) + 1);
    }
  }
}

TEST(HierarchyTest, EulerIntervalsMatchAncestorWalk) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 25;
    // Mix of shapes: flat, chains, bushy forests.
    double root_prob = trial % 3 == 0 ? 1.0 : (trial % 3 == 1 ? 0.05 : 0.4);
    Hierarchy h = testing::RandomRankHierarchy(n, root_prob, &rng);
    for (ItemId w = 1; w <= n; ++w) {
      // Reference: the ancestor-or-self set by explicit parent walk.
      std::vector<bool> is_anc(n + 1, false);
      for (ItemId a = w; a != kInvalidItem; a = h.Parent(a)) is_anc[a] = true;
      for (ItemId u = 1; u <= n; ++u) {
        ASSERT_EQ(h.GeneralizesTo(w, u), is_anc[u])
            << "w=" << w << " u=" << u;
        // The interval labels themselves nest exactly for ancestors.
        ASSERT_EQ(h.Tin(u) <= h.Tin(w) && h.Tin(w) < h.Tout(u), is_anc[u]);
      }
    }
  }
}

TEST(HierarchyTest, GeneralizesToRejectsInvalidIds) {
  Hierarchy h({kInvalidItem, kInvalidItem, 1});
  EXPECT_FALSE(h.GeneralizesTo(2, kInvalidItem));
  EXPECT_FALSE(h.GeneralizesTo(2, 99));
  EXPECT_FALSE(h.GeneralizesTo(kBlank, 1));
  EXPECT_TRUE(h.GeneralizesTo(kBlank, kBlank));  // Degenerate w == anc case.
}

TEST(HierarchyTest, PaperExampleStructure) {
  testing::PaperExample ex;
  const Hierarchy& h = ex.raw_hierarchy;
  ItemId b11 = ex.vocab.Lookup("b11");
  ItemId b1 = ex.vocab.Lookup("b1");
  ItemId big_b = ex.vocab.Lookup("B");
  EXPECT_TRUE(h.GeneralizesTo(b11, b1));
  EXPECT_TRUE(h.GeneralizesTo(b11, big_b));
  EXPECT_TRUE(h.GeneralizesTo(b1, big_b));
  EXPECT_FALSE(h.GeneralizesTo(big_b, b1));
  EXPECT_EQ(h.Depth(b11), 2);
  EXPECT_EQ(h.MaxDepth(), 2);
}

}  // namespace
}  // namespace lash
