// Fine-grained assertions pinned to specific numbers and sets printed in
// the paper's running text, beyond the headline example output.

#include <gtest/gtest.h>

#include "core/rewrite.h"
#include "mapreduce/job.h"
#include "miner/enumerate.h"
#include "test_util.h"
#include "util/varint.h"

namespace lash {
namespace {

TEST(PaperDetailsTest, SemiNaivePruningOfT4) {
  // Sec. 3.3: for T4 = b11 a e a and sigma = 2, generalizing every item to
  // its closest frequent ancestor yields T4' = b1 a _ a, and the semi-naive
  // algorithm emits exactly {aa, b1a, b1aa, Ba, Baa} (gamma=1, lambda=3).
  testing::PaperExample ex;
  const Hierarchy& h = ex.pre.hierarchy;
  const ItemId num_frequent = static_cast<ItemId>(ex.pre.NumFrequent(2));
  ASSERT_EQ(num_frequent, 5u);

  Sequence t4 = ex.pre.database[3].ToSequence();
  Sequence pruned;
  for (ItemId w : t4) {
    ItemId replacement = kBlank;
    for (ItemId a = w; a != kInvalidItem; a = h.Parent(a)) {
      if (a <= num_frequent) {
        replacement = a;
        break;
      }
    }
    pruned.push_back(replacement);
  }
  Sequence expected_pruned = {ex.Rank("b1"), ex.Rank("a"), kBlank,
                              ex.Rank("a")};
  EXPECT_EQ(pruned, expected_pruned);

  SequenceSet emitted;
  EnumerateGeneralizedSubsequences(pruned, h, /*gamma=*/1, /*lambda=*/3,
                                   &emitted);
  SequenceSet expected;
  expected.insert(ex.RankSeq({"a", "a"}));
  expected.insert(ex.RankSeq({"b1", "a"}));
  expected.insert(ex.RankSeq({"b1", "a", "a"}));
  expected.insert(ex.RankSeq({"B", "a"}));
  expected.insert(ex.RankSeq({"B", "a", "a"}));
  EXPECT_EQ(emitted, expected);
}

TEST(PaperDetailsTest, NaiveOutputReductionFactor) {
  // Sec. 3.3: "Compared to the set G3(T4) output by the naive algorithm,
  // the output size is reduced by a factor of more than 3" (19 vs 5).
  testing::PaperExample ex;
  SequenceSet naive;
  EnumerateGeneralizedSubsequences(ex.pre.database[3], ex.pre.hierarchy, 1, 3,
                                   &naive);
  EXPECT_EQ(naive.size(), 19u);
  EXPECT_GT(naive.size(), 3 * 5u);
}

TEST(PaperDetailsTest, G1OfT4) {
  // Sec. 3.3: G1(T4) = {b11, a, e, b1, B} (as a set; the paper lists the
  // duplicate 'a' of the multiset form).
  testing::PaperExample ex;
  std::vector<uint32_t> scratch(ex.raw_hierarchy.NumItems() + 1, 0);
  std::vector<ItemId> items;
  CollectGeneralizedItems(ex.raw_db[3], ex.raw_hierarchy, &scratch, 1, &items);
  EXPECT_EQ(items.size(), 5u);
}

TEST(PaperDetailsTest, FrequencyOfBInPartitionDiffers) {
  // Sec. 4.1: "D and P_B may be B-equivalent but disagree on the frequency
  // of B itself (5 versus 4 in our example)" — non-pivot-sequence
  // frequencies need not be preserved. Our rewrites drop T6's isolated B
  // entirely, so the per-partition count of B-containing sequences is 4.
  testing::PaperExample ex;
  Rewriter rewriter(&ex.pre.hierarchy, 1, 3);
  size_t containing_b = 0;
  for (SequenceView t : ex.pre.database) {
    Sequence rewritten = rewriter.Rewrite(t, ex.Rank("B"));
    for (ItemId w : rewritten) {
      if (w == ex.Rank("B")) {
        ++containing_b;
        break;
      }
    }
  }
  EXPECT_EQ(containing_b, 4u);
}

TEST(PaperDetailsTest, RewriteIsFixedPoint) {
  // Rewriting an already-rewritten sequence must not change it: the
  // rewrite output contains only relevant items and compressed blanks.
  Rng rng(13579);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 3 + rng.Uniform(8);
    Hierarchy h = testing::RandomRankHierarchy(n, 0.4, &rng);
    uint32_t gamma = static_cast<uint32_t>(rng.Uniform(3));
    uint32_t lambda = 2 + static_cast<uint32_t>(rng.Uniform(4));
    Rewriter rewriter(&h, gamma, lambda);
    Sequence t;
    size_t len = 1 + rng.Uniform(10);
    for (size_t i = 0; i < len; ++i) {
      t.push_back(static_cast<ItemId>(1 + rng.Uniform(n)));
    }
    for (ItemId pivot = 1; pivot <= n; ++pivot) {
      Sequence once = rewriter.Rewrite(t, pivot);
      if (once.empty()) continue;
      Sequence twice = rewriter.Rewrite(once, pivot);
      EXPECT_EQ(twice, once) << "pivot " << pivot << " trial " << trial;
    }
  }
}

TEST(PaperDetailsTest, MapOutputBytesMatchSerializedSizes) {
  // The MAP_OUTPUT_BYTES counter must equal the sum of the per-pair sizes
  // reported by the byte-size callback (here: exact varint sizes).
  std::vector<int> inputs = {1, 2, 3};
  uint64_t expected_bytes = 0;
  for (int x : inputs) {
    expected_bytes += Varint32Size(static_cast<uint32_t>(x)) + 1;
  }
  using Job = MapReduceJob<int, uint32_t, uint32_t>;
  Job job(
      [](const int& x, const Job::EmitFn& emit) {
        emit(static_cast<uint32_t>(x), 1);
      },
      [](size_t, const uint32_t&, std::vector<uint32_t>&) {},
      [](const uint32_t& k, const uint32_t& v) {
        return Varint32Size(k) + Varint32Size(v);
      });
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = 2;
  config.num_reduce_tasks = 2;
  JobResult result = job.Run(inputs, config);
  EXPECT_EQ(result.counters.map_output_bytes, expected_bytes);
}

TEST(PaperDetailsTest, WorstCaseSearchSpaceFraction) {
  // Sec. 5.2 "Analysis": with k items and sequences of length lambda, PSM
  // explores 1 - sum(k-1)^l / sum k^l of the BFS/DFS space. Validate the
  // formula's premise on a small dense instance: every length-<=lambda
  // sequence over k items is frequent; count pivot vs all sequences.
  const uint64_t k = 4, lambda = 3;
  uint64_t all = 0, non_pivot = 0;
  for (uint64_t l = 1, kp = k, k1 = k - 1; l <= lambda;
       ++l, kp *= k, k1 *= (k - 1)) {
    all += kp;
    non_pivot += k1;
  }
  // Pivot sequences for the largest item = all - sequences avoiding it.
  EXPECT_EQ(all - non_pivot, 84u - 39u);  // 4+16+64 minus 3+9+27.
}

}  // namespace
}  // namespace lash
