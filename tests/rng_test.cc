#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace lash {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
  EXPECT_THROW(rng.Uniform(0), std::invalid_argument);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMean) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(ZipfTest, ValidatesArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 400);
}

TEST(ZipfTest, SkewedWhenExponentOne) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(5);
  std::vector<int> counts(1000, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  // P(0)/P(1) should be ~2, and rank 0 should dominate the tail.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.5);
  EXPECT_GT(counts[0], counts[500] * 20);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler zipf(17, 1.5);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 17u);
}

}  // namespace
}  // namespace lash
