// Tests of the network serving tier: the TaskSpec codec (DecodeTaskSpec as
// the inverse of EncodeCacheKey), the framed wire protocol (net/wire.h),
// the result serialization (io/result_io.h), and — on Linux, where the
// epoll server exists — end-to-end loopback parity for all six algorithms,
// the two-shard router merge vs the union corpus, and the typed fault
// paths (dead worker, client timeout, malformed frame).

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/lash_api.h"
#include "io/io_error.h"
#include "io/result_io.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "net/service_backend.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/mining_service.h"
#include "serve/task_spec.h"
#include "test_util.h"

#ifdef __linux__
#include <poll.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>
#endif

namespace lash::net {
namespace {

using serve::ServeError;
using serve::ServeErrorCode;
using serve::TaskSpec;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kSequential, Algorithm::kLash,  Algorithm::kMgFsm,
    Algorithm::kGsp,        Algorithm::kNaive, Algorithm::kSemiNaive,
};

TaskSpec PaperSpec(Algorithm algorithm) {
  TaskSpec spec;
  spec.algorithm = algorithm;
  spec.params = {.sigma = 2, .gamma = 1, .lambda = 3};
  return spec;
}

// ---- TaskSpec codec -------------------------------------------------------

TEST(TaskSpecCodec, RoundTripsEveryCoveredKnobCombination) {
  for (Algorithm algorithm : kAllAlgorithms) {
    for (PatternFilter filter : {PatternFilter::kNone, PatternFilter::kClosed,
                                 PatternFilter::kMaximal}) {
      for (size_t top_k : {size_t{0}, size_t{17}}) {
        for (bool engage_optionals : {false, true}) {
          TaskSpec spec = PaperSpec(algorithm);
          spec.filter = filter;
          spec.top_k = top_k;
          spec.flat = algorithm == Algorithm::kSequential && top_k == 0;
          if (engage_optionals) {
            spec.miner = MinerKind::kBfs;
            spec.rewrite = RewriteLevel::kGeneralizeOnly;
            spec.combiner = false;
          }
          spec.limits.max_emitted_records = 12345;

          const std::string key = serve::EncodeCacheKey(42, spec);
          uint64_t dataset_id = 0;
          const TaskSpec decoded = serve::DecodeTaskSpec(key, &dataset_id);
          EXPECT_EQ(dataset_id, 42u);
          EXPECT_EQ(decoded.algorithm, spec.algorithm);
          EXPECT_EQ(decoded.params.sigma, spec.params.sigma);
          EXPECT_EQ(decoded.params.gamma, spec.params.gamma);
          EXPECT_EQ(decoded.params.lambda, spec.params.lambda);
          EXPECT_EQ(decoded.filter, spec.filter);
          EXPECT_EQ(decoded.top_k, spec.top_k);
          EXPECT_EQ(decoded.miner, spec.miner);
          EXPECT_EQ(decoded.rewrite, spec.rewrite);
          EXPECT_EQ(decoded.combiner, spec.combiner);
          // Canonicalizing-stable: re-encoding reproduces the key bytes.
          EXPECT_EQ(serve::EncodeCacheKey(42, decoded), key);
        }
      }
    }
  }
}

TEST(TaskSpecCodec, ExecutionShapeKnobsDoNotSurvive) {
  TaskSpec spec = PaperSpec(Algorithm::kLash);
  spec.shard = 3;
  spec.threads = 7;
  spec.job_config.num_map_tasks = 11;
  spec.deadline_ms = 1500;
  spec.shard_sigma = 9;
  const TaskSpec decoded =
      serve::DecodeTaskSpec(serve::EncodeCacheKey(0, spec));
  EXPECT_EQ(decoded.shard, 0u);
  EXPECT_EQ(decoded.threads, 0u);
  EXPECT_EQ(decoded.deadline_ms, 0.0);
  EXPECT_EQ(decoded.shard_sigma, 0u);
  EXPECT_EQ(decoded.job_config.num_map_tasks, TaskSpec{}.job_config.num_map_tasks);
  // And the key bytes themselves are invariant under the override — how a
  // router gathers candidates must not change what a worker's answer hits
  // or coalesces with.
  TaskSpec plain = PaperSpec(Algorithm::kLash);
  TaskSpec overridden = plain;
  overridden.shard_sigma = 9;
  EXPECT_EQ(serve::EncodeCacheKey(0, overridden),
            serve::EncodeCacheKey(0, plain));
}

TEST(TaskSpecCodec, EveryStrictPrefixThrowsTypedError) {
  TaskSpec spec = PaperSpec(Algorithm::kSemiNaive);  // Includes the emit cap.
  spec.miner = MinerKind::kPsmIndex;
  spec.combiner = true;
  const std::string key = serve::EncodeCacheKey(7, spec);
  for (size_t len = 0; len < key.size(); ++len) {
    EXPECT_THROW(serve::DecodeTaskSpec(key.substr(0, len)), IoError)
        << "prefix of length " << len << " did not throw";
  }
  EXPECT_NO_THROW(serve::DecodeTaskSpec(key));
}

TEST(TaskSpecCodec, RejectsBadVersionEnumAndTrailingGarbage) {
  const std::string key = serve::EncodeCacheKey(0, PaperSpec(Algorithm::kGsp));

  std::string bad_version = key;
  bad_version[0] = 99;
  try {
    serve::DecodeTaskSpec(bad_version);
    FAIL() << "bad version accepted";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kBadVersion);
  }

  // Byte 2 (after version + varint dataset id 0) is the algorithm.
  std::string bad_algorithm = key;
  bad_algorithm[2] = 17;
  try {
    serve::DecodeTaskSpec(bad_algorithm);
    FAIL() << "bad algorithm byte accepted";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kMalformed);
  }

  try {
    serve::DecodeTaskSpec(key + "x");
    FAIL() << "trailing garbage accepted";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kMalformed);
  }
}

// ---- Framing --------------------------------------------------------------

TEST(WireFraming, FrameRoundTripsByteByByte) {
  std::string wire;
  AppendFrame(&wire, "hello");
  AppendFrame(&wire, "");  // Empty payloads are legal frames.

  std::string buffer, payload;
  std::vector<std::string> frames;
  for (char byte : wire) {
    buffer.push_back(byte);
    while (TryExtractFrame(&buffer, &payload) == FrameStatus::kFrame) {
      frames.push_back(payload);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "hello");
  EXPECT_EQ(frames[1], "");
  EXPECT_TRUE(buffer.empty());
}

TEST(WireFraming, ExtractsBackToBackFrames) {
  std::string buffer;
  AppendFrame(&buffer, "one");
  AppendFrame(&buffer, "two");
  std::string payload;
  ASSERT_EQ(TryExtractFrame(&buffer, &payload), FrameStatus::kFrame);
  EXPECT_EQ(payload, "one");
  ASSERT_EQ(TryExtractFrame(&buffer, &payload), FrameStatus::kFrame);
  EXPECT_EQ(payload, "two");
  EXPECT_EQ(TryExtractFrame(&buffer, &payload), FrameStatus::kNeedMore);
}

TEST(WireFraming, OversizedLengthPrefixThrowsBeforeBuffering) {
  // A 4GiB-1 length prefix: the receiver must throw on the header alone,
  // without waiting for (or allocating) the announced payload.
  std::string buffer("\xff\xff\xff\xff", 4);
  std::string payload;
  try {
    TryExtractFrame(&buffer, &payload);
    FAIL() << "oversized frame accepted";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kMalformed);
  }
}

// ---- Message payloads -----------------------------------------------------

TEST(WireMessages, MineRequestRoundTrip) {
  TaskSpec spec = PaperSpec(Algorithm::kLash);
  spec.shard = 2;
  spec.deadline_ms = 750.5;
  spec.top_k = 9;
  const std::string payload = EncodeMineRequest(spec);
  EXPECT_EQ(PeekMessageType(payload), MessageType::kMineRequest);
  const MineRequest decoded = DecodeMineRequest(payload);
  EXPECT_EQ(decoded.spec.shard, 2u);
  EXPECT_EQ(decoded.spec.deadline_ms, 750.5);
  EXPECT_EQ(decoded.spec.algorithm, Algorithm::kLash);
  EXPECT_EQ(decoded.spec.top_k, 9u);
  EXPECT_EQ(decoded.spec.params.sigma, 2u);
}

TEST(WireMessages, MineResponseRoundTrip) {
  MineResponse response;
  response.run.algorithm = Algorithm::kMgFsm;
  response.run.used_flat_hierarchy = true;
  response.run.patterns_mined = 120;
  response.run.patterns_emitted = 2;
  response.run.mine_ms = 3.25;
  response.run.total_ms = 4.5;
  response.cache_hit = true;
  response.server_ms = 0.125;
  response.patterns = {{{"a", "B"}, 3}, {{"a"}, 2}};

  const std::string payload = EncodeMineResponse(response);
  EXPECT_EQ(PeekMessageType(payload), MessageType::kMineResponse);
  const MineResponse decoded = DecodeMineResponse(payload);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_FALSE(decoded.coalesced);
  EXPECT_EQ(decoded.server_ms, 0.125);
  EXPECT_EQ(decoded.patterns, response.patterns);
  EXPECT_EQ(decoded.run.algorithm, Algorithm::kMgFsm);
  EXPECT_TRUE(decoded.run.used_flat_hierarchy);
  EXPECT_EQ(decoded.run.patterns_mined, 120u);
  EXPECT_EQ(decoded.run.mine_ms, 3.25);
  // Re-encoding the decoded response reproduces the payload bytes — every
  // transmitted RunResult field round-trips.
  EXPECT_EQ(EncodeMineResponse(decoded), payload);
}

TEST(WireMessages, ErrorAndStatsRoundTrip) {
  const std::string error_payload =
      EncodeErrorResponse(ServeErrorCode::kQueueFull, "try later");
  EXPECT_EQ(PeekMessageType(error_payload), MessageType::kErrorResponse);
  const ErrorResponse error = DecodeErrorResponse(error_payload);
  EXPECT_EQ(error.code, ServeErrorCode::kQueueFull);
  EXPECT_EQ(error.message, "try later");

  serve::ServiceStats stats;
  stats.submitted = 10;
  stats.hits = 4;
  stats.cache_oversized_rejects = 2;
  stats.queue_depth = 3;
  stats.mine_p95_ms = 17.5;
  const std::string stats_payload = EncodeStatsResponse(stats);
  EXPECT_EQ(PeekMessageType(stats_payload), MessageType::kStatsResponse);
  const serve::ServiceStats decoded = DecodeStatsResponse(stats_payload);
  EXPECT_EQ(decoded.submitted, 10u);
  EXPECT_EQ(decoded.hits, 4u);
  EXPECT_EQ(decoded.cache_oversized_rejects, 2u);
  EXPECT_EQ(decoded.queue_depth, 3u);
  EXPECT_EQ(decoded.mine_p95_ms, 17.5);
  EXPECT_EQ(EncodeStatsResponse(decoded), stats_payload);
}

TEST(WireMessages, MineRequestV2CarriesTraceContext) {
  TaskSpec spec = PaperSpec(Algorithm::kLash);
  spec.shard = 1;
  spec.deadline_ms = 250.25;
  spec.trace.trace_id = obs::TraceId::Make();
  spec.trace.parent_span = 0xdeadbeefcafef00dULL;

  const std::string payload = EncodeMineRequestV2(spec);
  EXPECT_EQ(PeekMessageType(payload), MessageType::kMineRequestV2);
  const MineRequest decoded = DecodeMineRequest(payload);
  EXPECT_EQ(decoded.spec.trace.trace_id, spec.trace.trace_id);
  EXPECT_EQ(decoded.spec.trace.parent_span, spec.trace.parent_span);
  EXPECT_EQ(decoded.spec.shard, 1u);
  EXPECT_EQ(decoded.spec.deadline_ms, 250.25);
  EXPECT_EQ(decoded.spec.algorithm, Algorithm::kLash);

  // A v1 request decodes with an inactive trace — the traceless state —
  // and its bytes are untouched by the v2 addition (no version bump).
  const MineRequest v1 = DecodeMineRequest(EncodeMineRequest(spec));
  EXPECT_FALSE(v1.spec.trace.active());
  EXPECT_EQ(v1.spec.shard, 1u);

  // Truncating the v2 trace header is a typed decode error.
  EXPECT_THROW(DecodeMineRequest(std::string_view(payload).substr(0, 10)),
               IoError);
}

TEST(WireMessages, MineRequestV3CarriesShardSigmaOutsideTheKey) {
  TaskSpec spec = PaperSpec(Algorithm::kLash);
  spec.shard = 1;
  spec.deadline_ms = 33.5;
  spec.shard_sigma = 7;
  spec.trace.trace_id = obs::TraceId::Make();
  spec.trace.parent_span = 0x0123456789abcdefULL;

  const std::string payload = EncodeMineRequestV3(spec);
  EXPECT_EQ(PeekMessageType(payload), MessageType::kMineRequestV3);
  const MineRequest decoded = DecodeMineRequest(payload);
  EXPECT_EQ(decoded.spec.shard_sigma, 7u);
  EXPECT_EQ(decoded.spec.shard, 1u);
  EXPECT_EQ(decoded.spec.deadline_ms, 33.5);
  EXPECT_EQ(decoded.spec.trace.trace_id, spec.trace.trace_id);
  EXPECT_EQ(decoded.spec.trace.parent_span, spec.trace.parent_span);
  EXPECT_EQ(decoded.spec.algorithm, Algorithm::kLash);
  EXPECT_EQ(decoded.spec.params.sigma, 2u);

  // v1/v2 payloads decode with the default (no override) — traffic without
  // a shard-σ override never pays the v3 bytes.
  EXPECT_EQ(DecodeMineRequest(EncodeMineRequest(spec)).spec.shard_sigma, 0u);
  EXPECT_EQ(DecodeMineRequest(EncodeMineRequestV2(spec)).spec.shard_sigma, 0u);

  // Every strict prefix is a typed decode error.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(DecodeMineRequest(payload.substr(0, len)), IoError)
        << "prefix of length " << len << " did not throw";
  }
}

TEST(WireMessages, CountRequestRoundTripAndTruncationMatrix) {
  CountRequest request;
  request.trace.trace_id = obs::TraceId::Make();
  request.trace.parent_span = 0xdeadbeef12345678ULL;
  request.shard = 3;
  request.deadline_ms = 125.5;
  request.flat = true;
  request.gamma = 2;
  request.lambda = 5;
  request.candidates = {{{"a", "B"}, 0}, {{"c"}, 0}, {{"d1", "e", "f"}, 0}};

  const std::string payload = EncodeCountRequest(request);
  EXPECT_EQ(PeekMessageType(payload), MessageType::kCountRequest);
  const CountRequest decoded = DecodeCountRequest(payload);
  EXPECT_EQ(decoded.trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(decoded.trace.parent_span, request.trace.parent_span);
  EXPECT_EQ(decoded.shard, 3u);
  EXPECT_EQ(decoded.deadline_ms, 125.5);
  EXPECT_TRUE(decoded.flat);
  EXPECT_EQ(decoded.gamma, 2u);
  EXPECT_EQ(decoded.lambda, 5u);
  EXPECT_EQ(decoded.candidates, request.candidates);
  // Re-encoding the decoded request reproduces the payload bytes.
  EXPECT_EQ(EncodeCountRequest(decoded), payload);

  // Every strict prefix is a typed decode error, and so is trailing junk.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(DecodeCountRequest(payload.substr(0, len)), IoError)
        << "prefix of length " << len << " did not throw";
  }
  EXPECT_THROW(DecodeCountRequest(payload + "x"), IoError);
}

TEST(WireMessages, CountResponseRoundTripAndTruncationMatrix) {
  CountResponse response;
  response.server_ms = 1.75;
  response.supports = {4, 0, 123456789012ULL};

  const std::string payload = EncodeCountResponse(response);
  EXPECT_EQ(PeekMessageType(payload), MessageType::kCountResponse);
  const CountResponse decoded = DecodeCountResponse(payload);
  EXPECT_EQ(decoded.server_ms, 1.75);
  EXPECT_EQ(decoded.supports, response.supports);
  EXPECT_EQ(EncodeCountResponse(decoded), payload);

  // The empty support list is legal (a count of zero candidates).
  EXPECT_TRUE(DecodeCountResponse(EncodeCountResponse(CountResponse{}))
                  .supports.empty());

  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(DecodeCountResponse(payload.substr(0, len)), IoError)
        << "prefix of length " << len << " did not throw";
  }
  EXPECT_THROW(DecodeCountResponse(payload + "x"), IoError);
}

TEST(WireMessages, MetricsMessagesRoundTrip) {
  EXPECT_EQ(PeekMessageType(EncodeMetricsRequest()),
            MessageType::kMetricsRequest);

  const std::vector<obs::MetricSample> samples = {
      {"serve.requests.submitted", 12},
      {"serve.latency.hit_ms.p95_ms", 0.256},
      {"net.server.bytes_in", 1.5e9},
  };
  const std::string payload = EncodeMetricsResponse(samples);
  EXPECT_EQ(PeekMessageType(payload), MessageType::kMetricsResponse);
  const std::vector<obs::MetricSample> decoded =
      DecodeMetricsResponse(payload);
  ASSERT_EQ(decoded.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(decoded[i].name, samples[i].name);
    EXPECT_EQ(decoded[i].value, samples[i].value);
  }

  // The empty snapshot is a legal response (a router with no registry).
  EXPECT_TRUE(DecodeMetricsResponse(EncodeMetricsResponse({})).empty());
  // Truncation and trailing garbage are typed decode errors.
  EXPECT_THROW(DecodeMetricsResponse(
                   std::string_view(payload).substr(0, payload.size() - 3)),
               IoError);
  EXPECT_THROW(DecodeMetricsResponse(payload + "x"), IoError);
}

TEST(WireMessages, MalformedPayloadsThrow) {
  // Wrong type for the decoder.
  EXPECT_THROW(DecodeMineResponse(EncodeStatsRequest()), IoError);
  EXPECT_THROW(DecodeMineRequest(EncodeStatsRequest()), IoError);
  // Unknown wire version.
  std::string bad_version = EncodeStatsRequest();
  bad_version[0] = 9;
  try {
    PeekMessageType(bad_version);
    FAIL() << "bad wire version accepted";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kBadVersion);
  }
  // Truncated mid-message.
  const std::string response = EncodeMineResponse(MineResponse{});
  EXPECT_THROW(DecodeMineResponse(
                   std::string_view(response).substr(0, response.size() - 1)),
               IoError);
  // Empty payload.
  EXPECT_THROW(PeekMessageType(""), IoError);
}

// ---- Canonical pattern order ----------------------------------------------

TEST(ResultIo, CanonicalOrderIsDescFrequencyThenLexItems) {
  NamedPatternList patterns = {
      {{"b"}, 2}, {{"a", "c"}, 5}, {{"a", "b"}, 5}, {{"a"}, 2}};
  SortNamedPatterns(&patterns);
  const NamedPatternList expected = {
      {{"a", "b"}, 5}, {{"a", "c"}, 5}, {{"a"}, 2}, {{"b"}, 2}};
  EXPECT_EQ(patterns, expected);
  // The merge key ignores frequency and is injective on item vectors.
  EXPECT_EQ(NamedPatternKey({{"a", "b"}, 5}), NamedPatternKey({{"a", "b"}, 9}));
  EXPECT_NE(NamedPatternKey({{"a", "b"}, 5}), NamedPatternKey({{"ab"}, 5}));
}

#ifdef __linux__

// ---- Loopback end-to-end --------------------------------------------------

/// A server on its own thread, bound to an ephemeral loopback port.
struct TestServer {
  explicit TestServer(Backend* backend, ServerOptions options = {})
      : server(std::move(options), backend),
        thread([this] { server.Run(); }) {}
  ~TestServer() {
    server.Shutdown();
    thread.join();
  }
  uint16_t port() const { return server.port(); }

  NetServer server;
  std::thread thread;
};

class NetLoopbackTest : public ::testing::Test {
 protected:
  NetLoopbackTest() : dataset_(Dataset::FromMemory(ex_.raw_db, ex_.vocab)) {}

  /// Canonical wire bytes of the in-process answer for `spec` — the parity
  /// baseline both network paths must reproduce exactly.
  std::string BaselineBytes(const TaskSpec& spec) {
    serve::MiningService service(dataset_);
    const serve::Response& response = service.Submit(spec).Get();
    std::string bytes;
    EncodeNamedPatterns(&bytes,
                        NamePatterns(dataset_, response.patterns(),
                                     response.run().used_flat_hierarchy));
    return bytes;
  }

  static std::string Bytes(const NamedPatternList& patterns) {
    std::string bytes;
    EncodeNamedPatterns(&bytes, patterns);
    return bytes;
  }

  testing::PaperExample ex_;
  Dataset dataset_;
};

TEST_F(NetLoopbackTest, AllSixAlgorithmsAreByteIdenticalOverTheWire) {
  ServiceBackend backend({&dataset_}, serve::ServiceOptions{});
  TestServer server(&backend);
  NetClient client("127.0.0.1", server.port());
  for (Algorithm algorithm : kAllAlgorithms) {
    const TaskSpec spec = PaperSpec(algorithm);
    const MineReply reply = client.Mine(spec);
    EXPECT_EQ(Bytes(reply.patterns), BaselineBytes(spec))
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_EQ(reply.run.algorithm, algorithm);
  }
}

TEST_F(NetLoopbackTest, SecondRequestHitsTheCacheAndStatsTravel) {
  ServiceBackend backend({&dataset_}, serve::ServiceOptions{});
  TestServer server(&backend);
  NetClient client("127.0.0.1", server.port());

  const TaskSpec spec = PaperSpec(Algorithm::kSequential);
  const MineReply cold = client.Mine(spec);
  EXPECT_FALSE(cold.cache_hit);
  const MineReply hit = client.Mine(spec);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(Bytes(hit.patterns), Bytes(cold.patterns));

  const serve::ServiceStats stats = client.Stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST_F(NetLoopbackTest, RouterMergesTwoShardsExactly) {
  // Even/odd transaction split of the paper corpus, sharing the vocabulary:
  // the shard union IS dataset_, so the router's merged answer must be
  // byte-identical to mining dataset_ in process.
  Database even_db, odd_db;
  for (size_t i = 0; i < ex_.raw_db.size(); ++i) {
    (i % 2 == 0 ? even_db : odd_db).push_back(ex_.raw_db[i]);
  }
  Dataset even(Dataset::FromMemory(even_db, ex_.vocab));
  Dataset odd(Dataset::FromMemory(odd_db, ex_.vocab));

  ServiceBackend backend_even({&even}, serve::ServiceOptions{});
  ServiceBackend backend_odd({&odd}, serve::ServiceOptions{});
  TestServer worker_even(&backend_even);
  TestServer worker_odd(&backend_odd);
  RouterBackend router({{"127.0.0.1", worker_even.port()},
                        {"127.0.0.1", worker_odd.port()}},
                       RouterOptions{});
  TestServer router_server(&router);
  NetClient client("127.0.0.1", router_server.port());

  for (Algorithm algorithm : kAllAlgorithms) {
    const TaskSpec spec = PaperSpec(algorithm);
    const MineReply merged = client.Mine(spec);
    EXPECT_EQ(Bytes(merged.patterns), BaselineBytes(spec))
        << "algorithm " << static_cast<int>(algorithm);
  }

  // Top-k re-cut: the merged answer truncated to k is the prefix of the
  // full merged answer in canonical order.
  const TaskSpec full_spec = PaperSpec(Algorithm::kSequential);
  TaskSpec topk_spec = full_spec;
  topk_spec.top_k = 3;
  const MineReply full = client.Mine(full_spec);
  const MineReply topk = client.Mine(topk_spec);
  ASSERT_EQ(topk.patterns.size(), 3u);
  EXPECT_EQ(topk.patterns,
            NamedPatternList(full.patterns.begin(), full.patterns.begin() + 3));
}

TEST_F(NetLoopbackTest, TwoPhaseCountPhaseMatchesLegacyAndInProcess) {
  // σ=3 over the 2-shard split pigeonholes to σ′=2 > 1, so the count phase
  // actually runs (unlike the σ=2 paper spec, where σ′=1 and phase 1 is
  // already exact). The two-phase answer must be byte-identical to both the
  // legacy σ′=1 router and the in-process union mine, for every algorithm.
  Database even_db, odd_db;
  for (size_t i = 0; i < ex_.raw_db.size(); ++i) {
    (i % 2 == 0 ? even_db : odd_db).push_back(ex_.raw_db[i]);
  }
  Dataset even(Dataset::FromMemory(even_db, ex_.vocab));
  Dataset odd(Dataset::FromMemory(odd_db, ex_.vocab));
  ServiceBackend backend_even({&even}, serve::ServiceOptions{});
  ServiceBackend backend_odd({&odd}, serve::ServiceOptions{});
  TestServer worker_even(&backend_even);
  TestServer worker_odd(&backend_odd);
  const std::vector<WorkerAddress> addresses = {
      {"127.0.0.1", worker_even.port()}, {"127.0.0.1", worker_odd.port()}};

  RouterBackend two_phase(addresses, RouterOptions{});
  RouterOptions legacy_options;
  legacy_options.two_phase = false;
  RouterBackend legacy(addresses, legacy_options);

  for (Algorithm algorithm : kAllAlgorithms) {
    TaskSpec spec = PaperSpec(algorithm);
    spec.params.sigma = 3;
    const MineResponse fast = two_phase.Scatter(spec);
    const MineResponse exact = legacy.Scatter(spec);
    EXPECT_EQ(Bytes(fast.patterns), BaselineBytes(spec))
        << "two-phase vs in-process, algorithm " << static_cast<int>(algorithm);
    EXPECT_EQ(Bytes(fast.patterns), Bytes(exact.patterns))
        << "two-phase vs legacy, algorithm " << static_cast<int>(algorithm);
  }
}

TEST_F(NetLoopbackTest, PigeonholeBoundIsLoadBearing) {
  // The adversarial corpus: "x y" has support 2 on each shard and 4 in the
  // union — below σ=4 on every individual shard, so any scatter at σ′=σ
  // loses it. The pigeonhole bound σ′=⌈4/2⌉=2 keeps it as a candidate and
  // the count phase restores its exact union support.
  Vocabulary vocab;
  const ItemId x = vocab.AddItem("x");
  const ItemId y = vocab.AddItem("y");
  const ItemId z = vocab.AddItem("z");
  const Database shard_db = {{x, y}, {x, y}, {z}};
  Database union_db = shard_db;
  union_db.insert(union_db.end(), shard_db.begin(), shard_db.end());
  Dataset a(Dataset::FromMemory(shard_db, vocab));
  Dataset b(Dataset::FromMemory(shard_db, vocab));
  Dataset u(Dataset::FromMemory(union_db, vocab));

  ServiceBackend backend_a({&a}, serve::ServiceOptions{});
  ServiceBackend backend_b({&b}, serve::ServiceOptions{});
  TestServer worker_a(&backend_a);
  TestServer worker_b(&backend_b);
  RouterBackend router({{"127.0.0.1", worker_a.port()},
                        {"127.0.0.1", worker_b.port()}},
                       RouterOptions{});
  TestServer router_server(&router);
  NetClient client("127.0.0.1", router_server.port());

  TaskSpec spec;
  spec.algorithm = Algorithm::kSequential;
  spec.params = {.sigma = 4, .gamma = 0, .lambda = 2};

  // Traced, so the count phase's spans are visible below.
  obs::Tracer::Global().StartCollecting();
  TaskSpec traced = spec;
  traced.trace.trace_id = obs::TraceId::Make();
  const MineReply found = client.Mine(traced);
  const std::vector<obs::SpanRecord> spans =
      obs::Tracer::Global().TakeCollected();
  obs::Tracer::Global().StopCollecting();

  // The union answer, exactly: in-process parity over the union corpus.
  serve::MiningService service(u);
  const serve::Response& baseline = service.Submit(spec).Get();
  std::string baseline_bytes;
  EncodeNamedPatterns(&baseline_bytes,
                      NamePatterns(u, baseline.patterns(),
                                   baseline.run().used_flat_hierarchy));
  EXPECT_EQ(Bytes(found.patterns), baseline_bytes);
  ASSERT_FALSE(found.patterns.empty());
  const NamedPattern expected{{"x", "y"}, 4};
  EXPECT_NE(std::find(found.patterns.begin(), found.patterns.end(), expected),
            found.patterns.end())
      << "the union-frequent pattern below per-shard sigma is missing";

  // The count phase ran and its spans joined the trace: one router.count
  // per worker under router.scatter, one serve.count per worker.
  uint64_t scatter_id = 0;
  size_t count_legs = 0, serve_counts = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "router.scatter") scatter_id = span.span_id;
  }
  ASSERT_NE(scatter_id, 0u);
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "router.count") {
      ++count_legs;
      EXPECT_EQ(span.parent_id, scatter_id);
    }
    if (span.name == "serve.count") ++serve_counts;
  }
  EXPECT_EQ(count_legs, 2u);
  EXPECT_EQ(serve_counts, 2u);

  // The per-request override proves the bound is load-bearing: scattering
  // at σ′=σ=4 finds nothing on either shard, so the answer is empty — the
  // exactness/latency trade the override exists to expose.
  TaskSpec overridden = spec;
  overridden.shard_sigma = 4;
  const MineReply dropped = client.Mine(overridden);
  EXPECT_TRUE(dropped.patterns.empty());

  // And an explicit override at the pigeonhole bound is the default answer.
  TaskSpec pigeonhole = spec;
  pigeonhole.shard_sigma = 2;
  const MineReply same = client.Mine(pigeonhole);
  EXPECT_EQ(Bytes(same.patterns), baseline_bytes);
}

TEST_F(NetLoopbackTest, MetricsRpcExposesServiceAndServerInstruments) {
  // One registry wired into both the service and the event loop, exactly
  // as lash_served does with the process-global one.
  obs::MetricsRegistry registry;
  serve::ServiceOptions service_options;
  service_options.metrics = &registry;
  ServiceBackend backend({&dataset_}, service_options);
  ServerOptions server_options;
  server_options.metrics = &registry;
  TestServer server(&backend, server_options);
  NetClient client("127.0.0.1", server.port());

  client.Mine(PaperSpec(Algorithm::kSequential));
  const std::vector<obs::MetricSample> samples = client.Metrics();
  auto value_of = [&samples](const std::string& name) -> double {
    for (const obs::MetricSample& s : samples) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "metric " << name << " missing from snapshot";
    return -1;
  };
  EXPECT_EQ(value_of("serve.requests.submitted"), 1.0);
  EXPECT_EQ(value_of("serve.requests.misses"), 1.0);
  EXPECT_EQ(value_of("serve.cache.entries"), 1.0);
  EXPECT_GT(value_of("serve.cache.bytes"), 0.0);
  EXPECT_GE(value_of("serve.latency.mine_ms.count"), 1.0);
  // The event loop's own instruments: the mine exchange plus this metrics
  // request have both passed through by the time the response arrives.
  EXPECT_GE(value_of("net.server.frames_in"), 2.0);
  EXPECT_GE(value_of("net.server.frames_out"), 1.0);
  EXPECT_GT(value_of("net.server.bytes_in"), 0.0);
  EXPECT_EQ(value_of("net.server.connections"), 1.0);
  EXPECT_EQ(value_of("net.server.accepted"), 1.0);
}

TEST_F(NetLoopbackTest, OneTraceIdSpansClientRouterAndBothWorkers) {
  // The propagation parity check: a traced mine through a 2-shard router
  // must yield ONE trace whose spans cover the router's scatter/merge legs
  // and each worker's serve pipeline, nested by parent ids. Everything
  // runs in-process, so every component records into the same Global
  // tracer — the multi-process analogue (separate JSONL files sharing the
  // trace id) is net_smoke.sh's job.
  Database even_db, odd_db;
  for (size_t i = 0; i < ex_.raw_db.size(); ++i) {
    (i % 2 == 0 ? even_db : odd_db).push_back(ex_.raw_db[i]);
  }
  Dataset even(Dataset::FromMemory(even_db, ex_.vocab));
  Dataset odd(Dataset::FromMemory(odd_db, ex_.vocab));
  ServiceBackend backend_even({&even}, serve::ServiceOptions{});
  ServiceBackend backend_odd({&odd}, serve::ServiceOptions{});
  TestServer worker_even(&backend_even);
  TestServer worker_odd(&backend_odd);
  RouterBackend router({{"127.0.0.1", worker_even.port()},
                        {"127.0.0.1", worker_odd.port()}},
                       RouterOptions{});
  TestServer router_server(&router);
  NetClient client("127.0.0.1", router_server.port());

  // The traced request goes first, so it is a cold miss on both workers
  // and exercises the full pipeline (queue, mine, MapReduce export). The
  // untraced (v1) request follows through the same collecting tracer; the
  // single-trace-id assertion below doubles as the proof that it recorded
  // nothing. (Collection drains once, after both: a worker's serve.deliver
  // span lands just after its reply is sent, so a drain between the two
  // requests would race it.)
  obs::Tracer::Global().StartCollecting();
  TaskSpec traced = PaperSpec(Algorithm::kLash);
  traced.trace.trace_id = obs::TraceId::Make();
  const MineReply v2_reply = client.Mine(traced);
  TaskSpec untraced = PaperSpec(Algorithm::kLash);
  const MineReply v1_reply = client.Mine(untraced);
  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().TakeCollected();
  obs::Tracer::Global().StopCollecting();

  // Tracing must not change the answer: the traced (v2, cold) reply is
  // pattern-identical to the untraced (v1, cache-hit) one.
  EXPECT_EQ(Bytes(v2_reply.patterns), Bytes(v1_reply.patterns));

  // First pass: index the spans. Every span belongs to THE trace — the
  // v1 request contributed none.
  ASSERT_FALSE(spans.empty());
  std::map<uint64_t, const obs::SpanRecord*> by_id;
  std::multiset<std::string> names;
  uint64_t scatter_id = 0;
  std::set<uint64_t> leg_ids;
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, traced.trace.trace_id) << span.name;
    by_id[span.span_id] = &span;
    names.insert(span.name);
    if (span.name == "router.scatter") scatter_id = span.span_id;
    if (span.name == "router.leg") leg_ids.insert(span.span_id);
  }
  // The router's legs...
  ASSERT_NE(scatter_id, 0u);
  ASSERT_EQ(names.count("router.scatter"), 1u);
  ASSERT_EQ(leg_ids.size(), 2u);
  ASSERT_EQ(names.count("router.merge"), 1u);
  // ...and each worker's serve pipeline plus its MapReduce timeline.
  EXPECT_EQ(names.count("serve.request"), 2u);
  EXPECT_EQ(names.count("serve.validate"), 2u);
  EXPECT_EQ(names.count("serve.cache"), 2u);
  EXPECT_EQ(names.count("serve.queue"), 2u);
  EXPECT_EQ(names.count("serve.mine"), 2u);
  EXPECT_EQ(names.count("api.mine"), 2u);
  EXPECT_EQ(names.count("mr.job"), 2u);

  // Second pass: nesting by parent ids. leg and merge hang off scatter,
  // each worker's serve.request off a distinct leg, the mine-path spans
  // off their serve.request, the facade span off serve.mine, and the
  // MapReduce job off the facade's api.mine.
  std::set<uint64_t> request_parents;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "router.leg" || span.name == "router.merge") {
      EXPECT_EQ(span.parent_id, scatter_id) << span.name;
    }
    if (span.name == "serve.request") {
      EXPECT_EQ(leg_ids.count(span.parent_id), 1u)
          << "serve.request parented outside the router's legs";
      request_parents.insert(span.parent_id);
    }
    if (span.name == "serve.mine" || span.name == "serve.queue") {
      ASSERT_EQ(by_id.count(span.parent_id), 1u) << span.name;
      EXPECT_EQ(by_id[span.parent_id]->name, "serve.request") << span.name;
    }
    if (span.name == "api.mine") {
      ASSERT_EQ(by_id.count(span.parent_id), 1u);
      EXPECT_EQ(by_id[span.parent_id]->name, "serve.mine");
    }
    if (span.name == "mr.job") {
      ASSERT_EQ(by_id.count(span.parent_id), 1u);
      EXPECT_EQ(by_id[span.parent_id]->name, "api.mine");
    }
  }
  EXPECT_EQ(request_parents, leg_ids);
}

TEST_F(NetLoopbackTest, RouterRejectsFiltersAndExplicitShards) {
  // Validation precedes any worker I/O, so an unreachable worker is fine.
  RouterBackend router({{"127.0.0.1", 1}}, RouterOptions{});

  TaskSpec filtered = PaperSpec(Algorithm::kSequential);
  filtered.filter = PatternFilter::kMaximal;
  try {
    router.Scatter(filtered);
    FAIL() << "filter distributed";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kInvalidTask);
  }

  TaskSpec sharded = PaperSpec(Algorithm::kSequential);
  sharded.shard = 1;
  try {
    router.Scatter(sharded);
    FAIL() << "explicit shard accepted";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kInvalidTask);
  }
}

// ---- Fault paths ----------------------------------------------------------

/// Client options tuned so fault tests fail fast instead of retrying for
/// seconds.
ClientOptions FastFail() {
  ClientOptions options;
  options.connect_timeout_ms = 500;
  options.connect_retries = 0;
  options.retry_backoff_ms = 1;
  return options;
}

/// An ephemeral port with nothing listening: bind, read the port, close.
uint16_t DeadPort() {
  ListenSocket listener = ListenTcp("127.0.0.1", 0);
  return listener.bound_port;  // fd closes on return.
}

TEST(NetFaultTest, DeadWorkerIsExecutionFailed) {
  NetClient client("127.0.0.1", DeadPort(), FastFail());
  try {
    client.Mine(PaperSpec(Algorithm::kSequential));
    FAIL() << "mined through a dead port";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kExecutionFailed);
  }
}

TEST(NetFaultTest, RouterSurfacesDeadWorkerAsExecutionFailed) {
  RouterOptions options;
  options.client = FastFail();
  RouterBackend router({{"127.0.0.1", DeadPort()}}, options);
  try {
    router.Scatter(PaperSpec(Algorithm::kSequential));
    FAIL() << "scattered to a dead worker";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kExecutionFailed);
    EXPECT_NE(std::string(e.what()).find("worker"), std::string::npos);
  }
}

TEST(NetFaultTest, SilentServerTimesOutAsDeadlineExceeded) {
  // A listener that never accepts: the TCP handshake completes from the
  // backlog, the request is buffered, and no reply ever comes.
  ListenSocket listener = ListenTcp("127.0.0.1", 0);
  ClientOptions options = FastFail();
  options.io_timeout_ms = 200;
  NetClient client("127.0.0.1", listener.bound_port, options);
  try {
    client.Mine(PaperSpec(Algorithm::kSequential));
    FAIL() << "mined against a silent server";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kDeadlineExceeded);
  }
}

TEST(NetFaultTest, PeerDeathMidExchangeIsExecutionFailed) {
  // Accept the connection and immediately close it: the client loses the
  // peer between sending the request and reading the reply.
  ListenSocket listener = ListenTcp("127.0.0.1", 0);
  std::promise<void> accepted;
  std::thread killer([&] {
    pollfd pfd{listener.fd.get(), POLLIN, 0};
    ::poll(&pfd, 1, 5000);
    const int conn = ::accept(listener.fd.get(), nullptr, nullptr);
    if (conn >= 0) ::close(conn);
    accepted.set_value();
  });
  NetClient client("127.0.0.1", listener.bound_port, FastFail());
  try {
    client.Mine(PaperSpec(Algorithm::kSequential));
    FAIL() << "mined through a dying peer";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kExecutionFailed);
  }
  accepted.get_future().wait();
  killer.join();
}

TEST(NetFaultTest, MalformedFrameClosesOnlyThatConnection) {
  testing::PaperExample ex;
  Dataset dataset(Dataset::FromMemory(ex.raw_db, ex.vocab));
  ServiceBackend backend({&dataset}, serve::ServiceOptions{});
  TestServer server(&backend);

  // A raw connection speaking garbage: well-formed frame, wire version 9.
  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string frame;
  AppendFrame(&frame, std::string("\x09\x01", 2));
  ASSERT_EQ(::send(raw, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  // The server must close this connection (recv returns 0 / reset), not
  // crash or reply.
  char byte;
  const ssize_t got = ::recv(raw, &byte, 1, 0);
  EXPECT_LE(got, 0);
  ::close(raw);

  // ...while a well-behaved client on a fresh connection is still served.
  NetClient client("127.0.0.1", server.port(), FastFail());
  const TaskSpec spec = PaperSpec(Algorithm::kSequential);
  const MineReply reply = client.Mine(spec);
  EXPECT_GT(reply.patterns.size(), 0u);
}

#endif  // __linux__

}  // namespace
}  // namespace lash::net
