#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace lash {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelSums) {
  ThreadPool pool(4);
  std::vector<long> partial(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&partial, i] {
      long sum = 0;
      for (int k = 0; k <= i; ++k) sum += k;
      partial[i] = sum;
    });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(partial[i], i * (i + 1) / 2);
}

}  // namespace
}  // namespace lash
