#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace lash {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelSums) {
  ThreadPool pool(4);
  std::vector<long> partial(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&partial, i] {
      long sum = 0;
      for (int k = 0; k <= i; ++k) sum += k;
      partial[i] = sum;
    });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(partial[i], i * (i + 1) / 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "body called for n=0"; });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForFromInsidePoolTask) {
  // The LASH reduce-finish pattern: every pool worker is busy with an
  // outer task that itself runs a ParallelFor. Must complete (the caller
  // drives its own loop), including on a single-thread pool.
  for (size_t threads : {1u, 3u}) {
    ThreadPool pool(threads);
    std::atomic<int> total{0};
    for (int outer = 0; outer < 6; ++outer) {
      pool.Submit([&] {
        pool.ParallelFor(50, [&](size_t) { total.fetch_add(1); });
      });
    }
    pool.Wait();
    EXPECT_EQ(total.load(), 300) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, CurrentIndexIdentifiesWorkers) {
  EXPECT_EQ(ThreadPool::CurrentIndex(), ThreadPool::kNotAWorker);
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(3);
  for (auto& s : seen) s.store(0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      size_t index = ThreadPool::CurrentIndex();
      ASSERT_LT(index, 3u);
      seen[index].fetch_add(1);
    });
  }
  pool.Wait();
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 64);
}

}  // namespace
}  // namespace lash
