#include "dag/dag_miner.h"

#include <gtest/gtest.h>

#include "dag/dag_hierarchy.h"
#include "test_util.h"

namespace lash {
namespace {

// Diamond: 4 has parents {2, 3}; 2 and 3 have parent 1.
DagHierarchy Diamond() {
  return DagHierarchy({{}, {}, {1}, {1}, {2, 3}});
}

TEST(DagHierarchyTest, DiamondClosure) {
  DagHierarchy dag = Diamond();
  EXPECT_TRUE(dag.GeneralizesTo(4, 2));
  EXPECT_TRUE(dag.GeneralizesTo(4, 3));
  EXPECT_TRUE(dag.GeneralizesTo(4, 1));
  EXPECT_TRUE(dag.GeneralizesTo(4, 4));
  EXPECT_FALSE(dag.GeneralizesTo(2, 3));
  EXPECT_FALSE(dag.GeneralizesTo(1, 4));
  // Closure of 4 = {4, 2, 3, 1} with 1 listed once despite two paths.
  EXPECT_EQ(dag.AncestorsOrSelf(4).size(), 4u);
}

TEST(DagHierarchyTest, DepthIsLongestPath) {
  // 1 <- 2 <- 3, and 3 also directly under 1: depth(3) = 2.
  DagHierarchy dag({{}, {}, {1}, {1, 2}});
  EXPECT_EQ(dag.Depth(3), 2);
  EXPECT_EQ(dag.MaxDepth(), 2);
}

TEST(DagHierarchyTest, RejectsCycle) {
  EXPECT_THROW(DagHierarchy({{}, {2}, {1}}), std::invalid_argument);
  EXPECT_THROW(DagHierarchy({{}, {1}}), std::invalid_argument);
  EXPECT_THROW(DagHierarchy({{}, {7}}), std::invalid_argument);
}

TEST(DagHierarchyTest, LeavesAndRoots) {
  DagHierarchy dag = Diamond();
  EXPECT_TRUE(dag.IsRoot(1));
  EXPECT_FALSE(dag.IsRoot(4));
  EXPECT_TRUE(dag.IsLeaf(4));
  EXPECT_FALSE(dag.IsLeaf(2));
  EXPECT_TRUE(dag.IsRankMonotone());
}

TEST(DagMatchTest, MatchesThroughEitherParent) {
  DagHierarchy dag = Diamond();
  Sequence t = {4, 4};
  EXPECT_TRUE(DagMatches({2, 3}, t, dag, 0));
  EXPECT_TRUE(DagMatches({3, 2}, t, dag, 0));
  EXPECT_TRUE(DagMatches({1, 4}, t, dag, 0));
  EXPECT_FALSE(DagMatches({2, 2}, {4}, dag, 0));
}

TEST(DagMineTest, DiamondPatterns) {
  DagHierarchy dag = Diamond();
  // Item 4 generalizes to both 2 and 3; sequences of two 4's should make
  // every combination frequent.
  Database db = {{4, 4}, {4, 4}};
  GsmParams params{.sigma = 2, .gamma = 0, .lambda = 2};
  DagPreprocessResult pre = DagPreprocess(db, dag);
  PatternMap mined = MineDag(pre, params);
  PatternMap expected = MineDagByEnumeration(pre.database, pre.hierarchy, params);
  EXPECT_EQ(testing::Sorted(mined), testing::Sorted(expected));
  // 4 items generalize to 4 choices each position: 16 patterns.
  EXPECT_EQ(mined.size(), 16u);
}

TEST(DagMineTest, MultiParentFrequenciesAccumulate) {
  // Item 3 has parents 1 and 2 (both roots). Transactions with 3 support
  // patterns through both parents.
  DagHierarchy dag({{}, {}, {}, {1, 2}});
  Database db = {{3, 3}, {3, 3}, {1, 2}};
  GsmParams params{.sigma = 2, .gamma = 0, .lambda = 2};
  DagPreprocessResult pre = DagPreprocess(db, dag);
  PatternMap mined = MineDag(pre, params);
  // "1 2" occurs via specialization (3,3) in two transactions and literally
  // in the third.
  ItemId r1 = pre.rank_of_raw[1], r2 = pre.rank_of_raw[2];
  ASSERT_TRUE(mined.contains(Sequence{r1, r2}));
  EXPECT_EQ(mined.at(Sequence{r1, r2}), 3u);
}

TEST(DagPreprocessTest, GeneralizedFrequenciesCountClosure) {
  DagHierarchy dag = Diamond();
  Database db = {{4}, {2}, {3}};
  std::vector<Frequency> freq = DagGeneralizedFrequencies(db, dag);
  EXPECT_EQ(freq[1], 3u);  // All three transactions reach 1.
  EXPECT_EQ(freq[2], 2u);  // {4}, {2}.
  EXPECT_EQ(freq[3], 2u);
  EXPECT_EQ(freq[4], 1u);
}

TEST(DagPreprocessTest, RankMonotoneAfterRecode) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.Uniform(8);
    std::vector<std::vector<ItemId>> parents(n + 1);
    for (ItemId w = 2; w <= n; ++w) {
      size_t count = rng.Uniform(3);
      for (size_t k = 0; k < count; ++k) {
        ItemId p = static_cast<ItemId>(1 + rng.Uniform(w - 1));
        parents[w].push_back(p);
      }
    }
    DagHierarchy dag(parents);
    Database db = testing::RandomDatabase(10, 6, n, &rng);
    DagPreprocessResult pre = DagPreprocess(db, dag);
    EXPECT_TRUE(pre.hierarchy.IsRankMonotone());
    for (size_t r = 2; r < pre.freq.size(); ++r) {
      EXPECT_LE(pre.freq[r], pre.freq[r - 1]);
    }
  }
}

// The central property: the full DAG pipeline (preprocess + sound rewrites
// + DAG-PSM per pivot) agrees with brute-force enumeration.
class DagAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(DagAgreementTest, PipelineAgreesWithEnumeration) {
  const auto [gamma, lambda] = GetParam();
  GsmParams params{.sigma = 2, .gamma = gamma, .lambda = lambda};
  Rng rng(616 + gamma * 31 + lambda);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t n = 3 + rng.Uniform(7);
    std::vector<std::vector<ItemId>> parents(n + 1);
    for (ItemId w = 2; w <= n; ++w) {
      size_t count = rng.Uniform(3);
      for (size_t k = 0; k < count; ++k) {
        ItemId p = static_cast<ItemId>(1 + rng.Uniform(w - 1));
        if (std::find(parents[w].begin(), parents[w].end(), p) ==
            parents[w].end()) {
          parents[w].push_back(p);
        }
      }
    }
    DagHierarchy dag(parents);
    Database db = testing::RandomDatabase(12, 8, n, &rng);
    DagPreprocessResult pre = DagPreprocess(db, dag);
    PatternMap expected =
        MineDagByEnumeration(pre.database, pre.hierarchy, params);
    PatternMap mined = MineDag(pre, params);
    ASSERT_EQ(testing::Sorted(mined), testing::Sorted(expected))
        << "trial " << trial << " gamma " << gamma << " lambda " << lambda;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DagAgreementTest,
                         ::testing::Combine(::testing::Values(0u, 1u, 2u),
                                            ::testing::Values(2u, 3u, 4u)));

TEST(DagMineTest, TreeDagMatchesTreePipeline) {
  // A DAG where every item has at most one parent must reproduce the tree
  // pipeline's output exactly (same rank space: both recode by frequency).
  testing::PaperExample ex;
  std::vector<std::vector<ItemId>> parents(ex.raw_hierarchy.NumItems() + 1);
  for (ItemId w = 1; w <= ex.raw_hierarchy.NumItems(); ++w) {
    if (ex.raw_hierarchy.Parent(w) != kInvalidItem) {
      parents[w].push_back(ex.raw_hierarchy.Parent(w));
    }
  }
  DagHierarchy dag(parents);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  DagPreprocessResult pre = DagPreprocess(ex.raw_db, dag);
  PatternMap mined = MineDag(pre, params);
  EXPECT_EQ(testing::Sorted(mined), testing::Sorted(ex.ExpectedOutput()));
}

}  // namespace
}  // namespace lash
