#include "io/text_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace lash {
namespace {

TEST(TextIoTest, DatabaseRoundTrip) {
  testing::PaperExample ex;
  std::ostringstream out;
  WriteDatabase(out, ex.raw_db, ex.vocab);
  std::istringstream in(out.str());
  Vocabulary vocab2;
  Database db2 = ReadDatabase(in, &vocab2);
  ASSERT_EQ(db2.size(), ex.raw_db.size());
  for (size_t i = 0; i < db2.size(); ++i) {
    ASSERT_EQ(db2[i].size(), ex.raw_db[i].size());
    for (size_t j = 0; j < db2[i].size(); ++j) {
      EXPECT_EQ(vocab2.Name(db2[i][j]), ex.vocab.Name(ex.raw_db[i][j]));
    }
  }
}

TEST(TextIoTest, HierarchyRoundTrip) {
  testing::PaperExample ex;
  std::ostringstream out;
  WriteHierarchy(out, ex.vocab);
  std::istringstream in(out.str());
  Vocabulary vocab2;
  ReadHierarchy(in, &vocab2);
  // All parent relations preserved (by name).
  for (ItemId id = 1; id <= ex.vocab.NumItems(); ++id) {
    ItemId parent = ex.vocab.Parent(id);
    if (parent == kInvalidItem) continue;
    ItemId id2 = vocab2.Lookup(ex.vocab.Name(id));
    ASSERT_NE(id2, kInvalidItem);
    EXPECT_EQ(vocab2.Name(vocab2.Parent(id2)), ex.vocab.Name(parent));
  }
}

TEST(TextIoTest, ReadHierarchyRejectsMalformed) {
  std::istringstream in("childwithouttab\n");
  Vocabulary vocab;
  EXPECT_THROW(ReadHierarchy(in, &vocab), std::invalid_argument);
}

TEST(TextIoTest, ReadDatabaseSkipsEmptyLines) {
  std::istringstream in("a b\n\n\nc\n");
  Vocabulary vocab;
  Database db = ReadDatabase(in, &vocab);
  EXPECT_EQ(db.size(), 2u);
}

TEST(TextIoTest, WritePatternsSortedAndNamed) {
  PatternMap patterns;
  patterns.emplace(Sequence{2, 1}, 7);
  patterns.emplace(Sequence{1, 2}, 9);
  std::ostringstream out;
  WritePatterns(out, patterns, [](ItemId w) { return "i" + std::to_string(w); });
  EXPECT_EQ(out.str(), "9\ti1 i2\n7\ti2 i1\n");
}

}  // namespace
}  // namespace lash
