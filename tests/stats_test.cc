#include "stats/output_stats.h"

#include <gtest/gtest.h>

#include "algo/lash.h"
#include "algo/mgfsm.h"
#include "miner/enumerate.h"
#include "test_util.h"

namespace lash {
namespace {

TEST(OutputStatsTest, EmptyOutput) {
  Hierarchy h = Hierarchy::Flat(3);
  OutputStatsResult stats = ComputeOutputStats({}, {}, h);
  EXPECT_EQ(stats.total, 0u);
}

TEST(OutputStatsTest, SingletonIsMaximalClosedNontrivial) {
  Hierarchy h({kInvalidItem, kInvalidItem, 1});
  PatternMap out;
  out.emplace(Sequence{1, 1}, 5);
  OutputStatsResult stats = ComputeOutputStats(out, {}, h);
  EXPECT_EQ(stats.total, 1u);
  EXPECT_DOUBLE_EQ(stats.maximal_pct, 100.0);
  EXPECT_DOUBLE_EQ(stats.closed_pct, 100.0);
  EXPECT_DOUBLE_EQ(stats.nontrivial_pct, 100.0);
}

TEST(OutputStatsTest, LongerPatternSubsumesShorter) {
  Hierarchy h = Hierarchy::Flat(3);
  PatternMap out;
  out.emplace(Sequence{1, 2}, 5);      // Non-maximal: 1 2 3 extends it.
  out.emplace(Sequence{2, 3}, 7);      // Non-maximal, and non-closed? freq differs -> closed.
  out.emplace(Sequence{1, 2, 3}, 5);   // Maximal.
  OutputStatsResult stats = ComputeOutputStats(out, {}, h);
  // {1,2} has an equal-frequency supersequence -> non-closed, non-maximal.
  // {2,3}: supersequence has different frequency -> closed but non-maximal.
  // {1,2,3}: maximal and closed.
  EXPECT_EQ(stats.total, 3u);
  EXPECT_NEAR(stats.maximal_pct, 100.0 / 3, 1e-9);
  EXPECT_NEAR(stats.closed_pct, 200.0 / 3, 1e-9);
}

TEST(OutputStatsTest, SpecializationSubsumesGeneralization) {
  // Hierarchy: 1 <- 2 (2 specializes 1). A *complete* GSM output (as the
  // marking pass assumes — every frequent pattern of admissible length is
  // present, by Lemma 1): all four patterns at the 1/2 level.
  Hierarchy h({kInvalidItem, kInvalidItem, 1});
  PatternMap out;
  out.emplace(Sequence{1, 1}, 4);
  out.emplace(Sequence{1, 2}, 4);
  out.emplace(Sequence{2, 1}, 4);
  out.emplace(Sequence{2, 2}, 4);  // The only maximal pattern.
  OutputStatsResult stats = ComputeOutputStats(out, {}, h);
  EXPECT_NEAR(stats.maximal_pct, 25.0, 1e-9);
  // All frequencies equal -> every non-maximal pattern is also non-closed.
  EXPECT_NEAR(stats.closed_pct, 25.0, 1e-9);
}

TEST(OutputStatsTest, MultiStepSubsumptionDetected) {
  // {1,1} ⊑0 {3,3} needs two generalization steps (3 -> 2 -> 1); the
  // intermediate {2,2}-level patterns are frequent and present, so the
  // one-step marking must still catch it.
  Hierarchy h({kInvalidItem, kInvalidItem, 1, 2});
  PatternMap out;
  out.emplace(Sequence{1, 1}, 4);
  out.emplace(Sequence{1, 2}, 4);
  out.emplace(Sequence{2, 1}, 4);
  out.emplace(Sequence{2, 2}, 4);
  out.emplace(Sequence{2, 3}, 4);
  out.emplace(Sequence{3, 2}, 4);
  out.emplace(Sequence{1, 3}, 4);
  out.emplace(Sequence{3, 1}, 4);
  out.emplace(Sequence{3, 3}, 4);
  OutputStatsResult stats = ComputeOutputStats(out, {}, h);
  // Only the most specific pattern {3,3} is maximal.
  EXPECT_NEAR(stats.maximal_pct, 100.0 / 9, 1e-9);
}

TEST(OutputStatsTest, TrivialClosureFromFlatOutput) {
  // Hierarchy 1 <- 2, 1 <- 3. Flat miner found {2,2}. Then {2,2}, {1,2},
  // {2,1}, {1,1} are trivial (reachable by generalization); {3,1} is not.
  Hierarchy h({kInvalidItem, kInvalidItem, 1, 1});
  PatternMap out;
  out.emplace(Sequence{2, 2}, 4);
  out.emplace(Sequence{1, 2}, 4);
  out.emplace(Sequence{2, 1}, 4);
  out.emplace(Sequence{1, 1}, 5);
  out.emplace(Sequence{3, 1}, 2);
  PatternMap flat;
  flat.emplace(Sequence{2, 2}, 4);
  OutputStatsResult stats = ComputeOutputStats(out, flat, h);
  EXPECT_NEAR(stats.nontrivial_pct, 100.0 / 5, 1e-9);  // Only {3,1}.
}

TEST(OutputStatsTest, PaperExampleNontrivialPatterns) {
  // In the running example b1D and BD are frequent although no
  // specialization is frequent (Sec. 2) -> they are non-trivial.
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap gsm = MineByEnumeration(ex.pre.database, ex.pre.hierarchy, params);
  // Flat mining: same database, flat hierarchy over the same rank ids.
  Hierarchy flat_h = Hierarchy::Flat(ex.pre.hierarchy.NumItems());
  PatternMap flat = MineByEnumeration(ex.pre.database, flat_h, params);
  OutputStatsResult stats = ComputeOutputStats(gsm, flat, ex.pre.hierarchy);
  EXPECT_EQ(stats.total, 10u);
  // Trivial: generalization closure of flat-frequent patterns.
  // Flat-frequent pairs: aa(2), ab1? b1 occurs literally in T1 only ->
  // infrequent; ac: T2(gap1),T3 -> 2 frequent. So closure = {aa, ac}.
  // Non-trivial: the remaining 8 of 10.
  EXPECT_NEAR(stats.nontrivial_pct, 80.0, 1e-9);
  // Maximal: {aa, ac, ab1, b1a, aBc, b1D} — aB/Ba/Bc/BD all have frequent
  // specializations or extensions in the output.
  EXPECT_NEAR(stats.maximal_pct, 60.0, 1e-9);
  // Non-closed: Ba (b1a has equal frequency 2), Bc (aBc), BD (b1D).
  EXPECT_NEAR(stats.closed_pct, 70.0, 1e-9);
}

TEST(RemapPatternsTest, RemapsIds) {
  PatternMap in;
  in.emplace(Sequence{1, 2}, 3);
  std::vector<ItemId> map = {kInvalidItem, 5, 7};
  PatternMap out = RemapPatterns(in, map);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.at(Sequence{5, 7}), 3u);
}

TEST(RemapPatternsTest, ThrowsOnUnmappedId) {
  PatternMap in;
  in.emplace(Sequence{4}, 1);
  std::vector<ItemId> map = {kInvalidItem, 5};
  EXPECT_THROW(RemapPatterns(in, map), std::invalid_argument);
}

}  // namespace
}  // namespace lash
