// Tests of the hardened CLI flag parser (tools/arg_parse.h): declared flag
// sets, unknown-flag rejection, and integer parse-failure handling.

#include <gtest/gtest.h>

#include <vector>

#include "tools/arg_parse.h"

namespace lash::tools {
namespace {

Args Parse(std::vector<const char*> argv, std::initializer_list<FlagSpec> spec) {
  argv.insert(argv.begin(), "tool");
  return Args(static_cast<int>(argv.size()),
              const_cast<char**>(argv.data()), spec);
}

TEST(ArgsTest, ParsesDeclaredFlagsAndSwitches) {
  Args args = Parse({"--sigma", "100", "--distributed", "--miner", "bfs"},
                    {{"sigma"}, {"miner"}, {"distributed", false}});
  EXPECT_TRUE(args.Has("sigma"));
  EXPECT_EQ(args.GetInt("sigma", 0), 100u);
  EXPECT_TRUE(args.Has("distributed"));
  EXPECT_EQ(args.Get("miner", ""), "bfs");
  EXPECT_FALSE(args.Has("gamma"));
  EXPECT_EQ(args.GetInt("gamma", 7), 7u);
}

TEST(ArgsTest, HelpIsAlwaysAccepted) {
  Args args = Parse({"--help"}, {{"sigma"}});
  EXPECT_TRUE(args.Has("help"));
}

TEST(ArgsTest, RejectsUnknownAndTypoedFlags) {
  try {
    Parse({"--sigmaa", "100"}, {{"sigma"}});
    FAIL() << "unknown flag must raise ArgError";
  } catch (const ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("--sigmaa"), std::string::npos);
  }
}

TEST(ArgsTest, RejectsPositionalArguments) {
  EXPECT_THROW(Parse({"sigma"}, {{"sigma"}}), ArgError);
}

TEST(ArgsTest, ValueFlagWithoutValueIsAnError) {
  // Trailing flag with no value...
  EXPECT_THROW(Parse({"--sigma"}, {{"sigma"}}), ArgError);
  // ...and a flag directly followed by another flag.
  try {
    Parse({"--sigma", "--distributed"}, {{"sigma"}, {"distributed", false}});
    FAIL() << "missing value must raise ArgError";
  } catch (const ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("--sigma"), std::string::npos);
  }
}

TEST(ArgsTest, GetIntRejectsUnparsableValues) {
  for (const char* bad :
       {"abc", "12x", "", "-3", " -3", " 3", "+3", "9999999999999999999999"}) {
    Args args = Parse({"--sigma", bad}, {{"sigma"}});
    EXPECT_THROW(args.GetInt("sigma", 0), ArgError) << "value: " << bad;
  }
  Args args = Parse({"--sigma", "42"}, {{"sigma"}});
  EXPECT_EQ(args.GetInt("sigma", 0), 42u);
}

TEST(ArgsTest, GetIntEnforcesTheCallerRange) {
  // Values that parse as uint64 but exceed the caller's range must error
  // instead of silently wrapping in a later narrowing cast.
  Args args = Parse({"--gamma", "4294967296"}, {{"gamma"}});
  EXPECT_THROW(args.GetInt("gamma", 0, UINT32_MAX), ArgError);
  EXPECT_EQ(args.GetInt("gamma", 0), 4294967296u);
  Args ok = Parse({"--gamma", "4294967295"}, {{"gamma"}});
  EXPECT_EQ(ok.GetInt("gamma", 0, UINT32_MAX), 4294967295u);
}

TEST(ArgsTest, RequireThrowsWhenMissing) {
  Args args = Parse({}, {{"sequences"}});
  EXPECT_THROW(args.Require("sequences"), ArgError);
  Args given = Parse({"--sequences", "db.txt"}, {{"sequences"}});
  EXPECT_EQ(given.Require("sequences"), "db.txt");
}

}  // namespace
}  // namespace lash::tools
