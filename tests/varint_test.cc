#include "util/varint.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.h"

namespace lash {
namespace {

TEST(VarintTest, RoundTrip32) {
  const uint32_t values[] = {0,    1,    127,        128,
                             300,  16383, 16384,     (1u << 28) - 1,
                             1u << 28, std::numeric_limits<uint32_t>::max()};
  for (uint32_t v : values) {
    std::string buffer;
    PutVarint32(&buffer, v);
    EXPECT_EQ(buffer.size(), Varint32Size(v));
    size_t pos = 0;
    uint32_t decoded = 0;
    ASSERT_TRUE(GetVarint32(buffer, &pos, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buffer.size());
  }
}

TEST(VarintTest, RoundTrip64) {
  const uint64_t values[] = {0, 1, 127, 128, 1ull << 35, 1ull << 62,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buffer;
    PutVarint64(&buffer, v);
    EXPECT_EQ(buffer.size(), Varint64Size(v));
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buffer, &pos, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, SizeGrowsWithValue) {
  EXPECT_EQ(Varint32Size(0), 1u);
  EXPECT_EQ(Varint32Size(127), 1u);
  EXPECT_EQ(Varint32Size(128), 2u);
  EXPECT_EQ(Varint32Size(1u << 14), 3u);
  EXPECT_EQ(Varint32Size(std::numeric_limits<uint32_t>::max()), 5u);
}

TEST(VarintTest, TruncatedInputRejected) {
  std::string buffer;
  PutVarint32(&buffer, 300);
  buffer.pop_back();
  size_t pos = 0;
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(buffer, &pos, &decoded));
}

TEST(VarintTest, MalformedOverlongRejected) {
  std::string buffer(6, static_cast<char>(0x80));  // Never terminates.
  size_t pos = 0;
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(buffer, &pos, &decoded));
}

TEST(VarintTest, SequenceRoundTrip) {
  Sequence seq = {1, 5, 1000, 42, kBlank};
  std::string buffer;
  EncodeSequence(&buffer, seq);
  EXPECT_EQ(buffer.size(), EncodedSequenceSize(seq));
  size_t pos = 0;
  Sequence decoded;
  ASSERT_TRUE(DecodeSequence(buffer, &pos, &decoded));
  EXPECT_EQ(decoded, seq);
}

TEST(VarintTest, EmptySequenceRoundTrip) {
  Sequence seq;
  std::string buffer;
  EncodeSequence(&buffer, seq);
  size_t pos = 0;
  Sequence decoded = {9};
  ASSERT_TRUE(DecodeSequence(buffer, &pos, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(VarintTest, RewrittenSequenceRoundTrip) {
  Sequence seq = {3, kBlank, kBlank, 1, kBlank, 2};
  std::string buffer;
  EncodeRewrittenSequence(&buffer, seq);
  EXPECT_EQ(buffer.size(), EncodedRewrittenSequenceSize(seq));
  size_t pos = 0;
  Sequence decoded;
  ASSERT_TRUE(DecodeRewrittenSequence(buffer, &pos, &decoded));
  EXPECT_EQ(decoded, seq);
}

TEST(VarintTest, BlanksAreCheap) {
  // A run of blanks costs two bytes regardless of length (Sec. 4.2: blanks
  // can be represented compactly), whereas plain encoding pays 5 bytes each.
  Sequence many_blanks = {1};
  many_blanks.insert(many_blanks.end(), 100, kBlank);
  many_blanks.push_back(2);
  EXPECT_LE(EncodedRewrittenSequenceSize(many_blanks), 6u);
  EXPECT_GE(EncodedSequenceSize(many_blanks), 500u);
}

TEST(VarintTest, RandomSequencesRoundTrip) {
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    Sequence seq;
    size_t len = rng.Uniform(20);
    for (size_t i = 0; i < len; ++i) {
      seq.push_back(rng.Bernoulli(0.3) ? kBlank
                                       : static_cast<ItemId>(1 + rng.Uniform(1000)));
    }
    std::string buffer;
    EncodeRewrittenSequence(&buffer, seq);
    size_t pos = 0;
    Sequence decoded;
    ASSERT_TRUE(DecodeRewrittenSequence(buffer, &pos, &decoded));
    EXPECT_EQ(decoded, seq);
    EXPECT_EQ(pos, buffer.size());
  }
}

}  // namespace
}  // namespace lash
