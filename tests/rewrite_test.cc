#include "core/rewrite.h"

#include <gtest/gtest.h>

#include "miner/enumerate.h"
#include "test_util.h"

namespace lash {
namespace {

class RewritePaperTest : public ::testing::Test {
 protected:
  testing::PaperExample ex_;
};

TEST_F(RewritePaperTest, WGeneralizationOfT2) {
  // T2 = a b3 c c b2 with pivot B: b3 and b2 generalize to B, the two c's
  // (larger than B) become blanks (Sec. 4.2) -> a B _ _ B.
  Rewriter rewriter(&ex_.pre.hierarchy, /*gamma=*/1, /*lambda=*/3);
  Sequence t2 = ex_.RankSeq({"a", "b3", "c", "c", "b2"});
  Sequence expected = {ex_.Rank("a"), ex_.Rank("B"), kBlank, kBlank,
                       ex_.Rank("B")};
  EXPECT_EQ(rewriter.Generalize(t2, ex_.Rank("B")), expected);
}

TEST_F(RewritePaperTest, DistanceTableOfSection43) {
  // T = a b1 a c d1 a d2 c f b2 c, pivot D, gamma=1 (Sec. 4.3):
  // D-generalization gives a b1 a c D a D c _ B c and minimum pivot
  // distances 3 3 2 2 1 2 1 2 2 3 4.
  Rewriter rewriter(&ex_.pre.hierarchy, /*gamma=*/1, /*lambda=*/2);
  Sequence t = ex_.RankSeq(
      {"a", "b1", "a", "c", "d1", "a", "d2", "c", "f", "b2", "c"});
  Sequence gen = rewriter.Generalize(t, ex_.Rank("D"));
  Sequence expected_gen = {ex_.Rank("a"), ex_.Rank("b1"), ex_.Rank("a"),
                           ex_.Rank("c"), ex_.Rank("D"),  ex_.Rank("a"),
                           ex_.Rank("D"), ex_.Rank("c"),  kBlank,
                           ex_.Rank("B"), ex_.Rank("c")};
  ASSERT_EQ(gen, expected_gen);
  std::vector<uint32_t> dist = rewriter.MinPivotDistances(gen, ex_.Rank("D"));
  EXPECT_EQ(dist, (std::vector<uint32_t>{3, 3, 2, 2, 1, 2, 1, 2, 2, 3, 4}));
}

TEST_F(RewritePaperTest, UnreachabilityReductionLambda2) {
  // For lambda=2 the paper reduces to "acDaDc " -> after blank trimming
  // acDaDc (Sec. 4.3).
  Rewriter rewriter(&ex_.pre.hierarchy, /*gamma=*/1, /*lambda=*/2);
  Sequence t = ex_.RankSeq(
      {"a", "b1", "a", "c", "d1", "a", "d2", "c", "f", "b2", "c"});
  EXPECT_EQ(rewriter.Rewrite(t, ex_.Rank("D")),
            ex_.RankSeq({"a", "c", "D", "a", "D", "c"}));
}

TEST_F(RewritePaperTest, UnreachabilityReductionLambda3) {
  // For lambda=3 the paper keeps ab1acDaDc B (Sec. 4.3).
  Rewriter rewriter(&ex_.pre.hierarchy, /*gamma=*/1, /*lambda=*/3);
  Sequence t = ex_.RankSeq(
      {"a", "b1", "a", "c", "d1", "a", "d2", "c", "f", "b2", "c"});
  Sequence expected = {ex_.Rank("a"), ex_.Rank("b1"), ex_.Rank("a"),
                       ex_.Rank("c"), ex_.Rank("D"),  ex_.Rank("a"),
                       ex_.Rank("D"), ex_.Rank("c"),  kBlank,
                       ex_.Rank("B")};
  EXPECT_EQ(rewriter.Rewrite(t, ex_.Rank("D")), expected);
}

TEST_F(RewritePaperTest, PartitionPbMatchesFigure2) {
  // Fig. 2: P_B = {aB aB, aB, B a a, aB} (gamma=1, lambda=3).
  Rewriter rewriter(&ex_.pre.hierarchy, /*gamma=*/1, /*lambda=*/3);
  ItemId pivot = ex_.Rank("B");
  ItemId a = ex_.Rank("a"), B = ex_.Rank("B");
  // T1 = a b1 a b1 -> aBaB.
  EXPECT_EQ(rewriter.Rewrite(ex_.pre.database[0], pivot),
            (Sequence{a, B, a, B}));
  // T2 = a b3 c c b2 -> aB (trailing " _ _ B" : second B is isolated?
  // No — distance: aB__B: B at index 5 has no non-blank within gamma+1=2?
  // Index 3,4 are blanks, so it is isolated and removed; blanks trimmed.
  EXPECT_EQ(rewriter.Rewrite(ex_.pre.database[1], pivot), (Sequence{a, B}));
  // T4 = b11 a e a -> B a _ a (e has no frequent ancestor).
  EXPECT_EQ(rewriter.Rewrite(ex_.pre.database[3], pivot),
            (Sequence{B, a, kBlank, a}));
  // T5 = a b12 d1 c -> aB.
  EXPECT_EQ(rewriter.Rewrite(ex_.pre.database[4], pivot), (Sequence{a, B}));
  // T6 = b13 f d2 -> B alone is isolated -> empty.
  EXPECT_TRUE(rewriter.Rewrite(ex_.pre.database[5], pivot).empty());
  // T3 = a c contains no B item.
  EXPECT_TRUE(rewriter.Rewrite(ex_.pre.database[2], pivot).empty());
}

TEST_F(RewritePaperTest, PartitionPaMatchesFigure2) {
  // Fig. 2: P_a = {a a : 2} — from T1 (a _ a after blanking b1's? No:
  // for pivot a, every other item is irrelevant with no small-enough
  // ancestor -> blanks; T1 = a _ a _ -> a _ a; T4 = _ a _ a -> a _ a.
  Rewriter rewriter(&ex_.pre.hierarchy, /*gamma=*/1, /*lambda=*/3);
  ItemId pivot = ex_.Rank("a");
  ItemId a = ex_.Rank("a");
  EXPECT_EQ(rewriter.Rewrite(ex_.pre.database[0], pivot),
            (Sequence{a, kBlank, a}));
  EXPECT_EQ(rewriter.Rewrite(ex_.pre.database[3], pivot),
            (Sequence{a, kBlank, a}));
  // T3 = a c: single isolated a -> empty.
  EXPECT_TRUE(rewriter.Rewrite(ex_.pre.database[2], pivot).empty());
}

TEST(RewriteTest, RequiresRankMonotoneHierarchy) {
  Hierarchy bad({kInvalidItem, 2, kInvalidItem});
  EXPECT_THROW(Rewriter(&bad, 0, 2), std::invalid_argument);
}

TEST(RewriteTest, BlankRunsCappedAtGammaPlusOne) {
  Hierarchy h = Hierarchy::Flat(2);
  // Pivot 1; item 2 is irrelevant (no ancestor) -> blanks.
  Rewriter rewriter(&h, /*gamma=*/1, /*lambda=*/5);
  Sequence t = {1, 1, 2, 2, 2, 2, 1, 1};
  Sequence rewritten = rewriter.Rewrite(t, 1);
  // The run of 4 blanks (unbridgeable under gamma=1) is capped at
  // gamma+1 = 2 blanks, which is still unbridgeable.
  EXPECT_EQ(rewritten, (Sequence{1, 1, kBlank, kBlank, 1, 1}));
}

TEST(RewriteTest, IsolatedPivotRemoved) {
  Hierarchy h = Hierarchy::Flat(2);
  Rewriter rewriter(&h, /*gamma=*/0, /*lambda=*/5);
  // 1 .. 1: with gamma=0 the two pivots are 5 apart; each pivot's only
  // neighbour within distance 1 is a blank -> everything vanishes.
  Sequence t = {1, 2, 2, 2, 2, 1};
  EXPECT_TRUE(rewriter.Rewrite(t, 1).empty());
}

// The central correctness property (Lemma 3 + Sec. 4.3): rewriting preserves
// the pivot sequences G_{w,λ}(T) exactly, for every pivot.
class WEquivalencyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(WEquivalencyTest, RewritePreservesPivotSequences) {
  const auto [gamma, lambda] = GetParam();
  Rng rng(4242 + gamma * 31 + lambda);
  for (int trial = 0; trial < 150; ++trial) {
    const size_t num_items = 2 + rng.Uniform(9);
    Hierarchy h = testing::RandomRankHierarchy(num_items, 0.4, &rng);
    Rewriter rewriter(&h, gamma, lambda);
    Sequence t;
    size_t len = 1 + rng.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      t.push_back(static_cast<ItemId>(1 + rng.Uniform(num_items)));
    }
    for (ItemId pivot = 1; pivot <= num_items; ++pivot) {
      SequenceSet before, after;
      EnumeratePivotSequences(t, h, gamma, lambda, pivot, &before);
      Sequence rewritten = rewriter.Rewrite(t, pivot);
      EnumeratePivotSequences(rewritten, h, gamma, lambda, pivot, &after);
      EXPECT_EQ(before == after, true)
          << "pivot=" << pivot << " trial=" << trial << " gamma=" << gamma
          << " lambda=" << lambda;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, WEquivalencyTest,
    ::testing::Combine(::testing::Values(0u, 1u, 2u),
                       ::testing::Values(2u, 3u, 5u)));

// ScratchRewriter must be output-identical to Rewriter — including the
// empty-result signal, the gamma == 0 run-based fast path, and sequences
// that already contain blanks (rewrites of rewrites).
class ScratchRewriterTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(ScratchRewriterTest, MatchesReferenceRewriter) {
  const auto [gamma, lambda] = GetParam();
  Rng rng(90125 + gamma * 17 + lambda);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t num_items = 2 + rng.Uniform(9);
    Hierarchy h = testing::RandomRankHierarchy(num_items, 0.4, &rng);
    Rewriter reference(&h, gamma, lambda);
    ScratchRewriter scratch(&h, gamma, lambda);
    Sequence t;
    size_t len = 1 + rng.Uniform(14);
    for (size_t i = 0; i < len; ++i) {
      // ~1 in 8 positions blank: exercises runs and IsItem handling.
      t.push_back(rng.Bernoulli(0.125)
                      ? kBlank
                      : static_cast<ItemId>(1 + rng.Uniform(num_items)));
    }
    Sequence rewritten;  // Reused across pivots, as in the LASH map phase.
    for (ItemId pivot = 1; pivot <= num_items; ++pivot) {
      Sequence expected = reference.Rewrite(t, pivot);
      bool ok = scratch.Rewrite(t, pivot, &rewritten);
      ASSERT_EQ(ok, !expected.empty())
          << "pivot=" << pivot << " trial=" << trial;
      if (ok) {
        ASSERT_EQ(rewritten, expected)
            << "pivot=" << pivot << " trial=" << trial;
      }
      Sequence gen_expected = reference.Generalize(t, pivot);
      Sequence gen;
      scratch.Generalize(t, pivot, &gen);
      ASSERT_EQ(gen, gen_expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, ScratchRewriterTest,
    ::testing::Combine(::testing::Values(0u, 1u, 2u),
                       ::testing::Values(2u, 3u, 5u)));

// RewriteAllPivots must emit exactly the non-empty [w | P_w(T)] keys,
// pivots ascending, that per-pivot Rewriter rewriting would produce. One
// shared differential driver covers both dispatch targets: the gamma == 0
// run-walk specialization and the gamma > 0 merged occurrence-window DP.
// The sigma axis of the grid is the `num_frequent` rank cut (a random
// prefix of the item ranks counts as frequent), drawn per trial.
void CheckFusedPivotLoop(uint32_t gamma, uint32_t lambda, uint64_t seed,
                         int trials) {
  Rng rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const size_t num_items = 2 + rng.Uniform(9);
    Hierarchy h = testing::RandomRankHierarchy(num_items, 0.4, &rng);
    Rewriter reference(&h, gamma, lambda);
    ScratchRewriter scratch(&h, gamma, lambda);
    Sequence t;
    // Long enough relative to the (lambda-1)*(gamma+1) window radius that
    // trials exercise disjoint occurrence intervals, merged intervals, and
    // cross-interval isolated-pivot visibility, not just whole-sequence
    // windows.
    size_t len = 1 + rng.Uniform(13 + 8 * gamma * lambda);
    for (size_t i = 0; i < len; ++i) {
      // ~1 in 8 positions blank: the fused loop must treat them as
      // impassable (root_rank_ = kBlank) exactly like the reference.
      t.push_back(rng.Bernoulli(0.125)
                      ? kBlank
                      : static_cast<ItemId>(1 + rng.Uniform(num_items)));
    }
    const ItemId num_frequent =
        static_cast<ItemId>(rng.Uniform(num_items + 1));

    std::vector<Sequence> expected;
    for (ItemId w = 1; w <= num_frequent; ++w) {
      Sequence rewritten = reference.Rewrite(t, w);
      if (rewritten.empty()) continue;
      Sequence key{w};
      key.insert(key.end(), rewritten.begin(), rewritten.end());
      expected.push_back(std::move(key));
    }
    std::vector<Sequence> got;
    scratch.RewriteAllPivots(
        t, num_frequent, [&](const Sequence& key) { got.push_back(key); });
    ASSERT_EQ(got, expected) << "trial=" << trial << " gamma=" << gamma
                             << " lambda=" << lambda
                             << " num_frequent=" << num_frequent
                             << " t=" << ::testing::PrintToString(t);
  }
}

TEST(ScratchRewriterTest, FusedPivotLoopMatchesPerPivotRewrites) {
  CheckFusedPivotLoop(/*gamma=*/0, /*lambda=*/2, 5150, 100);
  CheckFusedPivotLoop(/*gamma=*/0, /*lambda=*/5, 5151, 100);
}

TEST(ScratchRewriterTest, FusedPivotLoopMatchesPerPivotRewritesGammaPositive) {
  for (uint32_t gamma : {1u, 2u, 3u}) {
    for (uint32_t lambda : {2u, 3u, 5u}) {
      CheckFusedPivotLoop(gamma, lambda, 6200 + 10 * gamma + lambda, 60);
    }
  }
}

}  // namespace
}  // namespace lash
