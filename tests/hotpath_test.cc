// Differential and property tests for the optimized mining hot path:
// every local miner against the naive enumeration oracle across randomized
// hierarchical databases and parameter sweeps, parallel vs. serial pivot
// mining, and the EventRegrouper that replaced PSM's per-insert embedding
// dedup.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/sequential.h"
#include "miner/enumerate.h"
#include "miner/miner.h"
#include "miner/psm.h"
#include "miner/psm_legacy.h"
#include "test_util.h"
#include "util/rng.h"

namespace lash {
namespace {

// Hierarchy shapes the sweep covers: flat (no generalization), a single
// deep chain (max-depth ancestor walks), and random forests of varying
// root probability (mixed depth).
Hierarchy MakeHierarchy(int shape, size_t n, Rng* rng) {
  switch (shape) {
    case 0:
      return Hierarchy::Flat(n);
    case 1: {  // One chain: 1 <- 2 <- ... <- n.
      std::vector<ItemId> parent(n + 1, kInvalidItem);
      for (ItemId w = 2; w <= n; ++w) parent[w] = w - 1;
      return Hierarchy(std::move(parent));
    }
    case 2:
      return testing::RandomRankHierarchy(n, 0.5, rng);
    default:
      return testing::RandomRankHierarchy(n, 0.15, rng);  // Deep forest.
  }
}

// A random raw partition (blanks included) with aggregation weights.
Partition RandomPartition(size_t num_sequences, size_t max_length,
                          size_t num_items, Rng* rng) {
  Partition partition;
  for (size_t i = 0; i < num_sequences; ++i) {
    Sequence t;
    size_t len = 2 + rng->Uniform(max_length - 1);
    for (size_t j = 0; j < len; ++j) {
      t.push_back(rng->Bernoulli(0.15)
                      ? kBlank
                      : static_cast<ItemId>(1 + rng->Uniform(num_items)));
    }
    partition.Add(std::move(t), 1 + rng->Uniform(3));
  }
  return partition;
}

TEST(HotPathTest, AllPartitionMinersAgreeWithNaive) {
  Rng rng(31337);
  int checked = 0;
  for (int shape = 0; shape < 4; ++shape) {
    for (uint32_t gamma : {0u, 1u, 2u}) {
      for (uint32_t lambda : {2u, 3u, 5u}) {
        const size_t n = 6 + rng.Uniform(6);
        Hierarchy h = MakeHierarchy(shape, n, &rng);
        GsmParams params{.sigma = 1 + rng.Uniform(3),
                         .gamma = gamma,
                         .lambda = lambda};
        Partition partition = RandomPartition(12, 7, n, &rng);
        const ItemId pivot = static_cast<ItemId>(1 + rng.Uniform(n));
        PatternMap expected =
            MinePartitionByEnumeration(partition, h, params, pivot);

        for (MinerKind kind : {MinerKind::kBfs, MinerKind::kDfs,
                               MinerKind::kPsm, MinerKind::kPsmIndex}) {
          auto miner = MakeLocalMiner(kind, &h, params);
          PatternMap mined = partition.size() == 0
                                 ? PatternMap{}
                                 : miner->Mine(partition, pivot, nullptr);
          ASSERT_EQ(testing::Sorted(mined), testing::Sorted(expected))
              << miner->name() << " shape=" << shape << " gamma=" << gamma
              << " lambda=" << lambda << " pivot=" << pivot;
        }
        const LegacyPartition legacy_partition =
            MaterializeLegacyPartition(partition);
        for (bool use_index : {false, true}) {
          LegacyPsmMiner legacy(&h, params, use_index);
          PatternMap mined = legacy.Mine(legacy_partition, pivot, nullptr);
          ASSERT_EQ(testing::Sorted(mined), testing::Sorted(expected))
              << legacy.name() << " shape=" << shape;
        }
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 4 * 3 * 3);
}

TEST(HotPathTest, FullPipelineSweepAgreesWithEnumeration) {
  Rng rng(271828);
  for (int shape = 0; shape < 4; ++shape) {
    for (int trial = 0; trial < 3; ++trial) {
      const size_t n = 5 + rng.Uniform(6);
      Hierarchy h = MakeHierarchy(shape, n, &rng);
      Database db = testing::RandomDatabase(15, 8, n, &rng);
      PreprocessResult pre = Preprocess(db, h);
      GsmParams params{.sigma = 1 + rng.Uniform(3),
                       .gamma = static_cast<uint32_t>(rng.Uniform(3)),
                       .lambda = static_cast<uint32_t>(2 + rng.Uniform(4))};
      PatternMap expected =
          MineByEnumeration(pre.database, pre.hierarchy, params);
      for (MinerKind kind : {MinerKind::kBfs, MinerKind::kDfs,
                             MinerKind::kPsm, MinerKind::kPsmIndex}) {
        PatternMap mined =
            MineSequential(pre, params, kind, nullptr, /*num_threads=*/1);
        ASSERT_EQ(testing::Sorted(mined), testing::Sorted(expected))
            << "shape=" << shape << " trial=" << trial
            << " kind=" << static_cast<int>(kind);
      }
    }
  }
}

TEST(HotPathTest, ParallelMiningMatchesSerial) {
  Rng rng(1234);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t n = 8 + rng.Uniform(8);
    Hierarchy h = testing::RandomRankHierarchy(n, 0.3, &rng);
    Database db = testing::RandomDatabase(40, 10, n, &rng);
    PreprocessResult pre = Preprocess(db, h);
    GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
    MinerStats serial_stats, parallel_stats;
    PatternMap serial = MineSequential(pre, params, MinerKind::kPsmIndex,
                                       &serial_stats, /*num_threads=*/1);
    PatternMap parallel = MineSequential(pre, params, MinerKind::kPsmIndex,
                                         &parallel_stats, /*num_threads=*/4);
    ASSERT_EQ(testing::Sorted(serial), testing::Sorted(parallel))
        << "trial " << trial;
    // Search-space accounting must not depend on the thread count either.
    EXPECT_EQ(serial_stats.candidates, parallel_stats.candidates);
    EXPECT_EQ(serial_stats.outputs, parallel_stats.outputs);
  }
}

TEST(HotPathTest, WorkerExceptionsPropagateToCaller) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  // An unknown miner kind makes every worker's MakeLocalMiner throw; the
  // exception must surface on the calling thread, not kill the process.
  EXPECT_THROW(MineSequential(ex.pre, params, static_cast<MinerKind>(99),
                              nullptr, /*num_threads=*/4),
               std::invalid_argument);
}

TEST(HotPathTest, ParallelDefaultThreadsMatchesSerialOnPaperExample) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap serial = MineSequential(ex.pre, params, MinerKind::kPsmIndex,
                                     nullptr, /*num_threads=*/1);
  PatternMap parallel = MineSequential(ex.pre, params, MinerKind::kPsmIndex,
                                       nullptr, /*num_threads=*/0);
  EXPECT_EQ(testing::Sorted(serial), testing::Sorted(parallel));
  EXPECT_EQ(testing::Sorted(serial), testing::Sorted(ex.ExpectedOutput()));
}

// ---- EventRegrouper: the dedup that replaced AddEmbedding's O(n²) scan ----

using psm_internal::EventGroup;
using psm_internal::EventRegrouper;
using psm_internal::ExpansionEvent;
using psm_internal::SortUniqueEvents;

// Generates an event stream the way PSM does: postings scanned in
// nondecreasing tid order, each emitting events for random items with
// duplicates and out-of-order embeddings within a (item, tid) run.
std::vector<ExpansionEvent> RandomEventStream(size_t num_tids,
                                              size_t num_items, Rng* rng) {
  std::vector<ExpansionEvent> events;
  for (uint32_t tid = 0; tid < num_tids; ++tid) {
    if (rng->Bernoulli(0.3)) continue;  // Not every tid supports the node.
    size_t bursts = 1 + rng->Uniform(4);
    for (size_t b = 0; b < bursts; ++b) {
      ItemId item = static_cast<ItemId>(1 + rng->Uniform(num_items));
      size_t copies = 1 + rng->Uniform(3);  // Duplicates on purpose.
      uint32_t start = rng->Uniform(6);
      uint32_t end = start + rng->Uniform(4);
      for (size_t c = 0; c < copies; ++c) {
        events.push_back({item, tid, Embedding{start, end}});
      }
    }
  }
  return events;
}

TEST(EventRegrouperTest, MatchesSortUniqueReference) {
  Rng rng(555);
  EventRegrouper regrouper;
  for (int trial = 0; trial < 50; ++trial) {
    const size_t num_items = 1 + rng.Uniform(10);
    std::vector<Frequency> weights;
    for (size_t i = 0; i < 20; ++i) weights.push_back(1 + rng.Uniform(5));

    // A nonempty prefix plays the part of the parent levels of the arena:
    // Regroup must leave it untouched and group only the tail.
    std::vector<ExpansionEvent> prefix =
        RandomEventStream(3, num_items, &rng);
    size_t from = prefix.size();
    std::vector<ExpansionEvent> tail =
        RandomEventStream(weights.size(), num_items, &rng);

    std::vector<ExpansionEvent> expected = prefix;
    expected.insert(expected.end(), tail.begin(), tail.end());
    SortUniqueEvents(&expected, from);

    std::vector<ExpansionEvent> actual = prefix;
    actual.insert(actual.end(), tail.begin(), tail.end());
    std::vector<EventGroup> groups;
    regrouper.Prepare(num_items + 1);
    size_t new_end = regrouper.Regroup(&actual, from, weights, &groups);

    ASSERT_EQ(actual, expected) << "trial " << trial;
    ASSERT_EQ(new_end, expected.size());

    // The group directory must tile [from, new_end) in ascending item
    // order and carry the weighted document frequency of each group.
    size_t pos = from;
    for (size_t g = 0; g < groups.size(); ++g) {
      ASSERT_EQ(groups[g].begin, pos);
      ASSERT_GT(groups[g].end, groups[g].begin);
      if (g > 0) ASSERT_LT(groups[g - 1].item, groups[g].item);
      Frequency weight = 0;
      uint32_t last_tid = UINT32_MAX;
      for (size_t i = groups[g].begin; i < groups[g].end; ++i) {
        ASSERT_EQ(actual[i].item, groups[g].item);
        if (actual[i].tid != last_tid) {
          weight += weights[actual[i].tid];
          last_tid = actual[i].tid;
        }
      }
      ASSERT_EQ(groups[g].weight, weight) << "trial " << trial;
      pos = groups[g].end;
    }
    ASSERT_EQ(pos, new_end);
  }
}

TEST(EventRegrouperTest, EmptyTailProducesNoGroups) {
  EventRegrouper regrouper;
  regrouper.Prepare(10);
  std::vector<ExpansionEvent> events = {{1, 0, Embedding{0, 0}}};
  std::vector<EventGroup> groups;
  std::vector<Frequency> weights(4, 1);
  EXPECT_EQ(regrouper.Regroup(&events, 1, weights, &groups), 1u);
  EXPECT_TRUE(groups.empty());
  EXPECT_EQ(events.size(), 1u);
}

TEST(EventRegrouperTest, DeduplicatesAdjacentAndDistantDuplicates) {
  // Two embeddings of one transaction expand to the same (start, j) pair
  // through different windows — the case the old AddEmbedding dedup scanned
  // linearly for.
  EventRegrouper regrouper;
  regrouper.Prepare(5);
  std::vector<Frequency> weights = {2, 3};
  std::vector<ExpansionEvent> events = {
      {2, 0, Embedding{0, 3}},
      {2, 0, Embedding{0, 2}},
      {2, 0, Embedding{0, 3}},  // Duplicate, out of order.
      {2, 1, Embedding{0, 3}},  // Same embedding, different tid: kept.
  };
  std::vector<EventGroup> groups;
  size_t end = regrouper.Regroup(&events, 0, weights, &groups);
  ASSERT_EQ(end, 3u);
  EXPECT_EQ(events[0].emb, (Embedding{0, 2}));
  EXPECT_EQ(events[1].emb, (Embedding{0, 3}));
  EXPECT_EQ(events[2].tid, 1u);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].weight, 5u);  // Both transactions support item 2.
}

}  // namespace
}  // namespace lash
