// Tests of the observability layer (src/obs/): the latency histogram's
// exact bucket and quantile arithmetic (including the empty and
// single-bucket edge cases), the metrics registry's get-or-create and kind
// contracts plus its behavior under concurrent recording (run under TSAN in
// CI), the tracer's span lifecycle, JSONL exposition and ambient-context
// plumbing, and the MapReduce JobResult -> span export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/job.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/histogram.h"

namespace lash::obs {
namespace {

// ---- LatencyHistogram -----------------------------------------------------

TEST(Histogram, EmptyHistogramReportsZeroEverywhere) {
  LatencyHistogram h;
  const LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.sum_us, 0u);
  EXPECT_EQ(snap.PercentileMs(0.0), 0.0);
  EXPECT_EQ(snap.PercentileMs(0.5), 0.0);
  EXPECT_EQ(snap.PercentileMs(1.0), 0.0);
  EXPECT_EQ(snap.MeanMs(), 0.0);
}

TEST(Histogram, SingleBucketCollapsesEveryQuantile) {
  LatencyHistogram h;
  // 3ms = 3000µs lands in bucket bit_width(3000) = 12: [2048, 4096)µs.
  for (int i = 0; i < 100; ++i) h.Record(3.0);
  const LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 100u);
  const double upper = 4096.0 / 1000.0;
  EXPECT_EQ(snap.PercentileMs(0.0), upper);
  EXPECT_EQ(snap.PercentileMs(0.5), upper);
  EXPECT_EQ(snap.PercentileMs(0.95), upper);
  EXPECT_EQ(snap.PercentileMs(1.0), upper);
  EXPECT_DOUBLE_EQ(snap.MeanMs(), 3.0);
}

TEST(Histogram, BucketBoundariesArePowersOfTwoMicroseconds) {
  LatencyHistogram h;
  h.Record(0.0005);  // 0.5µs -> bucket 0 (everything under 1µs).
  h.Record(0.001);   // 1µs -> bucket 1: [1, 2)µs.
  h.Record(0.0019);  // 1.9µs -> still bucket 1.
  h.Record(0.002);   // 2µs -> bucket 2: [2, 4)µs.
  h.Record(1.0);     // 1000µs -> bucket 10: [512, 1024)µs.
  const LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[10], 1u);
  EXPECT_EQ(snap.total, 5u);
}

TEST(Histogram, QuantileReportsUpperBoundOfRankBucket) {
  LatencyHistogram h;
  // 90 fast (bucket 1, upper 2µs) + 10 slow (bucket 14, upper 16384µs).
  for (int i = 0; i < 90; ++i) h.Record(0.001);
  for (int i = 0; i < 10; ++i) h.Record(10.0);
  const LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.PercentileMs(0.50), 0.002);
  EXPECT_EQ(snap.PercentileMs(0.95), 16.384);
  // Overflow clamp: ridiculous latencies land in the last, open bucket.
  LatencyHistogram overflow;
  overflow.Record(1e9);
  EXPECT_EQ(overflow.TakeSnapshot().PercentileMs(0.5),
            static_cast<double>(uint64_t{1} << (LatencyHistogram::kBuckets -
                                                1)) /
                1000.0);
}

TEST(Histogram, ServeAliasIsTheSameType) {
  // serve/histogram.h keeps the pre-obs name alive as an alias, so the
  // serving layer's declarations did not change meaning.
  static_assert(std::is_same_v<serve::LatencyHistogram, LatencyHistogram>);
}

// ---- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("layer.component.events");
  Counter* c2 = registry.GetCounter("layer.component.events");
  EXPECT_EQ(c1, c2);
  c1->Add(3);
  EXPECT_EQ(c2->Value(), 3u);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("layer.component.level")),
            static_cast<void*>(c1));
}

TEST(MetricsRegistry, KindConflictIsALogicError) {
  MetricsRegistry registry;
  registry.GetCounter("name.taken");
  EXPECT_THROW(registry.GetGauge("name.taken"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("name.taken"), std::logic_error);
  // The original registration survives the failed re-registration.
  EXPECT_NO_THROW(registry.GetCounter("name.taken"));
}

TEST(MetricsRegistry, SnapshotFlattensHistogramsAndSortsByName) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Add(7);
  registry.GetGauge("c.gauge")->Set(-4);
  registry.GetHistogram("a.latency")->Record(3.0);

  const std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 6u);  // 4 histogram facets + counter + gauge.
  EXPECT_EQ(samples[0].name, "a.latency.count");
  EXPECT_EQ(samples[0].value, 1.0);
  EXPECT_EQ(samples[1].name, "a.latency.p50_ms");
  EXPECT_EQ(samples[2].name, "a.latency.p95_ms");
  EXPECT_EQ(samples[3].name, "a.latency.mean_ms");
  EXPECT_DOUBLE_EQ(samples[3].value, 3.0);
  EXPECT_EQ(samples[4].name, "b.counter");
  EXPECT_EQ(samples[4].value, 7.0);
  EXPECT_EQ(samples[5].name, "c.gauge");
  EXPECT_EQ(samples[5].value, -4.0);

  const std::string text = registry.ToText();
  EXPECT_NE(text.find("b.counter 7"), std::string::npos);
  EXPECT_NE(text.find("c.gauge -4"), std::string::npos);
  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a.latency.count\":1"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndRecordingIsClean) {
  // The TSAN target: registration races registration (same and different
  // names), recording races recording, and snapshots race both.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter* shared = registry.GetCounter("race.shared");
      Counter* own =
          registry.GetCounter("race.thread." + std::to_string(t % 4));
      Gauge* gauge = registry.GetGauge("race.level");
      LatencyHistogram* hist = registry.GetHistogram("race.latency");
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared->Add();
        own->Add();
        gauge->Add(1);
        gauge->Sub(1);
        hist->Record(0.5);
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) (void)registry.Snapshot();
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.GetCounter("race.shared")->Value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(registry.GetGauge("race.level")->Value(), 0);
  EXPECT_EQ(registry.GetHistogram("race.latency")->TakeSnapshot().total,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

// ---- TraceId / Span -------------------------------------------------------

TEST(Trace, TraceIdHexRoundTripsAndFlagsActivity) {
  EXPECT_FALSE(TraceId{}.active());
  EXPECT_EQ(TraceId{}.Hex(), std::string(32, '0'));

  const TraceId id = TraceId::Make();
  EXPECT_TRUE(id.active());
  EXPECT_EQ(TraceId::FromHex(id.Hex()), id);
  EXPECT_NE(TraceId::Make(), id);

  // Anything but 32 hex chars decodes to the inactive id.
  EXPECT_FALSE(TraceId::FromHex("abc").active());
  EXPECT_FALSE(TraceId::FromHex(std::string(32, 'g')).active());
}

TEST(Trace, SpanIsInertWithoutBothHalves) {
  Tracer tracer;  // No sink: disabled.
  const TraceContext active_parent{TraceId::Make(), 0};
  Span no_sink(&tracer, active_parent, "x");
  EXPECT_FALSE(no_sink.active());
  EXPECT_FALSE(no_sink.context().active());

  tracer.StartCollecting();
  Span no_trace(&tracer, TraceContext{}, "x");  // Untraced request.
  EXPECT_FALSE(no_trace.active());
  no_trace.End();
  Span live(&tracer, active_parent, "x");
  EXPECT_TRUE(live.active());
  live.End();
  EXPECT_EQ(tracer.TakeCollected().size(), 1u);
}

TEST(Trace, SpanTreeNestsByContextAndCarriesTags) {
  Tracer tracer;
  tracer.StartCollecting();
  const TraceContext root_ctx{TraceId::Make(), 0};

  Span parent(&tracer, root_ctx, "parent");
  parent.Tag("outcome", "ok");
  parent.Tag("count", 3.0);
  Span child(&tracer, parent.context(), "child");
  const uint64_t parent_id = parent.context().parent_span;
  const uint64_t child_id = child.context().parent_span;
  EXPECT_NE(parent_id, 0u);
  EXPECT_NE(child_id, parent_id);
  child.End();
  child.End();  // Second End is a no-op, not a duplicate record.
  parent.End();

  std::vector<SpanRecord> spans = tracer.TakeCollected();
  ASSERT_EQ(spans.size(), 2u);  // Child ended first.
  EXPECT_EQ(spans[0].name, "child");
  EXPECT_EQ(spans[0].parent_id, parent_id);
  EXPECT_EQ(spans[0].span_id, child_id);
  EXPECT_EQ(spans[1].name, "parent");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[1].trace_id, root_ctx.trace_id);
  EXPECT_EQ(spans[0].trace_id, root_ctx.trace_id);
  ASSERT_EQ(spans[1].tags.size(), 2u);
  EXPECT_EQ(spans[1].tags[0],
            (std::pair<std::string, std::string>{"outcome", "ok"}));
  EXPECT_EQ(spans[1].tags[1],
            (std::pair<std::string, std::string>{"count", "3"}));
}

TEST(Trace, DestructorEndsAndMoveTransfersOwnership) {
  Tracer tracer;
  tracer.StartCollecting();
  const TraceContext ctx{TraceId::Make(), 0};
  {
    Span outer(&tracer, ctx, "moved");
    Span inner = std::move(outer);
    EXPECT_FALSE(outer.active());
    EXPECT_TRUE(inner.active());
  }  // inner's destructor records exactly one span.
  EXPECT_EQ(tracer.TakeCollected().size(), 1u);
}

TEST(Trace, JsonlFileCarriesTheDocumentedSchema) {
  const std::string path =
      ::testing::TempDir() + "/obs_trace_test.jsonl";
  std::remove(path.c_str());
  Tracer tracer;
  tracer.OpenFile(path);
  const TraceContext ctx{TraceId::Make(), 0};
  {
    Span span(&tracer, ctx, "unit.test");
    span.Tag("key", "value \"quoted\"");
  }
  tracer.CloseFile();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"trace\":\"" + ctx.trace_id.Hex() + "\""),
            std::string::npos);
  EXPECT_NE(line.find("\"span\":\""), std::string::npos);
  EXPECT_NE(line.find("\"parent\":\"" + std::string(16, '0') + "\""),
            std::string::npos);
  EXPECT_NE(line.find("\"name\":\"unit.test\""), std::string::npos);
  EXPECT_NE(line.find("\"start_unix_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"dur_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"key\":\"value \\\"quoted\\\"\""), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));  // Exactly one span, one line.
  std::remove(path.c_str());
}

TEST(Trace, AmbientContextIsScopedPerThread) {
  EXPECT_FALSE(AmbientContext().active());
  const TraceContext ctx{TraceId::Make(), 42};
  {
    ScopedAmbientContext scope(ctx);
    EXPECT_EQ(AmbientContext().trace_id, ctx.trace_id);
    EXPECT_EQ(AmbientContext().parent_span, 42u);
    {
      ScopedAmbientContext inner(TraceContext{});
      EXPECT_FALSE(AmbientContext().active());
    }
    EXPECT_TRUE(AmbientContext().active());
    // Other threads see their own (inactive) ambient context.
    std::thread([] { EXPECT_FALSE(AmbientContext().active()); }).join();
  }
  EXPECT_FALSE(AmbientContext().active());
}

// ---- ExportJobSpans -------------------------------------------------------

TEST(Trace, ExportJobSpansRendersThePipelinedTimeline) {
  Tracer tracer;
  tracer.StartCollecting();
  const TraceContext parent{TraceId::Make(), 99};

  JobResult job;
  job.pipelined = true;
  job.times.map_ms = 10;
  job.times.shuffle_ms = 4;
  job.times.reduce_ms = 6;
  job.map_barrier_ms = 10;
  job.phase_overlap_ms = 3.5;
  job.map_task_ms = {2.0, 3.0};
  job.map_task_start_ms = {0.0, 1.0};
  PartitionTimeline p;
  p.ready_ms = 1.0;
  p.start_ms = 2.0;
  p.grouped_ms = 5.0;
  p.reduced_ms = 9.0;
  job.partition_timeline = {p};

  const double anchor = 1000.0;
  ExportJobSpans(&tracer, parent, job, anchor);
  std::vector<SpanRecord> spans = tracer.TakeCollected();
  ASSERT_EQ(spans.size(), 5u);  // 2 map + group + reduce + mr.job root.

  const SpanRecord& root = spans.back();
  EXPECT_EQ(root.name, "mr.job");
  EXPECT_EQ(root.parent_id, 99u);
  EXPECT_EQ(root.start_unix_ms, anchor);
  EXPECT_DOUBLE_EQ(root.dur_ms, 20.0);
  bool overlap_tag = false;
  for (const auto& [key, value] : root.tags) {
    if (key == "phase_overlap_ms") {
      overlap_tag = true;
      EXPECT_EQ(value, "3.5");
    }
  }
  EXPECT_TRUE(overlap_tag);

  std::multiset<std::string> names;
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, parent.trace_id);
    names.insert(span.name);
    if (span.name != "mr.job") {
      EXPECT_EQ(span.parent_id, root.span_id) << span.name;
    }
    if (span.name == "mr.partition.group") {
      EXPECT_EQ(span.start_unix_ms, anchor + 2.0);
      EXPECT_DOUBLE_EQ(span.dur_ms, 3.0);
    }
    if (span.name == "mr.partition.reduce") {
      EXPECT_EQ(span.start_unix_ms, anchor + 5.0);
      EXPECT_DOUBLE_EQ(span.dur_ms, 4.0);
    }
  }
  EXPECT_EQ(names.count("mr.map"), 2u);
  EXPECT_EQ(names.count("mr.partition.group"), 1u);
  EXPECT_EQ(names.count("mr.partition.reduce"), 1u);

  // The legacy (non-pipelined) path has no per-task timeline: only the
  // job root is exported.
  job.pipelined = false;
  job.map_task_start_ms.clear();
  job.partition_timeline.clear();
  ExportJobSpans(&tracer, parent, job, anchor);
  spans = tracer.TakeCollected();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "mr.job");

  // Inactive parent or disabled tracer: nothing is recorded.
  ExportJobSpans(&tracer, TraceContext{}, job, anchor);
  EXPECT_TRUE(tracer.TakeCollected().empty());
  tracer.StopCollecting();
  ExportJobSpans(&tracer, parent, job, anchor);
  tracer.StartCollecting();
  EXPECT_TRUE(tracer.TakeCollected().empty());
}

}  // namespace
}  // namespace lash::obs
