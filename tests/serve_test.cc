// Tests of the serving layer (serve/mining_service.h): cache-hit parity for
// all six algorithms, in-flight coalescing, cost-aware LRU eviction,
// admission rejection, deadline/cancellation as typed errors, counter
// consistency, multi-shard routing, and the cache-key canonicalization
// contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "api/lash_api.h"
#include "obs/metrics.h"
#include "serve/mining_service.h"
#include "serve/result_cache.h"
#include "serve/task_spec.h"
#include "test_util.h"

namespace lash::serve {
namespace {

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kSequential, Algorithm::kLash,  Algorithm::kMgFsm,
    Algorithm::kGsp,        Algorithm::kNaive, Algorithm::kSemiNaive,
};

JobConfig TestConfig() {
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  return config;
}

TaskSpec PaperSpec(Algorithm algorithm) {
  TaskSpec spec;
  spec.algorithm = algorithm;
  spec.params = {.sigma = 2, .gamma = 1, .lambda = 3};
  spec.job_config = TestConfig();
  return spec;
}

/// A gate the tests use (via ServiceOptions::pre_execute_hook) to hold a
/// worker at the mine stage until released, making queue/coalescing/deadline
/// scenarios deterministic.
class ExecutionGate {
 public:
  void Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    entered_cv_.notify_all();
    released_cv_.wait(lock, [&] { return released_; });
  }

  /// Blocks until `n` workers have reached the gate.
  void AwaitEntered(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    released_cv_.notify_all();
  }

  size_t entered() {
    std::lock_guard<std::mutex> lock(mu_);
    return entered_;
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable released_cv_;
  size_t entered_ = 0;
  bool released_ = false;
};

class ServePaperTest : public ::testing::Test {
 protected:
  ServePaperTest() : dataset_(Dataset::FromMemory(ex_.raw_db, ex_.vocab)) {}

  testing::PaperExample ex_;
  Dataset dataset_;
};

TEST_F(ServePaperTest, CacheHitIsPatternIdenticalForAllSixAlgorithms) {
  MiningService service(dataset_);
  for (Algorithm algorithm : kAllAlgorithms) {
    const TaskSpec spec = PaperSpec(algorithm);
    // Copies: Response is a cheap value (shared_ptr + flags), and the
    // PendingResult temporaries that own the state die at the semicolon.
    const Response cold = service.Submit(spec).Get();
    const Response hit = service.Submit(spec).Get();
    EXPECT_FALSE(cold.cache_hit) << AlgorithmName(algorithm);
    EXPECT_TRUE(hit.cache_hit) << AlgorithmName(algorithm);
    // The hit shares the execution's result object — no pattern copy.
    EXPECT_EQ(cold.result.get(), hit.result.get());
    // And both are pattern-identical to a fresh facade run.
    PatternMap fresh = MakeTask(dataset_, spec).Mine();
    EXPECT_EQ(testing::Sorted(hit.patterns()), testing::Sorted(fresh))
        << AlgorithmName(algorithm);
    EXPECT_EQ(hit.run().algorithm, algorithm);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.executions, 6u);
  EXPECT_EQ(stats.completed, 12u);
}

TEST_F(ServePaperTest, FilterAndTopKVariantsAreDistinctCacheEntries) {
  MiningService service(dataset_);
  TaskSpec plain = PaperSpec(Algorithm::kSequential);
  TaskSpec closed = plain;
  closed.filter = PatternFilter::kClosed;
  TaskSpec top3 = plain;
  top3.top_k = 3;

  const Response r_plain = service.Submit(plain).Get();
  const Response r_closed = service.Submit(closed).Get();
  const Response r_top3 = service.Submit(top3).Get();
  EXPECT_FALSE(r_closed.cache_hit);
  EXPECT_FALSE(r_top3.cache_hit);
  EXPECT_GT(r_plain.patterns().size(), r_closed.patterns().size());
  EXPECT_EQ(r_top3.patterns().size(), 3u);
  // Each variant hits its own entry on re-submission.
  EXPECT_TRUE(service.Submit(closed).Get().cache_hit);
  EXPECT_TRUE(service.Submit(top3).Get().cache_hit);
}

TEST_F(ServePaperTest, CoalescingExecutesExactlyOnceUnderASubmissionStorm) {
  auto gate = std::make_shared<ExecutionGate>();
  ServiceOptions options;
  options.executor_threads = 2;
  options.pre_execute_hook = [gate](const TaskSpec&) { gate->Enter(); };
  MiningService service(dataset_, options);

  const TaskSpec spec = PaperSpec(Algorithm::kSequential);
  std::vector<PendingResult> storm;
  storm.push_back(service.Submit(spec));  // Leader.
  gate->AwaitEntered(1);                  // Leader is mining (held at gate).
  for (int i = 0; i < 7; ++i) storm.push_back(service.Submit(spec));
  gate->Release();

  const Response& first = storm[0].Get();
  for (size_t i = 1; i < storm.size(); ++i) {
    const Response& r = storm[i].Get();
    EXPECT_TRUE(r.coalesced) << i;
    EXPECT_FALSE(r.cache_hit) << i;
    EXPECT_EQ(r.result.get(), first.result.get()) << i;  // Shared, not copied.
  }
  EXPECT_EQ(gate->entered(), 1u);  // The storm mined exactly once.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced, 7u);
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.completed, 8u);
}

TEST_F(ServePaperTest, LruEvictionRespectsTheByteBudget) {
  // Distinct-key, equal-cost queries: top_k in {10..13} all return every
  // pattern of the paper example (which has 10), so the four cache entries
  // differ only in key while costing the same bytes. Budget holds exactly
  // two of them; one shard so recency order is global and deterministic.
  auto spec_with_top = [](size_t top_k) {
    TaskSpec spec = PaperSpec(Algorithm::kSequential);
    spec.top_k = top_k;
    return spec;
  };
  const uint64_t entry_cost = MiningService(dataset_)
                                  .Submit(spec_with_top(10))
                                  .Get()
                                  .result->cost_bytes;

  ServiceOptions options;
  options.cache_bytes = entry_cost * 2 + entry_cost / 2;
  options.cache_shards = 1;
  MiningService service(dataset_, options);

  for (size_t top_k = 10; top_k <= 13; ++top_k) {
    service.Submit(spec_with_top(top_k)).Get();
    EXPECT_LE(service.Stats().cache_bytes, options.cache_bytes) << top_k;
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_evictions, 2u);
  EXPECT_EQ(stats.cache_entries, 2u);

  // The most recent query is still resident; the oldest was evicted.
  EXPECT_TRUE(service.Submit(spec_with_top(13)).Get().cache_hit);
  EXPECT_FALSE(service.Submit(spec_with_top(10)).Get().cache_hit);
}

TEST_F(ServePaperTest, OversizedEntriesAreNotAdmitted) {
  ServiceOptions options;
  options.cache_bytes = 64;  // Smaller than any real result.
  options.cache_shards = 1;
  MiningService service(dataset_, options);
  service.Submit(PaperSpec(Algorithm::kSequential)).Get();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_GT(stats.cache_oversized_rejects, 0u);
  EXPECT_FALSE(
      service.Submit(PaperSpec(Algorithm::kSequential)).Get().cache_hit);
}

TEST_F(ServePaperTest, QueueFullRejectionIsATypedError) {
  auto gate = std::make_shared<ExecutionGate>();
  ServiceOptions options;
  options.executor_threads = 1;
  options.queue_capacity = 1;
  options.admission = AdmissionPolicy::kReject;
  options.pre_execute_hook = [gate](const TaskSpec&) { gate->Enter(); };
  MiningService service(dataset_, options);

  // Distinct specs so nothing coalesces: A occupies the worker, B the one
  // queue slot, C must be shed.
  TaskSpec a = PaperSpec(Algorithm::kSequential);
  TaskSpec b = a;
  b.params.sigma = 3;
  TaskSpec c = a;
  c.params.sigma = 4;

  PendingResult ra = service.Submit(a);
  gate->AwaitEntered(1);  // A has been dequeued; the queue is empty again.
  PendingResult rb = service.Submit(b);
  PendingResult rc = service.Submit(c);

  EXPECT_FALSE(rc.ok());
  EXPECT_EQ(rc.error_code(), ServeErrorCode::kQueueFull);
  try {
    rc.Get();
    FAIL() << "Get() must throw for a rejected request";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeErrorCode::kQueueFull);
  }

  gate->Release();
  EXPECT_TRUE(ra.ok());
  EXPECT_TRUE(rb.ok());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(ServePaperTest, BlockingAdmissionAppliesBackpressureNotRejection) {
  auto gate = std::make_shared<ExecutionGate>();
  ServiceOptions options;
  options.executor_threads = 1;
  options.queue_capacity = 1;
  options.admission = AdmissionPolicy::kBlock;
  options.pre_execute_hook = [gate](const TaskSpec&) { gate->Enter(); };
  MiningService service(dataset_, options);

  TaskSpec a = PaperSpec(Algorithm::kSequential);
  TaskSpec b = a;
  b.params.sigma = 3;
  TaskSpec c = a;
  c.params.sigma = 4;

  PendingResult ra = service.Submit(a);
  gate->AwaitEntered(1);                  // A holds the worker.
  PendingResult rb = service.Submit(b);   // Fills the one queue slot.
  // C's Submit must now block on queue space instead of shedding load.
  std::optional<PendingResult> rc;
  std::atomic<bool> c_submitted{false};
  std::thread submitter([&] {
    rc = service.Submit(c);
    c_submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(c_submitted.load());  // Still blocked (kReject would return).
  gate->Release();  // A finishes, B dequeues, a slot frees, C is admitted.
  submitter.join();
  EXPECT_TRUE(c_submitted.load());

  EXPECT_TRUE(ra.ok());
  EXPECT_TRUE(rb.ok());
  ASSERT_TRUE(rc.has_value());
  EXPECT_TRUE(rc->ok());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST_F(ServePaperTest, DeadlineExpiryBeforeExecutionIsATypedError) {
  auto gate = std::make_shared<ExecutionGate>();
  ServiceOptions options;
  options.executor_threads = 1;
  options.pre_execute_hook = [gate](const TaskSpec&) { gate->Enter(); };
  MiningService service(dataset_, options);

  TaskSpec slow = PaperSpec(Algorithm::kSequential);
  PendingResult ra = service.Submit(slow);
  gate->AwaitEntered(1);  // The only worker is held at the gate.

  TaskSpec deadlined = PaperSpec(Algorithm::kSequential);
  deadlined.params.sigma = 3;  // Distinct: must not coalesce onto `slow`.
  deadlined.deadline_ms = 1;
  PendingResult rb = service.Submit(deadlined);
  // Let the deadline lapse while rb is queued behind the gated worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate->Release();

  EXPECT_TRUE(ra.ok());
  EXPECT_FALSE(rb.ok());
  EXPECT_EQ(rb.error_code(), ServeErrorCode::kDeadlineExceeded);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  // The expired request never mined: only `slow` reached the gate.
  EXPECT_EQ(gate->entered(), 1u);
  EXPECT_EQ(stats.executions, 1u);
}

TEST_F(ServePaperTest, CancelledRequestNeverMinesAndIsATypedError) {
  auto gate = std::make_shared<ExecutionGate>();
  ServiceOptions options;
  options.executor_threads = 1;
  options.pre_execute_hook = [gate](const TaskSpec&) { gate->Enter(); };
  MiningService service(dataset_, options);

  PendingResult ra = service.Submit(PaperSpec(Algorithm::kSequential));
  gate->AwaitEntered(1);

  TaskSpec other = PaperSpec(Algorithm::kSequential);
  other.params.sigma = 3;
  PendingResult rb = service.Submit(other);
  rb.Cancel();
  gate->Release();

  EXPECT_TRUE(ra.ok());
  EXPECT_FALSE(rb.ok());
  EXPECT_EQ(rb.error_code(), ServeErrorCode::kCancelled);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(gate->entered(), 1u);  // The cancelled request was skipped.
}

TEST_F(ServePaperTest, InvalidSpecFailsFastWithoutTouchingTheExecutor) {
  MiningService service(dataset_);

  TaskSpec bad = PaperSpec(Algorithm::kSequential);
  bad.params.sigma = 0;
  bad.miner = MinerKind::kPsmIndex;
  bad.algorithm = Algorithm::kGsp;  // Miner on a minerless algorithm.
  PendingResult r = service.Submit(bad);
  EXPECT_TRUE(r.ready());  // Resolved synchronously on the submit thread.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_code(), ServeErrorCode::kInvalidTask);
  EXPECT_NE(r.error_message().find("sigma"), std::string::npos);
  EXPECT_NE(r.error_message().find("miner"), std::string::npos);

  TaskSpec out_of_range = PaperSpec(Algorithm::kSequential);
  out_of_range.shard = 7;
  PendingResult r2 = service.Submit(out_of_range);
  EXPECT_EQ(r2.error_code(), ServeErrorCode::kInvalidTask);
  EXPECT_NE(r2.error_message().find("shard"), std::string::npos);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.invalid, 2u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.executions, 0u);
}

TEST_F(ServePaperTest, StatsCountersSatisfyTheDocumentedIdentities) {
  MiningService service(dataset_);
  std::vector<TaskSpec> batch;
  for (int rep = 0; rep < 3; ++rep) {
    for (Frequency sigma = 2; sigma <= 4; ++sigma) {
      TaskSpec spec = PaperSpec(Algorithm::kSequential);
      spec.params.sigma = sigma;
      batch.push_back(spec);
    }
  }
  TaskSpec invalid;
  invalid.params.sigma = 0;
  batch.push_back(invalid);

  std::vector<PendingResult> results = service.SubmitBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << i;
  }
  EXPECT_FALSE(results.back().ok());

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, batch.size());
  EXPECT_EQ(stats.submitted,
            stats.hits + stats.misses + stats.coalesced + stats.invalid);
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected +
                                 stats.cancelled + stats.deadline_expired +
                                 stats.invalid + stats.failed);
  EXPECT_EQ(stats.misses, 3u);  // Three distinct specs.
  EXPECT_EQ(stats.invalid, 1u);
  // The six repeats either hit (execution already finished) or coalesced
  // (still in flight) — both count toward the shared-work economy.
  EXPECT_EQ(stats.hits + stats.coalesced, 6u);
  EXPECT_GT(stats.mine_p50_ms, 0.0);
}

TEST_F(ServePaperTest, RegistryGaugesTrackQueueDepthAndCacheBytes) {
  // The service registers its instruments into a caller-supplied registry
  // (lash_served passes the process-global one); the gauges for executor
  // queue depth and cache residency are live values, not counters.
  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.metrics = &registry;
  MiningService service(dataset_, options);
  EXPECT_EQ(&service.metrics(), &registry);

  EXPECT_EQ(registry.GetGauge("serve.executor.queue_depth")->Value(), 0);
  EXPECT_EQ(registry.GetGauge("serve.cache.bytes")->Value(), 0);

  const Response cold = service.Submit(PaperSpec(Algorithm::kSequential)).Get();
  EXPECT_FALSE(cold.cache_hit);

  // Drained executor, one resident result: depth back to 0, bytes > 0 and
  // equal to what both stats surfaces report.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(registry.GetGauge("serve.executor.queue_depth")->Value(), 0);
  const int64_t bytes = registry.GetGauge("serve.cache.bytes")->Value();
  EXPECT_GT(bytes, 0);
  EXPECT_EQ(static_cast<uint64_t>(bytes), stats.cache_bytes);
  EXPECT_EQ(registry.GetGauge("serve.cache.entries")->Value(), 1);
  EXPECT_EQ(registry.GetCounter("serve.requests.submitted")->Value(), 1u);

  // Two services sharing nothing: a second service with its own (default,
  // private) registry starts from zero — no cross-service pollution.
  MiningService isolated(dataset_);
  EXPECT_EQ(isolated.Stats().submitted, 0u);
}

TEST_F(ServePaperTest, ShardsAreRoutedAndCachedIndependently) {
  // Shard 1 = the paper example with T6 removed: b1/D frequencies drop, so
  // the same spec must give different patterns per shard — and cached
  // entries must not cross shards.
  Database smaller = ex_.raw_db;
  smaller.pop_back();
  Dataset other = Dataset::FromMemory(smaller, ex_.vocab);
  MiningService service({&dataset_, &other});
  ASSERT_EQ(service.num_shards(), 2u);
  EXPECT_NE(dataset_.id(), other.id());

  TaskSpec spec0 = PaperSpec(Algorithm::kSequential);
  TaskSpec spec1 = spec0;
  spec1.shard = 1;
  const Response r0 = service.Submit(spec0).Get();
  const Response r1 = service.Submit(spec1).Get();
  EXPECT_FALSE(r1.cache_hit);  // Different shard: not a hit on shard 0's run.
  EXPECT_NE(testing::Sorted(r0.patterns()), testing::Sorted(r1.patterns()));
  EXPECT_EQ(testing::Sorted(r0.patterns()),
            testing::Sorted(MakeTask(dataset_, spec0).Mine()));
  EXPECT_EQ(testing::Sorted(r1.patterns()),
            testing::Sorted(MakeTask(other, spec1).Mine()));
  EXPECT_TRUE(service.Submit(spec0).Get().cache_hit);
  EXPECT_TRUE(service.Submit(spec1).Get().cache_hit);
}

TEST(ServeCacheKeyTest, CanonicalizationContract) {
  TaskSpec spec;
  spec.algorithm = Algorithm::kLash;
  spec.params = {.sigma = 10, .gamma = 1, .lambda = 4};

  const std::string base = EncodeCacheKey(1, spec);
  EXPECT_EQ(EncodeCacheKey(1, spec), base);  // Deterministic.
  EXPECT_NE(EncodeCacheKey(2, spec), base);  // Dataset id is part of the key.

  // Execution-shape knobs are canonicalized away...
  TaskSpec shaped = spec;
  shaped.threads = 7;
  shaped.job_config.num_map_tasks = 99;
  shaped.job_config.shuffle = ShuffleMode::kLegacyHash;
  shaped.deadline_ms = 50;
  EXPECT_EQ(EncodeCacheKey(1, shaped), base);

  // ...while every computation-selecting knob fragments it.
  for (auto mutate : std::vector<std::function<void(TaskSpec&)>>{
           [](TaskSpec& s) { s.params.sigma = 11; },
           [](TaskSpec& s) { s.params.gamma = 2; },
           [](TaskSpec& s) { s.params.lambda = 5; },
           [](TaskSpec& s) { s.algorithm = Algorithm::kSequential; },
           [](TaskSpec& s) { s.flat = true; },
           [](TaskSpec& s) { s.filter = PatternFilter::kClosed; },
           [](TaskSpec& s) { s.top_k = 5; },
           [](TaskSpec& s) { s.miner = MinerKind::kBfs; },
           [](TaskSpec& s) { s.rewrite = RewriteLevel::kNone; },
           [](TaskSpec& s) { s.combiner = false; },
       }) {
    TaskSpec mutated = spec;
    mutate(mutated);
    EXPECT_NE(EncodeCacheKey(1, mutated), base);
  }

  // MG-FSM always mines flat (MiningTask::UsesFlat), so an explicit
  // flat=true is canonicalized away rather than fragmenting its key space.
  TaskSpec mgfsm = spec;
  mgfsm.algorithm = Algorithm::kMgFsm;
  TaskSpec mgfsm_flat = mgfsm;
  mgfsm_flat.flat = true;
  EXPECT_EQ(EncodeCacheKey(1, mgfsm_flat), EncodeCacheKey(1, mgfsm));

  // The baseline emit cap only keys the algorithms it can truncate.
  TaskSpec capped = spec;
  capped.limits.max_emitted_records = 5;
  EXPECT_EQ(EncodeCacheKey(1, capped), base);
  TaskSpec naive = spec;
  naive.algorithm = Algorithm::kNaive;
  TaskSpec naive_capped = naive;
  naive_capped.limits.max_emitted_records = 5;
  EXPECT_NE(EncodeCacheKey(1, naive_capped), EncodeCacheKey(1, naive));
}

TEST(ServeDestructionTest, DestructorDrainsAdmittedWork) {
  testing::PaperExample ex;
  Dataset dataset = Dataset::FromMemory(ex.raw_db, ex.vocab);
  std::vector<TaskSpec> specs;
  for (Frequency sigma = 2; sigma <= 5; ++sigma) {
    TaskSpec spec = PaperSpec(Algorithm::kSequential);
    spec.params.sigma = sigma;
    specs.push_back(spec);
  }
  std::vector<PendingResult> pending;
  {
    ServiceOptions options;
    options.executor_threads = 2;
    MiningService service(dataset, options);
    pending = service.SubmitBatch(specs);
  }  // ~MiningService drains: everything below is already resolved.
  for (size_t i = 0; i < pending.size(); ++i) {
    ASSERT_TRUE(pending[i].ready()) << i;
    EXPECT_TRUE(pending[i].ok()) << i;
    EXPECT_EQ(testing::Sorted(pending[i].Get().patterns()),
              testing::Sorted(MakeTask(dataset, specs[i]).Mine()))
        << i;
  }
}

}  // namespace
}  // namespace lash::serve
