// Tests of the public facade (api/lash_api.h): parity of MiningTask output
// against the direct algo/* pipeline for all six algorithms, streaming-sink
// vs materialized equality, TopKSink tie-determinism, up-front validation,
// and the Dataset loading/decoding helpers.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "algo/gsp.h"
#include "algo/mgfsm.h"
#include "algo/naive_gsm.h"
#include "algo/seminaive_gsm.h"
#include "algo/sequential.h"
#include "api/lash_api.h"
#include "datagen/text_gen.h"
#include "io/text_io.h"
#include "stats/filters.h"
#include "stats/output_stats.h"
#include "test_util.h"

namespace lash {
namespace {

JobConfig TestConfig() {
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  return config;
}

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kSequential, Algorithm::kLash, Algorithm::kMgFsm,
    Algorithm::kGsp,        Algorithm::kNaive, Algorithm::kSemiNaive,
};

/// Mines `algorithm` with the pre-facade entry points, in the same rank
/// space the facade uses (hierarchical, or flat for MG-FSM).
PatternMap DirectMine(const Database& raw_db, const Hierarchy& raw_h,
                      size_t num_raw_items, const GsmParams& params,
                      Algorithm algorithm) {
  JobConfig config = TestConfig();
  if (algorithm == Algorithm::kMgFsm) {
    PreprocessResult flat_pre = PreprocessFlat(raw_db, num_raw_items, config);
    return RunMgFsm(flat_pre, params, config).patterns;
  }
  PreprocessResult pre = Preprocess(raw_db, raw_h);
  switch (algorithm) {
    case Algorithm::kSequential:
      return MineSequential(pre, params);
    case Algorithm::kLash:
      return RunLash(pre, params, config).patterns;
    case Algorithm::kGsp:
      return RunGspExtended(pre, params);
    case Algorithm::kNaive:
      return RunNaiveGsm(pre, params, config).patterns;
    case Algorithm::kSemiNaive:
      return RunSemiNaiveGsm(pre, params, config).patterns;
    case Algorithm::kMgFsm:
      break;  // Handled above.
  }
  return {};
}

class ApiPaperTest : public ::testing::Test {
 protected:
  ApiPaperTest() : dataset_(Dataset::FromMemory(ex_.raw_db, ex_.vocab)) {}

  MiningTask Task(Algorithm algorithm) {
    MiningTask task(dataset_);
    task.WithAlgorithm(algorithm).WithParams(params_).WithJobConfig(
        TestConfig());
    return task;
  }

  testing::PaperExample ex_;
  Dataset dataset_;
  GsmParams params_{.sigma = 2, .gamma = 1, .lambda = 3};
};

TEST_F(ApiPaperTest, FacadeMatchesDirectPipelineForAllSixAlgorithms) {
  for (Algorithm algorithm : kAllAlgorithms) {
    RunResult result;
    PatternMap facade = Task(algorithm).Mine(&result);
    PatternMap direct = DirectMine(ex_.raw_db, ex_.raw_hierarchy,
                                   ex_.vocab.NumItems(), params_, algorithm);
    EXPECT_EQ(testing::Sorted(facade), testing::Sorted(direct))
        << AlgorithmName(algorithm);
    EXPECT_EQ(result.algorithm, algorithm);
    EXPECT_EQ(result.patterns_mined, facade.size());
    EXPECT_EQ(result.patterns_emitted, facade.size());
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.used_flat_hierarchy, algorithm == Algorithm::kMgFsm);
  }
}

TEST_F(ApiPaperTest, HierarchicalAlgorithmsReproduceSection2) {
  for (Algorithm algorithm :
       {Algorithm::kSequential, Algorithm::kLash, Algorithm::kGsp,
        Algorithm::kNaive, Algorithm::kSemiNaive}) {
    PatternMap facade = Task(algorithm).Mine();
    EXPECT_EQ(testing::Sorted(facade), testing::Sorted(ex_.ExpectedOutput()))
        << AlgorithmName(algorithm);
  }
}

TEST_F(ApiPaperTest, RunResultCarriesPerAlgorithmStats) {
  RunResult lash;
  Task(Algorithm::kLash).Mine(&lash);
  EXPECT_GT(lash.miner_stats.candidates, 0u);
  EXPECT_GT(lash.partition_shape.partitions, 0u);
  EXPECT_GT(lash.job.counters.map_output_records, 0u);
  EXPECT_GT(lash.total_ms, 0.0);

  RunResult gsp;
  Task(Algorithm::kGsp).Mine(&gsp);
  EXPECT_GT(gsp.gsp_stats.candidates, 0u);
  EXPECT_GT(gsp.gsp_stats.database_scans, 0u);

  RunResult sequential;
  Task(Algorithm::kSequential).Mine(&sequential);
  EXPECT_GT(sequential.miner_stats.candidates, 0u);
  EXPECT_EQ(sequential.job.counters.map_output_records, 0u);
}

TEST_F(ApiPaperTest, CollectSinkEqualsMaterializedMine) {
  CollectSink sink;
  MiningTask task = Task(Algorithm::kSequential);
  task.Run(sink);
  EXPECT_EQ(testing::Sorted(sink.patterns()), testing::Sorted(task.Mine()));
}

TEST_F(ApiPaperTest, TextWriterSinkMatchesWritePatterns) {
  MiningTask task = Task(Algorithm::kSequential);
  std::ostringstream streamed;
  TextWriterSink sink(streamed);
  task.Run(sink);

  PatternMap map = task.Mine();
  std::ostringstream materialized;
  WritePatterns(materialized, map,
                [&](ItemId rank) { return dataset_.NameOfRank(rank); });
  EXPECT_EQ(streamed.str(), materialized.str());
  EXPECT_FALSE(streamed.str().empty());
}

TEST_F(ApiPaperTest, UnsortedTextWriterSinkEmitsSameLineSet) {
  MiningTask task = Task(Algorithm::kSequential);
  std::ostringstream sorted_out, unsorted_out;
  TextWriterSink sorted_sink(sorted_out);
  TextWriterSink unsorted_sink(unsorted_out, /*sorted=*/false);
  task.Run(sorted_sink);
  task.Run(unsorted_sink);

  auto lines = [](const std::string& text) {
    std::multiset<std::string> set;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);) set.insert(line);
    return set;
  };
  EXPECT_EQ(lines(sorted_out.str()), lines(unsorted_out.str()));
}

TEST_F(ApiPaperTest, TopKSinkMatchesTopKIncludingTies) {
  // The paper example has nine frequency-2 patterns, so every k in 1..10
  // cuts through a tie; the bounded heap must break them exactly like the
  // materialized TopK() (lexicographic on the rank sequence).
  MiningTask task = Task(Algorithm::kSequential);
  PatternMap map = task.Mine();
  for (size_t k : {size_t{1}, size_t{2}, size_t{5}, size_t{9}, size_t{10},
                   size_t{100}}) {
    TopKSink sink(k);
    task.Run(sink);
    EXPECT_EQ(sink.Sorted(), TopK(map, k)) << "k=" << k;
  }
}

TEST_F(ApiPaperTest, TaskTopKEmitsMostFrequentFirst) {
  MiningTask task = Task(Algorithm::kSequential);
  PatternMap map = task.Mine();

  class RecordingSink : public PatternSink {
   public:
    void OnPattern(const PatternView& pattern) override {
      order.emplace_back(pattern.ranks(), pattern.frequency());
    }
    std::vector<std::pair<Sequence, Frequency>> order;
  } sink;
  RunResult result = task.WithTopK(3).Run(sink);
  EXPECT_EQ(sink.order, TopK(map, 3));
  EXPECT_EQ(result.patterns_emitted, 3u);
  EXPECT_EQ(result.patterns_mined, map.size());
}

TEST_F(ApiPaperTest, FiltersMatchDirectFilterCalls) {
  MiningTask task = Task(Algorithm::kSequential);
  PatternMap unfiltered = task.Mine();

  PatternMap closed = task.WithFilter(PatternFilter::kClosed).Mine();
  EXPECT_EQ(testing::Sorted(closed),
            testing::Sorted(FilterClosed(unfiltered, ex_.pre.hierarchy)));

  PatternMap maximal = task.WithFilter(PatternFilter::kMaximal).Mine();
  EXPECT_EQ(testing::Sorted(maximal),
            testing::Sorted(FilterMaximal(unfiltered, ex_.pre.hierarchy)));
}

TEST_F(ApiPaperTest, FlatMiningMatchesManualFlatPipeline) {
  PatternMap facade_flat =
      Task(Algorithm::kSequential).WithFlatHierarchy().Mine();

  PreprocessResult flat_pre = Preprocess(
      ex_.raw_db, Hierarchy::Flat(ex_.vocab.NumItems()));
  PatternMap direct_flat = MineSequential(flat_pre, params_);
  EXPECT_EQ(testing::Sorted(facade_flat), testing::Sorted(direct_flat));

  // FlatToHierarchicalRanks reproduces the manual remap of lash_stats.
  std::vector<ItemId> flat_to_gsm(flat_pre.raw_of_rank.size(), kInvalidItem);
  for (size_t r = 1; r < flat_pre.raw_of_rank.size(); ++r) {
    flat_to_gsm[r] = ex_.pre.rank_of_raw[flat_pre.raw_of_rank[r]];
  }
  EXPECT_EQ(testing::Sorted(dataset_.FlatToHierarchicalRanks(facade_flat)),
            testing::Sorted(RemapPatterns(direct_flat, flat_to_gsm)));
}

TEST_F(ApiPaperTest, DatasetIsReusableAcrossQueries) {
  // One preprocessing, many (σ, γ, λ): raising sigma can only shrink the
  // output, and the σ=3 output is contained in the σ=2 output.
  PatternMap sigma2 = Task(Algorithm::kSequential).Mine();
  PatternMap sigma3 = Task(Algorithm::kSequential).WithSigma(3).Mine();
  EXPECT_LT(sigma3.size(), sigma2.size());
  for (const auto& [s, freq] : sigma3) {
    auto it = sigma2.find(s);
    ASSERT_NE(it, sigma2.end());
    EXPECT_EQ(it->second, freq);
  }
}

TEST_F(ApiPaperTest, ValidationCollectsEveryProblemUpFront) {
  MiningTask task(dataset_);
  task.WithSigma(0).WithLambda(1);
  std::vector<std::string> problems = task.Validate();
  ASSERT_EQ(problems.size(), 2u);
  EXPECT_NE(problems[0].find("sigma"), std::string::npos);
  EXPECT_NE(problems[1].find("lambda"), std::string::npos);

  CollectSink sink;
  try {
    task.Run(sink);
    FAIL() << "Run must throw ApiError on invalid configuration";
  } catch (const ApiError& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("sigma"), std::string::npos);
    EXPECT_NE(message.find("lambda"), std::string::npos);
  }
  EXPECT_TRUE(sink.patterns().empty());

  // A zeroed JobConfig is caught for distributed algorithms only.
  MiningTask distributed(dataset_);
  distributed.WithParams(params_).WithJobConfig(JobConfig{.num_map_tasks = 0});
  EXPECT_TRUE(distributed.Validate().empty());
  distributed.WithAlgorithm(Algorithm::kLash);
  EXPECT_EQ(distributed.Validate().size(), 1u);
}

TEST_F(ApiPaperTest, ExplicitMinerOnMinerlessAlgorithmIsRejected) {
  // MG-FSM hard-codes BFS and GSP has no local miner: silently ignoring an
  // explicitly chosen miner would misreport what was benchmarked.
  for (Algorithm algorithm :
       {Algorithm::kMgFsm, Algorithm::kGsp, Algorithm::kNaive,
        Algorithm::kSemiNaive}) {
    MiningTask task = Task(algorithm);
    EXPECT_TRUE(task.Validate().empty()) << AlgorithmName(algorithm);
    task.WithMiner(MinerKind::kPsmIndex);
    EXPECT_EQ(task.Validate().size(), 1u) << AlgorithmName(algorithm);
  }
  EXPECT_TRUE(
      Task(Algorithm::kLash).WithMiner(MinerKind::kPsm).Validate().empty());

  // The same contract holds for the LASH-only rewrite/combiner knobs.
  EXPECT_EQ(Task(Algorithm::kSequential)
                .WithRewrite(RewriteLevel::kNone)
                .WithCombiner(false)
                .Validate()
                .size(),
            2u);
  EXPECT_TRUE(Task(Algorithm::kLash)
                  .WithRewrite(RewriteLevel::kNone)
                  .WithCombiner(false)
                  .Validate()
                  .empty());
}

TEST_F(ApiPaperTest, CollectSinkSubclassStillSeesEveryPattern) {
  // The CollectSink fast path is exact-type only: a subclass overriding
  // OnPattern must observe the full stream.
  class CountingCollectSink : public CollectSink {
   public:
    void OnPattern(const PatternView& pattern) override {
      ++seen;
      CollectSink::OnPattern(pattern);
    }
    size_t seen = 0;
  } sink;
  MiningTask task = Task(Algorithm::kSequential);
  task.Run(sink);
  EXPECT_EQ(sink.seen, task.Mine().size());
  EXPECT_EQ(testing::Sorted(sink.patterns()), testing::Sorted(task.Mine()));
}

TEST_F(ApiPaperTest, PatternViewDecodesRanksLazily) {
  Sequence ranks = ex_.RankSeq({"b1", "D"});
  PatternView view(ranks, 2, &dataset_.vocabulary(), &dataset_.preprocessed());
  EXPECT_EQ(view.ranks(), ranks);
  EXPECT_EQ(view.frequency(), 2u);
  EXPECT_EQ(view.length(), 2u);
  EXPECT_EQ(view.names(), (std::vector<std::string>{"b1", "D"}));
  EXPECT_EQ(view.ToString(), "b1 D");
  EXPECT_EQ(view.raw_ids(),
            (Sequence{ex_.vocab.Lookup("b1"), ex_.vocab.Lookup("D")}));
}

TEST_F(ApiPaperTest, NameAndRankHelpersRoundTrip) {
  for (const char* name : {"a", "B", "b1", "c", "D"}) {
    ItemId rank = dataset_.RankOfName(name);
    EXPECT_EQ(rank, ex_.Rank(name)) << name;
    EXPECT_EQ(dataset_.NameOfRank(rank), name);
  }
  EXPECT_EQ(dataset_.RankOfName("no_such_item"), kInvalidItem);
  // Feeding that kInvalidItem back is a readable error, not an OOB read.
  EXPECT_THROW(dataset_.NameOfRank(kInvalidItem), ApiError);
  EXPECT_THROW(dataset_.NameOfRank(static_cast<ItemId>(
                   dataset_.NumItems() + 1)),
               ApiError);
}

TEST_F(ApiPaperTest, ParseHelpersAcceptAllSpellingsAndRejectTypos) {
  EXPECT_EQ(ParseAlgorithm("LASH"), Algorithm::kLash);
  EXPECT_EQ(ParseAlgorithm("mg-fsm"), Algorithm::kMgFsm);
  EXPECT_EQ(ParseAlgorithm("semi-naive"), Algorithm::kSemiNaive);
  for (Algorithm algorithm : kAllAlgorithms) {
    EXPECT_EQ(ParseAlgorithm(AlgorithmName(algorithm)), algorithm);
  }
  EXPECT_THROW(ParseAlgorithm("lsah"), ApiError);
  EXPECT_EQ(ParsePatternFilter("Closed"), PatternFilter::kClosed);
  EXPECT_THROW(ParsePatternFilter("close"), ApiError);
}

TEST(ApiDatasetTest, FromStreamsMatchesInMemoryOutputByName) {
  // Round-trip the paper example through the text formats. The interning
  // order (hierarchy file first) differs from the in-memory insertion
  // order, so rank ids may differ — the *named* output must not.
  testing::PaperExample ex;
  std::ostringstream db_text, h_text;
  WriteDatabase(db_text, ex.raw_db, ex.vocab);
  WriteHierarchy(h_text, ex.vocab);

  std::istringstream db_in(db_text.str()), h_in(h_text.str());
  Dataset dataset = Dataset::FromStreams(db_in, h_in);
  EXPECT_EQ(dataset.NumSequences(), ex.raw_db.size());
  EXPECT_EQ(dataset.NumItems(), ex.vocab.NumItems());

  MiningTask task(dataset);
  task.WithSigma(2).WithGamma(1).WithLambda(3);
  PatternMap mined = task.Mine();

  auto named = [](const Dataset& d, const PatternMap& patterns) {
    std::map<std::vector<std::string>, Frequency> out;
    for (const auto& [s, freq] : patterns) {
      std::vector<std::string> names;
      for (ItemId rank : s) names.push_back(d.NameOfRank(rank));
      out.emplace(std::move(names), freq);
    }
    return out;
  };
  Dataset in_memory = Dataset::FromMemory(ex.raw_db, ex.vocab);
  MiningTask reference(in_memory);
  reference.WithSigma(2).WithGamma(1).WithLambda(3);
  EXPECT_EQ(named(dataset, mined), named(in_memory, reference.Mine()));
}

TEST(ApiDatasetTest, FlatPreprocessingIsThreadSafeUnderConcurrentTasks) {
  // Serving-layer regression: one shared Dataset must survive a mixed
  // flat/hierarchical workload where the very first flat queries race to
  // build the lazy flat preprocessing (guarded by std::call_once).
  testing::PaperExample ex;
  Dataset reference = Dataset::FromMemory(ex.raw_db, ex.vocab);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap expect_hier = MiningTask(reference).WithParams(params).Mine();
  PatternMap expect_flat =
      MiningTask(reference).WithParams(params).WithFlatHierarchy().Mine();

  // A fresh dataset whose flat preprocessing has not been built yet.
  Dataset dataset = Dataset::FromMemory(ex.raw_db, ex.vocab);
  constexpr size_t kThreads = 8;
  std::vector<const PreprocessResult*> flat_ptr(kThreads, nullptr);
  std::vector<PatternMap> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MiningTask task(dataset);
      task.WithParams(params);
      if (t % 2 == 1) task.WithFlatHierarchy();
      results[t] = task.Mine();
      flat_ptr[t] = &dataset.flat_preprocessed();
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t t = 0; t < kThreads; ++t) {
    // Exactly one flat preprocessing was built and everyone shares it.
    EXPECT_EQ(flat_ptr[t], flat_ptr[0]);
    EXPECT_EQ(testing::Sorted(results[t]),
              testing::Sorted(t % 2 == 1 ? expect_flat : expect_hier))
        << "thread " << t;
  }
}

TEST(ApiDatasetTest, DatasetIdsAreUniqueAndStable) {
  testing::PaperExample ex;
  Dataset a = Dataset::FromMemory(ex.raw_db, ex.vocab);
  Dataset b = Dataset::FromMemory(ex.raw_db, ex.vocab);
  EXPECT_NE(a.id(), 0u);  // 0 is reserved (never assigned).
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a.id(), a.id());
}

TEST(ApiDatasetTest, FromFilesErrorsNameTheMissingFile) {
  try {
    Dataset::FromFiles("/nonexistent/seq.txt", "/nonexistent/hier.tsv");
    FAIL() << "FromFiles must throw on unopenable input";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/hier.tsv"),
              std::string::npos);
  }
}

// Facade parity on a generated corpus, for all six algorithms.
TEST(ApiGeneratedTest, FacadeMatchesDirectPipelineOnGeneratedCorpus) {
  TextGenConfig gen;
  gen.num_sentences = 300;
  gen.avg_sentence_length = 8.0;
  gen.num_lemmas = 120;
  gen.seed = 11;
  GeneratedText data = GenerateText(gen);
  size_t num_raw_items = data.vocabulary.NumItems();
  Dataset dataset =
      Dataset::FromMemory(data.database, std::move(data.vocabulary),
                          Hierarchy(data.hierarchy));

  // Sigma low enough that even the flat MG-FSM baseline (no hierarchy to
  // lift support) finds patterns on this small Zipf corpus.
  GsmParams params{.sigma = 3, .gamma = 0, .lambda = 3};
  for (Algorithm algorithm : kAllAlgorithms) {
    MiningTask task(dataset);
    task.WithAlgorithm(algorithm).WithParams(params).WithJobConfig(
        TestConfig());
    RunResult result;
    PatternMap facade = task.Mine(&result);
    PatternMap direct = DirectMine(data.database, data.hierarchy,
                                   num_raw_items, params, algorithm);
    EXPECT_EQ(testing::Sorted(facade), testing::Sorted(direct))
        << AlgorithmName(algorithm);
    EXPECT_GT(facade.size(), 0u) << AlgorithmName(algorithm);
    EXPECT_FALSE(result.aborted);
  }
}

}  // namespace
}  // namespace lash
