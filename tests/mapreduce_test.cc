#include "mapreduce/job.h"

#include <gtest/gtest.h>

#include <string>

#include "mapreduce/cluster.h"
#include "util/varint.h"

namespace lash {
namespace {

JobConfig SmallConfig() {
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  return config;
}

TEST(MapReduceTest, WordCount) {
  std::vector<std::string> docs = {"a b a", "b c", "a"};
  std::unordered_map<std::string, int> counts;
  std::mutex mu;

  using Job = MapReduceJob<std::string, std::string, int>;
  Job job(
      [](const std::string& doc, const Job::EmitFn& emit) {
        size_t pos = 0;
        while (pos < doc.size()) {
          size_t space = doc.find(' ', pos);
          if (space == std::string::npos) space = doc.size();
          if (space > pos) emit(doc.substr(pos, space - pos), 1);
          pos = space + 1;
        }
      },
      [&](size_t, const std::string& key, std::vector<int>& values) {
        int total = 0;
        for (int v : values) total += v;
        std::lock_guard<std::mutex> lock(mu);
        counts[key] = total;
      },
      [](const std::string& key, const int&) { return key.size() + 4; });

  JobResult result = job.Run(docs, SmallConfig());
  EXPECT_EQ(counts.at("a"), 3);
  EXPECT_EQ(counts.at("b"), 2);
  EXPECT_EQ(counts.at("c"), 1);
  EXPECT_EQ(result.counters.map_input_records, 3u);
  EXPECT_EQ(result.counters.map_output_records, 6u);
  EXPECT_EQ(result.counters.reduce_input_groups, 3u);
}

TEST(MapReduceTest, MapInputRecordsCountedExactlyOnce) {
  // Regression test: Run used to set counters.map_input_records both
  // before the map phase and after the per-task counter merge; a stray
  // per-task contribution would double-count. The counter must equal the
  // input size exactly, for any task configuration.
  std::vector<int> inputs(17, 1);
  using Job = MapReduceJob<int, int, int>;
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x, 1); },
          [](size_t, const int&, std::vector<int>&) {},
          [](const int&, const int&) { return 2; });
  for (size_t map_tasks : {1u, 3u, 8u, 32u}) {
    JobConfig config = SmallConfig();
    config.num_map_tasks = map_tasks;
    JobResult result = job.Run(inputs, config);
    EXPECT_EQ(result.counters.map_input_records, inputs.size())
        << "map_tasks=" << map_tasks;
    EXPECT_EQ(result.counters.map_output_records, inputs.size());
  }
}

TEST(MapReduceTest, CombinerReducesRecordsAndBytes) {
  std::vector<int> inputs(100, 0);
  auto make_job = [](std::unordered_map<int, int>* out, std::mutex* mu) {
    using Job = MapReduceJob<int, int, int>;
    Job job(
        [](const int&, const Job::EmitFn& emit) {
          for (int k = 0; k < 10; ++k) emit(k % 2, 1);
        },
        [out, mu](size_t, const int& key, std::vector<int>& values) {
          int total = 0;
          for (int v : values) total += v;
          std::lock_guard<std::mutex> lock(*mu);
          (*out)[key] += total;
        },
        [](const int&, const int&) { return 8; });
    return job;
  };

  std::unordered_map<int, int> plain, combined;
  std::mutex mu;
  auto job_plain = make_job(&plain, &mu);
  JobResult r_plain = job_plain.Run(inputs, SmallConfig());

  auto job_combined = make_job(&combined, &mu);
  job_combined.set_combiner([](int* acc, int&& v) { *acc += v; });
  JobResult r_combined = job_combined.Run(inputs, SmallConfig());

  EXPECT_EQ(plain, combined);
  EXPECT_EQ(plain.at(0), 500);
  EXPECT_EQ(r_plain.counters.map_output_records, 1000u);
  // With the combiner each map task emits at most 2 records.
  EXPECT_LE(r_combined.counters.map_output_records, 6u);
  EXPECT_LT(r_combined.counters.map_output_bytes,
            r_plain.counters.map_output_bytes);
}

TEST(MapReduceTest, CustomPartitionerRoutesKeys) {
  std::vector<int> inputs = {0};
  std::vector<std::vector<int>> seen(4);
  using Job = MapReduceJob<int, int, int>;
  Job job(
      [](const int&, const Job::EmitFn& emit) {
        for (int k = 0; k < 16; ++k) emit(k, 1);
      },
      [&](size_t rtask, const int& key, std::vector<int>&) {
        seen[rtask].push_back(key);
      },
      [](const int&, const int&) { return 1; });
  // Route everything to partition 2.
  job.set_partitioner([](const int&) { return 2u; });
  JobConfig config = SmallConfig();
  job.Run(inputs, config);
  EXPECT_EQ(seen[2].size(), 16u);
  EXPECT_TRUE(seen[0].empty() && seen[1].empty() && seen[3].empty());
}

TEST(MapReduceTest, ReduceFinishRunsOncePerTask) {
  std::vector<int> inputs = {1, 2, 3};
  std::atomic<int> finishes{0};
  using Job = MapReduceJob<int, int, int>;
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x, 1); },
          [](size_t, const int&, std::vector<int>&) {},
          [](const int&, const int&) { return 1; });
  job.set_reduce_finish([&](size_t, ThreadPool*) { finishes.fetch_add(1); });
  JobConfig config = SmallConfig();
  job.Run(inputs, config);
  EXPECT_EQ(finishes.load(), static_cast<int>(config.num_reduce_tasks));
}

TEST(MapReduceTest, PhaseTimesPopulated) {
  std::vector<int> inputs(10, 1);
  using Job = MapReduceJob<int, int, int>;
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x, x); },
          [](size_t, const int&, std::vector<int>&) {},
          [](const int&, const int&) { return 2; });
  JobResult result = job.Run(inputs, SmallConfig());
  EXPECT_GE(result.times.map_ms, 0.0);
  EXPECT_GE(result.times.TotalMs(), result.times.map_ms);
  EXPECT_EQ(result.map_task_ms.size(), 3u);
  EXPECT_EQ(result.reduce_task_ms.size(), 4u);
}

// A job with a SpillCodec installed, so that kPackedSpill actually takes
// the pipelined packed path (jobs without a codec fall back to legacy).
struct VarintSumJob {
  using Job = MapReduceJob<int, uint32_t, uint64_t>;
  std::unordered_map<uint32_t, uint64_t> sums;
  std::mutex mu;
  Job job;

  VarintSumJob()
      : job([](const int& x,
               const Job::EmitFn& emit) { emit(static_cast<uint32_t>(x) % 7,
                                               1); },
            [this](size_t, const uint32_t& key, std::vector<uint64_t>& values) {
              uint64_t total = 0;
              for (uint64_t v : values) total += v;
              std::lock_guard<std::mutex> lock(mu);
              sums[key] += total;
            },
            [](const uint32_t& key, const uint64_t& value) {
              return Varint32Size(key) + Varint64Size(value);
            }) {
    Job::SpillCodec codec;
    codec.encode_key = [](std::string* out, const uint32_t& key) {
      PutVarint32(out, key);
    };
    codec.decode_key = [](const std::string& data, size_t* pos,
                          uint32_t* key) { return GetVarint32(data, pos, key); };
    codec.encode_value = [](std::string* out, const uint64_t& value) {
      PutVarint64(out, value);
    };
    codec.decode_value = [](const std::string& data, size_t* pos,
                            uint64_t* value) {
      return GetVarint64(data, pos, value);
    };
    job.set_spill_codec(std::move(codec));
  }
};

TEST(MapReduceTest, PipelinedTimelinePopulatedAndOrdered) {
  std::vector<int> inputs(200, 1);
  for (int i = 0; i < 200; ++i) inputs[static_cast<size_t>(i)] = i;

  VarintSumJob packed;
  JobConfig config = SmallConfig();
  JobResult result = packed.job.Run(inputs, config);
  EXPECT_TRUE(result.pipelined);
  EXPECT_GE(result.map_barrier_ms, 0.0);
  EXPECT_GE(result.phase_overlap_ms, 0.0);
  ASSERT_EQ(result.partition_timeline.size(), config.num_reduce_tasks);
  for (const PartitionTimeline& t : result.partition_timeline) {
    // ready (last seal) -> start (worker pickup) -> grouped -> reduced
    // must be causally ordered, and every stamp lies within the job.
    EXPECT_GE(t.ready_ms, 0.0);
    EXPECT_LE(t.ready_ms, t.start_ms);
    EXPECT_LE(t.start_ms, t.grouped_ms);
    EXPECT_LE(t.grouped_ms, t.reduced_ms);
    EXPECT_LE(t.reduced_ms, result.times.TotalMs() + 1.0);
  }
  // The three attributed phase times still sum to the wall clock.
  EXPECT_NEAR(result.times.map_ms, result.map_barrier_ms, 1e-9);

  // The legacy path keeps its strict barriers and reports no timeline.
  VarintSumJob legacy;
  JobConfig legacy_config = SmallConfig();
  legacy_config.shuffle = ShuffleMode::kLegacyHash;
  JobResult legacy_result = legacy.job.Run(inputs, legacy_config);
  EXPECT_FALSE(legacy_result.pipelined);
  EXPECT_TRUE(legacy_result.partition_timeline.empty());
  EXPECT_EQ(packed.sums, legacy.sums);
}

TEST(MapReduceTest, SingleThreadPoolReportsZeroOverlap) {
  // One worker can interleave phases but never run two at once; the
  // event sweep must attribute exactly zero overlap.
  std::vector<int> inputs(100, 3);
  VarintSumJob wc;
  JobConfig config = SmallConfig();
  config.num_threads = 1;
  JobResult result = wc.job.Run(inputs, config);
  EXPECT_TRUE(result.pipelined);
  EXPECT_DOUBLE_EQ(result.phase_overlap_ms, 0.0);
}

TEST(MapReduceTest, SimulatedTimesPipelinedHasNoShuffleTerm) {
  std::vector<int> inputs(50, 2);
  VarintSumJob packed;
  JobConfig config = SmallConfig();
  JobResult r_packed = packed.job.Run(inputs, config);
  ASSERT_TRUE(r_packed.pipelined);
  // Grouping time is inside reduce_task_ms on the pipelined path; a
  // separate shuffle term would double-count it.
  EXPECT_DOUBLE_EQ(r_packed.SimulatedTimes(4).shuffle_ms, 0.0);

  VarintSumJob legacy;
  JobConfig legacy_config = SmallConfig();
  legacy_config.shuffle = ShuffleMode::kLegacyHash;
  JobResult r_legacy = legacy.job.Run(inputs, legacy_config);
  ASSERT_FALSE(r_legacy.pipelined);
  EXPECT_DOUBLE_EQ(r_legacy.SimulatedTimes(4).shuffle_ms,
                   r_legacy.times.shuffle_ms / 4.0);
}

TEST(PhaseOverlapTest, CountsOnlyDistinctPhaseOverlap) {
  // Map runs [0, 10]. The partition is sealed at 5 but waits in the queue
  // until 6 (queue wait is not activity), groups over [6, 8] and reduces
  // over [8, 12]. Overlap with the map task: grouping contributes 2ms,
  // reduce contributes 10 - 8 = 2ms.
  std::vector<double> map_start = {0.0};
  std::vector<double> map_end = {10.0};
  std::vector<PartitionTimeline> parts = {{5.0, 6.0, 8.0, 12.0}};
  EXPECT_DOUBLE_EQ(PhaseOverlapMs(map_start, map_end, parts), 4.0);

  // Strictly sequential schedule: no overlap at all.
  parts = {{10.0, 10.0, 12.0, 14.0}};
  EXPECT_DOUBLE_EQ(PhaseOverlapMs(map_start, map_end, parts), 0.0);

  // Two partitions grouping at the same time are the SAME phase — only
  // the window where partition 1 reduces while partition 2 still groups
  // ([8, 9]) counts.
  map_end = {5.0};
  parts = {{5.0, 5.0, 8.0, 11.0}, {5.0, 6.0, 9.0, 9.0}};
  EXPECT_DOUBLE_EQ(PhaseOverlapMs(map_start, map_end, parts), 1.0);

  // ...and with reduce intervals collapsed to zero width, two concurrent
  // grouping passes alone attribute nothing.
  parts = {{5.0, 5.0, 8.0, 8.0}, {5.0, 6.0, 9.0, 9.0}};
  EXPECT_DOUBLE_EQ(PhaseOverlapMs(map_start, map_end, parts), 0.0);
}

TEST(ClusterTest, MakespanPerfectlyParallelWork) {
  // 16 unit tasks on 2 machines x 1 slot -> 8; on 4 machines -> 4.
  std::vector<double> tasks(16, 1.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 2, 1), 8.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 4, 1), 4.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 16, 1), 1.0);
}

TEST(ClusterTest, MakespanBoundedByLargestTask) {
  // One giant task dominates no matter how many machines: skew (Sec. 4).
  std::vector<double> tasks = {100.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 64, 8), 100.0);
}

TEST(ClusterTest, OverheadAddsPerTask) {
  std::vector<double> tasks = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 1, 1, 0.5), 3.0);
}

TEST(ClusterTest, ZeroMachinesClamped) {
  std::vector<double> tasks = {2.0};
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 0, 0), 2.0);
}

}  // namespace
}  // namespace lash
