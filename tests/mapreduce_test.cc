#include "mapreduce/job.h"

#include <gtest/gtest.h>

#include <string>

#include "mapreduce/cluster.h"

namespace lash {
namespace {

JobConfig SmallConfig() {
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  return config;
}

TEST(MapReduceTest, WordCount) {
  std::vector<std::string> docs = {"a b a", "b c", "a"};
  std::unordered_map<std::string, int> counts;
  std::mutex mu;

  using Job = MapReduceJob<std::string, std::string, int>;
  Job job(
      [](const std::string& doc, const Job::EmitFn& emit) {
        size_t pos = 0;
        while (pos < doc.size()) {
          size_t space = doc.find(' ', pos);
          if (space == std::string::npos) space = doc.size();
          if (space > pos) emit(doc.substr(pos, space - pos), 1);
          pos = space + 1;
        }
      },
      [&](size_t, const std::string& key, std::vector<int>& values) {
        int total = 0;
        for (int v : values) total += v;
        std::lock_guard<std::mutex> lock(mu);
        counts[key] = total;
      },
      [](const std::string& key, const int&) { return key.size() + 4; });

  JobResult result = job.Run(docs, SmallConfig());
  EXPECT_EQ(counts.at("a"), 3);
  EXPECT_EQ(counts.at("b"), 2);
  EXPECT_EQ(counts.at("c"), 1);
  EXPECT_EQ(result.counters.map_input_records, 3u);
  EXPECT_EQ(result.counters.map_output_records, 6u);
  EXPECT_EQ(result.counters.reduce_input_groups, 3u);
}

TEST(MapReduceTest, MapInputRecordsCountedExactlyOnce) {
  // Regression test: Run used to set counters.map_input_records both
  // before the map phase and after the per-task counter merge; a stray
  // per-task contribution would double-count. The counter must equal the
  // input size exactly, for any task configuration.
  std::vector<int> inputs(17, 1);
  using Job = MapReduceJob<int, int, int>;
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x, 1); },
          [](size_t, const int&, std::vector<int>&) {},
          [](const int&, const int&) { return 2; });
  for (size_t map_tasks : {1u, 3u, 8u, 32u}) {
    JobConfig config = SmallConfig();
    config.num_map_tasks = map_tasks;
    JobResult result = job.Run(inputs, config);
    EXPECT_EQ(result.counters.map_input_records, inputs.size())
        << "map_tasks=" << map_tasks;
    EXPECT_EQ(result.counters.map_output_records, inputs.size());
  }
}

TEST(MapReduceTest, CombinerReducesRecordsAndBytes) {
  std::vector<int> inputs(100, 0);
  auto make_job = [](std::unordered_map<int, int>* out, std::mutex* mu) {
    using Job = MapReduceJob<int, int, int>;
    Job job(
        [](const int&, const Job::EmitFn& emit) {
          for (int k = 0; k < 10; ++k) emit(k % 2, 1);
        },
        [out, mu](size_t, const int& key, std::vector<int>& values) {
          int total = 0;
          for (int v : values) total += v;
          std::lock_guard<std::mutex> lock(*mu);
          (*out)[key] += total;
        },
        [](const int&, const int&) { return 8; });
    return job;
  };

  std::unordered_map<int, int> plain, combined;
  std::mutex mu;
  auto job_plain = make_job(&plain, &mu);
  JobResult r_plain = job_plain.Run(inputs, SmallConfig());

  auto job_combined = make_job(&combined, &mu);
  job_combined.set_combiner([](int* acc, int&& v) { *acc += v; });
  JobResult r_combined = job_combined.Run(inputs, SmallConfig());

  EXPECT_EQ(plain, combined);
  EXPECT_EQ(plain.at(0), 500);
  EXPECT_EQ(r_plain.counters.map_output_records, 1000u);
  // With the combiner each map task emits at most 2 records.
  EXPECT_LE(r_combined.counters.map_output_records, 6u);
  EXPECT_LT(r_combined.counters.map_output_bytes,
            r_plain.counters.map_output_bytes);
}

TEST(MapReduceTest, CustomPartitionerRoutesKeys) {
  std::vector<int> inputs = {0};
  std::vector<std::vector<int>> seen(4);
  using Job = MapReduceJob<int, int, int>;
  Job job(
      [](const int&, const Job::EmitFn& emit) {
        for (int k = 0; k < 16; ++k) emit(k, 1);
      },
      [&](size_t rtask, const int& key, std::vector<int>&) {
        seen[rtask].push_back(key);
      },
      [](const int&, const int&) { return 1; });
  // Route everything to partition 2.
  job.set_partitioner([](const int&) { return 2u; });
  JobConfig config = SmallConfig();
  job.Run(inputs, config);
  EXPECT_EQ(seen[2].size(), 16u);
  EXPECT_TRUE(seen[0].empty() && seen[1].empty() && seen[3].empty());
}

TEST(MapReduceTest, ReduceFinishRunsOncePerTask) {
  std::vector<int> inputs = {1, 2, 3};
  std::atomic<int> finishes{0};
  using Job = MapReduceJob<int, int, int>;
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x, 1); },
          [](size_t, const int&, std::vector<int>&) {},
          [](const int&, const int&) { return 1; });
  job.set_reduce_finish([&](size_t, ThreadPool*) { finishes.fetch_add(1); });
  JobConfig config = SmallConfig();
  job.Run(inputs, config);
  EXPECT_EQ(finishes.load(), static_cast<int>(config.num_reduce_tasks));
}

TEST(MapReduceTest, PhaseTimesPopulated) {
  std::vector<int> inputs(10, 1);
  using Job = MapReduceJob<int, int, int>;
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x, x); },
          [](size_t, const int&, std::vector<int>&) {},
          [](const int&, const int&) { return 2; });
  JobResult result = job.Run(inputs, SmallConfig());
  EXPECT_GE(result.times.map_ms, 0.0);
  EXPECT_GE(result.times.TotalMs(), result.times.map_ms);
  EXPECT_EQ(result.map_task_ms.size(), 3u);
  EXPECT_EQ(result.reduce_task_ms.size(), 4u);
}

TEST(ClusterTest, MakespanPerfectlyParallelWork) {
  // 16 unit tasks on 2 machines x 1 slot -> 8; on 4 machines -> 4.
  std::vector<double> tasks(16, 1.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 2, 1), 8.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 4, 1), 4.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 16, 1), 1.0);
}

TEST(ClusterTest, MakespanBoundedByLargestTask) {
  // One giant task dominates no matter how many machines: skew (Sec. 4).
  std::vector<double> tasks = {100.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 64, 8), 100.0);
}

TEST(ClusterTest, OverheadAddsPerTask) {
  std::vector<double> tasks = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 1, 1, 0.5), 3.0);
}

TEST(ClusterTest, ZeroMachinesClamped) {
  std::vector<double> tasks = {2.0};
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 0, 0), 2.0);
}

}  // namespace
}  // namespace lash
