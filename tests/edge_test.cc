// Edge-case and failure-injection tests spanning modules: degenerate
// databases, boundary parameters, deep hierarchies, and odd job
// configurations. Complements the per-module suites.

#include <gtest/gtest.h>

#include "algo/lash.h"
#include "algo/naive_gsm.h"
#include "algo/sequential.h"
#include "core/rewrite.h"
#include "miner/enumerate.h"
#include "test_util.h"

namespace lash {
namespace {

JobConfig OddConfig(size_t maps, size_t reds) {
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = maps;
  config.num_reduce_tasks = reds;
  return config;
}

TEST(EdgeTest, EmptyDatabase) {
  Hierarchy h = Hierarchy::Flat(3);
  PreprocessResult pre = Preprocess(Database{}, h);
  GsmParams params{.sigma = 1, .gamma = 0, .lambda = 2};
  EXPECT_TRUE(RunLash(pre, params, OddConfig(4, 4)).patterns.empty());
  EXPECT_TRUE(MineSequential(pre, params).empty());
}

TEST(EdgeTest, SingleItemSequencesYieldNothing) {
  // Patterns need length >= 2; a database of singletons has none.
  Hierarchy h = Hierarchy::Flat(2);
  Database db = {{1}, {1}, {2}, {2}};
  PreprocessResult pre = Preprocess(db, h);
  GsmParams params{.sigma = 1, .gamma = 0, .lambda = 3};
  EXPECT_TRUE(RunLash(pre, params, OddConfig(2, 2)).patterns.empty());
}

TEST(EdgeTest, SigmaOneCountsEverything) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 1, .gamma = 1, .lambda = 3};
  PatternMap reference =
      MineByEnumeration(ex.pre.database, ex.pre.hierarchy, params);
  AlgoResult lash = RunLash(ex.pre, params, OddConfig(3, 5));
  EXPECT_EQ(testing::Sorted(lash.patterns), testing::Sorted(reference));
  EXPECT_GT(lash.patterns.size(), 10u);
}

TEST(EdgeTest, LambdaTwoMinimum) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 2};
  PatternMap reference =
      MineByEnumeration(ex.pre.database, ex.pre.hierarchy, params);
  AlgoResult lash = RunLash(ex.pre, params, OddConfig(2, 2));
  EXPECT_EQ(testing::Sorted(lash.patterns), testing::Sorted(reference));
  for (const auto& [s, freq] : lash.patterns) EXPECT_EQ(s.size(), 2u);
}

TEST(EdgeTest, HugeGammaActsUnbounded) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1000, .lambda = 3};
  PatternMap reference =
      MineByEnumeration(ex.pre.database, ex.pre.hierarchy, params);
  AlgoResult lash = RunLash(ex.pre, params, OddConfig(2, 2));
  EXPECT_EQ(testing::Sorted(lash.patterns), testing::Sorted(reference));
}

TEST(EdgeTest, DeepChainHierarchy) {
  // A 12-level chain: every item generalizes to the root; frequencies
  // accumulate along the whole chain.
  const size_t depth = 12;
  std::vector<ItemId> parent(depth + 1);
  parent[0] = kInvalidItem;
  parent[1] = kInvalidItem;
  for (size_t w = 2; w <= depth; ++w) parent[w] = static_cast<ItemId>(w - 1);
  Hierarchy h{std::move(parent)};
  Database db = {{static_cast<ItemId>(depth), static_cast<ItemId>(depth)},
                 {static_cast<ItemId>(depth), static_cast<ItemId>(depth)}};
  PreprocessResult pre = Preprocess(db, h);
  GsmParams params{.sigma = 2, .gamma = 0, .lambda = 2};
  AlgoResult lash = RunLash(pre, params, OddConfig(2, 2));
  // Every pair of ancestors (depth^2 combinations) is frequent.
  EXPECT_EQ(lash.patterns.size(), depth * depth);
}

TEST(EdgeTest, MoreReduceTasksThanPivots) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  AlgoResult lash = RunLash(ex.pre, params, OddConfig(1, 64));
  EXPECT_EQ(testing::Sorted(lash.patterns),
            testing::Sorted(ex.ExpectedOutput()));
}

TEST(EdgeTest, SingleMapSingleReduceTask) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  AlgoResult lash = RunLash(ex.pre, params, OddConfig(1, 1));
  EXPECT_EQ(testing::Sorted(lash.patterns),
            testing::Sorted(ex.ExpectedOutput()));
  AlgoResult naive = RunNaiveGsm(ex.pre, params, OddConfig(1, 1));
  EXPECT_EQ(testing::Sorted(naive.patterns),
            testing::Sorted(ex.ExpectedOutput()));
}

TEST(EdgeTest, MoreMapTasksThanSequences) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  AlgoResult lash = RunLash(ex.pre, params, OddConfig(100, 4));
  EXPECT_EQ(testing::Sorted(lash.patterns),
            testing::Sorted(ex.ExpectedOutput()));
}

TEST(EdgeTest, RepeatedItemsWithinTransaction) {
  // Document frequency: repeats inside one transaction count once.
  Hierarchy h = Hierarchy::Flat(1);
  Database db = {{1, 1, 1, 1, 1}, {1, 1}};
  PreprocessResult pre = Preprocess(db, h);
  GsmParams params{.sigma = 2, .gamma = 0, .lambda = 3};
  AlgoResult lash = RunLash(pre, params, OddConfig(2, 2));
  ASSERT_TRUE(lash.patterns.contains(Sequence{1, 1}));
  EXPECT_EQ(lash.patterns.at(Sequence{1, 1}), 2u);
}

TEST(EdgeTest, ItemsNeverInDataRankLast) {
  // Vocabulary items that never occur (directly or via descendants) get
  // zero generalized frequency and must never become pivots.
  Hierarchy h = Hierarchy::Flat(5);
  Database db = {{1, 2}, {1, 2}};
  PreprocessResult pre = Preprocess(db, h);
  EXPECT_EQ(pre.NumFrequent(1), 2u);
  EXPECT_EQ(pre.freq[5], 0u);
  GsmParams params{.sigma = 1, .gamma = 0, .lambda = 2};
  AlgoResult lash = RunLash(pre, params, OddConfig(2, 2));
  EXPECT_EQ(lash.patterns.size(), 1u);
}

TEST(EdgeTest, RewriterOnAllIrrelevantSequence) {
  Hierarchy h = Hierarchy::Flat(5);
  Rewriter rewriter(&h, 1, 3);
  // Pivot 1 does not occur: rewrite proves emptiness.
  EXPECT_TRUE(rewriter.Rewrite(Sequence{4, 5, 3}, 1).empty());
}

TEST(EdgeTest, RewriterPivotIsLargestItem) {
  // Pivot = largest rank: everything is relevant, nothing is blanked.
  Hierarchy h = Hierarchy::Flat(4);
  Rewriter rewriter(&h, 1, 4);
  Sequence t = {1, 4, 2, 3};
  EXPECT_EQ(rewriter.Rewrite(t, 4), t);
}

TEST(EdgeTest, NaiveOnLongUniformSequence) {
  // A single long sequence of one item: output is exactly the runs up to
  // lambda, each with frequency 1 (sigma=1).
  Hierarchy h = Hierarchy::Flat(1);
  Database db = {Sequence(30, 1)};
  PreprocessResult pre = Preprocess(db, h);
  GsmParams params{.sigma = 1, .gamma = 2, .lambda = 4};
  AlgoResult result = RunNaiveGsm(pre, params, OddConfig(2, 2));
  // Patterns: 11, 111, 1111.
  EXPECT_EQ(result.patterns.size(), 3u);
}

}  // namespace
}  // namespace lash
