#include "io/binary_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace lash {
namespace {

TEST(BinaryIoTest, DatabaseRoundTrip) {
  testing::PaperExample ex;
  std::stringstream buffer;
  WriteDatabaseBinary(buffer, ex.pre.database);
  Database decoded = ReadDatabaseBinary(buffer);
  EXPECT_EQ(decoded, ex.pre.database);
}

TEST(BinaryIoTest, EmptyDatabaseRoundTrip) {
  std::stringstream buffer;
  WriteDatabaseBinary(buffer, {});
  EXPECT_TRUE(ReadDatabaseBinary(buffer).empty());
}

TEST(BinaryIoTest, HierarchyRoundTrip) {
  testing::PaperExample ex;
  std::stringstream buffer;
  WriteHierarchyBinary(buffer, ex.pre.hierarchy);
  Hierarchy decoded = ReadHierarchyBinary(buffer);
  ASSERT_EQ(decoded.NumItems(), ex.pre.hierarchy.NumItems());
  for (ItemId w = 1; w <= decoded.NumItems(); ++w) {
    EXPECT_EQ(decoded.Parent(w), ex.pre.hierarchy.Parent(w));
  }
}

TEST(BinaryIoTest, PatternsRoundTrip) {
  testing::PaperExample ex;
  PatternMap patterns = ex.ExpectedOutput();
  std::stringstream buffer;
  WritePatternsBinary(buffer, patterns);
  PatternMap decoded = ReadPatternsBinary(buffer);
  EXPECT_EQ(testing::Sorted(decoded), testing::Sorted(patterns));
}

TEST(BinaryIoTest, RejectsWrongMagic) {
  std::stringstream buffer;
  WriteDatabaseBinary(buffer, {{1, 2}});
  EXPECT_THROW(ReadHierarchyBinary(buffer), std::runtime_error);
}

TEST(BinaryIoTest, RejectsTruncation) {
  std::stringstream buffer;
  WriteDatabaseBinary(buffer, {{1, 2, 3}, {4, 5}});
  std::string data = buffer.str();
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{1}}) {
    std::stringstream truncated(data.substr(0, cut));
    EXPECT_THROW(ReadDatabaseBinary(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(BinaryIoTest, RandomRoundTrips) {
  Rng rng(1999);
  for (int trial = 0; trial < 20; ++trial) {
    Database db =
        testing::RandomDatabase(1 + rng.Uniform(20), 10, 50, &rng);
    std::stringstream buffer;
    WriteDatabaseBinary(buffer, db);
    EXPECT_EQ(ReadDatabaseBinary(buffer), db);
  }
}

}  // namespace
}  // namespace lash
