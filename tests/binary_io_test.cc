#include "io/binary_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "io/io_error.h"
#include "test_util.h"

namespace lash {
namespace {

TEST(BinaryIoTest, DatabaseRoundTrip) {
  testing::PaperExample ex;
  std::stringstream buffer;
  WriteDatabaseBinary(buffer, ex.pre.database);
  Database decoded = ReadDatabaseBinary(buffer);
  EXPECT_EQ(FlatDatabase::FromDatabase(decoded), ex.pre.database);
}

TEST(BinaryIoTest, FlatDatabaseRoundTrip) {
  // The flat writer emits byte-identical output to the owning writer, and
  // the flat reader decodes straight into the CSR form.
  testing::PaperExample ex;
  std::stringstream flat_buffer;
  WriteDatabaseBinary(flat_buffer, ex.pre.database);
  std::stringstream legacy_buffer;
  WriteDatabaseBinary(legacy_buffer, ex.pre.database.Materialize());
  EXPECT_EQ(flat_buffer.str(), legacy_buffer.str());
  EXPECT_EQ(ReadFlatDatabaseBinary(flat_buffer), ex.pre.database);
}

TEST(BinaryIoTest, EmptyDatabaseRoundTrip) {
  std::stringstream buffer;
  WriteDatabaseBinary(buffer, Database{});
  EXPECT_TRUE(ReadDatabaseBinary(buffer).empty());
}

TEST(BinaryIoTest, HierarchyRoundTrip) {
  testing::PaperExample ex;
  std::stringstream buffer;
  WriteHierarchyBinary(buffer, ex.pre.hierarchy);
  Hierarchy decoded = ReadHierarchyBinary(buffer);
  ASSERT_EQ(decoded.NumItems(), ex.pre.hierarchy.NumItems());
  for (ItemId w = 1; w <= decoded.NumItems(); ++w) {
    EXPECT_EQ(decoded.Parent(w), ex.pre.hierarchy.Parent(w));
  }
}

TEST(BinaryIoTest, PatternsRoundTrip) {
  testing::PaperExample ex;
  PatternMap patterns = ex.ExpectedOutput();
  std::stringstream buffer;
  WritePatternsBinary(buffer, patterns);
  PatternMap decoded = ReadPatternsBinary(buffer);
  EXPECT_EQ(testing::Sorted(decoded), testing::Sorted(patterns));
}

TEST(BinaryIoTest, RejectsWrongMagic) {
  std::stringstream buffer;
  WriteDatabaseBinary(buffer, Database{{1, 2}});
  // Typed error: the reader identifies "not this container" as kBadMagic
  // (and still derives from std::runtime_error for old catch sites).
  try {
    ReadHierarchyBinary(buffer);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kBadMagic);
    EXPECT_EQ(e.byte_offset(), 0u);
  }
}

TEST(BinaryIoTest, RejectsTruncation) {
  std::stringstream buffer;
  WriteDatabaseBinary(buffer, Database{{1, 2, 3}, {4, 5}});
  std::string data = buffer.str();
  for (size_t cut : {data.size() - 1, data.size() / 2}) {
    std::stringstream truncated(data.substr(0, cut));
    try {
      ReadDatabaseBinary(truncated);
      FAIL() << "expected IoError, cut at " << cut;
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kTruncated) << "cut at " << cut;
      EXPECT_GT(e.byte_offset(), 0u) << "cut at " << cut;
    }
  }
  // Cutting inside the magic itself is a bad-magic failure, not truncation.
  std::stringstream stub(data.substr(0, 1));
  EXPECT_THROW(ReadDatabaseBinary(stub), IoError);
}

TEST(BinaryIoTest, RandomRoundTrips) {
  Rng rng(1999);
  for (int trial = 0; trial < 20; ++trial) {
    Database db =
        testing::RandomDatabase(1 + rng.Uniform(20), 10, 50, &rng);
    std::stringstream buffer;
    WriteDatabaseBinary(buffer, db);
    EXPECT_EQ(ReadDatabaseBinary(buffer), db);
  }
}

}  // namespace
}  // namespace lash
