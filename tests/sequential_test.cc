#include "algo/sequential.h"

#include <gtest/gtest.h>

#include "miner/enumerate.h"
#include "test_util.h"

namespace lash {
namespace {

TEST(SequentialTest, ReproducesPaperExample) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap mined = MineSequential(ex.pre, params);
  EXPECT_EQ(testing::Sorted(mined), testing::Sorted(ex.ExpectedOutput()));
}

TEST(SequentialTest, AllMinersAgree) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  for (MinerKind kind : {MinerKind::kBfs, MinerKind::kDfs, MinerKind::kPsm,
                         MinerKind::kPsmIndex}) {
    PatternMap mined = MineSequential(ex.pre, params, kind);
    EXPECT_EQ(testing::Sorted(mined), testing::Sorted(ex.ExpectedOutput()))
        << static_cast<int>(kind);
  }
}

TEST(SequentialTest, AgreesWithEnumerationOnRandomData) {
  Rng rng(2718);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 4 + rng.Uniform(7);
    Hierarchy h = testing::RandomRankHierarchy(n, 0.4, &rng);
    Database db = testing::RandomDatabase(15, 8, n, &rng);
    PreprocessResult pre = Preprocess(db, h);
    PatternMap expected =
        MineByEnumeration(pre.database, pre.hierarchy, params);
    PatternMap mined = MineSequential(pre, params);
    ASSERT_EQ(testing::Sorted(mined), testing::Sorted(expected))
        << "trial " << trial;
  }
}

TEST(SequentialTest, CollectsMinerStats) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  MinerStats stats;
  PatternMap mined = MineSequential(ex.pre, params, MinerKind::kPsm, &stats);
  EXPECT_EQ(stats.outputs, mined.size());
  EXPECT_GE(stats.candidates, stats.outputs);
}

TEST(SequentialTest, HighSigmaYieldsEmpty) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 100, .gamma = 1, .lambda = 3};
  EXPECT_TRUE(MineSequential(ex.pre, params).empty());
}

TEST(SequentialTest, ValidatesParams) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 0, .gamma = 0, .lambda = 3};
  EXPECT_THROW(MineSequential(ex.pre, params), std::invalid_argument);
}

}  // namespace
}  // namespace lash
