#include "core/match.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace lash {
namespace {

class MatchPaperTest : public ::testing::Test {
 protected:
  testing::PaperExample ex_;
};

TEST_F(MatchPaperTest, SubsequenceExamples) {
  const Hierarchy& h = ex_.pre.hierarchy;
  // T5 = a b12 d1 c (Sec. 2 examples).
  Sequence t5 = ex_.RankSeq({"a", "b12", "d1", "c"});
  EXPECT_TRUE(Matches(ex_.RankSeq({"a", "b12"}), t5, h, 0));
  EXPECT_TRUE(Matches(ex_.RankSeq({"a", "d1", "c"}), t5, h, 1));
  EXPECT_FALSE(Matches(ex_.RankSeq({"b12", "a"}), t5, h, 5));
  EXPECT_FALSE(Matches(ex_.RankSeq({"a", "d1", "c"}), t5, h, 0));
}

TEST_F(MatchPaperTest, GeneralizedExamples) {
  const Hierarchy& h = ex_.pre.hierarchy;
  Sequence t5 = ex_.RankSeq({"a", "b12", "d1", "c"});
  // aD ⊑1 T5 even though D does not occur in T5 (Sec. 2).
  EXPECT_TRUE(Matches(ex_.RankSeq({"a", "D"}), t5, h, 1));
  EXPECT_TRUE(Matches(ex_.RankSeq({"a", "d1"}), t5, h, 1));
  EXPECT_TRUE(Matches(ex_.RankSeq({"a", "B", "c"}), t5, h, 1));
  EXPECT_FALSE(Matches(ex_.RankSeq({"a", "B", "c"}), t5, h, 0));
}

TEST_F(MatchPaperTest, SupportExamples) {
  const Hierarchy& h = ex_.pre.hierarchy;
  // Sup_0(aBc) = {T2}, Sup_1(aBc) = {T2, T5} (Sec. 2).
  Sequence abc = ex_.RankSeq({"a", "B", "c"});
  int sup0 = 0, sup1 = 0;
  for (SequenceView t : ex_.pre.database) {
    sup0 += Matches(abc, t, h, 0);
    sup1 += Matches(abc, t, h, 1);
  }
  EXPECT_EQ(sup0, 1);
  EXPECT_EQ(sup1, 2);
}

TEST(MatchTest, GreedyPitfall) {
  // S=ab, gamma=0, T=acab: greedy leftmost matching of 'a' fails; the DP
  // must find the second 'a'.
  Hierarchy h = Hierarchy::Flat(3);
  Sequence t = {1, 3, 1, 2};
  EXPECT_TRUE(Matches({1, 2}, t, h, 0));
}

TEST(MatchTest, BlanksNeverMatch) {
  Hierarchy h = Hierarchy::Flat(3);
  Sequence t = {1, kBlank, 2};
  EXPECT_TRUE(Matches({1, 2}, t, h, 1));
  EXPECT_FALSE(Matches({1, 2}, t, h, 0));  // Blank occupies a position.
  EXPECT_FALSE(Matches({1, kBlank}, t, h, 1));
}

TEST(MatchTest, EmptyAndOversizePatterns) {
  Hierarchy h = Hierarchy::Flat(3);
  EXPECT_FALSE(Matches({}, {1, 2}, h, 0));
  EXPECT_FALSE(Matches({1, 2, 3}, {1, 2}, h, 0));
}

TEST(MatchTest, EndPositions) {
  Hierarchy h = Hierarchy::Flat(2);
  // T = 1 2 1 2; pattern 1,2 ends at positions 1 and 3 for gamma=1.
  Sequence t = {1, 2, 1, 2};
  EXPECT_EQ(MatchEndPositions({1, 2}, t, h, 1),
            (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(MatchEndPositions({1, 2}, t, h, 0),
            (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(MatchEndPositions({1, 1}, t, h, 0), (std::vector<uint32_t>{}));
  EXPECT_EQ(MatchEndPositions({1, 1}, t, h, 1),
            (std::vector<uint32_t>{2}));
}

TEST(MatchTest, EmbeddingsTrackStartAndEnd) {
  Hierarchy h = Hierarchy::Flat(2);
  Sequence t = {1, 2, 1, 2};
  std::vector<Embedding> embs = MatchEmbeddings({1, 2}, t, h, 1);
  // (0,3) is NOT an embedding: two items lie between positions 0 and 3.
  ASSERT_EQ(embs.size(), 2u);
  EXPECT_EQ(embs[0], (Embedding{0, 1}));
  EXPECT_EQ(embs[1], (Embedding{2, 3}));
}

// Property: Matches agrees with a brute-force recursive matcher.
class MatchPropertyTest : public ::testing::TestWithParam<uint32_t> {};

bool BruteForceMatch(const Sequence& s, size_t j, const Sequence& t, size_t i,
                     const Hierarchy& h, uint32_t gamma) {
  if (j == s.size()) return true;
  size_t hi = (j == 0) ? t.size() : std::min(t.size(), i + gamma + 1);
  size_t lo = (j == 0) ? 0 : i;
  for (size_t k = lo; k < hi; ++k) {
    if (IsItem(t[k]) && h.GeneralizesTo(t[k], s[j]) &&
        BruteForceMatch(s, j + 1, t, k + 1, h, gamma)) {
      return true;
    }
  }
  return false;
}

TEST_P(MatchPropertyTest, AgreesWithBruteForce) {
  const uint32_t gamma = GetParam();
  Rng rng(1000 + gamma);
  for (int trial = 0; trial < 300; ++trial) {
    Hierarchy h = testing::RandomRankHierarchy(8, 0.4, &rng);
    Sequence t;
    size_t tlen = 1 + rng.Uniform(10);
    for (size_t i = 0; i < tlen; ++i) {
      t.push_back(rng.Bernoulli(0.15) ? kBlank
                                      : static_cast<ItemId>(1 + rng.Uniform(8)));
    }
    Sequence s;
    size_t slen = 1 + rng.Uniform(4);
    for (size_t i = 0; i < slen; ++i) {
      s.push_back(static_cast<ItemId>(1 + rng.Uniform(8)));
    }
    EXPECT_EQ(Matches(s, t, h, gamma), BruteForceMatch(s, 0, t, 0, h, gamma))
        << "gamma=" << gamma << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, MatchPropertyTest,
                         ::testing::Values(0u, 1u, 2u, 5u));

// Property: MatchEmbeddings returns exactly the distinct (start, end) pairs
// over embeddings found by brute-force enumeration.
void BruteForceEmbeddings(const Sequence& s, size_t j, const Sequence& t,
                          size_t i, uint32_t first, const Hierarchy& h,
                          uint32_t gamma, std::set<Embedding>* out) {
  if (j == s.size()) {
    out->insert(Embedding{first, static_cast<uint32_t>(i - 1)});
    return;
  }
  size_t hi = (j == 0) ? t.size() : std::min(t.size(), i + gamma + 1);
  size_t lo = (j == 0) ? 0 : i;
  for (size_t k = lo; k < hi; ++k) {
    if (IsItem(t[k]) && h.GeneralizesTo(t[k], s[j])) {
      BruteForceEmbeddings(s, j + 1, t, k + 1,
                           j == 0 ? static_cast<uint32_t>(k) : first, h, gamma,
                           out);
    }
  }
}

class EmbeddingPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EmbeddingPropertyTest, AgreesWithBruteForce) {
  const uint32_t gamma = GetParam();
  Rng rng(5000 + gamma);
  for (int trial = 0; trial < 200; ++trial) {
    Hierarchy h = testing::RandomRankHierarchy(6, 0.4, &rng);
    Sequence t;
    size_t tlen = 1 + rng.Uniform(9);
    for (size_t i = 0; i < tlen; ++i) {
      t.push_back(rng.Bernoulli(0.15) ? kBlank
                                      : static_cast<ItemId>(1 + rng.Uniform(6)));
    }
    Sequence s;
    size_t slen = 1 + rng.Uniform(3);
    for (size_t i = 0; i < slen; ++i) {
      s.push_back(static_cast<ItemId>(1 + rng.Uniform(6)));
    }
    std::set<Embedding> expected;
    BruteForceEmbeddings(s, 0, t, 0, 0, h, gamma, &expected);
    std::vector<Embedding> actual = MatchEmbeddings(s, t, h, gamma);
    EXPECT_EQ(actual, std::vector<Embedding>(expected.begin(), expected.end()))
        << "gamma=" << gamma << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, EmbeddingPropertyTest,
                         ::testing::Values(0u, 1u, 3u));

}  // namespace
}  // namespace lash
