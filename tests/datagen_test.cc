#include <gtest/gtest.h>

#include "core/flist.h"
#include "datagen/product_gen.h"
#include "datagen/text_gen.h"

namespace lash {
namespace {

TextGenConfig SmallTextConfig(TextHierarchy kind) {
  TextGenConfig config;
  config.num_sentences = 500;
  config.num_lemmas = 300;
  config.hierarchy = kind;
  return config;
}

TEST(TextGenTest, BasicShape) {
  GeneratedText data = GenerateText(SmallTextConfig(TextHierarchy::kCLP));
  EXPECT_EQ(data.database.size(), 500u);
  DatasetStats stats = ComputeStats(data.database);
  EXPECT_GT(stats.avg_length, 10.0);
  EXPECT_LT(stats.avg_length, 40.0);
  EXPECT_GT(stats.unique_items, 100u);
}

TEST(TextGenTest, HierarchyLevels) {
  EXPECT_EQ(GenerateText(SmallTextConfig(TextHierarchy::kL)).hierarchy.NumLevels(), 2);
  EXPECT_EQ(GenerateText(SmallTextConfig(TextHierarchy::kP)).hierarchy.NumLevels(), 2);
  EXPECT_EQ(GenerateText(SmallTextConfig(TextHierarchy::kLP)).hierarchy.NumLevels(), 3);
  EXPECT_EQ(GenerateText(SmallTextConfig(TextHierarchy::kCLP)).hierarchy.NumLevels(), 4);
}

TEST(TextGenTest, PHasFewRootsWithHugeFanout_LHasManyRoots) {
  // The structural contrast driving Fig. 5(f) (Table 2): NYT-P has 22 roots
  // and fan-out in the hundreds of thousands; NYT-L has millions of roots
  // with fan-out ~2.7.
  GeneratedText p = GenerateText(SmallTextConfig(TextHierarchy::kP));
  GeneratedText l = GenerateText(SmallTextConfig(TextHierarchy::kL));
  EXPECT_LE(p.hierarchy.NumRoots(), 22u);
  EXPECT_GT(l.hierarchy.NumRoots(), 100u);
  EXPECT_GT(p.hierarchy.AvgFanOut(), l.hierarchy.AvgFanOut() * 5);
}

TEST(TextGenTest, SentencesIdenticalAcrossHierarchyVariants) {
  // Fig. 5(f) compares hierarchies on the same data: token *names* must
  // match position-for-position across variants.
  GeneratedText clp = GenerateText(SmallTextConfig(TextHierarchy::kCLP));
  GeneratedText p = GenerateText(SmallTextConfig(TextHierarchy::kP));
  ASSERT_EQ(clp.database.size(), p.database.size());
  for (size_t i = 0; i < clp.database.size(); ++i) {
    ASSERT_EQ(clp.database[i].size(), p.database[i].size()) << "sentence " << i;
    for (size_t j = 0; j < clp.database[i].size(); ++j) {
      EXPECT_EQ(clp.vocabulary.Name(clp.database[i][j]),
                p.vocabulary.Name(p.database[i][j]));
    }
  }
}

TEST(TextGenTest, Deterministic) {
  GeneratedText a = GenerateText(SmallTextConfig(TextHierarchy::kCLP));
  GeneratedText b = GenerateText(SmallTextConfig(TextHierarchy::kCLP));
  EXPECT_EQ(a.database, b.database);
}

TEST(TextGenTest, ItemsOccurAtMultipleLevels) {
  // Some tokens coincide with their lemma (intermediate items in the input),
  // the key property the paper highlights for NYT (Sec. 6.1).
  GeneratedText data = GenerateText(SmallTextConfig(TextHierarchy::kCLP));
  size_t non_leaf_occurrences = 0;
  for (const Sequence& t : data.database) {
    for (ItemId w : t) {
      if (!data.hierarchy.IsLeaf(w)) ++non_leaf_occurrences;
    }
  }
  EXPECT_GT(non_leaf_occurrences, 0u);
}

TEST(TextGenTest, ZipfSkew) {
  GeneratedText data = GenerateText(SmallTextConfig(TextHierarchy::kP));
  std::vector<Frequency> freq =
      GeneralizedItemFrequencies(data.database, data.hierarchy);
  Frequency max_freq = *std::max_element(freq.begin(), freq.end());
  // The top item should dominate: it appears in a large share of sentences.
  EXPECT_GT(max_freq, data.database.size() / 4);
}

ProductGenConfig SmallProductConfig(int levels) {
  ProductGenConfig config;
  config.num_sessions = 800;
  config.num_products = 500;
  config.levels = levels;
  return config;
}

TEST(ProductGenTest, BasicShape) {
  GeneratedProducts data = GenerateProducts(SmallProductConfig(8));
  EXPECT_EQ(data.database.size(), 800u);
  DatasetStats stats = ComputeStats(data.database);
  EXPECT_GT(stats.avg_length, 2.0);
  EXPECT_LT(stats.avg_length, 10.0);
}

TEST(ProductGenTest, LevelsMatchConfig) {
  for (int levels : {2, 3, 4, 8}) {
    GeneratedProducts data = GenerateProducts(SmallProductConfig(levels));
    EXPECT_EQ(data.hierarchy.NumLevels(), levels)
        << ProductHierarchyName(levels);
  }
}

TEST(ProductGenTest, IntermediatesGrowWithDepth) {
  // Table 2: deeper AMZN hierarchies have more intermediate items.
  size_t prev = 0;
  for (int levels : {2, 3, 4, 8}) {
    GeneratedProducts data = GenerateProducts(SmallProductConfig(levels));
    size_t inter = data.hierarchy.NumIntermediate();
    EXPECT_GE(inter, prev) << "levels " << levels;
    prev = inter;
  }
}

TEST(ProductGenTest, SessionsIdenticalAcrossDepthVariants) {
  GeneratedProducts h2 = GenerateProducts(SmallProductConfig(2));
  GeneratedProducts h8 = GenerateProducts(SmallProductConfig(8));
  ASSERT_EQ(h2.database.size(), h8.database.size());
  for (size_t i = 0; i < h2.database.size(); ++i) {
    ASSERT_EQ(h2.database[i].size(), h8.database[i].size()) << "session " << i;
    for (size_t j = 0; j < h2.database[i].size(); ++j) {
      EXPECT_EQ(h2.vocabulary.Name(h2.database[i][j]),
                h8.vocabulary.Name(h8.database[i][j]));
    }
  }
}

TEST(ProductGenTest, RejectsBadConfig) {
  ProductGenConfig config = SmallProductConfig(1);
  EXPECT_THROW(GenerateProducts(config), std::invalid_argument);
}

TEST(ProductGenTest, ProductsAreLeaves) {
  GeneratedProducts data = GenerateProducts(SmallProductConfig(4));
  for (const Sequence& t : data.database) {
    for (ItemId w : t) {
      EXPECT_TRUE(data.hierarchy.IsLeaf(w));
      EXPECT_FALSE(data.hierarchy.IsRoot(w));
    }
  }
}

}  // namespace
}  // namespace lash
