#include "miner/enumerate.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lash {
namespace {

class EnumeratePaperTest : public ::testing::Test {
 protected:
  testing::PaperExample ex_;
};

TEST_F(EnumeratePaperTest, G3OfT4) {
  // Sec. 3.2: for T4 = b11 a e a, gamma=1, lambda=3, G3(T4) has 19 elements.
  SequenceSet out;
  EnumerateGeneralizedSubsequences(ex_.pre.database[3], ex_.pre.hierarchy,
                                   /*gamma=*/1, /*lambda=*/3, &out);
  EXPECT_EQ(out.size(), 19u);
  // Spot-check a few members listed in the paper.
  EXPECT_TRUE(out.contains(ex_.RankSeq({"b11", "a"})));
  EXPECT_TRUE(out.contains(ex_.RankSeq({"b11", "a", "e"})));
  EXPECT_TRUE(out.contains(ex_.RankSeq({"a", "e", "a"})));
  EXPECT_TRUE(out.contains(ex_.RankSeq({"B", "e", "a"})));
  EXPECT_TRUE(out.contains(ex_.RankSeq({"b1", "a", "a"})));
  EXPECT_TRUE(out.contains(ex_.RankSeq({"a", "a"})));
  // b11 e a would need a gap of 2 between e and... no: b11(1) e(3) gap 1,
  // e(3) a(4) gap 0 — it IS in G3. But "b11 a a" needs positions 1,2,4 ✓.
  EXPECT_TRUE(out.contains(ex_.RankSeq({"b11", "a", "a"})));
  // Not contained: any sequence with two e's or wrong order.
  EXPECT_FALSE(out.contains(ex_.RankSeq({"a", "b11"})));
  EXPECT_FALSE(out.contains(ex_.RankSeq({"e", "e"})));
}

TEST_F(EnumeratePaperTest, PivotSequencesOfT1) {
  // Eq. (3): G_{b1,2}(T1) = {ab1, b1a, b1b1, b1B, Bb1} for lambda=2.
  SequenceSet out;
  EnumeratePivotSequences(ex_.pre.database[0], ex_.pre.hierarchy, /*gamma=*/1,
                          /*lambda=*/2, ex_.Rank("b1"), &out);
  SequenceSet expected;
  expected.insert(ex_.RankSeq({"a", "b1"}));
  expected.insert(ex_.RankSeq({"b1", "a"}));
  expected.insert(ex_.RankSeq({"b1", "b1"}));
  expected.insert(ex_.RankSeq({"b1", "B"}));
  expected.insert(ex_.RankSeq({"B", "b1"}));
  EXPECT_EQ(out, expected);  // BB is excluded: its pivot is B, not b1.
}

TEST_F(EnumeratePaperTest, WEquivalencyExampleOfSection41) {
  // G_{B,2}(T2) = G_{B,2}(a b3 c c b1) = {aB} = G_{B,2}(aB) (Sec. 4.1).
  SequenceSet out_t2, out_alt, out_ab;
  const Hierarchy& h = ex_.pre.hierarchy;
  EnumeratePivotSequences(ex_.pre.database[1], h, 1, 2, ex_.Rank("B"), &out_t2);
  EnumeratePivotSequences(ex_.RankSeq({"a", "b3", "c", "c", "b1"}), h, 1, 2,
                          ex_.Rank("B"), &out_alt);
  EnumeratePivotSequences(ex_.RankSeq({"a", "B"}), h, 1, 2, ex_.Rank("B"),
                          &out_ab);
  SequenceSet expected;
  expected.insert(ex_.RankSeq({"a", "B"}));
  EXPECT_EQ(out_t2, expected);
  EXPECT_EQ(out_alt, expected);
  EXPECT_EQ(out_ab, expected);
}

TEST_F(EnumeratePaperTest, MineByEnumerationReproducesSection2) {
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap result =
      MineByEnumeration(ex_.pre.database, ex_.pre.hierarchy, params);
  EXPECT_EQ(testing::Sorted(result), testing::Sorted(ex_.ExpectedOutput()));
}

TEST(EnumerateTest, BlanksAreSkipped) {
  Hierarchy h = Hierarchy::Flat(3);
  SequenceSet out;
  EnumerateGeneralizedSubsequences({1, kBlank, 2}, h, 1, 3, &out);
  SequenceSet expected;
  expected.insert({1, 2});  // Blank occupies a position but matches nothing.
  EXPECT_EQ(out, expected);
  out.clear();
  EnumerateGeneralizedSubsequences({1, kBlank, 2}, h, 0, 3, &out);
  EXPECT_TRUE(out.empty());
}

TEST(EnumerateTest, LengthBoundsRespected) {
  Hierarchy h = Hierarchy::Flat(2);
  SequenceSet out;
  EnumerateGeneralizedSubsequences({1, 1, 1, 1}, h, 2, 3, &out);
  for (const Sequence& s : out) {
    EXPECT_GE(s.size(), 2u);
    EXPECT_LE(s.size(), 3u);
  }
}

TEST(EnumerateTest, WeightedPartitionCounts) {
  Hierarchy h = Hierarchy::Flat(2);
  Partition partition;
  partition.Add({2, 1}, 3);  // Pivot 2 then item 1, weight 3.
  partition.Add({2, kBlank, 1}, 2);
  GsmParams params{.sigma = 4, .gamma = 1, .lambda = 2};
  PatternMap result = MinePartitionByEnumeration(partition, h, params, 2);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at({2, 1}), 5u);
}

TEST(EnumerateTest, SigmaFiltersOutput) {
  Hierarchy h = Hierarchy::Flat(2);
  Database db = {{1, 2}, {1, 2}, {2, 1}};
  GsmParams params{.sigma = 2, .gamma = 0, .lambda = 2};
  PatternMap result = MineByEnumeration(db, h, params);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at({1, 2}), 2u);
}

}  // namespace
}  // namespace lash
