// Tests for serve/support_count.h: the worker-side exact recount behind the
// router's two-phase candidate/count protocol.
//
// The load-bearing property is the differential: for ANY (σ, γ, λ, flat)
// the support CountSupports reports for a mined pattern must equal the
// frequency mining reported — otherwise the router's phase-2 re-cut at σ
// would diverge from single-corpus mining and the exactness contract dies.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/lash_api.h"
#include "io/result_io.h"
#include "serve/mining_service.h"
#include "serve/support_count.h"
#include "serve/task_spec.h"
#include "test_util.h"

namespace lash {
namespace {

using serve::CountQuery;
using serve::CountSupports;
using serve::TaskSpec;

class SupportCountTest : public ::testing::Test {
 protected:
  SupportCountTest() : dataset_(Dataset::FromMemory(ex_.raw_db, ex_.vocab)) {}

  testing::PaperExample ex_;
  Dataset dataset_;
};

TEST_F(SupportCountTest, CountingMatchesMiningAcrossTheGrid) {
  // Every mined pattern, recounted, must report its mined frequency — over
  // a grid wide enough to cover γ-gapped matching, length cut-offs, both
  // hierarchy modes, and σ=1 (where every occurring pattern surfaces).
  // Some flat/tight-γ cells legitimately mine nothing; the grid as a whole
  // must not, or the differential proved nothing.
  size_t total_patterns = 0;
  for (const Frequency sigma : {Frequency{1}, Frequency{2}, Frequency{3}}) {
    for (const uint32_t gamma : {0u, 1u, 2u}) {
      for (const uint32_t lambda : {2u, 3u, 5u}) {
        for (const bool flat : {false, true}) {
          TaskSpec spec;
          spec.algorithm = Algorithm::kSequential;
          spec.params = {.sigma = sigma, .gamma = gamma, .lambda = lambda};
          spec.flat = flat;
          serve::MiningService service(dataset_);
          const serve::Response& response = service.Submit(spec).Get();
          const NamedPatternList mined =
              NamePatterns(dataset_, response.patterns(),
                           response.run().used_flat_hierarchy);
          total_patterns += mined.size();
          const CountQuery query{gamma, lambda,
                                 response.run().used_flat_hierarchy};
          const std::vector<Frequency> counted =
              CountSupports(dataset_, mined, query);
          ASSERT_EQ(counted.size(), mined.size());
          for (size_t i = 0; i < mined.size(); ++i) {
            EXPECT_EQ(counted[i], mined[i].frequency)
                << "pattern " << i << " at sigma=" << sigma
                << " gamma=" << gamma << " lambda=" << lambda
                << " flat=" << flat;
          }
        }
      }
    }
  }
  EXPECT_GT(total_patterns, 0u);
}

TEST_F(SupportCountTest, PaperExampleSpotChecks) {
  // Anchors beyond the self-referential differential: the paper's σ=2 γ=1
  // λ=3 answer is known, so counting its patterns is counting ground truth.
  const CountQuery query{/*gamma=*/1, /*lambda=*/3, /*flat=*/false};
  const NamedPatternList expected =
      NamePatterns(dataset_, ex_.ExpectedOutput(), /*flat=*/false);
  const std::vector<Frequency> counted =
      CountSupports(dataset_, expected, query);
  ASSERT_EQ(counted.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(counted[i], expected[i].frequency) << "pattern " << i;
  }
}

TEST_F(SupportCountTest, DegenerateCandidatesCountZero) {
  const CountQuery query{/*gamma=*/1, /*lambda=*/3, /*flat=*/false};
  const NamedPatternList candidates = {
      {{"no-such-item"}, 0},          // unknown vocabulary name
      {{"a", "no-such-item"}, 0},     // one unknown item poisons the whole
      {{}, 0},                        // empty pattern
      {{"a", "B", "a", "B"}, 0},      // length 4 > λ=3
      {{"a", "B"}, 0},                // a real one, as the control
  };
  const std::vector<Frequency> counted =
      CountSupports(dataset_, candidates, query);
  ASSERT_EQ(counted.size(), candidates.size());
  EXPECT_EQ(counted[0], 0u);
  EXPECT_EQ(counted[1], 0u);
  EXPECT_EQ(counted[2], 0u);
  EXPECT_EQ(counted[3], 0u);
  EXPECT_EQ(counted[4], 3u);  // {a, B} has support 3 in the paper corpus.
}

TEST_F(SupportCountTest, ReportedFrequencyOnCandidatesIsIgnored) {
  // Phase-1 candidates arrive carrying partial per-shard sums; counting
  // must answer from the data alone.
  const CountQuery query{/*gamma=*/1, /*lambda=*/3, /*flat=*/false};
  const NamedPatternList candidates = {{{"a", "B"}, 999}};
  const std::vector<Frequency> counted =
      CountSupports(dataset_, candidates, query);
  ASSERT_EQ(counted.size(), 1u);
  EXPECT_EQ(counted[0], 3u);
}

}  // namespace
}  // namespace lash
