// Tests for the one-file dataset snapshot (io/snapshot.h + Dataset::Save /
// Dataset::FromSnapshot): round-trip equality of every restored component in
// both load modes (copy and mmap), the v2 corruption matrix (truncation,
// flipped magic, future version, misaligned section, eager vs deferred
// checksums), v1-container compatibility through the current readers, and
// facade parity — FromSnapshot(Save(d)) must answer every algorithm exactly
// like the text-loaded dataset, in either load mode.

#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "api/lash_api.h"
#include "io/io_error.h"
#include "io/text_io.h"
#include "test_util.h"

namespace lash {
namespace {

/// Writes the paper-example corpus to text streams and loads it through the
/// facade, exercising the exact FromFiles interning order.
Dataset PaperDataset() {
  testing::PaperExample ex;
  std::stringstream seq, hier;
  WriteDatabase(seq, ex.raw_db, ex.vocab);
  WriteHierarchy(hier, ex.vocab);
  return Dataset::FromStreams(seq, hier);
}

std::string SnapshotBytes(const Dataset& dataset) {
  const std::string path = ::testing::TempDir() + "snapshot_test.lash";
  dataset.Save(path);
  std::ifstream file(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

Dataset FromBytes(const std::string& bytes,
                  Dataset::LoadMode mode = Dataset::LoadMode::kCopy) {
  const std::string path = ::testing::TempDir() + "snapshot_test_load.lash";
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.close();
  struct Cleanup {
    std::string path;
    // Unlinking a file a Dataset has mapped is fine: the mapping keeps the
    // inode alive until the Dataset dies.
    ~Cleanup() { std::remove(path.c_str()); }
  } cleanup{path};
  return Dataset::FromSnapshot(path, mode);
}

constexpr Dataset::LoadMode kBothModes[] = {Dataset::LoadMode::kCopy,
                                            Dataset::LoadMode::kMmap};

// ---- v2 container surgery helpers (see the layout in io/snapshot.h) ------

uint32_t LeU32At(const std::string& bytes, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos + i]))
         << (8 * i);
  }
  return v;
}

uint64_t LeU64At(const std::string& bytes, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[pos + i]))
         << (8 * i);
  }
  return v;
}

void StoreLeU64At(std::string* bytes, size_t pos, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

struct SectionInfo {
  uint32_t id = 0;
  uint32_t flags = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  size_t table_pos = 0;  ///< File offset of this section's table entry.
};

SectionInfo FindSection(const std::string& bytes, uint32_t id) {
  const uint32_t count = LeU32At(bytes, 9);
  for (uint32_t i = 0; i < count; ++i) {
    const size_t p = 13 + 32 * i;
    if (LeU32At(bytes, p) == id) {
      return {id, LeU32At(bytes, p + 4), LeU64At(bytes, p + 8),
              LeU64At(bytes, p + 16), p};
    }
  }
  ADD_FAILURE() << "section " << id << " not found in v2 table";
  return {};
}

constexpr uint32_t kVocabularySectionId = 1;
constexpr uint32_t kCorpusArenaSectionId = 7;

// ---- Round trips ---------------------------------------------------------

void ExpectRestoredEqualsOriginal(const Dataset& restored,
                                  const Dataset& original) {
  // Vocabulary: same ids, names, and parent edges.
  ASSERT_EQ(restored.NumItems(), original.NumItems());
  for (ItemId id = 1; id <= original.NumItems(); ++id) {
    EXPECT_EQ(restored.vocabulary().Name(id), original.vocabulary().Name(id));
    EXPECT_EQ(restored.vocabulary().Parent(id),
              original.vocabulary().Parent(id));
    EXPECT_EQ(restored.raw_hierarchy().Parent(id),
              original.raw_hierarchy().Parent(id));
  }

  // Preprocessing: corpus, f-list, order, and rank hierarchy are restored
  // exactly — no preprocessing ran (preprocess_ms is 0 by construction).
  EXPECT_EQ(restored.preprocessed().database, original.preprocessed().database);
  EXPECT_EQ(restored.preprocessed().freq, original.preprocessed().freq);
  EXPECT_EQ(restored.preprocessed().rank_of_raw,
            original.preprocessed().rank_of_raw);
  EXPECT_EQ(restored.preprocessed().raw_of_rank,
            original.preprocessed().raw_of_rank);
  for (ItemId r = 1; r <= original.NumItems(); ++r) {
    EXPECT_EQ(restored.preprocessed().hierarchy.Parent(r),
              original.preprocessed().hierarchy.Parent(r));
  }
  EXPECT_EQ(restored.load_times().preprocess_ms, 0.0);

  // The raw corpus is reconstructed through the rank bijection (lazily for
  // a mapped load — this call is what triggers it).
  EXPECT_EQ(restored.raw_database(), original.raw_database());
  EXPECT_EQ(restored.stats(), original.stats());
}

TEST(SnapshotTest, RoundTripRestoresEveryComponent) {
  Dataset original = PaperDataset();
  Dataset restored = FromBytes(SnapshotBytes(original));
  EXPECT_FALSE(restored.mmap_backed());
  ExpectRestoredEqualsOriginal(restored, original);
  // A copying load verified everything eagerly; VerifyCorpus is a no-op.
  EXPECT_NO_THROW(restored.VerifyCorpus());

  // Snapshots of one dataset are deterministic.
  EXPECT_EQ(SnapshotBytes(original), SnapshotBytes(restored));
}

TEST(SnapshotTest, MmapRoundTripRestoresEveryComponent) {
  Dataset original = PaperDataset();
  Dataset restored =
      FromBytes(SnapshotBytes(original), Dataset::LoadMode::kMmap);
  ExpectRestoredEqualsOriginal(restored, original);
  // The deferred corpus checksums + structural checks must pass on demand.
  EXPECT_NO_THROW(restored.VerifyCorpus());
  // Re-saving the mapped dataset writes identical bytes: the writer reads
  // the same (borrowed) arrays the copy loader materialized.
  EXPECT_EQ(SnapshotBytes(original), SnapshotBytes(restored));
}

TEST(SnapshotTest, SectionPayloadsAre64ByteAligned) {
  const std::string bytes = SnapshotBytes(PaperDataset());
  ASSERT_GE(bytes.size(), size_t{13});
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), kSnapshotVersion);
  const uint32_t count = LeU32At(bytes, 9);
  ASSERT_EQ(count, 7u);  // The seven v2 sections.
  for (uint32_t i = 0; i < count; ++i) {
    const size_t p = 13 + 32 * i;
    EXPECT_EQ(LeU64At(bytes, p + 8) % 64, 0u)
        << "section " << LeU32At(bytes, p) << " payload is misaligned";
  }
  // The writer marks exactly the two corpus sections lazily verifiable.
  EXPECT_EQ(FindSection(bytes, kCorpusArenaSectionId).flags &
                kSectionFlagLazyVerify,
            kSectionFlagLazyVerify);
  EXPECT_EQ(FindSection(bytes, kVocabularySectionId).flags, 0u);
}

TEST(SnapshotTest, SaveLoadMineSmoke) {
  // The CI smoke in one gtest: save -> load -> mine must reproduce the
  // paper's Fig. 2 output from the restored dataset. Compared in name
  // space: the text round-trip re-interns raw ids, so rank ids can differ
  // from the in-memory PaperExample even though the patterns are the same.
  for (Dataset::LoadMode mode : kBothModes) {
    Dataset restored = FromBytes(SnapshotBytes(PaperDataset()), mode);
    PatternMap mined = MiningTask(restored)
                           .WithSigma(2)
                           .WithGamma(1)
                           .WithLambda(3)
                           .Mine();
    std::map<std::string, Frequency> named;
    for (const auto& [seq, freq] : mined) {
      std::string names;
      for (ItemId rank : seq) {
        if (!names.empty()) names += ' ';
        names += restored.NameOfRank(rank);
      }
      named[names] = freq;
    }
    const std::map<std::string, Frequency> expected = {
        {"a a", 2}, {"a b1", 2}, {"b1 a", 2},  {"a B", 3}, {"B a", 2},
        {"a B c", 2}, {"B c", 2}, {"a c", 2}, {"b1 D", 2}, {"B D", 2}};
    EXPECT_EQ(named, expected);
  }
}

TEST(SnapshotTest, FacadeParityAcrossAllSixAlgorithms) {
  Dataset text_loaded = PaperDataset();
  const std::string bytes = SnapshotBytes(text_loaded);
  Dataset restored = FromBytes(bytes);
  Dataset mapped = FromBytes(bytes, Dataset::LoadMode::kMmap);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  JobConfig config;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 3;
  config.num_threads = 2;
  for (Algorithm algorithm :
       {Algorithm::kSequential, Algorithm::kLash, Algorithm::kMgFsm,
        Algorithm::kGsp, Algorithm::kNaive, Algorithm::kSemiNaive}) {
    auto mine = [&](const Dataset& dataset) {
      return MiningTask(dataset)
          .WithAlgorithm(algorithm)
          .WithParams(params)
          .WithJobConfig(config)
          .Mine();
    };
    EXPECT_EQ(testing::Sorted(mine(restored)), testing::Sorted(mine(text_loaded)))
        << AlgorithmName(algorithm);
    EXPECT_EQ(testing::Sorted(mine(mapped)), testing::Sorted(mine(text_loaded)))
        << AlgorithmName(algorithm) << " (mmap)";
  }
}

// ---- Corruption matrix ---------------------------------------------------

TEST(SnapshotTest, RejectsTruncation) {
  const std::string bytes = SnapshotBytes(PaperDataset());
  for (Dataset::LoadMode mode : kBothModes) {
    // Cuts inside the header/table and inside the payloads.
    for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{12}}) {
      try {
        FromBytes(bytes.substr(0, cut), mode);
        FAIL() << "expected IoError, cut at " << cut;
      } catch (const IoError& e) {
        EXPECT_TRUE(e.kind() == IoErrorKind::kTruncated ||
                    e.kind() == IoErrorKind::kMalformed ||
                    e.kind() == IoErrorKind::kChecksumMismatch)
            << "cut at " << cut << ": " << e.what();
      }
    }
    // Cutting inside the magic itself cannot be identified as a snapshot.
    try {
      FromBytes(bytes.substr(0, 4), mode);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kBadMagic);
    }
  }
}

TEST(SnapshotTest, RejectsFlippedMagic) {
  std::string bytes = SnapshotBytes(PaperDataset());
  bytes[0] ^= 0x01;
  for (Dataset::LoadMode mode : kBothModes) {
    try {
      FromBytes(bytes, mode);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kBadMagic);
      EXPECT_EQ(e.byte_offset(), 0u);
    }
  }
}

TEST(SnapshotTest, RejectsFutureVersion) {
  std::string bytes = SnapshotBytes(PaperDataset());
  // The version byte follows the 8-byte magic (it is also a valid varint,
  // so a v1 reader rejects v2+ containers the same way).
  ASSERT_EQ(static_cast<unsigned char>(bytes[8]), kSnapshotVersion);
  bytes[8] = 0x7f;  // Version 127: far future.
  for (Dataset::LoadMode mode : kBothModes) {
    try {
      FromBytes(bytes, mode);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kBadVersion);
    }
  }
}

TEST(SnapshotTest, RejectsMisalignedSectionStart) {
  // Nudging a table entry's payload offset off the 64-byte grid must be
  // caught *before* any payload is read, in both modes.
  std::string bytes = SnapshotBytes(PaperDataset());
  const SectionInfo vocab = FindSection(bytes, kVocabularySectionId);
  StoreLeU64At(&bytes, vocab.table_pos + 8, vocab.offset + 4);
  for (Dataset::LoadMode mode : kBothModes) {
    try {
      FromBytes(bytes, mode);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kMalformed) << e.what();
    }
  }
}

TEST(SnapshotTest, RejectsCorruptPayloadByChecksum) {
  const std::string pristine = SnapshotBytes(PaperDataset());
  // Flip one byte in the last quarter of the file (payload area; the
  // section table with its checksums sits at the front). The copying load
  // verifies every section eagerly.
  for (size_t offset : {pristine.size() - 3, pristine.size() * 3 / 4}) {
    std::string bytes = pristine;
    bytes[offset] ^= 0x40;
    try {
      FromBytes(bytes);
      FAIL() << "expected IoError, flip at " << offset;
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kChecksumMismatch)
          << "flip at " << offset << ": " << e.what();
    }
  }
}

TEST(SnapshotTest, SmallSectionChecksumIsAlwaysEager) {
  // A flipped byte inside the vocabulary payload fails *both* load modes
  // at load time: only the corpus sections are lazily verifiable.
  std::string bytes = SnapshotBytes(PaperDataset());
  const SectionInfo vocab = FindSection(bytes, kVocabularySectionId);
  ASSERT_GT(vocab.length, 8u);
  bytes[vocab.offset + vocab.length - 1] ^= 0x40;
  for (Dataset::LoadMode mode : kBothModes) {
    try {
      FromBytes(bytes, mode);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kChecksumMismatch) << e.what();
    }
  }
}

TEST(SnapshotTest, CorpusChecksumIsDeferredUnderMmap) {
  // A flipped byte inside the corpus arena: the copying load rejects it at
  // load; the mapped load succeeds (that laziness is the point) and
  // VerifyCorpus catches it on demand.
  std::string bytes = SnapshotBytes(PaperDataset());
  const SectionInfo arena = FindSection(bytes, kCorpusArenaSectionId);
  ASSERT_GT(arena.length, 12u);
  bytes[arena.offset + arena.length - 1] ^= 0x40;

  try {
    FromBytes(bytes);
    FAIL() << "expected IoError from the copying load";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kChecksumMismatch) << e.what();
  }

  Dataset mapped = FromBytes(bytes, Dataset::LoadMode::kMmap);
  if (mapped.mmap_backed()) {
    try {
      mapped.VerifyCorpus();
      FAIL() << "expected IoError from VerifyCorpus";
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kChecksumMismatch) << e.what();
    }
  }
}

TEST(SnapshotTest, RejectsMissingFile) {
  EXPECT_THROW(Dataset::FromSnapshot("/nonexistent/path/snapshot.lash"),
               ApiError);
  EXPECT_THROW(Dataset::FromSnapshot("/nonexistent/path/snapshot.lash",
                                     Dataset::LoadMode::kMmap),
               ApiError);
}

// ---- io-level round trips ------------------------------------------------

void ExpectSnapshotsEqual(const DatasetSnapshot& decoded,
                          const DatasetSnapshot& snap) {
  const size_t n = snap.vocabulary.NumItems();
  ASSERT_EQ(decoded.vocabulary.NumItems(), n);
  for (ItemId id = 1; id <= n; ++id) {
    EXPECT_EQ(decoded.vocabulary.Name(id), snap.vocabulary.Name(id));
    EXPECT_EQ(decoded.vocabulary.Parent(id), snap.vocabulary.Parent(id));
  }
  EXPECT_EQ(decoded.ranked_corpus, snap.ranked_corpus);
  EXPECT_EQ(decoded.freq, snap.freq);
  EXPECT_EQ(decoded.rank_of_raw, snap.rank_of_raw);
  EXPECT_EQ(decoded.stats, snap.stats);
}

DatasetSnapshot PaperSnapshot(const testing::PaperExample& ex) {
  DatasetSnapshot snap;
  snap.vocabulary = ex.vocab;
  snap.ranked_corpus = ex.pre.database;
  snap.freq = ex.pre.freq;
  snap.rank_of_raw = ex.pre.rank_of_raw;
  snap.stats = ComputeStats(ex.pre.database);
  return snap;
}

TEST(SnapshotTest, LowLevelRoundTrip) {
  // io-level round trip without the facade: DatasetSnapshot in, equal
  // DatasetSnapshot out — through the streaming reader and the mapped one.
  testing::PaperExample ex;
  DatasetSnapshot snap = PaperSnapshot(ex);

  std::stringstream buffer;
  WriteDatasetSnapshot(buffer, snap);
  DatasetSnapshot decoded = ReadDatasetSnapshot(buffer);
  ExpectSnapshotsEqual(decoded, snap);
  EXPECT_TRUE(decoded.deferred.empty());  // Copy loads defer nothing.

  const std::string bytes = buffer.str();
  DatasetSnapshot mapped = ReadDatasetSnapshotMapped(bytes.data(),
                                                     bytes.size());
  ExpectSnapshotsEqual(mapped, snap);
  // Whatever the mapped reader deferred must verify against the bytes.
  for (const SnapshotDeferredCheck& check : mapped.deferred) {
    EXPECT_EQ(FnvHashBytes(check.data, check.length), check.checksum)
        << check.what;
  }
}

TEST(SnapshotTest, V1ContainerLoadsThroughCurrentReaders) {
  // Compatibility: a legacy v1 container (varint sections) must decode
  // through both current readers and through the facade in both modes.
  testing::PaperExample ex;
  DatasetSnapshot snap = PaperSnapshot(ex);

  std::stringstream buffer;
  WriteDatasetSnapshotV1(buffer, snap.vocabulary, snap.ranked_corpus,
                         snap.freq, snap.rank_of_raw, snap.stats);
  const std::string bytes = buffer.str();
  ASSERT_EQ(static_cast<unsigned char>(bytes[8]), 1u);  // v1 version byte.

  DatasetSnapshot decoded = ReadDatasetSnapshot(buffer);
  ExpectSnapshotsEqual(decoded, snap);

  DatasetSnapshot mapped = ReadDatasetSnapshotMapped(bytes.data(),
                                                     bytes.size());
  ExpectSnapshotsEqual(mapped, snap);
  EXPECT_TRUE(mapped.deferred.empty());  // v1 always copies, defers nothing.

  for (Dataset::LoadMode mode : kBothModes) {
    Dataset ds = FromBytes(bytes, mode);
    EXPECT_FALSE(ds.mmap_backed());  // v1 degrades to a copy either way.
    EXPECT_EQ(ds.NumItems(), snap.vocabulary.NumItems());
    EXPECT_EQ(ds.preprocessed().database, snap.ranked_corpus);
    EXPECT_EQ(ds.preprocessed().freq, snap.freq);
    EXPECT_NO_THROW(ds.VerifyCorpus());
  }
}

}  // namespace
}  // namespace lash
