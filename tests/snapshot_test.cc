// Tests for the one-file dataset snapshot (io/snapshot.h + Dataset::Save /
// Dataset::FromSnapshot): round-trip equality of every restored component,
// the corruption matrix (truncation, flipped magic, future version, flipped
// payload byte -> checksum), and facade parity — FromSnapshot(Save(d)) must
// answer every algorithm exactly like the text-loaded dataset.

#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "api/lash_api.h"
#include "io/io_error.h"
#include "io/text_io.h"
#include "test_util.h"

namespace lash {
namespace {

/// Writes the paper-example corpus to text streams and loads it through the
/// facade, exercising the exact FromFiles interning order.
Dataset PaperDataset() {
  testing::PaperExample ex;
  std::stringstream seq, hier;
  WriteDatabase(seq, ex.raw_db, ex.vocab);
  WriteHierarchy(hier, ex.vocab);
  return Dataset::FromStreams(seq, hier);
}

std::string SnapshotBytes(const Dataset& dataset) {
  const std::string path = ::testing::TempDir() + "snapshot_test.lash";
  dataset.Save(path);
  std::ifstream file(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

Dataset FromBytes(const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "snapshot_test_load.lash";
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.close();
  struct Cleanup {
    std::string path;
    ~Cleanup() { std::remove(path.c_str()); }
  } cleanup{path};
  return Dataset::FromSnapshot(path);
}

TEST(SnapshotTest, RoundTripRestoresEveryComponent) {
  Dataset original = PaperDataset();
  Dataset restored = FromBytes(SnapshotBytes(original));

  // Vocabulary: same ids, names, and parent edges.
  ASSERT_EQ(restored.NumItems(), original.NumItems());
  for (ItemId id = 1; id <= original.NumItems(); ++id) {
    EXPECT_EQ(restored.vocabulary().Name(id), original.vocabulary().Name(id));
    EXPECT_EQ(restored.vocabulary().Parent(id),
              original.vocabulary().Parent(id));
    EXPECT_EQ(restored.raw_hierarchy().Parent(id),
              original.raw_hierarchy().Parent(id));
  }

  // Preprocessing: corpus, f-list, order, and rank hierarchy are restored
  // exactly — no preprocessing ran (preprocess_ms is 0 by construction).
  EXPECT_EQ(restored.preprocessed().database, original.preprocessed().database);
  EXPECT_EQ(restored.preprocessed().freq, original.preprocessed().freq);
  EXPECT_EQ(restored.preprocessed().rank_of_raw,
            original.preprocessed().rank_of_raw);
  EXPECT_EQ(restored.preprocessed().raw_of_rank,
            original.preprocessed().raw_of_rank);
  for (ItemId r = 1; r <= original.NumItems(); ++r) {
    EXPECT_EQ(restored.preprocessed().hierarchy.Parent(r),
              original.preprocessed().hierarchy.Parent(r));
  }
  EXPECT_EQ(restored.load_times().preprocess_ms, 0.0);

  // The raw corpus is reconstructed through the rank bijection.
  EXPECT_EQ(restored.raw_database(), original.raw_database());
  EXPECT_EQ(restored.stats(), original.stats());

  // Snapshots of one dataset are deterministic.
  EXPECT_EQ(SnapshotBytes(original), SnapshotBytes(restored));
}

TEST(SnapshotTest, SaveLoadMineSmoke) {
  // The CI smoke in one gtest: save -> load -> mine must reproduce the
  // paper's Fig. 2 output from the restored dataset. Compared in name
  // space: the text round-trip re-interns raw ids, so rank ids can differ
  // from the in-memory PaperExample even though the patterns are the same.
  Dataset restored = FromBytes(SnapshotBytes(PaperDataset()));
  PatternMap mined = MiningTask(restored)
                         .WithSigma(2)
                         .WithGamma(1)
                         .WithLambda(3)
                         .Mine();
  std::map<std::string, Frequency> named;
  for (const auto& [seq, freq] : mined) {
    std::string names;
    for (ItemId rank : seq) {
      if (!names.empty()) names += ' ';
      names += restored.NameOfRank(rank);
    }
    named[names] = freq;
  }
  const std::map<std::string, Frequency> expected = {
      {"a a", 2}, {"a b1", 2}, {"b1 a", 2},  {"a B", 3}, {"B a", 2},
      {"a B c", 2}, {"B c", 2}, {"a c", 2}, {"b1 D", 2}, {"B D", 2}};
  EXPECT_EQ(named, expected);
}

TEST(SnapshotTest, FacadeParityAcrossAllSixAlgorithms) {
  Dataset text_loaded = PaperDataset();
  Dataset restored = FromBytes(SnapshotBytes(text_loaded));
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  JobConfig config;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 3;
  config.num_threads = 2;
  for (Algorithm algorithm :
       {Algorithm::kSequential, Algorithm::kLash, Algorithm::kMgFsm,
        Algorithm::kGsp, Algorithm::kNaive, Algorithm::kSemiNaive}) {
    auto mine = [&](const Dataset& dataset) {
      return MiningTask(dataset)
          .WithAlgorithm(algorithm)
          .WithParams(params)
          .WithJobConfig(config)
          .Mine();
    };
    EXPECT_EQ(testing::Sorted(mine(restored)), testing::Sorted(mine(text_loaded)))
        << AlgorithmName(algorithm);
  }
}

// ---- Corruption matrix ---------------------------------------------------

TEST(SnapshotTest, RejectsTruncation) {
  const std::string bytes = SnapshotBytes(PaperDataset());
  // Cuts inside the header/table and inside the payloads.
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{12}}) {
    try {
      FromBytes(bytes.substr(0, cut));
      FAIL() << "expected IoError, cut at " << cut;
    } catch (const IoError& e) {
      EXPECT_TRUE(e.kind() == IoErrorKind::kTruncated ||
                  e.kind() == IoErrorKind::kMalformed ||
                  e.kind() == IoErrorKind::kChecksumMismatch)
          << "cut at " << cut << ": " << e.what();
    }
  }
  // Cutting inside the magic itself cannot be identified as a snapshot.
  try {
    FromBytes(bytes.substr(0, 4));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kBadMagic);
  }
}

TEST(SnapshotTest, RejectsFlippedMagic) {
  std::string bytes = SnapshotBytes(PaperDataset());
  bytes[0] ^= 0x01;
  try {
    FromBytes(bytes);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kBadMagic);
    EXPECT_EQ(e.byte_offset(), 0u);
  }
}

TEST(SnapshotTest, RejectsFutureVersion) {
  std::string bytes = SnapshotBytes(PaperDataset());
  // The version varint follows the 8-byte magic; kSnapshotVersion is small,
  // so it is a single byte.
  ASSERT_EQ(static_cast<unsigned char>(bytes[8]), kSnapshotVersion);
  bytes[8] = 0x7f;  // Version 127: far future.
  try {
    FromBytes(bytes);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kBadVersion);
  }
}

TEST(SnapshotTest, RejectsCorruptPayloadByChecksum) {
  const std::string pristine = SnapshotBytes(PaperDataset());
  // Flip one byte in the last quarter of the file (payload area; the
  // section table with its checksums sits at the front).
  for (size_t offset : {pristine.size() - 3, pristine.size() * 3 / 4}) {
    std::string bytes = pristine;
    bytes[offset] ^= 0x40;
    try {
      FromBytes(bytes);
      FAIL() << "expected IoError, flip at " << offset;
    } catch (const IoError& e) {
      EXPECT_EQ(e.kind(), IoErrorKind::kChecksumMismatch)
          << "flip at " << offset << ": " << e.what();
    }
  }
}

TEST(SnapshotTest, RejectsMissingFile) {
  EXPECT_THROW(Dataset::FromSnapshot("/nonexistent/path/snapshot.lash"),
               ApiError);
}

TEST(SnapshotTest, LowLevelRoundTrip) {
  // io-level round trip without the facade: DatasetSnapshot in, equal
  // DatasetSnapshot out.
  testing::PaperExample ex;
  DatasetSnapshot snap;
  const size_t n = ex.vocab.NumItems();
  snap.names.resize(1);
  for (size_t id = 1; id <= n; ++id) {
    snap.names.push_back(ex.vocab.Name(static_cast<ItemId>(id)));
  }
  snap.raw_parent.assign(n + 1, kInvalidItem);
  for (size_t id = 1; id <= n; ++id) {
    snap.raw_parent[id] = ex.vocab.Parent(static_cast<ItemId>(id));
  }
  snap.ranked_corpus = ex.pre.database;
  snap.freq = ex.pre.freq;
  snap.rank_of_raw = ex.pre.rank_of_raw;
  snap.stats = ComputeStats(ex.pre.database);

  std::stringstream buffer;
  WriteDatasetSnapshot(buffer, snap);
  DatasetSnapshot decoded = ReadDatasetSnapshot(buffer);
  EXPECT_EQ(decoded.names, snap.names);
  EXPECT_EQ(decoded.raw_parent, snap.raw_parent);
  EXPECT_EQ(decoded.ranked_corpus, snap.ranked_corpus);
  EXPECT_EQ(decoded.freq, snap.freq);
  EXPECT_EQ(decoded.rank_of_raw, snap.rank_of_raw);
  EXPECT_EQ(decoded.stats, snap.stats);
}

}  // namespace
}  // namespace lash
