#include <gtest/gtest.h>

#include "algo/lash.h"
#include "algo/mgfsm.h"
#include "algo/naive_gsm.h"
#include "algo/seminaive_gsm.h"
#include "miner/enumerate.h"
#include "test_util.h"

namespace lash {
namespace {

JobConfig TestConfig() {
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  return config;
}

class AlgoPaperTest : public ::testing::Test {
 protected:
  testing::PaperExample ex_;
  GsmParams params_{.sigma = 2, .gamma = 1, .lambda = 3};
};

TEST_F(AlgoPaperTest, NaiveReproducesSection2) {
  AlgoResult result = RunNaiveGsm(ex_.pre, params_, TestConfig());
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(testing::Sorted(result.patterns),
            testing::Sorted(ex_.ExpectedOutput()));
}

TEST_F(AlgoPaperTest, SemiNaiveReproducesSection2) {
  AlgoResult result = RunSemiNaiveGsm(ex_.pre, params_, TestConfig());
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(testing::Sorted(result.patterns),
            testing::Sorted(ex_.ExpectedOutput()));
}

TEST_F(AlgoPaperTest, LashReproducesSection2WithEveryMiner) {
  for (MinerKind kind : {MinerKind::kNaive, MinerKind::kBfs, MinerKind::kDfs,
                         MinerKind::kPsm, MinerKind::kPsmIndex}) {
    LashOptions options;
    options.miner = kind;
    AlgoResult result = RunLash(ex_.pre, params_, TestConfig(), options);
    EXPECT_EQ(testing::Sorted(result.patterns),
              testing::Sorted(ex_.ExpectedOutput()))
        << "miner kind " << static_cast<int>(kind);
  }
}

TEST_F(AlgoPaperTest, SemiNaiveEmitsFewerRecordsThanNaive) {
  AlgoResult naive = RunNaiveGsm(ex_.pre, params_, TestConfig());
  AlgoResult semi = RunSemiNaiveGsm(ex_.pre, params_, TestConfig());
  EXPECT_LT(semi.job.counters.map_output_records,
            naive.job.counters.map_output_records);
  EXPECT_LT(semi.job.counters.map_output_bytes,
            naive.job.counters.map_output_bytes);
}

TEST_F(AlgoPaperTest, LashTransfersFewerBytesThanSemiNaive) {
  AlgoResult semi = RunSemiNaiveGsm(ex_.pre, params_, TestConfig());
  AlgoResult lash = RunLash(ex_.pre, params_, TestConfig());
  EXPECT_LE(lash.job.counters.map_output_bytes,
            semi.job.counters.map_output_bytes);
}

TEST_F(AlgoPaperTest, PreprocessWithJobMatchesSequential) {
  JobResult job;
  PreprocessResult pre =
      PreprocessWithJob(ex_.raw_db, ex_.raw_hierarchy, TestConfig(), &job);
  EXPECT_EQ(pre.freq, ex_.pre.freq);
  EXPECT_EQ(pre.rank_of_raw, ex_.pre.rank_of_raw);
  EXPECT_EQ(pre.database, ex_.pre.database);
  EXPECT_GT(job.counters.map_output_records, 0u);
}

// Randomized end-to-end agreement across all four distributed algorithms.
class AlgoAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, Frequency>> {
};

TEST_P(AlgoAgreementTest, AllAlgorithmsAgreeOnRandomData) {
  const auto [gamma, lambda, sigma] = GetParam();
  GsmParams params{.sigma = sigma, .gamma = gamma, .lambda = lambda};
  Rng rng(31337 + gamma * 13 + lambda * 7 + static_cast<uint32_t>(sigma));
  for (int trial = 0; trial < 8; ++trial) {
    // Random raw hierarchy (not rank-monotone in general) + database.
    const size_t num_items = 4 + rng.Uniform(8);
    std::vector<ItemId> parent(num_items + 1, kInvalidItem);
    for (ItemId w = 1; w <= num_items; ++w) {
      // Random forest: parent is any other item with smaller index to keep
      // it acyclic, then shuffled into raw space by the vocabulary order.
      if (w > 1 && rng.Bernoulli(0.6)) {
        parent[w] = static_cast<ItemId>(1 + rng.Uniform(w - 1));
      }
    }
    Hierarchy raw_h{std::vector<ItemId>(parent)};
    Database raw_db = testing::RandomDatabase(15, 8, num_items, &rng);
    PreprocessResult pre = Preprocess(raw_db, raw_h);

    PatternMap reference =
        MineByEnumeration(pre.database, pre.hierarchy, params);
    AlgoResult naive = RunNaiveGsm(pre, params, TestConfig());
    AlgoResult semi = RunSemiNaiveGsm(pre, params, TestConfig());
    ASSERT_EQ(testing::Sorted(naive.patterns), testing::Sorted(reference))
        << "trial " << trial;
    ASSERT_EQ(testing::Sorted(semi.patterns), testing::Sorted(reference))
        << "trial " << trial;
    for (MinerKind kind :
         {MinerKind::kBfs, MinerKind::kDfs, MinerKind::kPsm,
          MinerKind::kPsmIndex}) {
      LashOptions options;
      options.miner = kind;
      AlgoResult lash = RunLash(pre, params, TestConfig(), options);
      ASSERT_EQ(testing::Sorted(lash.patterns), testing::Sorted(reference))
          << "trial " << trial << " miner " << static_cast<int>(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlgoAgreementTest,
    ::testing::Combine(::testing::Values(0u, 1u, 2u),
                       ::testing::Values(2u, 4u),
                       ::testing::Values<Frequency>(2, 3)));

TEST(RewriteAblationTest, AllRewriteLevelsAgree) {
  // Every rewrite level is w-equivalent (Sec. 4); only partition sizes and
  // bytes differ. Run the ablation grid end-to-end on random data.
  Rng rng(8080);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  for (int trial = 0; trial < 5; ++trial) {
    const size_t num_items = 5 + rng.Uniform(6);
    Hierarchy h = testing::RandomRankHierarchy(num_items, 0.4, &rng);
    Database raw_db = testing::RandomDatabase(15, 8, num_items, &rng);
    PreprocessResult pre = Preprocess(raw_db, h);
    PatternMap reference =
        MineByEnumeration(pre.database, pre.hierarchy, params);
    for (RewriteLevel level : {RewriteLevel::kNone,
                               RewriteLevel::kGeneralizeOnly,
                               RewriteLevel::kFull}) {
      for (bool combiner : {true, false}) {
        LashOptions options;
        options.rewrite = level;
        options.use_combiner = combiner;
        AlgoResult result = RunLash(pre, params, TestConfig(), options);
        ASSERT_EQ(testing::Sorted(result.patterns), testing::Sorted(reference))
            << "trial " << trial << " level " << static_cast<int>(level)
            << " combiner " << combiner;
      }
    }
  }
}

TEST(RewriteAblationTest, FullRewritesTransferFewestBytes) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  auto bytes_for = [&](RewriteLevel level) {
    LashOptions options;
    options.rewrite = level;
    return RunLash(ex.pre, params, TestConfig(), options)
        .job.counters.map_output_bytes;
  };
  uint64_t none = bytes_for(RewriteLevel::kNone);
  uint64_t generalize = bytes_for(RewriteLevel::kGeneralizeOnly);
  uint64_t full = bytes_for(RewriteLevel::kFull);
  // The full pipeline dominates both: unreachability reduction, isolated
  // pivot removal, blank trimming and aggregation only ever shrink the
  // partition. (Generalize-only vs none is not ordered at toy scale — an
  // isolated blank costs 2 bytes where a frequent 1-byte item stood; the
  // realistic-scale ordering is exercised by bench_ablation.)
  EXPECT_LT(full, none);
  EXPECT_LE(full, generalize);
}

TEST(PartitionShapeTest, LashReportsPartitionShape) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  AlgoResult result = RunLash(ex.pre, params, TestConfig());
  // Five frequent items -> five partitions (Fig. 2), all non-empty.
  EXPECT_EQ(result.partition_shape.partitions, 5u);
  EXPECT_GT(result.partition_shape.total_sequences, 0u);
  EXPECT_GE(result.partition_shape.max_partition, 1u);
  EXPECT_GE(result.partition_shape.SkewFactor(), 1.0);
}

TEST(PartitionShapeTest, RewritesReduceSkew) {
  // With P_w(T) = T every partition of a frequent item holds (almost) the
  // whole database; the rewrites shrink partitions of infrequent pivots
  // much more than the top pivot's, but aggregation compresses the top
  // pivot's partition the most. Assert total partition volume shrinks.
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  LashOptions none, full;
  none.rewrite = RewriteLevel::kNone;
  full.rewrite = RewriteLevel::kFull;
  AlgoResult r_none = RunLash(ex.pre, params, TestConfig(), none);
  AlgoResult r_full = RunLash(ex.pre, params, TestConfig(), full);
  EXPECT_LT(r_full.partition_shape.total_sequences,
            r_none.partition_shape.total_sequences);
}

TEST(MgFsmTest, RequiresFlatHierarchy) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  EXPECT_THROW(RunMgFsm(ex.pre, params, TestConfig()), std::invalid_argument);
}

TEST(MgFsmTest, AgreesWithLashOnFlatData) {
  Rng rng(555);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  for (int trial = 0; trial < 5; ++trial) {
    Database raw_db = testing::RandomDatabase(20, 8, 6, &rng);
    PreprocessResult pre = PreprocessFlat(raw_db, 6, TestConfig());
    AlgoResult mgfsm = RunMgFsm(pre, params, TestConfig());
    AlgoResult lash = RunLash(pre, params, TestConfig());
    PatternMap reference = MineByEnumeration(pre.database, pre.hierarchy, params);
    EXPECT_EQ(testing::Sorted(mgfsm.patterns), testing::Sorted(reference));
    EXPECT_EQ(testing::Sorted(lash.patterns), testing::Sorted(reference));
  }
}

TEST(BaselineLimitsTest, NaiveAborts) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  BaselineLimits limits;
  limits.max_emitted_records = 1;
  AlgoResult result = RunNaiveGsm(ex.pre, params, TestConfig(), limits);
  EXPECT_TRUE(result.aborted);
}

}  // namespace
}  // namespace lash
