#include "core/flist.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace lash {
namespace {

TEST(FListTest, PaperExampleFrequencies) {
  testing::PaperExample ex;
  // Generalized f-list of Fig. 2: a:5, B:5, b1:4, c:3, D:2.
  EXPECT_EQ(ex.pre.freq[ex.Rank("a")], 5u);
  EXPECT_EQ(ex.pre.freq[ex.Rank("B")], 5u);
  EXPECT_EQ(ex.pre.freq[ex.Rank("b1")], 4u);
  EXPECT_EQ(ex.pre.freq[ex.Rank("c")], 3u);
  EXPECT_EQ(ex.pre.freq[ex.Rank("D")], 2u);
}

TEST(FListTest, PaperExampleOrder) {
  testing::PaperExample ex;
  // a < B < b1 < c < D (Fig. 2, items ordered small to large).
  EXPECT_EQ(ex.Rank("a"), 1u);
  EXPECT_EQ(ex.Rank("B"), 2u);
  EXPECT_EQ(ex.Rank("b1"), 3u);
  EXPECT_EQ(ex.Rank("c"), 4u);
  EXPECT_EQ(ex.Rank("D"), 5u);
}

TEST(FListTest, NumFrequentPrefix) {
  testing::PaperExample ex;
  EXPECT_EQ(ex.pre.NumFrequent(2), 5u);  // a, B, b1, c, D.
  EXPECT_EQ(ex.pre.NumFrequent(3), 4u);  // a, B, b1, c.
  EXPECT_EQ(ex.pre.NumFrequent(5), 2u);  // a, B.
  EXPECT_EQ(ex.pre.NumFrequent(6), 0u);
  EXPECT_EQ(ex.pre.NumFrequent(1), ex.pre.freq.size() - 1);
}

TEST(FListTest, FrequenciesNonIncreasing) {
  testing::PaperExample ex;
  for (size_t r = 2; r < ex.pre.freq.size(); ++r) {
    EXPECT_LE(ex.pre.freq[r], ex.pre.freq[r - 1]) << "rank " << r;
  }
}

TEST(FListTest, RankHierarchyMonotoneAndEquivalent) {
  testing::PaperExample ex;
  EXPECT_TRUE(ex.pre.hierarchy.IsRankMonotone());
  // Parent relations survive recoding.
  EXPECT_EQ(ex.pre.hierarchy.Parent(ex.Rank("b1")), ex.Rank("B"));
  EXPECT_EQ(ex.pre.hierarchy.Parent(ex.Rank("b11")), ex.Rank("b1"));
  EXPECT_EQ(ex.pre.hierarchy.Parent(ex.Rank("d1")), ex.Rank("D"));
  EXPECT_EQ(ex.pre.hierarchy.Parent(ex.Rank("a")), kInvalidItem);
}

TEST(FListTest, DatabaseRecoded) {
  testing::PaperExample ex;
  ASSERT_EQ(ex.pre.database.size(), 6u);
  EXPECT_EQ(ex.pre.database[0], ex.RankSeq({"a", "b1", "a", "b1"}));
  EXPECT_EQ(ex.pre.database[2], ex.RankSeq({"a", "c"}));
}

TEST(FListTest, GeneralizedFrequencyCountsDescendants) {
  // Hierarchy 1 <- 2; item 2 occurs in two sequences, item 1 never
  // literally occurs but inherits both.
  Hierarchy h({kInvalidItem, kInvalidItem, 1});
  Database db = {{2}, {2, 2}, {}};
  std::vector<Frequency> freq = GeneralizedItemFrequencies(db, h);
  EXPECT_EQ(freq[1], 2u);  // Document frequency, not occurrence count.
  EXPECT_EQ(freq[2], 2u);
}

TEST(FListTest, TieBreakPrefersMoreGeneralItem) {
  // Items: root 1 with child 2; both occur in exactly the same sequences.
  Hierarchy h({kInvalidItem, kInvalidItem, 1});
  Database db = {{2}, {2}};
  PreprocessResult pre = Preprocess(db, h);
  // Equal generalized frequency (2 each): the root must get rank 1.
  EXPECT_EQ(pre.rank_of_raw[1], 1u);
  EXPECT_EQ(pre.rank_of_raw[2], 2u);
}

TEST(FListTest, CollectGeneralizedItemsDedups) {
  testing::PaperExample ex;
  const Hierarchy& h = ex.raw_hierarchy;
  std::vector<uint32_t> scratch(h.NumItems() + 1, 0);
  std::vector<ItemId> items;
  // T4 = b11 a e a: G1 = {b11, b1, B, a, e} (Sec. 3.3).
  CollectGeneralizedItems(ex.raw_db[3], h, &scratch, 1, &items);
  std::sort(items.begin(), items.end());
  std::vector<ItemId> expected = {ex.vocab.Lookup("a"), ex.vocab.Lookup("B"),
                                  ex.vocab.Lookup("b1"), ex.vocab.Lookup("b11"),
                                  ex.vocab.Lookup("e")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(items, expected);
}

}  // namespace
}  // namespace lash
