#ifndef LASH_TESTS_TEST_UTIL_H_
#define LASH_TESTS_TEST_UTIL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/flist.h"
#include "core/hierarchy.h"
#include "core/vocabulary.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/types.h"

namespace lash::testing {

/// The running example of the paper (Fig. 1 / Fig. 2): six sequences over
/// the vocabulary {a, B, b1, b2, b3, b11, b12, b13, c, D, d1, d2, e, f} with
/// hierarchy b* -> b1|b2|b3 -> B and d1|d2 -> D.
struct PaperExample {
  Vocabulary vocab;
  Database raw_db;
  Hierarchy raw_hierarchy;
  PreprocessResult pre;  ///< Preprocessed (rank space).

  PaperExample() : raw_hierarchy(Hierarchy::Flat(0)) {
    // Insertion order fixes tie-breaking so that ranks match the paper's
    // generalized f-list: a < B < b1 < c < D (Fig. 2).
    vocab.AddItem("a");
    vocab.AddItem("B");
    vocab.AddItemWithParent("b1", "B");
    vocab.AddItem("c");
    vocab.AddItem("D");
    vocab.AddItemWithParent("b2", "B");
    vocab.AddItemWithParent("b3", "B");
    vocab.AddItemWithParent("b11", "b1");
    vocab.AddItemWithParent("b12", "b1");
    vocab.AddItemWithParent("b13", "b1");
    vocab.AddItemWithParent("d1", "D");
    vocab.AddItemWithParent("d2", "D");
    vocab.AddItem("e");
    vocab.AddItem("f");
    raw_db = {
        Seq({"a", "b1", "a", "b1"}),        // T1
        Seq({"a", "b3", "c", "c", "b2"}),   // T2
        Seq({"a", "c"}),                    // T3
        Seq({"b11", "a", "e", "a"}),        // T4
        Seq({"a", "b12", "d1", "c"}),       // T5
        Seq({"b13", "f", "d2"}),            // T6
    };
    raw_hierarchy = vocab.BuildHierarchy();
    pre = Preprocess(raw_db, raw_hierarchy);
  }

  Sequence Seq(const std::vector<std::string>& names) {
    Sequence seq;
    for (const std::string& name : names) seq.push_back(vocab.AddItem(name));
    return seq;
  }

  /// Item rank by name (valid after preprocessing).
  ItemId Rank(const std::string& name) const {
    return pre.rank_of_raw[vocab.Lookup(name)];
  }

  /// Builds a rank-space sequence from names.
  Sequence RankSeq(const std::vector<std::string>& names) const {
    Sequence seq;
    for (const std::string& name : names) seq.push_back(Rank(name));
    return seq;
  }

  /// The expected output for sigma=2, gamma=1, lambda=3 (Sec. 2), keyed in
  /// rank space.
  PatternMap ExpectedOutput() const {
    PatternMap expected;
    auto add = [&](const std::vector<std::string>& names, Frequency f) {
      expected.emplace(RankSeq(names), f);
    };
    add({"a", "a"}, 2);
    add({"a", "b1"}, 2);
    add({"b1", "a"}, 2);
    add({"a", "B"}, 3);
    add({"B", "a"}, 2);
    add({"a", "B", "c"}, 2);
    add({"B", "c"}, 2);
    add({"a", "c"}, 2);
    add({"b1", "D"}, 2);
    add({"B", "D"}, 2);
    return expected;
  }
};

/// A random forest hierarchy over `num_items` items in *rank-monotone* form
/// (parent < child), suitable for direct use by miners and rewrites.
inline Hierarchy RandomRankHierarchy(size_t num_items, double root_prob,
                                     Rng* rng) {
  std::vector<ItemId> parent(num_items + 1, kInvalidItem);
  for (ItemId w = 2; w <= num_items; ++w) {
    if (!rng->Bernoulli(root_prob)) {
      parent[w] = static_cast<ItemId>(1 + rng->Uniform(w - 1));
    }
  }
  return Hierarchy(std::move(parent));
}

/// A random database over items `1..num_items` (rank space).
inline Database RandomDatabase(size_t num_sequences, size_t max_length,
                               size_t num_items, Rng* rng) {
  Database db(num_sequences);
  for (Sequence& t : db) {
    size_t len = 1 + rng->Uniform(max_length);
    for (size_t i = 0; i < len; ++i) {
      t.push_back(static_cast<ItemId>(1 + rng->Uniform(num_items)));
    }
  }
  return db;
}

/// Sorted-vector view for readable gtest failure output.
inline std::vector<std::pair<Sequence, Frequency>> Sorted(const PatternMap& m) {
  return SortedPatterns(m);
}

}  // namespace lash::testing

#endif  // LASH_TESTS_TEST_UTIL_H_
