// Tests of the byte-packed shuffle (PR 2): packed-vs-legacy equivalence of
// reduce output and counters, combiner-on/off parity, determinism of RunLash
// across thread and task counts, and round-trips of the spill codecs.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>

#include "algo/lash.h"
#include "mapreduce/job.h"
#include "test_util.h"
#include "util/varint.h"

namespace lash {
namespace {

JobConfig TestConfig(ShuffleMode mode) {
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  config.shuffle = mode;
  return config;
}

// A word-count job over string keys with a length-prefixed codec, to
// exercise the generic packed path (not just LASH's Sequence keys).
struct WordCountJob {
  using Job = MapReduceJob<std::string, std::string, uint64_t>;

  std::map<std::string, uint64_t> counts;
  std::mutex mu;
  Job job;

  WordCountJob()
      : job(
            [](const std::string& doc, const Job::EmitFn& emit) {
              size_t pos = 0;
              while (pos < doc.size()) {
                size_t space = doc.find(' ', pos);
                if (space == std::string::npos) space = doc.size();
                if (space > pos) emit(doc.substr(pos, space - pos), 1);
                pos = space + 1;
              }
            },
            [this](size_t, const std::string& key,
                   std::vector<uint64_t>& values) {
              uint64_t total = 0;
              for (uint64_t v : values) total += v;
              std::lock_guard<std::mutex> lock(mu);
              counts[key] += total;
            },
            [](const std::string& key, const uint64_t& value) {
              return Varint32Size(static_cast<uint32_t>(key.size())) +
                     key.size() + Varint64Size(value);
            }) {
    Job::SpillCodec codec;
    codec.encode_key = [](std::string* out, const std::string& key) {
      PutVarint32(out, static_cast<uint32_t>(key.size()));
      out->append(key);
    };
    codec.decode_key = [](const std::string& data, size_t* pos,
                          std::string* key) {
      uint32_t len = 0;
      if (!GetVarint32(data, pos, &len)) return false;
      if (*pos + len > data.size()) return false;
      key->assign(data, *pos, len);
      *pos += len;
      return true;
    };
    codec.encode_value = [](std::string* out, const uint64_t& value) {
      PutVarint64(out, value);
    };
    codec.decode_value = [](const std::string& data, size_t* pos,
                            uint64_t* value) {
      return GetVarint64(data, pos, value);
    };
    job.set_spill_codec(std::move(codec));
  }
};

std::vector<std::string> Docs() {
  return {"the quick brown fox", "the lazy dog", "the quick dog",
          "fox fox fox",         "",             "dog"};
}

TEST(PackedShuffleTest, MatchesLegacyOutputAndCounters) {
  for (bool combiner : {false, true}) {
    WordCountJob legacy, packed;
    if (combiner) {
      auto add = [](uint64_t* acc, uint64_t&& v) { *acc += v; };
      legacy.job.set_combiner(add);
      packed.job.set_combiner(add);
    }
    JobResult r_legacy =
        legacy.job.Run(Docs(), TestConfig(ShuffleMode::kLegacyHash));
    JobResult r_packed =
        packed.job.Run(Docs(), TestConfig(ShuffleMode::kPackedSpill));
    EXPECT_EQ(legacy.counts, packed.counts) << "combiner=" << combiner;
    EXPECT_EQ(r_legacy.counters.map_input_records,
              r_packed.counters.map_input_records);
    EXPECT_EQ(r_legacy.counters.map_output_records,
              r_packed.counters.map_output_records);
    // The legacy ByteSizeFn simulates exactly the codec's encoding, so the
    // measured buffer bytes must equal the simulated count.
    EXPECT_EQ(r_legacy.counters.map_output_bytes,
              r_packed.counters.map_output_bytes);
    EXPECT_EQ(r_legacy.counters.reduce_input_groups,
              r_packed.counters.reduce_input_groups);
  }
}

TEST(PackedShuffleTest, FallsBackToLegacyWithoutCodec) {
  // A job without a codec must run (on the legacy path) even when the
  // config asks for the packed spill.
  std::map<int, int> sums;
  std::mutex mu;
  using Job = MapReduceJob<int, int, int>;
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x % 3, x); },
          [&](size_t, const int& key, std::vector<int>& values) {
            int total = 0;
            for (int v : values) total += v;
            std::lock_guard<std::mutex> lock(mu);
            sums[key] += total;
          },
          [](const int&, const int&) { return 8; });
  std::vector<int> inputs = {1, 2, 3, 4, 5, 6};
  JobResult result = job.Run(inputs, TestConfig(ShuffleMode::kPackedSpill));
  EXPECT_EQ(sums.at(0), 9);
  EXPECT_EQ(sums.at(1), 5);
  EXPECT_EQ(sums.at(2), 7);
  EXPECT_EQ(result.counters.map_output_records, 6u);
}

TEST(PackedShuffleTest, ReduceFinishReceivesThePool) {
  using Job = MapReduceJob<int, int, int>;
  std::atomic<int> sum{0};
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x, 1); },
          [](size_t, const int&, std::vector<int>&) {},
          [](const int&, const int&) { return 1; });
  job.set_reduce_finish([&](size_t, ThreadPool* pool) {
    ASSERT_NE(pool, nullptr);
    // Nested parallelism from inside a reduce task must complete.
    pool->ParallelFor(8, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  });
  std::vector<int> inputs = {1, 2, 3};
  JobConfig config = TestConfig(ShuffleMode::kLegacyHash);
  job.Run(inputs, config);
  EXPECT_EQ(sum.load(), 28 * static_cast<int>(config.num_reduce_tasks));
}

// ---- LASH-level parity and determinism -----------------------------------

TEST(LashShuffleTest, CombinerOnOffAndShuffleModeParity) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap expected = ex.ExpectedOutput();
  struct Run {
    AlgoResult result;
    std::string label;
  };
  std::vector<Run> runs;
  for (ShuffleMode mode : {ShuffleMode::kPackedSpill, ShuffleMode::kLegacyHash}) {
    for (bool combiner : {true, false}) {
      LashOptions options;
      options.use_combiner = combiner;
      runs.push_back({RunLash(ex.pre, params, TestConfig(mode), options),
                      std::string(mode == ShuffleMode::kPackedSpill
                                      ? "packed"
                                      : "legacy") +
                          (combiner ? "+comb" : "-comb")});
    }
  }
  for (const Run& run : runs) {
    EXPECT_EQ(testing::Sorted(run.result.patterns), testing::Sorted(expected))
        << run.label;
  }
  // Same options => identical records/bytes across shuffle modes (real
  // buffer measurement vs varint simulation must agree)...
  EXPECT_EQ(runs[0].result.job.counters.map_output_records,
            runs[2].result.job.counters.map_output_records);
  EXPECT_EQ(runs[0].result.job.counters.map_output_bytes,
            runs[2].result.job.counters.map_output_bytes);
  EXPECT_EQ(runs[1].result.job.counters.map_output_bytes,
            runs[3].result.job.counters.map_output_bytes);
  // ...the combiner can only shrink the transfer...
  EXPECT_LE(runs[0].result.job.counters.map_output_records,
            runs[1].result.job.counters.map_output_records);
  EXPECT_LE(runs[0].result.job.counters.map_output_bytes,
            runs[1].result.job.counters.map_output_bytes);
  // ...and reduce-side grouping sees the same distinct keys either way.
  EXPECT_EQ(runs[0].result.job.counters.reduce_input_groups,
            runs[1].result.job.counters.reduce_input_groups);
  EXPECT_EQ(runs[0].result.job.counters.reduce_input_groups,
            runs[2].result.job.counters.reduce_input_groups);
}

TEST(LashShuffleTest, DeterministicAcrossThreadsAndTaskCounts) {
  Rng rng(20240229);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  Hierarchy h = testing::RandomRankHierarchy(12, 0.4, &rng);
  Database raw_db = testing::RandomDatabase(60, 10, 12, &rng);
  PreprocessResult pre = Preprocess(raw_db, h);

  LashOptions options;
  auto reference = RunLash(pre, params, TestConfig(ShuffleMode::kPackedSpill),
                           options);
  for (size_t threads : {1u, 4u}) {
    for (size_t map_tasks : {1u, 3u, 8u}) {
      for (size_t reduce_tasks : {1u, 4u, 7u}) {
        JobConfig config;
        config.num_threads = threads;
        config.num_map_tasks = map_tasks;
        config.num_reduce_tasks = reduce_tasks;
        AlgoResult result = RunLash(pre, params, config, options);
        ASSERT_EQ(testing::Sorted(result.patterns),
                  testing::Sorted(reference.patterns))
            << "threads=" << threads << " map=" << map_tasks
            << " reduce=" << reduce_tasks;
        // Byte/record counters only depend on the map-task split, never on
        // threads or reduce tasks.
        if (map_tasks == 3) {
          EXPECT_EQ(result.job.counters.map_output_records,
                    reference.job.counters.map_output_records);
          EXPECT_EQ(result.job.counters.map_output_bytes,
                    reference.job.counters.map_output_bytes);
        }
      }
    }
  }
}

TEST(LashShuffleTest, GammaZeroFastPathMatchesLegacyDriver) {
  // gamma == 0 engages the occurrence-driven rewrite loop; the legacy
  // driver still uses the reference Rewriter. Randomized comparison.
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t num_items = 5 + rng.Uniform(8);
    Hierarchy h = testing::RandomRankHierarchy(num_items, 0.3, &rng);
    Database raw_db = testing::RandomDatabase(40, 9, num_items, &rng);
    PreprocessResult pre = Preprocess(raw_db, h);
    for (uint32_t lambda : {2u, 3u, 5u}) {
      GsmParams params{.sigma = 2, .gamma = 0, .lambda = lambda};
      AlgoResult packed =
          RunLash(pre, params, TestConfig(ShuffleMode::kPackedSpill));
      AlgoResult legacy =
          RunLash(pre, params, TestConfig(ShuffleMode::kLegacyHash));
      ASSERT_EQ(testing::Sorted(packed.patterns),
                testing::Sorted(legacy.patterns))
          << "trial " << trial << " lambda " << lambda;
      ASSERT_EQ(packed.job.counters.map_output_bytes,
                legacy.job.counters.map_output_bytes);
      ASSERT_EQ(packed.job.counters.map_output_records,
                legacy.job.counters.map_output_records);
    }
  }
}

// ---- Spill codec round-trips ---------------------------------------------

TEST(SpillCodecTest, RewrittenSpanRoundTrips) {
  const ItemId max_item = kBlank - 1;  // Largest real item: 5-byte varint.
  std::vector<Sequence> cases = {
      {},                                      // Empty sequence.
      {kBlank, kBlank, kBlank},                // All-blank runs.
      {1},
      {max_item},
      {max_item, kBlank, max_item},
      {kBlank, 7, kBlank, kBlank, 9, kBlank},  // Leading/trailing blanks.
      {127, 128, 16383, 16384, max_item},      // Varint width boundaries.
  };
  for (const Sequence& seq : cases) {
    std::string buffer;
    EncodeRewrittenSpan(&buffer, seq.data(), seq.size());
    EXPECT_EQ(buffer.size(), EncodedRewrittenSpanSize(seq.data(), seq.size()));
    // Append semantics: decoding extends existing content.
    Sequence decoded = {42};
    size_t pos = 0;
    ASSERT_TRUE(DecodeRewrittenSpanAppend(buffer, &pos, &decoded));
    EXPECT_EQ(pos, buffer.size());
    Sequence expected = {42};
    expected.insert(expected.end(), seq.begin(), seq.end());
    EXPECT_EQ(decoded, expected);
    // The boundary-only skip must consume exactly the same bytes.
    size_t skip_pos = 0;
    ASSERT_TRUE(SkipRewrittenSpan(buffer, &skip_pos));
    EXPECT_EQ(skip_pos, pos);
  }
}

TEST(SpillCodecTest, LashKeyCodecRoundTrips) {
  // The exact codec RunLash installs: varint pivot + rewritten-span tail +
  // varint64 weight, concatenated records in one buffer.
  struct Record {
    Sequence key;
    Frequency value;
  };
  const ItemId max_item = kBlank - 1;
  std::vector<Record> records = {
      {{5, 5, kBlank, 3}, 1},
      {{max_item, max_item}, 0xffffffffffffffffull},  // Max-width varints.
      {{1, 2}, 1},
      {{7, kBlank, kBlank, kBlank, 7}, 12345},
  };
  std::string buffer;
  for (const Record& r : records) {
    PutVarint32(&buffer, r.key[0]);
    EncodeRewrittenSpan(&buffer, r.key.data() + 1, r.key.size() - 1);
    PutVarint64(&buffer, r.value);
  }
  size_t pos = 0;
  for (const Record& r : records) {
    Sequence key;
    uint32_t pivot = 0;
    ASSERT_TRUE(GetVarint32(buffer, &pos, &pivot));
    key.push_back(pivot);
    ASSERT_TRUE(DecodeRewrittenSpanAppend(buffer, &pos, &key));
    Frequency value = 0;
    ASSERT_TRUE(GetVarint64(buffer, &pos, &value));
    EXPECT_EQ(key, r.key);
    EXPECT_EQ(value, r.value);
  }
  EXPECT_EQ(pos, buffer.size());
}

TEST(SpillCodecTest, TruncatedSpanRejected) {
  Sequence seq = {1, kBlank, kBlank, 2, 3};
  std::string buffer;
  EncodeRewrittenSpan(&buffer, seq.data(), seq.size());
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    std::string truncated = buffer.substr(0, cut);
    Sequence decoded;
    size_t pos = 0;
    EXPECT_FALSE(DecodeRewrittenSpanAppend(truncated, &pos, &decoded))
        << "cut at " << cut;
    size_t skip_pos = 0;
    EXPECT_FALSE(SkipRewrittenSpan(truncated, &skip_pos)) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace lash
