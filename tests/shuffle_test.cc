// Tests of the byte-packed shuffle (PR 2): packed-vs-legacy equivalence of
// reduce output and counters, combiner-on/off parity, determinism of RunLash
// across thread and task counts, and round-trips of the spill codecs.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "algo/lash.h"
#include "mapreduce/job.h"
#include "test_util.h"
#include "util/hash.h"
#include "util/readiness.h"
#include "util/varint.h"

namespace lash {
namespace {

JobConfig TestConfig(ShuffleMode mode) {
  JobConfig config;
  config.num_threads = 2;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  config.shuffle = mode;
  return config;
}

// A word-count job over string keys with a length-prefixed codec, to
// exercise the generic packed path (not just LASH's Sequence keys).
struct WordCountJob {
  using Job = MapReduceJob<std::string, std::string, uint64_t>;

  std::map<std::string, uint64_t> counts;
  std::mutex mu;
  Job job;

  WordCountJob()
      : job(
            [](const std::string& doc, const Job::EmitFn& emit) {
              size_t pos = 0;
              while (pos < doc.size()) {
                size_t space = doc.find(' ', pos);
                if (space == std::string::npos) space = doc.size();
                if (space > pos) emit(doc.substr(pos, space - pos), 1);
                pos = space + 1;
              }
            },
            [this](size_t, const std::string& key,
                   std::vector<uint64_t>& values) {
              uint64_t total = 0;
              for (uint64_t v : values) total += v;
              std::lock_guard<std::mutex> lock(mu);
              counts[key] += total;
            },
            [](const std::string& key, const uint64_t& value) {
              return Varint32Size(static_cast<uint32_t>(key.size())) +
                     key.size() + Varint64Size(value);
            }) {
    Job::SpillCodec codec;
    codec.encode_key = [](std::string* out, const std::string& key) {
      PutVarint32(out, static_cast<uint32_t>(key.size()));
      out->append(key);
    };
    codec.decode_key = [](const std::string& data, size_t* pos,
                          std::string* key) {
      uint32_t len = 0;
      if (!GetVarint32(data, pos, &len)) return false;
      if (*pos + len > data.size()) return false;
      key->assign(data, *pos, len);
      *pos += len;
      return true;
    };
    codec.encode_value = [](std::string* out, const uint64_t& value) {
      PutVarint64(out, value);
    };
    codec.decode_value = [](const std::string& data, size_t* pos,
                            uint64_t* value) {
      return GetVarint64(data, pos, value);
    };
    job.set_spill_codec(std::move(codec));
  }
};

std::vector<std::string> Docs() {
  return {"the quick brown fox", "the lazy dog", "the quick dog",
          "fox fox fox",         "",             "dog"};
}

TEST(PackedShuffleTest, MatchesLegacyOutputAndCounters) {
  for (bool combiner : {false, true}) {
    WordCountJob legacy, packed;
    if (combiner) {
      auto add = [](uint64_t* acc, uint64_t&& v) { *acc += v; };
      legacy.job.set_combiner(add);
      packed.job.set_combiner(add);
    }
    JobResult r_legacy =
        legacy.job.Run(Docs(), TestConfig(ShuffleMode::kLegacyHash));
    JobResult r_packed =
        packed.job.Run(Docs(), TestConfig(ShuffleMode::kPackedSpill));
    EXPECT_EQ(legacy.counts, packed.counts) << "combiner=" << combiner;
    EXPECT_EQ(r_legacy.counters.map_input_records,
              r_packed.counters.map_input_records);
    EXPECT_EQ(r_legacy.counters.map_output_records,
              r_packed.counters.map_output_records);
    // The legacy ByteSizeFn simulates exactly the codec's encoding, so the
    // measured buffer bytes must equal the simulated count.
    EXPECT_EQ(r_legacy.counters.map_output_bytes,
              r_packed.counters.map_output_bytes);
    EXPECT_EQ(r_legacy.counters.reduce_input_groups,
              r_packed.counters.reduce_input_groups);
  }
}

TEST(PackedShuffleTest, FallsBackToLegacyWithoutCodec) {
  // A job without a codec must run (on the legacy path) even when the
  // config asks for the packed spill.
  std::map<int, int> sums;
  std::mutex mu;
  using Job = MapReduceJob<int, int, int>;
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x % 3, x); },
          [&](size_t, const int& key, std::vector<int>& values) {
            int total = 0;
            for (int v : values) total += v;
            std::lock_guard<std::mutex> lock(mu);
            sums[key] += total;
          },
          [](const int&, const int&) { return 8; });
  std::vector<int> inputs = {1, 2, 3, 4, 5, 6};
  JobResult result = job.Run(inputs, TestConfig(ShuffleMode::kPackedSpill));
  EXPECT_EQ(sums.at(0), 9);
  EXPECT_EQ(sums.at(1), 5);
  EXPECT_EQ(sums.at(2), 7);
  EXPECT_EQ(result.counters.map_output_records, 6u);
}

TEST(PackedShuffleTest, ReduceFinishReceivesThePool) {
  using Job = MapReduceJob<int, int, int>;
  std::atomic<int> sum{0};
  Job job([](const int& x, const Job::EmitFn& emit) { emit(x, 1); },
          [](size_t, const int&, std::vector<int>&) {},
          [](const int&, const int&) { return 1; });
  job.set_reduce_finish([&](size_t, ThreadPool* pool) {
    ASSERT_NE(pool, nullptr);
    // Nested parallelism from inside a reduce task must complete.
    pool->ParallelFor(8, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  });
  std::vector<int> inputs = {1, 2, 3};
  JobConfig config = TestConfig(ShuffleMode::kLegacyHash);
  job.Run(inputs, config);
  EXPECT_EQ(sum.load(), 28 * static_cast<int>(config.num_reduce_tasks));
}

// ---- Pipelined shuffle: radix grouping and readiness counters ------------

// Differential check of the MSD radix grouping against an independently
// computed comparison order. The packed path promises that, within a
// partition, reduce sees groups in (key-hash, encoded-key-bytes) order and
// a group's values in ascending (map task, emission) order; this test
// rebuilds both expectations from scratch (own FNV calls, own sort) over
// random binary keys with heavy duplication — enough same-hash records to
// push the radix sort through several byte levels and into its comparison
// fallback on equal-hash runs.
TEST(PackedShuffleTest, RadixGroupingMatchesComparisonOrder) {
  using Input = std::pair<std::string, uint64_t>;
  using Job = MapReduceJob<Input, std::string, uint64_t>;
  Rng rng(424242);

  // Random binary keys (arbitrary bytes, lengths 0..24), then a skewed
  // input stream: a third of the records hit 4 hot keys so single keys
  // contribute runs far above the radix sort's comparison cutoff.
  std::vector<std::string> pool;
  for (size_t k = 0; k < 120; ++k) {
    std::string key(rng.Uniform(25), '\0');
    for (char& c : key) c = static_cast<char>(rng.Uniform(256));
    pool.push_back(std::move(key));
  }
  std::vector<Input> inputs;
  for (uint64_t i = 0; i < 4000; ++i) {
    const size_t k =
        rng.Uniform(3) == 0 ? rng.Uniform(4) : rng.Uniform(pool.size());
    inputs.push_back({pool[k], i});
  }

  struct Group {
    std::string key;
    std::vector<uint64_t> values;
  };
  std::vector<std::vector<Group>> arrived;  // Per reduce partition.
  std::mutex mu;
  Job job(
      [](const Input& in, const Job::EmitFn& emit) {
        emit(in.first, in.second);
      },
      [&](size_t r, const std::string& key, std::vector<uint64_t>& values) {
        std::lock_guard<std::mutex> lock(mu);
        arrived[r].push_back({key, values});
      },
      [](const std::string& key, const uint64_t&) {
        return Varint32Size(static_cast<uint32_t>(key.size())) + key.size() +
               8;
      });
  Job::SpillCodec codec;
  codec.encode_key = [](std::string* out, const std::string& key) {
    PutVarint32(out, static_cast<uint32_t>(key.size()));
    out->append(key);
  };
  codec.decode_key = [](const std::string& data, size_t* pos,
                        std::string* key) {
    uint32_t len = 0;
    if (!GetVarint32(data, pos, &len)) return false;
    if (*pos + len > data.size()) return false;
    key->assign(data, *pos, len);
    *pos += len;
    return true;
  };
  codec.encode_value = [](std::string* out, const uint64_t& value) {
    PutVarint64(out, value);
  };
  codec.decode_value = [](const std::string& data, size_t* pos,
                          uint64_t* value) {
    return GetVarint64(data, pos, value);
  };
  job.set_spill_codec(std::move(codec));
  // A partitioner the test can replicate exactly (the default is
  // std::hash, whose value is implementation-defined).
  job.set_partitioner([](const std::string& key) {
    return static_cast<size_t>(FnvHashBytes(key.data(), key.size()));
  });

  JobConfig config;
  config.num_threads = 3;
  config.num_map_tasks = 7;
  config.num_reduce_tasks = 5;
  config.shuffle = ShuffleMode::kPackedSpill;
  arrived.assign(config.num_reduce_tasks, {});
  job.Run(inputs, config);

  // Independent expectation: per partition, distinct keys ordered by
  // (FNV hash of the encoded key, encoded key bytes); per key, values in
  // ascending input order (map tasks are ascending contiguous input
  // ranges, so emission order across tasks is ascending input index).
  std::map<std::string, std::vector<uint64_t>> by_key;
  for (const Input& in : inputs) by_key[in.first].push_back(in.second);
  std::vector<std::vector<Group>> expected(config.num_reduce_tasks);
  {
    struct Ranked {
      uint64_t hash;
      std::string enc;
      const std::string* key;
    };
    std::vector<std::vector<Ranked>> ranked(config.num_reduce_tasks);
    for (const auto& [key, values] : by_key) {
      std::string enc;
      PutVarint32(&enc, static_cast<uint32_t>(key.size()));
      enc.append(key);
      const size_t r = static_cast<size_t>(
                           FnvHashBytes(key.data(), key.size())) %
                       config.num_reduce_tasks;
      ranked[r].push_back(
          {FnvHashBytes(enc.data(), enc.size()), std::move(enc), &key});
    }
    for (size_t r = 0; r < ranked.size(); ++r) {
      std::sort(ranked[r].begin(), ranked[r].end(),
                [](const Ranked& a, const Ranked& b) {
                  if (a.hash != b.hash) return a.hash < b.hash;
                  return a.enc < b.enc;
                });
      for (const Ranked& rk : ranked[r]) {
        expected[r].push_back({*rk.key, by_key.at(*rk.key)});
      }
    }
  }

  for (size_t r = 0; r < config.num_reduce_tasks; ++r) {
    ASSERT_EQ(arrived[r].size(), expected[r].size()) << "partition " << r;
    for (size_t g = 0; g < expected[r].size(); ++g) {
      EXPECT_EQ(arrived[r][g].key, expected[r][g].key)
          << "partition " << r << " group " << g;
      EXPECT_EQ(arrived[r][g].values, expected[r][g].values)
          << "partition " << r << " group " << g;
    }
  }
}

// Exactly-once handoff: with every producer sealing every slot from its
// own thread, precisely one Seal call per slot may return true, and all
// counters must read zero afterwards.
TEST(ReadinessCountersTest, ExactlyOneOwnerPerSlot) {
  const size_t kSlots = 64;
  const uint32_t kProducers = 8;
  for (int round = 0; round < 20; ++round) {
    ReadinessCounters ready(kSlots, kProducers);
    std::vector<std::atomic<uint32_t>> wins(kSlots);
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kProducers; ++t) {
      threads.emplace_back([&ready, &wins, t] {
        // Each producer walks the slots at a different starting offset so
        // final Seals land on different threads across slots.
        for (size_t i = 0; i < kSlots; ++i) {
          const size_t slot = (i + t * 11) % kSlots;
          if (ready.Seal(slot)) wins[slot].fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t s = 0; s < kSlots; ++s) {
      ASSERT_EQ(wins[s].load(), 1u) << "slot " << s << " round " << round;
      ASSERT_EQ(ready.Remaining(s), 0u) << "slot " << s;
    }
  }
}

// Readiness-counter stress through the whole job: many map tasks (some of
// them empty) against few partitions, on single- and multi-thread pools.
// Every configuration must produce the same counts.
TEST(PackedShuffleTest, ManyMapTasksPipelinedDeterminism) {
  Rng rng(987654);
  std::vector<std::string> docs;
  std::map<std::string, uint64_t> expected;
  for (int d = 0; d < 300; ++d) {
    std::string doc;
    const size_t words = rng.Uniform(21);
    for (size_t w = 0; w < words; ++w) {
      std::string word = "w" + std::to_string(rng.Uniform(30));
      ++expected[word];
      if (!doc.empty()) doc += ' ';
      doc += word;
    }
    docs.push_back(std::move(doc));
  }
  for (size_t threads : {1u, 4u, 8u}) {
    for (size_t map_tasks : {1u, 7u, 64u}) {
      WordCountJob wc;
      JobConfig config;
      config.num_threads = threads;
      config.num_map_tasks = map_tasks;
      config.num_reduce_tasks = 6;
      config.shuffle = ShuffleMode::kPackedSpill;
      JobResult result = wc.job.Run(docs, config);
      ASSERT_EQ(wc.counts, expected)
          << "threads=" << threads << " map=" << map_tasks;
      EXPECT_TRUE(result.pipelined);
      EXPECT_EQ(result.partition_timeline.size(), config.num_reduce_tasks);
    }
  }
}

// ---- LASH-level parity and determinism -----------------------------------

TEST(LashShuffleTest, CombinerOnOffAndShuffleModeParity) {
  testing::PaperExample ex;
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 3};
  PatternMap expected = ex.ExpectedOutput();
  struct Run {
    AlgoResult result;
    std::string label;
  };
  std::vector<Run> runs;
  for (ShuffleMode mode : {ShuffleMode::kPackedSpill, ShuffleMode::kLegacyHash}) {
    for (bool combiner : {true, false}) {
      LashOptions options;
      options.use_combiner = combiner;
      runs.push_back({RunLash(ex.pre, params, TestConfig(mode), options),
                      std::string(mode == ShuffleMode::kPackedSpill
                                      ? "packed"
                                      : "legacy") +
                          (combiner ? "+comb" : "-comb")});
    }
  }
  for (const Run& run : runs) {
    EXPECT_EQ(testing::Sorted(run.result.patterns), testing::Sorted(expected))
        << run.label;
  }
  // Same options => identical records/bytes across shuffle modes (real
  // buffer measurement vs varint simulation must agree)...
  EXPECT_EQ(runs[0].result.job.counters.map_output_records,
            runs[2].result.job.counters.map_output_records);
  EXPECT_EQ(runs[0].result.job.counters.map_output_bytes,
            runs[2].result.job.counters.map_output_bytes);
  EXPECT_EQ(runs[1].result.job.counters.map_output_bytes,
            runs[3].result.job.counters.map_output_bytes);
  // ...the combiner can only shrink the transfer...
  EXPECT_LE(runs[0].result.job.counters.map_output_records,
            runs[1].result.job.counters.map_output_records);
  EXPECT_LE(runs[0].result.job.counters.map_output_bytes,
            runs[1].result.job.counters.map_output_bytes);
  // ...and reduce-side grouping sees the same distinct keys either way.
  EXPECT_EQ(runs[0].result.job.counters.reduce_input_groups,
            runs[1].result.job.counters.reduce_input_groups);
  EXPECT_EQ(runs[0].result.job.counters.reduce_input_groups,
            runs[2].result.job.counters.reduce_input_groups);
}

TEST(LashShuffleTest, DeterministicAcrossThreadsAndTaskCounts) {
  Rng rng(20240229);
  GsmParams params{.sigma = 2, .gamma = 1, .lambda = 4};
  Hierarchy h = testing::RandomRankHierarchy(12, 0.4, &rng);
  Database raw_db = testing::RandomDatabase(60, 10, 12, &rng);
  PreprocessResult pre = Preprocess(raw_db, h);

  LashOptions options;
  auto reference = RunLash(pre, params, TestConfig(ShuffleMode::kPackedSpill),
                           options);
  for (size_t threads : {1u, 4u}) {
    for (size_t map_tasks : {1u, 3u, 8u}) {
      for (size_t reduce_tasks : {1u, 4u, 7u}) {
        JobConfig config;
        config.num_threads = threads;
        config.num_map_tasks = map_tasks;
        config.num_reduce_tasks = reduce_tasks;
        AlgoResult result = RunLash(pre, params, config, options);
        ASSERT_EQ(testing::Sorted(result.patterns),
                  testing::Sorted(reference.patterns))
            << "threads=" << threads << " map=" << map_tasks
            << " reduce=" << reduce_tasks;
        // Byte/record counters only depend on the map-task split, never on
        // threads or reduce tasks.
        if (map_tasks == 3) {
          EXPECT_EQ(result.job.counters.map_output_records,
                    reference.job.counters.map_output_records);
          EXPECT_EQ(result.job.counters.map_output_bytes,
                    reference.job.counters.map_output_bytes);
        }
      }
    }
  }
}

TEST(LashShuffleTest, GammaZeroFastPathMatchesLegacyDriver) {
  // gamma == 0 engages the occurrence-driven rewrite loop; the legacy
  // driver still uses the reference Rewriter. Randomized comparison.
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t num_items = 5 + rng.Uniform(8);
    Hierarchy h = testing::RandomRankHierarchy(num_items, 0.3, &rng);
    Database raw_db = testing::RandomDatabase(40, 9, num_items, &rng);
    PreprocessResult pre = Preprocess(raw_db, h);
    for (uint32_t lambda : {2u, 3u, 5u}) {
      GsmParams params{.sigma = 2, .gamma = 0, .lambda = lambda};
      AlgoResult packed =
          RunLash(pre, params, TestConfig(ShuffleMode::kPackedSpill));
      AlgoResult legacy =
          RunLash(pre, params, TestConfig(ShuffleMode::kLegacyHash));
      ASSERT_EQ(testing::Sorted(packed.patterns),
                testing::Sorted(legacy.patterns))
          << "trial " << trial << " lambda " << lambda;
      ASSERT_EQ(packed.job.counters.map_output_bytes,
                legacy.job.counters.map_output_bytes);
      ASSERT_EQ(packed.job.counters.map_output_records,
                legacy.job.counters.map_output_records);
    }
  }
}

// ---- Spill codec round-trips ---------------------------------------------

TEST(SpillCodecTest, RewrittenSpanRoundTrips) {
  const ItemId max_item = kBlank - 1;  // Largest real item: 5-byte varint.
  std::vector<Sequence> cases = {
      {},                                      // Empty sequence.
      {kBlank, kBlank, kBlank},                // All-blank runs.
      {1},
      {max_item},
      {max_item, kBlank, max_item},
      {kBlank, 7, kBlank, kBlank, 9, kBlank},  // Leading/trailing blanks.
      {127, 128, 16383, 16384, max_item},      // Varint width boundaries.
  };
  for (const Sequence& seq : cases) {
    std::string buffer;
    EncodeRewrittenSpan(&buffer, seq.data(), seq.size());
    EXPECT_EQ(buffer.size(), EncodedRewrittenSpanSize(seq.data(), seq.size()));
    // Append semantics: decoding extends existing content.
    Sequence decoded = {42};
    size_t pos = 0;
    ASSERT_TRUE(DecodeRewrittenSpanAppend(buffer, &pos, &decoded));
    EXPECT_EQ(pos, buffer.size());
    Sequence expected = {42};
    expected.insert(expected.end(), seq.begin(), seq.end());
    EXPECT_EQ(decoded, expected);
    // The boundary-only skip must consume exactly the same bytes.
    size_t skip_pos = 0;
    ASSERT_TRUE(SkipRewrittenSpan(buffer, &skip_pos));
    EXPECT_EQ(skip_pos, pos);
  }
}

TEST(SpillCodecTest, LashKeyCodecRoundTrips) {
  // The exact codec RunLash installs: varint pivot + rewritten-span tail +
  // varint64 weight, concatenated records in one buffer.
  struct Record {
    Sequence key;
    Frequency value;
  };
  const ItemId max_item = kBlank - 1;
  std::vector<Record> records = {
      {{5, 5, kBlank, 3}, 1},
      {{max_item, max_item}, 0xffffffffffffffffull},  // Max-width varints.
      {{1, 2}, 1},
      {{7, kBlank, kBlank, kBlank, 7}, 12345},
  };
  std::string buffer;
  for (const Record& r : records) {
    PutVarint32(&buffer, r.key[0]);
    EncodeRewrittenSpan(&buffer, r.key.data() + 1, r.key.size() - 1);
    PutVarint64(&buffer, r.value);
  }
  size_t pos = 0;
  for (const Record& r : records) {
    Sequence key;
    uint32_t pivot = 0;
    ASSERT_TRUE(GetVarint32(buffer, &pos, &pivot));
    key.push_back(pivot);
    ASSERT_TRUE(DecodeRewrittenSpanAppend(buffer, &pos, &key));
    Frequency value = 0;
    ASSERT_TRUE(GetVarint64(buffer, &pos, &value));
    EXPECT_EQ(key, r.key);
    EXPECT_EQ(value, r.value);
  }
  EXPECT_EQ(pos, buffer.size());
}

TEST(SpillCodecTest, TruncatedSpanRejected) {
  Sequence seq = {1, kBlank, kBlank, 2, 3};
  std::string buffer;
  EncodeRewrittenSpan(&buffer, seq.data(), seq.size());
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    std::string truncated = buffer.substr(0, cut);
    Sequence decoded;
    size_t pos = 0;
    EXPECT_FALSE(DecodeRewrittenSpanAppend(truncated, &pos, &decoded))
        << "cut at " << cut;
    size_t skip_pos = 0;
    EXPECT_FALSE(SkipRewrittenSpan(truncated, &skip_pos)) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace lash
