// Table 1: dataset characteristics (sequences, avg/max length, total and
// unique items) for the synthetic NYT-like and AMZN-like datasets.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

void Print(const char* name, const DatasetStats& s) {
  std::printf("Table1   %-8s sequences=%9zu avg_len=%6.1f max_len=%6zu "
              "total_items=%10zu unique_items=%8zu\n",
              name, s.num_sequences, s.avg_length, s.max_length,
              s.total_items, s.unique_items);
  std::fflush(stdout);
}

void BM_Nyt(benchmark::State& state) {
  for (auto _ : state) {
    DatasetStats s = ComputeStats(NytData(TextHierarchy::kCLP).database);
    Print("NYT", s);
    state.counters["sequences"] = static_cast<double>(s.num_sequences);
    state.counters["avg_len"] = s.avg_length;
    state.counters["unique"] = static_cast<double>(s.unique_items);
  }
}

void BM_Amzn(benchmark::State& state) {
  for (auto _ : state) {
    DatasetStats s = ComputeStats(AmznData(8).database);
    Print("AMZN", s);
    state.counters["sequences"] = static_cast<double>(s.num_sequences);
    state.counters["avg_len"] = s.avg_length;
    state.counters["unique"] = static_cast<double>(s.unique_items);
  }
}

BENCHMARK(BM_Nyt)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Amzn)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
