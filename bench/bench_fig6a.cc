// Fig. 6(a): data scalability — LASH on 25% / 50% / 75% / 100% random
// samples of the NYT-CLP corpus (sigma=100, lambda=5).
//
// Expected shape: map and reduce times grow roughly linearly with the data.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

const int kPercents[] = {25, 50, 75, 100};

void BM_LashDataScale(benchmark::State& state) {
  int percent = kPercents[state.range(0)];
  size_t sentences = kNytSentences * percent / 100;
  const GeneratedText& data = NytData(TextHierarchy::kCLP, kNytSentences);
  // Prefix sample of the full corpus (sentences are i.i.d. by construction,
  // so a prefix is a random sample).
  Database sample(data.database.begin(), data.database.begin() + sentences);
  const PreprocessResult& pre = Preprocessed(
      "NYT-CLP-" + std::to_string(percent), sample, data.hierarchy);
  GsmParams params{.sigma = 100, .gamma = 0, .lambda = 5};
  for (auto _ : state) {
    AlgoResult result = RunLash(pre, params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig6a", "LASH", std::to_string(percent) + "%", result);
  }
  state.SetLabel(std::to_string(percent) + "%");
}

BENCHMARK(BM_LashDataScale)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
