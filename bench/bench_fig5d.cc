// Fig. 5(d): number of output sequences as a function of lambda (the runs
// of Fig. 5(c)). The paper observes output size and reduce time to be
// proportional.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

const PreprocessResult& Pre() {
  const GeneratedProducts& data = AmznData(8);
  return Preprocessed("AMZN-h8", data.database, data.hierarchy);
}

void BM_OutputSize(benchmark::State& state) {
  uint32_t lambda = static_cast<uint32_t>(state.range(0));
  GsmParams params{.sigma = 100, .gamma = 1, .lambda = lambda};
  for (auto _ : state) {
    AlgoResult result = RunLash(Pre(), params, DefaultJobConfig());
    SetCounters(state, result);
    std::printf("Fig5d    LASH        lambda=%u   outputs=%zu  reduce=%0.0fms\n",
                lambda, result.patterns.size(), result.job.times.reduce_ms);
    std::fflush(stdout);
  }
  state.SetLabel("lambda=" + std::to_string(lambda));
}

BENCHMARK(BM_OutputSize)->DenseRange(3, 7)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
