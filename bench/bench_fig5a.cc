// Fig. 5(a): effect of the minimum support sigma on LASH's map / shuffle /
// reduce times, on AMZN-h8 with gamma=1, lambda=5.
//
// Paper sweeps sigma in {10, 100, 1000, 10000} on 6.6M sessions; we sweep a
// proportionally scaled range. Expected shape: map time decreases mildly
// with sigma (the effective hierarchy depth shrinks), reduce time drops
// sharply (mining gets cheaper).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

const Frequency kSigmas[] = {25, 100, 400, 1600};

const PreprocessResult& Pre() {
  const GeneratedProducts& data = AmznData(8);
  return Preprocessed("AMZN-h8", data.database, data.hierarchy);
}

void BM_LashSupport(benchmark::State& state) {
  Frequency sigma = kSigmas[state.range(0)];
  GsmParams params{.sigma = sigma, .gamma = 1, .lambda = 5};
  for (auto _ : state) {
    AlgoResult result = RunLash(Pre(), params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig5a", "LASH", "sigma=" + std::to_string(sigma), result);
  }
  state.SetLabel("sigma=" + std::to_string(sigma));
}

BENCHMARK(BM_LashSupport)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
