// Fig. 4(d): search-space size — candidate sequences generated per output
// sequence for DFS vs PSM vs PSM+Index (same settings as Fig. 4(c)).
//
// Expected shape: PSM explores a small fraction of DFS's candidates
// (it never enumerates non-pivot sequences); the right-expansion index
// prunes up to another ~2x.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

struct Setting {
  TextHierarchy hierarchy;
  Frequency sigma;
  uint32_t lambda;
};

const Setting kSettings[] = {
    {TextHierarchy::kLP, 500, 5},
    {TextHierarchy::kLP, 100, 5},
    {TextHierarchy::kCLP, 100, 5},
    {TextHierarchy::kCLP, 100, 7},
};

std::string SettingName(const Setting& s) {
  return TextHierarchyName(s.hierarchy) + "(" + std::to_string(s.sigma) +
         ",0," + std::to_string(s.lambda) + ")";
}

const PreprocessResult& PreFor(const Setting& s) {
  const GeneratedText& data = NytData(s.hierarchy);
  return Preprocessed(TextHierarchyName(s.hierarchy), data.database,
                      data.hierarchy);
}

void RunMiner(benchmark::State& state, MinerKind kind, const char* name) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  LashOptions options;
  options.miner = kind;
  for (auto _ : state) {
    AlgoResult result = RunLash(PreFor(s), params, DefaultJobConfig(), options);
    SetCounters(state, result);
    state.counters["candidates"] =
        static_cast<double>(result.miner_stats.candidates);
    state.counters["cand_per_output"] = result.miner_stats.CandidatesPerOutput();
    std::printf("Fig4d    %-10s %-18s candidates=%12llu outputs=%10llu "
                "candidates/output=%8.2f\n",
                name, SettingName(s).c_str(),
                static_cast<unsigned long long>(result.miner_stats.candidates),
                static_cast<unsigned long long>(result.miner_stats.outputs),
                result.miner_stats.CandidatesPerOutput());
    std::fflush(stdout);
  }
  state.SetLabel(SettingName(s));
}

void BM_DFS(benchmark::State& state) { RunMiner(state, MinerKind::kDfs, "DFS"); }
void BM_PSM(benchmark::State& state) { RunMiner(state, MinerKind::kPsm, "PSM"); }
void BM_PSMIndex(benchmark::State& state) {
  RunMiner(state, MinerKind::kPsmIndex, "PSM+Index");
}

BENCHMARK(BM_DFS)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_PSM)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_PSMIndex)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

// Generates and preprocesses every dataset before timing starts, so the
// first series is not charged for warmup (allocator, page cache, datagen).
void Warmup() {
  for (const Setting& s : kSettings) PreFor(s);
}

}  // namespace
}  // namespace lash::bench

int main(int argc, char** argv) {
  lash::bench::Warmup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
