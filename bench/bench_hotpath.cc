// bench_hotpath — the perf gate for the mining hot path.
//
// Times the optimized PSM / PSM+Index miners against the preserved
// pre-optimization implementation (LegacyPsmMiner) on the NYT-like
// deep-hierarchy corpus and the AMZN-like product sessions, asserts exact
// PatternMap parity (including against the naive enumeration miner), times
// serial vs. parallel pivot mining, and writes the results as
// machine-readable JSON (BENCH_hotpath.json by default).
//
// Usage: bench_hotpath [--smoke] [--out FILE]
//   --smoke  small inputs (CI); naive parity covers every partition.
//   --out    output JSON path (default BENCH_hotpath.json).
//
// Exit code is non-zero if any parity check fails; the speedup numbers are
// reported, not gated, so a loaded machine cannot turn the bench red.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algo/sequential.h"
#include "core/rewrite.h"
#include "datagen/corpus_recipes.h"
#include "miner/miner.h"
#include "miner/psm.h"
#include "miner/psm_legacy.h"
#include "util/timer.h"

namespace lash {
namespace {

struct MinerResult {
  double ms = 0;
  size_t patterns = 0;
  PatternMap output;
};

struct WorkloadReport {
  std::string name;
  GsmParams params;
  size_t sequences = 0;
  size_t partitions = 0;
  size_t naive_checked_partitions = 0;
  bool naive_match = true;
  bool parity = true;
  std::map<std::string, MinerResult> miners;  // Keyed by miner name.
  double speedup_psm = 0;
  double speedup_psm_index = 0;
};

struct ParallelReport {
  std::string workload;
  size_t threads = 0;
  double serial_ms = 0;
  double parallel_ms = 0;
  bool match = true;
};

// The per-pivot partitions of a preprocessed database, materialized once so
// every miner times the same mining work (partitioning excluded). The new
// miners read the CSR-backed production Partition; the preserved legacy
// miners read the seed's owning vector-of-vectors form, materialized here
// outside any timed region, so each implementation is measured on exactly
// the storage layout it shipped with.
struct Partitions {
  std::vector<ItemId> pivots;
  std::vector<Partition> partitions;
  std::vector<LegacyPartition> legacy;
  size_t total_sequences = 0;
};

Partitions BuildPartitions(const PreprocessResult& pre,
                           const GsmParams& params) {
  // Uses the production partitioning helpers so the bench times mining on
  // exactly the partitions MineSequential would mine.
  Partitions out;
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));
  Rewriter rewriter(&pre.hierarchy, params.gamma, params.lambda);
  std::vector<std::vector<uint32_t>> tids_of_pivot =
      BuildPivotIndex(pre, num_frequent);
  for (ItemId pivot = 1; pivot <= num_frequent; ++pivot) {
    Partition partition =
        BuildPivotPartition(pre, rewriter, pivot, tids_of_pivot[pivot]);
    if (partition.size() == 0) continue;
    out.total_sequences += partition.size();
    out.pivots.push_back(pivot);
    out.legacy.push_back(MaterializeLegacyPartition(partition));
    out.partitions.push_back(std::move(partition));
  }
  return out;
}

MinerResult TimeMiner(LocalMiner& miner, const Partitions& parts) {
  MinerResult result;
  Stopwatch clock;
  for (size_t i = 0; i < parts.partitions.size(); ++i) {
    PatternMap mined =
        miner.Mine(parts.partitions[i], parts.pivots[i], /*stats=*/nullptr);
    result.output.merge(mined);
  }
  result.ms = clock.ElapsedMs();
  result.patterns = result.output.size();
  return result;
}

MinerResult TimeLegacyMiner(LegacyPsmMiner& miner, const Partitions& parts) {
  MinerResult result;
  Stopwatch clock;
  for (size_t i = 0; i < parts.legacy.size(); ++i) {
    PatternMap mined =
        miner.Mine(parts.legacy[i], parts.pivots[i], /*stats=*/nullptr);
    result.output.merge(mined);
  }
  result.ms = clock.ElapsedMs();
  result.patterns = result.output.size();
  return result;
}

bool SameOutput(const PatternMap& a, const PatternMap& b) {
  return SortedPatterns(a) == SortedPatterns(b);
}

WorkloadReport RunWorkload(const std::string& name,
                           const PreprocessResult& pre, const GsmParams& params,
                           size_t naive_partition_cap) {
  WorkloadReport report;
  report.name = name;
  report.params = params;
  report.sequences = pre.database.size();

  Partitions parts = BuildPartitions(pre, params);
  report.partitions = parts.partitions.size();

  LegacyPsmMiner legacy_psm(&pre.hierarchy, params, /*use_index=*/false);
  LegacyPsmMiner legacy_idx(&pre.hierarchy, params, /*use_index=*/true);
  PsmMiner psm(&pre.hierarchy, params, /*use_index=*/false);
  PsmMiner psm_idx(&pre.hierarchy, params, /*use_index=*/true);

  report.miners[legacy_psm.name()] = TimeLegacyMiner(legacy_psm, parts);
  report.miners[legacy_idx.name()] = TimeLegacyMiner(legacy_idx, parts);
  report.miners[psm.name()] = TimeMiner(psm, parts);
  report.miners[psm_idx.name()] = TimeMiner(psm_idx, parts);

  const PatternMap& reference = report.miners["PSM"].output;
  for (const auto& [mname, mresult] : report.miners) {
    if (!SameOutput(mresult.output, reference)) {
      std::fprintf(stderr, "PARITY FAILURE: %s disagrees with PSM on %s\n",
                   mname.c_str(), name.c_str());
      report.parity = false;
    }
  }

  // Naive-miner parity, partition by partition, on every partition up to
  // the cap (the naive miner is exponential; the cap keeps the check
  // tractable on the full-size corpus — coverage is reported, not hidden).
  auto naive = MakeLocalMiner(MinerKind::kNaive, &pre.hierarchy, params);
  PsmMiner checker(&pre.hierarchy, params, /*use_index=*/true);
  for (size_t i = 0; i < parts.partitions.size(); ++i) {
    if (parts.partitions[i].size() > naive_partition_cap) continue;
    ++report.naive_checked_partitions;
    PatternMap expected =
        naive->Mine(parts.partitions[i], parts.pivots[i], nullptr);
    PatternMap got = checker.Mine(parts.partitions[i], parts.pivots[i], nullptr);
    if (!SameOutput(expected, got)) {
      std::fprintf(stderr,
                   "PARITY FAILURE: PSM+Index disagrees with Naive on %s "
                   "pivot %u\n",
                   name.c_str(), parts.pivots[i]);
      report.naive_match = false;
    }
  }

  report.speedup_psm =
      report.miners["PSM-legacy"].ms / std::max(report.miners["PSM"].ms, 1e-9);
  report.speedup_psm_index = report.miners["PSM+Index-legacy"].ms /
                             std::max(report.miners["PSM+Index"].ms, 1e-9);

  std::printf("%-10s %6zu partitions  %8zu patterns\n", name.c_str(),
              report.partitions, report.miners["PSM"].patterns);
  for (const auto& [mname, mresult] : report.miners) {
    std::printf("  %-18s %10.1f ms\n", mname.c_str(), mresult.ms);
  }
  std::printf("  speedup: PSM %.2fx, PSM+Index %.2fx; naive parity on %zu "
              "partitions: %s\n",
              report.speedup_psm, report.speedup_psm_index,
              report.naive_checked_partitions,
              report.naive_match ? "ok" : "FAILED");
  std::fflush(stdout);
  return report;
}

ParallelReport RunParallel(const std::string& workload,
                           const PreprocessResult& pre,
                           const GsmParams& params) {
  ParallelReport report;
  report.workload = workload;
  report.threads = std::max<size_t>(1, std::thread::hardware_concurrency());

  Stopwatch clock;
  PatternMap serial = MineSequential(pre, params, MinerKind::kPsmIndex,
                                     /*stats=*/nullptr, /*num_threads=*/1);
  report.serial_ms = clock.ElapsedMs();

  clock.Restart();
  PatternMap parallel = MineSequential(pre, params, MinerKind::kPsmIndex,
                                       /*stats=*/nullptr, /*num_threads=*/0);
  report.parallel_ms = clock.ElapsedMs();

  report.match = SameOutput(serial, parallel);
  std::printf("parallel   %zu threads: serial %.1f ms, parallel %.1f ms "
              "(%.2fx), outputs %s\n",
              report.threads, report.serial_ms, report.parallel_ms,
              report.serial_ms / std::max(report.parallel_ms, 1e-9),
              report.match ? "identical" : "DIFFER");
  std::fflush(stdout);
  return report;
}

bool WriteJson(const std::string& path,
               const std::vector<WorkloadReport>& workloads,
               const ParallelReport& parallel, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"hotpath\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const WorkloadReport& w = workloads[i];
    std::fprintf(f,
                 "    {\n      \"name\": \"%s\",\n      \"sigma\": %" PRIu64
                 ",\n      \"gamma\": %u,\n      \"lambda\": %u,\n"
                 "      \"sequences\": %zu,\n      \"partitions\": %zu,\n",
                 w.name.c_str(), w.params.sigma, w.params.gamma,
                 w.params.lambda, w.sequences, w.partitions);
    std::fprintf(f, "      \"miners\": {\n");
    size_t k = 0;
    for (const auto& [mname, mresult] : w.miners) {
      std::fprintf(f, "        \"%s\": {\"ms\": %.3f, \"patterns\": %zu}%s\n",
                   mname.c_str(), mresult.ms, mresult.patterns,
                   ++k < w.miners.size() ? "," : "");
    }
    std::fprintf(f, "      },\n");
    std::fprintf(f,
                 "      \"speedup_psm\": %.3f,\n"
                 "      \"speedup_psm_index\": %.3f,\n"
                 "      \"naive_checked_partitions\": %zu,\n"
                 "      \"naive_match\": %s,\n      \"parity\": %s\n    }%s\n",
                 w.speedup_psm, w.speedup_psm_index,
                 w.naive_checked_partitions, w.naive_match ? "true" : "false",
                 w.parity ? "true" : "false",
                 i + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"parallel\": {\"workload\": \"%s\", \"threads\": %zu, "
               "\"serial_ms\": %.3f, \"parallel_ms\": %.3f, \"match\": %s}\n",
               parallel.workload.c_str(), parallel.threads, parallel.serial_ms,
               parallel.parallel_ms, parallel.match ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  // NYT-like corpus recipe (datagen/corpus_recipes.h) over the deepest
  // hierarchy (word→case→lemma→POS): every token carries a 4-item ancestor
  // chain, the worst case for the pointer-walking baseline. This gate
  // downsizes the full recipe to 8k sentences (the legacy miners are slow).
  NytRecipe nyt_recipe;
  nyt_recipe.sentences = smoke ? 1500 : 8000;
  if (smoke) nyt_recipe.lemmas = 800;
  GeneratedText text = MakeNytCorpus(nyt_recipe);
  PreprocessResult nyt = Preprocess(text.database, text.hierarchy);

  // AMZN-like sessions with a deep category tree.
  AmznRecipe amzn_recipe;
  if (smoke) {
    amzn_recipe.sessions = 3000;
    amzn_recipe.products = 1500;
  }
  GeneratedProducts products = MakeAmznCorpus(amzn_recipe);
  PreprocessResult amzn = Preprocess(products.database, products.hierarchy);

  GsmParams nyt_params{.sigma = smoke ? Frequency{8} : Frequency{40},
                       .gamma = 1,
                       .lambda = 5};
  GsmParams amzn_params{.sigma = smoke ? Frequency{6} : Frequency{20},
                        .gamma = 0,
                        .lambda = 5};
  const size_t naive_cap = smoke ? SIZE_MAX : 150;

  std::vector<WorkloadReport> workloads;
  workloads.push_back(RunWorkload("nyt-clp", nyt, nyt_params, naive_cap));
  workloads.push_back(RunWorkload("amzn-h8", amzn, amzn_params, naive_cap));
  ParallelReport parallel = RunParallel("nyt-clp", nyt, nyt_params);

  bool ok = WriteJson(out, workloads, parallel, smoke);
  ok = ok && parallel.match;
  for (const WorkloadReport& w : workloads) ok = ok && w.parity && w.naive_match;
  if (!ok) {
    std::fprintf(stderr, "bench_hotpath: PARITY CHECKS FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lash

int main(int argc, char** argv) { return lash::Main(argc, argv); }
