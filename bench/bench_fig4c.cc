// Fig. 4(c): local mining time of BFS vs DFS vs PSM vs PSM+Index inside
// LASH's reduce phase, on the NYT-like corpus.
//
// Paper settings: LP(1000,0,5), LP(100,0,5), CLP(100,0,5), CLP(100,0,7).
// Expected shape: PSM ~9-22x faster than BFS and 2.5-3.5x faster than DFS;
// indexing helps on the harder settings (BFS ran out of memory at
// CLP(100,0,7) in the paper).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

struct Setting {
  TextHierarchy hierarchy;
  Frequency sigma;
  uint32_t lambda;
};

const Setting kSettings[] = {
    {TextHierarchy::kLP, 500, 5},
    {TextHierarchy::kLP, 100, 5},
    {TextHierarchy::kCLP, 100, 5},
    {TextHierarchy::kCLP, 100, 7},
};

std::string SettingName(const Setting& s) {
  return TextHierarchyName(s.hierarchy) + "(" + std::to_string(s.sigma) +
         ",0," + std::to_string(s.lambda) + ")";
}

const PreprocessResult& PreFor(const Setting& s) {
  const GeneratedText& data = NytData(s.hierarchy);
  return Preprocessed(TextHierarchyName(s.hierarchy), data.database,
                      data.hierarchy);
}

void RunMiner(benchmark::State& state, MinerKind kind, const char* name) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  LashOptions options;
  options.miner = kind;
  for (auto _ : state) {
    AlgoResult result = RunLash(PreFor(s), params, DefaultJobConfig(), options);
    SetCounters(state, result);
    // "Mining time" = reduce phase time (Sec. 6.3 measures the reduce side).
    state.counters["mining_ms"] = result.job.times.reduce_ms;
    PrintRow("Fig4c", name, SettingName(s), result);
  }
  state.SetLabel(SettingName(s));
}

void BM_BFS(benchmark::State& state) { RunMiner(state, MinerKind::kBfs, "BFS"); }
void BM_DFS(benchmark::State& state) { RunMiner(state, MinerKind::kDfs, "DFS"); }
void BM_PSM(benchmark::State& state) { RunMiner(state, MinerKind::kPsm, "PSM"); }
void BM_PSMIndex(benchmark::State& state) {
  RunMiner(state, MinerKind::kPsmIndex, "PSM+Index");
}

BENCHMARK(BM_BFS)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_DFS)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_PSM)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_PSMIndex)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

// Generates and preprocesses every dataset before timing starts, so the
// first series is not charged for warmup (allocator, page cache, datagen).
void Warmup() {
  for (const Setting& s : kSettings) PreFor(s);
}

}  // namespace
}  // namespace lash::bench

int main(int argc, char** argv) {
  lash::bench::Warmup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
