// Fig. 4(a): total runtime of naive vs semi-naive vs LASH for generalized
// n-gram mining (gamma = 0) on the NYT-like corpus.
//
// Paper settings: P(1000,0,3), P(100,0,3), P(100,0,5), CLP(100,0,5); the
// baselines were aborted after 12 hours on NYT-CLP. We scale support to the
// smaller corpus and realize the abort as an intermediate-record cap.
// Expected shape: LASH ~10x faster on the P settings and the only finisher
// on CLP.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

struct Setting {
  TextHierarchy hierarchy;
  Frequency sigma;
  uint32_t lambda;
};

const Setting kSettings[] = {
    {TextHierarchy::kP, 500, 3},
    {TextHierarchy::kP, 100, 3},
    {TextHierarchy::kP, 100, 5},
    {TextHierarchy::kCLP, 100, 5},
};

const BaselineLimits kLimits{.max_emitted_records = 20'000'000};

std::string SettingName(const Setting& s) {
  return TextHierarchyName(s.hierarchy) + "(" + std::to_string(s.sigma) +
         ",0," + std::to_string(s.lambda) + ")";
}

const PreprocessResult& PreFor(const Setting& s) {
  const GeneratedText& data = NytData(s.hierarchy);
  return Preprocessed(TextHierarchyName(s.hierarchy), data.database,
                      data.hierarchy);
}

void BM_Naive(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  for (auto _ : state) {
    AlgoResult result = RunNaiveGsm(PreFor(s), params, DefaultJobConfig(),
                                    kLimits);
    SetCounters(state, result);
    PrintRow("Fig4a", "naive", SettingName(s), result);
  }
  state.SetLabel(SettingName(s));
}

void BM_SemiNaive(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  for (auto _ : state) {
    AlgoResult result = RunSemiNaiveGsm(PreFor(s), params, DefaultJobConfig(),
                                        kLimits);
    SetCounters(state, result);
    PrintRow("Fig4a", "semi-naive", SettingName(s), result);
  }
  state.SetLabel(SettingName(s));
}

void BM_Lash(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  for (auto _ : state) {
    AlgoResult result = RunLash(PreFor(s), params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig4a", "LASH", SettingName(s), result);
  }
  state.SetLabel(SettingName(s));
}

BENCHMARK(BM_Naive)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SemiNaive)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Lash)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

// Generates and preprocesses every dataset before timing starts, so the
// first series is not charged for warmup (allocator, page cache, datagen).
void Warmup() {
  for (const Setting& s : kSettings) PreFor(s);
}

}  // namespace
}  // namespace lash::bench

int main(int argc, char** argv) {
  lash::bench::Warmup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
