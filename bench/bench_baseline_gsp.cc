// The classic alternative the paper argues against (Sec. 1 / Sec. 7):
// hierarchy-as-itemsets "extended sequences" mined with level-wise GSP
// [Srikant & Agrawal 96], versus LASH's sequential pipeline on the same
// data. Both are single-node here (no MapReduce), isolating the algorithmic
// difference.
//
// Expected shape: GSP pays the delta-fold database inflation and one full
// scan per level; LASH's item-based partitioning + PSM wins, with the gap
// widening on deeper hierarchies.

#include <benchmark/benchmark.h>

#include "algo/gsp.h"
#include "algo/sequential.h"
#include "bench_common.h"
#include "util/timer.h"

namespace lash::bench {
namespace {

struct Setting {
  TextHierarchy hierarchy;
  Frequency sigma;
  uint32_t lambda;
};

const Setting kSettings[] = {
    {TextHierarchy::kP, 100, 5},
    {TextHierarchy::kCLP, 100, 5},
};

std::string SettingName(const Setting& s) {
  return TextHierarchyName(s.hierarchy) + "(" + std::to_string(s.sigma) +
         ",0," + std::to_string(s.lambda) + ")";
}

const PreprocessResult& PreFor(const Setting& s) {
  const GeneratedText& data = NytData(s.hierarchy);
  return Preprocessed(TextHierarchyName(s.hierarchy), data.database,
                      data.hierarchy);
}

void BM_GspExtended(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  for (auto _ : state) {
    GspStats stats;
    Stopwatch clock;
    PatternMap mined = RunGspExtended(PreFor(s), params, &stats);
    double ms = clock.ElapsedMs();
    state.counters["total_ms"] = ms;
    state.counters["outputs"] = static_cast<double>(mined.size());
    state.counters["candidates"] = static_cast<double>(stats.candidates);
    std::printf("GSPbase  GSP-extended %-18s total=%8.0fms outputs=%8zu "
                "candidates=%12llu scans=%llu\n",
                SettingName(s).c_str(), ms, mined.size(),
                static_cast<unsigned long long>(stats.candidates),
                static_cast<unsigned long long>(stats.database_scans));
    std::fflush(stdout);
  }
  state.SetLabel(SettingName(s));
}

void BM_LashSequential(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  for (auto _ : state) {
    MinerStats stats;
    Stopwatch clock;
    PatternMap mined =
        MineSequential(PreFor(s), params, MinerKind::kPsmIndex, &stats);
    double ms = clock.ElapsedMs();
    state.counters["total_ms"] = ms;
    state.counters["outputs"] = static_cast<double>(mined.size());
    state.counters["candidates"] = static_cast<double>(stats.candidates);
    std::printf("GSPbase  LASH-seq     %-18s total=%8.0fms outputs=%8zu "
                "candidates=%12llu\n",
                SettingName(s).c_str(), ms, mined.size(),
                static_cast<unsigned long long>(stats.candidates));
    std::fflush(stdout);
  }
  state.SetLabel(SettingName(s));
}

BENCHMARK(BM_GspExtended)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LashSequential)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(1);

// Pre-generate datasets outside the timed region.
void Warmup() {
  for (const Setting& s : kSettings) PreFor(s);
}

}  // namespace
}  // namespace lash::bench

int main(int argc, char** argv) {
  lash::bench::Warmup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
