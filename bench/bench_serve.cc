// bench_serve — the perf gate for the serving layer (serve/).
//
// Replays a mixed query workload (repeated queries, top-k variants,
// multiple algorithms incl. a flat MG-FSM query) against one shared Dataset
// two ways:
//   * naive: a loop of fresh MiningTask::Run per request — what every
//     caller did before the serving layer existed;
//   * service: SubmitBatch through lash::serve::MiningService (admission
//     executor + result cache + coalescing), then a second sequential wave
//     of the same stream that is answered entirely from the cache.
// Asserts byte-identical patterns between the naive loop and *every*
// service response (hit, miss, and coalesced paths), and writes
// BENCH_serve.json. Also runs the storage-layer gates: text parse vs
// snapshot load, the copying vs mmap snapshot load modes (time, per-process
// RSS in forked children, cold first query), and copy/mmap mining parity.
// Speedups are reported, not gated — except in full-size mode: cache hits
// >= 5x cold runs, snapshot load >= 5x text load, mmap load >= 10x copy
// load, and the mapped load must save ~a corpus worth of resident memory.
//
// Usage: bench_serve [--smoke] [--out FILE]
//   --smoke  small corpus (CI gate).
//   --out    output JSON path (default BENCH_serve.json).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define LASH_BENCH_FORK 1
#endif

#include <set>

#include "api/lash_api.h"
#include "datagen/corpus_recipes.h"
#include "io/text_io.h"
#include "obs/trace.h"
#include "serve/mining_service.h"
#include "serve/task_spec.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/timer.h"

namespace lash {
namespace {

/// Current resident set in bytes from /proc/self/status (0 where absent,
/// e.g. non-Linux).
uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t rss = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss = std::strtoull(line + 6, nullptr, 10) * 1024;
      break;
    }
  }
  std::fclose(f);
  return rss;
}

/// What one fresh process measures for one load mode: load time, the RSS
/// the *load alone* added (before any query faults corpus pages in), and
/// the first-query latency.
struct ChildReport {
  double load_ms = 0;
  double first_query_ms = 0;
  uint64_t rss_delta_bytes = 0;
  uint64_t pattern_count = 0;
  int32_t valid = 0;
};

/// Forks a child that loads the snapshot in `mode`, measures load time,
/// load-only RSS delta, and a cold first query (threads=1), and reports
/// over a pipe. A separate process is the honest way to measure both the
/// per-process memory bill of each load mode and a truly cold first query
/// (the parent has every structure warm). Returns an all-zero report where
/// fork is unavailable.
ChildReport MeasureLoadInChild(const std::string& snap_path,
                               Dataset::LoadMode mode, Frequency sigma) {
#ifdef LASH_BENCH_FORK
  int fds[2];
  if (pipe(fds) != 0) return {};
  const pid_t pid = fork();
  if (pid == 0) {
    close(fds[0]);
    ChildReport report;
    try {
      const uint64_t rss_before = CurrentRssBytes();
      Stopwatch load_clock;
      Dataset ds = Dataset::FromSnapshot(snap_path, mode);
      report.load_ms = load_clock.ElapsedMs();
      report.rss_delta_bytes = CurrentRssBytes() - rss_before;
      Stopwatch query_clock;
      PatternMap patterns = MiningTask(ds)
                                .WithSigma(sigma)
                                .WithGamma(0)
                                .WithLambda(5)
                                .WithThreads(1)
                                .Mine();
      report.first_query_ms = query_clock.ElapsedMs();
      report.pattern_count = patterns.size();
      report.valid = 1;
    } catch (...) {
      report.valid = 0;
    }
    const ssize_t ignored = write(fds[1], &report, sizeof report);
    (void)ignored;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  ChildReport report;
  const ssize_t got = read(fds[0], &report, sizeof report);
  close(fds[0]);
  int status = 0;
  if (pid > 0) waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof report) || report.valid != 1) {
    return {};
  }
  return report;
#else
  (void)snap_path;
  (void)mode;
  (void)sigma;
  return {};
#endif
}

using serve::MiningService;
using serve::PendingResult;
using serve::Response;
using serve::ServiceOptions;
using serve::ServiceStats;
using serve::TaskSpec;

std::vector<TaskSpec> MixedWorkload(bool smoke, size_t* num_distinct) {
  const Frequency sigma = smoke ? 8 : 40;
  // Each distinct query carries its own Zipf-ish repeat count (the hot
  // query dominates, like a production mix).
  std::vector<std::pair<TaskSpec, size_t>> distinct;
  auto add = [&](Algorithm algorithm, Frequency s, uint32_t gamma,
                 uint32_t lambda, size_t top_k, size_t repeats) {
    TaskSpec spec;
    spec.algorithm = algorithm;
    spec.params = {.sigma = s, .gamma = gamma, .lambda = lambda};
    spec.top_k = top_k;
    distinct.emplace_back(spec, repeats);
  };
  add(Algorithm::kSequential, sigma, 0, 5, 0, 15);      // The hot query.
  add(Algorithm::kSequential, sigma, 0, 5, 10, 8);      // Its top-k variant.
  add(Algorithm::kSequential, sigma * 2, 0, 5, 0, 6);   // Tighter support.
  add(Algorithm::kSequential, sigma, 1, 4, 0, 5);       // Gappy variant.
  add(Algorithm::kLash, sigma, 0, 5, 0, 5);             // Distributed engine.
  add(Algorithm::kMgFsm, sigma, 0, 5, 0, 5);            // Flat baseline.
  *num_distinct = distinct.size();

  // Deterministically shuffled repetition stream.
  std::vector<TaskSpec> stream;
  for (const auto& [spec, repeats] : distinct) {
    for (size_t r = 0; r < repeats; ++r) stream.push_back(spec);
  }
  Rng rng(1234);
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.Uniform(i)]);
  }
  return stream;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  // The NYT-like corpus recipe of the other two gates, deepest hierarchy
  // (datagen/corpus_recipes.h).
  NytRecipe recipe;
  if (smoke) {
    recipe.sentences = 1500;
    recipe.lemmas = 800;
  }
  GeneratedText data = MakeNytCorpus(recipe);

  // --- Storage-layer gate: text parse + preprocess vs snapshot load. ---
  // The corpus is round-tripped through the text files a deployment would
  // start from, then through the one-file snapshot; the snapshot must make
  // startup >= 5x faster on the full-size corpus (it skips parsing AND the
  // whole preprocessing phase).
  //
  // Load economics run on a dedicated corpus, 6x the serve workload's:
  // copy-load cost scales with corpus bytes while the mapped load's eager
  // work is O(vocabulary) (the lemma pool is fixed, so the vocabulary stays
  // put as sentences grow) — a realistically sized file is what separates
  // the two modes, and it keeps the mining waves below on the smaller
  // corpus where their runtime is bounded.
  NytRecipe storage_recipe = recipe;
  if (!smoke) storage_recipe.sentences = 240000;
  GeneratedText storage_data = MakeNytCorpus(storage_recipe);
  const std::string seq_path = "bench_serve.sequences.txt";
  const std::string hier_path = "bench_serve.hierarchy.tsv";
  const std::string snap_path = "bench_serve.snapshot.lash";
  {
    std::ofstream seq_file(seq_path);
    std::ofstream hier_file(hier_path);
    WriteDatabase(seq_file, storage_data.database, storage_data.vocabulary);
    WriteHierarchy(hier_file, storage_data.vocabulary);
  }
  Stopwatch text_clock;
  Dataset text_loaded = Dataset::FromFiles(seq_path, hier_path);
  const double text_load_ms = text_clock.ElapsedMs();
  Stopwatch save_clock;
  text_loaded.Save(snap_path);
  const double snapshot_save_ms = save_clock.ElapsedMs();
  Stopwatch snap_clock;
  Dataset snap_loaded = Dataset::FromSnapshot(snap_path);
  const double snapshot_load_ms = snap_clock.ElapsedMs();
  const double snapshot_speedup =
      text_load_ms / std::max(snapshot_load_ms, 1e-9);
  Stopwatch mmap_clock;
  Dataset mmap_loaded =
      Dataset::FromSnapshot(snap_path, Dataset::LoadMode::kMmap);
  const double snapshot_mmap_load_ms = mmap_clock.ElapsedMs();
  const double mmap_speedup_vs_copy =
      snapshot_load_ms / std::max(snapshot_mmap_load_ms, 1e-9);
  // The deferred corpus checksums + structural checks, run on demand.
  Stopwatch verify_clock;
  mmap_loaded.VerifyCorpus();
  const double verify_corpus_ms = verify_clock.ElapsedMs();

  // Restoring a snapshot must reproduce the exact preprocessing it saved.
  const bool snapshot_parity =
      snap_loaded.preprocessed().database == text_loaded.preprocessed().database &&
      snap_loaded.preprocessed().freq == text_loaded.preprocessed().freq &&
      snap_loaded.stats() == text_loaded.stats() &&
      snap_loaded.load_times().preprocess_ms == 0;
  if (!snapshot_parity) {
    std::fprintf(stderr, "SNAPSHOT PARITY FAILURE: FromSnapshot(Save(d)) "
                         "disagrees with the text-loaded dataset\n");
  }
  // ...and the zero-copy load must be indistinguishable from the copying
  // one: same preprocessing, byte-identical patterns for the hot query.
  // Support scaled to the storage corpus (0.5% relative, vs the serve
  // workload's 0.2%): enough patterns for a meaningful parity check
  // without the cold queries dominating the bench's runtime.
  const Frequency hot_sigma = smoke ? 8 : 1200;
  auto mine_hot = [&](const Dataset& ds) {
    return SortedPatterns(MiningTask(ds)
                              .WithSigma(hot_sigma)
                              .WithGamma(0)
                              .WithLambda(5)
                              .WithThreads(1)
                              .Mine());
  };
  const bool load_mode_parity =
      mmap_loaded.preprocessed().database == snap_loaded.preprocessed().database &&
      mmap_loaded.preprocessed().freq == snap_loaded.preprocessed().freq &&
      mmap_loaded.stats() == snap_loaded.stats() &&
      mine_hot(mmap_loaded) == mine_hot(snap_loaded) &&
      mine_hot(mmap_loaded) == mine_hot(text_loaded);
  if (!load_mode_parity) {
    std::fprintf(stderr, "LOAD MODE PARITY FAILURE: kMmap and kCopy loads "
                         "of one snapshot disagree\n");
  }

  // Per-process memory + cold-start economics, measured in fresh forked
  // children (one per mode) so each pays its own page bill: RSS delta of
  // the load alone, plus a genuinely cold first query.
  const uint64_t corpus_bytes =
      text_loaded.preprocessed().database.TotalItems() * sizeof(ItemId) +
      (text_loaded.preprocessed().database.size() + 1) * sizeof(uint64_t);
  const ChildReport copy_child =
      MeasureLoadInChild(snap_path, Dataset::LoadMode::kCopy, hot_sigma);
  const ChildReport mmap_child =
      MeasureLoadInChild(snap_path, Dataset::LoadMode::kMmap, hot_sigma);
  const uint64_t second_process_rss = mmap_child.rss_delta_bytes;
  const double second_process_rss_fraction =
      corpus_bytes == 0
          ? 0.0
          : static_cast<double>(second_process_rss) /
                static_cast<double>(corpus_bytes);

  std::printf("storage    : text load %.1fms, snapshot save %.1fms, "
              "copy load %.1fms (%.1fx vs text), mmap load %.2fms "
              "(%.1fx vs copy), verify %.1fms, parity %s/%s\n",
              text_load_ms, snapshot_save_ms, snapshot_load_ms,
              snapshot_speedup, snapshot_mmap_load_ms, mmap_speedup_vs_copy,
              verify_corpus_ms, snapshot_parity ? "ok" : "FAILED",
              load_mode_parity ? "ok" : "FAILED");
  std::printf("cold start : copy load %.1fms rss +%.2fMB query %.1fms | "
              "mmap load %.2fms rss +%.2fMB query %.1fms | corpus %.2fMB "
              "(mmap rss %.0f%% of corpus)\n",
              copy_child.load_ms,
              static_cast<double>(copy_child.rss_delta_bytes) / 1048576.0,
              copy_child.first_query_ms, mmap_child.load_ms,
              static_cast<double>(mmap_child.rss_delta_bytes) / 1048576.0,
              mmap_child.first_query_ms,
              static_cast<double>(corpus_bytes) / 1048576.0,
              100.0 * second_process_rss_fraction);
  std::remove(seq_path.c_str());
  std::remove(hier_path.c_str());
  std::remove(snap_path.c_str());

  Dataset dataset = Dataset::FromMemory(std::move(data.database),
                                        std::move(data.vocabulary),
                                        std::move(data.hierarchy));
  std::printf("corpus: %zu sequences, %zu items\n", dataset.NumSequences(),
              dataset.NumItems());

  size_t num_distinct = 0;
  std::vector<TaskSpec> stream = MixedWorkload(smoke, &num_distinct);

  // Naive loop: every request pays a full fresh run (per-request times are
  // the cold-run baseline the cache-hit gate compares against).
  std::vector<PatternMap> naive_outputs;
  naive_outputs.reserve(stream.size());
  std::vector<double> naive_ms;
  naive_ms.reserve(stream.size());
  Stopwatch naive_total;
  for (const TaskSpec& spec : stream) {
    Stopwatch one;
    naive_outputs.push_back(serve::MakeTask(dataset, spec).Mine());
    naive_ms.push_back(one.ElapsedMs());
  }
  const double naive_total_ms = naive_total.ElapsedMs();
  const double cold_avg_ms =
      std::accumulate(naive_ms.begin(), naive_ms.end(), 0.0) /
      static_cast<double>(naive_ms.size());

  // Service, wave 1: the whole stream fanned out as a batch — repeats of an
  // in-flight query coalesce, finished ones hit the cache.
  ServiceOptions options;
  options.queue_capacity = stream.size();
  MiningService service(dataset, options);
  Stopwatch service_total;
  std::vector<PendingResult> wave1 = service.SubmitBatch(stream);
  for (PendingResult& r : wave1) r.Wait();
  const double service_total_ms = service_total.ElapsedMs();

  // Wave 2: the same stream again, sequentially — every request must now be
  // answered from the cache without mining.
  std::vector<double> hit_ms;
  hit_ms.reserve(stream.size());
  bool all_hits = true;
  Stopwatch wave2_total;
  std::vector<PendingResult> wave2;
  wave2.reserve(stream.size());
  for (const TaskSpec& spec : stream) wave2.push_back(service.Submit(spec));
  for (PendingResult& r : wave2) {
    const Response& response = r.Get();
    all_hits = all_hits && response.cache_hit;
    hit_ms.push_back(response.latency_ms);
  }
  const double wave2_total_ms = wave2_total.ElapsedMs();
  const double hit_avg_ms =
      std::accumulate(hit_ms.begin(), hit_ms.end(), 0.0) /
      static_cast<double>(hit_ms.size());

  // Parity: every service response (miss, coalesced, and hit) must be
  // byte-identical to the naive run of the same request.
  bool parity = true;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (SortedPatterns(wave1[i].Get().patterns()) !=
            SortedPatterns(naive_outputs[i]) ||
        SortedPatterns(wave2[i].Get().patterns()) !=
            SortedPatterns(naive_outputs[i])) {
      std::fprintf(stderr, "PARITY FAILURE at request %zu\n", i);
      parity = false;
    }
  }
  if (!all_hits) {
    std::fprintf(stderr, "CACHE FAILURE: wave 2 was not served end-to-end "
                         "from the cache\n");
  }

  const ServiceStats stats = service.Stats();
  const double speedup_total =
      naive_total_ms / std::max(service_total_ms + wave2_total_ms, 1e-9);
  const double hit_speedup = cold_avg_ms / std::max(hit_avg_ms, 1e-9);

  // --- Instrumentation overhead (PR 9): the same all-cold wave of the
  // distinct queries, untraced vs traced-to-JSONL, each on a fresh service
  // (fresh cache, so both waves mine everything). Tracing is the only
  // per-request observability toggle — metrics recording is unconditional
  // and is therefore priced into every number above — so this measures the
  // full spans-on cost: id minting, span records, the JSONL writes.
  std::vector<TaskSpec> distinct_stream;
  {
    std::set<std::string> seen;
    for (const TaskSpec& spec : stream) {
      if (seen.insert(serve::EncodeCacheKey(0, spec)).second) {
        distinct_stream.push_back(spec);
      }
    }
  }
  auto cold_wave_ms = [&](bool traced) {
    MiningService cold_service(dataset);
    Stopwatch clock;
    std::vector<PendingResult> wave;
    wave.reserve(distinct_stream.size());
    for (TaskSpec spec : distinct_stream) {
      if (traced) spec.trace = obs::TraceContext{obs::TraceId::Make(), 0};
      wave.push_back(cold_service.Submit(spec));
    }
    for (PendingResult& r : wave) r.Wait();
    return clock.ElapsedMs();
  };
  // Untraced first: any residual warm-up (page cache, allocator) favors
  // the traced wave, biasing the overhead estimate up, not down.
  const double untraced_cold_ms = cold_wave_ms(false);
  const std::string trace_path = "bench_serve.trace.jsonl";
  obs::Tracer::Global().OpenFile(trace_path);
  const double traced_cold_ms = cold_wave_ms(true);
  obs::Tracer::Global().CloseFile();
  std::remove(trace_path.c_str());
  const double trace_overhead_pct =
      100.0 * (traced_cold_ms - untraced_cold_ms) /
      std::max(untraced_cold_ms, 1e-9);

  std::printf("workload: %zu requests over %zu distinct queries\n",
              stream.size(), num_distinct);
  std::printf("naive loop : total=%8.1fms  cold_avg=%7.2fms\n", naive_total_ms,
              cold_avg_ms);
  std::printf("service    : wave1=%8.1fms  wave2=%7.1fms  (both waves %.2fx "
              "vs naive)\n",
              service_total_ms, wave2_total_ms, speedup_total);
  std::printf("cache      : hits=%" PRIu64 " misses=%" PRIu64
              " coalesced=%" PRIu64 " executions=%" PRIu64 "\n",
              stats.hits, stats.misses, stats.coalesced, stats.executions);
  std::printf("latency    : hit avg=%.4fms p95=%.4fms | mine p50=%.1fms "
              "p95=%.1fms | hit speedup %.0fx\n",
              hit_avg_ms, stats.hit_p95_ms, stats.mine_p50_ms,
              stats.mine_p95_ms, hit_speedup);
  std::printf("tracing    : cold wave untraced=%.1fms traced=%.1fms "
              "(overhead %+.2f%%)\n",
              untraced_cold_ms, traced_cold_ms, trace_overhead_pct);
  std::fflush(stdout);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"serve\",\n  \"smoke\": %s,\n"
      "  \"requests\": %zu,\n  \"distinct_queries\": %zu,\n"
      "  \"sequences\": %zu,\n"
      "  \"naive_total_ms\": %.3f,\n  \"service_wave1_ms\": %.3f,\n"
      "  \"service_wave2_ms\": %.3f,\n  \"speedup_total\": %.3f,\n"
      "  \"cold_avg_ms\": %.3f,\n  \"hit_avg_ms\": %.5f,\n"
      "  \"hit_p95_ms\": %.5f,\n  \"hit_speedup\": %.1f,\n"
      "  \"hits\": %" PRIu64 ",\n  \"misses\": %" PRIu64 ",\n"
      "  \"coalesced\": %" PRIu64 ",\n  \"executions\": %" PRIu64 ",\n"
      "  \"text_load_ms\": %.3f,\n  \"snapshot_save_ms\": %.3f,\n"
      "  \"snapshot_load_ms\": %.3f,\n  \"snapshot_speedup\": %.2f,\n"
      "  \"snapshot_mmap_load_ms\": %.3f,\n"
      "  \"mmap_speedup_vs_copy\": %.2f,\n"
      "  \"verify_corpus_ms\": %.3f,\n"
      "  \"first_query_copy_ms\": %.3f,\n"
      "  \"first_query_mmap_ms\": %.3f,\n"
      "  \"copy_rss_delta_bytes\": %" PRIu64 ",\n"
      "  \"mmap_rss_delta_bytes\": %" PRIu64 ",\n"
      "  \"second_process_rss_bytes\": %" PRIu64 ",\n"
      "  \"second_process_rss_fraction\": %.4f,\n"
      "  \"corpus_bytes\": %" PRIu64 ",\n"
      "  \"untraced_cold_ms\": %.3f,\n  \"traced_cold_ms\": %.3f,\n"
      "  \"trace_overhead_pct\": %.3f,\n"
      "  \"snapshot_parity\": %s,\n  \"load_mode_parity\": %s,\n"
      "  \"wave2_all_hits\": %s,\n  \"parity\": %s\n}\n",
      smoke ? "true" : "false", stream.size(), num_distinct,
      dataset.NumSequences(), naive_total_ms, service_total_ms,
      wave2_total_ms, speedup_total, cold_avg_ms, hit_avg_ms, stats.hit_p95_ms,
      hit_speedup, stats.hits, stats.misses, stats.coalesced, stats.executions,
      text_load_ms, snapshot_save_ms, snapshot_load_ms, snapshot_speedup,
      snapshot_mmap_load_ms, mmap_speedup_vs_copy, verify_corpus_ms,
      copy_child.first_query_ms, mmap_child.first_query_ms,
      copy_child.rss_delta_bytes, mmap_child.rss_delta_bytes,
      second_process_rss, second_process_rss_fraction, corpus_bytes,
      untraced_cold_ms, traced_cold_ms, trace_overhead_pct,
      snapshot_parity ? "true" : "false", load_mode_parity ? "true" : "false",
      all_hits ? "true" : "false", parity ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  bool ok = parity && all_hits && snapshot_parity && load_mode_parity;
  // Full-size only: the acceptance economics. Smoke runs on loaded CI
  // machines still assert correctness above, never wall-clock ratios.
  if (!smoke && hit_speedup < 5.0) {
    std::fprintf(stderr,
                 "HIT ECONOMICS FAILURE: cache hits only %.1fx faster than "
                 "cold runs (gate: 5x)\n",
                 hit_speedup);
    ok = false;
  }
  if (!smoke && snapshot_speedup < 5.0) {
    std::fprintf(stderr,
                 "SNAPSHOT ECONOMICS FAILURE: snapshot load only %.1fx "
                 "faster than text parse + preprocess (gate: 5x)\n",
                 snapshot_speedup);
    ok = false;
  }
  // Observability acceptance (PR 9): tracing every request of a cold
  // mining wave may cost at most 5% — spans are microseconds against
  // mining runs of milliseconds-to-seconds. Full-size only; a loaded CI
  // machine's noise between two identical waves can exceed this.
  if (!smoke && trace_overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "TRACE OVERHEAD FAILURE: traced cold wave %.2f%% slower "
                 "than untraced (gate: 5%%)\n",
                 trace_overhead_pct);
    ok = false;
  }
  if (!smoke && mmap_speedup_vs_copy < 10.0) {
    std::fprintf(stderr,
                 "MMAP ECONOMICS FAILURE: mmap load only %.1fx faster than "
                 "the copying load (gate: 10x)\n",
                 mmap_speedup_vs_copy);
    ok = false;
  }
  // RSS gate (where the fork measurement ran): the copying load must cost
  // at least ~the corpus in extra resident memory relative to mmap — i.e.
  // the mapped load's per-process bill is smaller by a corpus-sized
  // amount. Gated on the *difference* (both children share vocab-index
  // and allocator overhead, which would make an absolute fraction flaky
  // on small corpora); the absolute fraction is reported above.
  if (!smoke && copy_child.valid == 1 && mmap_child.valid == 1 &&
      corpus_bytes > 0) {
    const double saved =
        static_cast<double>(copy_child.rss_delta_bytes) -
        static_cast<double>(mmap_child.rss_delta_bytes);
    if (saved < 0.5 * static_cast<double>(corpus_bytes)) {
      std::fprintf(stderr,
                   "MMAP RSS FAILURE: mapped load saves only %.2fMB of "
                   "resident memory vs copy (gate: 0.5x corpus = %.2fMB)\n",
                   saved / 1048576.0,
                   0.5 * static_cast<double>(corpus_bytes) / 1048576.0);
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "bench_serve: CHECKS FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lash

int main(int argc, char** argv) { return lash::Main(argc, argv); }
