// Table 3: output statistics — % of non-trivial, closed, and maximal
// output sequences. NYT with P/LP/CLP hierarchies (sigma=100, lambda=5,
// gamma=0) and AMZN-h8 across supports (gamma=1, lambda=5).
//
// Expected shape: deeper hierarchies and lower supports reduce the closed
// and maximal fractions (more redundancy) while the non-trivial share stays
// high — hierarchy-aware mining finds mostly patterns flat mining cannot.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "stats/output_stats.h"

namespace lash::bench {
namespace {

OutputStatsResult StatsFor(const Database& db, const Hierarchy& h,
                           const PreprocessResult& pre,
                           const GsmParams& params) {
  AlgoResult gsm = RunLash(pre, params, DefaultJobConfig());
  // Flat mining on the same data, translated into the hierarchical rank
  // space for comparison.
  PreprocessResult flat_pre = Preprocess(db, Hierarchy::Flat(h.NumItems()));
  AlgoResult flat = RunLash(flat_pre, params, DefaultJobConfig());
  std::vector<ItemId> flat_to_gsm(flat_pre.raw_of_rank.size(), kInvalidItem);
  for (size_t r = 1; r < flat_pre.raw_of_rank.size(); ++r) {
    flat_to_gsm[r] = pre.rank_of_raw[flat_pre.raw_of_rank[r]];
  }
  PatternMap flat_patterns = RemapPatterns(flat.patterns, flat_to_gsm);
  return ComputeOutputStats(gsm.patterns, flat_patterns, pre.hierarchy);
}

void Print(const std::string& name, const OutputStatsResult& s) {
  std::printf("Table3   %-14s total=%8zu nontrivial=%6.2f%% closed=%6.2f%% "
              "maximal=%6.2f%%\n",
              name.c_str(), s.total, s.nontrivial_pct, s.closed_pct,
              s.maximal_pct);
  std::fflush(stdout);
}

void SetCounters(benchmark::State& state, const OutputStatsResult& s) {
  state.counters["total"] = static_cast<double>(s.total);
  state.counters["nontrivial_pct"] = s.nontrivial_pct;
  state.counters["closed_pct"] = s.closed_pct;
  state.counters["maximal_pct"] = s.maximal_pct;
}

void BM_NytStats(benchmark::State& state) {
  const TextHierarchy kKinds[] = {TextHierarchy::kP, TextHierarchy::kLP,
                                  TextHierarchy::kCLP};
  TextHierarchy kind = kKinds[state.range(0)];
  const GeneratedText& data = NytData(kind);
  const PreprocessResult& pre =
      Preprocessed(TextHierarchyName(kind), data.database, data.hierarchy);
  GsmParams params{.sigma = 100, .gamma = 0, .lambda = 5};
  for (auto _ : state) {
    OutputStatsResult s = StatsFor(data.database, data.hierarchy, pre, params);
    Print(TextHierarchyName(kind), s);
    SetCounters(state, s);
  }
  state.SetLabel(TextHierarchyName(kind));
}

void BM_AmznStats(benchmark::State& state) {
  const Frequency kSigmas[] = {1600, 400, 100};
  Frequency sigma = kSigmas[state.range(0)];
  const GeneratedProducts& data = AmznData(8);
  const PreprocessResult& pre =
      Preprocessed("AMZN-h8", data.database, data.hierarchy);
  GsmParams params{.sigma = sigma, .gamma = 1, .lambda = 5};
  for (auto _ : state) {
    OutputStatsResult s = StatsFor(data.database, data.hierarchy, pre, params);
    Print("AMZN-h8@" + std::to_string(sigma), s);
    SetCounters(state, s);
  }
  state.SetLabel("sigma=" + std::to_string(sigma));
}

BENCHMARK(BM_NytStats)->DenseRange(0, 2)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_AmznStats)->DenseRange(0, 2)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
