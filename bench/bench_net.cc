// bench_net — the perf gate for the network tier (net/).
//
// Stands up the real distributed serving stack on loopback — a full-corpus
// worker, two shard workers, and a cross-shard router — and measures what
// the network front door costs relative to calling MiningService in
// process:
//   * in-process: Submit/Get against a MiningService in this process (the
//     bench_serve baseline), cold then cache-hit;
//   * loopback: the same query stream through lash_served's stack — framed
//     wire protocol, epoll event loop, blocking NetClient — cold then hit;
//     net_hit_overhead_ms is the per-request tax of the network hop on a
//     cache hit (framing + syscalls + loopback RTT, no mining);
//   * router: the stream scattered across two shard workers, twice — once
//     through the legacy one-phase σ'=1 scatter (every shard re-mined at
//     support 1) and once through the default two-phase candidate/count
//     protocol (phase-1 mine at the pigeonhole bound ⌈σ/k⌉, phase-2 exact
//     recount of the union candidates). Both must merge to the same bytes;
//     at full size the two-phase scatter must be ≥3× faster, which is the
//     perf gate this bench exists for. The two-phase router records into a
//     bench-local metrics registry, from which the JSON reports the count
//     phase's average latency and the total candidate volume.
// Asserts byte-identical canonical pattern streams (EncodeNamedPatterns
// bytes) between the in-process run and both network paths — the loopback
// worker AND the 2-shard router, both modes (including a top-k re-cut
// query) — plus a working stats RPC, and writes BENCH_net.json.
//
// The epoll server is Linux-only; elsewhere the bench reports "skipped"
// and exits 0 so the gate stays portable.
//
// Usage: bench_net [--smoke] [--out FILE]
//   --smoke  small corpus (CI gate).
//   --out    output JSON path (default BENCH_net.json).

#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "api/lash_api.h"
#include "datagen/corpus_recipes.h"
#include "io/result_io.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "net/service_backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/mining_service.h"
#include "serve/task_spec.h"
#include "util/timer.h"

namespace lash {
namespace {

#ifdef __linux__

using serve::MiningService;
using serve::PendingResult;
using serve::ServiceOptions;
using serve::TaskSpec;

/// A worker (or router) server running on its own thread, bound to an
/// ephemeral loopback port.
struct Server {
  explicit Server(net::Backend* backend) {
    net::ServerOptions options;  // 127.0.0.1, port 0.
    server = std::make_unique<net::NetServer>(std::move(options), backend);
    thread = std::thread([this] { server->Run(); });
  }
  ~Server() {
    server->Shutdown();
    thread.join();
  }
  uint16_t port() const { return server->port(); }

  std::unique_ptr<net::NetServer> server;
  std::thread thread;
};

std::vector<TaskSpec> Workload(bool smoke) {
  const Frequency sigma = smoke ? 8 : 12;
  std::vector<TaskSpec> stream;
  auto add = [&](Algorithm algorithm, Frequency s, uint32_t gamma,
                 uint32_t lambda, size_t top_k) {
    TaskSpec spec;
    spec.algorithm = algorithm;
    spec.params = {.sigma = s, .gamma = gamma, .lambda = lambda};
    spec.top_k = top_k;
    stream.push_back(spec);
  };
  // λ capped at 4: every query also runs through the legacy router wave,
  // whose one-phase scatter re-mines each shard at σ'=1, and the σ=1
  // pattern count explodes in λ (see the corpus-size comment in Main).
  add(Algorithm::kSequential, sigma, 0, 4, 0);   // The hot query.
  add(Algorithm::kSequential, sigma, 1, 3, 0);   // Gappy variant.
  add(Algorithm::kSequential, sigma, 0, 4, 10);  // Top-k re-cut path.
  add(Algorithm::kLash, sigma, 0, 4, 0);         // Distributed engine.
  add(Algorithm::kMgFsm, sigma, 0, 4, 0);        // Flat rank space.
  return stream;
}

/// Canonical bytes of one in-process answer — the parity baseline.
std::string CanonicalBytes(const Dataset& dataset,
                           const serve::Response& response) {
  NamedPatternList named = NamePatterns(dataset, response.patterns(),
                                        response.run().used_flat_hierarchy);
  std::string bytes;
  EncodeNamedPatterns(&bytes, named);
  return bytes;
}

std::string CanonicalBytes(const NamedPatternList& patterns) {
  std::string bytes;
  EncodeNamedPatterns(&bytes, patterns);
  return bytes;
}

double Avg(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  // Deliberately small in both modes: the legacy router wave scatters at
  // σ'=1, so each of its queries over-mines each shard at support 1 and
  // ships the full named-pattern stream back — the cost grows
  // super-linearly with corpus size. That is exactly the tax the two-phase
  // wave avoids (and the ≥3× gate quantifies); the other quantities this
  // gate measures (fixed per-request network overhead + merge correctness)
  // don't need a bigger corpus either.
  NytRecipe recipe;
  recipe.sentences = smoke ? 400 : 1200;
  recipe.lemmas = smoke ? 300 : 800;
  GeneratedText data = MakeNytCorpus(recipe);

  // Round-robin transaction split: the two shards partition the corpus
  // exactly (same split lash_gen --shards writes), sharing the vocabulary.
  Database shard_dbs[2];
  for (size_t i = 0; i < data.database.size(); ++i) {
    shard_dbs[i % 2].push_back(data.database[i]);
  }
  std::unique_ptr<Dataset> shard0(new Dataset(
      Dataset::FromMemory(std::move(shard_dbs[0]), data.vocabulary)));
  std::unique_ptr<Dataset> shard1(new Dataset(
      Dataset::FromMemory(std::move(shard_dbs[1]), data.vocabulary)));
  Dataset dataset = Dataset::FromMemory(std::move(data.database),
                                        std::move(data.vocabulary),
                                        std::move(data.hierarchy));
  std::printf("corpus: %zu sequences, %zu items (shards %zu + %zu)\n",
              dataset.NumSequences(), dataset.NumItems(),
              shard0->NumSequences(), shard1->NumSequences());

  const std::vector<TaskSpec> stream = Workload(smoke);

  // --- In-process baseline: cold wave, then all-hits wave. ---
  MiningService local(dataset);
  std::vector<std::string> baseline_bytes;
  std::vector<double> local_cold_ms, local_hit_ms;
  for (const TaskSpec& spec : stream) {
    Stopwatch clock;
    PendingResult result = local.Submit(spec);
    const serve::Response& response = result.Get();
    local_cold_ms.push_back(clock.ElapsedMs());
    baseline_bytes.push_back(CanonicalBytes(dataset, response));
  }
  for (const TaskSpec& spec : stream) {
    Stopwatch clock;
    PendingResult result = local.Submit(spec);
    result.Get();
    local_hit_ms.push_back(clock.ElapsedMs());
  }

  // --- Loopback single worker: the same waves through the wire. ---
  net::ServiceBackend worker_backend({&dataset}, ServiceOptions{});
  Server worker(&worker_backend);
  net::NetClient client("127.0.0.1", worker.port());
  bool single_worker_parity = true;
  std::vector<double> net_cold_ms, net_hit_ms;
  for (size_t i = 0; i < stream.size(); ++i) {
    Stopwatch clock;
    net::MineReply reply = client.Mine(stream[i]);
    net_cold_ms.push_back(clock.ElapsedMs());
    if (CanonicalBytes(reply.patterns) != baseline_bytes[i]) {
      std::fprintf(stderr, "WORKER PARITY FAILURE at query %zu\n", i);
      single_worker_parity = false;
    }
  }
  bool net_all_hits = true;
  for (size_t i = 0; i < stream.size(); ++i) {
    Stopwatch clock;
    net::MineReply reply = client.Mine(stream[i]);
    net_hit_ms.push_back(clock.ElapsedMs());
    net_all_hits = net_all_hits && reply.cache_hit;
    if (CanonicalBytes(reply.patterns) != baseline_bytes[i]) {
      std::fprintf(stderr, "WORKER HIT PARITY FAILURE at query %zu\n", i);
      single_worker_parity = false;
    }
  }
  const serve::ServiceStats worker_stats = client.Stats();
  const bool stats_ok = worker_stats.submitted >= 2 * stream.size() &&
                        worker_stats.hits >= stream.size();

  // --- v2 traced hits: what trace context costs on the wire. ---
  // Same all-hits wave, but every request carries a fresh trace id (the
  // kMineRequestV2 frame) and the worker — sharing this process's global
  // tracer — records every serve-pipeline span to a JSONL file. The delta
  // against the v1 hit wave is the full per-request instrumentation tax:
  // 24 extra header bytes, span bookkeeping, and the fflush per span.
  const std::string trace_path = out + ".trace.jsonl";
  obs::Tracer::Global().OpenFile(trace_path);
  bool traced_parity = true;
  std::vector<double> traced_hit_ms;
  for (size_t i = 0; i < stream.size(); ++i) {
    TaskSpec spec = stream[i];
    spec.trace = obs::TraceContext{obs::TraceId::Make(), 0};
    Stopwatch clock;
    net::MineReply reply = client.Mine(spec);
    traced_hit_ms.push_back(clock.ElapsedMs());
    if (CanonicalBytes(reply.patterns) != baseline_bytes[i]) {
      std::fprintf(stderr, "TRACED HIT PARITY FAILURE at query %zu\n", i);
      traced_parity = false;
    }
  }
  obs::Tracer::Global().CloseFile();
  std::remove(trace_path.c_str());

  // --- Metrics RPC: the live stats surface answers over the wire. ---
  const std::vector<obs::MetricSample> metrics = client.Metrics();
  bool metrics_rpc_ok = false;
  for (const obs::MetricSample& sample : metrics) {
    if (sample.name == "serve.requests.submitted" && sample.value >= 1.0) {
      metrics_rpc_ok = true;
    }
  }

  // --- Router over two shard workers: legacy one-phase wave first. ---
  net::ServiceBackend shard_backend0({shard0.get()}, ServiceOptions{});
  net::ServiceBackend shard_backend1({shard1.get()}, ServiceOptions{});
  Server worker0(&shard_backend0);
  Server worker1(&shard_backend1);
  const std::vector<net::WorkerAddress> shard_addresses = {
      {"127.0.0.1", worker0.port()}, {"127.0.0.1", worker1.port()}};
  net::RouterOptions legacy_options;
  legacy_options.two_phase = false;
  net::RouterBackend legacy_router(shard_addresses, legacy_options);
  bool router_parity = true;
  std::vector<double> router_ms;
  for (size_t i = 0; i < stream.size(); ++i) {
    Stopwatch clock;
    net::MineResponse merged = legacy_router.Scatter(stream[i]);
    router_ms.push_back(clock.ElapsedMs());
    if (CanonicalBytes(merged.patterns) != baseline_bytes[i]) {
      std::fprintf(stderr, "ROUTER PARITY FAILURE at query %zu\n", i);
      router_parity = false;
    }
  }

  // --- Two-phase candidate/count wave: same stream, same parity bar. ---
  // The shard caches are warm with the σ'=1 answers from the legacy wave,
  // but σ'=⌈σ/2⌉ misses those cache keys, so phase 1 mines cold — the two
  // waves stay comparable. The bench-local registry isolates this wave's
  // router.count.* instruments from everything else in the process.
  obs::MetricsRegistry twophase_metrics;
  net::RouterOptions twophase_options;
  twophase_options.metrics = &twophase_metrics;
  net::RouterBackend twophase_router(shard_addresses, twophase_options);
  std::vector<double> twophase_ms;
  for (size_t i = 0; i < stream.size(); ++i) {
    Stopwatch clock;
    net::MineResponse merged = twophase_router.Scatter(stream[i]);
    twophase_ms.push_back(clock.ElapsedMs());
    if (CanonicalBytes(merged.patterns) != baseline_bytes[i]) {
      std::fprintf(stderr, "TWO-PHASE ROUTER PARITY FAILURE at query %zu\n", i);
      router_parity = false;
    }
  }
  double count_phase_avg_ms = 0;
  double candidate_count = 0;
  for (const obs::MetricSample& sample : twophase_metrics.Snapshot()) {
    if (sample.name == "router.count.phase_ms.mean_ms") {
      count_phase_avg_ms = sample.value;
    }
    if (sample.name == "router.count.candidates") {
      candidate_count = sample.value;
    }
  }

  const double local_hit_avg = Avg(local_hit_ms);
  const double net_hit_avg = Avg(net_hit_ms);
  const double net_hit_overhead_ms = net_hit_avg - local_hit_avg;
  const double traced_hit_avg = Avg(traced_hit_ms);
  const double trace_hit_overhead_ms = traced_hit_avg - net_hit_avg;
  std::printf("in-process : cold avg %.2fms, hit avg %.4fms\n",
              Avg(local_cold_ms), local_hit_avg);
  std::printf("loopback   : cold avg %.2fms, hit avg %.4fms "
              "(net hit overhead %.4fms), all hits %s\n",
              Avg(net_cold_ms), net_hit_avg, net_hit_overhead_ms,
              net_all_hits ? "yes" : "NO");
  std::printf("tracing    : v2 traced hit avg %.4fms "
              "(trace overhead %+.4fms per request)\n",
              traced_hit_avg, trace_hit_overhead_ms);
  const double router_avg = Avg(router_ms);
  const double twophase_avg = Avg(twophase_ms);
  // The perf gate: killing the σ'=1 tax must be worth ≥3× on the scatter at
  // full size. The smoke corpus is too small for the ratio to be stable
  // (fixed RTT dominates), so there the numbers are recorded but not gated.
  const bool speedup_ok = smoke || twophase_avg * 3.0 <= router_avg;
  std::printf("router     : one-phase scatter avg %.2fms over 2 shard "
              "workers\n",
              router_avg);
  std::printf("two-phase  : scatter avg %.2fms (count phase avg %.2fms, "
              "%.0f candidates) — %.1fx vs one-phase%s\n",
              twophase_avg, count_phase_avg_ms, candidate_count,
              twophase_avg > 0 ? router_avg / twophase_avg : 0.0,
              smoke ? "" : (speedup_ok ? ", gate ok" : ", GATE FAILED"));
  std::printf("parity     : worker %s, traced %s, router %s, stats rpc %s, "
              "metrics rpc %s (%zu samples)\n",
              single_worker_parity ? "ok" : "FAILED",
              traced_parity ? "ok" : "FAILED",
              router_parity ? "ok" : "FAILED", stats_ok ? "ok" : "FAILED",
              metrics_rpc_ok ? "ok" : "FAILED", metrics.size());
  std::fflush(stdout);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"net\",\n  \"smoke\": %s,\n  \"skipped\": false,\n"
      "  \"sequences\": %zu,\n  \"queries\": %zu,\n  \"shard_workers\": 2,\n"
      "  \"local_cold_avg_ms\": %.4f,\n  \"local_hit_avg_ms\": %.5f,\n"
      "  \"net_cold_avg_ms\": %.4f,\n  \"net_hit_avg_ms\": %.5f,\n"
      "  \"net_hit_overhead_ms\": %.5f,\n  \"traced_hit_avg_ms\": %.5f,\n"
      "  \"trace_hit_overhead_ms\": %.5f,\n"
      "  \"router_scatter_avg_ms\": %.4f,\n"
      "  \"router_scatter_twophase_avg_ms\": %.4f,\n"
      "  \"count_phase_avg_ms\": %.4f,\n"
      "  \"candidate_count\": %.0f,\n"
      "  \"net_all_hits\": %s,\n  \"stats_rpc_ok\": %s,\n"
      "  \"metrics_rpc_ok\": %s,\n  \"single_worker_parity\": %s,\n"
      "  \"traced_parity\": %s,\n  \"router_parity\": %s,\n"
      "  \"twophase_speedup_ok\": %s\n}\n",
      smoke ? "true" : "false", dataset.NumSequences(), stream.size(),
      Avg(local_cold_ms), local_hit_avg, Avg(net_cold_ms), net_hit_avg,
      net_hit_overhead_ms, traced_hit_avg, trace_hit_overhead_ms,
      router_avg, twophase_avg, count_phase_avg_ms, candidate_count,
      net_all_hits ? "true" : "false",
      stats_ok ? "true" : "false", metrics_rpc_ok ? "true" : "false",
      single_worker_parity ? "true" : "false",
      traced_parity ? "true" : "false", router_parity ? "true" : "false",
      speedup_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  if (!single_worker_parity || !traced_parity || !router_parity ||
      !net_all_hits || !stats_ok || !metrics_rpc_ok || !speedup_ok) {
    std::fprintf(stderr, "bench_net: CHECKS FAILED\n");
    return 1;
  }
  return 0;
}

#else  // !__linux__

int Main(int argc, char** argv) {
  std::string out = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"net\",\n  \"skipped\": true\n}\n");
    std::fclose(f);
  }
  std::fprintf(stderr, "bench_net: epoll server is Linux-only; skipped\n");
  return 0;
}

#endif

}  // namespace
}  // namespace lash

int main(int argc, char** argv) { return lash::Main(argc, argv); }
