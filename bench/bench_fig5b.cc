// Fig. 5(b): effect of the maximum gap gamma on LASH, AMZN-h8 with
// sigma=100, lambda=5.
//
// Expected shape: map time roughly flat (rewriting is largely independent
// of gamma), reduce time grows steeply with gamma (the mining search space
// expands).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

const PreprocessResult& Pre() {
  const GeneratedProducts& data = AmznData(8);
  return Preprocessed("AMZN-h8", data.database, data.hierarchy);
}

void BM_LashGap(benchmark::State& state) {
  uint32_t gamma = static_cast<uint32_t>(state.range(0));
  GsmParams params{.sigma = 100, .gamma = gamma, .lambda = 5};
  for (auto _ : state) {
    AlgoResult result = RunLash(Pre(), params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig5b", "LASH", "gamma=" + std::to_string(gamma), result);
  }
  state.SetLabel("gamma=" + std::to_string(gamma));
}

BENCHMARK(BM_LashGap)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
