// Table 2: hierarchy characteristics (total/leaf/root/intermediate items,
// levels, avg and max fan-out) for the NYT L/P/LP/CLP and AMZN h2..h8
// hierarchy variants.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

void Print(const std::string& name, const Hierarchy& h) {
  std::printf("Table2   %-10s total=%8zu leaves=%8zu roots=%6zu "
              "intermediate=%7zu levels=%d avg_fanout=%9.1f max_fanout=%8zu\n",
              name.c_str(), h.NumItems(), h.NumLeaves(), h.NumRoots(),
              h.NumIntermediate(), h.NumLevels(), h.AvgFanOut(), h.MaxFanOut());
  std::fflush(stdout);
}

void SetCounters(benchmark::State& state, const Hierarchy& h) {
  state.counters["total"] = static_cast<double>(h.NumItems());
  state.counters["levels"] = h.NumLevels();
  state.counters["roots"] = static_cast<double>(h.NumRoots());
  state.counters["avg_fanout"] = h.AvgFanOut();
}

void BM_NytHierarchy(benchmark::State& state) {
  const TextHierarchy kKinds[] = {TextHierarchy::kL, TextHierarchy::kP,
                                  TextHierarchy::kLP, TextHierarchy::kCLP};
  TextHierarchy kind = kKinds[state.range(0)];
  for (auto _ : state) {
    const Hierarchy& h = NytData(kind).hierarchy;
    Print(TextHierarchyName(kind), h);
    SetCounters(state, h);
  }
  state.SetLabel(TextHierarchyName(kind));
}

void BM_AmznHierarchy(benchmark::State& state) {
  const int kLevels[] = {2, 3, 4, 8};
  int levels = kLevels[state.range(0)];
  for (auto _ : state) {
    const Hierarchy& h = AmznData(levels).hierarchy;
    Print(ProductHierarchyName(levels), h);
    SetCounters(state, h);
  }
  state.SetLabel(ProductHierarchyName(levels));
}

BENCHMARK(BM_NytHierarchy)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_AmznHierarchy)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
