// Ablation of LASH's partition-construction design choices (Sec. 4, the
// shortcomings item-based partitioning must overcome: skew, redundant
// computation, communication cost).
//
// Axes:
//   * rewrite level — P_w(T) = T ("none"), w-generalization only
//     ("generalize"), or the full pipeline with unreachability reduction,
//     isolated-pivot removal and blank compression ("full");
//   * combiner     — with/without map-side aggregation of identical
//     rewrites (Sec. 4.4).
//
// All configurations produce identical output (asserted by
// RewriteAblationTest); they differ in MAP_OUTPUT_BYTES, records, and time.
// Expected: bytes and reduce time drop monotonically from none ->
// generalize -> full, and the combiner removes most duplicate records.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

struct Setting {
  RewriteLevel rewrite;
  bool combiner;
  const char* name;
};

const Setting kSettings[] = {
    {RewriteLevel::kNone, true, "none"},
    {RewriteLevel::kGeneralizeOnly, true, "generalize"},
    {RewriteLevel::kFull, false, "full,no-comb"},
    {RewriteLevel::kFull, true, "full"},
};

const PreprocessResult& PreFor(const Setting&) {
  const GeneratedText& data = NytData(TextHierarchy::kCLP);
  return Preprocessed("NYT-CLP", data.database, data.hierarchy);
}

void BM_Ablation(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = 100, .gamma = 0, .lambda = 5};
  LashOptions options;
  options.rewrite = s.rewrite;
  options.use_combiner = s.combiner;
  for (auto _ : state) {
    AlgoResult result = RunLash(PreFor(s), params, DefaultJobConfig(), options);
    SetCounters(state, result);
    state.counters["records"] =
        static_cast<double>(result.job.counters.map_output_records);
    state.counters["skew"] = result.partition_shape.SkewFactor();
    PrintRow("Ablation", s.name, "NYT-CLP(100,0,5)", result);
    std::printf("Ablation %-12s partitions=%zu max_partition=%llu skew=%.1f\n",
                s.name, result.partition_shape.partitions,
                static_cast<unsigned long long>(
                    result.partition_shape.max_partition),
                result.partition_shape.SkewFactor());
    std::fflush(stdout);
  }
  state.SetLabel(s.name);
}

BENCHMARK(BM_Ablation)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

// Generates and preprocesses every dataset before timing starts.
void Warmup() {
  for (const Setting& s : kSettings) PreFor(s);
}

}  // namespace
}  // namespace lash::bench

int main(int argc, char** argv) {
  lash::bench::Warmup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
