// Fig. 5(c): effect of the maximum length lambda on LASH, AMZN-h8 with
// sigma=100, gamma=1.
//
// Expected shape: map time nearly flat, reduce time grows with lambda
// (more and longer patterns), proportional to the output growth shown in
// Fig. 5(d).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

const PreprocessResult& Pre() {
  const GeneratedProducts& data = AmznData(8);
  return Preprocessed("AMZN-h8", data.database, data.hierarchy);
}

void BM_LashLength(benchmark::State& state) {
  uint32_t lambda = static_cast<uint32_t>(state.range(0));
  GsmParams params{.sigma = 100, .gamma = 1, .lambda = lambda};
  for (auto _ : state) {
    AlgoResult result = RunLash(Pre(), params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig5c", "LASH", "lambda=" + std::to_string(lambda), result);
  }
  state.SetLabel("lambda=" + std::to_string(lambda));
}

BENCHMARK(BM_LashLength)->DenseRange(3, 7)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
