// Fig. 6(b): strong scalability — LASH on the full NYT-CLP corpus with 2, 4
// and 8 (simulated) compute nodes, sigma=100, lambda=5.
//
// Tasks execute locally; their recorded durations are scheduled onto an
// m-machine simulated cluster (8 task slots each, like the paper's setup)
// with an LPT scheduler — see DESIGN.md §3 for why this preserves the
// paper's measurement. Expected shape: map and reduce times halve as the
// node count doubles.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

const size_t kMachines[] = {2, 4, 8};

const AlgoResult& FullRun() {
  static const AlgoResult result = [] {
    const GeneratedText& data = NytData(TextHierarchy::kCLP);
    const PreprocessResult& pre =
        Preprocessed("NYT-CLP", data.database, data.hierarchy);
    GsmParams params{.sigma = 100, .gamma = 0, .lambda = 5};
    JobConfig config = DefaultJobConfig();
    // More, finer tasks so the simulated scheduler has enough to place.
    config.num_map_tasks = 64;
    config.num_reduce_tasks = 64;
    return RunLash(pre, params, config);
  }();
  return result;
}

void BM_StrongScaling(benchmark::State& state) {
  size_t machines = kMachines[state.range(0)];
  for (auto _ : state) {
    const AlgoResult& run = FullRun();
    PhaseTimes sim = run.job.SimulatedTimes(machines);
    state.counters["map_ms"] = sim.map_ms;
    state.counters["shuffle_ms"] = sim.shuffle_ms;
    state.counters["reduce_ms"] = sim.reduce_ms;
    state.counters["total_ms"] = sim.TotalMs();
    std::printf("Fig6b    LASH        machines=%zu   map=%8.0fms "
                "shuffle=%6.0fms reduce=%8.0fms total=%8.0fms\n",
                machines, sim.map_ms, sim.shuffle_ms, sim.reduce_ms,
                sim.TotalMs());
    std::fflush(stdout);
  }
  state.SetLabel("machines=" + std::to_string(machines));
}

BENCHMARK(BM_StrongScaling)->DenseRange(0, 2)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
