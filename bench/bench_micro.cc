// Micro-benchmarks of the core primitives every LASH phase is built from:
// the ⊑γ matcher, the partition rewrites, the generalized f-list scan, and
// the varint codecs. These are classic hot-loop benchmarks (many
// iterations), complementary to the figure benches which time whole jobs.

#include <benchmark/benchmark.h>

#include <sstream>

#include "core/flist.h"
#include "core/match.h"
#include "core/rewrite.h"
#include "datagen/text_gen.h"
#include "util/rng.h"
#include "util/varint.h"

namespace lash {
namespace {

// A mid-sized corpus shared by all micro benches.
const GeneratedText& Corpus() {
  static const GeneratedText data = [] {
    TextGenConfig config;
    config.num_sentences = 2000;
    config.num_lemmas = 1000;
    config.hierarchy = TextHierarchy::kCLP;
    return GenerateText(config);
  }();
  return data;
}

const PreprocessResult& Pre() {
  static const PreprocessResult pre =
      Preprocess(Corpus().database, Corpus().hierarchy);
  return pre;
}

void BM_Match(benchmark::State& state) {
  const PreprocessResult& pre = Pre();
  const uint32_t gamma = static_cast<uint32_t>(state.range(0));
  // A frequent 3-pattern: the three most frequent items.
  Sequence pattern = {1, 2, 3};
  size_t i = 0, matched = 0;
  for (auto _ : state) {
    const SequenceView t = pre.database[i];
    if (++i == pre.database.size()) i = 0;
    matched += Matches(pattern, t, pre.hierarchy, gamma);
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Match)->Arg(0)->Arg(2);

void BM_Rewrite(benchmark::State& state) {
  const PreprocessResult& pre = Pre();
  Rewriter rewriter(&pre.hierarchy, /*gamma=*/1, /*lambda=*/5);
  const ItemId pivot = static_cast<ItemId>(state.range(0));
  size_t i = 0, bytes = 0;
  for (auto _ : state) {
    const SequenceView t = pre.database[i];
    if (++i == pre.database.size()) i = 0;
    Sequence rewritten = rewriter.Rewrite(t, pivot);
    bytes += rewritten.size();
  }
  benchmark::DoNotOptimize(bytes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rewrite)->Arg(5)->Arg(50)->Arg(500);

void BM_GeneralizedFList(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<Frequency> freq =
        GeneralizedItemFrequencies(Corpus().database, Corpus().hierarchy);
    benchmark::DoNotOptimize(freq.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Corpus().database.size()));
}
BENCHMARK(BM_GeneralizedFList);

void BM_VarintSequenceCodec(benchmark::State& state) {
  Rng rng(1);
  Sequence seq;
  for (int i = 0; i < 64; ++i) {
    seq.push_back(rng.Bernoulli(0.2) ? kBlank
                                     : static_cast<ItemId>(1 + rng.Uniform(50000)));
  }
  for (auto _ : state) {
    std::string buffer;
    EncodeRewrittenSequence(&buffer, seq);
    Sequence decoded;
    size_t pos = 0;
    DecodeRewrittenSequence(buffer, &pos, &decoded);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(state.iterations() * 64 * 4);
}
BENCHMARK(BM_VarintSequenceCodec);

void BM_Preprocess(benchmark::State& state) {
  for (auto _ : state) {
    PreprocessResult pre = Preprocess(Corpus().database, Corpus().hierarchy);
    benchmark::DoNotOptimize(pre.freq.data());
  }
}
BENCHMARK(BM_Preprocess)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lash

BENCHMARK_MAIN();
