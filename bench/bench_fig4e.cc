// Fig. 4(e): frequent sequence mining WITHOUT hierarchies — MG-FSM vs LASH
// on the flattened NYT-like corpus.
//
// Paper settings: (100,1,5), (10,1,5), (10,1,10). MG-FSM is the LASH
// pipeline with a BFS local miner (footnote 3 of the paper); LASH uses
// PSM+Index. Expected shape: LASH 2-5x faster, entirely due to PSM.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

struct Setting {
  Frequency sigma;
  uint32_t gamma;
  uint32_t lambda;
};

const Setting kSettings[] = {
    {50, 1, 5},
    {10, 1, 5},
    {10, 1, 10},
};

std::string SettingName(const Setting& s) {
  return "(" + std::to_string(s.sigma) + "," + std::to_string(s.gamma) + "," +
         std::to_string(s.lambda) + ")";
}

const PreprocessResult& FlatPre() {
  static const PreprocessResult pre = [] {
    const GeneratedText& data = NytData(TextHierarchy::kP);
    return Preprocess(data.database,
                      Hierarchy::Flat(data.hierarchy.NumItems()));
  }();
  return pre;
}

void BM_MgFsm(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = s.gamma, .lambda = s.lambda};
  for (auto _ : state) {
    AlgoResult result = RunMgFsm(FlatPre(), params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig4e", "MG-FSM", SettingName(s), result);
  }
  state.SetLabel(SettingName(s));
}

void BM_LashFlat(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = s.gamma, .lambda = s.lambda};
  for (auto _ : state) {
    AlgoResult result = RunLash(FlatPre(), params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig4e", "LASH", SettingName(s), result);
  }
  state.SetLabel(SettingName(s));
}

BENCHMARK(BM_MgFsm)->DenseRange(0, 2)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LashFlat)->DenseRange(0, 2)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
