// Fig. 6(c): weak scalability — LASH with (2 machines, 25% data),
// (4, 50%), (8, 100%) on NYT-CLP, sigma=100, lambda=5.
//
// Expected shape: roughly constant total time, with a slight increase
// because the number of output sequences grows super-linearly in the data
// (the paper measured a 2.2x output growth per 2x data).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

struct Point {
  size_t machines;
  int percent;
};
const Point kPoints[] = {{2, 25}, {4, 50}, {8, 100}};

void BM_WeakScaling(benchmark::State& state) {
  const Point& point = kPoints[state.range(0)];
  size_t sentences = kNytSentences * point.percent / 100;
  const GeneratedText& data = NytData(TextHierarchy::kCLP, kNytSentences);
  Database sample(data.database.begin(), data.database.begin() + sentences);
  const PreprocessResult& pre = Preprocessed(
      "NYT-CLP-weak-" + std::to_string(point.percent), sample, data.hierarchy);
  GsmParams params{.sigma = 100, .gamma = 0, .lambda = 5};
  JobConfig config = DefaultJobConfig();
  config.num_map_tasks = 64;
  config.num_reduce_tasks = 64;
  for (auto _ : state) {
    AlgoResult result = RunLash(pre, params, config);
    PhaseTimes sim = result.job.SimulatedTimes(point.machines);
    state.counters["map_ms"] = sim.map_ms;
    state.counters["shuffle_ms"] = sim.shuffle_ms;
    state.counters["reduce_ms"] = sim.reduce_ms;
    state.counters["total_ms"] = sim.TotalMs();
    state.counters["outputs"] = static_cast<double>(result.patterns.size());
    std::printf("Fig6c    LASH        machines=%zu(%d%%)   map=%8.0fms "
                "shuffle=%6.0fms reduce=%8.0fms total=%8.0fms outputs=%zu\n",
                point.machines, point.percent, sim.map_ms, sim.shuffle_ms,
                sim.reduce_ms, sim.TotalMs(), result.patterns.size());
    std::fflush(stdout);
  }
  state.SetLabel(std::to_string(point.machines) + "(" +
                 std::to_string(point.percent) + "%)");
}

BENCHMARK(BM_WeakScaling)->DenseRange(0, 2)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
