// Fig. 4(b): bytes transferred between map and reduce (MAP_OUTPUT_BYTES)
// for the same runs as Fig. 4(a).
//
// Expected shape: LASH transfers far fewer bytes than the (semi-)naive
// baselines thanks to item-based partitioning + rewrites + aggregation; the
// baselines' byte counts explode with hierarchy depth and lambda.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

struct Setting {
  TextHierarchy hierarchy;
  Frequency sigma;
  uint32_t lambda;
};

const Setting kSettings[] = {
    {TextHierarchy::kP, 500, 3},
    {TextHierarchy::kP, 100, 3},
    {TextHierarchy::kP, 100, 5},
    {TextHierarchy::kCLP, 100, 5},
};

const BaselineLimits kLimits{.max_emitted_records = 20'000'000};

std::string SettingName(const Setting& s) {
  return TextHierarchyName(s.hierarchy) + "(" + std::to_string(s.sigma) +
         ",0," + std::to_string(s.lambda) + ")";
}

const PreprocessResult& PreFor(const Setting& s) {
  const GeneratedText& data = NytData(s.hierarchy);
  return Preprocessed(TextHierarchyName(s.hierarchy), data.database,
                      data.hierarchy);
}

void Report(benchmark::State& state, const AlgoResult& result,
            const char* series, const Setting& s) {
  SetCounters(state, result);
  PrintRow("Fig4b", series, SettingName(s), result);
  state.SetLabel(SettingName(s));
}

void BM_NaiveBytes(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  for (auto _ : state) {
    Report(state, RunNaiveGsm(PreFor(s), params, DefaultJobConfig(), kLimits),
           "naive", s);
  }
}

void BM_SemiNaiveBytes(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  for (auto _ : state) {
    Report(state,
           RunSemiNaiveGsm(PreFor(s), params, DefaultJobConfig(), kLimits),
           "semi-naive", s);
  }
}

void BM_LashBytes(benchmark::State& state) {
  const Setting& s = kSettings[state.range(0)];
  GsmParams params{.sigma = s.sigma, .gamma = 0, .lambda = s.lambda};
  for (auto _ : state) {
    Report(state, RunLash(PreFor(s), params, DefaultJobConfig()), "LASH", s);
  }
}

BENCHMARK(BM_NaiveBytes)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SemiNaiveBytes)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_LashBytes)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

// Generates and preprocesses every dataset before timing starts, so the
// first series is not charged for warmup (allocator, page cache, datagen).
void Warmup() {
  for (const Setting& s : kSettings) PreFor(s);
}

}  // namespace
}  // namespace lash::bench

int main(int argc, char** argv) {
  lash::bench::Warmup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
