// bench_shuffle — the perf gate for the LASH shuffle/partitioning hot path.
//
// Times the complete LASH job (map + shuffle + reduce wall clock) with the
// byte-packed spill + sort-based grouping shuffle (ShuffleMode::kPackedSpill,
// the default) against the preserved pre-PR2 path (ShuffleMode::kLegacyHash:
// per-pair heap spill, unordered_map grouping, std::map partitions, serial
// partition mining) on the full-size NYT-like and AMZN-like generated
// corpora. Asserts:
//   * pattern parity of both paths against each other and MineSequential,
//   * MAP_OUTPUT_BYTES parity: the packed path counts real encoded buffer
//     bytes; the legacy path simulates the same varint accounting — equal
//     option sets must produce identical byte counts,
// and writes the results as machine-readable JSON (BENCH_shuffle.json).
//
// Usage: bench_shuffle [--smoke] [--reps N] [--out FILE]
//   --smoke  small inputs (CI parity gate); implies --reps 1.
//   --reps   repetitions per path; the fastest total is reported (default 3).
//   --out    output JSON path (default BENCH_shuffle.json).
//
// Exit code is non-zero if any parity check fails; the speedup numbers are
// reported, not gated, so a loaded machine cannot turn the bench red.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algo/lash.h"
#include "algo/sequential.h"
#include "datagen/corpus_recipes.h"
#include "util/timer.h"

namespace lash {
namespace {

struct PathResult {
  PhaseTimes times;
  uint64_t bytes = 0;
  uint64_t records = 0;
  uint64_t groups = 0;
  size_t patterns = 0;
  PatternMap output;
};

struct WorkloadReport {
  std::string name;
  GsmParams params;
  bool combiner = true;
  size_t sequences = 0;
  PathResult legacy;
  PathResult packed;
  double speedup_total = 0;
  bool parity = true;
  bool sequential_match = true;
  bool bytes_match = true;
};

PathResult RunPath(const PreprocessResult& pre, const GsmParams& params,
                   ShuffleMode mode, bool combiner, int reps) {
  JobConfig config;
  config.num_map_tasks = 16;
  config.num_reduce_tasks = 16;
  config.shuffle = mode;
  LashOptions options;
  options.use_combiner = combiner;
  // Counters and outputs are identical across repetitions (asserted for the
  // patterns); the fastest run is reported to damp scheduler noise.
  PathResult out;
  for (int rep = 0; rep < reps; ++rep) {
    AlgoResult result = RunLash(pre, params, config, options);
    if (rep > 0 && SortedPatterns(result.patterns) !=
                       SortedPatterns(out.output)) {
      std::fprintf(stderr, "PARITY FAILURE: unstable output across reps\n");
      out.output.clear();  // Poison the parity checks downstream.
    }
    if (rep == 0 || result.job.times.TotalMs() < out.times.TotalMs()) {
      out.times = result.job.times;
    }
    if (rep == 0) {
      out.bytes = result.job.counters.map_output_bytes;
      out.records = result.job.counters.map_output_records;
      out.groups = result.job.counters.reduce_input_groups;
      out.patterns = result.patterns.size();
      out.output = std::move(result.patterns);
    }
  }
  return out;
}

WorkloadReport RunWorkload(const std::string& name,
                           const PreprocessResult& pre, const GsmParams& params,
                           bool combiner, int reps) {
  WorkloadReport report;
  report.name = name;
  report.params = params;
  report.combiner = combiner;
  report.sequences = pre.database.size();

  report.legacy = RunPath(pre, params, ShuffleMode::kLegacyHash, combiner,
                          reps);
  report.packed = RunPath(pre, params, ShuffleMode::kPackedSpill, combiner,
                          reps);

  report.speedup_total =
      report.legacy.times.TotalMs() /
      std::max(report.packed.times.TotalMs(), 1e-9);

  if (SortedPatterns(report.legacy.output) !=
      SortedPatterns(report.packed.output)) {
    std::fprintf(stderr, "PARITY FAILURE: packed vs legacy on %s\n",
                 name.c_str());
    report.parity = false;
  }
  PatternMap sequential = MineSequential(pre, params, MinerKind::kPsmIndex,
                                         /*stats=*/nullptr, /*num_threads=*/0);
  if (SortedPatterns(report.packed.output) != SortedPatterns(sequential)) {
    std::fprintf(stderr, "PARITY FAILURE: packed vs MineSequential on %s\n",
                 name.c_str());
    report.sequential_match = false;
  }
  // The packed path measures its buffers; the legacy path simulates the
  // same varint format per record. Same options => identical records =>
  // identical bytes, or one of the accountings is wrong.
  if (report.legacy.bytes != report.packed.bytes) {
    std::fprintf(stderr,
                 "BYTE ACCOUNTING FAILURE on %s: legacy=%" PRIu64
                 " packed=%" PRIu64 "\n",
                 name.c_str(), report.legacy.bytes, report.packed.bytes);
    report.bytes_match = false;
  }

  auto print_path = [](const char* label, const PathResult& p) {
    std::printf(
        "  %-8s map=%8.1fms shuffle=%8.1fms reduce=%8.1fms total=%8.1fms "
        "bytes=%.2fMB records=%" PRIu64 " groups=%" PRIu64 "\n",
        label, p.times.map_ms, p.times.shuffle_ms, p.times.reduce_ms,
        p.times.TotalMs(), static_cast<double>(p.bytes) / 1e6, p.records,
        p.groups);
  };
  std::printf("%-10s %zu sequences, combiner=%s, %zu patterns\n", name.c_str(),
              report.sequences, combiner ? "on" : "off",
              report.packed.patterns);
  print_path("legacy", report.legacy);
  print_path("packed", report.packed);
  std::printf("  speedup: %.2fx total; parity %s, bytes %s\n",
              report.speedup_total,
              report.parity && report.sequential_match ? "ok" : "FAILED",
              report.bytes_match ? "ok" : "FAILED");
  std::fflush(stdout);
  return report;
}

void WriteJsonPath(std::FILE* f, const char* label, const PathResult& p,
                   const char* trailing) {
  std::fprintf(f,
               "      \"%s\": {\"map_ms\": %.3f, \"shuffle_ms\": %.3f, "
               "\"reduce_ms\": %.3f, \"total_ms\": %.3f, \"bytes\": %" PRIu64
               ", \"records\": %" PRIu64 ", \"groups\": %" PRIu64
               ", \"patterns\": %zu}%s\n",
               label, p.times.map_ms, p.times.shuffle_ms, p.times.reduce_ms,
               p.times.TotalMs(), p.bytes, p.records, p.groups, p.patterns,
               trailing);
}

bool WriteJson(const std::string& path,
               const std::vector<WorkloadReport>& workloads, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"shuffle\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const WorkloadReport& w = workloads[i];
    std::fprintf(f,
                 "    {\n      \"name\": \"%s\",\n      \"sigma\": %" PRIu64
                 ",\n      \"gamma\": %u,\n      \"lambda\": %u,\n"
                 "      \"combiner\": %s,\n      \"sequences\": %zu,\n",
                 w.name.c_str(), w.params.sigma, w.params.gamma,
                 w.params.lambda, w.combiner ? "true" : "false", w.sequences);
    WriteJsonPath(f, "legacy", w.legacy, ",");
    WriteJsonPath(f, "packed", w.packed, ",");
    std::fprintf(f,
                 "      \"speedup_total\": %.3f,\n"
                 "      \"parity\": %s,\n"
                 "      \"sequential_match\": %s,\n"
                 "      \"bytes_match\": %s\n    }%s\n",
                 w.speedup_total,
                 w.parity ? "true" : "false",
                 w.sequential_match ? "true" : "false",
                 w.bytes_match ? "true" : "false",
                 i + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int reps = 0;
  std::string out = "BENCH_shuffle.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--reps N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps <= 0) reps = smoke ? 1 : 3;

  // The full-size NYT-like corpus recipe (datagen/corpus_recipes.h) over
  // the deepest hierarchy; gamma = 0 matches the paper's NYT n-gram
  // experiments (Sec. 6.2) and every bench_fig4* NYT series.
  NytRecipe nyt_recipe;
  if (smoke) {
    nyt_recipe.sentences = 1500;
    nyt_recipe.lemmas = 800;
  }
  GeneratedText text = MakeNytCorpus(nyt_recipe);
  PreprocessResult nyt = Preprocess(text.database, text.hierarchy);

  // AMZN-like sessions with a deep category tree.
  AmznRecipe amzn_recipe;
  if (smoke) {
    amzn_recipe.sessions = 3000;
    amzn_recipe.products = 1500;
  }
  GeneratedProducts products = MakeAmznCorpus(amzn_recipe);
  PreprocessResult amzn = Preprocess(products.database, products.hierarchy);

  GsmParams nyt_params{.sigma = smoke ? Frequency{8} : Frequency{40},
                       .gamma = 0,
                       .lambda = 5};
  GsmParams amzn_params{.sigma = smoke ? Frequency{6} : Frequency{20},
                        .gamma = 0,
                        .lambda = 5};

  std::vector<WorkloadReport> workloads;
  workloads.push_back(
      RunWorkload("nyt-clp", nyt, nyt_params, /*combiner=*/true, reps));
  workloads.push_back(
      RunWorkload("nyt-clp-nocomb", nyt, nyt_params, /*combiner=*/false, reps));
  workloads.push_back(
      RunWorkload("amzn-h8", amzn, amzn_params, /*combiner=*/true, reps));

  bool ok = WriteJson(out, workloads, smoke);
  for (const WorkloadReport& w : workloads) {
    ok = ok && w.parity && w.sequential_match && w.bytes_match;
  }
  if (!ok) {
    std::fprintf(stderr, "bench_shuffle: PARITY CHECKS FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lash

int main(int argc, char** argv) { return lash::Main(argc, argv); }
