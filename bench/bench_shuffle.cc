// bench_shuffle — the perf gate for the LASH shuffle/partitioning hot path.
//
// Times the complete LASH job (map + shuffle + reduce wall clock) with the
// byte-packed spill + sort-based grouping shuffle (ShuffleMode::kPackedSpill,
// the default) against the preserved pre-PR2 path (ShuffleMode::kLegacyHash:
// per-pair heap spill, unordered_map grouping, std::map partitions, serial
// partition mining) on the full-size NYT-like and AMZN-like generated
// corpora. Asserts:
//   * pattern parity of both paths against each other and MineSequential,
//   * MAP_OUTPUT_BYTES parity: the packed path counts real encoded buffer
//     bytes; the legacy path simulates the same varint accounting — equal
//     option sets must produce identical byte counts,
// and writes the results as machine-readable JSON (BENCH_shuffle.json),
// including the pipelined shuffle's overlap breakdown: per-partition
// ready/start/grouped/reduced timestamps, the map barrier, and the
// phase_overlap_ms summary (wall time during which >= 2 phases ran
// concurrently — 0 by construction on a single-thread pool).
//
// Usage: bench_shuffle [--smoke] [--reps N] [--out FILE] [--only SUBSTR]
//   --smoke  small inputs (CI parity gate); implies --reps 1.
//   --reps   repetitions per path; the fastest total is reported (default 3).
//   --out    output JSON path (default BENCH_shuffle.json).
//   --only   run only workloads whose name contains SUBSTR.
//
// Exit code is non-zero if any parity check fails; the speedup numbers are
// reported, not gated, so a loaded machine cannot turn the bench red.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algo/lash.h"
#include "algo/sequential.h"
#include "datagen/corpus_recipes.h"
#include "util/timer.h"

namespace lash {
namespace {

struct PathResult {
  PhaseTimes times;
  uint64_t bytes = 0;
  uint64_t records = 0;
  uint64_t groups = 0;
  size_t patterns = 0;
  // Pipelined-shuffle overlap breakdown (packed path only; legacy keeps the
  // strict barrier and reports pipelined=false with an empty timeline).
  bool pipelined = false;
  double map_barrier_ms = 0;
  double phase_overlap_ms = 0;
  std::vector<PartitionTimeline> partition_timeline;
  PatternMap output;
};

struct WorkloadReport {
  std::string name;
  GsmParams params;
  bool combiner = true;
  size_t sequences = 0;
  PathResult legacy;
  PathResult packed;
  double speedup_total = 0;
  double speedup_map = 0;
  bool parity = true;
  bool sequential_match = true;
  bool bytes_match = true;
};

// Runs one repetition of a path and folds it into `out`: the fastest
// total is reported (damps scheduler noise), counters come from the first
// rep (identical across reps), and pattern stability is asserted.
void RunRep(PathResult* out, const PreprocessResult& pre,
            const GsmParams& params, ShuffleMode mode, bool combiner,
            int rep) {
  JobConfig config;
  config.num_map_tasks = 16;
  config.num_reduce_tasks = 16;
  config.shuffle = mode;
  LashOptions options;
  options.use_combiner = combiner;
  AlgoResult result = RunLash(pre, params, config, options);
  if (rep > 0 &&
      SortedPatterns(result.patterns) != SortedPatterns(out->output)) {
    std::fprintf(stderr, "PARITY FAILURE: unstable output across reps\n");
    out->output.clear();  // Poison the parity checks downstream.
  }
  if (rep == 0 || result.job.times.TotalMs() < out->times.TotalMs()) {
    // The overlap breakdown travels with the rep whose times are
    // reported, so the timeline is consistent with map/shuffle/reduce.
    out->times = result.job.times;
    out->pipelined = result.job.pipelined;
    out->map_barrier_ms = result.job.map_barrier_ms;
    out->phase_overlap_ms = result.job.phase_overlap_ms;
    out->partition_timeline = std::move(result.job.partition_timeline);
  }
  if (rep == 0) {
    out->bytes = result.job.counters.map_output_bytes;
    out->records = result.job.counters.map_output_records;
    out->groups = result.job.counters.reduce_input_groups;
    out->patterns = result.patterns.size();
    out->output = std::move(result.patterns);
  }
}

WorkloadReport RunWorkload(const std::string& name,
                           const PreprocessResult& pre, const GsmParams& params,
                           bool combiner, int reps) {
  WorkloadReport report;
  report.name = name;
  report.params = params;
  report.combiner = combiner;
  report.sequences = pre.database.size();

  // Interleave legacy and packed repetitions so slow machine drift (CPU
  // frequency, page cache) biases both paths alike instead of whichever
  // path happened to run in the slow window.
  for (int rep = 0; rep < reps; ++rep) {
    RunRep(&report.legacy, pre, params, ShuffleMode::kLegacyHash, combiner,
           rep);
    RunRep(&report.packed, pre, params, ShuffleMode::kPackedSpill, combiner,
           rep);
  }

  report.speedup_total =
      report.legacy.times.TotalMs() /
      std::max(report.packed.times.TotalMs(), 1e-9);
  // Map-phase speedup in isolation: this is where the rewrite work lives,
  // so it attributes the fused-rewrite win even on workloads whose total
  // is dominated by the shared reduce-side mining.
  report.speedup_map =
      report.legacy.times.map_ms / std::max(report.packed.times.map_ms, 1e-9);

  if (SortedPatterns(report.legacy.output) !=
      SortedPatterns(report.packed.output)) {
    std::fprintf(stderr, "PARITY FAILURE: packed vs legacy on %s\n",
                 name.c_str());
    report.parity = false;
  }
  PatternMap sequential = MineSequential(pre, params, MinerKind::kPsmIndex,
                                         /*stats=*/nullptr, /*num_threads=*/0);
  if (SortedPatterns(report.packed.output) != SortedPatterns(sequential)) {
    std::fprintf(stderr, "PARITY FAILURE: packed vs MineSequential on %s\n",
                 name.c_str());
    report.sequential_match = false;
  }
  // The packed path measures its buffers; the legacy path simulates the
  // same varint format per record. Same options => identical records =>
  // identical bytes, or one of the accountings is wrong.
  if (report.legacy.bytes != report.packed.bytes) {
    std::fprintf(stderr,
                 "BYTE ACCOUNTING FAILURE on %s: legacy=%" PRIu64
                 " packed=%" PRIu64 "\n",
                 name.c_str(), report.legacy.bytes, report.packed.bytes);
    report.bytes_match = false;
  }

  auto print_path = [](const char* label, const PathResult& p) {
    std::printf(
        "  %-8s map=%8.1fms shuffle=%8.1fms reduce=%8.1fms total=%8.1fms "
        "bytes=%.2fMB records=%" PRIu64 " groups=%" PRIu64 "\n",
        label, p.times.map_ms, p.times.shuffle_ms, p.times.reduce_ms,
        p.times.TotalMs(), static_cast<double>(p.bytes) / 1e6, p.records,
        p.groups);
  };
  std::printf("%-10s %zu sequences, combiner=%s, %zu patterns\n", name.c_str(),
              report.sequences, combiner ? "on" : "off",
              report.packed.patterns);
  print_path("legacy", report.legacy);
  print_path("packed", report.packed);
  if (report.packed.pipelined) {
    std::printf("  pipelined: map_barrier=%8.1fms phase_overlap=%8.1fms\n",
                report.packed.map_barrier_ms, report.packed.phase_overlap_ms);
  }
  std::printf("  speedup: %.2fx total, %.2fx map; parity %s, bytes %s\n",
              report.speedup_total, report.speedup_map,
              report.parity && report.sequential_match ? "ok" : "FAILED",
              report.bytes_match ? "ok" : "FAILED");
  std::fflush(stdout);
  return report;
}

void WriteJsonPath(std::FILE* f, const char* label, const PathResult& p,
                   const char* trailing) {
  std::fprintf(f,
               "      \"%s\": {\"map_ms\": %.3f, \"shuffle_ms\": %.3f, "
               "\"reduce_ms\": %.3f, \"total_ms\": %.3f, \"bytes\": %" PRIu64
               ", \"records\": %" PRIu64 ", \"groups\": %" PRIu64
               ", \"patterns\": %zu,\n"
               "        \"pipelined\": %s, \"map_barrier_ms\": %.3f, "
               "\"phase_overlap_ms\": %.3f",
               label, p.times.map_ms, p.times.shuffle_ms, p.times.reduce_ms,
               p.times.TotalMs(), p.bytes, p.records, p.groups, p.patterns,
               p.pipelined ? "true" : "false", p.map_barrier_ms,
               p.phase_overlap_ms);
  if (p.partition_timeline.empty()) {
    std::fprintf(f, "}%s\n", trailing);
    return;
  }
  // Per-partition ready -> grouping-start -> grouped -> reduced stamps (ms
  // since job start), in partition order. `ready` is when the last map task
  // sealed the partition's spill; `start` is when a worker picked it up.
  std::fprintf(f, ",\n        \"partitions\": [\n");
  for (size_t i = 0; i < p.partition_timeline.size(); ++i) {
    const PartitionTimeline& t = p.partition_timeline[i];
    std::fprintf(f,
                 "          {\"ready_ms\": %.3f, \"start_ms\": %.3f, "
                 "\"grouped_ms\": %.3f, \"reduced_ms\": %.3f}%s\n",
                 t.ready_ms, t.start_ms, t.grouped_ms, t.reduced_ms,
                 i + 1 < p.partition_timeline.size() ? "," : "");
  }
  std::fprintf(f, "        ]}%s\n", trailing);
}

bool WriteJson(const std::string& path,
               const std::vector<WorkloadReport>& workloads, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"shuffle\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const WorkloadReport& w = workloads[i];
    std::fprintf(f,
                 "    {\n      \"name\": \"%s\",\n      \"sigma\": %" PRIu64
                 ",\n      \"gamma\": %u,\n      \"lambda\": %u,\n"
                 "      \"combiner\": %s,\n      \"sequences\": %zu,\n",
                 w.name.c_str(), w.params.sigma, w.params.gamma,
                 w.params.lambda, w.combiner ? "true" : "false", w.sequences);
    WriteJsonPath(f, "legacy", w.legacy, ",");
    WriteJsonPath(f, "packed", w.packed, ",");
    std::fprintf(f,
                 "      \"speedup_total\": %.3f,\n"
                 "      \"speedup_map\": %.3f,\n"
                 "      \"parity\": %s,\n"
                 "      \"sequential_match\": %s,\n"
                 "      \"bytes_match\": %s\n    }%s\n",
                 w.speedup_total, w.speedup_map,
                 w.parity ? "true" : "false",
                 w.sequential_match ? "true" : "false",
                 w.bytes_match ? "true" : "false",
                 i + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  int reps = 0;
  std::string out = "BENCH_shuffle.json";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--reps N] [--out FILE] "
                   "[--only SUBSTR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps <= 0) reps = smoke ? 1 : 3;

  // The full-size NYT-like corpus recipe (datagen/corpus_recipes.h) over
  // the deepest hierarchy; gamma = 0 matches the paper's NYT n-gram
  // experiments (Sec. 6.2) and every bench_fig4* NYT series.
  NytRecipe nyt_recipe;
  if (smoke) {
    nyt_recipe.sentences = 1500;
    nyt_recipe.lemmas = 800;
  }
  GeneratedText text = MakeNytCorpus(nyt_recipe);
  PreprocessResult nyt = Preprocess(text.database, text.hierarchy);

  // AMZN-like sessions with a deep category tree. Long browsing sessions
  // (~16 events instead of the recipe's 4.5) keep the job map/shuffle
  // bound — what this bench gates — rather than dominated by the
  // reduce-side PSM mining both paths share: each of a session's distinct
  // pivots makes the legacy driver rescan the whole session, so map-side
  // rewrite cost grows superlinearly with session length while the fused
  // loop stays occurrence-driven. lambda = 3 (typical session-analytics
  // maximal length) caps the shared mining floor for the same reason.
  AmznRecipe amzn_recipe;
  if (smoke) {
    amzn_recipe.sessions = 3000;
    amzn_recipe.products = 1500;
  }
  ProductGenConfig amzn_config = AmznConfig(amzn_recipe);
  amzn_config.avg_session_length = 16.0;
  GeneratedProducts products = GenerateProducts(amzn_config);
  PreprocessResult amzn = Preprocess(products.database, products.hierarchy);

  // The gamma > 0 variant mines the recipe's stock short sessions with
  // gaps. Gap mining makes the reduce-side PSM share (identical on both
  // paths) dominate the total, so the number to watch here is the map
  // speedup: the packed map phase runs the fused gamma>0 rewrite, the
  // legacy driver the per-pivot gap-window DP.
  GeneratedProducts products_g1 = MakeAmznCorpus(amzn_recipe);
  PreprocessResult amzn_g1 =
      Preprocess(products_g1.database, products_g1.hierarchy);

  GsmParams nyt_params{.sigma = smoke ? Frequency{8} : Frequency{40},
                       .gamma = 0,
                       .lambda = 5};
  GsmParams amzn_params{.sigma = smoke ? Frequency{6} : Frequency{120},
                        .gamma = 0,
                        .lambda = 3};
  GsmParams amzn_g1_params{.sigma = smoke ? Frequency{6} : Frequency{60},
                           .gamma = 1,
                           .lambda = 5};

  std::vector<WorkloadReport> workloads;
  auto wanted = [&only](const char* name) {
    return only.empty() || std::string(name).find(only) != std::string::npos;
  };
  if (wanted("nyt-clp")) {
    workloads.push_back(
        RunWorkload("nyt-clp", nyt, nyt_params, /*combiner=*/true, reps));
  }
  if (wanted("nyt-clp-nocomb")) {
    workloads.push_back(RunWorkload("nyt-clp-nocomb", nyt, nyt_params,
                                    /*combiner=*/false, reps));
  }
  if (wanted("amzn-h8")) {
    workloads.push_back(
        RunWorkload("amzn-h8", amzn, amzn_params, /*combiner=*/true, reps));
  }
  if (wanted("amzn-h8-g1")) {
    workloads.push_back(RunWorkload("amzn-h8-g1", amzn_g1, amzn_g1_params,
                                    /*combiner=*/true, reps));
  }

  bool ok = WriteJson(out, workloads, smoke);
  for (const WorkloadReport& w : workloads) {
    ok = ok && w.parity && w.sequential_match && w.bytes_match;
  }
  if (!ok) {
    std::fprintf(stderr, "bench_shuffle: PARITY CHECKS FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lash

int main(int argc, char** argv) { return lash::Main(argc, argv); }
