#ifndef LASH_BENCH_BENCH_COMMON_H_
#define LASH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "algo/lash.h"
#include "algo/mgfsm.h"
#include "algo/naive_gsm.h"
#include "algo/seminaive_gsm.h"
#include "datagen/corpus_recipes.h"
#include "datagen/product_gen.h"
#include "datagen/text_gen.h"

namespace lash::bench {

/// Scaled-down stand-ins for the paper's datasets (see DESIGN.md §3):
/// the NYT corpus (50M sentences) becomes 20k synthetic sentences, the
/// AMZN dataset (6.6M sessions) becomes 20k synthetic sessions. Support
/// thresholds in the individual benches are scaled accordingly; every
/// comparison runs both competitors on identical data. The corpus *shape*
/// (lemma/product counts, seeds, hierarchy defaults) is defined once in
/// datagen/corpus_recipes.h and shared with the gate benches and the
/// tools' --gen modes.
inline constexpr size_t kNytSentences = NytRecipe{}.sentences;
inline constexpr size_t kNytLemmas = NytRecipe{}.lemmas;
inline constexpr size_t kAmznSessions = AmznRecipe{}.sessions;
inline constexpr size_t kAmznProducts = AmznRecipe{}.products;

inline JobConfig DefaultJobConfig() {
  JobConfig config;
  config.num_map_tasks = 16;
  config.num_reduce_tasks = 16;
  return config;
}

/// Generates (and caches per-process) the NYT-like corpus for a hierarchy
/// variant, optionally subsampled to `percent` of the sentences (Fig. 6).
inline const GeneratedText& NytData(TextHierarchy kind, size_t sentences =
                                                            kNytSentences) {
  static std::map<std::pair<int, size_t>, std::unique_ptr<GeneratedText>> cache;
  auto key = std::make_pair(static_cast<int>(kind), sentences);
  auto it = cache.find(key);
  if (it == cache.end()) {
    NytRecipe recipe;
    recipe.sentences = sentences;
    recipe.hierarchy = kind;
    it = cache.emplace(key, std::make_unique<GeneratedText>(
                                MakeNytCorpus(recipe))).first;
  }
  return *it->second;
}

/// Generates (and caches) the AMZN-like dataset for a hierarchy depth.
inline const GeneratedProducts& AmznData(int levels,
                                         size_t sessions = kAmznSessions) {
  static std::map<std::pair<int, size_t>, std::unique_ptr<GeneratedProducts>>
      cache;
  auto key = std::make_pair(levels, sessions);
  auto it = cache.find(key);
  if (it == cache.end()) {
    AmznRecipe recipe;
    recipe.sessions = sessions;
    recipe.levels = levels;
    it = cache.emplace(key, std::make_unique<GeneratedProducts>(
                                MakeAmznCorpus(recipe))).first;
  }
  return *it->second;
}

/// Caches preprocessing results keyed by an arbitrary label.
inline const PreprocessResult& Preprocessed(const std::string& label,
                                            const Database& db,
                                            const Hierarchy& h) {
  static std::map<std::string, std::unique_ptr<PreprocessResult>> cache;
  auto it = cache.find(label);
  if (it == cache.end()) {
    it = cache.emplace(label, std::make_unique<PreprocessResult>(
                                  Preprocess(db, h))).first;
  }
  return *it->second;
}

/// Prints one paper-style series row. Used in addition to the
/// google-benchmark counters so the bench output reads like the figure.
inline void PrintRow(const std::string& figure, const std::string& series,
                     const std::string& x, const AlgoResult& result) {
  std::printf(
      "%-8s %-12s %-18s map=%8.0fms shuffle=%6.0fms reduce=%8.0fms "
      "total=%8.0fms bytes=%9.2fMB outputs=%8zu%s\n",
      figure.c_str(), series.c_str(), x.c_str(), result.job.times.map_ms,
      result.job.times.shuffle_ms, result.job.times.reduce_ms,
      result.job.times.TotalMs(),
      static_cast<double>(result.job.counters.map_output_bytes) / 1e6,
      result.patterns.size(), result.aborted ? "  [DNF: emit cap]" : "");
  std::fflush(stdout);
}

/// Attaches the standard counters to a benchmark state.
template <typename State>
void SetCounters(State& state, const AlgoResult& result) {
  state.counters["map_ms"] = result.job.times.map_ms;
  state.counters["shuffle_ms"] = result.job.times.shuffle_ms;
  state.counters["reduce_ms"] = result.job.times.reduce_ms;
  state.counters["total_ms"] = result.job.times.TotalMs();
  state.counters["MB"] =
      static_cast<double>(result.job.counters.map_output_bytes) / 1e6;
  state.counters["outputs"] = static_cast<double>(result.patterns.size());
  state.counters["DNF"] = result.aborted ? 1 : 0;
}

}  // namespace lash::bench

#endif  // LASH_BENCH_BENCH_COMMON_H_
