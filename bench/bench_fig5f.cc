// Fig. 5(f): effect of the hierarchy *type* (NYT L/P/LP/CLP) on LASH with
// sigma=100, lambda=5 (generalized n-grams, gamma=0), on identical
// sentences.
//
// Expected shape: P (few roots, huge fan-out, highly frequent roots) mines
// slower than L (many roots, tiny fan-out) despite both having two levels;
// adding levels (LP, CLP) increases both map and reduce times.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

const TextHierarchy kKinds[] = {TextHierarchy::kL, TextHierarchy::kP,
                                TextHierarchy::kLP, TextHierarchy::kCLP};

void BM_LashHierarchyType(benchmark::State& state) {
  TextHierarchy kind = kKinds[state.range(0)];
  const GeneratedText& data = NytData(kind);
  const PreprocessResult& pre =
      Preprocessed(TextHierarchyName(kind), data.database, data.hierarchy);
  GsmParams params{.sigma = 100, .gamma = 0, .lambda = 5};
  for (auto _ : state) {
    AlgoResult result = RunLash(pre, params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig5f", "LASH", TextHierarchyName(kind), result);
  }
  state.SetLabel(TextHierarchyName(kind));
}

BENCHMARK(BM_LashHierarchyType)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
