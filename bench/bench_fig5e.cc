// Fig. 5(e): effect of hierarchy depth (AMZN h2/h3/h4/h8) on LASH with
// sigma=100, gamma=2, lambda=5, on identical session streams.
//
// Expected shape: map time grows slightly with depth (rewrites walk longer
// ancestor chains); reduce time grows with the number of intermediate items
// (more partitions, deeper generalization), with the h4 -> h8 step muted
// because most products attach within the first four levels.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace lash::bench {
namespace {

const int kLevels[] = {2, 3, 4, 8};

void BM_LashDepth(benchmark::State& state) {
  int levels = kLevels[state.range(0)];
  const GeneratedProducts& data = AmznData(levels);
  const PreprocessResult& pre = Preprocessed(ProductHierarchyName(levels),
                                             data.database, data.hierarchy);
  GsmParams params{.sigma = 100, .gamma = 2, .lambda = 5};
  for (auto _ : state) {
    AlgoResult result = RunLash(pre, params, DefaultJobConfig());
    SetCounters(state, result);
    PrintRow("Fig5e", "LASH", ProductHierarchyName(levels), result);
  }
  state.SetLabel(ProductHierarchyName(levels));
}

BENCHMARK(BM_LashDepth)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace lash::bench

BENCHMARK_MAIN();
