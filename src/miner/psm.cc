#include "miner/psm.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace lash {

namespace psm_internal {

void SortUniqueEvents(std::vector<ExpansionEvent>* events, size_t from) {
  auto first = events->begin() + static_cast<ptrdiff_t>(from);
  std::sort(first, events->end());
  events->erase(std::unique(first, events->end()), events->end());
}

void EventRegrouper::Prepare(size_t num_items) {
  if (item_epoch_.size() < num_items) {
    item_epoch_.assign(num_items, 0);
    item_count_.resize(num_items);
    item_cursor_.resize(num_items);
    epoch_ = 0;
  }
}

size_t EventRegrouper::Regroup(std::vector<ExpansionEvent>* events,
                               size_t from,
                               const std::vector<Frequency>& weights,
                               std::vector<EventGroup>* groups) {
  const size_t end = events->size();
  if (from == end) return from;
  ExpansionEvent* ev = events->data();

  // Count events per item; `touched_` records the distinct items so the
  // counter arrays never need a full clear (epoch-based lazy reset).
  ++epoch_;
  touched_.clear();
  for (size_t i = from; i < end; ++i) {
    ItemId a = ev[i].item;
    if (item_epoch_[a] != epoch_) {
      item_epoch_[a] = epoch_;
      item_count_[a] = 0;
      touched_.push_back(a);
    }
    ++item_count_[a];
  }

  // Bucket offsets in ascending item order, then a stable scatter: within a
  // bucket the generation order survives, so tids stay nondecreasing and
  // each (item, tid) posting is a contiguous run.
  std::sort(touched_.begin(), touched_.end());
  uint32_t offset = 0;
  for (ItemId a : touched_) {
    item_cursor_[a] = offset;
    offset += item_count_[a];
  }
  if (scratch_.size() < end - from) scratch_.resize(end - from);
  for (size_t i = from; i < end; ++i) {
    scratch_[item_cursor_[ev[i].item]++] = ev[i];
  }

  // Copy back bucket by bucket, sorting and deduplicating the embeddings of
  // each (item, tid) run — runs are per-transaction and tiny, so this is
  // the only comparison sorting left in the pipeline. The same pass
  // accumulates each group's weighted document frequency (one weight per
  // tid run), so the caller's support test needs no further scan.
  size_t write = from;
  size_t pos = 0;
  for (ItemId a : touched_) {
    const size_t bucket_end = pos + item_count_[a];
    EventGroup group{a, write, write, 0};
    while (pos < bucket_end) {
      size_t run_end = pos + 1;
      const uint32_t tid = scratch_[pos].tid;
      while (run_end < bucket_end && scratch_[run_end].tid == tid) ++run_end;
      group.weight += weights[tid];
      if (run_end - pos == 1) {
        ev[write++] = scratch_[pos];
      } else {
        if (run_end - pos > 2) {
          std::sort(scratch_.begin() + static_cast<ptrdiff_t>(pos),
                    scratch_.begin() + static_cast<ptrdiff_t>(run_end),
                    [](const ExpansionEvent& x, const ExpansionEvent& y) {
                      return x.emb < y.emb;
                    });
        } else if (scratch_[pos + 1].emb < scratch_[pos].emb) {
          std::swap(scratch_[pos], scratch_[pos + 1]);
        }
        for (size_t k = pos; k < run_end; ++k) {
          if (k == pos || scratch_[k].emb != scratch_[k - 1].emb) {
            ev[write++] = scratch_[k];
          }
        }
      }
      pos = run_end;
    }
    group.end = write;
    groups->push_back(group);
  }
  events->resize(write);
  return write;
}

void EventRegrouper::RegroupPacked(const std::vector<ExpansionEvent>& events,
                                   size_t from,
                                   const std::vector<Frequency>& weights,
                                   std::string* packed,
                                   std::vector<EventGroup>* groups) {
  const size_t end = events.size();
  if (from == end) return;
  const ExpansionEvent* ev = events.data();

  // Identical counting scatter to Regroup (see there for the invariants);
  // only the output side differs: survivors are delta-encoded onto the
  // packed arena instead of compacted in place.
  ++epoch_;
  touched_.clear();
  for (size_t i = from; i < end; ++i) {
    ItemId a = ev[i].item;
    if (item_epoch_[a] != epoch_) {
      item_epoch_[a] = epoch_;
      item_count_[a] = 0;
      touched_.push_back(a);
    }
    ++item_count_[a];
  }
  std::sort(touched_.begin(), touched_.end());
  uint32_t offset = 0;
  for (ItemId a : touched_) {
    item_cursor_[a] = offset;
    offset += item_count_[a];
  }
  if (scratch_.size() < end - from) scratch_.resize(end - from);
  for (size_t i = from; i < end; ++i) {
    scratch_[item_cursor_[ev[i].item]++] = ev[i];
  }

  size_t pos = 0;
  for (ItemId a : touched_) {
    const size_t bucket_end = pos + item_count_[a];
    EventGroup group{a, packed->size(), packed->size(), 0};
    PostingEncoder enc;
    while (pos < bucket_end) {
      size_t run_end = pos + 1;
      const uint32_t tid = scratch_[pos].tid;
      while (run_end < bucket_end && scratch_[run_end].tid == tid) ++run_end;
      group.weight += weights[tid];
      if (run_end - pos == 1) {
        enc.Append(packed, tid, scratch_[pos].emb);
      } else {
        if (run_end - pos > 2) {
          std::sort(scratch_.begin() + static_cast<ptrdiff_t>(pos),
                    scratch_.begin() + static_cast<ptrdiff_t>(run_end),
                    [](const ExpansionEvent& x, const ExpansionEvent& y) {
                      return x.emb < y.emb;
                    });
        } else if (scratch_[pos + 1].emb < scratch_[pos].emb) {
          std::swap(scratch_[pos], scratch_[pos + 1]);
        }
        for (size_t k = pos; k < run_end; ++k) {
          if (k == pos || scratch_[k].emb != scratch_[k - 1].emb) {
            enc.Append(packed, tid, scratch_[k].emb);
          }
        }
      }
      pos = run_end;
    }
    group.end = packed->size();
    groups->push_back(group);
  }
}

}  // namespace psm_internal

namespace {

using psm_internal::EventGroup;
using psm_internal::EventRegrouper;
using psm_internal::ExpansionEvent;
using psm_internal::PostingCursor;
using psm_internal::PostingEncoder;
using psm_internal::RightIndexPool;

// An expansion database: a byte range of the shared packed postings
// arena. Postings in the range share one item and are sorted by (tid,
// embedding), i.e. the databases' postings are the maximal tid-runs of
// the range. Offset (not iterator/pointer) ranges stay valid while
// children are appended above them.
struct NodeDb {
  size_t begin;
  size_t end;
};

class PsmRun {
 public:
  PsmRun(const Partition& partition, const Hierarchy& h,
         const GsmParams& params, ItemId pivot, RightIndexPool* index_pool,
         MinerStats* stats)
      : partition_(partition),
        h_(h),
        params_(params),
        pivot_(pivot),
        index_pool_(index_pool),
        stats_(stats) {}

  PatternMap Mine() {
    regrouper_.Prepare(static_cast<size_t>(pivot_) + 1);
    if (index_pool_ != nullptr) {
      // One row per simultaneously-live left node (the left recursion is
      // at most lambda deep), each with one set per right-expansion depth.
      // The pool belongs to the PsmMiner, so this reuses (and only grows)
      // the arena the previous partitions already paid for.
      index_pool_->Prepare(params_.lambda, params_.lambda,
                           static_cast<size_t>(pivot_) + 1);
    }
    // Seed database: one posting per pivot occurrence, encoded straight
    // onto the packed arena. The scan order (tid ascending, position
    // ascending) already matches the sorted-unique posting invariant, so
    // no sort is needed.
    PostingEncoder seed;
    for (uint32_t tid = 0; tid < partition_.size(); ++tid) {
      const SequenceView t = partition_.sequences[tid];
      for (uint32_t pos = 0; pos < t.size(); ++pos) {
        // On w-generalized partitions only the literal pivot matches, but
        // PSM stays correct on raw partitions (descendants of the pivot
        // may still occur, e.g. under RewriteLevel::kNone).
        if (IsItem(t[pos]) && h_.GeneralizesTo(t[pos], pivot_)) {
          seed.Append(&packed_, tid, Embedding{pos, pos});
        }
      }
    }
    Sequence pattern{pivot_};
    LeftNode(pattern, NodeDb{0, packed_.size()}, /*left_depth=*/0,
             /*parent_row=*/kNoRow);
    return std::move(output_);
  }

 private:
  static constexpr size_t kNoRow = static_cast<size_t>(-1);

  // Processes a node of the form Sl·w: runs its series of right expansions
  // (building its own right index in pool row `left_depth`), then
  // left-expands. `parent_row` is the pool row of the parent left node, or
  // kNoRow at the root (no index to prune against).
  void LeftNode(Sequence& pattern, const NodeDb& db, size_t left_depth,
                size_t parent_row) {
    size_t my_row = kNoRow;
    if (index_pool_ != nullptr) {
      my_row = left_depth;
      index_pool_->NewGeneration(my_row);
    }
    ExpandRight(pattern, db, /*depth=*/0, parent_row, my_row);
    ExpandLeft(pattern, db, left_depth, my_row);
  }

  // One right-expansion step: pattern -> pattern + a for frequent a != pivot.
  void ExpandRight(Sequence& pattern, const NodeDb& db, uint32_t depth,
                   size_t parent_row, size_t my_row) {
    if (pattern.size() >= params_.lambda) return;
    const bool pruned =
        parent_row != kNoRow && depth < index_pool_->depths();
    if (pruned && index_pool_->Empty(parent_row, depth)) {
      return;  // R_S = ∅: skip the scan (Sec. 5.2).
    }
    const size_t mark = packed_.size();
    gen_.clear();
    PostingCursor cursor(db.begin);
    uint32_t tid = 0;
    Embedding emb{0, 0};
    while (cursor.Next(packed_, db.end, &tid, &emb)) {
      const SequenceView t = partition_.sequences[tid];
      uint64_t hi = std::min<uint64_t>(
          t.size(), static_cast<uint64_t>(emb.end) + params_.gamma + 2);
      for (uint32_t j = emb.end + 1; j < hi; ++j) {
        if (!IsItem(t[j])) continue;
        for (ItemId a : h_.AncestorSpan(t[j])) {
          if (a > pivot_) continue;  // Not pivot-relevant (raw partitions).
          if (pruned && !index_pool_->Test(parent_row, depth, a)) {
            continue;  // Pruned by the parent's right index.
          }
          gen_.push_back({a, tid, Embedding{emb.start, j}});
        }
      }
    }
    const size_t gmark = groups_.size();
    regrouper_.RegroupPacked(gen_, 0, partition_.weights, &packed_, &groups_);
    const size_t gend = groups_.size();
    for (size_t gi = gmark; gi < gend; ++gi) {
      const EventGroup g = groups_[gi];  // Copy: recursion appends above.
      if (g.item == pivot_) continue;  // Alg. 2 line 11.
      if (stats_ != nullptr) ++stats_->candidates;
      if (g.weight < params_.sigma) continue;
      pattern.push_back(g.item);
      Output(pattern, g.weight);
      if (my_row != kNoRow) index_pool_->Set(my_row, depth, g.item);
      ExpandRight(pattern, NodeDb{g.begin, g.end}, depth + 1, parent_row,
                  my_row);
      pattern.pop_back();
    }
    // Backtrack: release this level's expansions.
    groups_.resize(gmark);
    packed_.resize(mark);
  }

  // One left-expansion step: pattern -> a + pattern (pivot allowed); each
  // frequent result is a new left node.
  void ExpandLeft(Sequence& pattern, const NodeDb& db, size_t left_depth,
                  size_t my_row) {
    if (pattern.size() >= params_.lambda) return;
    const size_t mark = packed_.size();
    gen_.clear();
    PostingCursor cursor(db.begin);
    uint32_t tid = 0;
    Embedding emb{0, 0};
    while (cursor.Next(packed_, db.end, &tid, &emb)) {
      const SequenceView t = partition_.sequences[tid];
      uint32_t window = params_.gamma + 1;
      uint32_t lo = emb.start >= window ? emb.start - window : 0;
      for (uint32_t j = lo; j < emb.start; ++j) {
        if (!IsItem(t[j])) continue;
        for (ItemId a : h_.AncestorSpan(t[j])) {
          if (a > pivot_) continue;  // Not pivot-relevant (raw partitions).
          gen_.push_back({a, tid, Embedding{j, emb.end}});
        }
      }
    }
    const size_t gmark = groups_.size();
    regrouper_.RegroupPacked(gen_, 0, partition_.weights, &packed_, &groups_);
    const size_t gend = groups_.size();
    for (size_t gi = gmark; gi < gend; ++gi) {
      const EventGroup g = groups_[gi];  // Copy: recursion appends above.
      if (stats_ != nullptr) ++stats_->candidates;
      if (g.weight < params_.sigma) continue;
      pattern.insert(pattern.begin(), g.item);
      Output(pattern, g.weight);
      LeftNode(pattern, NodeDb{g.begin, g.end}, left_depth + 1, my_row);
      pattern.erase(pattern.begin());
    }
    // Backtrack: release this level's expansions.
    groups_.resize(gmark);
    packed_.resize(mark);
  }

  void Output(const Sequence& pattern, Frequency freq) {
    output_.emplace(pattern, freq);
    if (stats_ != nullptr) ++stats_->outputs;
  }

  const Partition& partition_;
  const Hierarchy& h_;
  const GsmParams& params_;
  ItemId pivot_;
  // PSM+Index right indexes, pooled in the owning PsmMiner so capacity and
  // epochs span partitions; null for plain PSM (no index pruning).
  RightIndexPool* index_pool_;
  MinerStats* stats_;
  PatternMap output_;
  // The shared packed-postings arena backing every expansion database of
  // the run (stack-disciplined: children append above, backtrack
  // truncates), the per-step generation buffer the regrouper consumes,
  // and the scatter-based grouper that keeps the arena sorted without
  // full-buffer sorts.
  std::string packed_;
  std::vector<ExpansionEvent> gen_;
  // Per-level group directories, stack-disciplined like packed_.
  std::vector<psm_internal::EventGroup> groups_;
  EventRegrouper regrouper_;
};

}  // namespace

PsmMiner::PsmMiner(const Hierarchy* hierarchy, const GsmParams& params,
                   bool use_index)
    : hierarchy_(hierarchy), params_(params), use_index_(use_index) {
  params_.Validate();
}

PatternMap PsmMiner::Mine(const Partition& partition, ItemId pivot,
                          MinerStats* stats) {
  PsmRun run(partition, *hierarchy_, params_, pivot,
             use_index_ ? &index_pool_ : nullptr, stats);
  return run.Mine();
}

}  // namespace lash
