#include "miner/dfs_miner.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace lash {

namespace {

// Projected database of a pattern: per supporting transaction, the sorted
// distinct end positions of its embeddings.
struct Posting {
  uint32_t tid;
  std::vector<uint32_t> ends;
};
using ProjectedDb = std::vector<Posting>;

class DfsRun {
 public:
  DfsRun(const Partition& partition, const Hierarchy& h,
         const GsmParams& params, ItemId pivot, MinerStats* stats)
      : partition_(partition),
        h_(h),
        params_(params),
        pivot_(pivot),
        stats_(stats) {}

  PatternMap Mine() {
    // Level 1: occurrences of every item and its generalizations.
    std::map<ItemId, ProjectedDb> by_item;
    for (uint32_t tid = 0; tid < partition_.size(); ++tid) {
      const SequenceView t = partition_.sequences[tid];
      for (uint32_t pos = 0; pos < t.size(); ++pos) {
        if (!IsItem(t[pos])) continue;
        for (ItemId a : h_.AncestorSpan(t[pos])) {
          ProjectedDb& db = by_item[a];
          if (db.empty() || db.back().tid != tid) {
            db.push_back(Posting{tid, {}});
          }
          if (db.back().ends.empty() || db.back().ends.back() != pos) {
            db.back().ends.push_back(pos);
          }
        }
      }
    }
    Sequence pattern;
    for (auto& [item, db] : by_item) {
      if (stats_ != nullptr) ++stats_->candidates;
      if (Weight(db) < params_.sigma) continue;
      pattern.push_back(item);
      Grow(pattern, db, item);
      pattern.pop_back();
    }
    return std::move(output_);
  }

 private:
  Frequency Weight(const ProjectedDb& db) const {
    Frequency total = 0;
    for (const Posting& p : db) total += partition_.weights[p.tid];
    return total;
  }

  // Recursively right-expands `pattern` (whose projected database is `db`).
  // `max_item` tracks the largest item seen so far (for the pivot filter).
  void Grow(Sequence& pattern, const ProjectedDb& db, ItemId max_seen) {
    if (pattern.size() >= params_.lambda) return;
    // Collect expansion items with weighted document frequencies and their
    // new end positions in one pass.
    std::map<ItemId, ProjectedDb> expansions;
    for (const Posting& posting : db) {
      const SequenceView t = partition_.sequences[posting.tid];
      // Distinct new end positions reachable from any current end.
      std::vector<uint32_t> windows;
      for (uint32_t e : posting.ends) {
        uint32_t hi = std::min<uint64_t>(t.size(),
                                         static_cast<uint64_t>(e) + params_.gamma + 2);
        for (uint32_t j = e + 1; j < hi; ++j) windows.push_back(j);
      }
      std::sort(windows.begin(), windows.end());
      windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
      for (uint32_t j : windows) {
        const ItemId item = t[j];
        if (!IsItem(item)) continue;
        for (ItemId a : h_.AncestorSpan(item)) {
          ProjectedDb& edb = expansions[a];
          if (edb.empty() || edb.back().tid != posting.tid) {
            edb.push_back(Posting{posting.tid, {}});
          }
          if (edb.back().ends.empty() || edb.back().ends.back() != j) {
            edb.back().ends.push_back(j);
          }
        }
      }
    }
    for (auto& [item, edb] : expansions) {
      if (stats_ != nullptr) ++stats_->candidates;
      if (Weight(edb) < params_.sigma) continue;
      pattern.push_back(item);
      ItemId max_next = std::max(max_seen, item);
      if (pattern.size() >= 2 && MaxItemEquals(max_next)) {
        output_.emplace(pattern, Weight(edb));
        if (stats_ != nullptr) ++stats_->outputs;
      }
      Grow(pattern, edb, max_next);
      pattern.pop_back();
    }
  }

  bool MaxItemEquals(ItemId max_seen) const {
    return pivot_ == kInvalidItem || max_seen == pivot_;
  }

  const Partition& partition_;
  const Hierarchy& h_;
  const GsmParams& params_;
  ItemId pivot_;
  MinerStats* stats_;
  PatternMap output_;
};

}  // namespace

DfsMiner::DfsMiner(const Hierarchy* hierarchy, const GsmParams& params)
    : hierarchy_(hierarchy), params_(params) {
  params_.Validate();
}

PatternMap DfsMiner::Mine(const Partition& partition, ItemId pivot,
                          MinerStats* stats) {
  DfsRun run(partition, *hierarchy_, params_, pivot, stats);
  return run.Mine();
}

}  // namespace lash
