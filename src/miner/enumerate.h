#ifndef LASH_MINER_ENUMERATE_H_
#define LASH_MINER_ENUMERATE_H_

#include <cstdint>

#include "core/database.h"
#include "core/hierarchy.h"
#include "core/params.h"
#include "util/hash.h"
#include "util/types.h"

namespace lash {

/// Enumerates G_λ(T) (Sec. 3.2): every generalized subsequence S of T with
/// `2 <= |S| <= lambda` under gap constraint `gamma`, deduplicated into
/// `out`. Blank positions in T are skipped (they match nothing). Worst-case
/// exponential — this is the point of the naive baseline.
void EnumerateGeneralizedSubsequences(SequenceView t, const Hierarchy& h,
                                      uint32_t gamma, uint32_t lambda,
                                      SequenceSet* out);

/// Enumerates G_{w,λ}(T) (Sec. 4.1, Eq. 2): like above but restricted to
/// pivot sequences — every item has rank <= `pivot` and the maximum item
/// equals `pivot`. Requires a rank-monotone hierarchy.
void EnumeratePivotSequences(SequenceView t, const Hierarchy& h,
                             uint32_t gamma, uint32_t lambda, ItemId pivot,
                             SequenceSet* out);

/// Reference GSM solver: counts every generalized subsequence by brute-force
/// enumeration and keeps those with frequency >= sigma. Ground truth for
/// correctness tests of every other algorithm in this repository.
PatternMap MineByEnumeration(const FlatDatabase& db, const Hierarchy& h,
                             const GsmParams& params);

/// Legacy-form convenience overload.
inline PatternMap MineByEnumeration(const Database& db, const Hierarchy& h,
                                    const GsmParams& params) {
  return MineByEnumeration(FlatDatabase::FromDatabase(db), h, params);
}

/// Reference local miner for a weighted partition: enumerates pivot
/// sequences per transaction and accumulates weights. Ground truth for the
/// BFS/DFS/PSM miner-agreement tests.
PatternMap MinePartitionByEnumeration(const Partition& partition,
                                      const Hierarchy& h,
                                      const GsmParams& params, ItemId pivot);

}  // namespace lash

#endif  // LASH_MINER_ENUMERATE_H_
