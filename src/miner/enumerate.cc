#include "miner/enumerate.h"

#include <algorithm>

namespace lash {

namespace {

// Shared recursive enumerator. When `pivot != kInvalidItem`, only ancestors
// with rank <= pivot are considered and emitted sequences must contain the
// pivot (max item == pivot given the rank cap).
class Enumerator {
 public:
  Enumerator(SequenceView t, const Hierarchy& h, uint32_t gamma,
             uint32_t lambda, ItemId pivot, SequenceSet* out)
      : t_(t), h_(h), gamma_(gamma), lambda_(lambda), pivot_(pivot), out_(out) {}

  void Run() {
    for (size_t i = 0; i < t_.size(); ++i) ExtendAt(i, /*pivot_seen=*/false);
  }

 private:
  // Places the item at position i (and each of its admissible
  // generalizations) as the next pattern element, then recurses on positions
  // within the gap window.
  void ExtendAt(size_t i, bool pivot_seen) {
    if (!IsItem(t_[i])) return;
    ItemId item = t_[i];
    for (ItemId a : h_.AncestorSpan(item)) {
      if (pivot_ != kInvalidItem && a > pivot_) continue;
      bool now_pivot = pivot_seen || a == pivot_;
      current_.push_back(a);
      if (current_.size() >= 2 && (pivot_ == kInvalidItem || now_pivot)) {
        out_->insert(current_);
      }
      if (current_.size() < lambda_) {
        size_t hi = std::min(t_.size(), i + static_cast<size_t>(gamma_) + 2);
        for (size_t j = i + 1; j < hi; ++j) ExtendAt(j, now_pivot);
      }
      current_.pop_back();
    }
  }

  const SequenceView t_;
  const Hierarchy& h_;
  uint32_t gamma_;
  uint32_t lambda_;
  ItemId pivot_;
  SequenceSet* out_;
  Sequence current_;
};

}  // namespace

void EnumerateGeneralizedSubsequences(SequenceView t, const Hierarchy& h,
                                      uint32_t gamma, uint32_t lambda,
                                      SequenceSet* out) {
  Enumerator(t, h, gamma, lambda, kInvalidItem, out).Run();
}

void EnumeratePivotSequences(SequenceView t, const Hierarchy& h,
                             uint32_t gamma, uint32_t lambda, ItemId pivot,
                             SequenceSet* out) {
  Enumerator(t, h, gamma, lambda, pivot, out).Run();
}

PatternMap MineByEnumeration(const FlatDatabase& db, const Hierarchy& h,
                             const GsmParams& params) {
  params.Validate();
  PatternMap counts;
  SequenceSet per_transaction;
  for (SequenceView t : db) {
    per_transaction.clear();
    EnumerateGeneralizedSubsequences(t, h, params.gamma, params.lambda,
                                     &per_transaction);
    for (const Sequence& s : per_transaction) ++counts[s];
  }
  PatternMap frequent;
  for (auto& [seq, freq] : counts) {
    if (freq >= params.sigma) frequent.emplace(seq, freq);
  }
  return frequent;
}

PatternMap MinePartitionByEnumeration(const Partition& partition,
                                      const Hierarchy& h,
                                      const GsmParams& params, ItemId pivot) {
  params.Validate();
  PatternMap counts;
  SequenceSet per_transaction;
  for (size_t i = 0; i < partition.size(); ++i) {
    per_transaction.clear();
    EnumeratePivotSequences(partition.sequences[i], h, params.gamma,
                            params.lambda, pivot, &per_transaction);
    for (const Sequence& s : per_transaction) {
      counts[s] += partition.weights[i];
    }
  }
  PatternMap frequent;
  for (auto& [seq, freq] : counts) {
    if (freq >= params.sigma) frequent.emplace(seq, freq);
  }
  return frequent;
}

}  // namespace lash
