#include "miner/miner.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "miner/bfs_miner.h"
#include "miner/dfs_miner.h"
#include "miner/enumerate.h"
#include "miner/psm.h"

namespace lash {

namespace {

/// Reference miner: per-transaction enumeration + counting. Exponential;
/// only suitable for tests and tiny partitions.
class NaiveLocalMiner : public LocalMiner {
 public:
  NaiveLocalMiner(const Hierarchy* hierarchy, const GsmParams& params)
      : hierarchy_(hierarchy), params_(params) {
    params_.Validate();
  }

  PatternMap Mine(const Partition& partition, ItemId pivot,
                  MinerStats* stats) override {
    PatternMap result =
        MinePartitionByEnumeration(partition, *hierarchy_, params_, pivot);
    if (stats != nullptr) {
      stats->candidates += result.size();
      stats->outputs += result.size();
    }
    return result;
  }

  std::string name() const override { return "Naive"; }

 private:
  const Hierarchy* hierarchy_;
  GsmParams params_;
};

}  // namespace

std::unique_ptr<LocalMiner> MakeLocalMiner(MinerKind kind,
                                           const Hierarchy* hierarchy,
                                           const GsmParams& params) {
  switch (kind) {
    case MinerKind::kNaive:
      return std::make_unique<NaiveLocalMiner>(hierarchy, params);
    case MinerKind::kBfs:
      return std::make_unique<BfsMiner>(hierarchy, params);
    case MinerKind::kDfs:
      return std::make_unique<DfsMiner>(hierarchy, params);
    case MinerKind::kPsm:
      return std::make_unique<PsmMiner>(hierarchy, params, /*use_index=*/false);
    case MinerKind::kPsmIndex:
      return std::make_unique<PsmMiner>(hierarchy, params, /*use_index=*/true);
  }
  throw std::invalid_argument("MakeLocalMiner: unknown miner kind");
}

MinerKind ParseMinerKind(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "naive") return MinerKind::kNaive;
  if (lower == "bfs") return MinerKind::kBfs;
  if (lower == "dfs") return MinerKind::kDfs;
  if (lower == "psm") return MinerKind::kPsm;
  if (lower == "psm+index" || lower == "psmindex") return MinerKind::kPsmIndex;
  throw std::invalid_argument("ParseMinerKind: unknown miner '" + name + "'");
}

}  // namespace lash
