// The seed PSM implementation, preserved as the pre-optimization baseline.
// Do not "fix" the inefficiencies here — bench_hotpath measures the
// optimized PsmMiner against exactly this code.

#include "miner/psm_legacy.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/match.h"

namespace lash {

namespace {

// Support set of a pattern: per supporting transaction, the distinct
// (start, end) pairs over embeddings.
struct PsmPosting {
  uint32_t tid;
  std::vector<Embedding> embeddings;
};
using PsmDb = std::vector<PsmPosting>;

// Per-left-node memo for PSM+Index: allowed[d] = union of frequent expansion
// items at right-expansion depth d (0-based) in this node's right subtree.
using RightIndex = std::vector<std::unordered_set<ItemId>>;

// One-parent-at-a-time ancestor test — the pre-change Hierarchy::
// GeneralizesTo, kept here so the baseline's costs stay what they were.
bool WalkGeneralizesTo(const Hierarchy& h, ItemId w, ItemId anc) {
  for (ItemId a = w; a != kInvalidItem; a = h.Parent(a)) {
    if (a == anc) return true;
  }
  return false;
}

class LegacyPsmRun {
 public:
  LegacyPsmRun(const LegacyPartition& partition, const Hierarchy& h,
               const GsmParams& params, ItemId pivot, bool use_index,
               MinerStats* stats)
      : partition_(partition),
        h_(h),
        params_(params),
        pivot_(pivot),
        use_index_(use_index),
        stats_(stats) {}

  PatternMap Mine() {
    PsmDb db;
    for (uint32_t tid = 0; tid < partition_.size(); ++tid) {
      const Sequence& t = partition_.sequences[tid];
      PsmPosting posting{tid, {}};
      for (uint32_t pos = 0; pos < t.size(); ++pos) {
        if (IsItem(t[pos]) && WalkGeneralizesTo(h_, t[pos], pivot_)) {
          posting.embeddings.push_back({pos, pos});
        }
      }
      if (!posting.embeddings.empty()) db.push_back(std::move(posting));
    }
    Sequence pattern{pivot_};
    LeftNode(pattern, db, /*parent_index=*/nullptr);
    return std::move(output_);
  }

 private:
  Frequency Weight(const PsmDb& db) const {
    Frequency total = 0;
    for (const PsmPosting& p : db) total += partition_.weights[p.tid];
    return total;
  }

  // Processes a node of the form Sl·w: runs its series of right expansions
  // (building its own right index), then left-expands.
  void LeftNode(Sequence& pattern, const PsmDb& db,
                const RightIndex* parent_index) {
    RightIndex my_index;
    if (use_index_) my_index.resize(params_.lambda);
    ExpandRight(pattern, db, /*depth=*/0, parent_index,
                use_index_ ? &my_index : nullptr);
    ExpandLeft(pattern, db, use_index_ ? &my_index : nullptr);
  }

  // One right-expansion step: pattern -> pattern + a for frequent a != pivot.
  void ExpandRight(Sequence& pattern, const PsmDb& db, uint32_t depth,
                   const RightIndex* parent_index, RightIndex* my_index) {
    if (pattern.size() >= params_.lambda) return;
    const std::unordered_set<ItemId>* allowed = nullptr;
    if (use_index_ && parent_index != nullptr && depth < parent_index->size()) {
      allowed = &(*parent_index)[depth];
      if (allowed->empty()) return;  // R_S = ∅: skip the scan (Sec. 5.2).
    }
    std::map<ItemId, PsmDb> expansions;
    for (const PsmPosting& posting : db) {
      const Sequence& t = partition_.sequences[posting.tid];
      CollectRight(t, posting, allowed, &expansions);
    }
    for (auto& [item, edb] : expansions) {
      if (item == pivot_) continue;  // Alg. 2 line 11.
      if (stats_ != nullptr) ++stats_->candidates;
      Frequency freq = Weight(edb);
      if (freq < params_.sigma) continue;
      pattern.push_back(item);
      Output(pattern, freq);
      if (my_index != nullptr) (*my_index)[depth].insert(item);
      ExpandRight(pattern, edb, depth + 1, parent_index, my_index);
      pattern.pop_back();
    }
  }

  // One left-expansion step: pattern -> a + pattern (pivot allowed); each
  // frequent result is a new left node.
  void ExpandLeft(Sequence& pattern, const PsmDb& db,
                  const RightIndex* my_index) {
    if (pattern.size() >= params_.lambda) return;
    std::map<ItemId, PsmDb> expansions;
    for (const PsmPosting& posting : db) {
      const Sequence& t = partition_.sequences[posting.tid];
      CollectLeft(t, posting, &expansions);
    }
    for (auto& [item, edb] : expansions) {
      if (stats_ != nullptr) ++stats_->candidates;
      Frequency freq = Weight(edb);
      if (freq < params_.sigma) continue;
      pattern.insert(pattern.begin(), item);
      Output(pattern, freq);
      LeftNode(pattern, edb, my_index);
      pattern.erase(pattern.begin());
    }
  }

  // Gathers right-expansion items (with generalizations) and the expanded
  // embedding sets for one transaction.
  void CollectRight(const Sequence& t, const PsmPosting& posting,
                    const std::unordered_set<ItemId>* allowed,
                    std::map<ItemId, PsmDb>* expansions) {
    for (const Embedding& emb : posting.embeddings) {
      uint64_t hi = std::min<uint64_t>(
          t.size(), static_cast<uint64_t>(emb.end) + params_.gamma + 2);
      for (uint32_t j = emb.end + 1; j < hi; ++j) {
        if (!IsItem(t[j])) continue;
        for (ItemId a = t[j]; a != kInvalidItem; a = h_.Parent(a)) {
          if (a > pivot_) continue;  // Not pivot-relevant (raw partitions).
          if (allowed != nullptr && !allowed->contains(a)) {
            continue;  // Pruned by the parent's right index.
          }
          AddEmbedding(posting.tid, Embedding{emb.start, j}, &(*expansions)[a]);
        }
      }
    }
  }

  // Gathers left-expansion items for one transaction.
  void CollectLeft(const Sequence& t, const PsmPosting& posting,
                   std::map<ItemId, PsmDb>* expansions) {
    for (const Embedding& emb : posting.embeddings) {
      uint32_t window = params_.gamma + 1;
      uint32_t lo = emb.start >= window ? emb.start - window : 0;
      for (uint32_t j = lo; j < emb.start; ++j) {
        if (!IsItem(t[j])) continue;
        for (ItemId a = t[j]; a != kInvalidItem; a = h_.Parent(a)) {
          if (a > pivot_) continue;  // Not pivot-relevant (raw partitions).
          AddEmbedding(posting.tid, Embedding{j, emb.end}, &(*expansions)[a]);
        }
      }
    }
  }

  // Appends `emb` to the posting of `tid`, deduplicating embeddings.
  static void AddEmbedding(uint32_t tid, Embedding emb, PsmDb* db) {
    if (db->empty() || db->back().tid != tid) db->push_back(PsmPosting{tid, {}});
    std::vector<Embedding>& embs = db->back().embeddings;
    if (std::find(embs.begin(), embs.end(), emb) == embs.end()) {
      embs.push_back(emb);
    }
  }

  void Output(const Sequence& pattern, Frequency freq) {
    output_.emplace(pattern, freq);
    if (stats_ != nullptr) ++stats_->outputs;
  }

  const LegacyPartition& partition_;
  const Hierarchy& h_;
  const GsmParams& params_;
  ItemId pivot_;
  bool use_index_;
  MinerStats* stats_;
  PatternMap output_;
};

}  // namespace

LegacyPartition MaterializeLegacyPartition(const Partition& partition) {
  LegacyPartition legacy;
  legacy.sequences = partition.sequences.Materialize();
  legacy.weights = partition.weights;
  return legacy;
}

LegacyPsmMiner::LegacyPsmMiner(const Hierarchy* hierarchy,
                               const GsmParams& params, bool use_index)
    : hierarchy_(hierarchy), params_(params), use_index_(use_index) {
  params_.Validate();
}

PatternMap LegacyPsmMiner::Mine(const LegacyPartition& partition, ItemId pivot,
                                MinerStats* stats) {
  LegacyPsmRun run(partition, *hierarchy_, params_, pivot, use_index_, stats);
  return run.Mine();
}

}  // namespace lash
