#include "miner/bfs_miner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/match.h"

namespace lash {

namespace {

// Vertical representation: pattern -> sorted tids of supporting transactions.
using TidList = std::vector<uint32_t>;
using Level = std::unordered_map<Sequence, TidList, SequenceHash>;

Frequency WeightOf(const TidList& tids, const Partition& partition) {
  Frequency total = 0;
  for (uint32_t tid : tids) total += partition.weights[tid];
  return total;
}

}  // namespace

BfsMiner::BfsMiner(const Hierarchy* hierarchy, const GsmParams& params)
    : hierarchy_(hierarchy), params_(params) {
  params_.Validate();
}

PatternMap BfsMiner::Mine(const Partition& partition, ItemId pivot,
                          MinerStats* stats) {
  const Hierarchy& h = *hierarchy_;
  PatternMap output;

  // --- Level 2 directly from the data (G2(T) per transaction). ---
  // Per-transaction dedup runs on flat (a << 32 | b) codes with sort +
  // unique instead of a SequenceSet: no per-pair Sequence allocation, no
  // hashing, and the buffer is reused across transactions.
  Level level;
  {
    std::vector<uint64_t> codes;
    Sequence pair(2);
    for (uint32_t tid = 0; tid < partition.size(); ++tid) {
      codes.clear();
      const SequenceView t = partition.sequences[tid];
      for (size_t i = 0; i < t.size(); ++i) {
        if (!IsItem(t[i])) continue;
        size_t hi = std::min(t.size(), i + static_cast<size_t>(params_.gamma) + 2);
        for (size_t j = i + 1; j < hi; ++j) {
          if (!IsItem(t[j])) continue;
          for (ItemId a : h.AncestorSpan(t[i])) {
            for (ItemId b : h.AncestorSpan(t[j])) {
              codes.push_back(static_cast<uint64_t>(a) << 32 | b);
            }
          }
        }
      }
      std::sort(codes.begin(), codes.end());
      codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
      for (uint64_t code : codes) {
        pair[0] = static_cast<ItemId>(code >> 32);
        pair[1] = static_cast<ItemId>(code);
        level[pair].push_back(tid);
      }
    }
  }
  // Keep only frequent 2-sequences.
  for (auto it = level.begin(); it != level.end();) {
    if (stats != nullptr) ++stats->candidates;
    if (WeightOf(it->second, partition) < params_.sigma) {
      it = level.erase(it);
    } else {
      ++it;
    }
  }

  auto emit = [&](const Level& lv) {
    for (const auto& [seq, tids] : lv) {
      ItemId max_item = *std::max_element(seq.begin(), seq.end());
      if (pivot == kInvalidItem || max_item == pivot) {
        output.emplace(seq, WeightOf(tids, partition));
        if (stats != nullptr) ++stats->outputs;
      }
    }
  };
  emit(level);

  // --- Levels 3..lambda by prefix/suffix join + verification. ---
  for (uint32_t len = 3; len <= params_.lambda && !level.empty(); ++len) {
    // Index frequent (len-1)-sequences by their (len-2)-item prefix.
    std::unordered_map<Sequence, std::vector<const Sequence*>, SequenceHash>
        by_prefix;
    for (const auto& [seq, tids] : level) {
      Sequence prefix(seq.begin(), seq.end() - 1);
      by_prefix[prefix].push_back(&seq);
    }
    Level next;
    for (const auto& [seq, tids] : level) {
      // Join: candidates seq + x where seq[1..] + x is frequent.
      Sequence suffix(seq.begin() + 1, seq.end());
      auto it = by_prefix.find(suffix);
      if (it == by_prefix.end()) continue;
      for (const Sequence* other : it->second) {
        Sequence candidate = seq;
        candidate.push_back(other->back());
        if (stats != nullptr) ++stats->candidates;
        const TidList& suffix_tids = level.at(*other);
        TidList verified;
        // Intersect prefix/suffix tid lists, then verify the gap-constrained
        // embedding with the DP matcher.
        std::vector<uint32_t> common;
        std::set_intersection(tids.begin(), tids.end(), suffix_tids.begin(),
                              suffix_tids.end(), std::back_inserter(common));
        for (uint32_t tid : common) {
          if (Matches(candidate, partition.sequences[tid], h, params_.gamma)) {
            verified.push_back(tid);
          }
        }
        if (WeightOf(verified, partition) >= params_.sigma) {
          next.emplace(std::move(candidate), std::move(verified));
        }
      }
    }
    emit(next);
    level = std::move(next);
  }
  return output;
}

}  // namespace lash
