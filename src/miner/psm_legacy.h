#ifndef LASH_MINER_PSM_LEGACY_H_
#define LASH_MINER_PSM_LEGACY_H_

#include <string>
#include <vector>

#include "miner/miner.h"

namespace lash {

/// A partition in the seed's owning vector-of-vectors form: one heap
/// allocation per rewritten sequence. Production code moved to the
/// CSR-backed Partition (core/database.h); this form exists only so the
/// preserved baseline below keeps measuring exactly the seed's costs —
/// including its per-transaction pointer chases.
struct LegacyPartition {
  std::vector<Sequence> sequences;
  std::vector<Frequency> weights;

  size_t size() const { return sequences.size(); }
};

/// Copies a CSR partition into the owning legacy form (bench/test harness
/// code only; do this outside any timed region).
LegacyPartition MaterializeLegacyPartition(const Partition& partition);

/// The original (pre-optimization) PSM implementation, kept verbatim as the
/// "before" baseline for bench_hotpath and as an extra differential-testing
/// oracle. It pointer-chases parent links one step at a time, allocates a
/// node-based std::map<ItemId, PsmDb> per expansion step, backs the
/// PSM+Index right index with unordered_sets, deduplicates embeddings
/// with a linear std::find, and reads owning per-sequence vectors — exactly
/// the costs the optimized PsmMiner (and the CSR storage layer) removes.
/// Semantics are identical to PsmMiner.
class LegacyPsmMiner {
 public:
  LegacyPsmMiner(const Hierarchy* hierarchy, const GsmParams& params,
                 bool use_index);

  PatternMap Mine(const LegacyPartition& partition, ItemId pivot,
                  MinerStats* stats);

  std::string name() const {
    return use_index_ ? "PSM+Index-legacy" : "PSM-legacy";
  }

 private:
  const Hierarchy* hierarchy_;
  GsmParams params_;
  bool use_index_;
};

}  // namespace lash

#endif  // LASH_MINER_PSM_LEGACY_H_
