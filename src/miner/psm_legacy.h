#ifndef LASH_MINER_PSM_LEGACY_H_
#define LASH_MINER_PSM_LEGACY_H_

#include "miner/miner.h"

namespace lash {

/// The original (pre-optimization) PSM implementation, kept verbatim as the
/// "before" baseline for bench_hotpath and as an extra differential-testing
/// oracle. It pointer-chases parent links one step at a time, allocates a
/// node-based std::map<ItemId, PsmDb> per expansion step, backs the
/// PSM+Index right index with unordered_sets, and deduplicates embeddings
/// with a linear std::find — exactly the costs the optimized PsmMiner
/// removes. Semantics are identical to PsmMiner.
class LegacyPsmMiner : public LocalMiner {
 public:
  LegacyPsmMiner(const Hierarchy* hierarchy, const GsmParams& params,
                 bool use_index);

  PatternMap Mine(const Partition& partition, ItemId pivot,
                  MinerStats* stats) override;

  std::string name() const override {
    return use_index_ ? "PSM+Index-legacy" : "PSM-legacy";
  }

 private:
  const Hierarchy* hierarchy_;
  GsmParams params_;
  bool use_index_;
};

}  // namespace lash

#endif  // LASH_MINER_PSM_LEGACY_H_
