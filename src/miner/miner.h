#ifndef LASH_MINER_MINER_H_
#define LASH_MINER_MINER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/database.h"
#include "core/hierarchy.h"
#include "core/params.h"
#include "util/hash.h"
#include "util/types.h"

namespace lash {

/// Search-space accounting for Fig. 4(d): how many candidate sequences a
/// local miner evaluated (frequency-tested) versus how many it output.
struct MinerStats {
  uint64_t candidates = 0;  ///< Patterns whose support was evaluated.
  uint64_t outputs = 0;     ///< Frequent pivot sequences emitted.

  /// Candidates generated per output sequence (Fig. 4(d) y-axis).
  double CandidatesPerOutput() const {
    return outputs == 0 ? static_cast<double>(candidates)
                        : static_cast<double>(candidates) /
                              static_cast<double>(outputs);
  }

  void Merge(const MinerStats& other) {
    candidates += other.candidates;
    outputs += other.outputs;
  }
};

/// Interface of the local (per-partition) GSM miners of Sec. 5.
///
/// A miner receives a w-generalized, aggregated partition P_w (every
/// sequence has pivot p(T) = w; duplicates are merged with weights) and must
/// return exactly G_{σ,γ,λ}(w, P_w): the frequent generalized sequences S
/// with p(S) = w and 2 <= |S| <= λ, with their weighted frequencies.
class LocalMiner {
 public:
  virtual ~LocalMiner() = default;

  /// Mines `partition` for pivot `pivot`. If `stats` is non-null the miner
  /// adds its search-space accounting to it.
  virtual PatternMap Mine(const Partition& partition, ItemId pivot,
                          MinerStats* stats) = 0;

  /// Human-readable name ("BFS", "DFS", "PSM", "PSM+Index", "Naive").
  virtual std::string name() const = 0;
};

/// Identifies a local mining algorithm; used to configure LASH runs and
/// benchmark series.
enum class MinerKind { kNaive, kBfs, kDfs, kPsm, kPsmIndex };

/// Factory. The returned miner borrows `hierarchy` (must outlive it).
std::unique_ptr<LocalMiner> MakeLocalMiner(MinerKind kind,
                                           const Hierarchy* hierarchy,
                                           const GsmParams& params);

/// Parses "naive", "bfs", "dfs", "psm", "psm+index" (case-insensitive);
/// throws std::invalid_argument otherwise.
MinerKind ParseMinerKind(const std::string& name);

}  // namespace lash

#endif  // LASH_MINER_MINER_H_
