#ifndef LASH_MINER_DFS_MINER_H_
#define LASH_MINER_DFS_MINER_H_

#include "miner/miner.h"

namespace lash {

/// Hierarchy-aware DFS (pattern-growth) miner in the style of PrefixSpan
/// (Sec. 5.1, "DFS with hierarchies").
///
/// The miner starts from single items and recursively right-expands. The
/// projected database of a pattern S stores, per supporting transaction, the
/// end positions of all embeddings of S (or of a specialization of S — the
/// support set D_S of the paper). Right expansion collects, per transaction,
/// the items within `gamma`+1 positions after any end position together with
/// all their generalizations.
///
/// In the context of LASH this miner computes *all* locally frequent
/// sequences and filters non-pivot sequences at output time, which is the
/// computational overhead PSM removes (Sec. 5.1, "Overhead").
class DfsMiner : public LocalMiner {
 public:
  DfsMiner(const Hierarchy* hierarchy, const GsmParams& params);

  PatternMap Mine(const Partition& partition, ItemId pivot,
                  MinerStats* stats) override;

  std::string name() const override { return "DFS"; }

 private:
  const Hierarchy* hierarchy_;
  GsmParams params_;
};

}  // namespace lash

#endif  // LASH_MINER_DFS_MINER_H_
