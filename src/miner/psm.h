#ifndef LASH_MINER_PSM_H_
#define LASH_MINER_PSM_H_

#include "miner/miner.h"

namespace lash {

/// PSM — the pivot sequence miner (Sec. 5.2, Alg. 2).
///
/// PSM enumerates *only* pivot sequences: it starts from the pivot item and
/// expands right and left. Every pivot sequence S has a unique decomposition
/// S = Sl·w·Sr with w ∉ Sr; PSM generates it by left-expanding w to Sl·w and
/// then right-expanding to Sl·w·Sr. Hence:
///   * right expansions never add the pivot (Alg. 2 line 11), and
///   * a sequence produced by a right expansion is never left-expanded,
/// which guarantees each pivot sequence is enumerated exactly once.
///
/// Embeddings are tracked as (start, end) position pairs per supporting
/// transaction so that both expansion directions are cheap.
///
/// With `use_index = true` (PSM+Index), each left-node Sl·w memoizes, per
/// right-expansion depth d, the union R of frequent expansion items observed
/// anywhere in its right-expansion subtree at that depth. A left child
/// x·Sl·w restricts its depth-d right expansions to its parent's R: if Sw'
/// is infrequent then x·S·w' is infrequent (Lemma 1). Pruned items are never
/// support-tested (and not counted as candidates), and an empty R skips the
/// scan entirely.
class PsmMiner : public LocalMiner {
 public:
  PsmMiner(const Hierarchy* hierarchy, const GsmParams& params, bool use_index);

  PatternMap Mine(const Partition& partition, ItemId pivot,
                  MinerStats* stats) override;

  std::string name() const override { return use_index_ ? "PSM+Index" : "PSM"; }

 private:
  const Hierarchy* hierarchy_;
  GsmParams params_;
  bool use_index_;
};

}  // namespace lash

#endif  // LASH_MINER_PSM_H_
