#ifndef LASH_MINER_PSM_H_
#define LASH_MINER_PSM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/match.h"
#include "miner/miner.h"
#include "util/varint.h"

namespace lash {

namespace psm_internal {

/// One candidate expansion occurrence: expansion item `item` supports
/// transaction `tid` with the expanded embedding `emb`. Flat buffers of
/// these replace the node-based std::map<ItemId, PsmDb> of the original
/// implementation: sorting by (item, tid, emb) groups the buffer into
/// per-item expansion databases with tid-grouped postings, and makes
/// duplicate embeddings adjacent so dedup is a single std::unique pass
/// instead of a per-insert linear scan.
struct ExpansionEvent {
  ItemId item;
  uint32_t tid;
  Embedding emb;

  friend bool operator==(const ExpansionEvent&, const ExpansionEvent&) =
      default;
  friend auto operator<=>(const ExpansionEvent&, const ExpansionEvent&) =
      default;
};

/// Sorts events[from..] by (item, tid, embedding) and removes duplicates.
/// Reference implementation of the grouping contract (used by tests to
/// check EventRegrouper); this is the dedup that replaces the former O(n²)
/// AddEmbedding std::find loop.
void SortUniqueEvents(std::vector<ExpansionEvent>* events, size_t from);

/// One expansion database produced by the regrouper: the events of one
/// candidate item as a range of the shared arena — an event-index range
/// from Regroup, a byte range of the packed postings arena from
/// RegroupPacked — plus its weighted document frequency (accumulated
/// during the same pass, so the support test costs no extra scan).
struct EventGroup {
  ItemId item;
  size_t begin;
  size_t end;
  Frequency weight;
};

/// Varint delta codec for one group's packed postings (util/varint.h
/// primitives). Events arrive sorted by (tid, embedding); each posting is
/// three varints: (tid delta, start delta, end - start). The tid delta is
/// relative to the previous posting (0 = same transaction); start is
/// delta-coded within a transaction run (embeddings of a run are sorted
/// by (start, end), so the delta is non-negative) and resets to absolute
/// on a new transaction. Typically 3 bytes per posting instead of the 16
/// of a raw ExpansionEvent — the group's item is implicit, carried by its
/// EventGroup.
struct PostingEncoder {
  uint32_t prev_tid = 0;
  uint32_t prev_start = 0;

  void Append(std::string* out, uint32_t tid, Embedding emb) {
    const uint32_t dtid = tid - prev_tid;
    PutVarint32(out, dtid);
    if (dtid != 0) {
      prev_tid = tid;
      prev_start = 0;
    }
    PutVarint32(out, emb.start - prev_start);
    prev_start = emb.start;
    PutVarint32(out, emb.end - emb.start);
  }
};

/// Streaming decoder matching PostingEncoder: iterates the postings of
/// one group's [begin, end) byte range.
struct PostingCursor {
  size_t pos;
  uint32_t tid = 0;
  uint32_t prev_start = 0;

  explicit PostingCursor(size_t begin) : pos(begin) {}

  /// Decodes the next posting; false once `end` is reached. The varint
  /// reads cannot fail on encoder-produced bytes (the arena is written
  /// and read by the same run).
  bool Next(const std::string& packed, size_t end, uint32_t* out_tid,
            Embedding* emb) {
    if (pos >= end) return false;
    uint32_t dtid = 0;
    uint32_t dstart = 0;
    uint32_t len = 0;
    GetVarint32(packed, &pos, &dtid);
    GetVarint32(packed, &pos, &dstart);
    GetVarint32(packed, &pos, &len);
    if (dtid != 0) {
      tid += dtid;
      prev_start = 0;
    }
    prev_start += dstart;
    *out_tid = tid;
    *emb = Embedding{prev_start, prev_start + len};
    return true;
  }
};

/// Groups the tail of a shared event arena by (item, tid, embedding) with
/// duplicates removed — the same postcondition as SortUniqueEvents — in
/// O(E) plus tiny per-transaction embedding sorts, exploiting that PSM
/// generates events with nondecreasing tids: a stable counting scatter by
/// item keeps tid runs contiguous, so only embeddings within one (item,
/// tid) run need sorting. All state (per-item counters with epoch-based
/// lazy reset, the scatter scratch) is reused across calls, so a call does
/// no heap allocation once warm.
class EventRegrouper {
 public:
  /// Must be called before Regroup with an exclusive upper bound on the
  /// item ids that will appear (PSM: pivot + 1).
  void Prepare(size_t num_items);

  /// Regroups events[from..]; returns the new end-of-buffer index (the
  /// vector is truncated to it) and appends one EventGroup per distinct
  /// item, in ascending item order, to `groups`. `weights[tid]` is the
  /// aggregation weight a transaction contributes to a group's support.
  /// Requires tids nondecreasing per item in generation order.
  /// Reference implementation of the grouping contract; production PSM
  /// uses RegroupPacked.
  size_t Regroup(std::vector<ExpansionEvent>* events, size_t from,
                 const std::vector<Frequency>& weights,
                 std::vector<EventGroup>* groups);

  /// Same grouping/dedup/weighting contract as Regroup, but the surviving
  /// events are varint-delta-encoded onto the packed postings arena
  /// (`packed`, via PostingEncoder) instead of compacted back into the
  /// event buffer: each appended EventGroup's [begin, end) is a byte range
  /// of `packed`. `events` is the generation buffer of one expansion step;
  /// it is only read (the caller clears it for the next step).
  void RegroupPacked(const std::vector<ExpansionEvent>& events, size_t from,
                     const std::vector<Frequency>& weights,
                     std::string* packed, std::vector<EventGroup>* groups);

 private:
  // 64-bit so the epoch cannot wrap within a run and revive stale counters.
  uint64_t epoch_ = 0;
  std::vector<uint64_t> item_epoch_;
  std::vector<uint32_t> item_count_;
  std::vector<uint32_t> item_cursor_;
  std::vector<ItemId> touched_;
  std::vector<ExpansionEvent> scratch_;
};

/// The pooled PSM+Index right index: one arena of bitset words shared by
/// every left node of a run. Row `r` holds the index of the left node at
/// left-recursion depth `r` (at most one such node is live at a time — left
/// expansion recurses depth-first), and within a row, depth `d` is the set
/// of frequent expansion items seen at right-expansion depth d of that
/// node's subtree. Acquiring a row bumps its generation counter instead of
/// zeroing its words, so re-initialization is O(depths) rather than
/// O(depths * pivot/64) — the per-LeftNode reset cost that dominated when
/// pivot ids are large. Words are epoch-tagged: a word whose tag is stale
/// reads as empty.
///
/// The pool lives in PsmMiner (not in the per-partition PsmRun), so its
/// capacity — and, through the never-reset `epoch_`, the validity of its
/// lazily-reset tags — carries across every partition a miner mines: after
/// the largest pivot has been seen, later partitions pay no λ²-sized
/// arena zeroing at all.
class RightIndexPool {
 public:
  /// Sizes the arena for `rows` x `depths` bitsets over items < num_items.
  /// Idempotent; keeps existing capacity (and its stale-but-safe tags) when
  /// large enough.
  void Prepare(size_t rows, size_t depths, size_t num_items) {
    rows_ = rows;
    depths_ = depths;
    words_per_set_ = (num_items >> 6) + 1;
    const size_t words = rows_ * depths_ * words_per_set_;
    if (bits_.size() < words) {
      bits_.assign(words, 0);
      word_epoch_.assign(words, 0);
    }
    row_epoch_.assign(rows_, 0);
    counts_.assign(rows_ * depths_, 0);
    // epoch_ is deliberately NOT reset: stale word tags from an earlier
    // Prepare (same run or an earlier partition of the same miner) stay
    // strictly below every future generation, so reused capacity can never
    // revive old bits.
  }

  /// Claims row `row` for a new left node: all of its sets become empty.
  void NewGeneration(size_t row) {
    // 64-bit epoch: cannot wrap within a miner's lifetime and revive stale
    // words.
    row_epoch_[row] = ++epoch_;
    std::fill_n(counts_.begin() + static_cast<ptrdiff_t>(row * depths_),
                depths_, 0u);
  }

  void Set(size_t row, size_t depth, ItemId w) {
    const size_t base = (row * depths_ + depth) * words_per_set_ + (w >> 6);
    const uint64_t mask = uint64_t{1} << (w & 63);
    if (word_epoch_[base] != row_epoch_[row]) {
      word_epoch_[base] = row_epoch_[row];
      bits_[base] = mask;
      ++counts_[row * depths_ + depth];
    } else {
      counts_[row * depths_ + depth] += (bits_[base] & mask) == 0;
      bits_[base] |= mask;
    }
  }

  bool Test(size_t row, size_t depth, ItemId w) const {
    const size_t base = (row * depths_ + depth) * words_per_set_ + (w >> 6);
    return word_epoch_[base] == row_epoch_[row] &&
           ((bits_[base] >> (w & 63)) & 1);
  }

  bool Empty(size_t row, size_t depth) const {
    return counts_[row * depths_ + depth] == 0;
  }

  size_t depths() const { return depths_; }

 private:
  size_t rows_ = 0;
  size_t depths_ = 0;
  size_t words_per_set_ = 0;
  uint64_t epoch_ = 0;
  std::vector<uint64_t> bits_;
  std::vector<uint64_t> word_epoch_;
  std::vector<uint64_t> row_epoch_;
  std::vector<uint32_t> counts_;
};

}  // namespace psm_internal

/// PSM — the pivot sequence miner (Sec. 5.2, Alg. 2).
///
/// PSM enumerates *only* pivot sequences: it starts from the pivot item and
/// expands right and left. Every pivot sequence S has a unique decomposition
/// S = Sl·w·Sr with w ∉ Sr; PSM generates it by left-expanding w to Sl·w and
/// then right-expanding to Sl·w·Sr. Hence:
///   * right expansions never add the pivot (Alg. 2 line 11), and
///   * a sequence produced by a right expansion is never left-expanded,
/// which guarantees each pivot sequence is enumerated exactly once.
///
/// Embeddings are tracked as (start, end) position pairs per supporting
/// transaction so that both expansion directions are cheap.
///
/// Implementation: all expansion databases live in one stack-disciplined
/// packed byte arena — a node's database is a byte range of varint-delta
/// postings (PostingEncoder/PostingCursor, ~3 bytes per posting instead
/// of a 16-byte ExpansionEvent), child databases are appended above and
/// truncated on backtrack — so a whole PsmRun performs O(1) amortized
/// heap allocations per search-tree node instead of O(postings), and the
/// working set a node's expansion scans is several times smaller than
/// with raw structs. Generation still uses fixed-size ExpansionEvents in
/// a per-step buffer that the regrouper consumes (the counting scatter
/// needs random access). Ancestor chains are scanned contiguously via
/// Hierarchy::AncestorSpan.
///
/// With `use_index = true` (PSM+Index), each left-node Sl·w memoizes, per
/// right-expansion depth d, the union R of frequent expansion items observed
/// anywhere in its right-expansion subtree at that depth (as a bitset over
/// items <= pivot, pooled for the whole run in a generation-tagged arena so
/// acquiring a node's index never re-zeroes words). A left child x·Sl·w
/// restricts its depth-d right
/// expansions to its parent's R: if Sw' is infrequent then x·S·w' is
/// infrequent (Lemma 1). Pruned items are never support-tested (and not
/// counted as candidates), and an empty R skips the scan entirely.
class PsmMiner : public LocalMiner {
 public:
  PsmMiner(const Hierarchy* hierarchy, const GsmParams& params, bool use_index);

  PatternMap Mine(const Partition& partition, ItemId pivot,
                  MinerStats* stats) override;

  std::string name() const override { return use_index_ ? "PSM+Index" : "PSM"; }

 private:
  const Hierarchy* hierarchy_;
  GsmParams params_;
  bool use_index_;
  // Owned by the miner (which is reused across partitions), not the
  // per-partition run, so capacity and epoch survive from pivot to pivot.
  psm_internal::RightIndexPool index_pool_;
};

}  // namespace lash

#endif  // LASH_MINER_PSM_H_
