#ifndef LASH_DAG_DAG_HIERARCHY_H_
#define LASH_DAG_DAG_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace lash {

/// A multiple-inheritance item hierarchy: a DAG where an item may have any
/// number of parents (footnote 2 of the paper: "in some applications ...
/// the hierarchy may instead form a directed acyclic graph; our methods can
/// be extended to deal with such hierarchies as well").
///
/// Examples: a product filed under both "Electronics > Cameras" and
/// "Gifts > For photographers"; a word sense with two hypernyms. The
/// generalization relation →* becomes "reachable through any parent path".
///
/// Items are `1..NumItems()`. Construction validates acyclicity and
/// precomputes, per item, its deduplicated ancestor closure (self first),
/// which is what all DAG mining code iterates.
class DagHierarchy {
 public:
  /// `parents[w]` lists the parents of item `w` (index 0 unused). Throws
  /// std::invalid_argument on out-of-range ids, self-loops or cycles.
  explicit DagHierarchy(std::vector<std::vector<ItemId>> parents);

  size_t NumItems() const { return parents_.size() - 1; }

  /// Parents of `w` (possibly empty).
  const std::vector<ItemId>& Parents(ItemId w) const { return parents_[w]; }

  /// `w` itself followed by every distinct ancestor (unspecified order).
  const std::vector<ItemId>& AncestorsOrSelf(ItemId w) const {
    return closure_[w];
  }

  /// True iff `w →* anc` (anc equals w or is reachable upward from it).
  bool GeneralizesTo(ItemId w, ItemId anc) const;

  /// Length of the longest upward path from `w` to a root.
  int Depth(ItemId w) const { return depth_[w]; }

  int MaxDepth() const { return max_depth_; }

  bool IsRoot(ItemId w) const { return parents_[w].empty(); }

  bool IsLeaf(ItemId w) const { return is_leaf_[w]; }

  /// True iff every parent id is smaller than its child — the invariant
  /// the DAG preprocessing establishes by rank recoding.
  bool IsRankMonotone() const;

 private:
  std::vector<std::vector<ItemId>> parents_;
  std::vector<std::vector<ItemId>> closure_;  // AncestorsOrSelf per item.
  std::vector<int> depth_;
  std::vector<bool> is_leaf_;
  int max_depth_ = 0;
};

}  // namespace lash

#endif  // LASH_DAG_DAG_HIERARCHY_H_
