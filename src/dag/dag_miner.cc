#include "dag/dag_miner.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "core/match.h"

namespace lash {

namespace {

// ---------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------

bool DagReachable(const Sequence& s, const Sequence& t, const DagHierarchy& dag,
                  uint32_t gamma, std::vector<char>* reach) {
  const size_t m = t.size();
  reach->assign(m, 0);
  bool any = false;
  for (size_t i = 0; i < m; ++i) {
    if (IsItem(t[i]) && dag.GeneralizesTo(t[i], s[0])) {
      (*reach)[i] = 1;
      any = true;
    }
  }
  if (!any) return false;
  std::vector<char> next(m, 0);
  for (size_t j = 1; j < s.size(); ++j) {
    std::fill(next.begin(), next.end(), 0);
    any = false;
    size_t window_count = 0;
    const size_t window = static_cast<size_t>(gamma) + 1;
    for (size_t i = 0; i < m; ++i) {
      if (i >= 1 && (*reach)[i - 1]) ++window_count;
      if (i >= window + 1 && (*reach)[i - window - 1]) --window_count;
      if (window_count > 0 && IsItem(t[i]) && dag.GeneralizesTo(t[i], s[j])) {
        next[i] = 1;
        any = true;
      }
    }
    reach->swap(next);
    if (!any) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Reference enumeration
// ---------------------------------------------------------------------

class DagEnumerator {
 public:
  DagEnumerator(const Sequence& t, const DagHierarchy& dag, uint32_t gamma,
                uint32_t lambda, SequenceSet* out)
      : t_(t), dag_(dag), gamma_(gamma), lambda_(lambda), out_(out) {}

  void Run() {
    for (size_t i = 0; i < t_.size(); ++i) ExtendAt(i);
  }

 private:
  void ExtendAt(size_t i) {
    if (!IsItem(t_[i])) return;
    for (ItemId a : dag_.AncestorsOrSelf(t_[i])) {
      current_.push_back(a);
      if (current_.size() >= 2) out_->insert(current_);
      if (current_.size() < lambda_) {
        size_t hi = std::min(t_.size(), i + static_cast<size_t>(gamma_) + 2);
        for (size_t j = i + 1; j < hi; ++j) ExtendAt(j);
      }
      current_.pop_back();
    }
  }

  const Sequence& t_;
  const DagHierarchy& dag_;
  uint32_t gamma_;
  uint32_t lambda_;
  SequenceSet* out_;
  Sequence current_;
};

// ---------------------------------------------------------------------
// DAG-aware PSM (embeddings as (start, end) pairs; see miner/psm.cc for
// the tree-space twin and the enumeration-uniqueness argument, which only
// relies on →* being a partial order).
// ---------------------------------------------------------------------

struct DagPosting {
  uint32_t tid;
  std::vector<Embedding> embeddings;
};
using DagDb = std::vector<DagPosting>;

class DagPsmRun {
 public:
  DagPsmRun(const Partition& partition, const DagHierarchy& dag,
            const GsmParams& params, ItemId pivot)
      : partition_(partition), dag_(dag), params_(params), pivot_(pivot) {}

  PatternMap Mine() {
    DagDb db;
    for (uint32_t tid = 0; tid < partition_.size(); ++tid) {
      const SequenceView t = partition_.sequences[tid];
      DagPosting posting{tid, {}};
      for (uint32_t pos = 0; pos < t.size(); ++pos) {
        if (IsItem(t[pos]) && dag_.GeneralizesTo(t[pos], pivot_)) {
          posting.embeddings.push_back({pos, pos});
        }
      }
      if (!posting.embeddings.empty()) db.push_back(std::move(posting));
    }
    Sequence pattern{pivot_};
    LeftNode(pattern, db);
    return std::move(output_);
  }

 private:
  Frequency Weight(const DagDb& db) const {
    Frequency total = 0;
    for (const DagPosting& p : db) total += partition_.weights[p.tid];
    return total;
  }

  void LeftNode(Sequence& pattern, const DagDb& db) {
    ExpandRight(pattern, db);
    ExpandLeft(pattern, db);
  }

  void ExpandRight(Sequence& pattern, const DagDb& db) {
    if (pattern.size() >= params_.lambda) return;
    std::map<ItemId, DagDb> expansions;
    for (const DagPosting& posting : db) {
      const SequenceView t = partition_.sequences[posting.tid];
      for (const Embedding& emb : posting.embeddings) {
        uint64_t hi = std::min<uint64_t>(
            t.size(), static_cast<uint64_t>(emb.end) + params_.gamma + 2);
        for (uint32_t j = emb.end + 1; j < hi; ++j) {
          if (!IsItem(t[j])) continue;
          for (ItemId a : dag_.AncestorsOrSelf(t[j])) {
            if (a > pivot_) continue;
            AddEmbedding(posting.tid, {emb.start, j}, &expansions[a]);
          }
        }
      }
    }
    for (auto& [item, edb] : expansions) {
      if (item == pivot_) continue;  // Right expansions exclude the pivot.
      Frequency freq = Weight(edb);
      if (freq < params_.sigma) continue;
      pattern.push_back(item);
      output_.emplace(pattern, freq);
      ExpandRight(pattern, edb);
      pattern.pop_back();
    }
  }

  void ExpandLeft(Sequence& pattern, const DagDb& db) {
    if (pattern.size() >= params_.lambda) return;
    std::map<ItemId, DagDb> expansions;
    for (const DagPosting& posting : db) {
      const SequenceView t = partition_.sequences[posting.tid];
      for (const Embedding& emb : posting.embeddings) {
        uint32_t window = params_.gamma + 1;
        uint32_t lo = emb.start >= window ? emb.start - window : 0;
        for (uint32_t j = lo; j < emb.start; ++j) {
          if (!IsItem(t[j])) continue;
          for (ItemId a : dag_.AncestorsOrSelf(t[j])) {
            if (a > pivot_) continue;
            AddEmbedding(posting.tid, {j, emb.end}, &expansions[a]);
          }
        }
      }
    }
    for (auto& [item, edb] : expansions) {
      Frequency freq = Weight(edb);
      if (freq < params_.sigma) continue;
      pattern.insert(pattern.begin(), item);
      output_.emplace(pattern, freq);
      LeftNode(pattern, edb);
      pattern.erase(pattern.begin());
    }
  }

  static void AddEmbedding(uint32_t tid, Embedding emb, DagDb* db) {
    if (db->empty() || db->back().tid != tid) db->push_back(DagPosting{tid, {}});
    std::vector<Embedding>& embs = db->back().embeddings;
    if (std::find(embs.begin(), embs.end(), emb) == embs.end()) {
      embs.push_back(emb);
    }
  }

  const Partition& partition_;
  const DagHierarchy& dag_;
  const GsmParams& params_;
  ItemId pivot_;
  PatternMap output_;
};

// ---------------------------------------------------------------------
// Sound DAG rewrites (subset of Sec. 4; see header).
// ---------------------------------------------------------------------

Sequence DagRewrite(const Sequence& t, const DagHierarchy& dag, ItemId pivot,
                    uint32_t gamma, uint32_t lambda) {
  const size_t window = static_cast<size_t>(gamma) + 1;
  // 1. Blank items with no ancestor-or-self <= pivot (they can never be
  // part of a pivot sequence). Items <= pivot and items with *some* small
  // ancestor are kept verbatim (no single-item generalization exists).
  Sequence gen;
  gen.reserve(t.size());
  for (ItemId w : t) {
    bool relevant = false;
    if (IsItem(w)) {
      for (ItemId a : dag.AncestorsOrSelf(w)) {
        if (a <= pivot) {
          relevant = true;
          break;
        }
      }
    }
    gen.push_back(relevant ? w : kBlank);
  }
  // 2. Unreachability: blank indexes farther than lambda from every pivot
  // occurrence (same chain definition as Rewriter::MinPivotDistances, with
  // pivot occurrence = closure containment).
  const size_t m = gen.size();
  auto is_pivot = [&](ItemId w) {
    return IsItem(w) && dag.GeneralizesTo(w, pivot);
  };
  constexpr uint32_t kInf = 0xffffffffu;
  std::vector<uint32_t> left(m, kInf), right(m, kInf);
  for (size_t i = 0; i < m; ++i) {
    if (is_pivot(gen[i])) left[i] = 1;
    size_t lo = i >= window ? i - window : 0;
    for (size_t j = lo; j < i; ++j) {
      if (gen[j] != kBlank && left[j] != kInf && left[j] + 1 < left[i]) {
        left[i] = left[j] + 1;
      }
    }
  }
  for (size_t ii = m; ii-- > 0;) {
    if (is_pivot(gen[ii])) right[ii] = 1;
    size_t hi = std::min(m, ii + window + 1);
    for (size_t j = ii + 1; j < hi; ++j) {
      if (gen[j] != kBlank && right[j] != kInf && right[j] + 1 < right[ii]) {
        right[ii] = right[j] + 1;
      }
    }
  }
  bool has_pivot = false;
  for (size_t i = 0; i < m; ++i) {
    if (std::min(left[i], right[i]) > lambda) gen[i] = kBlank;
    if (is_pivot(gen[i])) has_pivot = true;
  }
  if (!has_pivot) return {};
  // 3. Isolated pivot removal.
  std::vector<char> isolated(m, 0);
  for (size_t i = 0; i < m; ++i) {
    if (!is_pivot(gen[i])) continue;
    bool has_neighbor = false;
    size_t lo = i >= window ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi && !has_neighbor; ++j) {
      if (j != i && gen[j] != kBlank) has_neighbor = true;
    }
    if (!has_neighbor) isolated[i] = 1;
  }
  has_pivot = false;
  for (size_t i = 0; i < m; ++i) {
    if (isolated[i]) gen[i] = kBlank;
    if (is_pivot(gen[i])) has_pivot = true;
  }
  if (!has_pivot) return {};
  // 4. Blank compression.
  Sequence out;
  out.reserve(m);
  size_t run = 0;
  for (ItemId w : gen) {
    if (w == kBlank) {
      ++run;
      if (!out.empty() && run <= window) out.push_back(kBlank);
    } else {
      run = 0;
      out.push_back(w);
    }
  }
  while (!out.empty() && out.back() == kBlank) out.pop_back();
  size_t non_blank = 0;
  for (ItemId w : out) {
    if (w != kBlank) ++non_blank;
  }
  return non_blank < 2 ? Sequence{} : out;
}

}  // namespace

bool DagMatches(const Sequence& s, const Sequence& t, const DagHierarchy& dag,
                uint32_t gamma) {
  if (s.empty() || s.size() > t.size()) return false;
  std::vector<char> reach;
  return DagReachable(s, t, dag, gamma, &reach);
}

void EnumerateDagSubsequences(const Sequence& t, const DagHierarchy& dag,
                              uint32_t gamma, uint32_t lambda,
                              SequenceSet* out) {
  DagEnumerator(t, dag, gamma, lambda, out).Run();
}

PatternMap MineDagByEnumeration(const Database& db, const DagHierarchy& dag,
                                const GsmParams& params) {
  params.Validate();
  PatternMap counts;
  SequenceSet per_transaction;
  for (const Sequence& t : db) {
    per_transaction.clear();
    EnumerateDagSubsequences(t, dag, params.gamma, params.lambda,
                             &per_transaction);
    for (const Sequence& s : per_transaction) ++counts[s];
  }
  PatternMap frequent;
  for (auto& [seq, freq] : counts) {
    if (freq >= params.sigma) frequent.emplace(seq, freq);
  }
  return frequent;
}

size_t DagPreprocessResult::NumFrequent(Frequency sigma) const {
  size_t lo = 1, hi = freq.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (freq[mid] >= sigma) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

std::vector<Frequency> DagGeneralizedFrequencies(const Database& db,
                                                 const DagHierarchy& dag) {
  const size_t n = dag.NumItems();
  std::vector<Frequency> freq(n + 1, 0);
  std::vector<uint32_t> visited(n + 1, 0);
  uint32_t epoch = 0;
  for (const Sequence& t : db) {
    ++epoch;
    for (ItemId w : t) {
      if (!IsItem(w)) continue;
      for (ItemId a : dag.AncestorsOrSelf(w)) {
        if (visited[a] == epoch) continue;
        visited[a] = epoch;
        ++freq[a];
      }
    }
  }
  return freq;
}

DagPreprocessResult DagPreprocess(const Database& raw_db,
                                  const DagHierarchy& raw_dag) {
  const size_t n = raw_dag.NumItems();
  std::vector<Frequency> raw_freq = DagGeneralizedFrequencies(raw_db, raw_dag);
  std::vector<ItemId> order(n);
  std::iota(order.begin(), order.end(), 1);
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (raw_freq[a] != raw_freq[b]) return raw_freq[a] > raw_freq[b];
    if (raw_dag.Depth(a) != raw_dag.Depth(b)) {
      return raw_dag.Depth(a) < raw_dag.Depth(b);
    }
    return a < b;
  });
  DagPreprocessResult result;
  result.rank_of_raw.assign(n + 1, kInvalidItem);
  result.raw_of_rank.assign(n + 1, kInvalidItem);
  result.freq.assign(n + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    result.rank_of_raw[order[r]] = static_cast<ItemId>(r + 1);
    result.raw_of_rank[r + 1] = order[r];
    result.freq[r + 1] = raw_freq[order[r]];
  }
  std::vector<std::vector<ItemId>> rank_parents(n + 1);
  for (size_t r = 1; r <= n; ++r) {
    for (ItemId raw_parent : raw_dag.Parents(result.raw_of_rank[r])) {
      rank_parents[r].push_back(result.rank_of_raw[raw_parent]);
    }
  }
  result.hierarchy = DagHierarchy(std::move(rank_parents));
  if (!result.hierarchy.IsRankMonotone()) {
    // An ancestor's generalized support set is a superset of its
    // descendant's (even in a DAG), and on equal frequency the ancestor's
    // longest-path depth is strictly smaller; so this cannot happen.
    throw std::logic_error("DagPreprocess: order is not rank-monotone");
  }
  result.database.reserve(raw_db.size());
  for (const Sequence& t : raw_db) {
    Sequence recoded;
    recoded.reserve(t.size());
    for (ItemId w : t) recoded.push_back(result.rank_of_raw[w]);
    result.database.push_back(std::move(recoded));
  }
  return result;
}

PatternMap MineDag(const DagPreprocessResult& pre, const GsmParams& params) {
  params.Validate();
  const DagHierarchy& dag = pre.hierarchy;
  const ItemId num_frequent = static_cast<ItemId>(pre.NumFrequent(params.sigma));
  PatternMap output;
  for (ItemId pivot = 1; pivot <= num_frequent; ++pivot) {
    PatternMap aggregated;
    for (const Sequence& t : pre.database) {
      Sequence rewritten = DagRewrite(t, dag, pivot, params.gamma,
                                      params.lambda);
      if (!rewritten.empty()) ++aggregated[rewritten];
    }
    if (aggregated.empty()) continue;
    Partition partition;
    for (auto& [seq, weight] : aggregated) partition.Add(seq, weight);
    DagPsmRun run(partition, dag, params, pivot);
    output.merge(run.Mine());
  }
  return output;
}

}  // namespace lash
