#include "dag/dag_hierarchy.h"

#include <algorithm>
#include <stdexcept>

namespace lash {

DagHierarchy::DagHierarchy(std::vector<std::vector<ItemId>> parents)
    : parents_(std::move(parents)) {
  if (parents_.empty()) parents_.emplace_back();
  parents_[0].clear();
  const size_t n = parents_.size() - 1;
  for (size_t w = 1; w <= n; ++w) {
    for (ItemId p : parents_[w]) {
      if (p == 0 || p > n || p == static_cast<ItemId>(w)) {
        throw std::invalid_argument("DagHierarchy: bad parent id");
      }
    }
  }
  // Depths via iterative DFS with cycle detection (colors: 0 new, 1 on
  // stack, 2 done). depth = longest upward path.
  depth_.assign(n + 1, -1);
  std::vector<int> color(n + 1, 0);
  for (size_t start = 1; start <= n; ++start) {
    if (color[start] == 2) continue;
    std::vector<std::pair<ItemId, size_t>> stack{{static_cast<ItemId>(start), 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [w, next] = stack.back();
      if (next < parents_[w].size()) {
        ItemId p = parents_[w][next++];
        if (color[p] == 1) {
          throw std::invalid_argument("DagHierarchy: cycle detected");
        }
        if (color[p] == 0) {
          color[p] = 1;
          stack.emplace_back(p, 0);
        }
      } else {
        int d = 0;
        for (ItemId p : parents_[w]) d = std::max(d, depth_[p] + 1);
        depth_[w] = d;
        color[w] = 2;
        stack.pop_back();
      }
    }
  }
  max_depth_ = 0;
  for (size_t w = 1; w <= n; ++w) max_depth_ = std::max(max_depth_, depth_[w]);

  // Ancestor closures (self first), deduplicated per item.
  closure_.assign(n + 1, {});
  std::vector<uint32_t> visited(n + 1, 0);
  std::vector<ItemId> stack;
  for (size_t w = 1; w <= n; ++w) {
    closure_[w].push_back(static_cast<ItemId>(w));
    visited[w] = static_cast<uint32_t>(w);
    stack.assign(parents_[w].begin(), parents_[w].end());
    while (!stack.empty()) {
      ItemId a = stack.back();
      stack.pop_back();
      if (visited[a] == w) continue;
      visited[a] = static_cast<uint32_t>(w);
      closure_[w].push_back(a);
      stack.insert(stack.end(), parents_[a].begin(), parents_[a].end());
    }
  }

  is_leaf_.assign(n + 1, true);
  for (size_t w = 1; w <= n; ++w) {
    for (ItemId p : parents_[w]) is_leaf_[p] = false;
  }
}

bool DagHierarchy::GeneralizesTo(ItemId w, ItemId anc) const {
  const std::vector<ItemId>& closure = closure_[w];
  return std::find(closure.begin(), closure.end(), anc) != closure.end();
}

bool DagHierarchy::IsRankMonotone() const {
  for (size_t w = 1; w < parents_.size(); ++w) {
    for (ItemId p : parents_[w]) {
      if (p >= w) return false;
    }
  }
  return true;
}

}  // namespace lash
