#ifndef LASH_DAG_DAG_MINER_H_
#define LASH_DAG_DAG_MINER_H_

#include "core/database.h"
#include "core/params.h"
#include "dag/dag_hierarchy.h"
#include "util/hash.h"

namespace lash {

/// GSM over DAG hierarchies — the extension sketched in footnote 2 of the
/// paper. Same problem statement as Sec. 2 with →* taken over the DAG.
///
/// What transfers from the tree case and what does not:
///  * the generalized f-list, the frequency-descending rank order with
///    parents-before-children ties, and item-based partitioning transfer
///    unchanged (support monotonicity, Lemma 1, only needs →* to be a
///    partial order);
///  * *w-generalization does not*: an irrelevant item may have several
///    incomparable maximal ancestors `<= w`, so it cannot be replaced by a
///    single item. The sound subset we apply instead: blank items whose
///    ancestor closure contains nothing `<= w`, blank unreachable indexes,
///    remove isolated pivots, and compress blank runs (all of Sec. 4.3
///    remains valid);
///  * PSM transfers with expansions iterating ancestor *closures* instead
///    of parent chains, and pivot occurrences being items whose closure
///    contains the pivot.

/// True iff S ⊑γ T under the DAG's →* (the DP matcher of core/match.h
/// adapted to closures).
bool DagMatches(const Sequence& s, const Sequence& t, const DagHierarchy& dag,
                uint32_t gamma);

/// Enumerates G_λ(T) (deduplicated) under the DAG; reference only.
void EnumerateDagSubsequences(const Sequence& t, const DagHierarchy& dag,
                              uint32_t gamma, uint32_t lambda,
                              SequenceSet* out);

/// Reference solver by per-transaction enumeration; ground truth in tests.
PatternMap MineDagByEnumeration(const Database& db, const DagHierarchy& dag,
                                const GsmParams& params);

/// Result of DAG preprocessing: rank-recoded DAG + database + generalized
/// f-list (same contract as core PreprocessResult).
struct DagPreprocessResult {
  DagHierarchy hierarchy;
  Database database;
  std::vector<Frequency> freq;
  std::vector<ItemId> rank_of_raw;
  std::vector<ItemId> raw_of_rank;

  DagPreprocessResult() : hierarchy(std::vector<std::vector<ItemId>>{}) {}

  size_t NumFrequent(Frequency sigma) const;
};

/// Generalized document frequencies over the DAG (an item counts every
/// transaction containing it or any item whose closure includes it).
std::vector<Frequency> DagGeneralizedFrequencies(const Database& db,
                                                 const DagHierarchy& dag);

/// Rank recoding: frequency desc, depth asc on ties, id asc. Guarantees
/// IsRankMonotone() for the recoded DAG.
DagPreprocessResult DagPreprocess(const Database& raw_db,
                                  const DagHierarchy& raw_dag);

/// LASH's partition/mine pipeline over a DAG, executed sequentially:
/// for every frequent pivot w, build P_w with the sound DAG rewrites and
/// mine it with the DAG-aware PSM. Returns all frequent generalized
/// sequences with 2 <= |S| <= λ.
PatternMap MineDag(const DagPreprocessResult& pre, const GsmParams& params);

}  // namespace lash

#endif  // LASH_DAG_DAG_MINER_H_
