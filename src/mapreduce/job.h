#ifndef LASH_MAPREDUCE_JOB_H_
#define LASH_MAPREDUCE_JOB_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mapreduce/cluster.h"
#include "util/hash.h"
#include "util/readiness.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace lash {

/// Counters mirroring the Hadoop counters the paper reports (Sec. 6.1):
/// `map_output_bytes` corresponds to MAP_OUTPUT_BYTES. On the packed-spill
/// path it is the *actual* size of the varint-encoded spill buffers that
/// leave the map phase (i.e. after the combiner, which is what is actually
/// transferred); on the legacy path it is simulated via the job's
/// ByteSizeFn, which the callers define with the same varint formulas.
struct JobCounters {
  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;
  uint64_t reduce_input_groups = 0;
  uint64_t reduce_output_records = 0;

  void Merge(const JobCounters& other) {
    map_input_records += other.map_input_records;
    map_output_records += other.map_output_records;
    map_output_bytes += other.map_output_bytes;
    reduce_input_groups += other.reduce_input_groups;
    reduce_output_records += other.reduce_output_records;
  }
};

/// Per-phase elapsed wall-clock, the measure reported throughout Sec. 6
/// ("we break down this time into time taken by the map phase, shuffle phase
/// and the reduce phase").
struct PhaseTimes {
  double map_ms = 0;
  double shuffle_ms = 0;
  double reduce_ms = 0;

  double TotalMs() const { return map_ms + shuffle_ms + reduce_ms; }

  void Merge(const PhaseTimes& other) {
    map_ms += other.map_ms;
    shuffle_ms += other.shuffle_ms;
    reduce_ms += other.reduce_ms;
  }
};

/// Which shuffle implementation a job run uses.
enum class ShuffleMode {
  /// Byte-packed spill, pipelined: map output is varint-encoded into one
  /// flat buffer per (map task, reduce partition) via the job's
  /// SpillCodec, with the record directory (key-slice bounds + key hash)
  /// built at spill time — there is no shuffle-side decode scan. There
  /// are no global phase barriers either: per-partition readiness
  /// counters enqueue a partition's grouping + reduce task the moment the
  /// last map task seals its buffers for that partition. Grouping is an
  /// MSD radix sort on the key hash (comparison sort only within
  /// same-hash runs) that makes equal keys adjacent — equal keys have
  /// equal canonical encodings, so a run of equal slices is one reduce
  /// group. No per-pair heap allocation, no hash table, and
  /// MAP_OUTPUT_BYTES is measured, not simulated. Jobs without a
  /// SpillCodec fall back to kLegacyHash.
  kPackedSpill,
  /// The pre-PR2 path: one heap std::pair<K, V> per spilled record and an
  /// unordered_map<K, vector<V>> per reduce partition. Kept as the
  /// before-baseline of bench_shuffle; do not optimize it.
  kLegacyHash,
};

/// Execution configuration of a simulated MapReduce job.
struct JobConfig {
  /// Real worker threads used to execute tasks on this machine.
  size_t num_threads = std::thread::hardware_concurrency();
  /// Number of map tasks the input is split into.
  size_t num_map_tasks = 16;
  /// Number of reduce tasks (hash partitions of the key space).
  size_t num_reduce_tasks = 16;
  /// Shuffle implementation (see ShuffleMode).
  ShuffleMode shuffle = ShuffleMode::kPackedSpill;
};

/// Timeline of one reduce partition on the pipelined packed path, all in
/// wall-clock milliseconds since the job started.
struct PartitionTimeline {
  /// The last map task sealed this partition's spill buffers (its
  /// readiness counter hit zero and the grouping task was enqueued).
  double ready_ms = 0;
  /// The grouping task began executing on a worker (ready -> start is
  /// queue wait, not work).
  double start_ms = 0;
  /// Radix grouping finished; reduce streaming begins.
  double grouped_ms = 0;
  /// Reduce + reduce_finish done.
  double reduced_ms = 0;
};

/// Result of a job run: phase timings, counters, and the recorded per-task
/// durations that feed the simulated-cluster makespan model (Fig. 6).
struct JobResult {
  PhaseTimes times;
  JobCounters counters;
  std::vector<double> map_task_ms;
  std::vector<double> reduce_task_ms;
  /// When each map task began, ms since job start (pipelined packed path
  /// only, else empty). With map_task_ms this yields per-task intervals —
  /// what the tracing layer renders as mr.map spans.
  std::vector<double> map_task_start_ms;

  /// True when the run used the pipelined packed-spill path (no global
  /// phase barriers; `partition_timeline` is populated and
  /// `reduce_task_ms` includes each partition's grouping work).
  bool pipelined = false;
  /// Per-reduce-partition ready -> start -> grouped -> reduced timeline
  /// (pipelined packed path only, else empty).
  std::vector<PartitionTimeline> partition_timeline;
  /// When the last map task finished, i.e. where the map -> shuffle
  /// barrier *would* have been (pipelined packed path only).
  double map_barrier_ms = 0;
  /// Wall-clock during which at least two phases (map; grouping; reduce)
  /// had tasks executing simultaneously — the pipelining win made
  /// attributable. 0 on a single-thread pool, where tasks can interleave
  /// but never overlap.
  double phase_overlap_ms = 0;

  /// Simulated per-phase times on an `m`-machine cluster (Sec. 6.6). The
  /// model follows the schedule the job actually ran:
  ///  * strict-barrier runs (legacy shuffle, or jobs without a codec):
  ///    map makespan, then the measured shuffle scaled by 1/machines, then
  ///    reduce makespan — phases never overlap, matching the three global
  ///    pool fences of that path.
  ///  * pipelined packed runs: a partition's grouping is part of its
  ///    reduce task (`reduce_task_ms` includes it), and partitions group
  ///    and reduce concurrently with no barrier between them — exactly
  ///    what the task-level makespan models. There is no separate shuffle
  ///    term; adding the measured post-map grouping tail (times.shuffle_ms)
  ///    again would double-count it.
  PhaseTimes SimulatedTimes(size_t machines, size_t slots_per_machine = 8,
                            double per_task_overhead_ms = 20.0) const {
    PhaseTimes sim;
    sim.map_ms = SimulateMakespan(map_task_ms, machines, slots_per_machine,
                                  per_task_overhead_ms);
    sim.shuffle_ms =
        pipelined ? 0.0 : times.shuffle_ms / static_cast<double>(machines);
    sim.reduce_ms = SimulateMakespan(reduce_task_ms, machines,
                                     slots_per_machine, per_task_overhead_ms);
    return sim;
  }
};

/// Wall-clock milliseconds during which tasks of at least two different
/// phases were executing simultaneously: map tasks ([start, end]),
/// partition grouping ([start_ms, grouped_ms]) and partition reduce
/// ([grouped_ms, reduced_ms]). Event sweep over the recorded activity
/// intervals; queue wait (ready -> start) is not activity.
inline double PhaseOverlapMs(const std::vector<double>& map_start,
                             const std::vector<double>& map_end,
                             const std::vector<PartitionTimeline>& partitions) {
  struct Event {
    double t;
    int phase;
    int delta;
  };
  std::vector<Event> events;
  events.reserve(2 * (map_start.size() + 2 * partitions.size()));
  for (size_t m = 0; m < map_start.size(); ++m) {
    if (map_end[m] > map_start[m]) {
      events.push_back({map_start[m], 0, +1});
      events.push_back({map_end[m], 0, -1});
    }
  }
  for (const PartitionTimeline& p : partitions) {
    if (p.grouped_ms > p.start_ms) {
      events.push_back({p.start_ms, 1, +1});
      events.push_back({p.grouped_ms, 1, -1});
    }
    if (p.reduced_ms > p.grouped_ms) {
      events.push_back({p.grouped_ms, 2, +1});
      events.push_back({p.reduced_ms, 2, -1});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // Close before open at equal timestamps.
  });
  int active[3] = {0, 0, 0};
  double overlap = 0;
  double prev = 0;
  for (const Event& e : events) {
    const int phases = (active[0] > 0) + (active[1] > 0) + (active[2] > 0);
    if (phases >= 2) overlap += e.t - prev;
    prev = e.t;
    active[e.phase] += e.delta;
  }
  return overlap;
}

/// A minimal in-process MapReduce runtime (Sec. 3.1).
///
/// `Input` is the map input record type; `K`/`V` the intermediate key/value
/// types. The runtime splits the input into `num_map_tasks` chunks, runs the
/// user's map function over each chunk on a thread pool, optionally combines
/// values per key inside each map task, hash-partitions keys into
/// `num_reduce_tasks` groups, and runs the user's reduce function per key
/// group. All phases are timed.
///
/// Jobs that install a SpillCodec run the packed-spill shuffle by default
/// (ShuffleMode::kPackedSpill): map output lives in flat varint buffers,
/// grouping is radix-sort-based, MAP_OUTPUT_BYTES is the real buffer
/// size, and execution is pipelined — per-partition readiness counters
/// replace the global map -> shuffle -> reduce fences, so a partition
/// groups and reduces as soon as its inputs are sealed.
/// Reduce-side code must not assume anything about key arrival order — the
/// legacy path streams keys in hash-table order, the packed path in
/// (key-hash, key-bytes) order. Within one key group both paths deliver
/// values grouped by map task in ascending task order (within a task:
/// combiner-accumulator order on the legacy path, spill order on the
/// packed path); order-sensitive reducers should not rely on more than
/// that.
template <typename Input, typename K, typename V,
          typename KHash = std::hash<K>>
class MapReduceJob {
 public:
  /// Emits one intermediate pair; passed to the map function. The key is
  /// taken by const reference so map functions can reuse one scratch key
  /// buffer across emits (the runtime copies only where it must: into the
  /// combiner accumulator or the legacy spill).
  using EmitFn = std::function<void(const K&, const V&)>;
  /// User map function: `map(record, emit)`. Shared by all map tasks, so it
  /// must be re-entrant; per-thread scratch can be indexed by
  /// ThreadPool::CurrentIndex().
  using MapFn = std::function<void(const Input&, const EmitFn&)>;
  /// Optional associative combiner: merges `incoming` into `accumulated`.
  using CombineFn = std::function<void(V* accumulated, V&& incoming)>;
  /// User reduce function: `reduce(reduce_task_index, key, values)`.
  /// `values` may be consumed destructively; the vector is owned by the
  /// runtime and reused across key groups.
  using ReduceFn =
      std::function<void(size_t rtask, const K& key, std::vector<V>& values)>;
  /// Serialized size of a pair, for the simulated MAP_OUTPUT_BYTES counter
  /// of the legacy path (the packed path measures its buffers instead).
  using ByteSizeFn = std::function<size_t(const K&, const V&)>;
  /// Maps a key to a reduce partition (before modulo). Defaults to KHash.
  /// LASH overrides this to route every key of one pivot to the same reduce
  /// task while keeping full-key hashing for in-memory grouping.
  using PartitionFn = std::function<size_t(const K&)>;
  /// Called once per reduce task after all of its key groups were reduced;
  /// LASH runs the local miners here (the partitions P_w are complete
  /// then). `pool` is the job's worker pool — the hook may use
  /// ThreadPool::ParallelFor for nested parallelism, but must not call
  /// Wait() on it.
  using ReduceFinishFn = std::function<void(size_t rtask, ThreadPool* pool)>;

  /// Codec for the packed-spill path. Encodings must be canonical (equal
  /// keys produce equal bytes) because grouping compares encoded bytes;
  /// every codec in this repo is varint-based (util/varint.h).
  struct SpillCodec {
    std::function<void(std::string* out, const K& key)> encode_key;
    std::function<bool(const std::string& data, size_t* pos, K* key)>
        decode_key;
    std::function<void(std::string* out, const V& value)> encode_value;
    std::function<bool(const std::string& data, size_t* pos, V* value)>
        decode_value;
    /// Optional: advances *pos past one encoded key without materializing
    /// it. The runtime no longer needs it (the record directory — key
    /// slice bounds and hashes — is built at spill time, so no shuffle
    /// scan exists); it is kept so codecs stay round-trip-testable and
    /// self-describing.
    std::function<bool(const std::string& data, size_t* pos)> skip_key;
  };

  MapReduceJob(MapFn map, ReduceFn reduce, ByteSizeFn byte_size)
      : map_(std::move(map)),
        reduce_(std::move(reduce)),
        byte_size_(std::move(byte_size)),
        partition_([](const K& key) { return KHash{}(key); }) {}

  /// Installs a combiner, applied within each map task.
  void set_combiner(CombineFn combine) { combine_ = std::move(combine); }

  /// Overrides the key -> reduce partition routing.
  void set_partitioner(PartitionFn partition) {
    partition_ = std::move(partition);
  }

  /// Installs a per-reduce-task completion hook.
  void set_reduce_finish(ReduceFinishFn fn) { reduce_finish_ = std::move(fn); }

  /// Installs the spill codec, enabling the packed-spill shuffle.
  void set_spill_codec(SpillCodec codec) { codec_ = std::move(codec); }

  /// Runs the job over `inputs`: any corpus with `size()` and `operator[]`
  /// yielding something the map function accepts — a `std::vector<Input>`,
  /// or a FlatDatabase when `Input` is SequenceView (the flat read path:
  /// map tasks then scan one contiguous arena instead of chasing one heap
  /// vector per record).
  template <typename Corpus>
  JobResult Run(const Corpus& inputs, const JobConfig& config) {
    const size_t num_map = std::max<size_t>(1, config.num_map_tasks);
    const size_t num_red = std::max<size_t>(1, config.num_reduce_tasks);
    JobResult result;
    result.counters.map_input_records = inputs.size();
    result.map_task_ms.resize(num_map, 0.0);
    result.reduce_task_ms.resize(num_red, 0.0);

    ThreadPool pool(std::max<size_t>(1, config.num_threads));
    if (config.shuffle == ShuffleMode::kPackedSpill && codec_.encode_key) {
      RunPacked(inputs, num_map, num_red, &pool, &result);
    } else {
      RunLegacy(inputs, num_map, num_red, &pool, &result);
    }
    return result;
  }

 private:
  // ---- Packed-spill path -------------------------------------------------

  // One spilled record of a reduce partition: where its encoded key slice
  // lives (map task + byte range; buffers stay resident until the reduce
  // task finishes) plus the decoded value and the hash of the key bytes.
  // Sorting by (hash, slice bytes) makes equal keys adjacent.
  struct RecordRef {
    uint64_t hash;
    uint32_t map_task;
    uint32_t begin;
    uint32_t end;
    V value;
  };

  // Map-side combiner for the packed path, keyed by encoded key bytes: the
  // key is serialized into a string arena at emit time and deduplicated
  // with a chained hash table over (hash, byte slice). Compared to the
  // legacy unordered_map<K, V> accumulator this performs no per-key heap
  // allocation and flushing it is a single arena interleave. Entry order is
  // insertion order, so the spill content is deterministic for a fixed
  // input split.
  struct ByteCombiner {
    struct Entry {
      uint64_t hash;
      uint32_t begin;
      uint32_t end;
      uint32_t next;  // Chain link, index+1; 0 terminates.
      V value;
    };
    std::string arena;
    std::vector<Entry> entries;
    std::vector<uint32_t> heads;  // Power-of-two bucket array.
    size_t mask = 0;

    // `combine(accumulated, incoming)` merges duplicates.
    template <typename EncodeKey, typename Combine>
    void Add(const EncodeKey& encode_key, const K& key, const V& value,
             const Combine& combine) {
      if (heads.empty()) {
        heads.assign(64, 0);
        mask = heads.size() - 1;
      }
      const size_t begin_offset = arena.size();
      encode_key(&arena, key);
      // Guard after the append: this is where the arena can cross the
      // uint32 offset range, and begin_offset <= arena.size() is covered.
      if (arena.size() > UINT32_MAX) DieOnOversizedSpill();
      const uint32_t begin = static_cast<uint32_t>(begin_offset);
      const uint32_t end = static_cast<uint32_t>(arena.size());
      const uint64_t hash = FnvHashBytes(arena.data() + begin, end - begin);
      for (uint32_t e = heads[hash & mask]; e != 0; e = entries[e - 1].next) {
        Entry& entry = entries[e - 1];
        if (entry.hash == hash && entry.end - entry.begin == end - begin &&
            std::memcmp(arena.data() + entry.begin, arena.data() + begin,
                        end - begin) == 0) {
          combine(&entry.value, V(value));
          arena.resize(begin);  // Duplicate: drop the appended bytes.
          return;
        }
      }
      entries.push_back(Entry{hash, begin, end, heads[hash & mask], value});
      heads[hash & mask] = static_cast<uint32_t>(entries.size());
      if (entries.size() > heads.size()) Grow();
    }

    void Grow() {
      heads.assign(heads.size() * 2, 0);
      mask = heads.size() - 1;
      for (uint32_t i = 0; i < entries.size(); ++i) {
        entries[i].next = heads[entries[i].hash & mask];
        heads[entries[i].hash & mask] = i + 1;
      }
    }
  };

  // The pipelined dataflow. There are no global phase barriers: every map
  // task seals its spill buffers partition by partition, and the Seal call
  // that completes a partition's inputs (ReadinessCounters) enqueues that
  // partition's grouping + reduce as one pool task right there, from
  // inside the map task's body — so a partition can be grouping on one
  // worker while the map task that sealed it is still flushing the next
  // partition, and partitions group/reduce concurrently with each other
  // instead of in two global waves. One pool->Wait() at the end covers
  // everything: partition tasks are submitted from still-in-flight map
  // tasks, so the pool's in-flight count can never reach zero early.
  // Nested ParallelFor in reduce_finish stays safe (caller-drives).
  template <typename Corpus>
  void RunPacked(const Corpus& inputs, size_t num_map, size_t num_red,
                 ThreadPool* pool, JobResult* result) {
    // spill[m][r] = varint buffer of the records map task m emitted for
    // reduce partition r; refs[m][r] = that buffer's record directory
    // (key hash, key-slice bounds, decoded value), built at spill time —
    // the former shuffle-side decode/skip scan does not exist anymore.
    std::vector<std::vector<std::string>> spill(
        num_map, std::vector<std::string>(num_red));
    std::vector<std::vector<std::vector<RecordRef>>> refs(
        num_map, std::vector<std::vector<RecordRef>>(num_red));
    std::vector<JobCounters> task_counters(num_map);
    std::vector<double> map_start(num_map, 0.0);
    std::vector<double> map_end(num_map, 0.0);
    std::vector<PartitionTimeline> timeline(num_red);
    std::vector<uint64_t> group_counts(num_red, 0);
    ReadinessCounters ready(num_red, static_cast<uint32_t>(num_map));
    Stopwatch job_clock;

    // Grouping + reduce + reduce_finish of one complete partition.
    auto run_partition = [&](size_t r) {
      timeline[r].start_ms = job_clock.ElapsedMs();
      size_t total = 0;
      for (size_t m = 0; m < num_map; ++m) total += refs[m][r].size();
      std::vector<RecordRef> recs;
      recs.reserve(total);
      for (size_t m = 0; m < num_map; ++m) {
        recs.insert(recs.end(),
                    std::make_move_iterator(refs[m][r].begin()),
                    std::make_move_iterator(refs[m][r].end()));
        std::vector<RecordRef>().swap(refs[m][r]);
      }
      {
        std::vector<RecordRef> scratch(recs.size());
        RadixSortRefs(recs.data(), scratch.data(), recs.size(), 56, spill, r);
      }
      timeline[r].grouped_ms = job_clock.ElapsedMs();

      // Stream run-length key groups.
      K key;
      std::vector<V> values;  // Reused across groups, never per key.
      size_t i = 0;
      while (i < recs.size()) {
        size_t j = i + 1;
        while (j < recs.size() && recs[j].hash == recs[i].hash &&
               SliceEqual(spill, r, recs[i], recs[j])) {
          ++j;
        }
        const std::string& buffer = spill[recs[i].map_task][r];
        size_t pos = recs[i].begin;
        // A failure means the codec is not the inverse of its encoder —
        // fail loudly rather than deliver a corrupt group (same fate as a
        // failed Hadoop attempt).
        if (!codec_.decode_key(buffer, &pos, &key)) DieOnCorruptSpill();
        values.clear();
        for (size_t k = i; k < j; ++k) {
          values.push_back(std::move(recs[k].value));
        }
        reduce_(r, key, values);
        ++group_counts[r];
        i = j;
      }
      if (reduce_finish_) reduce_finish_(r, pool);
      // Release this partition's directory and buffers.
      std::vector<RecordRef>().swap(recs);
      for (size_t m = 0; m < num_map; ++m) {
        std::string().swap(spill[m][r]);
      }
      timeline[r].reduced_ms = job_clock.ElapsedMs();
      result->reduce_task_ms[r] =
          timeline[r].reduced_ms - timeline[r].start_ms;
    };

    // ---- Map tasks (each seals its partitions and may kick off their
    // grouping tasks as the counters drain) ----
    for (size_t m = 0; m < num_map; ++m) {
      pool->Submit([&, m] {
        map_start[m] = job_clock.ElapsedMs();
        const size_t lo = inputs.size() * m / num_map;
        const size_t hi = inputs.size() * (m + 1) / num_map;
        std::vector<std::string>& buffers = spill[m];
        std::vector<std::vector<RecordRef>>& dir = refs[m];
        uint64_t records = 0;
        // Seals partition r for this map task: its buffer and directory
        // will not change again. The last sealer enqueues the grouping.
        auto seal = [&](size_t r) {
          task_counters[m].map_output_bytes += buffers[r].size();
          if (ready.Seal(r)) {
            timeline[r].ready_ms = job_clock.ElapsedMs();
            pool->Submit([&run_partition, r] { run_partition(r); });
          }
        };
        if (combine_) {
          // Combine inside the map task directly on encoded key bytes,
          // then interleave the surviving pairs into the spill buffers;
          // only what the combiner keeps is counted, mirroring what Hadoop
          // actually transfers. The accumulator entry order is insertion
          // order, so the spill content is deterministic for a fixed
          // input split, and the entry's hash is the FNV of exactly the
          // key bytes being appended — no rehash on flush.
          std::vector<ByteCombiner> acc(num_red);
          EmitFn emit = [&](const K& key, const V& value) {
            size_t r = partition_(key) % num_red;
            acc[r].Add(codec_.encode_key, key, value, combine_);
          };
          for (size_t i = lo; i < hi; ++i) map_(inputs[i], emit);
          for (size_t r = 0; r < num_red; ++r) {
            dir[r].reserve(acc[r].entries.size());
            for (auto& entry : acc[r].entries) {
              const size_t begin = buffers[r].size();
              buffers[r].append(acc[r].arena, entry.begin,
                                entry.end - entry.begin);
              const size_t end = buffers[r].size();
              codec_.encode_value(&buffers[r], entry.value);
              if (buffers[r].size() > UINT32_MAX) DieOnOversizedSpill();
              dir[r].push_back(RecordRef{entry.hash,
                                         static_cast<uint32_t>(m),
                                         static_cast<uint32_t>(begin),
                                         static_cast<uint32_t>(end),
                                         std::move(entry.value)});
              ++records;
            }
            acc[r] = ByteCombiner();  // Flushed; release before sealing.
            seal(r);
          }
        } else {
          EmitFn emit = [&](const K& key, const V& value) {
            size_t r = partition_(key) % num_red;
            const size_t begin = buffers[r].size();
            codec_.encode_key(&buffers[r], key);
            const size_t end = buffers[r].size();
            codec_.encode_value(&buffers[r], value);
            if (buffers[r].size() > UINT32_MAX) DieOnOversizedSpill();
            dir[r].push_back(RecordRef{
                FnvHashBytes(buffers[r].data() + begin, end - begin),
                static_cast<uint32_t>(m), static_cast<uint32_t>(begin),
                static_cast<uint32_t>(end), value});
            ++records;
          };
          for (size_t i = lo; i < hi; ++i) map_(inputs[i], emit);
          for (size_t r = 0; r < num_red; ++r) seal(r);
        }
        task_counters[m].map_output_records = records;
        map_end[m] = job_clock.ElapsedMs();
        result->map_task_ms[m] = map_end[m] - map_start[m];
      });
    }
    pool->Wait();
    const double total_ms = job_clock.ElapsedMs();
    for (const JobCounters& c : task_counters) result->counters.Merge(c);
    for (uint64_t c : group_counts) result->counters.reduce_input_groups += c;

    // Phase attribution without barriers — the three numbers still sum to
    // the job's true wall clock: map = the map barrier (last map task
    // end), shuffle = how far past that barrier the last partition
    // finished grouping (0 when all grouping overlapped the map tail),
    // reduce = everything after. The per-partition timeline plus
    // phase_overlap_ms carry the detail a single number cannot.
    double barrier = 0;
    for (double e : map_end) barrier = std::max(barrier, e);
    double last_grouped = barrier;
    for (const PartitionTimeline& p : timeline) {
      last_grouped = std::max(last_grouped, p.grouped_ms);
    }
    result->times.map_ms = barrier;
    result->times.shuffle_ms = last_grouped - barrier;
    result->times.reduce_ms = total_ms - last_grouped;
    result->pipelined = true;
    result->map_barrier_ms = barrier;
    result->phase_overlap_ms = PhaseOverlapMs(map_start, map_end, timeline);
    result->map_task_start_ms = std::move(map_start);
    result->partition_timeline = std::move(timeline);
  }

  // MSD radix sort of `n` RecordRefs on the 64-bit key hash, one
  // big-endian byte per level (`shift` starts at 56): stable counting
  // scatter into `scratch`, recursing per bucket, with a comparison sort
  // on ranges below the cutoff or once all hash bytes are consumed. The
  // fallback comparator is the full (hash, key bytes, map task, spill
  // offset) order and the scatter is stable, so the result is the exact
  // total order the former whole-range std::sort produced: equal keys
  // adjacent (all grouping needs) and a group's values still streaming in
  // ascending (map task, offset) order. What drops is the work — O(n)
  // byte-scatter passes over well-distributed hash prefixes instead of
  // O(n log n) comparisons that re-touch the key bytes.
  static void RadixSortRefs(RecordRef* recs, RecordRef* scratch, size_t n,
                            int shift,
                            const std::vector<std::vector<std::string>>& spill,
                            size_t r) {
    constexpr size_t kCutoff = 48;
    if (n < 2) return;
    if (n <= kCutoff || shift < 0) {
      std::sort(recs, recs + n, [&](const RecordRef& a, const RecordRef& b) {
        if (a.hash != b.hash) return a.hash < b.hash;
        const int cmp = SliceCompare(spill, r, a, b);
        if (cmp != 0) return cmp < 0;
        // Equal keys: (map task, spill offset) tie-break so the values of
        // a group stream in the legacy path's ascending-map-task order
        // despite the unstable sort.
        if (a.map_task != b.map_task) return a.map_task < b.map_task;
        return a.begin < b.begin;
      });
      return;
    }
    size_t counts[256] = {0};
    for (size_t i = 0; i < n; ++i) {
      ++counts[(recs[i].hash >> shift) & 0xff];
    }
    const size_t first_bucket = (recs[0].hash >> shift) & 0xff;
    if (counts[first_bucket] == n) {  // One bucket: nothing to scatter.
      RadixSortRefs(recs, scratch, n, shift - 8, spill, r);
      return;
    }
    size_t offsets[256];
    size_t sum = 0;
    for (size_t b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += counts[b];
    }
    for (size_t i = 0; i < n; ++i) {
      scratch[offsets[(recs[i].hash >> shift) & 0xff]++] =
          std::move(recs[i]);
    }
    for (size_t i = 0; i < n; ++i) recs[i] = std::move(scratch[i]);
    size_t begin = 0;
    for (size_t b = 0; b < 256; ++b) {
      RadixSortRefs(recs + begin, scratch + begin, counts[b], shift - 8,
                    spill, r);
      begin += counts[b];
    }
  }

  [[noreturn]] static void DieOnCorruptSpill() {
    std::fprintf(stderr,
                 "MapReduceJob: spill codec failed to decode its own buffer "
                 "(encode/decode mismatch)\n");
    std::abort();
  }

  [[noreturn]] static void DieOnOversizedSpill() {
    std::fprintf(stderr,
                 "MapReduceJob: a single (map task, reduce partition) spill "
                 "buffer exceeds 4 GiB; raise num_map_tasks/num_reduce_tasks\n");
    std::abort();
  }

  // Three-way lexicographic comparison of two encoded key slices.
  static int SliceCompare(const std::vector<std::vector<std::string>>& spill,
                          size_t r, const RecordRef& a, const RecordRef& b) {
    const char* pa = spill[a.map_task][r].data() + a.begin;
    const char* pb = spill[b.map_task][r].data() + b.begin;
    const size_t la = a.end - a.begin;
    const size_t lb = b.end - b.begin;
    const int cmp = std::memcmp(pa, pb, std::min(la, lb));
    if (cmp != 0) return cmp;
    return la < lb ? -1 : (la > lb ? 1 : 0);
  }

  static bool SliceEqual(const std::vector<std::vector<std::string>>& spill,
                         size_t r, const RecordRef& a, const RecordRef& b) {
    const size_t la = a.end - a.begin;
    if (la != b.end - b.begin) return false;
    return std::memcmp(spill[a.map_task][r].data() + a.begin,
                       spill[b.map_task][r].data() + b.begin, la) == 0;
  }

  // ---- Legacy path (before-baseline of bench_shuffle; do not optimize) ---

  template <typename Corpus>
  void RunLegacy(const Corpus& inputs, size_t num_map, size_t num_red,
                 ThreadPool* pool, JobResult* result) {
    // spill[m][r] = pairs emitted by map task m for reduce partition r.
    std::vector<std::vector<std::vector<std::pair<K, V>>>> spill(
        num_map, std::vector<std::vector<std::pair<K, V>>>(num_red));
    std::vector<JobCounters> task_counters(num_map);
    Stopwatch phase;

    // ---- Map phase ----
    for (size_t m = 0; m < num_map; ++m) {
      pool->Submit([&, m] {
        Stopwatch task_clock;
        const size_t lo = inputs.size() * m / num_map;
        const size_t hi = inputs.size() * (m + 1) / num_map;
        if (combine_) {
          // Combine inside the map task: per-partition hash maps.
          std::vector<std::unordered_map<K, V, KHash>> acc(num_red);
          EmitFn emit = [&](const K& key, const V& value) {
            size_t r = partition_(key) % num_red;
            auto [it, inserted] = acc[r].try_emplace(key);
            if (inserted) {
              it->second = value;
            } else {
              combine_(&it->second, V(value));
            }
          };
          for (size_t i = lo; i < hi; ++i) map_(inputs[i], emit);
          for (size_t r = 0; r < num_red; ++r) {
            spill[m][r].reserve(acc[r].size());
            for (auto& [key, value] : acc[r]) {
              task_counters[m].map_output_bytes += byte_size_(key, value);
              ++task_counters[m].map_output_records;
              spill[m][r].emplace_back(key, std::move(value));
            }
          }
        } else {
          EmitFn emit = [&](const K& key, const V& value) {
            size_t r = partition_(key) % num_red;
            task_counters[m].map_output_bytes += byte_size_(key, value);
            ++task_counters[m].map_output_records;
            spill[m][r].emplace_back(key, value);
          };
          for (size_t i = lo; i < hi; ++i) map_(inputs[i], emit);
        }
        result->map_task_ms[m] = task_clock.ElapsedMs();
      });
    }
    pool->Wait();
    result->times.map_ms = phase.ElapsedMs();
    for (const JobCounters& c : task_counters) result->counters.Merge(c);

    // ---- Shuffle phase: group values by key per reduce partition. ----
    phase.Restart();
    std::vector<std::unordered_map<K, std::vector<V>, KHash>> groups(num_red);
    for (size_t r = 0; r < num_red; ++r) {
      pool->Submit([&, r] {
        size_t total = 0;
        for (size_t m = 0; m < num_map; ++m) total += spill[m][r].size();
        groups[r].reserve(total);
        for (size_t m = 0; m < num_map; ++m) {
          for (auto& [key, value] : spill[m][r]) {
            groups[r][std::move(key)].push_back(std::move(value));
          }
          spill[m][r].clear();
          spill[m][r].shrink_to_fit();
        }
      });
    }
    pool->Wait();
    result->times.shuffle_ms = phase.ElapsedMs();

    // ---- Reduce phase ----
    phase.Restart();
    std::vector<uint64_t> group_counts(num_red, 0);
    for (size_t r = 0; r < num_red; ++r) {
      pool->Submit([&, r] {
        Stopwatch task_clock;
        group_counts[r] = groups[r].size();
        for (auto& [key, values] : groups[r]) {
          reduce_(r, key, values);
        }
        if (reduce_finish_) reduce_finish_(r, pool);
        result->reduce_task_ms[r] = task_clock.ElapsedMs();
      });
    }
    pool->Wait();
    result->times.reduce_ms = phase.ElapsedMs();
    for (uint64_t c : group_counts) result->counters.reduce_input_groups += c;
  }

  MapFn map_;
  CombineFn combine_;
  ReduceFn reduce_;
  ByteSizeFn byte_size_;
  PartitionFn partition_;
  ReduceFinishFn reduce_finish_;
  SpillCodec codec_;
};

}  // namespace lash

#endif  // LASH_MAPREDUCE_JOB_H_
