#ifndef LASH_MAPREDUCE_JOB_H_
#define LASH_MAPREDUCE_JOB_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mapreduce/cluster.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace lash {

/// Counters mirroring the Hadoop counters the paper reports (Sec. 6.1):
/// `map_output_bytes` corresponds to MAP_OUTPUT_BYTES and is computed from
/// the varint-serialized size of every key/value pair that leaves the map
/// phase (i.e. after the combiner, which is what is actually transferred).
struct JobCounters {
  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;
  uint64_t reduce_input_groups = 0;
  uint64_t reduce_output_records = 0;

  void Merge(const JobCounters& other) {
    map_input_records += other.map_input_records;
    map_output_records += other.map_output_records;
    map_output_bytes += other.map_output_bytes;
    reduce_input_groups += other.reduce_input_groups;
    reduce_output_records += other.reduce_output_records;
  }
};

/// Per-phase elapsed wall-clock, the measure reported throughout Sec. 6
/// ("we break down this time into time taken by the map phase, shuffle phase
/// and the reduce phase").
struct PhaseTimes {
  double map_ms = 0;
  double shuffle_ms = 0;
  double reduce_ms = 0;

  double TotalMs() const { return map_ms + shuffle_ms + reduce_ms; }

  void Merge(const PhaseTimes& other) {
    map_ms += other.map_ms;
    shuffle_ms += other.shuffle_ms;
    reduce_ms += other.reduce_ms;
  }
};

/// Execution configuration of a simulated MapReduce job.
struct JobConfig {
  /// Real worker threads used to execute tasks on this machine.
  size_t num_threads = std::thread::hardware_concurrency();
  /// Number of map tasks the input is split into.
  size_t num_map_tasks = 16;
  /// Number of reduce tasks (hash partitions of the key space).
  size_t num_reduce_tasks = 16;
};

/// Result of a job run: phase timings, counters, and the recorded per-task
/// durations that feed the simulated-cluster makespan model (Fig. 6).
struct JobResult {
  PhaseTimes times;
  JobCounters counters;
  std::vector<double> map_task_ms;
  std::vector<double> reduce_task_ms;

  /// Simulated per-phase times on an `m`-machine cluster (Sec. 6.6).
  PhaseTimes SimulatedTimes(size_t machines, size_t slots_per_machine = 8,
                            double per_task_overhead_ms = 20.0) const {
    PhaseTimes sim;
    sim.map_ms = SimulateMakespan(map_task_ms, machines, slots_per_machine,
                                  per_task_overhead_ms);
    sim.shuffle_ms = times.shuffle_ms / static_cast<double>(machines);
    sim.reduce_ms = SimulateMakespan(reduce_task_ms, machines,
                                     slots_per_machine, per_task_overhead_ms);
    return sim;
  }
};

/// A minimal in-process MapReduce runtime (Sec. 3.1).
///
/// `Input` is the map input record type; `K`/`V` the intermediate key/value
/// types. The runtime splits the input into `num_map_tasks` chunks, runs the
/// user's map function over each chunk on a thread pool, optionally combines
/// values per key inside each map task, hash-partitions keys into
/// `num_reduce_tasks` groups, and runs the user's reduce function per key
/// group. All phases are timed; per-pair serialized sizes accumulate into
/// MAP_OUTPUT_BYTES.
template <typename Input, typename K, typename V,
          typename KHash = std::hash<K>>
class MapReduceJob {
 public:
  /// Emits one intermediate pair; passed to the map function.
  using EmitFn = std::function<void(K, V)>;
  /// User map function: `map(record, emit)`.
  using MapFn = std::function<void(const Input&, const EmitFn&)>;
  /// Optional associative combiner: merges `incoming` into `accumulated`.
  using CombineFn = std::function<void(V* accumulated, V&& incoming)>;
  /// User reduce function: `reduce(reduce_task_index, key, values)`.
  /// `values` may be consumed destructively.
  using ReduceFn =
      std::function<void(size_t rtask, const K& key, std::vector<V>& values)>;
  /// Serialized size of a pair, for the MAP_OUTPUT_BYTES counter.
  using ByteSizeFn = std::function<size_t(const K&, const V&)>;
  /// Maps a key to a reduce partition (before modulo). Defaults to KHash.
  /// LASH overrides this to route every key of one pivot to the same reduce
  /// task while keeping full-key hashing for in-memory grouping.
  using PartitionFn = std::function<size_t(const K&)>;
  /// Called once per reduce task after all of its key groups were reduced;
  /// LASH runs the local miner here (the partition P_w is complete then).
  using ReduceFinishFn = std::function<void(size_t rtask)>;

  MapReduceJob(MapFn map, ReduceFn reduce, ByteSizeFn byte_size)
      : map_(std::move(map)),
        reduce_(std::move(reduce)),
        byte_size_(std::move(byte_size)),
        partition_([](const K& key) { return KHash{}(key); }) {}

  /// Installs a combiner, applied within each map task.
  void set_combiner(CombineFn combine) { combine_ = std::move(combine); }

  /// Overrides the key -> reduce partition routing.
  void set_partitioner(PartitionFn partition) {
    partition_ = std::move(partition);
  }

  /// Installs a per-reduce-task completion hook.
  void set_reduce_finish(ReduceFinishFn fn) { reduce_finish_ = std::move(fn); }

  /// Runs the job over `inputs`.
  JobResult Run(const std::vector<Input>& inputs, const JobConfig& config) {
    const size_t num_map = std::max<size_t>(1, config.num_map_tasks);
    const size_t num_red = std::max<size_t>(1, config.num_reduce_tasks);
    JobResult result;
    result.counters.map_input_records = inputs.size();
    result.map_task_ms.resize(num_map, 0.0);
    result.reduce_task_ms.resize(num_red, 0.0);

    // spill[m][r] = pairs emitted by map task m for reduce partition r.
    std::vector<std::vector<std::vector<std::pair<K, V>>>> spill(
        num_map, std::vector<std::vector<std::pair<K, V>>>(num_red));
    std::vector<JobCounters> task_counters(num_map);

    ThreadPool pool(std::max<size_t>(1, config.num_threads));
    Stopwatch phase;

    // ---- Map phase ----
    for (size_t m = 0; m < num_map; ++m) {
      pool.Submit([&, m] {
        Stopwatch task_clock;
        const size_t lo = inputs.size() * m / num_map;
        const size_t hi = inputs.size() * (m + 1) / num_map;
        if (combine_) {
          // Combine inside the map task: per-partition hash maps.
          std::vector<std::unordered_map<K, V, KHash>> acc(num_red);
          EmitFn emit = [&](K key, V value) {
            size_t r = partition_(key) % num_red;
            auto [it, inserted] = acc[r].try_emplace(std::move(key));
            if (inserted) {
              it->second = std::move(value);
            } else {
              combine_(&it->second, std::move(value));
            }
          };
          for (size_t i = lo; i < hi; ++i) map_(inputs[i], emit);
          for (size_t r = 0; r < num_red; ++r) {
            spill[m][r].reserve(acc[r].size());
            for (auto& [key, value] : acc[r]) {
              task_counters[m].map_output_bytes += byte_size_(key, value);
              ++task_counters[m].map_output_records;
              spill[m][r].emplace_back(key, std::move(value));
            }
          }
        } else {
          EmitFn emit = [&](K key, V value) {
            size_t r = partition_(key) % num_red;
            task_counters[m].map_output_bytes += byte_size_(key, value);
            ++task_counters[m].map_output_records;
            spill[m][r].emplace_back(std::move(key), std::move(value));
          };
          for (size_t i = lo; i < hi; ++i) map_(inputs[i], emit);
        }
        result.map_task_ms[m] = task_clock.ElapsedMs();
      });
    }
    pool.Wait();
    result.times.map_ms = phase.ElapsedMs();
    for (const JobCounters& c : task_counters) result.counters.Merge(c);
    result.counters.map_input_records = inputs.size();

    // ---- Shuffle phase: group values by key per reduce partition. ----
    phase.Restart();
    std::vector<std::unordered_map<K, std::vector<V>, KHash>> groups(num_red);
    for (size_t r = 0; r < num_red; ++r) {
      pool.Submit([&, r] {
        size_t total = 0;
        for (size_t m = 0; m < num_map; ++m) total += spill[m][r].size();
        groups[r].reserve(total);
        for (size_t m = 0; m < num_map; ++m) {
          for (auto& [key, value] : spill[m][r]) {
            groups[r][std::move(key)].push_back(std::move(value));
          }
          spill[m][r].clear();
          spill[m][r].shrink_to_fit();
        }
      });
    }
    pool.Wait();
    result.times.shuffle_ms = phase.ElapsedMs();

    // ---- Reduce phase ----
    phase.Restart();
    std::vector<uint64_t> group_counts(num_red, 0);
    for (size_t r = 0; r < num_red; ++r) {
      pool.Submit([&, r] {
        Stopwatch task_clock;
        group_counts[r] = groups[r].size();
        for (auto& [key, values] : groups[r]) {
          reduce_(r, key, values);
        }
        if (reduce_finish_) reduce_finish_(r);
        result.reduce_task_ms[r] = task_clock.ElapsedMs();
      });
    }
    pool.Wait();
    result.times.reduce_ms = phase.ElapsedMs();
    for (uint64_t c : group_counts) result.counters.reduce_input_groups += c;
    return result;
  }

 private:
  MapFn map_;
  CombineFn combine_;
  ReduceFn reduce_;
  ByteSizeFn byte_size_;
  PartitionFn partition_;
  ReduceFinishFn reduce_finish_;
};

}  // namespace lash

#endif  // LASH_MAPREDUCE_JOB_H_
