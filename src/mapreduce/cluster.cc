#include "mapreduce/cluster.h"

#include <algorithm>
#include <queue>

namespace lash {

double SimulateMakespan(const std::vector<double>& task_durations_ms,
                        size_t machines, size_t slots_per_machine,
                        double per_task_overhead_ms) {
  if (machines == 0) machines = 1;
  if (slots_per_machine == 0) slots_per_machine = 1;
  const size_t slots = machines * slots_per_machine;
  std::vector<double> sorted = task_durations_ms;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  // Min-heap of slot finish times.
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap;
  for (size_t i = 0; i < slots; ++i) heap.push(0.0);
  double makespan = 0.0;
  for (double d : sorted) {
    double start = heap.top();
    heap.pop();
    double finish = start + d + per_task_overhead_ms;
    makespan = std::max(makespan, finish);
    heap.push(finish);
  }
  return makespan;
}

}  // namespace lash
