#ifndef LASH_MAPREDUCE_CLUSTER_H_
#define LASH_MAPREDUCE_CLUSTER_H_

#include <cstddef>
#include <vector>

namespace lash {

/// Simulated-cluster makespan model.
///
/// The paper runs on a 10-worker Hadoop cluster with 8 task slots per node
/// (Sec. 6.1). We execute every task locally and record its duration; the
/// scalability experiments (Fig. 6) then ask how those tasks would schedule
/// across `m` machines. Hadoop's scheduler assigns tasks to free slots as
/// they come; we model it with the classic greedy LPT (longest processing
/// time first) schedule, whose makespan is within 4/3 of optimal and matches
/// the behaviour of a slot scheduler under skew: one giant partition bounds
/// the makespan no matter how many nodes are added — exactly the skew effect
/// item-based partitioning mitigates (Sec. 4).
///
/// `SimulateMakespan` returns the simulated wall-clock of running tasks with
/// the given durations (milliseconds) on `machines * slots_per_machine`
/// parallel slots, plus `per_task_overhead_ms` added to each task (task
/// startup cost, which keeps weak-scaling curves honest).
double SimulateMakespan(const std::vector<double>& task_durations_ms,
                        size_t machines, size_t slots_per_machine = 8,
                        double per_task_overhead_ms = 0.0);

}  // namespace lash

#endif  // LASH_MAPREDUCE_CLUSTER_H_
