#ifndef LASH_API_LASH_API_H_
#define LASH_API_LASH_API_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algo/algo.h"
#include "algo/gsp.h"
#include "algo/lash.h"
#include "core/database.h"
#include "core/hierarchy.h"
#include "core/params.h"
#include "core/vocabulary.h"
#include "io/mmap_file.h"
#include "io/snapshot.h"
#include "mapreduce/job.h"
#include "miner/miner.h"
#include "util/hash.h"
#include "util/types.h"

/// The one front door of the library (README "Quickstart").
///
/// The paper's pitch is a *system*: load a hierarchical sequence database
/// once, then answer many G_{σ,γ,λ} mining requests over it. This header is
/// that system's public surface:
///
///   * `Dataset`    — database + hierarchy + vocabulary, preprocessed once
///                    (generalized f-list, rank recoding) and reusable
///                    across queries with different σ/γ/λ;
///   * `MiningTask` — a validated query builder selecting the algorithm,
///                    parameters, execution knobs, redundancy filter, and
///                    top-k truncation;
///   * `PatternSink`— a streaming consumer of mined patterns; `PatternView`
///                    lazily decodes rank ids back to raw ids and names;
///   * `RunResult`  — one result shape unifying the timings and counters of
///                    all six algorithms.
///
/// The `algo/*` headers remain available as the internal/bench-baseline
/// surface; new callers should go through this facade.
namespace lash {

/// Error thrown by the facade: invalid task configuration (with every
/// problem listed in one readable message) or a failed dataset load.
class ApiError : public std::invalid_argument {
 public:
  explicit ApiError(const std::string& message)
      : std::invalid_argument(message) {}
};

/// The mining algorithms the facade can execute (Sec. 3 and Sec. 6.3).
enum class Algorithm {
  kSequential,  ///< In-process partition/mine pipeline (no MapReduce).
  kLash,        ///< LASH: hierarchy-aware item-based partitioning (Sec. 3.4).
  kMgFsm,       ///< MG-FSM baseline: flat hierarchy + BFS miner (Sec. 6.3).
  kGsp,         ///< Extended-sequences GSP baseline of Srikant & Agrawal.
  kNaive,       ///< Naive distributed baseline (Sec. 3.2).
  kSemiNaive,   ///< Semi-naive distributed baseline (Sec. 3.3).
};

/// Parses "sequential", "lash", "mgfsm", "gsp", "naive", "seminaive"
/// (case-insensitive; also accepts "mg-fsm"/"semi-naive"). Throws ApiError
/// listing the valid names otherwise.
Algorithm ParseAlgorithm(const std::string& name);

/// Human-readable algorithm name (the ParseAlgorithm spelling).
std::string AlgorithmName(Algorithm algorithm);

/// Redundancy filter applied to the mined output (Sec. 6.7).
enum class PatternFilter {
  kNone,
  kClosed,   ///< Drop patterns with an equal-frequency supersequence.
  kMaximal,  ///< Drop patterns with any frequent supersequence.
};

/// Parses "none", "closed", "maximal" (case-insensitive); throws ApiError
/// otherwise.
PatternFilter ParsePatternFilter(const std::string& name);

class Dataset;

/// One mined pattern as handed to a PatternSink: the rank-space sequence and
/// its frequency, plus lazy decoding back to raw ids and item names (callers
/// no longer hand-roll `vocab.Name(pre.raw_of_rank[rank])`).
class PatternView {
 public:
  PatternView(const Sequence& ranks, Frequency frequency,
              const Vocabulary* vocab, const PreprocessResult* pre)
      : ranks_(&ranks), frequency_(frequency), vocab_(vocab), pre_(pre) {}

  /// The pattern in the rank-id space of the run's preprocessing.
  const Sequence& ranks() const { return *ranks_; }
  Frequency frequency() const { return frequency_; }
  size_t length() const { return ranks_->size(); }

  /// Decodes the pattern to raw (pre-preprocessing) item ids.
  Sequence raw_ids() const;
  /// Decodes the pattern to item names.
  std::vector<std::string> names() const;
  /// Space-joined item names ("a B c").
  std::string ToString() const;

 private:
  const Sequence* ranks_;
  Frequency frequency_;
  const Vocabulary* vocab_;
  const PreprocessResult* pre_;
};

/// Streaming consumer of mined patterns. `OnPattern` is called once per
/// pattern surviving the task's filter/top-k (order unspecified unless the
/// task sets top-k, which emits in descending frequency); `OnFinish` is
/// called exactly once after the last pattern. The PatternView (and the
/// Sequence it borrows) is only valid during the OnPattern call.
class PatternSink {
 public:
  virtual ~PatternSink() = default;
  virtual void OnPattern(const PatternView& pattern) = 0;
  virtual void OnFinish() {}
};

/// Materializes the stream into a PatternMap (rank space) — the bridge to
/// the pre-facade result shape and the filters/stats helpers.
class CollectSink : public PatternSink {
 public:
  void OnPattern(const PatternView& pattern) override;

  /// Splices `patterns` in wholesale (no per-sequence copies); on key
  /// collision the already-collected entry wins, like OnPattern. Run()
  /// uses this as a fast path instead of streaming pattern by pattern.
  void Merge(PatternMap&& patterns);

  const PatternMap& patterns() const { return patterns_; }
  PatternMap Take() { return std::move(patterns_); }

 private:
  PatternMap patterns_;
};

/// Keeps only the `k` most frequent patterns in a bounded heap (ties broken
/// lexicographically on the rank sequence — the exact order of TopK() in
/// stats/filters.h, so streaming and materialized top-k agree on ties).
/// `k == 0` keeps nothing (unlike MiningTask::WithTopK, where 0 disables
/// the truncation).
class TopKSink : public PatternSink {
 public:
  explicit TopKSink(size_t k) : k_(k) {}

  void OnPattern(const PatternView& pattern) override;

  /// The kept patterns in descending frequency (lexicographic tie-break),
  /// identical to `TopK(collected_map, k)`.
  std::vector<std::pair<Sequence, Frequency>> Sorted() const;

 private:
  bool Better(const std::pair<Sequence, Frequency>& a,
              const std::pair<Sequence, Frequency>& b) const;

  size_t k_;
  /// Max-heap by "worse first": heap_.front() is the worst kept pattern.
  std::vector<std::pair<Sequence, Frequency>> heap_;
};

/// Writes `frequency<TAB>name name ...` lines (the io/text_io.h pattern
/// format). In sorted mode (default) lines are buffered and written in the
/// deterministic WritePatterns order on OnFinish — byte-identical to the
/// pre-facade tools; with `sorted == false` each pattern is written as it
/// streams in, with no buffering.
class TextWriterSink : public PatternSink {
 public:
  explicit TextWriterSink(std::ostream& out, bool sorted = true)
      : out_(&out), sorted_(sorted) {}

  void OnPattern(const PatternView& pattern) override;
  void OnFinish() override;

 private:
  struct Line {
    Sequence ranks;
    Frequency frequency;
    std::string names;
  };

  void Write(const Line& line);

  std::ostream* out_;
  bool sorted_;
  std::vector<Line> lines_;
};

/// One result shape for all six algorithms: pattern accounting plus every
/// per-algorithm statistic the old entry points returned separately
/// (AlgoResult / MinerStats / GspStats / PartitionShape / JobResult).
/// Fields not produced by the selected algorithm stay zero.
struct RunResult {
  Algorithm algorithm = Algorithm::kSequential;
  bool used_flat_hierarchy = false;  ///< Mined with the hierarchy stripped.

  uint64_t patterns_mined = 0;    ///< Frequent patterns before filter/top-k.
  uint64_t patterns_emitted = 0;  ///< Patterns delivered to the sink.
  bool aborted = false;  ///< A baseline emit cap stopped the run ("DNF").

  MinerStats miner_stats;          ///< Sequential / LASH / MG-FSM.
  GspStats gsp_stats;              ///< GSP.
  PartitionShape partition_shape;  ///< LASH / MG-FSM.
  JobResult job;                   ///< Distributed algorithms (map/shuffle/
                                   ///< reduce times and Hadoop counters).

  double mine_ms = 0;    ///< Mining wall-clock (all algorithms).
  double filter_ms = 0;  ///< Closed/maximal filter wall-clock.
  double total_ms = 0;   ///< Mine + filter + emit wall-clock.
};

/// A hierarchical sequence database, loaded and preprocessed **once**
/// (generalized f-list + rank recoding, Sec. 3.3/3.4) and then shared by any
/// number of MiningTasks with different parameters. Also owns the lazily
/// built flat (hierarchy-stripped) preprocessing used by MG-FSM and
/// flat-mining queries, so hierarchical and flat queries over one dataset
/// never re-read the input.
///
/// Not copyable or movable; a serving layer holds it behind a pointer.
class Dataset {
 public:
  /// Loads the text formats of io/text_io.h (hierarchy: child<TAB>parent
  /// lines; sequences: one whitespace-separated sequence per line). Throws
  /// ApiError if a file cannot be opened.
  static Dataset FromFiles(const std::string& sequences_path,
                           const std::string& hierarchy_path);

  /// Same formats from open streams (hierarchy is read first, matching
  /// FromFiles' interning order).
  static Dataset FromStreams(std::istream& sequences, std::istream& hierarchy);

  /// Adopts an in-memory database whose items were interned through `vocab`
  /// (including parent edges); the hierarchy is built from the vocabulary.
  static Dataset FromMemory(Database raw_db, Vocabulary vocab);

  /// Adopts datagen output (datagen/*.h), which carries a prebuilt raw
  /// hierarchy alongside the vocabulary.
  static Dataset FromMemory(Database raw_db, Vocabulary vocab,
                            Hierarchy raw_hierarchy);

  /// How FromSnapshot brings the file into memory.
  enum class LoadMode {
    /// Stream the file into owned arenas, verifying every checksum and the
    /// full corpus structure eagerly; the raw corpus is reconstructed up
    /// front. Always available; the only mode that decodes v1 containers
    /// without an mmap.
    kCopy,
    /// mmap the file read-only and *borrow* the big arrays in place (v2
    /// containers on little-endian hosts): cold start is O(page faults) in
    /// the corpus, not O(corpus bytes). The header and every small section
    /// are checksum-verified eagerly; the two corpus sections' checksums
    /// (and their O(corpus) structural checks) are deferred — call
    /// VerifyCorpus() to run them on demand. The raw corpus is rebuilt
    /// lazily on first raw_database()/flat_preprocessed() use. The Dataset
    /// owns the mapping, so every borrowed view stays valid for its
    /// lifetime. v1 containers and big-endian hosts silently degrade to a
    /// full copy with nothing deferred.
    kMmap,
  };

  /// Loads a one-file dataset snapshot previously written by Save(): the
  /// vocabulary, hierarchy, *preprocessed* flat corpus, f-list and stats
  /// are read back directly, so neither text parsing nor the preprocessing
  /// phase runs — `load_times().preprocess_ms` is 0 by construction. This
  /// is how serving shards and tools should start on large corpora.
  ///
  /// Throws ApiError if the file cannot be opened or the snapshot is
  /// semantically inconsistent; corrupt containers (bad magic, truncation,
  /// future version, checksum mismatch) surface as the typed IoError of
  /// io/io_error.h.
  static Dataset FromSnapshot(const std::string& path,
                              LoadMode mode = LoadMode::kCopy);

  /// Writes the one-file snapshot (io/snapshot.h) for FromSnapshot. The
  /// flat (hierarchy-stripped) preprocessing is not stored; it is rebuilt
  /// lazily on first use like any other Dataset.
  void Save(const std::string& path) const;

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  /// Process-unique id assigned at construction (never 0, never reused
  /// within a process). Serving-layer cache keys include it, so identical
  /// task specs over different datasets can never collide — even when one
  /// dataset is destroyed and another is loaded at the same address.
  uint64_t id() const { return id_; }

  const Vocabulary& vocabulary() const { return vocab_; }
  /// The raw (pre-recoding) corpus in flat CSR form. After a
  /// LoadMode::kMmap snapshot load it is reconstructed lazily on first use
  /// (thread-safe, like flat_preprocessed()); every other load path builds
  /// it eagerly.
  const FlatDatabase& raw_database() const;
  const Hierarchy& raw_hierarchy() const { return raw_hierarchy_; }

  /// The hierarchical preprocessing every query reuses.
  const PreprocessResult& preprocessed() const { return pre_; }

  /// The flat (hierarchy-stripped) preprocessing, built on first use and
  /// cached. Backs Algorithm::kMgFsm and MiningTask::WithFlatHierarchy.
  /// Thread-safe (std::call_once): concurrent MiningTasks — e.g. a serving
  /// layer running mixed flat/hierarchical queries against one shared
  /// Dataset — see exactly one build, and later calls are wait-free.
  const PreprocessResult& flat_preprocessed() const;

  /// Table-1 style statistics of the raw database.
  const DatasetStats& stats() const { return stats_; }
  size_t NumSequences() const { return pre_.database.size(); }
  size_t NumItems() const { return vocab_.NumItems(); }

  /// True iff this Dataset borrows a live snapshot mapping (a
  /// LoadMode::kMmap load of a v2 container on a little-endian host).
  bool mmap_backed() const { return map_.valid(); }

  /// Runs every integrity check a mapped load deferred: the corpus
  /// sections' FNV checksums, offset-table monotonicity, and item-rank
  /// ranges. O(corpus bytes); throws the same typed IoError an eager load
  /// would have. A no-op for copying loads (they verified everything up
  /// front).
  void VerifyCorpus() const;

  /// Name of a rank id of `preprocessed()` (or of `flat_preprocessed()`
  /// when `flat`). Throws ApiError on an out-of-range rank (in particular
  /// the kInvalidItem that RankOfName returns for unknown names).
  std::string NameOfRank(ItemId rank, bool flat = false) const;
  /// Rank of an item name, or kInvalidItem if the name is unknown.
  ItemId RankOfName(const std::string& name, bool flat = false) const;

  /// Translates patterns mined in the *flat* rank space into the
  /// hierarchical rank space of `preprocessed()`, so flat and hierarchical
  /// outputs can be compared (Table 3 / output statistics).
  PatternMap FlatToHierarchicalRanks(const PatternMap& flat_patterns) const;

  struct LoadTimes {
    double read_ms = 0;        ///< Parsing/adopting or snapshot decoding.
    double preprocess_ms = 0;  ///< f-list + rank recoding (0 for snapshots).
  };
  const LoadTimes& load_times() const { return load_times_; }

 private:
  struct SnapshotTag {};

  Dataset(FlatDatabase raw_db, Vocabulary vocab, Hierarchy raw_hierarchy,
          double read_ms);
  /// Snapshot-restore constructor: adopts precomputed preprocessing.
  Dataset(SnapshotTag, const std::string& path, LoadMode mode);

  /// Rebuilds the raw corpus from the ranked one (a per-item bijection).
  void BuildRawCorpus() const;

  uint64_t id_;
  /// Declared first so it is destroyed *last*: vocab_ and pre_ may borrow
  /// the mapped bytes and must die before the mapping is unmapped.
  MmapFile map_;
  Vocabulary vocab_;
  Hierarchy raw_hierarchy_;
  PreprocessResult pre_;
  DatasetStats stats_;
  LoadTimes load_times_;
  /// Corpus checksums a mapped load deferred (see VerifyCorpus).
  std::vector<SnapshotDeferredCheck> deferred_;

  /// Lazily reconstructed after a mapped snapshot load; eager otherwise
  /// (the constructor consumes raw_once_).
  mutable FlatDatabase raw_db_;
  mutable std::once_flag raw_once_;

  mutable std::once_flag flat_once_;
  mutable std::unique_ptr<PreprocessResult> flat_pre_;
};

/// A parameterized mining query over a Dataset: algorithm, G_{σ,γ,λ}
/// parameters, execution knobs, redundancy filter, and top-k, assembled with
/// chainable setters and validated up front (`Validate` collects *every*
/// problem into readable messages; `Run` throws one ApiError listing them).
///
/// A task borrows its Dataset (which must outlive it) and may be Run any
/// number of times; distinct tasks over one Dataset are independent.
class MiningTask {
 public:
  explicit MiningTask(const Dataset& dataset) : dataset_(&dataset) {}

  MiningTask& WithAlgorithm(Algorithm algorithm);
  /// Sets σ/γ/λ (Sec. 2) in one call...
  MiningTask& WithParams(const GsmParams& params);
  /// ...or individually.
  MiningTask& WithSigma(Frequency sigma);
  MiningTask& WithGamma(uint32_t gamma);
  MiningTask& WithLambda(uint32_t lambda);

  /// Local per-partition miner (Sequential/LASH only; Sec. 5). Setting it
  /// for an algorithm that cannot honor it (MG-FSM hard-codes BFS; GSP and
  /// the naive baselines have no local miner) is a validation error.
  MiningTask& WithMiner(MinerKind miner);
  /// Rewrite aggressiveness (LASH-only ablation knob; Sec. 4). Setting it
  /// for any other algorithm is a validation error.
  MiningTask& WithRewrite(RewriteLevel rewrite);
  /// Map-side combiner on/off (LASH only; Sec. 4.4). Setting it for any
  /// other algorithm is a validation error.
  MiningTask& WithCombiner(bool use_combiner);
  /// Worker threads (0 = hardware concurrency): drives kSequential directly
  /// and overrides JobConfig.num_threads for the distributed algorithms.
  /// GSP is inherently single-threaded and unaffected.
  MiningTask& WithThreads(size_t num_threads);
  /// MapReduce execution shape for the distributed algorithms.
  MiningTask& WithJobConfig(const JobConfig& config);
  /// Emit caps for the (semi-)naive baselines.
  MiningTask& WithLimits(const BaselineLimits& limits);
  /// Mine with the hierarchy stripped (flat rank space) — what a standard
  /// sequence miner would see. Implied by Algorithm::kMgFsm.
  MiningTask& WithFlatHierarchy(bool flat = true);
  /// Redundancy filter applied before emitting (Sec. 6.7).
  MiningTask& WithFilter(PatternFilter filter);
  /// Emit only the k most frequent patterns (0 = all), in descending
  /// frequency with lexicographic tie-break.
  MiningTask& WithTopK(size_t k);

  /// Every configuration problem, as human-readable messages; empty means
  /// the task is runnable.
  ///
  /// Policy: knobs that change *what is computed or measured* (miner,
  /// rewrite level, combiner) are rejected when the selected algorithm
  /// cannot honor them — silently ignoring them would misreport a
  /// benchmark. Knobs that only cap *execution resources* (threads,
  /// JobConfig, baseline limits) are honored where parallelism or a job
  /// exists and are deliberately legal no-ops elsewhere, so one task
  /// configuration can sweep across algorithms.
  std::vector<std::string> Validate() const;

  /// Mines and streams the surviving patterns into `sink` (then
  /// `sink.OnFinish()`). Throws ApiError listing all Validate() problems if
  /// the configuration is invalid.
  RunResult Run(PatternSink& sink) const;

  /// Convenience: Run into a CollectSink and return the materialized map
  /// (rank space); `result`, if non-null, receives the RunResult.
  PatternMap Mine(RunResult* result = nullptr) const;

  const Dataset& dataset() const { return *dataset_; }

 private:
  /// True iff the run mines the flat rank space (explicit or MG-FSM).
  bool UsesFlat() const;
  /// The distributed-job config with the WithThreads override applied.
  JobConfig EffectiveJobConfig() const;

  const Dataset* dataset_;
  Algorithm algorithm_ = Algorithm::kSequential;
  GsmParams params_;
  MinerKind miner_ = MinerKind::kPsmIndex;
  bool miner_set_ = false;
  RewriteLevel rewrite_ = RewriteLevel::kFull;
  bool rewrite_set_ = false;
  bool use_combiner_ = true;
  bool combiner_set_ = false;
  size_t num_threads_ = 0;
  JobConfig job_config_;
  BaselineLimits limits_;
  bool flat_ = false;
  PatternFilter filter_ = PatternFilter::kNone;
  size_t top_k_ = 0;
};

}  // namespace lash

#endif  // LASH_API_LASH_API_H_
