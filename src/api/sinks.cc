#include <algorithm>
#include <ostream>
#include <utility>

#include "api/lash_api.h"
#include "core/flist.h"

namespace lash {

Sequence PatternView::raw_ids() const {
  Sequence raw;
  raw.reserve(ranks_->size());
  for (ItemId rank : *ranks_) raw.push_back(pre_->raw_of_rank[rank]);
  return raw;
}

std::vector<std::string> PatternView::names() const {
  std::vector<std::string> names;
  names.reserve(ranks_->size());
  for (ItemId rank : *ranks_) {
    names.emplace_back(vocab_->Name(pre_->raw_of_rank[rank]));
  }
  return names;
}

std::string PatternView::ToString() const {
  std::string joined;
  for (size_t i = 0; i < ranks_->size(); ++i) {
    if (i > 0) joined += ' ';
    joined += vocab_->Name(pre_->raw_of_rank[(*ranks_)[i]]);
  }
  return joined;
}

void CollectSink::OnPattern(const PatternView& pattern) {
  patterns_.emplace(pattern.ranks(), pattern.frequency());
}

void CollectSink::Merge(PatternMap&& patterns) {
  if (patterns_.empty()) {
    patterns_ = std::move(patterns);
  } else {
    patterns_.merge(patterns);  // Splices nodes; existing keys win.
  }
}

bool TopKSink::Better(const std::pair<Sequence, Frequency>& a,
                      const std::pair<Sequence, Frequency>& b) const {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

void TopKSink::OnPattern(const PatternView& pattern) {
  if (k_ == 0) return;
  // push_heap/pop_heap with "better" as less-than keep the *worst* kept
  // pattern at heap_.front(), so replacing it preserves the k best.
  auto worse_first = [this](const auto& a, const auto& b) {
    return Better(a, b);
  };
  std::pair<Sequence, Frequency> entry(pattern.ranks(), pattern.frequency());
  if (heap_.size() < k_) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), worse_first);
    return;
  }
  if (!Better(entry, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), worse_first);
  heap_.back() = std::move(entry);
  std::push_heap(heap_.begin(), heap_.end(), worse_first);
}

std::vector<std::pair<Sequence, Frequency>> TopKSink::Sorted() const {
  std::vector<std::pair<Sequence, Frequency>> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(),
            [this](const auto& a, const auto& b) { return Better(a, b); });
  return sorted;
}

void TextWriterSink::Write(const Line& line) {
  *out_ << line.frequency << '\t' << line.names << '\n';
}

void TextWriterSink::OnPattern(const PatternView& pattern) {
  if (sorted_) {
    // The ranks copy exists only as the OnFinish sort key.
    lines_.push_back({pattern.ranks(), pattern.frequency(), pattern.ToString()});
  } else {
    Write({{}, pattern.frequency(), pattern.ToString()});
  }
}

void TextWriterSink::OnFinish() {
  if (sorted_) {
    // The WritePatterns order: lexicographic on (rank sequence, frequency).
    std::sort(lines_.begin(), lines_.end(), [](const Line& a, const Line& b) {
      if (a.ranks != b.ranks) return a.ranks < b.ranks;
      return a.frequency < b.frequency;
    });
    for (const Line& line : lines_) Write(line);
    lines_.clear();
  }
  out_->flush();
}

}  // namespace lash
