#include <algorithm>
#include <cctype>
#include <string>
#include <typeinfo>
#include <utility>

#include "algo/mgfsm.h"
#include "algo/naive_gsm.h"
#include "algo/seminaive_gsm.h"
#include "algo/sequential.h"
#include "api/lash_api.h"
#include "core/flist.h"
#include "obs/trace.h"
#include "stats/filters.h"
#include "util/timer.h"

namespace lash {

namespace {

std::string Lower(const std::string& s) {
  std::string lower = s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower;
}

}  // namespace

Algorithm ParseAlgorithm(const std::string& name) {
  std::string n = Lower(name);
  if (n == "sequential") return Algorithm::kSequential;
  if (n == "lash") return Algorithm::kLash;
  if (n == "mgfsm" || n == "mg-fsm") return Algorithm::kMgFsm;
  if (n == "gsp") return Algorithm::kGsp;
  if (n == "naive") return Algorithm::kNaive;
  if (n == "seminaive" || n == "semi-naive") return Algorithm::kSemiNaive;
  throw ApiError("unknown algorithm '" + name +
                 "' (use sequential|lash|mgfsm|gsp|naive|seminaive)");
}

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSequential: return "sequential";
    case Algorithm::kLash: return "lash";
    case Algorithm::kMgFsm: return "mgfsm";
    case Algorithm::kGsp: return "gsp";
    case Algorithm::kNaive: return "naive";
    case Algorithm::kSemiNaive: return "seminaive";
  }
  return "unknown";
}

PatternFilter ParsePatternFilter(const std::string& name) {
  std::string n = Lower(name);
  if (n == "none") return PatternFilter::kNone;
  if (n == "closed") return PatternFilter::kClosed;
  if (n == "maximal") return PatternFilter::kMaximal;
  throw ApiError("unknown filter '" + name + "' (use none|closed|maximal)");
}

MiningTask& MiningTask::WithAlgorithm(Algorithm algorithm) {
  algorithm_ = algorithm;
  return *this;
}

MiningTask& MiningTask::WithParams(const GsmParams& params) {
  params_ = params;
  return *this;
}

MiningTask& MiningTask::WithSigma(Frequency sigma) {
  params_.sigma = sigma;
  return *this;
}

MiningTask& MiningTask::WithGamma(uint32_t gamma) {
  params_.gamma = gamma;
  return *this;
}

MiningTask& MiningTask::WithLambda(uint32_t lambda) {
  params_.lambda = lambda;
  return *this;
}

MiningTask& MiningTask::WithMiner(MinerKind miner) {
  miner_ = miner;
  miner_set_ = true;
  return *this;
}

MiningTask& MiningTask::WithRewrite(RewriteLevel rewrite) {
  rewrite_ = rewrite;
  rewrite_set_ = true;
  return *this;
}

MiningTask& MiningTask::WithCombiner(bool use_combiner) {
  use_combiner_ = use_combiner;
  combiner_set_ = true;
  return *this;
}

MiningTask& MiningTask::WithThreads(size_t num_threads) {
  num_threads_ = num_threads;
  return *this;
}

MiningTask& MiningTask::WithJobConfig(const JobConfig& config) {
  job_config_ = config;
  return *this;
}

MiningTask& MiningTask::WithLimits(const BaselineLimits& limits) {
  limits_ = limits;
  return *this;
}

MiningTask& MiningTask::WithFlatHierarchy(bool flat) {
  flat_ = flat;
  return *this;
}

MiningTask& MiningTask::WithFilter(PatternFilter filter) {
  filter_ = filter;
  return *this;
}

MiningTask& MiningTask::WithTopK(size_t k) {
  top_k_ = k;
  return *this;
}

bool MiningTask::UsesFlat() const {
  return flat_ || algorithm_ == Algorithm::kMgFsm;
}

JobConfig MiningTask::EffectiveJobConfig() const {
  JobConfig config = job_config_;
  if (num_threads_ > 0) config.num_threads = num_threads_;
  return config;
}

std::vector<std::string> MiningTask::Validate() const {
  std::vector<std::string> problems;
  if (params_.sigma == 0) {
    problems.push_back("sigma must be > 0 (the minimum support threshold)");
  }
  if (params_.lambda < 2) {
    problems.push_back("lambda must be >= 2 (got " +
                       std::to_string(params_.lambda) +
                       "); length-1 patterns are the f-list itself");
  }
  bool distributed = algorithm_ == Algorithm::kLash ||
                     algorithm_ == Algorithm::kMgFsm ||
                     algorithm_ == Algorithm::kNaive ||
                     algorithm_ == Algorithm::kSemiNaive;
  if (distributed) {
    JobConfig config = EffectiveJobConfig();
    if (config.num_map_tasks == 0) {
      problems.push_back("JobConfig.num_map_tasks must be > 0");
    }
    if (config.num_reduce_tasks == 0) {
      problems.push_back("JobConfig.num_reduce_tasks must be > 0");
    }
    if (config.num_threads == 0) {
      problems.push_back(
          "JobConfig.num_threads must be > 0 (hardware_concurrency "
          "returned 0? set it explicitly)");
    }
  }
  // An explicitly chosen knob that the algorithm cannot honor is a
  // contradiction, not a knob to silently ignore.
  if (miner_set_) {
    if (algorithm_ == Algorithm::kMgFsm) {
      problems.push_back(
          "MG-FSM always mines with the BFS local miner; drop the miner "
          "setting or use the lash algorithm");
    } else if (algorithm_ == Algorithm::kGsp ||
               algorithm_ == Algorithm::kNaive ||
               algorithm_ == Algorithm::kSemiNaive) {
      problems.push_back("the " + AlgorithmName(algorithm_) +
                         " algorithm does not use a local miner; drop the "
                         "miner setting");
    }
  }
  if (rewrite_set_ && algorithm_ != Algorithm::kLash) {
    problems.push_back("the rewrite level is a LASH-only knob; the " +
                       AlgorithmName(algorithm_) + " algorithm ignores it");
  }
  if (combiner_set_ && algorithm_ != Algorithm::kLash) {
    problems.push_back("the combiner toggle is a LASH-only knob; the " +
                       AlgorithmName(algorithm_) + " algorithm ignores it");
  }
  if ((algorithm_ == Algorithm::kNaive ||
       algorithm_ == Algorithm::kSemiNaive) &&
      limits_.max_emitted_records == 0) {
    problems.push_back(
        "BaselineLimits.max_emitted_records must be > 0 (the run would "
        "abort before emitting anything)");
  }
  return problems;
}

RunResult MiningTask::Run(PatternSink& sink) const {
  std::vector<std::string> problems = Validate();
  if (!problems.empty()) {
    std::string message = "invalid MiningTask:";
    for (const std::string& p : problems) message += "\n  - " + p;
    throw ApiError(message);
  }

  Stopwatch total;
  // The facade's slice of a request trace. MiningTask has no trace
  // parameter by design (the facade predates tracing and stays stable);
  // the serving layer installs the ambient context around task.Mine, and
  // an untraced caller gets an inactive span.
  obs::Span api_span(&obs::Tracer::Global(), obs::AmbientContext(),
                     "api.mine");
  RunResult result;
  result.algorithm = algorithm_;
  result.used_flat_hierarchy = UsesFlat();
  const PreprocessResult& pre = result.used_flat_hierarchy
                                    ? dataset_->flat_preprocessed()
                                    : dataset_->preprocessed();

  // Wall-clock anchor for the MapReduce timeline export below: JobResult
  // stores offsets from the job's start, which is (to within setup) now.
  const double mine_anchor_unix_ms = obs::Tracer::NowUnixMs();
  Stopwatch mine;
  PatternMap patterns;
  switch (algorithm_) {
    case Algorithm::kSequential:
      patterns = MineSequential(pre, params_, miner_, &result.miner_stats,
                                num_threads_);
      break;
    case Algorithm::kLash: {
      LashOptions options;
      options.miner = miner_;
      options.rewrite = rewrite_;
      options.use_combiner = use_combiner_;
      AlgoResult algo = RunLash(pre, params_, EffectiveJobConfig(), options);
      patterns = std::move(algo.patterns);
      result.job = std::move(algo.job);
      result.miner_stats = algo.miner_stats;
      result.partition_shape = algo.partition_shape;
      result.aborted = algo.aborted;
      break;
    }
    case Algorithm::kMgFsm: {
      AlgoResult algo = RunMgFsm(pre, params_, EffectiveJobConfig());
      patterns = std::move(algo.patterns);
      result.job = std::move(algo.job);
      result.miner_stats = algo.miner_stats;
      result.partition_shape = algo.partition_shape;
      result.aborted = algo.aborted;
      break;
    }
    case Algorithm::kGsp:
      patterns = RunGspExtended(pre, params_, &result.gsp_stats);
      break;
    case Algorithm::kNaive:
    case Algorithm::kSemiNaive: {
      JobConfig config = EffectiveJobConfig();
      AlgoResult algo = algorithm_ == Algorithm::kNaive
                            ? RunNaiveGsm(pre, params_, config, limits_)
                            : RunSemiNaiveGsm(pre, params_, config, limits_);
      patterns = std::move(algo.patterns);
      result.job = std::move(algo.job);
      result.aborted = algo.aborted;
      break;
    }
  }
  result.mine_ms = mine.ElapsedMs();
  result.patterns_mined = patterns.size();
  // The per-partition MapReduce timeline as spans under api.mine — this is
  // where phase_overlap_ms becomes inspectable per-request, whether the
  // caller is a CLI tool or the serving layer.
  obs::ExportJobSpans(&obs::Tracer::Global(), api_span.context(), result.job,
                      mine_anchor_unix_ms);

  Stopwatch filter;
  if (filter_ == PatternFilter::kClosed) {
    patterns = FilterClosed(patterns, pre.hierarchy);
  } else if (filter_ == PatternFilter::kMaximal) {
    patterns = FilterMaximal(patterns, pre.hierarchy);
  }
  result.filter_ms = filter.ElapsedMs();

  const Vocabulary* vocab = &dataset_->vocabulary();
  if (top_k_ > 0) {
    for (const auto& [seq, freq] : TopK(patterns, top_k_)) {
      sink.OnPattern(PatternView(seq, freq, vocab, &pre));
      ++result.patterns_emitted;
    }
  } else if (typeid(sink) == typeid(CollectSink)) {
    // Fast path for the exact materializing sink: hand over the map the run
    // already built instead of re-copying every sequence through OnPattern.
    // Exact-type check so a subclass's OnPattern override is never bypassed.
    result.patterns_emitted = patterns.size();
    static_cast<CollectSink&>(sink).Merge(std::move(patterns));
  } else {
    for (const auto& [seq, freq] : patterns) {
      sink.OnPattern(PatternView(seq, freq, vocab, &pre));
      ++result.patterns_emitted;
    }
  }
  sink.OnFinish();
  result.total_ms = total.ElapsedMs();
  api_span.Tag("patterns_emitted",
               static_cast<double>(result.patterns_emitted));
  api_span.Tag("mine_ms", result.mine_ms);
  api_span.End();
  return result;
}

PatternMap MiningTask::Mine(RunResult* result) const {
  CollectSink sink;
  RunResult run = Run(sink);
  if (result != nullptr) *result = std::move(run);
  return sink.Take();
}

}  // namespace lash
