#include <atomic>
#include <fstream>
#include <istream>
#include <mutex>
#include <utility>

#include "api/lash_api.h"
#include "core/flist.h"
#include "io/text_io.h"
#include "stats/output_stats.h"
#include "util/timer.h"

namespace lash {

namespace {

uint64_t NextDatasetId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Dataset::Dataset(Database raw_db, Vocabulary vocab, Hierarchy raw_hierarchy,
                 double read_ms)
    : id_(NextDatasetId()),
      raw_db_(std::move(raw_db)),
      vocab_(std::move(vocab)),
      raw_hierarchy_(std::move(raw_hierarchy)) {
  load_times_.read_ms = read_ms;
  Stopwatch timer;
  pre_ = Preprocess(raw_db_, raw_hierarchy_);
  load_times_.preprocess_ms = timer.ElapsedMs();
  stats_ = ComputeStats(raw_db_);
}

Dataset Dataset::FromFiles(const std::string& sequences_path,
                           const std::string& hierarchy_path) {
  Stopwatch timer;
  Vocabulary vocab;
  std::ifstream hf(hierarchy_path);
  if (!hf) {
    throw ApiError("cannot open hierarchy file: " + hierarchy_path);
  }
  ReadHierarchy(hf, &vocab);
  std::ifstream dbf(sequences_path);
  if (!dbf) {
    throw ApiError("cannot open sequences file: " + sequences_path);
  }
  Database db = ReadDatabase(dbf, &vocab);
  Hierarchy hierarchy = vocab.BuildHierarchy();
  return Dataset(std::move(db), std::move(vocab), std::move(hierarchy),
                 timer.ElapsedMs());
}

Dataset Dataset::FromStreams(std::istream& sequences, std::istream& hierarchy) {
  Stopwatch timer;
  Vocabulary vocab;
  ReadHierarchy(hierarchy, &vocab);
  Database db = ReadDatabase(sequences, &vocab);
  Hierarchy h = vocab.BuildHierarchy();
  return Dataset(std::move(db), std::move(vocab), std::move(h),
                 timer.ElapsedMs());
}

Dataset Dataset::FromMemory(Database raw_db, Vocabulary vocab) {
  Hierarchy hierarchy = vocab.BuildHierarchy();
  return Dataset(std::move(raw_db), std::move(vocab), std::move(hierarchy), 0);
}

Dataset Dataset::FromMemory(Database raw_db, Vocabulary vocab,
                            Hierarchy raw_hierarchy) {
  return Dataset(std::move(raw_db), std::move(vocab), std::move(raw_hierarchy),
                 0);
}

const PreprocessResult& Dataset::flat_preprocessed() const {
  // call_once (not a plain mutex) so concurrent MiningTasks are safe and
  // every call after the first is synchronization-light: the preprocessing
  // is immutable once built, so the once_flag's release/acquire pairing is
  // all the ordering readers need.
  std::call_once(flat_once_, [this] {
    flat_pre_ = std::make_unique<PreprocessResult>(
        Preprocess(raw_db_, Hierarchy::Flat(vocab_.NumItems())));
  });
  return *flat_pre_;
}

std::string Dataset::NameOfRank(ItemId rank, bool flat) const {
  const PreprocessResult& pre = flat ? flat_preprocessed() : pre_;
  if (rank == kInvalidItem || rank >= pre.raw_of_rank.size()) {
    throw ApiError("NameOfRank: " + std::to_string(rank) +
                   " is not a valid rank id (did RankOfName return "
                   "kInvalidItem for an unknown name?)");
  }
  return vocab_.Name(pre.raw_of_rank[rank]);
}

ItemId Dataset::RankOfName(const std::string& name, bool flat) const {
  ItemId raw = vocab_.Lookup(name);
  if (raw == kInvalidItem) return kInvalidItem;
  const PreprocessResult& pre = flat ? flat_preprocessed() : pre_;
  return pre.rank_of_raw[raw];
}

PatternMap Dataset::FlatToHierarchicalRanks(
    const PatternMap& flat_patterns) const {
  const PreprocessResult& flat_pre = flat_preprocessed();
  std::vector<ItemId> flat_to_gsm(flat_pre.raw_of_rank.size(), kInvalidItem);
  for (size_t r = 1; r < flat_pre.raw_of_rank.size(); ++r) {
    flat_to_gsm[r] = pre_.rank_of_raw[flat_pre.raw_of_rank[r]];
  }
  return RemapPatterns(flat_patterns, flat_to_gsm);
}

}  // namespace lash
