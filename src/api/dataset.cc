#include <atomic>
#include <cstdio>
#include <fstream>
#include <istream>
#include <mutex>
#include <utility>

#include "api/lash_api.h"
#include "core/flist.h"
#include "io/snapshot.h"
#include "io/text_io.h"
#include "stats/output_stats.h"
#include "util/timer.h"

namespace lash {

namespace {

uint64_t NextDatasetId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Dataset::Dataset(FlatDatabase raw_db, Vocabulary vocab, Hierarchy raw_hierarchy,
                 double read_ms)
    : id_(NextDatasetId()),
      raw_db_(std::move(raw_db)),
      vocab_(std::move(vocab)),
      raw_hierarchy_(std::move(raw_hierarchy)) {
  load_times_.read_ms = read_ms;
  Stopwatch timer;
  pre_ = Preprocess(raw_db_, raw_hierarchy_);
  load_times_.preprocess_ms = timer.ElapsedMs();
  stats_ = ComputeStats(raw_db_);
}

Dataset::Dataset(SnapshotTag, const std::string& path)
    : id_(NextDatasetId()), raw_hierarchy_(Hierarchy::Flat(0)) {
  Stopwatch timer;
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw ApiError("cannot open snapshot file: " + path);
  }
  DatasetSnapshot snap = ReadDatasetSnapshot(file);

  // Vocabulary: names intern in stored order, so ids 1..n are reproduced
  // exactly; parent edges are replayed by id (no per-edge name hashing).
  const size_t n = snap.names.size() - 1;
  vocab_.Reserve(n);
  for (size_t id = 1; id <= n; ++id) {
    if (vocab_.AddItem(snap.names[id]) != static_cast<ItemId>(id)) {
      throw ApiError("snapshot vocabulary contains duplicate names: " +
                     snap.names[id]);
    }
  }
  for (size_t id = 1; id <= n; ++id) {
    if (snap.raw_parent[id] != kInvalidItem) {
      vocab_.SetParent(static_cast<ItemId>(id), snap.raw_parent[id]);
    }
  }
  try {
    raw_hierarchy_ = Hierarchy(std::move(snap.raw_parent));
  } catch (const std::invalid_argument& e) {
    // E.g. a parent cycle: checksums pass but the structure is invalid.
    throw ApiError("snapshot hierarchy is invalid: " + std::string(e.what()));
  }

  // The preprocessing phase is *restored*, not re-run: the ranked corpus,
  // f-list and rank order come straight from the file; the inverse order
  // and the rank-space hierarchy are cheap O(n) derivations.
  pre_.freq = std::move(snap.freq);
  pre_.rank_of_raw = std::move(snap.rank_of_raw);
  pre_.raw_of_rank.assign(n + 1, kInvalidItem);
  for (size_t raw = 1; raw <= n; ++raw) {
    pre_.raw_of_rank[pre_.rank_of_raw[raw]] = static_cast<ItemId>(raw);
  }
  std::vector<ItemId> rank_parent(n + 1, kInvalidItem);
  for (size_t r = 1; r <= n; ++r) {
    ItemId raw_parent = raw_hierarchy_.Parent(pre_.raw_of_rank[r]);
    if (raw_parent != kInvalidItem) {
      rank_parent[r] = pre_.rank_of_raw[raw_parent];
    }
  }
  try {
    pre_.hierarchy = Hierarchy(std::move(rank_parent));
  } catch (const std::invalid_argument& e) {
    throw ApiError("snapshot rank hierarchy is invalid: " +
                   std::string(e.what()));
  }
  if (!pre_.hierarchy.IsRankMonotone()) {
    throw ApiError("snapshot rank order is not hierarchy-monotone: " + path);
  }
  pre_.database = std::move(snap.ranked_corpus);

  // Recoding is a bijection per item, so the raw corpus is one arena pass
  // over the ranked one — no parsing, no f-list job.
  raw_db_.Reserve(pre_.database.size(), pre_.database.TotalItems());
  for (SequenceView t : pre_.database) {
    ItemId* raw = raw_db_.AppendSlot(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      raw[i] = pre_.raw_of_rank[t[i]];
    }
  }
  stats_ = snap.stats;
  load_times_.read_ms = timer.ElapsedMs();
  load_times_.preprocess_ms = 0;
}

Dataset Dataset::FromFiles(const std::string& sequences_path,
                           const std::string& hierarchy_path) {
  Stopwatch timer;
  Vocabulary vocab;
  std::ifstream hf(hierarchy_path);
  if (!hf) {
    throw ApiError("cannot open hierarchy file: " + hierarchy_path);
  }
  ReadHierarchy(hf, &vocab);
  std::ifstream dbf(sequences_path);
  if (!dbf) {
    throw ApiError("cannot open sequences file: " + sequences_path);
  }
  Database db = ReadDatabase(dbf, &vocab);
  Hierarchy hierarchy = vocab.BuildHierarchy();
  return Dataset(FlatDatabase::FromDatabase(db), std::move(vocab),
                 std::move(hierarchy), timer.ElapsedMs());
}

Dataset Dataset::FromStreams(std::istream& sequences, std::istream& hierarchy) {
  Stopwatch timer;
  Vocabulary vocab;
  ReadHierarchy(hierarchy, &vocab);
  Database db = ReadDatabase(sequences, &vocab);
  Hierarchy h = vocab.BuildHierarchy();
  return Dataset(FlatDatabase::FromDatabase(db), std::move(vocab), std::move(h),
                 timer.ElapsedMs());
}

Dataset Dataset::FromMemory(Database raw_db, Vocabulary vocab) {
  Hierarchy hierarchy = vocab.BuildHierarchy();
  return Dataset(FlatDatabase::FromDatabase(raw_db), std::move(vocab),
                 std::move(hierarchy), 0);
}

Dataset Dataset::FromMemory(Database raw_db, Vocabulary vocab,
                            Hierarchy raw_hierarchy) {
  return Dataset(FlatDatabase::FromDatabase(raw_db), std::move(vocab),
                 std::move(raw_hierarchy), 0);
}

Dataset Dataset::FromSnapshot(const std::string& path) {
  return Dataset(SnapshotTag{}, path);
}

void Dataset::Save(const std::string& path) const {
  // Only the (small) name/parent tables are assembled; the corpus, f-list
  // and rank order are encoded in place via WriteDatasetSnapshotParts, so
  // a save never duplicates the multi-MB buffers.
  const size_t n = vocab_.NumItems();
  std::vector<std::string> names(1);
  names.reserve(n + 1);
  std::vector<ItemId> raw_parent(n + 1, kInvalidItem);
  for (size_t id = 1; id <= n; ++id) {
    names.push_back(vocab_.Name(static_cast<ItemId>(id)));
    raw_parent[id] = vocab_.Parent(static_cast<ItemId>(id));
  }

  // Write to a temp file renamed into place, so a failed save never
  // truncates an existing snapshot.
  const std::string tmp_path = path + ".tmp";
  std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw ApiError("cannot open snapshot file for writing: " + tmp_path);
  }
  try {
    WriteDatasetSnapshotParts(file, names, raw_parent, pre_.database,
                              pre_.freq, pre_.rank_of_raw, stats_);
  } catch (...) {
    file.close();
    std::remove(tmp_path.c_str());  // Never leave a stale half-written .tmp.
    throw;
  }
  file.close();
  if (!file || std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw ApiError("cannot write snapshot file: " + path);
  }
}

const PreprocessResult& Dataset::flat_preprocessed() const {
  // call_once (not a plain mutex) so concurrent MiningTasks are safe and
  // every call after the first is synchronization-light: the preprocessing
  // is immutable once built, so the once_flag's release/acquire pairing is
  // all the ordering readers need.
  std::call_once(flat_once_, [this] {
    flat_pre_ = std::make_unique<PreprocessResult>(
        Preprocess(raw_db_, Hierarchy::Flat(vocab_.NumItems())));
  });
  return *flat_pre_;
}

std::string Dataset::NameOfRank(ItemId rank, bool flat) const {
  const PreprocessResult& pre = flat ? flat_preprocessed() : pre_;
  if (rank == kInvalidItem || rank >= pre.raw_of_rank.size()) {
    throw ApiError("NameOfRank: " + std::to_string(rank) +
                   " is not a valid rank id (did RankOfName return "
                   "kInvalidItem for an unknown name?)");
  }
  return vocab_.Name(pre.raw_of_rank[rank]);
}

ItemId Dataset::RankOfName(const std::string& name, bool flat) const {
  ItemId raw = vocab_.Lookup(name);
  if (raw == kInvalidItem) return kInvalidItem;
  const PreprocessResult& pre = flat ? flat_preprocessed() : pre_;
  return pre.rank_of_raw[raw];
}

PatternMap Dataset::FlatToHierarchicalRanks(
    const PatternMap& flat_patterns) const {
  const PreprocessResult& flat_pre = flat_preprocessed();
  std::vector<ItemId> flat_to_gsm(flat_pre.raw_of_rank.size(), kInvalidItem);
  for (size_t r = 1; r < flat_pre.raw_of_rank.size(); ++r) {
    flat_to_gsm[r] = pre_.rank_of_raw[flat_pre.raw_of_rank[r]];
  }
  return RemapPatterns(flat_patterns, flat_to_gsm);
}

}  // namespace lash
