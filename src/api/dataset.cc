#include <atomic>
#include <cstdio>
#include <fstream>
#include <istream>
#include <mutex>
#include <utility>

#include "api/lash_api.h"
#include "core/flist.h"
#include "io/io_error.h"
#include "io/snapshot.h"
#include "io/text_io.h"
#include "stats/output_stats.h"
#include "util/timer.h"

namespace lash {

namespace {

uint64_t NextDatasetId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Dataset::Dataset(FlatDatabase raw_db, Vocabulary vocab, Hierarchy raw_hierarchy,
                 double read_ms)
    : id_(NextDatasetId()),
      vocab_(std::move(vocab)),
      raw_hierarchy_(std::move(raw_hierarchy)),
      raw_db_(std::move(raw_db)) {
  load_times_.read_ms = read_ms;
  Stopwatch timer;
  pre_ = Preprocess(raw_db_, raw_hierarchy_);
  load_times_.preprocess_ms = timer.ElapsedMs();
  stats_ = ComputeStats(raw_db_);
  std::call_once(raw_once_, [] {});  // The raw corpus is already built.
}

Dataset::Dataset(SnapshotTag, const std::string& path, LoadMode mode)
    : id_(NextDatasetId()), raw_hierarchy_(Hierarchy::Flat(0)) {
  Stopwatch timer;
  DatasetSnapshot snap;
  if (mode == LoadMode::kMmap) {
    try {
      map_ = MmapFile::Open(path);
    } catch (const IoError& e) {
      // Match the copy path's contract: a missing/unreadable file is an
      // ApiError; everything past open stays a typed IoError.
      throw ApiError("cannot open snapshot file: " + path + " (" + e.what() +
                     ")");
    }
    snap = ReadDatasetSnapshotMapped(map_.data(), map_.size());
    if (!snap.ranked_corpus.borrowed()) {
      // Nothing borrows the mapping (v1 container, or a big-endian host
      // where the mapped reader copies): drop it rather than keep the
      // whole file resident for no benefit.
      map_ = MmapFile();
    }
  } else {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      throw ApiError("cannot open snapshot file: " + path);
    }
    snap = ReadDatasetSnapshot(file);
  }

  // Vocabulary and raw hierarchy come back whole (after a mapped load the
  // name bytes are views into map_, which this Dataset owns and outlives).
  vocab_ = std::move(snap.vocabulary);
  try {
    raw_hierarchy_ = vocab_.BuildHierarchy();
  } catch (const std::invalid_argument& e) {
    // E.g. a parent cycle: checksums pass but the structure is invalid.
    throw ApiError("snapshot hierarchy is invalid: " + std::string(e.what()));
  }

  // The preprocessing phase is *restored*, not re-run: the ranked corpus,
  // f-list and rank order come straight from the file; the inverse order
  // and the rank-space hierarchy are cheap O(n) derivations.
  const size_t n = vocab_.NumItems();
  pre_.freq = std::move(snap.freq);
  pre_.rank_of_raw = std::move(snap.rank_of_raw);
  // Const ref: rank_of_raw may borrow the mapping, and only ArrayRef's
  // const operator[] is valid on a borrowed array.
  const ArrayRef<ItemId>& rank_of_raw = pre_.rank_of_raw;
  pre_.raw_of_rank.assign(n + 1, kInvalidItem);
  for (size_t raw = 1; raw <= n; ++raw) {
    pre_.raw_of_rank[rank_of_raw[raw]] = static_cast<ItemId>(raw);
  }
  std::vector<ItemId> rank_parent(n + 1, kInvalidItem);
  for (size_t r = 1; r <= n; ++r) {
    ItemId raw_parent = raw_hierarchy_.Parent(pre_.raw_of_rank[r]);
    if (raw_parent != kInvalidItem) {
      rank_parent[r] = rank_of_raw[raw_parent];
    }
  }
  try {
    pre_.hierarchy = Hierarchy(std::move(rank_parent));
  } catch (const std::invalid_argument& e) {
    throw ApiError("snapshot rank hierarchy is invalid: " +
                   std::string(e.what()));
  }
  if (!pre_.hierarchy.IsRankMonotone()) {
    throw ApiError("snapshot rank order is not hierarchy-monotone: " + path);
  }
  pre_.database = std::move(snap.ranked_corpus);
  deferred_ = std::move(snap.deferred);
  stats_ = snap.stats;

  if (mode == LoadMode::kCopy) {
    // Copy mode keeps the v1 contract: everything fully materialized at
    // load. Mmap mode defers this O(corpus) pass until something actually
    // asks for the raw corpus (most mining paths never do).
    BuildRawCorpus();
    std::call_once(raw_once_, [] {});
  }
  load_times_.read_ms = timer.ElapsedMs();
  load_times_.preprocess_ms = 0;
}

void Dataset::BuildRawCorpus() const {
  // Recoding is a bijection per item, so the raw corpus is one arena pass
  // over the ranked one — no parsing, no f-list job.
  raw_db_.Reserve(pre_.database.size(), pre_.database.TotalItems());
  for (SequenceView t : pre_.database) {
    ItemId* raw = raw_db_.AppendSlot(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      raw[i] = pre_.raw_of_rank[t[i]];
    }
  }
}

const FlatDatabase& Dataset::raw_database() const {
  std::call_once(raw_once_, [this] { BuildRawCorpus(); });
  return raw_db_;
}

void Dataset::VerifyCorpus() const {
  for (const SnapshotDeferredCheck& check : deferred_) {
    if (FnvHashBytes(check.data, check.length) != check.checksum) {
      throw IoError(IoErrorKind::kChecksumMismatch, check.file_offset,
                    std::string("snapshot: section ") + check.what +
                        " failed checksum verification");
    }
  }
  if (!map_.valid()) return;
  // The structural corpus checks a mapped load skipped (a copying load ran
  // them in ReadDatasetSnapshot).
  const FlatDatabase& db = pre_.database;
  const uint64_t* offsets = db.offset_table();
  for (size_t i = 1; i <= db.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw IoError(IoErrorKind::kMalformed, 0,
                    "snapshot: corpus offset table is not monotone");
    }
  }
  const ItemId* arena = db.arena();
  const size_t n = vocab_.NumItems();
  for (size_t i = 0; i < db.TotalItems(); ++i) {
    if (arena[i] == kInvalidItem || arena[i] > n) {
      throw IoError(IoErrorKind::kMalformed, 0,
                    "snapshot: corpus item rank out of range");
    }
  }
}

Dataset Dataset::FromFiles(const std::string& sequences_path,
                           const std::string& hierarchy_path) {
  Stopwatch timer;
  Vocabulary vocab;
  std::ifstream hf(hierarchy_path);
  if (!hf) {
    throw ApiError("cannot open hierarchy file: " + hierarchy_path);
  }
  ReadHierarchy(hf, &vocab);
  std::ifstream dbf(sequences_path);
  if (!dbf) {
    throw ApiError("cannot open sequences file: " + sequences_path);
  }
  Database db = ReadDatabase(dbf, &vocab);
  Hierarchy hierarchy = vocab.BuildHierarchy();
  return Dataset(FlatDatabase::FromDatabase(db), std::move(vocab),
                 std::move(hierarchy), timer.ElapsedMs());
}

Dataset Dataset::FromStreams(std::istream& sequences, std::istream& hierarchy) {
  Stopwatch timer;
  Vocabulary vocab;
  ReadHierarchy(hierarchy, &vocab);
  Database db = ReadDatabase(sequences, &vocab);
  Hierarchy h = vocab.BuildHierarchy();
  return Dataset(FlatDatabase::FromDatabase(db), std::move(vocab), std::move(h),
                 timer.ElapsedMs());
}

Dataset Dataset::FromMemory(Database raw_db, Vocabulary vocab) {
  Hierarchy hierarchy = vocab.BuildHierarchy();
  return Dataset(FlatDatabase::FromDatabase(raw_db), std::move(vocab),
                 std::move(hierarchy), 0);
}

Dataset Dataset::FromMemory(Database raw_db, Vocabulary vocab,
                            Hierarchy raw_hierarchy) {
  return Dataset(FlatDatabase::FromDatabase(raw_db), std::move(vocab),
                 std::move(raw_hierarchy), 0);
}

Dataset Dataset::FromSnapshot(const std::string& path, LoadMode mode) {
  return Dataset(SnapshotTag{}, path, mode);
}

void Dataset::Save(const std::string& path) const {
  // Write to a temp file renamed into place, so a failed save never
  // truncates an existing snapshot.
  const std::string tmp_path = path + ".tmp";
  std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw ApiError("cannot open snapshot file for writing: " + tmp_path);
  }
  try {
    // The writer encodes the corpus, f-list and rank order in place from
    // these borrowed components — a save never duplicates the multi-MB
    // buffers.
    WriteDatasetSnapshotParts(file, vocab_, pre_.database, pre_.freq,
                              pre_.rank_of_raw, stats_);
  } catch (...) {
    file.close();
    std::remove(tmp_path.c_str());  // Never leave a stale half-written .tmp.
    throw;
  }
  file.close();
  if (!file || std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw ApiError("cannot write snapshot file: " + path);
  }
}

const PreprocessResult& Dataset::flat_preprocessed() const {
  // call_once (not a plain mutex) so concurrent MiningTasks are safe and
  // every call after the first is synchronization-light: the preprocessing
  // is immutable once built, so the once_flag's release/acquire pairing is
  // all the ordering readers need.
  std::call_once(flat_once_, [this] {
    flat_pre_ = std::make_unique<PreprocessResult>(
        Preprocess(raw_database(), Hierarchy::Flat(vocab_.NumItems())));
  });
  return *flat_pre_;
}

std::string Dataset::NameOfRank(ItemId rank, bool flat) const {
  const PreprocessResult& pre = flat ? flat_preprocessed() : pre_;
  if (rank == kInvalidItem || rank >= pre.raw_of_rank.size()) {
    throw ApiError("NameOfRank: " + std::to_string(rank) +
                   " is not a valid rank id (did RankOfName return "
                   "kInvalidItem for an unknown name?)");
  }
  return std::string(vocab_.Name(pre.raw_of_rank[rank]));
}

ItemId Dataset::RankOfName(const std::string& name, bool flat) const {
  ItemId raw = vocab_.Lookup(name);
  if (raw == kInvalidItem) return kInvalidItem;
  const PreprocessResult& pre = flat ? flat_preprocessed() : pre_;
  return pre.rank_of_raw[raw];
}

PatternMap Dataset::FlatToHierarchicalRanks(
    const PatternMap& flat_patterns) const {
  const PreprocessResult& flat_pre = flat_preprocessed();
  std::vector<ItemId> flat_to_gsm(flat_pre.raw_of_rank.size(), kInvalidItem);
  for (size_t r = 1; r < flat_pre.raw_of_rank.size(); ++r) {
    flat_to_gsm[r] = pre_.rank_of_raw[flat_pre.raw_of_rank[r]];
  }
  return RemapPatterns(flat_patterns, flat_to_gsm);
}

}  // namespace lash
