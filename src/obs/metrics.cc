#include "obs/metrics.h"

#include <stdexcept>

#include "util/json.h"

namespace lash::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Slot& MetricsRegistry::GetSlot(std::string_view name,
                                                Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    it = slots_.emplace(std::string(name), Slot{kind, nullptr, nullptr,
                                                nullptr}).first;
    switch (kind) {
      case Kind::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        it->second.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric \"" + std::string(name) +
                           "\" already registered as a different kind");
  }
  return it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetSlot(name, Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetSlot(name, Kind::kGauge).gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetSlot(name, Kind::kHistogram).histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  std::lock_guard<std::mutex> lock(mu_);
  samples.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::kCounter:
        samples.push_back(
            {name, static_cast<double>(slot.counter->Value())});
        break;
      case Kind::kGauge:
        samples.push_back({name, static_cast<double>(slot.gauge->Value())});
        break;
      case Kind::kHistogram: {
        const LatencyHistogram::Snapshot snap =
            slot.histogram->TakeSnapshot();
        samples.push_back({name + ".count",
                           static_cast<double>(snap.total)});
        samples.push_back({name + ".p50_ms", snap.PercentileMs(0.50)});
        samples.push_back({name + ".p95_ms", snap.PercentileMs(0.95)});
        samples.push_back({name + ".mean_ms", snap.MeanMs()});
        break;
      }
    }
  }
  return samples;
}

std::string MetricsRegistry::ToText() const {
  std::string out;
  for (const MetricSample& sample : Snapshot()) {
    out += sample.name;
    out.push_back(' ');
    AppendJsonNumber(&out, sample.value);
    out.push_back('\n');
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const MetricSample& sample : Snapshot()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(&out, sample.name);
    out.append("\":");
    AppendJsonNumber(&out, sample.value);
  }
  out.push_back('}');
  return out;
}

}  // namespace lash::obs
