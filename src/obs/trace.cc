#include "obs/trace.h"

#include <atomic>
#include <random>
#include <stdexcept>

#include "mapreduce/job.h"
#include "util/json.h"

namespace lash::obs {

namespace {

/// splitmix64: the standard 64-bit finalizer-style mixer — every id below
/// is some counter pushed through it.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One random 64-bit value per process (seeds both id streams). Collected
/// once; std::random_device may be expensive but never on a hot path.
uint64_t ProcessEntropy() {
  static const uint64_t entropy = [] {
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    seed ^= Mix64(static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count()));
    return seed == 0 ? 1 : seed;
  }();
  return entropy;
}

std::atomic<uint64_t> g_trace_counter{1};
std::atomic<uint64_t> g_span_counter{1};

char HexDigit(unsigned v) { return "0123456789abcdef"[v & 0xf]; }

void AppendHex64(std::string* out, uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(HexDigit(static_cast<unsigned>(v >> shift)));
  }
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

thread_local TraceContext g_ambient;

}  // namespace

std::string TraceId::Hex() const {
  std::string out;
  out.reserve(32);
  for (const uint8_t b : bytes) {
    out.push_back(HexDigit(b >> 4));
    out.push_back(HexDigit(b));
  }
  return out;
}

TraceId TraceId::FromHex(std::string_view hex) {
  TraceId id;
  if (hex.size() != 32) return TraceId{};
  for (size_t i = 0; i < 16; ++i) {
    const int hi = HexValue(hex[2 * i]);
    const int lo = HexValue(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return TraceId{};
    id.bytes[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return id;
}

TraceId TraceId::Make() {
  const uint64_t n = g_trace_counter.fetch_add(1, std::memory_order_relaxed);
  uint64_t words[2] = {Mix64(ProcessEntropy() ^ n),
                       Mix64(ProcessEntropy() + (n << 1) + 1)};
  TraceId id;
  for (size_t i = 0; i < 16; ++i) {
    id.bytes[i] = static_cast<uint8_t>(words[i / 8] >> (8 * (i % 8)));
  }
  if (!id.active()) id.bytes[0] = 1;  // Astronomically unlikely; stay active.
  return id;
}

// ---- Tracer --------------------------------------------------------------

Tracer::Tracer() = default;

Tracer::~Tracer() { CloseFile(); }

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::OpenFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    throw std::runtime_error("cannot open trace output file " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
}

void Tracer::CloseFile() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void Tracer::StartCollecting() {
  std::lock_guard<std::mutex> lock(mu_);
  collecting_ = true;
}

void Tracer::StopCollecting() {
  std::lock_guard<std::mutex> lock(mu_);
  collecting_ = false;
  collected_.clear();
}

std::vector<SpanRecord> Tracer::TakeCollected() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = std::move(collected_);
  collected_.clear();
  return out;
}

bool Tracer::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr || collecting_;
}

uint64_t Tracer::NewSpanId() {
  const uint64_t n = g_span_counter.fetch_add(1, std::memory_order_relaxed);
  const uint64_t id = Mix64(ProcessEntropy() + (n << 1));
  return id == 0 ? 1 : id;
}

double Tracer::NowUnixMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void Tracer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::string line;
    line.reserve(160);
    line += "{\"trace\":\"";
    line += record.trace_id.Hex();
    line += "\",\"span\":\"";
    AppendHex64(&line, record.span_id);
    line += "\",\"parent\":\"";
    AppendHex64(&line, record.parent_id);
    line += "\",\"name\":\"";
    AppendJsonEscaped(&line, record.name);
    line += "\",\"start_unix_ms\":";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", record.start_unix_ms);
    line += buf;
    line += ",\"dur_ms\":";
    std::snprintf(buf, sizeof buf, "%.3f", record.dur_ms);
    line += buf;
    line += ",\"tags\":{";
    bool first = true;
    for (const auto& [key, value] : record.tags) {
      if (!first) line.push_back(',');
      first = false;
      line.push_back('"');
      AppendJsonEscaped(&line, key);
      line += "\":\"";
      AppendJsonEscaped(&line, value);
      line.push_back('"');
    }
    line += "}}\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    // Flushed per span: a killed process (or a smoke script grepping while
    // servers still run) must still see every finished span.
    std::fflush(file_);
  }
  if (collecting_) collected_.push_back(std::move(record));
}

// ---- Span ----------------------------------------------------------------

Span::Span(Tracer* tracer, const TraceContext& parent, std::string name) {
  if (tracer == nullptr || !parent.active() || !tracer->enabled()) return;
  tracer_ = tracer;
  record_.trace_id = parent.trace_id;
  record_.span_id = tracer->NewSpanId();
  record_.parent_id = parent.parent_span;
  record_.name = std::move(name);
  record_.start_unix_ms = Tracer::NowUnixMs();
  start_ = std::chrono::steady_clock::now();
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      record_(std::move(other.record_)),
      start_(other.start_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

Span::~Span() { End(); }

TraceContext Span::context() const {
  if (tracer_ == nullptr) return TraceContext{};
  return TraceContext{record_.trace_id, record_.span_id};
}

void Span::Tag(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  record_.tags.emplace_back(std::move(key), std::move(value));
}

void Span::Tag(std::string key, double value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  record_.tags.emplace_back(std::move(key), std::string(buf));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  record_.dur_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->Record(std::move(record_));
}

// ---- Ambient context -----------------------------------------------------

TraceContext AmbientContext() { return g_ambient; }

ScopedAmbientContext::ScopedAmbientContext(TraceContext ctx)
    : prev_(g_ambient) {
  g_ambient = ctx;
}

ScopedAmbientContext::~ScopedAmbientContext() { g_ambient = prev_; }

// ---- MapReduce span export -----------------------------------------------

void ExportJobSpans(Tracer* tracer, const TraceContext& parent,
                    const JobResult& job, double anchor_unix_ms) {
  if (tracer == nullptr || !parent.active() || !tracer->enabled()) return;

  // A finished job is re-expressed as spans: ids are minted now, offsets
  // come from the job's own clock (ms since job start), anchored at the
  // caller-provided wall instant.
  SpanRecord root;
  root.trace_id = parent.trace_id;
  root.span_id = tracer->NewSpanId();
  root.parent_id = parent.parent_span;
  root.name = "mr.job";
  root.start_unix_ms = anchor_unix_ms;
  root.dur_ms =
      job.times.map_ms + job.times.shuffle_ms + job.times.reduce_ms;
  char buf[32];
  auto tag_double = [&buf](SpanRecord* record, const char* key,
                           double value) {
    std::snprintf(buf, sizeof buf, "%.6g", value);
    record->tags.emplace_back(key, buf);
  };
  root.tags.emplace_back("pipelined", job.pipelined ? "1" : "0");
  tag_double(&root, "map_ms", job.times.map_ms);
  tag_double(&root, "shuffle_ms", job.times.shuffle_ms);
  tag_double(&root, "reduce_ms", job.times.reduce_ms);
  if (job.pipelined) {
    tag_double(&root, "map_barrier_ms", job.map_barrier_ms);
    tag_double(&root, "phase_overlap_ms", job.phase_overlap_ms);
  }
  const TraceContext job_ctx{root.trace_id, root.span_id};

  auto emit = [&](const char* name, size_t index, double start_off,
                  double end_off) {
    if (end_off <= start_off) return;
    SpanRecord span;
    span.trace_id = job_ctx.trace_id;
    span.span_id = tracer->NewSpanId();
    span.parent_id = job_ctx.parent_span;
    span.name = name;
    span.start_unix_ms = anchor_unix_ms + start_off;
    span.dur_ms = end_off - start_off;
    std::snprintf(buf, sizeof buf, "%zu", index);
    span.tags.emplace_back("index", buf);
    tracer->Record(std::move(span));
  };

  // Per-map-task spans need start offsets; the legacy path records only
  // durations, so map spans (like partition spans) are pipelined-only.
  if (job.pipelined &&
      job.map_task_start_ms.size() == job.map_task_ms.size()) {
    for (size_t m = 0; m < job.map_task_ms.size(); ++m) {
      emit("mr.map", m, job.map_task_start_ms[m],
           job.map_task_start_ms[m] + job.map_task_ms[m]);
    }
  }
  for (size_t r = 0; r < job.partition_timeline.size(); ++r) {
    const PartitionTimeline& p = job.partition_timeline[r];
    emit("mr.partition.group", r, p.start_ms, p.grouped_ms);
    emit("mr.partition.reduce", r, p.grouped_ms, p.reduced_ms);
  }
  tracer->Record(std::move(root));
}

}  // namespace lash::obs
