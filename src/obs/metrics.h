#ifndef LASH_OBS_METRICS_H_
#define LASH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

/// The metrics half of the observability layer (ROADMAP "Observability").
///
/// A MetricsRegistry is a process- or component-wide namespace of named
/// instruments. Registration (GetCounter/GetGauge/GetHistogram) takes a
/// mutex and is done once, at component construction; *recording* on the
/// returned instrument is a relaxed atomic op with no lock and no lookup —
/// cheap enough for the per-frame and per-request paths that feed it.
/// Instrument pointers are stable for the registry's lifetime.
///
/// Naming rule (the ROADMAP contract): `layer.component.metric[_unit]`,
/// lowercase, dot-separated layers, underscore words — e.g.
/// `serve.requests.submitted`, `serve.cache.bytes`, `net.server.frames_in`.
/// Exposition sorts by name, so a layer's metrics read as a block.
namespace lash::obs {

/// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, resident bytes). Updated by
/// deltas from concurrent writers or set outright by a single owner.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One exposition sample: a flat (name, value) pair. Histograms explode
/// into `<name>.count`, `<name>.p50_ms`, `<name>.p95_ms`, `<name>.mean_ms`
/// samples, so every consumer (wire codec, text printout, grep in a smoke
/// test) sees one uniform shape.
struct MetricSample {
  std::string name;
  double value = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the tools wire their components into. Library
  /// components never reach for this themselves — they take a registry
  /// pointer (defaulting to a private one), so tests hosting several
  /// services in one process don't share counters by accident.
  static MetricsRegistry& Global();

  /// Get-or-create by name; the pointer is stable until the registry dies.
  /// A name registers as exactly one kind — re-requesting it as another
  /// kind throws std::logic_error (a naming bug, not a runtime condition).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  /// Every instrument flattened to samples, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// `name value` lines (six significant digits), sorted by name.
  std::string ToText() const;

  /// One JSON object `{"name": value, ...}`, sorted by name.
  std::string ToJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Slot& GetSlot(std::string_view name, Kind kind);

  /// Guards the map only; instrument updates never take it. std::map keeps
  /// exposition sorted without a per-snapshot sort.
  mutable std::mutex mu_;
  std::map<std::string, Slot, std::less<>> slots_;
};

}  // namespace lash::obs

#endif  // LASH_OBS_METRICS_H_
