#ifndef LASH_OBS_HISTOGRAM_H_
#define LASH_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace lash::obs {

/// Fixed-bucket latency histogram with lock-free recording.
///
/// Bucket `i` holds latencies in `[2^(i-1), 2^i)` microseconds (bucket 0 is
/// everything under 1µs; the last bucket is open-ended), so 28 buckets cover
/// 1µs .. >67s. Record() is one bit_width plus one relaxed fetch_add — cheap
/// enough to sit on the service's per-request resolve path — and Snapshot()
/// is a plain copy small enough to return by value from a stats call.
///
/// Percentile estimates return the upper bound of the bucket containing the
/// requested rank: an overestimate of at most 2x, which is the right
/// trade-off for the p50/p95 service dashboards it feeds (a serving cache
/// hit and a cold mining run differ by orders of magnitude, not by 2x).
///
/// Born in serve/ (PR 4), hoisted into obs/ for the metrics registry of
/// PR 9 — serve/histogram.h keeps the old name as an alias.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 28;

  void Record(double ms) {
    const double us = ms * 1000.0;
    size_t bucket = 0;
    if (us >= 1.0) {
      const uint64_t whole = static_cast<uint64_t>(us);
      bucket = static_cast<size_t>(std::bit_width(whole));
      if (bucket >= kBuckets) bucket = kBuckets - 1;
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(static_cast<uint64_t>(us), std::memory_order_relaxed);
  }

  /// A consistent-enough copy for reporting (individual bucket reads are
  /// relaxed; a snapshot taken while recorders run may be mid-update by a
  /// handful of requests, which is fine for monitoring counters).
  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t total = 0;
    uint64_t sum_us = 0;

    /// Upper bound of the bucket holding the `p`-quantile request
    /// (p in [0, 1]), in milliseconds; 0 when the histogram is empty.
    double PercentileMs(double p) const {
      if (total == 0) return 0;
      uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
      if (rank >= total) rank = total - 1;
      uint64_t seen = 0;
      for (size_t i = 0; i < kBuckets; ++i) {
        seen += counts[i];
        if (seen > rank) {
          // Bucket i spans [2^(i-1), 2^i) µs; report the upper bound.
          return static_cast<double>(uint64_t{1} << i) / 1000.0;
        }
      }
      return static_cast<double>(uint64_t{1} << (kBuckets - 1)) / 1000.0;
    }

    double MeanMs() const {
      if (total == 0) return 0;
      return static_cast<double>(sum_us) / static_cast<double>(total) / 1000.0;
    }
  };

  Snapshot TakeSnapshot() const {
    Snapshot snap;
    for (size_t i = 0; i < kBuckets; ++i) {
      snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
      snap.total += snap.counts[i];
    }
    snap.sum_us = sum_us_.load(std::memory_order_relaxed);
    return snap;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> sum_us_{0};
};

}  // namespace lash::obs

#endif  // LASH_OBS_HISTOGRAM_H_
