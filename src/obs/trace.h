#ifndef LASH_OBS_TRACE_H_
#define LASH_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// The tracing half of the observability layer (ROADMAP "Observability").
///
/// A request is stamped with a 16-byte TraceId at the edge (a tool flag or a
/// network client); every stage it passes through — serve pipeline stages,
/// MapReduce phases, router scatter legs — opens a Span under that id, and
/// the spans of all participating processes merge into one tree by
/// (trace_id, span_id, parent_id). Context crosses the wire inside the
/// kMineRequestV2 message (net/wire.h); inside a process it travels on
/// TaskSpec::trace plus a thread-local ambient context for layers (api/)
/// that a TaskSpec does not reach.
///
/// Spans are recorded only when both halves are on: the request carries an
/// active trace id AND the process's Tracer has somewhere to put spans (a
/// --trace-out JSONL file, or test-collection mode). An untraced v1 request
/// through a tracing worker records nothing — tracing is strictly opt-in
/// per request, so its cost is zero on the default path.
///
/// JSONL schema (one span per line, append-only):
///   {"trace":"<32 hex>","span":"<16 hex>","parent":"<16 hex|``0``...>",
///    "name":"serve.mine","start_unix_ms":<double>,"dur_ms":<double>,
///    "tags":{"k":"v",...}}
/// `start_unix_ms` is a wall-clock anchor (system clock at span start);
/// `dur_ms` is measured on the steady clock, so durations never jump with
/// wall-clock adjustments.
namespace lash {

struct JobResult;

namespace obs {

/// 16 random bytes identifying one end-to-end request. All-zero = inactive
/// (the v1 / untraced state).
struct TraceId {
  std::array<uint8_t, 16> bytes{};

  bool active() const {
    for (const uint8_t b : bytes) {
      if (b != 0) return true;
    }
    return false;
  }
  bool operator==(const TraceId&) const = default;

  /// 32 lowercase hex chars.
  std::string Hex() const;

  /// Inverse of Hex(); anything but 32 hex chars yields an inactive id.
  static TraceId FromHex(std::string_view hex);

  /// A fresh id: process entropy mixed with a process-local counter, so
  /// concurrent Make() calls and separate processes never collide in
  /// practice.
  static TraceId Make();
};

/// What propagates between layers and across the wire: which trace, and
/// which span is the parent of whatever the receiver opens next.
struct TraceContext {
  TraceId trace_id;
  uint64_t parent_span = 0;

  bool active() const { return trace_id.active(); }
};

/// One finished span, as recorded.
struct SpanRecord {
  TraceId trace_id;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root of its process's subtree.
  std::string name;
  double start_unix_ms = 0;
  double dur_ms = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Span sink: a JSONL file (--trace-out), an in-memory collection vector
/// (tests), or both. Record() and NewSpanId() are thread-safe.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// The process-wide tracer every component records into. (Unlike the
  /// metrics registry there is no per-component split: spans are already
  /// namespaced by trace id, so cross-component sharing is the point.)
  static Tracer& Global();

  /// Opens `path` for appending; every Record() also writes one JSONL
  /// line. Throws std::runtime_error when the file cannot be opened.
  void OpenFile(const std::string& path);
  void CloseFile();

  /// Test mode: Record() additionally retains spans in memory until
  /// TakeCollected() drains them. StopCollecting() turns the mode off.
  void StartCollecting();
  void StopCollecting();
  std::vector<SpanRecord> TakeCollected();

  /// Whether Record() currently goes anywhere. Span construction checks
  /// this once, so a disabled tracer costs one branch per would-be span.
  bool enabled() const;

  /// Process-unique nonzero span id (entropy-tagged counter — ids from
  /// different processes in one merged trace never collide in practice).
  uint64_t NewSpanId();

  void Record(SpanRecord record);

  /// Wall-clock now, in milliseconds since the Unix epoch.
  static double NowUnixMs();

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool collecting_ = false;
  std::vector<SpanRecord> collected_;
};

/// RAII span. Inactive (records nothing, costs one branch) unless the
/// parent context is active and the tracer is enabled at construction.
/// Move-only; End() records exactly once (the destructor calls it).
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, const TraceContext& parent, std::string name);
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool active() const { return tracer_ != nullptr; }

  /// Context for children of this span (inactive when the span is).
  TraceContext context() const;

  void Tag(std::string key, std::string value);
  void Tag(std::string key, double value);

  void End();

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_{};
};

/// The calling thread's ambient trace context (inactive by default). Layers
/// beneath TaskSpec — the facade's MiningTask::Mine — read it to attach
/// their spans without any signature change.
TraceContext AmbientContext();

/// Installs `ctx` as the ambient context for the current scope, restoring
/// the previous one on destruction.
class ScopedAmbientContext {
 public:
  explicit ScopedAmbientContext(TraceContext ctx);
  ~ScopedAmbientContext();
  ScopedAmbientContext(const ScopedAmbientContext&) = delete;
  ScopedAmbientContext& operator=(const ScopedAmbientContext&) = delete;

 private:
  TraceContext prev_;
};

/// Exports a finished MapReduce job as spans under `parent`: one `mr.job`
/// span (tagged with pipelined / map_barrier_ms / phase_overlap_ms), one
/// `mr.map` span per map task, and `mr.partition.group` / the streaming
/// `mr.partition.reduce` span per reduce partition (pipelined runs only —
/// the legacy path records no per-partition timeline). JobResult stores
/// offsets relative to the job's start, so the caller anchors them with the
/// wall-clock instant the job (approximately) began — the enclosing mine
/// span's own start. No-op when `parent` is inactive or `tracer` disabled.
void ExportJobSpans(Tracer* tracer, const TraceContext& parent,
                    const JobResult& job, double anchor_unix_ms);

}  // namespace obs
}  // namespace lash

#endif  // LASH_OBS_TRACE_H_
