#ifndef LASH_DATAGEN_TEXT_GEN_H_
#define LASH_DATAGEN_TEXT_GEN_H_

#include <cstdint>
#include <string>

#include "core/database.h"
#include "core/hierarchy.h"
#include "core/vocabulary.h"

namespace lash {

/// Which syntactic hierarchy variant to build over the generated tokens
/// (Sec. 6.1, Table 2):
///   kL   — word → lemma              (many roots, tiny fan-out)
///   kP   — word → POS tag            (few roots, huge fan-out)
///   kLP  — word → lemma → POS        (3 levels)
///   kCLP — word → case → lemma → POS (4 levels)
enum class TextHierarchy { kL, kP, kLP, kCLP };

/// Configuration of the synthetic NYT-like corpus.
///
/// The real New York Times corpus (50M sentences, avg length 21.1, 2.76M
/// unique tokens) is LDC-licensed; this generator reproduces the properties
/// LASH's behaviour depends on: Zipf-distributed tokens, sentences of
/// NYT-like length, items occurring at multiple hierarchy levels (a token
/// whose surface form equals its lowercase form or lemma *is* that
/// intermediate item), and POS-level sequential structure coming from
/// phrase templates — which is what makes generalized n-grams like
/// "the ADJ NOUN" frequent while their specializations are not.
struct TextGenConfig {
  size_t num_sentences = 50000;
  double avg_sentence_length = 21.0;
  size_t num_lemmas = 5000;         ///< Lemma types (Zipf-distributed usage).
  size_t num_pos_tags = 22;         ///< NYT-P has 22 root items (Table 2).
  double zipf_exponent = 1.0;
  double inflect_prob = 0.55;       ///< P(token is an inflected form).
  double cased_prob = 0.12;         ///< P(token is capitalized).
  double template_prob = 0.7;       ///< P(sentence chunk from a POS template).
  size_t num_templates = 60;
  uint64_t seed = 42;
  TextHierarchy hierarchy = TextHierarchy::kCLP;
};

/// A generated corpus: raw-id database + hierarchy + names.
struct GeneratedText {
  Database database;
  Hierarchy hierarchy;
  Vocabulary vocabulary;

  GeneratedText() : hierarchy(Hierarchy::Flat(0)) {}
};

/// Generates the corpus. The token stream depends only on
/// (seed, size/shape parameters) — *not* on `hierarchy` — so the four
/// variants of Fig. 5(f) see identical sentences.
GeneratedText GenerateText(const TextGenConfig& config);

/// Short dataset label ("NYT-CLP" etc.) for bench output.
std::string TextHierarchyName(TextHierarchy kind);

}  // namespace lash

#endif  // LASH_DATAGEN_TEXT_GEN_H_
