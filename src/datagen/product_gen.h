#ifndef LASH_DATAGEN_PRODUCT_GEN_H_
#define LASH_DATAGEN_PRODUCT_GEN_H_

#include <cstdint>
#include <string>

#include "core/database.h"
#include "core/hierarchy.h"
#include "core/vocabulary.h"

namespace lash {

/// Configuration of the synthetic AMZN-like product-session dataset.
///
/// The real dataset (35M Amazon reviews grouped into 6.6M user sessions,
/// avg length 4.5, with the Amazon product hierarchy at depths 2-8) is
/// replaced by a generator that reproduces the relevant structure:
/// Zipf-distributed product popularity, short sessions, per-session category
/// affinity (users buy related products — "some camera, then some
/// photography book", Sec. 1), and a category tree whose depth is
/// configurable (`levels` = h2..h8 of Table 2). As in the real hierarchy,
/// most products attach at depth <= `max_attach_depth` even when deeper
/// levels exist, which is why the paper sees the depth effect flatten
/// between h4 and h8 (Fig. 5(e)).
struct ProductGenConfig {
  size_t num_sessions = 50000;
  double avg_session_length = 4.5;
  size_t num_products = 10000;
  size_t num_root_categories = 26;
  size_t category_branching = 4;   ///< Children per category node.
  int levels = 8;                  ///< Hierarchy levels incl. products (2..).
  int max_attach_depth = 4;        ///< Products mostly attach above this.
  double affinity_prob = 0.75;     ///< P(session item from the interest root).
  double zipf_exponent = 1.0;
  uint64_t seed = 7;
};

/// A generated dataset: raw-id database + hierarchy + names.
struct GeneratedProducts {
  Database database;
  Hierarchy hierarchy;
  Vocabulary vocabulary;

  GeneratedProducts() : hierarchy(Hierarchy::Flat(0)) {}
};

/// Generates the dataset. The session stream depends only on
/// (seed, size parameters) — *not* on `levels` — so the h2..h8 variants of
/// Fig. 5(e) see identical sessions.
GeneratedProducts GenerateProducts(const ProductGenConfig& config);

/// Short label ("AMZN-h8") for bench output.
std::string ProductHierarchyName(int levels);

}  // namespace lash

#endif  // LASH_DATAGEN_PRODUCT_GEN_H_
