#include "datagen/product_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace lash {

std::string ProductHierarchyName(int levels) {
  return "AMZN-h" + std::to_string(levels);
}

GeneratedProducts GenerateProducts(const ProductGenConfig& config) {
  if (config.levels < 2) {
    throw std::invalid_argument("GenerateProducts: levels must be >= 2");
  }
  if (config.num_products == 0 || config.num_root_categories == 0) {
    throw std::invalid_argument("GenerateProducts: empty vocabulary");
  }
  // Three independent streams so that the *session stream* and the
  // product -> root assignment are identical for every `levels` variant
  // (Fig. 5(e) compares hierarchy depths on the same data). Only the
  // category tree shape (tree_rng) depends on `levels`.
  Rng tree_rng(config.seed);
  Rng product_rng(config.seed ^ 0x9e0dULL);
  Rng session_rng(config.seed ^ 0xab1eULL);

  // --- Category tree ---
  // Category levels 0 (roots) .. levels-2; products form the final level.
  // Every root is guaranteed a descendant chain down to the deepest level.
  const int category_levels = config.levels - 1;
  const size_t num_roots = config.num_root_categories;
  struct Category {
    size_t parent;  // Index within the previous level (unused at level 0).
    size_t root;
  };
  std::vector<std::vector<Category>> tree(category_levels);
  // nodes_by_root[level][root] = indexes of that root's nodes at `level`.
  std::vector<std::vector<std::vector<size_t>>> nodes_by_root(
      category_levels, std::vector<std::vector<size_t>>(num_roots));
  for (size_t r = 0; r < num_roots; ++r) {
    tree[0].push_back({0, r});
    nodes_by_root[0][r].push_back(r);
  }
  for (int level = 1; level < category_levels; ++level) {
    // One guaranteed child per root, then random expansion.
    for (size_t r = 0; r < num_roots; ++r) {
      const std::vector<size_t>& parents = nodes_by_root[level - 1][r];
      size_t parent = parents[tree_rng.Uniform(parents.size())];
      nodes_by_root[level][r].push_back(tree[level].size());
      tree[level].push_back({parent, r});
    }
    // Width growth is capped so that deep hierarchies stay proportionate
    // to Table 2: in the real Amazon hierarchy intermediate categories are
    // a tiny fraction of the catalogue even at depth 8.
    size_t extra = std::min<size_t>(
        tree[level - 1].size() * (config.category_branching - 1),
        config.num_products / 20);
    for (size_t i = 0; i < extra; ++i) {
      size_t parent = tree_rng.Uniform(tree[level - 1].size());
      size_t root = tree[level - 1][parent].root;
      nodes_by_root[level][root].push_back(tree[level].size());
      tree[level].push_back({parent, root});
    }
  }

  // --- Products ---
  // Root assignment and per-product random draws are independent of the
  // tree shape: exactly three draws per product, always.
  struct Product {
    std::string name;
    int category_level;
    size_t category_index;  // Index within tree[category_level].
  };
  std::vector<Product> products(config.num_products);
  std::vector<std::vector<size_t>> products_by_root(num_roots);
  for (size_t p = 0; p < config.num_products; ++p) {
    size_t root = product_rng.Uniform(num_roots);
    double depth_draw = product_rng.NextDouble();
    uint64_t index_draw = product_rng.Next();

    // Geometric attachment depth capped by max_attach_depth, with a small
    // fraction of products using the full available depth.
    int attach_cap =
        std::min(category_levels - 1, config.max_attach_depth - 1);
    int level = 0;
    double threshold = 0.4;  // P(stop at current level).
    double x = depth_draw;
    while (level < attach_cap && x > threshold) {
      x = (x - threshold) / (1.0 - threshold);
      ++level;
    }
    // A small minority of products attaches at the full depth (the paper:
    // "most products in the Amazon product hierarchy have no more than 4
    // parent categories", which mutes the h4 -> h8 step in Fig. 5(e)).
    if (category_levels - 1 > attach_cap && x < 0.05) {
      level = category_levels - 1;
    }
    Product& product = products[p];
    product.name = "item" + std::to_string(p);
    product.category_level = level;
    const std::vector<size_t>& pool = nodes_by_root[level][root];
    product.category_index = pool[index_draw % pool.size()];
    products_by_root[root].push_back(p);
  }
  for (size_t r = 0; r < num_roots; ++r) {
    if (products_by_root[r].empty()) {
      // Degenerate only for tiny configs; keep pools non-empty.
      products_by_root[r].push_back(r % config.num_products);
    }
  }

  // --- Sessions ---
  ZipfSampler product_dist(config.num_products, config.zipf_exponent);
  ZipfSampler root_dist(num_roots, 1.0);
  std::vector<std::vector<size_t>> sessions(config.num_sessions);
  for (std::vector<size_t>& session : sessions) {
    double u = session_rng.NextDouble();
    size_t target = 1 + static_cast<size_t>(
                            -std::log(1.0 - u) *
                            std::max(0.5, config.avg_session_length - 1.0));
    size_t interest_root = root_dist.Sample(&session_rng);
    const std::vector<size_t>& pool = products_by_root[interest_root];
    for (size_t i = 0; i < target; ++i) {
      if (session_rng.Bernoulli(config.affinity_prob)) {
        session.push_back(pool[product_dist.Sample(&session_rng) % pool.size()]);
      } else {
        session.push_back(product_dist.Sample(&session_rng));
      }
    }
  }

  // --- Vocabulary + hierarchy ---
  GeneratedProducts out;
  Vocabulary& vocab = out.vocabulary;
  auto category_name = [](int level, size_t index) {
    return "cat" + std::to_string(level) + "_" + std::to_string(index);
  };
  // Register all category edges.
  for (int level = category_levels - 1; level >= 1; --level) {
    for (size_t i = 0; i < tree[level].size(); ++i) {
      vocab.AddItemWithParent(category_name(level, i),
                              category_name(level - 1, tree[level][i].parent));
    }
  }
  for (size_t r = 0; r < num_roots; ++r) vocab.AddItem(category_name(0, r));
  for (const Product& product : products) {
    vocab.AddItemWithParent(
        product.name,
        category_name(product.category_level, product.category_index));
  }
  out.database.reserve(config.num_sessions);
  for (const std::vector<size_t>& session : sessions) {
    Sequence seq;
    seq.reserve(session.size());
    for (size_t p : session) {
      seq.push_back(vocab.Lookup(products[p].name));
    }
    out.database.push_back(std::move(seq));
  }
  out.hierarchy = vocab.BuildHierarchy();
  return out;
}

}  // namespace lash
