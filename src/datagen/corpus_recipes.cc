#include "datagen/corpus_recipes.h"

namespace lash {

TextGenConfig NytConfig(const NytRecipe& recipe) {
  TextGenConfig config;
  config.num_sentences = recipe.sentences;
  config.num_lemmas = recipe.lemmas;
  config.hierarchy = recipe.hierarchy;
  config.seed = recipe.seed;
  return config;
}

ProductGenConfig AmznConfig(const AmznRecipe& recipe) {
  ProductGenConfig config;
  config.num_sessions = recipe.sessions;
  config.num_products = recipe.products;
  config.levels = recipe.levels;
  config.seed = recipe.seed;
  return config;
}

GeneratedText MakeNytCorpus(const NytRecipe& recipe) {
  return GenerateText(NytConfig(recipe));
}

GeneratedProducts MakeAmznCorpus(const AmznRecipe& recipe) {
  return GenerateProducts(AmznConfig(recipe));
}

}  // namespace lash
