#include "datagen/text_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace lash {

namespace {

// One lemma with its part-of-speech tag and surface forms. Form index 0 is
// the lemma itself; every form may additionally occur capitalized.
struct Lemma {
  size_t pos_tag;
  std::vector<std::string> forms;
};

// A phrase template: a short list of POS slots that sentences instantiate
// with random lemmas of that tag, creating POS-level n-gram structure.
struct Template {
  std::vector<size_t> pos_slots;
};

std::string PosName(size_t tag) { return "POS" + std::to_string(tag); }

}  // namespace

std::string TextHierarchyName(TextHierarchy kind) {
  switch (kind) {
    case TextHierarchy::kL:
      return "NYT-L";
    case TextHierarchy::kP:
      return "NYT-P";
    case TextHierarchy::kLP:
      return "NYT-LP";
    case TextHierarchy::kCLP:
      return "NYT-CLP";
  }
  return "NYT-?";
}

GeneratedText GenerateText(const TextGenConfig& config) {
  if (config.num_lemmas == 0 || config.num_pos_tags == 0) {
    throw std::invalid_argument("GenerateText: empty vocabulary");
  }
  // Separate streams: vocabulary tables and sentence sampling must not
  // interact so that all hierarchy variants see identical token streams.
  Rng vocab_rng(config.seed);
  Rng sentence_rng(config.seed ^ 0x5eedu);

  // --- Lemma table ---
  ZipfSampler tag_dist(config.num_pos_tags, 1.0);
  std::vector<Lemma> lemmas(config.num_lemmas);
  std::vector<std::vector<size_t>> lemmas_by_tag(config.num_pos_tags);
  static const char* kSuffixes[] = {"s", "ed", "ing", "er", "est"};
  for (size_t l = 0; l < config.num_lemmas; ++l) {
    Lemma& lemma = lemmas[l];
    lemma.pos_tag = tag_dist.Sample(&vocab_rng);
    lemmas_by_tag[lemma.pos_tag].push_back(l);
    std::string base = "w" + std::to_string(l);
    lemma.forms.push_back(base);
    size_t num_inflections = 1 + vocab_rng.Uniform(4);
    for (size_t f = 0; f < num_inflections; ++f) {
      lemma.forms.push_back(base + kSuffixes[f % 5]);
    }
  }
  // Guard: every tag used by templates must have at least one lemma.
  for (size_t tag = 0; tag < config.num_pos_tags; ++tag) {
    if (lemmas_by_tag[tag].empty()) {
      lemmas_by_tag[tag].push_back(vocab_rng.Uniform(config.num_lemmas));
    }
  }

  // --- Phrase templates (length 2..4 POS slots) ---
  std::vector<Template> templates(config.num_templates);
  for (Template& t : templates) {
    size_t len = 2 + vocab_rng.Uniform(3);
    for (size_t i = 0; i < len; ++i) {
      t.pos_slots.push_back(tag_dist.Sample(&vocab_rng));
    }
  }
  ZipfSampler template_dist(std::max<size_t>(1, config.num_templates), 1.0);
  ZipfSampler lemma_dist(config.num_lemmas, config.zipf_exponent);

  // --- Token stream ---
  // A token is (lemma id, form index, cased?). Sentences are built from
  // template chunks and free tokens.
  struct Token {
    size_t lemma;
    size_t form;
    bool cased;
  };
  auto sample_token = [&](size_t forced_tag, bool use_tag) {
    size_t l;
    if (use_tag) {
      const std::vector<size_t>& pool = lemmas_by_tag[forced_tag];
      // Zipf-ish selection within the tag pool: reuse the global lemma
      // distribution by rejection-free modulo mapping.
      l = pool[lemma_dist.Sample(&sentence_rng) % pool.size()];
    } else {
      l = lemma_dist.Sample(&sentence_rng);
    }
    Token token;
    token.lemma = l;
    bool inflect = sentence_rng.Bernoulli(config.inflect_prob) &&
                   lemmas[l].forms.size() > 1;
    token.form =
        inflect ? 1 + sentence_rng.Uniform(lemmas[l].forms.size() - 1) : 0;
    token.cased = sentence_rng.Bernoulli(config.cased_prob);
    return token;
  };

  std::vector<std::vector<Token>> sentences(config.num_sentences);
  for (std::vector<Token>& sentence : sentences) {
    // Length ~ 1 + Exp(avg - 1): right-skewed like real sentence lengths.
    double u = sentence_rng.NextDouble();
    size_t target = 1 + static_cast<size_t>(
                            -std::log(1.0 - u) *
                            std::max(1.0, config.avg_sentence_length - 1.0));
    while (sentence.size() < target) {
      if (sentence_rng.Bernoulli(config.template_prob) &&
          config.num_templates > 0) {
        const Template& t = templates[template_dist.Sample(&sentence_rng)];
        for (size_t tag : t.pos_slots) {
          sentence.push_back(sample_token(tag, /*use_tag=*/true));
        }
      } else {
        sentence.push_back(sample_token(0, /*use_tag=*/false));
      }
    }
    if (sentence.size() > target) sentence.resize(target);
  }

  // --- Vocabulary + hierarchy for the requested variant ---
  GeneratedText out;
  Vocabulary& vocab = out.vocabulary;
  auto surface_name = [&](const Token& t) {
    std::string lower = lemmas[t.lemma].forms[t.form];
    if (!t.cased) return lower;
    lower[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(lower[0])));
    return lower;
  };
  auto lower_name = [&](const Token& t) { return lemmas[t.lemma].forms[t.form]; };
  auto lemma_name = [&](const Token& t) { return lemmas[t.lemma].forms[0]; };
  auto pos_name = [&](const Token& t) { return PosName(lemmas[t.lemma].pos_tag); };

  out.database.reserve(config.num_sentences);
  for (const std::vector<Token>& sentence : sentences) {
    Sequence seq;
    seq.reserve(sentence.size());
    for (const Token& t : sentence) {
      std::string surface = surface_name(t);
      // Register the token's generalization chain for the chosen variant.
      // Chains collapse naturally when adjacent levels coincide ("changing"
      // is its own lowercase form), which is how items of the input end up
      // at different hierarchy levels.
      switch (config.hierarchy) {
        case TextHierarchy::kL: {
          std::string lem = lemma_name(t);
          if (surface != lem) vocab.AddItemWithParent(surface, lem);
          break;
        }
        case TextHierarchy::kP: {
          vocab.AddItemWithParent(surface, pos_name(t));
          break;
        }
        case TextHierarchy::kLP: {
          std::string lem = lemma_name(t);
          if (surface != lem) vocab.AddItemWithParent(surface, lem);
          vocab.AddItemWithParent(lem, pos_name(t));
          break;
        }
        case TextHierarchy::kCLP: {
          std::string lower = lower_name(t);
          std::string lem = lemma_name(t);
          if (surface != lower) vocab.AddItemWithParent(surface, lower);
          if (lower != lem) vocab.AddItemWithParent(lower, lem);
          vocab.AddItemWithParent(lem, pos_name(t));
          break;
        }
      }
      seq.push_back(vocab.AddItem(surface));
    }
    out.database.push_back(std::move(seq));
  }
  out.hierarchy = vocab.BuildHierarchy();
  return out;
}

}  // namespace lash
