#ifndef LASH_DATAGEN_CORPUS_RECIPES_H_
#define LASH_DATAGEN_CORPUS_RECIPES_H_

#include <cstddef>
#include <cstdint>

#include "datagen/product_gen.h"
#include "datagen/text_gen.h"

namespace lash {

/// The canonical self-generated stand-in corpora (DESIGN/README: the NYT
/// corpus becomes a synthetic 20k-sentence corpus, the AMZN sessions a
/// synthetic 20k-session one). Every consumer — the perf gates
/// (bench_common.h, bench_hotpath, bench_shuffle, bench_serve), the figure
/// benches, and the tools' self-generation modes (`lash_serve --gen`) —
/// builds its corpus through these recipes, so the *shape* knobs (lemma /
/// product counts, hierarchy variant, tree depth, seeds) are defined once
/// and gate corpora cannot drift from tool corpora. Callers override only
/// the scale fields they mean to change (e.g. smoke sizes).

/// NYT-like corpus recipe; defaults are the full-size gate corpus.
struct NytRecipe {
  size_t sentences = 20000;
  size_t lemmas = 3000;
  TextHierarchy hierarchy = TextHierarchy::kCLP;
  uint64_t seed = 42;
};

/// AMZN-like session recipe; defaults are the full-size gate corpus.
struct AmznRecipe {
  size_t sessions = 20000;
  size_t products = 5000;
  int levels = 8;
  uint64_t seed = 7;
};

/// The TextGenConfig a recipe stands for (every non-recipe knob stays at
/// the generator's default).
TextGenConfig NytConfig(const NytRecipe& recipe);

/// The ProductGenConfig a recipe stands for.
ProductGenConfig AmznConfig(const AmznRecipe& recipe);

/// Generates the corpus of a recipe.
GeneratedText MakeNytCorpus(const NytRecipe& recipe = {});
GeneratedProducts MakeAmznCorpus(const AmznRecipe& recipe = {});

}  // namespace lash

#endif  // LASH_DATAGEN_CORPUS_RECIPES_H_
