#ifndef LASH_CORE_PARAMS_H_
#define LASH_CORE_PARAMS_H_

#include <cstdint>
#include <stdexcept>

#include "util/types.h"

namespace lash {

/// Parameters of the GSM problem (Sec. 2): minimum support `sigma`, maximum
/// gap `gamma`, and maximum pattern length `lambda`.
struct GsmParams {
  Frequency sigma = 1;   ///< Minimum support threshold, > 0.
  uint32_t gamma = 0;    ///< Maximum number of items between matched items.
  uint32_t lambda = 2;   ///< Maximum pattern length, >= 2.

  /// Throws std::invalid_argument if the parameters violate the problem
  /// statement (sigma > 0, lambda >= 2).
  void Validate() const {
    if (sigma == 0) throw std::invalid_argument("GsmParams: sigma must be > 0");
    if (lambda < 2) throw std::invalid_argument("GsmParams: lambda must be >= 2");
  }
};

}  // namespace lash

#endif  // LASH_CORE_PARAMS_H_
