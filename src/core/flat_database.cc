#include "core/flat_database.h"

#include <ostream>

namespace lash {

std::ostream& operator<<(std::ostream& out, SequenceView view) {
  out << '[';
  for (size_t i = 0; i < view.size(); ++i) {
    if (i > 0) out << ' ';
    out << view[i];
  }
  return out << ']';
}

FlatDatabase FlatDatabase::FromDatabase(const Database& db) {
  FlatDatabase flat;
  size_t total = 0;
  for (const Sequence& t : db) total += t.size();
  flat.Reserve(db.size(), total);
  for (const Sequence& t : db) flat.Add(t);
  return flat;
}

Database FlatDatabase::Materialize() const {
  Database db;
  db.reserve(size());
  for (SequenceView t : *this) db.push_back(t.ToSequence());
  return db;
}

}  // namespace lash
