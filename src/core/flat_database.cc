#include "core/flat_database.h"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace lash {

FlatDatabase& FlatDatabase::operator=(const FlatDatabase& other) {
  if (this == &other) return *this;
  if (other.borrowed_) {
    // Copies of a borrowed database share the borrow (same contract as
    // ArrayRef): the backing mapping must outlive them.
    items_.clear();
    offsets_.clear();
    arena_ = other.arena_;
    offset_table_ = other.offset_table_;
    num_sequences_ = other.num_sequences_;
    total_items_ = other.total_items_;
    borrowed_ = true;
  } else {
    items_.assign(other.arena_, other.arena_ + other.total_items_);
    offsets_.assign(other.offset_table_,
                    other.offset_table_ + other.num_sequences_ + 1);
    borrowed_ = false;
    Sync();
  }
  return *this;
}

FlatDatabase& FlatDatabase::operator=(FlatDatabase&& other) noexcept {
  if (this == &other) return *this;
  items_ = std::move(other.items_);
  offsets_ = std::move(other.offsets_);
  borrowed_ = other.borrowed_;
  if (borrowed_) {
    arena_ = other.arena_;
    offset_table_ = other.offset_table_;
    num_sequences_ = other.num_sequences_;
    total_items_ = other.total_items_;
  } else {
    Sync();  // Vector buffers survive the move; repoint at them.
  }
  // Leave the source as a valid empty owned database.
  other.items_.clear();
  other.offsets_.assign(1, 0);
  other.borrowed_ = false;
  other.Sync();
  return *this;
}

void FlatDatabase::RequireOwned(const char* op) const {
  if (borrowed_) {
    throw std::logic_error(std::string("FlatDatabase::") + op +
                           ": database borrows a read-only mapping");
  }
}

FlatDatabase FlatDatabase::Borrowed(const ItemId* arena, size_t total_items,
                                    const uint64_t* offsets,
                                    size_t num_sequences) {
  if (offsets[0] != 0 || offsets[num_sequences] != total_items) {
    throw std::invalid_argument(
        "FlatDatabase::Borrowed: offset table boundaries disagree with arena");
  }
  FlatDatabase db;
  db.items_.clear();
  db.offsets_.clear();
  db.arena_ = arena;
  db.offset_table_ = offsets;
  db.num_sequences_ = num_sequences;
  db.total_items_ = total_items;
  db.borrowed_ = true;
  return db;
}

FlatDatabase FlatDatabase::FromBuffers(std::vector<ItemId> arena,
                                       std::vector<uint64_t> offsets) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != arena.size()) {
    throw std::invalid_argument(
        "FlatDatabase::FromBuffers: offset table boundaries disagree with "
        "arena");
  }
  FlatDatabase db;
  db.items_ = std::move(arena);
  db.offsets_ = std::move(offsets);
  db.Sync();
  return db;
}

bool operator==(const FlatDatabase& a, const FlatDatabase& b) {
  if (a.num_sequences_ != b.num_sequences_ || a.total_items_ != b.total_items_)
    return false;
  for (size_t i = 0; i <= a.num_sequences_; ++i) {
    if (a.offset_table_[i] != b.offset_table_[i]) return false;
  }
  for (size_t i = 0; i < a.total_items_; ++i) {
    if (a.arena_[i] != b.arena_[i]) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& out, SequenceView view) {
  out << '[';
  for (size_t i = 0; i < view.size(); ++i) {
    if (i > 0) out << ' ';
    out << view[i];
  }
  return out << ']';
}

FlatDatabase FlatDatabase::FromDatabase(const Database& db) {
  FlatDatabase flat;
  size_t total = 0;
  for (const Sequence& t : db) total += t.size();
  flat.Reserve(db.size(), total);
  for (const Sequence& t : db) flat.Add(t);
  return flat;
}

Database FlatDatabase::Materialize() const {
  Database db;
  db.reserve(size());
  for (SequenceView t : *this) db.push_back(t.ToSequence());
  return db;
}

}  // namespace lash
