#ifndef LASH_CORE_MATCH_H_
#define LASH_CORE_MATCH_H_

#include <cstdint>
#include <vector>

#include "core/flat_database.h"
#include "core/hierarchy.h"
#include "util/types.h"

namespace lash {

/// Returns true iff `S ⊑γ T` (Sec. 2): there are indexes i1 < ... < in of T
/// with `T[ij] →* S[j]` and at most `gamma` items between consecutive
/// matches. Blanks in T never match. Implemented as a dynamic program over
/// end positions — greedy leftmost matching is incorrect under gap
/// constraints (e.g. S=ab, γ=0, T=acab).
bool Matches(const Sequence& s, SequenceView t, const Hierarchy& h,
             uint32_t gamma);

/// Returns the sorted 0-based positions `e` of T such that some embedding of
/// `S` in `T` ends at `e`. Empty iff `S` does not match. Used by the DFS
/// miner to seed projected databases.
std::vector<uint32_t> MatchEndPositions(const Sequence& s, SequenceView t,
                                        const Hierarchy& h, uint32_t gamma);

/// An embedding's first and last matched positions in a transaction; PSM
/// tracks these to support both left and right expansions (Sec. 5.2).
struct Embedding {
  uint32_t start;
  uint32_t end;

  friend bool operator==(const Embedding&, const Embedding&) = default;
  friend auto operator<=>(const Embedding&, const Embedding&) = default;
};

/// Returns all distinct (start, end) pairs over embeddings of `S` in `T`,
/// sorted. Note: distinct embeddings sharing (start, end) are collapsed,
/// which is sufficient for expansion bookkeeping.
std::vector<Embedding> MatchEmbeddings(const Sequence& s, SequenceView t,
                                       const Hierarchy& h, uint32_t gamma);

}  // namespace lash

#endif  // LASH_CORE_MATCH_H_
