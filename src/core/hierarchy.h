#ifndef LASH_CORE_HIERARCHY_H_
#define LASH_CORE_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace lash {

/// An item hierarchy: a forest over items `1..NumItems()` where every item
/// has at most one parent (Sec. 2).
///
/// The hierarchy is immutable after construction and validated to be acyclic.
/// Two id spaces use this class: the *raw* space produced by a Vocabulary
/// (arbitrary parent ids) and the *rank* space produced by preprocessing
/// (Sec. 3.4), in which `Parent(w) < w` holds for every non-root item; the
/// latter invariant can be checked with IsRankMonotone().
class Hierarchy {
 public:
  /// Builds a hierarchy from a parent array. `parent[0]` is ignored (item 0
  /// is reserved); `parent[w] == kInvalidItem` marks a root. Throws
  /// std::invalid_argument on out-of-range parents or cycles.
  explicit Hierarchy(std::vector<ItemId> parent);

  /// Convenience: a flat hierarchy (every item a root) over `num_items`
  /// items. Used by the MG-FSM baseline and flat-mining mode.
  static Hierarchy Flat(size_t num_items);

  /// Number of real items; valid ids are `1..NumItems()`.
  size_t NumItems() const { return parent_.size() - 1; }

  /// Parent of `w`, or kInvalidItem if `w` is a root.
  ItemId Parent(ItemId w) const { return parent_[w]; }

  /// True iff `w` has no parent.
  bool IsRoot(ItemId w) const { return parent_[w] == kInvalidItem; }

  /// True iff `w` has no children.
  bool IsLeaf(ItemId w) const { return is_leaf_[w]; }

  /// Number of edges from `w` up to its root (roots have depth 0).
  int Depth(ItemId w) const { return depth_[w]; }

  /// Maximum Depth() over all items; 0 for a flat hierarchy.
  int MaxDepth() const { return max_depth_; }

  /// Number of hierarchy levels (MaxDepth() + 1), as reported in Table 2.
  int NumLevels() const { return max_depth_ + 1; }

  /// True iff `w →* anc`, i.e. `anc` equals `w` or is an ancestor of it.
  bool GeneralizesTo(ItemId w, ItemId anc) const;

  /// Invokes `fn(a)` for `w` itself and then each ancestor, root last.
  template <typename Fn>
  void ForEachAncestorOrSelf(ItemId w, Fn fn) const {
    for (ItemId a = w; a != kInvalidItem; a = parent_[a]) fn(a);
  }

  /// True iff `Parent(w) < w` for every non-root item — the invariant
  /// guaranteed by the hierarchy-aware total order of Sec. 3.4 and required
  /// by the rewrite and mining code.
  bool IsRankMonotone() const;

  /// Number of items with no children (Table 2, "Leaf items").
  size_t NumLeaves() const;

  /// Number of items with no parent (Table 2, "Root items").
  size_t NumRoots() const;

  /// Number of items that are neither leaves nor roots (Table 2).
  size_t NumIntermediate() const;

  /// Average number of children over items that have children (Table 2,
  /// "Avg. fan-out"). Returns 0 for flat hierarchies.
  double AvgFanOut() const;

  /// Maximum number of children of any item (Table 2, "Max. fan-out").
  size_t MaxFanOut() const;

 private:
  std::vector<ItemId> parent_;
  std::vector<int> depth_;
  std::vector<bool> is_leaf_;
  int max_depth_ = 0;
};

}  // namespace lash

#endif  // LASH_CORE_HIERARCHY_H_
