#ifndef LASH_CORE_HIERARCHY_H_
#define LASH_CORE_HIERARCHY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.h"

namespace lash {

/// An item hierarchy: a forest over items `1..NumItems()` where every item
/// has at most one parent (Sec. 2).
///
/// The hierarchy is immutable after construction and validated to be acyclic.
/// Two id spaces use this class: the *raw* space produced by a Vocabulary
/// (arbitrary parent ids) and the *rank* space produced by preprocessing
/// (Sec. 3.4), in which `Parent(w) < w` holds for every non-root item; the
/// latter invariant can be checked with IsRankMonotone().
///
/// Construction precomputes two flat indexes for the mining hot path:
///   * Euler-tour interval labels `tin/tout` over the forest, making
///     GeneralizesTo an O(1) range containment test, and
///   * a CSR packing of every ancestor chain (self first, root last), so
///     ancestor iteration is a contiguous scan instead of a pointer walk.
class Hierarchy {
 public:
  /// Builds a hierarchy from a parent array. `parent[0]` is ignored (item 0
  /// is reserved); `parent[w] == kInvalidItem` marks a root. Throws
  /// std::invalid_argument on out-of-range parents or cycles.
  explicit Hierarchy(std::vector<ItemId> parent);

  /// Convenience: a flat hierarchy (every item a root) over `num_items`
  /// items. Used by the MG-FSM baseline and flat-mining mode.
  static Hierarchy Flat(size_t num_items);

  /// Number of real items; valid ids are `1..NumItems()`.
  size_t NumItems() const { return parent_.size() - 1; }

  /// Parent of `w`, or kInvalidItem if `w` is a root.
  ItemId Parent(ItemId w) const { return parent_[w]; }

  /// True iff `w` has no parent.
  bool IsRoot(ItemId w) const { return parent_[w] == kInvalidItem; }

  /// True iff `w` has no children.
  bool IsLeaf(ItemId w) const { return is_leaf_[w]; }

  /// Number of edges from `w` up to its root (roots have depth 0).
  int Depth(ItemId w) const { return depth_[w]; }

  /// Maximum Depth() over all items; 0 for a flat hierarchy.
  int MaxDepth() const { return max_depth_; }

  /// Number of hierarchy levels (MaxDepth() + 1), as reported in Table 2.
  int NumLevels() const { return max_depth_ + 1; }

  /// True iff `w →* anc`, i.e. `anc` equals `w` or is an ancestor of it.
  /// O(1): an Euler-tour interval containment test.
  bool GeneralizesTo(ItemId w, ItemId anc) const {
    if (w == anc) return true;
    const size_t n = parent_.size() - 1;
    if (w - 1 >= n || anc - 1 >= n) return false;  // 0 and out-of-range ids.
    return tin_[anc] <= tin_[w] && tin_[w] < tout_[anc];
  }

  /// Euler-tour entry label of `w` (DFS discovery index over the forest).
  /// `u` is an ancestor-or-self of `w` iff `Tin(u) <= Tin(w) < Tout(u)`.
  uint32_t Tin(ItemId w) const { return tin_[w]; }

  /// Euler-tour exit label of `w` (one past the last label in w's subtree).
  uint32_t Tout(ItemId w) const { return tout_[w]; }

  /// The ancestor chain of `w` — `w` itself first, then each ancestor, root
  /// last — as a contiguous view into the CSR-packed chain array. Valid for
  /// `1 <= w <= NumItems()`.
  std::span<const ItemId> AncestorSpan(ItemId w) const {
    return {anc_items_.data() + anc_offsets_[w],
            anc_items_.data() + anc_offsets_[w + 1]};
  }

  /// Invokes `fn(a)` for `w` itself and then each ancestor, root last.
  template <typename Fn>
  void ForEachAncestorOrSelf(ItemId w, Fn fn) const {
    for (ItemId a : AncestorSpan(w)) fn(a);
  }

  /// True iff `Parent(w) < w` for every non-root item — the invariant
  /// guaranteed by the hierarchy-aware total order of Sec. 3.4 and required
  /// by the rewrite and mining code.
  bool IsRankMonotone() const;

  /// Number of items with no children (Table 2, "Leaf items").
  size_t NumLeaves() const;

  /// Number of items with no parent (Table 2, "Root items").
  size_t NumRoots() const;

  /// Number of items that are neither leaves nor roots (Table 2).
  size_t NumIntermediate() const;

  /// Average number of children over items that have children (Table 2,
  /// "Avg. fan-out"). Returns 0 for flat hierarchies.
  double AvgFanOut() const;

  /// Maximum number of children of any item (Table 2, "Max. fan-out").
  size_t MaxFanOut() const;

 private:
  std::vector<ItemId> parent_;
  std::vector<int> depth_;
  std::vector<bool> is_leaf_;
  int max_depth_ = 0;
  // Euler-tour interval labels; index 0 unused.
  std::vector<uint32_t> tin_;
  std::vector<uint32_t> tout_;
  // CSR-packed ancestor chains: chain of w is
  // anc_items_[anc_offsets_[w] .. anc_offsets_[w+1]).
  std::vector<uint32_t> anc_offsets_;
  std::vector<ItemId> anc_items_;
};

}  // namespace lash

#endif  // LASH_CORE_HIERARCHY_H_
