#ifndef LASH_CORE_VOCABULARY_H_
#define LASH_CORE_VOCABULARY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/hierarchy.h"
#include "util/types.h"

namespace lash {

/// A string dictionary with parent links, used to assemble a raw vocabulary
/// and hierarchy from application data before preprocessing.
///
/// Items receive raw ids `1, 2, ...` in insertion order; preprocessing
/// (core/flist.h) later recodes them to frequency ranks. Parents may be
/// declared before or after their children, and an item's parent may be set
/// exactly once.
///
/// Name storage is view-based so the snapshot mmap path (io/snapshot.h v2)
/// can restore a vocabulary with *zero* string copies: `names_[id]` is a
/// std::string_view into either (a) per-item strings interned by AddItem
/// (a deque — element addresses are stable), (b) one owned blob restored
/// in bulk from a copying snapshot load, or (c) the caller's mapped bytes
/// (`Restore(..., copy_blob=false)`), which must then outlive the
/// Vocabulary and every copy of it. Mixing is fine: items can be AddItem'd
/// on top of a restored vocabulary.
///
/// Copying deep-copies the names it owns but *shares* borrowed mapped
/// bytes; moves never invalidate views.
class Vocabulary {
 public:
  Vocabulary() = default;

  Vocabulary(const Vocabulary& other) { *this = other; }
  Vocabulary& operator=(const Vocabulary& other);
  Vocabulary(Vocabulary&&) noexcept = default;
  Vocabulary& operator=(Vocabulary&&) noexcept = default;

  /// Returns the id of `name`, inserting it as a new root item if unseen.
  ItemId AddItem(const std::string& name);

  /// Adds (or finds) both items and records `child → parent`. Throws
  /// std::invalid_argument if `child` already has a different parent or if
  /// child == parent.
  ItemId AddItemWithParent(const std::string& child, const std::string& parent);

  /// Records `child → parent` for two already-interned items (the snapshot
  /// restore fast path: no name hashing). Same validation as
  /// AddItemWithParent; both ids must be valid.
  void SetParent(ItemId child, ItemId parent);

  /// Pre-sizes the name/parent/index storage for `num_items` items.
  void Reserve(size_t num_items);

  /// Returns the id of `name` or kInvalidItem if unknown.
  ItemId Lookup(std::string_view name) const;

  /// Name of item `id`; `id` must be valid. The view is stable for the
  /// Vocabulary's lifetime (and, for borrowed restores, the mapping's).
  std::string_view Name(ItemId id) const { return names_[id]; }

  /// Parent of item `id`, or kInvalidItem if it is a root.
  ItemId Parent(ItemId id) const { return parent_[id]; }

  size_t NumItems() const { return names_.size() - 1; }

  /// Freezes the vocabulary into a validated raw-space Hierarchy.
  Hierarchy BuildHierarchy() const;

  /// Bulk restore for snapshot loads: `n` names concatenated in `blob`
  /// (ids 1..n in order), `ends[i]` the cumulative end offset of name
  /// `i + 1` (so name `id` is `blob[ends[id-2] .. ends[id-1])` with an
  /// implicit leading 0). With `copy_blob`, the bytes are copied into owned
  /// storage; otherwise the views borrow `blob` directly (the zero-copy
  /// mmap path) and `blob` must outlive the result. Parents start as roots;
  /// replay them with SetParent. Throws std::invalid_argument on
  /// non-monotone `ends`, an end past `blob_size`, or duplicate names (the
  /// lookup index is built eagerly and detects them).
  static Vocabulary Restore(const char* blob, size_t blob_size,
                            const uint32_t* ends, size_t n, bool copy_blob);

 private:
  // Index 0 reserved; names_[id] / parent_[id] for id >= 1.
  std::vector<std::string_view> names_{std::string_view()};
  std::vector<ItemId> parent_{kInvalidItem};
  /// AddItem storage: deque element addresses are stable under growth.
  std::deque<std::string> dynamic_;
  /// Restore(copy_blob=true) storage: one flat allocation, bulk-copied.
  std::unique_ptr<char[]> blob_;
  std::unordered_map<std::string_view, ItemId> index_;
};

}  // namespace lash

#endif  // LASH_CORE_VOCABULARY_H_
