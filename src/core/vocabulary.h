#ifndef LASH_CORE_VOCABULARY_H_
#define LASH_CORE_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/hierarchy.h"
#include "util/types.h"

namespace lash {

/// A mutable string dictionary with parent links, used to assemble a raw
/// vocabulary and hierarchy from application data before preprocessing.
///
/// Items receive raw ids `1, 2, ...` in insertion order; preprocessing
/// (core/flist.h) later recodes them to frequency ranks. Parents may be
/// declared before or after their children, and an item's parent may be set
/// exactly once.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `name`, inserting it as a new root item if unseen.
  ItemId AddItem(const std::string& name);

  /// Adds (or finds) both items and records `child → parent`. Throws
  /// std::invalid_argument if `child` already has a different parent or if
  /// child == parent.
  ItemId AddItemWithParent(const std::string& child, const std::string& parent);

  /// Records `child → parent` for two already-interned items (the snapshot
  /// restore fast path: no name hashing). Same validation as
  /// AddItemWithParent; both ids must be valid.
  void SetParent(ItemId child, ItemId parent);

  /// Pre-sizes the name/parent/index storage for `num_items` items.
  void Reserve(size_t num_items);

  /// Returns the id of `name` or kInvalidItem if unknown.
  ItemId Lookup(const std::string& name) const;

  /// Name of item `id`; `id` must be valid.
  const std::string& Name(ItemId id) const { return names_[id]; }

  /// Parent of item `id`, or kInvalidItem if it is a root.
  ItemId Parent(ItemId id) const { return parent_[id]; }

  size_t NumItems() const { return names_.size() - 1; }

  /// Freezes the vocabulary into a validated raw-space Hierarchy.
  Hierarchy BuildHierarchy() const;

 private:
  // Index 0 reserved; names_[id] / parent_[id] for id >= 1.
  std::vector<std::string> names_{""};
  std::vector<ItemId> parent_{kInvalidItem};
  std::unordered_map<std::string, ItemId> index_;
};

}  // namespace lash

#endif  // LASH_CORE_VOCABULARY_H_
