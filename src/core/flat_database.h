#ifndef LASH_CORE_FLAT_DATABASE_H_
#define LASH_CORE_FLAT_DATABASE_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "util/types.h"

namespace lash {

/// A sequence database D = {T1, ..., T|D|} (Sec. 2) in the legacy
/// vector-of-vectors form. This is the *boundary* representation — parsers
/// and generators assemble it incrementally — and the input format of the
/// preserved bench baselines; everything past preprocessing lives in the
/// CSR-backed FlatDatabase below and reads SequenceViews.
using Database = std::vector<Sequence>;

/// A non-owning view of a sequence: the unit the mining layers read.
///
/// Every read-path signature (rewrites, matching, miners, map functions)
/// takes a SequenceView, so one code path serves both storage forms: a
/// legacy `Sequence` (std::vector) converts implicitly, and a FlatDatabase
/// or CSR Partition hands out views into its arena with no per-transaction
/// allocation or pointer chase.
class SequenceView {
 public:
  using value_type = ItemId;
  using const_iterator = const ItemId*;

  constexpr SequenceView() = default;
  constexpr SequenceView(const ItemId* data, size_t size)
      : data_(data), size_(size) {}
  /// Implicit: lets every view-based signature keep accepting Sequence.
  SequenceView(const Sequence& s) : data_(s.data()), size_(s.size()) {}
  /// Implicit from a braced list, valid only for the enclosing full
  /// expression (like std::span): fine as a call argument, never store it.
  /// (That documented contract is exactly what GCC's init-list-lifetime
  /// warning flags, hence the suppression.)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  SequenceView(std::initializer_list<ItemId> items)
      : data_(items.begin()), size_(items.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  const ItemId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ItemId operator[](size_t i) const { return data_[i]; }
  ItemId front() const { return data_[0]; }
  ItemId back() const { return data_[size_ - 1]; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  /// Materializes an owning copy (boundary code and tests only; the hot
  /// paths never need one).
  Sequence ToSequence() const { return Sequence(begin(), end()); }

  friend bool operator==(SequenceView a, SequenceView b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }

 private:
  const ItemId* data_ = nullptr;
  size_t size_ = 0;
};

/// Prints "[w1 w2 ...]" (readable gtest failure output).
std::ostream& operator<<(std::ostream& out, SequenceView view);

/// A sequence database in CSR form: one contiguous item arena plus an
/// offset table, instead of one heap vector (allocation + pointer chase)
/// per transaction. This is the storage layer the paper's scale story
/// wants under the partitioned miners (Sec. 2/4): iteration is a linear
/// scan of one array, `operator[]` is two loads, and the whole corpus is
/// two buffers — which is also exactly what the one-file dataset snapshot
/// (io/snapshot.h) serializes, and what its v2 mmap load path borrows
/// *in place*.
///
/// Ownership: a FlatDatabase either owns its two buffers (the default —
/// `Add`/`AppendSlot` build it front to back, sequences immutable once
/// appended) or *borrows* them (`Borrowed`) from memory someone else keeps
/// alive, e.g. a snapshot mapping owned by the `Dataset`. Every read runs
/// through the same two pointers, so the mining layers cannot tell the
/// difference; mutating a borrowed database throws std::logic_error.
/// Copying always deep-copies into an owned database; borrowed moves/copies
/// share the borrow and require the backing memory to outlive them.
class FlatDatabase {
 public:
  FlatDatabase() : offsets_{0} { Sync(); }

  FlatDatabase(const FlatDatabase& other) { *this = other; }
  FlatDatabase& operator=(const FlatDatabase& other);
  FlatDatabase(FlatDatabase&& other) noexcept { *this = std::move(other); }
  FlatDatabase& operator=(FlatDatabase&& other) noexcept;

  size_t size() const { return num_sequences_; }
  bool empty() const { return num_sequences_ == 0; }
  /// Total items over all sequences (the arena length).
  size_t TotalItems() const { return total_items_; }

  SequenceView operator[](size_t i) const {
    return SequenceView(arena_ + offset_table_[i],
                        static_cast<size_t>(offset_table_[i + 1] -
                                            offset_table_[i]));
  }

  /// Appends one sequence (copies its items into the arena).
  void Add(SequenceView t) {
    RequireOwned("Add");
    items_.insert(items_.end(), t.begin(), t.end());
    offsets_.push_back(items_.size());
    Sync();
  }

  /// Starts a new sequence of `n` zero-initialized items and returns the
  /// slot for the caller to overwrite — the no-copy path for
  /// recoding/decoding loops (one vector grow, no intermediate Sequence;
  /// the zero fill from resize() is the only redundant pass).
  ItemId* AppendSlot(size_t n) {
    RequireOwned("AppendSlot");
    items_.resize(items_.size() + n);
    offsets_.push_back(items_.size());
    Sync();
    return items_.data() + (items_.size() - n);
  }

  void Reserve(size_t num_sequences, size_t num_items) {
    RequireOwned("Reserve");
    offsets_.reserve(num_sequences + 1);
    items_.reserve(num_items);
    Sync();
  }

  /// The raw CSR buffers (serialization, stats, tests). `offset_table()`
  /// has size() + 1 entries with offset_table()[0] == 0; the arena has
  /// TotalItems() entries.
  const ItemId* arena() const { return arena_; }
  const uint64_t* offset_table() const { return offset_table_; }
  bool borrowed() const { return borrowed_; }

  /// A non-owning database over CSR buffers someone else keeps alive (the
  /// snapshot mmap path): `offsets` must have `num_sequences + 1` entries.
  /// Validates only the two boundary entries (offsets[0] == 0 and
  /// offsets[num_sequences] == total_items — two page touches); interior
  /// monotonicity is the mapping owner's deferred-verification problem
  /// (Dataset::VerifyCorpus). Throws std::invalid_argument on a boundary
  /// mismatch.
  static FlatDatabase Borrowed(const ItemId* arena, size_t total_items,
                               const uint64_t* offsets, size_t num_sequences);

  /// Adopts already-built CSR buffers (the streaming snapshot reader fills
  /// the vectors directly — no intermediate copy). Same boundary
  /// validation as Borrowed.
  static FlatDatabase FromBuffers(std::vector<ItemId> arena,
                                  std::vector<uint64_t> offsets);

  /// Converts from / to the legacy vector-of-vectors form. Materialize is
  /// for the preserved bench baselines (LegacyPsmMiner / RunLashLegacy) and
  /// boundary code only — production paths stay on views.
  static FlatDatabase FromDatabase(const Database& db);
  Database Materialize() const;

  /// Forward iteration over SequenceViews (range-for support).
  class const_iterator {
   public:
    using value_type = SequenceView;
    using reference = SequenceView;
    using difference_type = ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator(const FlatDatabase* db, size_t i) : db_(db), i_(i) {}
    SequenceView operator*() const { return (*db_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++i_;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    const FlatDatabase* db_;
    size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  /// Content equality (ownership-independent): same offsets, same arena.
  friend bool operator==(const FlatDatabase& a, const FlatDatabase& b);

 private:
  /// Repoints the read pointers at the owned vectors (call after any
  /// owned-buffer mutation or move).
  void Sync() {
    arena_ = items_.data();
    offset_table_ = offsets_.data();
    num_sequences_ = offsets_.size() - 1;
    total_items_ = items_.size();
  }
  void RequireOwned(const char* op) const;

  // Owned storage (unused when borrowed_).
  std::vector<ItemId> items_;
  std::vector<uint64_t> offsets_;  // size() + 1 entries; offsets_[0] == 0.
  // The read surface: into the vectors above (owned) or into a caller's
  // buffers (borrowed).
  const ItemId* arena_ = nullptr;
  const uint64_t* offset_table_ = nullptr;
  size_t num_sequences_ = 0;
  size_t total_items_ = 0;
  bool borrowed_ = false;
};

}  // namespace lash

#endif  // LASH_CORE_FLAT_DATABASE_H_
