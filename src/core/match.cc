#include "core/match.h"

#include <algorithm>

namespace lash {

namespace {

// Marks reach[i] = true for every position i of t where an embedding of the
// prefix s[0..j] ends, level by level. Returns false early if a level has no
// reachable position.
//
// Transition: position i is reachable at level j iff t[i] →* s[j] and some
// position i' with i-gamma-1 <= i' <= i-1 is reachable at level j-1.
bool ComputeReachable(const Sequence& s, SequenceView t, const Hierarchy& h,
                      uint32_t gamma, std::vector<char>* reach) {
  const size_t m = t.size();
  reach->assign(m, 0);
  bool any = false;
  for (size_t i = 0; i < m; ++i) {
    if (IsItem(t[i]) && h.GeneralizesTo(t[i], s[0])) {
      (*reach)[i] = 1;
      any = true;
    }
  }
  if (!any) return false;
  std::vector<char> next(m, 0);
  for (size_t j = 1; j < s.size(); ++j) {
    std::fill(next.begin(), next.end(), 0);
    any = false;
    // window_count = number of reachable positions in [i-gamma-1, i-1].
    size_t window_count = 0;
    for (size_t i = 0; i < m; ++i) {
      if (i >= 1 && (*reach)[i - 1]) ++window_count;
      const size_t window = static_cast<size_t>(gamma) + 1;
      if (i >= window + 1 && (*reach)[i - window - 1]) --window_count;
      if (window_count > 0 && IsItem(t[i]) && h.GeneralizesTo(t[i], s[j])) {
        next[i] = 1;
        any = true;
      }
    }
    reach->swap(next);
    if (!any) return false;
  }
  return true;
}

}  // namespace

bool Matches(const Sequence& s, SequenceView t, const Hierarchy& h,
             uint32_t gamma) {
  if (s.empty() || s.size() > t.size()) return false;
  std::vector<char> reach;
  return ComputeReachable(s, t, h, gamma, &reach);
}

std::vector<uint32_t> MatchEndPositions(const Sequence& s, SequenceView t,
                                        const Hierarchy& h, uint32_t gamma) {
  std::vector<uint32_t> out;
  if (s.empty() || s.size() > t.size()) return out;
  std::vector<char> reach;
  if (!ComputeReachable(s, t, h, gamma, &reach)) return out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (reach[i]) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<Embedding> MatchEmbeddings(const Sequence& s, SequenceView t,
                                       const Hierarchy& h, uint32_t gamma) {
  std::vector<Embedding> out;
  if (s.empty() || s.size() > t.size()) return out;
  const size_t m = t.size();
  // starts[i] = sorted distinct start positions of embeddings of the current
  // prefix that end at i.
  std::vector<std::vector<uint32_t>> starts(m);
  for (size_t i = 0; i < m; ++i) {
    if (IsItem(t[i]) && h.GeneralizesTo(t[i], s[0])) {
      starts[i].push_back(static_cast<uint32_t>(i));
    }
  }
  for (size_t j = 1; j < s.size(); ++j) {
    std::vector<std::vector<uint32_t>> next(m);
    for (size_t i = 0; i < m; ++i) {
      if (!IsItem(t[i]) || !h.GeneralizesTo(t[i], s[j])) continue;
      const size_t window = static_cast<size_t>(gamma) + 1;
      size_t lo = i >= window ? i - window : 0;
      // Concatenate the window's start lists, then sort+unique once —
      // repeated pairwise set_union is quadratic in the window's total size.
      std::vector<uint32_t> merged;
      for (size_t p = lo; p < i; ++p) {
        merged.insert(merged.end(), starts[p].begin(), starts[p].end());
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      next[i] = std::move(merged);
    }
    starts.swap(next);
  }
  for (size_t i = 0; i < m; ++i) {
    for (uint32_t st : starts[i]) {
      out.push_back(Embedding{st, static_cast<uint32_t>(i)});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lash
