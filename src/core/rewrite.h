#ifndef LASH_CORE_REWRITE_H_
#define LASH_CORE_REWRITE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/flat_database.h"
#include "core/hierarchy.h"
#include "util/types.h"

namespace lash {

/// Partition construction rewrites (Sec. 4).
///
/// Given a pivot item `w`, `Rewriter::Rewrite` turns an input sequence `T`
/// into a w-equivalent sequence `P_w(T)` (Lemma 3) that is as small as
/// possible:
///
///  1. *w-generalization* (Sec. 4.2): every w-irrelevant item (rank > w) is
///     replaced by its most specific ancestor with rank <= w, or by the
///     blank placeholder if no such ancestor exists.
///  2. *Unreachability reduction* (Sec. 4.3): indexes whose minimum pivot
///     distance exceeds lambda are blanked out. The pivot distance of an
///     index is the size of the smallest chain of increasing indexes from a
///     pivot index to it where consecutive chain members are at most gamma
///     items apart and intermediate members are non-blank.
///  3. *Isolated pivot removal* (Sec. 4.3): a pivot occurrence with no
///     non-blank neighbour within gamma+1 positions cannot appear in any
///     pattern of length >= 2 and is blanked out.
///  4. *Blank compression* (Sec. 4.3): leading/trailing blanks are dropped
///     and every run of more than gamma+1 blanks is truncated to exactly
///     gamma+1 (still unbridgeable under the gap constraint).
///
/// Unlike MG-FSM we never *delete* an interior index: deletion changes the
/// positions of surviving items and therefore the gap structure; blanking
/// preserves it exactly, and step 4 recovers (almost all of) the size
/// benefit. The w-equivalency property test in tests/rewrite_test.cc checks
/// G_{w,λ}(T) == G_{w,λ}(Rewrite(T)) against the naive enumerator.
class Rewriter {
 public:
  /// The hierarchy must be in rank space (IsRankMonotone()).
  Rewriter(const Hierarchy* hierarchy, uint32_t gamma, uint32_t lambda);

  /// Computes P_w(T). Returns an empty sequence when the rewrite proves that
  /// T contributes no pivot sequence for pivot `w` (no pivot index survives
  /// or fewer than 2 items remain).
  Sequence Rewrite(SequenceView t, ItemId pivot) const;

  /// Step 1 alone; exposed for tests.
  Sequence Generalize(SequenceView t, ItemId pivot) const;

  /// Computes the minimum pivot distances of every index of a
  /// w-generalized sequence; "infinite" is represented by kUnreachable.
  /// Exposed for tests (reproduces the distance table of Sec. 4.3).
  std::vector<uint32_t> MinPivotDistances(SequenceView t,
                                          ItemId pivot) const;

  static constexpr uint32_t kUnreachable = 0xffffffffu;

 private:
  const Hierarchy* hierarchy_;
  uint32_t gamma_;
  uint32_t lambda_;
};

/// Allocation-free variant of Rewriter for the LASH map hot loop (the
/// partitioning phase rewrites every transaction once per pivot, so the
/// rewrite pipeline runs |D| * avg|G1(T)| times per job). All temporaries
/// live in the object and `Rewrite` writes into a caller-owned buffer that
/// is reused across pivots; a warm instance performs no heap allocation.
///
/// For gamma == 0 (the paper's n-gram setting, used by every NYT series)
/// the whole post-generalization pipeline collapses into one run-based
/// scan: chains cannot cross blanks, so unreachability is the distance to
/// the nearest in-run pivot, isolated-pivot removal is "drop singleton
/// runs", and blank compression falls out of the emission order. Identical
/// output to Rewriter (differential-tested in tests/rewrite_test.cc).
///
/// Instances are NOT thread-safe; the LASH driver keeps one per pool worker.
class ScratchRewriter {
 public:
  /// The hierarchy must be in rank space (IsRankMonotone()).
  ScratchRewriter(const Hierarchy* hierarchy, uint32_t gamma, uint32_t lambda);

  /// Computes P_w(T) into *out (clobbered). Returns false — with *out left
  /// empty — exactly when Rewriter::Rewrite would return an empty sequence.
  bool Rewrite(SequenceView t, ItemId pivot, Sequence* out);

  /// Step 1 (w-generalization) alone, into *out (clobbered).
  void Generalize(SequenceView t, ItemId pivot, Sequence* out) const;

  /// The gamma == 0 LASH partitioning loop, fused: computes [w | P_w(T)]
  /// for *every* frequent pivot w of G1(T) and calls `emit_key(key)` for
  /// each non-empty rewrite, with pivots ascending. Exactly equivalent to
  /// collecting G1(T), calling Rewrite per pivot and prepending the pivot —
  /// but occurrence-driven: instead of re-scanning the whole transaction
  /// once per pivot, it collects (pivot, position) occurrence pairs in one
  /// chain walk (gen_w(T)[i] == w iff w is an ancestor-or-self of T[i]),
  /// and per pivot touches only the <= lambda-1 neighborhood of its
  /// occurrences. Reachability is a root-rank test: gen_w(T)[j] is blank
  /// iff rank(root(T[j])) > w, so the interval walks never generalize
  /// positions they do not keep. Requires gamma == 0 (callers dispatch).
  template <typename EmitKey>
  void RewriteAllPivotsGammaZero(SequenceView t, ItemId num_frequent,
                                 EmitKey&& emit_key) {
    const size_t m = t.size();
    const size_t reach = static_cast<size_t>(lambda_) - 1;
    // Occurrence pairs (pivot << 32 | position) and per-position chain
    // roots; both reused across calls.
    pairs_.clear();
    root_rank_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      if (!IsItem(t[i])) {
        root_rank_[i] = kBlank;
        continue;
      }
      auto chain = hierarchy_->AncestorSpan(t[i]);
      root_rank_[i] = chain.back();
      for (ItemId a : chain) {
        if (a <= num_frequent) {
          pairs_.push_back(static_cast<uint64_t>(a) << 32 | i);
        }
      }
    }
    std::sort(pairs_.begin(), pairs_.end());

    constexpr size_t kNone = static_cast<size_t>(-1);
    size_t g = 0;
    while (g < pairs_.size()) {
      const ItemId w = static_cast<ItemId>(pairs_[g] >> 32);
      gen_.clear();  // Key buffer: [w | P_w(T)].
      gen_.push_back(w);
      size_t cur_lo = kNone, cur_hi = kNone;
      auto flush = [&](size_t next_lo) {
        // Emits [cur_lo, cur_hi]; a following interval is separated by one
        // blank (the compressed remains of everything between them).
        if (cur_lo == kNone) return;
        if (gen_.size() > 1) gen_.push_back(kBlank);
        for (size_t j = cur_lo; j <= cur_hi; ++j) {
          ItemId value = kBlank;
          for (ItemId a : hierarchy_->AncestorSpan(t[j])) {
            if (a <= w) {
              value = a;
              break;
            }
          }
          gen_.push_back(value);
        }
        cur_lo = next_lo;
      };
      for (; g < pairs_.size() && (pairs_[g] >> 32) == w; ++g) {
        const size_t p = static_cast<size_t>(
            static_cast<uint32_t>(pairs_[g]));
        // Walk to the farthest reachable index on each side: adjacent
        // steps only (gamma == 0), never across a blank (root > w), chain
        // size |p - j| + 1 <= lambda.
        size_t lo = p;
        while (lo > 0 && p - (lo - 1) <= reach && root_rank_[lo - 1] <= w) {
          --lo;
        }
        size_t hi = p;
        while (hi + 1 < m && (hi + 1) - p <= reach &&
               root_rank_[hi + 1] <= w) {
          ++hi;
        }
        if (lo == hi) continue;  // Isolated pivot occurrence (Sec. 4.3).
        if (cur_lo != kNone && lo <= cur_hi + 1) {
          if (hi > cur_hi) cur_hi = hi;  // Merge into the open interval.
        } else {
          flush(lo);
          if (cur_lo == kNone) cur_lo = lo;
          cur_hi = hi;
        }
      }
      flush(kNone);
      if (gen_.size() > 1) emit_key(static_cast<const Sequence&>(gen_));
    }
  }

 private:
  bool RewriteGammaZero(SequenceView t, ItemId pivot, Sequence* out);

  const Hierarchy* hierarchy_;
  uint32_t gamma_;
  uint32_t lambda_;
  Sequence gen_;
  std::vector<uint32_t> left_;
  std::vector<uint32_t> right_;
  std::vector<uint64_t> pairs_;
  std::vector<ItemId> root_rank_;
};

}  // namespace lash

#endif  // LASH_CORE_REWRITE_H_
