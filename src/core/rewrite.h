#ifndef LASH_CORE_REWRITE_H_
#define LASH_CORE_REWRITE_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "util/types.h"

namespace lash {

/// Partition construction rewrites (Sec. 4).
///
/// Given a pivot item `w`, `Rewriter::Rewrite` turns an input sequence `T`
/// into a w-equivalent sequence `P_w(T)` (Lemma 3) that is as small as
/// possible:
///
///  1. *w-generalization* (Sec. 4.2): every w-irrelevant item (rank > w) is
///     replaced by its most specific ancestor with rank <= w, or by the
///     blank placeholder if no such ancestor exists.
///  2. *Unreachability reduction* (Sec. 4.3): indexes whose minimum pivot
///     distance exceeds lambda are blanked out. The pivot distance of an
///     index is the size of the smallest chain of increasing indexes from a
///     pivot index to it where consecutive chain members are at most gamma
///     items apart and intermediate members are non-blank.
///  3. *Isolated pivot removal* (Sec. 4.3): a pivot occurrence with no
///     non-blank neighbour within gamma+1 positions cannot appear in any
///     pattern of length >= 2 and is blanked out.
///  4. *Blank compression* (Sec. 4.3): leading/trailing blanks are dropped
///     and every run of more than gamma+1 blanks is truncated to exactly
///     gamma+1 (still unbridgeable under the gap constraint).
///
/// Unlike MG-FSM we never *delete* an interior index: deletion changes the
/// positions of surviving items and therefore the gap structure; blanking
/// preserves it exactly, and step 4 recovers (almost all of) the size
/// benefit. The w-equivalency property test in tests/rewrite_test.cc checks
/// G_{w,λ}(T) == G_{w,λ}(Rewrite(T)) against the naive enumerator.
class Rewriter {
 public:
  /// The hierarchy must be in rank space (IsRankMonotone()).
  Rewriter(const Hierarchy* hierarchy, uint32_t gamma, uint32_t lambda);

  /// Computes P_w(T). Returns an empty sequence when the rewrite proves that
  /// T contributes no pivot sequence for pivot `w` (no pivot index survives
  /// or fewer than 2 items remain).
  Sequence Rewrite(const Sequence& t, ItemId pivot) const;

  /// Step 1 alone; exposed for tests.
  Sequence Generalize(const Sequence& t, ItemId pivot) const;

  /// Computes the minimum pivot distances of every index of a
  /// w-generalized sequence; "infinite" is represented by kUnreachable.
  /// Exposed for tests (reproduces the distance table of Sec. 4.3).
  std::vector<uint32_t> MinPivotDistances(const Sequence& t, ItemId pivot) const;

  static constexpr uint32_t kUnreachable = 0xffffffffu;

 private:
  const Hierarchy* hierarchy_;
  uint32_t gamma_;
  uint32_t lambda_;
};

}  // namespace lash

#endif  // LASH_CORE_REWRITE_H_
