#ifndef LASH_CORE_REWRITE_H_
#define LASH_CORE_REWRITE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/flat_database.h"
#include "core/hierarchy.h"
#include "util/types.h"

namespace lash {

/// Partition construction rewrites (Sec. 4).
///
/// Given a pivot item `w`, `Rewriter::Rewrite` turns an input sequence `T`
/// into a w-equivalent sequence `P_w(T)` (Lemma 3) that is as small as
/// possible:
///
///  1. *w-generalization* (Sec. 4.2): every w-irrelevant item (rank > w) is
///     replaced by its most specific ancestor with rank <= w, or by the
///     blank placeholder if no such ancestor exists.
///  2. *Unreachability reduction* (Sec. 4.3): indexes whose minimum pivot
///     distance exceeds lambda are blanked out. The pivot distance of an
///     index is the size of the smallest chain of increasing indexes from a
///     pivot index to it where consecutive chain members are at most gamma
///     items apart and intermediate members are non-blank.
///  3. *Isolated pivot removal* (Sec. 4.3): a pivot occurrence with no
///     non-blank neighbour within gamma+1 positions cannot appear in any
///     pattern of length >= 2 and is blanked out.
///  4. *Blank compression* (Sec. 4.3): leading/trailing blanks are dropped
///     and every run of more than gamma+1 blanks is truncated to exactly
///     gamma+1 (still unbridgeable under the gap constraint).
///
/// Unlike MG-FSM we never *delete* an interior index: deletion changes the
/// positions of surviving items and therefore the gap structure; blanking
/// preserves it exactly, and step 4 recovers (almost all of) the size
/// benefit. The w-equivalency property test in tests/rewrite_test.cc checks
/// G_{w,λ}(T) == G_{w,λ}(Rewrite(T)) against the naive enumerator.
class Rewriter {
 public:
  /// The hierarchy must be in rank space (IsRankMonotone()).
  Rewriter(const Hierarchy* hierarchy, uint32_t gamma, uint32_t lambda);

  /// Computes P_w(T). Returns an empty sequence when the rewrite proves that
  /// T contributes no pivot sequence for pivot `w` (no pivot index survives
  /// or fewer than 2 items remain).
  Sequence Rewrite(SequenceView t, ItemId pivot) const;

  /// Step 1 alone; exposed for tests.
  Sequence Generalize(SequenceView t, ItemId pivot) const;

  /// Computes the minimum pivot distances of every index of a
  /// w-generalized sequence; "infinite" is represented by kUnreachable.
  /// Exposed for tests (reproduces the distance table of Sec. 4.3).
  std::vector<uint32_t> MinPivotDistances(SequenceView t,
                                          ItemId pivot) const;

  static constexpr uint32_t kUnreachable = 0xffffffffu;

 private:
  const Hierarchy* hierarchy_;
  uint32_t gamma_;
  uint32_t lambda_;
};

/// Allocation-free variant of Rewriter for the LASH map hot loop (the
/// partitioning phase rewrites every transaction once per pivot, so the
/// rewrite pipeline runs |D| * avg|G1(T)| times per job). All temporaries
/// live in the object and `Rewrite` writes into a caller-owned buffer that
/// is reused across pivots; a warm instance performs no heap allocation.
///
/// For gamma == 0 (the paper's n-gram setting, used by every NYT series)
/// the whole post-generalization pipeline collapses into one run-based
/// scan: chains cannot cross blanks, so unreachability is the distance to
/// the nearest in-run pivot, isolated-pivot removal is "drop singleton
/// runs", and blank compression falls out of the emission order. Identical
/// output to Rewriter (differential-tested in tests/rewrite_test.cc).
///
/// Instances are NOT thread-safe; the LASH driver keeps one per pool worker.
class ScratchRewriter {
 public:
  /// The hierarchy must be in rank space (IsRankMonotone()).
  ScratchRewriter(const Hierarchy* hierarchy, uint32_t gamma, uint32_t lambda);

  /// Computes P_w(T) into *out (clobbered). Returns false — with *out left
  /// empty — exactly when Rewriter::Rewrite would return an empty sequence.
  bool Rewrite(SequenceView t, ItemId pivot, Sequence* out);

  /// Step 1 (w-generalization) alone, into *out (clobbered).
  void Generalize(SequenceView t, ItemId pivot, Sequence* out) const;

  /// The fused LASH partitioning loop: computes [w | P_w(T)] for *every*
  /// frequent pivot w of G1(T) and calls `emit_key(key)` for each
  /// non-empty rewrite, with pivots ascending. Exactly equivalent to
  /// collecting G1(T), calling Rewrite per pivot and prepending the pivot —
  /// but occurrence-driven: one ancestor-chain walk collects
  /// (pivot, position) occurrence pairs (gen_w(T)[i] == w iff w is an
  /// ancestor-or-self of T[i]), then each pivot rewrites only the bounded
  /// neighborhood of its occurrences instead of re-scanning the whole
  /// transaction. For gamma == 0 that neighborhood is the lambda-1 run
  /// walk of RewriteAllPivotsGammaZero; for gamma > 0 it is the merged
  /// (lambda-1)*(gamma+1)-radius occurrence windows of
  /// RewriteAllPivotsGammaPositive, with the full distance DP run inside
  /// each window (a chain of size <= lambda never leaves the window of the
  /// occurrence it starts from, so the windowed DP is exact).
  template <typename EmitKey>
  void RewriteAllPivots(SequenceView t, ItemId num_frequent,
                        EmitKey&& emit_key) {
    if (gamma_ == 0) {
      RewriteAllPivotsGammaZero(t, num_frequent,
                                std::forward<EmitKey>(emit_key));
    } else {
      RewriteAllPivotsGammaPositive(t, num_frequent,
                                    std::forward<EmitKey>(emit_key));
    }
  }

  /// The gamma == 0 specialization of RewriteAllPivots: chains cannot
  /// cross blanks, so reachability is a run walk and no distance DP is
  /// needed. Reachability is a root-rank test: gen_w(T)[j] is blank iff
  /// rank(root(T[j])) > w, so the interval walks never generalize
  /// positions they do not keep. Requires gamma == 0 (callers dispatch).
  template <typename EmitKey>
  void RewriteAllPivotsGammaZero(SequenceView t, ItemId num_frequent,
                                 EmitKey&& emit_key) {
    const size_t m = t.size();
    const size_t reach = static_cast<size_t>(lambda_) - 1;
    // Occurrence pairs (pivot << 32 | position) and per-position chain
    // roots; both reused across calls.
    pairs_.clear();
    root_rank_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      if (!IsItem(t[i])) {
        root_rank_[i] = kBlank;
        continue;
      }
      auto chain = hierarchy_->AncestorSpan(t[i]);
      root_rank_[i] = chain.back();
      for (ItemId a : chain) {
        if (a <= num_frequent) {
          pairs_.push_back(static_cast<uint64_t>(a) << 32 | i);
        }
      }
    }
    std::sort(pairs_.begin(), pairs_.end());

    constexpr size_t kNone = static_cast<size_t>(-1);
    size_t g = 0;
    while (g < pairs_.size()) {
      const ItemId w = static_cast<ItemId>(pairs_[g] >> 32);
      gen_.clear();  // Key buffer: [w | P_w(T)].
      gen_.push_back(w);
      size_t cur_lo = kNone, cur_hi = kNone;
      auto flush = [&](size_t next_lo) {
        // Emits [cur_lo, cur_hi]; a following interval is separated by one
        // blank (the compressed remains of everything between them).
        if (cur_lo == kNone) return;
        if (gen_.size() > 1) gen_.push_back(kBlank);
        for (size_t j = cur_lo; j <= cur_hi; ++j) {
          ItemId value = kBlank;
          for (ItemId a : hierarchy_->AncestorSpan(t[j])) {
            if (a <= w) {
              value = a;
              break;
            }
          }
          gen_.push_back(value);
        }
        cur_lo = next_lo;
      };
      for (; g < pairs_.size() && (pairs_[g] >> 32) == w; ++g) {
        const size_t p = static_cast<size_t>(
            static_cast<uint32_t>(pairs_[g]));
        // Walk to the farthest reachable index on each side: adjacent
        // steps only (gamma == 0), never across a blank (root > w), chain
        // size |p - j| + 1 <= lambda.
        size_t lo = p;
        while (lo > 0 && p - (lo - 1) <= reach && root_rank_[lo - 1] <= w) {
          --lo;
        }
        size_t hi = p;
        while (hi + 1 < m && (hi + 1) - p <= reach &&
               root_rank_[hi + 1] <= w) {
          ++hi;
        }
        if (lo == hi) continue;  // Isolated pivot occurrence (Sec. 4.3).
        if (cur_lo != kNone && lo <= cur_hi + 1) {
          if (hi > cur_hi) cur_hi = hi;  // Merge into the open interval.
        } else {
          flush(lo);
          if (cur_lo == kNone) cur_lo = lo;
          cur_hi = hi;
        }
      }
      flush(kNone);
      if (gen_.size() > 1) emit_key(static_cast<const Sequence&>(gen_));
    }
  }

  /// The gamma > 0 generalization of the fused loop. A chain of size
  /// <= lambda with steps <= gamma+1 apart spans at most
  /// R = (lambda-1)*(gamma+1) positions, so everything a pivot occurrence
  /// at position p can keep lives in [p-R, p+R]. Overlapping/adjacent
  /// occurrence windows are merged and the Rewriter distance recurrence
  /// runs inside each merged interval only (no chain of size <= lambda
  /// leaves its interval: every member is within R of the occurrence the
  /// chain starts at). Isolated-pivot removal needs cross-interval
  /// visibility — two survivors in different intervals can still be
  /// within gamma+1 positions of each other — so it runs on the global
  /// survivor list, with the same mark-then-remove two-phase semantics as
  /// Rewriter::Rewrite. Blank compression falls out of the emission:
  /// every position between two survivors is blank post-reduction, so
  /// min(position gap, gamma+1) blanks separate them.
  template <typename EmitKey>
  void RewriteAllPivotsGammaPositive(SequenceView t, ItemId num_frequent,
                                     EmitKey&& emit_key) {
    const size_t m = t.size();
    const size_t window = static_cast<size_t>(gamma_) + 1;
    const size_t reach = static_cast<size_t>(lambda_ - 1) * window;
    constexpr uint32_t kUnreachable = Rewriter::kUnreachable;
    constexpr size_t kNone = static_cast<size_t>(-1);
    pairs_.clear();
    root_rank_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      if (!IsItem(t[i])) {
        root_rank_[i] = kBlank;
        continue;
      }
      auto chain = hierarchy_->AncestorSpan(t[i]);
      root_rank_[i] = chain.back();
      for (ItemId a : chain) {
        if (a <= num_frequent) {
          pairs_.push_back(static_cast<uint64_t>(a) << 32 | i);
        }
      }
    }
    std::sort(pairs_.begin(), pairs_.end());
    if (pivot_mark_.size() < m) pivot_mark_.resize(m, 0);
    left_.resize(m);
    right_.resize(m);

    size_t g = 0;
    while (g < pairs_.size()) {
      const ItemId w = static_cast<ItemId>(pairs_[g] >> 32);
      const size_t g0 = g;
      if (++pivot_epoch_ == 0) {  // Wrapped: stale marks could collide.
        std::fill(pivot_mark_.begin(), pivot_mark_.end(), 0u);
        pivot_epoch_ = 1;
      }
      for (; g < pairs_.size() && (pairs_[g] >> 32) == w; ++g) {
        pivot_mark_[static_cast<uint32_t>(pairs_[g])] = pivot_epoch_;
      }
      surv_.clear();

      // Distance DP over one merged interval [lo, hi]; survivors (non-blank
      // positions with min chain size <= lambda) append to surv_ with a
      // pivot flag in the low bit. Same recurrence as
      // Rewriter::MinPivotDistances, with the scan clamped to the interval.
      auto run_interval = [&](size_t lo, size_t hi) {
        for (size_t i = lo; i <= hi; ++i) {
          left_[i] = pivot_mark_[i] == pivot_epoch_ ? 1 : kUnreachable;
          const size_t jlo = i >= lo + window ? i - window : lo;
          for (size_t j = jlo; j < i; ++j) {
            if (root_rank_[j] <= w && left_[j] != kUnreachable &&
                left_[j] + 1 < left_[i]) {
              left_[i] = left_[j] + 1;
            }
          }
        }
        for (size_t ii = hi + 1; ii-- > lo;) {
          right_[ii] = pivot_mark_[ii] == pivot_epoch_ ? 1 : kUnreachable;
          const size_t jhi = std::min(hi, ii + window);
          for (size_t j = ii + 1; j <= jhi; ++j) {
            if (root_rank_[j] <= w && right_[j] != kUnreachable &&
                right_[j] + 1 < right_[ii]) {
              right_[ii] = right_[j] + 1;
            }
          }
        }
        for (size_t i = lo; i <= hi; ++i) {
          if (root_rank_[i] > w) continue;  // Blank in gen_w(T).
          const uint32_t d = std::min(left_[i], right_[i]);
          if (d == kUnreachable || d > lambda_) continue;  // Unreachable.
          surv_.push_back(static_cast<uint32_t>(i) << 1 |
                          (pivot_mark_[i] == pivot_epoch_ ? 1u : 0u));
        }
      };
      size_t cur_lo = kNone, cur_hi = 0;
      for (size_t k = g0; k < g; ++k) {
        const size_t p = static_cast<uint32_t>(pairs_[k]);
        const size_t lo = p >= reach ? p - reach : 0;
        const size_t hi = std::min(m - 1, p + reach);
        if (cur_lo != kNone && lo <= cur_hi + 1) {
          if (hi > cur_hi) cur_hi = hi;
        } else {
          if (cur_lo != kNone) run_interval(cur_lo, cur_hi);
          cur_lo = lo;
          cur_hi = hi;
        }
      }
      if (cur_lo != kNone) run_interval(cur_lo, cur_hi);

      // Isolated pivot removal + blank compression + emit. A surviving
      // pivot with no other survivor within gamma+1 positions is dropped;
      // nearest-survivor distance suffices because surv_ is position-
      // sorted, and checking against the pre-removal list reproduces
      // Rewriter's mark-then-remove order (a pivot that is itself about
      // to be removed still counts as a neighbor during marking).
      const size_t ns = surv_.size();
      gen_.clear();
      gen_.push_back(w);
      size_t non_blank = 0;
      bool has_pivot = false;
      size_t last_pos = kNone;
      for (size_t k = 0; k < ns; ++k) {
        const size_t pos = surv_[k] >> 1;
        if (surv_[k] & 1) {
          const bool near_prev = k > 0 && pos - (surv_[k - 1] >> 1) <= window;
          const bool near_next =
              k + 1 < ns && (surv_[k + 1] >> 1) - pos <= window;
          if (!near_prev && !near_next) continue;  // Isolated (Sec. 4.3).
          has_pivot = true;
        }
        if (last_pos != kNone) {
          const size_t blanks = std::min(pos - last_pos - 1, window);
          gen_.insert(gen_.end(), blanks, kBlank);
        }
        // Most specific ancestor with rank <= w (first chain hit; ranks
        // strictly decrease along the chain). Never blank: root_rank <= w.
        ItemId value = kBlank;
        for (ItemId a : hierarchy_->AncestorSpan(t[pos])) {
          if (a <= w) {
            value = a;
            break;
          }
        }
        gen_.push_back(value);
        ++non_blank;
        last_pos = pos;
      }
      if (has_pivot && non_blank >= 2) {
        emit_key(static_cast<const Sequence&>(gen_));
      }
    }
  }

 private:
  bool RewriteGammaZero(SequenceView t, ItemId pivot, Sequence* out);

  const Hierarchy* hierarchy_;
  uint32_t gamma_;
  uint32_t lambda_;
  Sequence gen_;
  std::vector<uint32_t> left_;
  std::vector<uint32_t> right_;
  std::vector<uint64_t> pairs_;
  std::vector<ItemId> root_rank_;
  std::vector<uint32_t> surv_;        // Gamma > 0 loop: pos << 1 | is_pivot.
  std::vector<uint32_t> pivot_mark_;  // Epoch-stamped pivot occurrence marks.
  uint32_t pivot_epoch_ = 0;
};

}  // namespace lash

#endif  // LASH_CORE_REWRITE_H_
