#include "core/rewrite.h"

#include <algorithm>
#include <stdexcept>

namespace lash {

Rewriter::Rewriter(const Hierarchy* hierarchy, uint32_t gamma, uint32_t lambda)
    : hierarchy_(hierarchy), gamma_(gamma), lambda_(lambda) {
  if (!hierarchy_->IsRankMonotone()) {
    throw std::invalid_argument("Rewriter: hierarchy must be rank-monotone");
  }
}

Sequence Rewriter::Generalize(const Sequence& t, ItemId pivot) const {
  Sequence out;
  out.reserve(t.size());
  for (ItemId w : t) {
    if (!IsItem(w)) {
      out.push_back(kBlank);
      continue;
    }
    if (w <= pivot) {
      out.push_back(w);
      continue;
    }
    // Scan the packed chain above w; ancestor ranks strictly decrease, so
    // the first ancestor with rank <= pivot is the most specific
    // ("largest") sufficiently small one.
    ItemId replacement = kBlank;
    for (ItemId a : hierarchy_->AncestorSpan(w).subspan(1)) {
      if (a <= pivot) {
        replacement = a;
        break;
      }
    }
    out.push_back(replacement);
  }
  return out;
}

std::vector<uint32_t> Rewriter::MinPivotDistances(const Sequence& t,
                                                  ItemId pivot) const {
  const size_t m = t.size();
  const size_t window = static_cast<size_t>(gamma_) + 1;
  std::vector<uint32_t> left(m, kUnreachable), right(m, kUnreachable);
  // Left distances: chains move rightward from a pivot index; chain members
  // other than the target must be non-blank.
  for (size_t i = 0; i < m; ++i) {
    if (t[i] == pivot) left[i] = 1;
    size_t lo = i >= window ? i - window : 0;
    for (size_t j = lo; j < i; ++j) {
      if (t[j] != kBlank && left[j] != kUnreachable && left[j] + 1 < left[i]) {
        left[i] = left[j] + 1;
      }
    }
  }
  for (size_t ii = m; ii-- > 0;) {
    if (t[ii] == pivot) right[ii] = 1;
    size_t hi = std::min(m, ii + window + 1);
    for (size_t j = ii + 1; j < hi; ++j) {
      if (t[j] != kBlank && right[j] != kUnreachable && right[j] + 1 < right[ii]) {
        right[ii] = right[j] + 1;
      }
    }
  }
  std::vector<uint32_t> dist(m);
  for (size_t i = 0; i < m; ++i) dist[i] = std::min(left[i], right[i]);
  return dist;
}

Sequence Rewriter::Rewrite(const Sequence& t, ItemId pivot) const {
  Sequence gen = Generalize(t, pivot);

  // Unreachability reduction: blank out indexes farther than lambda from
  // every pivot occurrence.
  std::vector<uint32_t> dist = MinPivotDistances(gen, pivot);
  bool has_pivot = false;
  for (size_t i = 0; i < gen.size(); ++i) {
    if (dist[i] == kUnreachable || dist[i] > lambda_) gen[i] = kBlank;
    if (gen[i] == pivot) has_pivot = true;
  }
  if (!has_pivot) return {};

  // Isolated pivot removal: a pivot with no non-blank item within gamma+1
  // positions cannot be part of a pattern of length >= 2.
  const size_t m = gen.size();
  const size_t window = static_cast<size_t>(gamma_) + 1;
  std::vector<char> isolated(m, 0);
  for (size_t i = 0; i < m; ++i) {
    if (gen[i] != pivot) continue;
    bool has_neighbor = false;
    size_t lo = i >= window ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi && !has_neighbor; ++j) {
      if (j != i && gen[j] != kBlank) has_neighbor = true;
    }
    if (!has_neighbor) isolated[i] = 1;
  }
  has_pivot = false;
  for (size_t i = 0; i < m; ++i) {
    if (isolated[i]) gen[i] = kBlank;
    if (gen[i] == pivot) has_pivot = true;
  }
  if (!has_pivot) return {};

  // Blank compression: strip leading/trailing blanks; cap runs at gamma+1.
  Sequence out;
  out.reserve(m);
  size_t run = 0;
  for (ItemId w : gen) {
    if (w == kBlank) {
      ++run;
      if (!out.empty() && run <= window) out.push_back(kBlank);
    } else {
      run = 0;
      out.push_back(w);
    }
  }
  while (!out.empty() && out.back() == kBlank) out.pop_back();

  size_t non_blank = 0;
  for (ItemId w : out) {
    if (w != kBlank) ++non_blank;
  }
  if (non_blank < 2) return {};
  return out;
}

}  // namespace lash
