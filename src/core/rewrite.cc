#include "core/rewrite.h"

#include <algorithm>
#include <stdexcept>

namespace lash {

Rewriter::Rewriter(const Hierarchy* hierarchy, uint32_t gamma, uint32_t lambda)
    : hierarchy_(hierarchy), gamma_(gamma), lambda_(lambda) {
  if (!hierarchy_->IsRankMonotone()) {
    throw std::invalid_argument("Rewriter: hierarchy must be rank-monotone");
  }
}

Sequence Rewriter::Generalize(SequenceView t, ItemId pivot) const {
  Sequence out;
  out.reserve(t.size());
  for (ItemId w : t) {
    if (!IsItem(w)) {
      out.push_back(kBlank);
      continue;
    }
    if (w <= pivot) {
      out.push_back(w);
      continue;
    }
    // Scan the packed chain above w; ancestor ranks strictly decrease, so
    // the first ancestor with rank <= pivot is the most specific
    // ("largest") sufficiently small one.
    ItemId replacement = kBlank;
    for (ItemId a : hierarchy_->AncestorSpan(w).subspan(1)) {
      if (a <= pivot) {
        replacement = a;
        break;
      }
    }
    out.push_back(replacement);
  }
  return out;
}

std::vector<uint32_t> Rewriter::MinPivotDistances(SequenceView t,
                                                  ItemId pivot) const {
  const size_t m = t.size();
  const size_t window = static_cast<size_t>(gamma_) + 1;
  std::vector<uint32_t> left(m, kUnreachable), right(m, kUnreachable);
  // Left distances: chains move rightward from a pivot index; chain members
  // other than the target must be non-blank.
  for (size_t i = 0; i < m; ++i) {
    if (t[i] == pivot) left[i] = 1;
    size_t lo = i >= window ? i - window : 0;
    for (size_t j = lo; j < i; ++j) {
      if (t[j] != kBlank && left[j] != kUnreachable && left[j] + 1 < left[i]) {
        left[i] = left[j] + 1;
      }
    }
  }
  for (size_t ii = m; ii-- > 0;) {
    if (t[ii] == pivot) right[ii] = 1;
    size_t hi = std::min(m, ii + window + 1);
    for (size_t j = ii + 1; j < hi; ++j) {
      if (t[j] != kBlank && right[j] != kUnreachable && right[j] + 1 < right[ii]) {
        right[ii] = right[j] + 1;
      }
    }
  }
  std::vector<uint32_t> dist(m);
  for (size_t i = 0; i < m; ++i) dist[i] = std::min(left[i], right[i]);
  return dist;
}

Sequence Rewriter::Rewrite(SequenceView t, ItemId pivot) const {
  Sequence gen = Generalize(t, pivot);

  // Unreachability reduction: blank out indexes farther than lambda from
  // every pivot occurrence.
  std::vector<uint32_t> dist = MinPivotDistances(gen, pivot);
  bool has_pivot = false;
  for (size_t i = 0; i < gen.size(); ++i) {
    if (dist[i] == kUnreachable || dist[i] > lambda_) gen[i] = kBlank;
    if (gen[i] == pivot) has_pivot = true;
  }
  if (!has_pivot) return {};

  // Isolated pivot removal: a pivot with no non-blank item within gamma+1
  // positions cannot be part of a pattern of length >= 2.
  const size_t m = gen.size();
  const size_t window = static_cast<size_t>(gamma_) + 1;
  std::vector<char> isolated(m, 0);
  for (size_t i = 0; i < m; ++i) {
    if (gen[i] != pivot) continue;
    bool has_neighbor = false;
    size_t lo = i >= window ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi && !has_neighbor; ++j) {
      if (j != i && gen[j] != kBlank) has_neighbor = true;
    }
    if (!has_neighbor) isolated[i] = 1;
  }
  has_pivot = false;
  for (size_t i = 0; i < m; ++i) {
    if (isolated[i]) gen[i] = kBlank;
    if (gen[i] == pivot) has_pivot = true;
  }
  if (!has_pivot) return {};

  // Blank compression: strip leading/trailing blanks; cap runs at gamma+1.
  Sequence out;
  out.reserve(m);
  size_t run = 0;
  for (ItemId w : gen) {
    if (w == kBlank) {
      ++run;
      if (!out.empty() && run <= window) out.push_back(kBlank);
    } else {
      run = 0;
      out.push_back(w);
    }
  }
  while (!out.empty() && out.back() == kBlank) out.pop_back();

  size_t non_blank = 0;
  for (ItemId w : out) {
    if (w != kBlank) ++non_blank;
  }
  if (non_blank < 2) return {};
  return out;
}

ScratchRewriter::ScratchRewriter(const Hierarchy* hierarchy, uint32_t gamma,
                                 uint32_t lambda)
    : hierarchy_(hierarchy), gamma_(gamma), lambda_(lambda) {
  if (!hierarchy_->IsRankMonotone()) {
    throw std::invalid_argument(
        "ScratchRewriter: hierarchy must be rank-monotone");
  }
}

void ScratchRewriter::Generalize(SequenceView t, ItemId pivot,
                                 Sequence* out) const {
  out->clear();
  out->reserve(t.size());
  for (ItemId w : t) {
    if (!IsItem(w)) {
      out->push_back(kBlank);
      continue;
    }
    if (w <= pivot) {
      out->push_back(w);
      continue;
    }
    ItemId replacement = kBlank;
    for (ItemId a : hierarchy_->AncestorSpan(w).subspan(1)) {
      if (a <= pivot) {
        replacement = a;
        break;
      }
    }
    out->push_back(replacement);
  }
}

// For gamma == 0 a chain can only step to an adjacent non-blank index, so
// reachability never crosses a blank: within each maximal non-blank run of
// the generalized sequence, an index survives the unreachability reduction
// iff its distance to the nearest in-run pivot occurrence is <= lambda - 1
// (chain size |i - p| + 1 <= lambda), and runs without a pivot vanish
// entirely. Isolated-pivot removal degenerates to dropping singleton runs:
// a surviving pivot in a run of length >= 2 always keeps its distance-1
// neighbor (lambda >= 2). Blank compression becomes "join surviving
// positions, one blank between non-adjacent ones". Equivalence with the
// generic pipeline is differential-tested in tests/rewrite_test.cc.
bool ScratchRewriter::RewriteGammaZero(SequenceView t, ItemId pivot,
                                       Sequence* out) {
  Generalize(t, pivot, &gen_);
  const size_t m = gen_.size();
  left_.resize(m);  // keep[i] flags.
  const size_t reach = static_cast<size_t>(lambda_) - 1;
  constexpr size_t kNone = static_cast<size_t>(-1);
  size_t last_kept = kNone;
  size_t i = 0;
  while (i < m) {
    if (gen_[i] == kBlank) {
      ++i;
      continue;
    }
    const size_t s = i;
    while (i < m && gen_[i] != kBlank) ++i;
    const size_t e = i;  // Maximal non-blank run [s, e).
    if (e - s == 1) continue;  // Lone pivot: isolated; lone item: unreachable.
    bool any_pivot = false;
    size_t prev_pivot = kNone;
    for (size_t j = s; j < e; ++j) {
      if (gen_[j] == pivot) {
        prev_pivot = j;
        any_pivot = true;
      }
      left_[j] = prev_pivot != kNone && j - prev_pivot <= reach;
    }
    if (!any_pivot) continue;
    size_t next_pivot = kNone;
    for (size_t j = e; j-- > s;) {
      if (gen_[j] == pivot) next_pivot = j;
      if (next_pivot != kNone && next_pivot - j <= reach) left_[j] = 1;
    }
    for (size_t j = s; j < e; ++j) {
      if (!left_[j]) continue;
      if (last_kept != kNone && j > last_kept + 1) out->push_back(kBlank);
      out->push_back(gen_[j]);
      last_kept = j;
    }
  }
  if (out->empty()) return false;
  return true;
}

bool ScratchRewriter::Rewrite(SequenceView t, ItemId pivot, Sequence* out) {
  out->clear();
  if (gamma_ == 0) return RewriteGammaZero(t, pivot, out);
  Generalize(t, pivot, &gen_);
  const size_t m = gen_.size();
  const size_t window = static_cast<size_t>(gamma_) + 1;
  constexpr uint32_t kUnreachable = Rewriter::kUnreachable;

  // Unreachability reduction (same recurrence as Rewriter::MinPivotDistances
  // with the min + blanking fused in).
  bool has_pivot = false;
  {
    left_.assign(m, kUnreachable);
    right_.assign(m, kUnreachable);
    for (size_t i = 0; i < m; ++i) {
      if (gen_[i] == pivot) left_[i] = 1;
      size_t lo = i >= window ? i - window : 0;
      for (size_t j = lo; j < i; ++j) {
        if (gen_[j] != kBlank && left_[j] != kUnreachable &&
            left_[j] + 1 < left_[i]) {
          left_[i] = left_[j] + 1;
        }
      }
    }
    for (size_t ii = m; ii-- > 0;) {
      if (gen_[ii] == pivot) right_[ii] = 1;
      size_t hi = std::min(m, ii + window + 1);
      for (size_t j = ii + 1; j < hi; ++j) {
        if (gen_[j] != kBlank && right_[j] != kUnreachable &&
            right_[j] + 1 < right_[ii]) {
          right_[ii] = right_[j] + 1;
        }
      }
    }
    for (size_t i = 0; i < m; ++i) {
      uint32_t d = std::min(left_[i], right_[i]);
      if (d == kUnreachable || d > lambda_) gen_[i] = kBlank;
      if (gen_[i] == pivot) has_pivot = true;
    }
  }
  if (!has_pivot) return false;

  // Isolated pivot removal. The two-phase structure of Rewriter::Rewrite
  // (mark first, blank after) matters: a pivot's surviving neighbor may
  // itself be an isolated pivot, and marking uses pre-removal contents.
  has_pivot = false;
  for (size_t i = 0; i < m; ++i) {
    if (gen_[i] != pivot) {
      left_[i] = 0;
      continue;
    }
    bool has_neighbor = false;
    size_t lo = i >= window ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi && !has_neighbor; ++j) {
      if (j != i && gen_[j] != kBlank) has_neighbor = true;
    }
    left_[i] = has_neighbor ? 0 : 1;
  }
  for (size_t i = 0; i < m; ++i) {
    if (left_[i]) gen_[i] = kBlank;
    if (gen_[i] == pivot) has_pivot = true;
  }
  if (!has_pivot) return false;

  // Blank compression: strip leading/trailing blanks; cap runs at gamma+1.
  size_t run = 0;
  size_t non_blank = 0;
  for (ItemId w : gen_) {
    if (w == kBlank) {
      ++run;
      if (!out->empty() && run <= window) out->push_back(kBlank);
    } else {
      run = 0;
      ++non_blank;
      out->push_back(w);
    }
  }
  while (!out->empty() && out->back() == kBlank) out->pop_back();
  if (non_blank < 2) {
    out->clear();
    return false;
  }
  return true;
}

}  // namespace lash
