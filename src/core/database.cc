#include "core/database.h"

#include <algorithm>
#include <unordered_set>

namespace lash {

DatasetStats ComputeStats(const FlatDatabase& db) {
  DatasetStats stats;
  stats.num_sequences = db.size();
  stats.total_items = db.TotalItems();
  std::unordered_set<ItemId> unique(db.arena(), db.arena() + db.TotalItems());
  for (size_t i = 0; i < db.size(); ++i) {
    stats.max_length = std::max(stats.max_length, db[i].size());
  }
  stats.unique_items = unique.size();
  stats.avg_length = db.empty() ? 0.0
                                : static_cast<double>(stats.total_items) /
                                      static_cast<double>(db.size());
  return stats;
}

DatasetStats ComputeStats(const Database& db) {
  DatasetStats stats;
  stats.num_sequences = db.size();
  std::unordered_set<ItemId> unique;
  for (const Sequence& t : db) {
    stats.total_items += t.size();
    stats.max_length = std::max(stats.max_length, t.size());
    unique.insert(t.begin(), t.end());
  }
  stats.unique_items = unique.size();
  stats.avg_length = db.empty() ? 0.0
                                : static_cast<double>(stats.total_items) /
                                      static_cast<double>(db.size());
  return stats;
}

}  // namespace lash
