#include "core/flist.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lash {

void CollectGeneralizedItems(SequenceView t, const Hierarchy& h,
                             std::vector<uint32_t>* scratch, uint32_t epoch,
                             std::vector<ItemId>* out) {
  for (ItemId w : t) {
    if (!IsItem(w)) continue;
    for (ItemId a : h.AncestorSpan(w)) {
      if ((*scratch)[a] == epoch) break;  // This ancestor chain is done.
      (*scratch)[a] = epoch;
      out->push_back(a);
    }
  }
}

std::vector<Frequency> GeneralizedItemFrequencies(const FlatDatabase& db,
                                                  const Hierarchy& h) {
  const size_t n = h.NumItems();
  std::vector<Frequency> freq(n + 1, 0);
  std::vector<uint32_t> visited(n + 1, 0);
  std::vector<ItemId> items;
  uint32_t epoch = 0;
  for (SequenceView t : db) {
    ++epoch;
    items.clear();
    CollectGeneralizedItems(t, h, &visited, epoch, &items);
    for (ItemId w : items) ++freq[w];
  }
  return freq;
}

size_t PreprocessResult::NumFrequent(Frequency sigma) const {
  // freq is non-increasing over ranks 1..n; find the last rank >= sigma.
  size_t lo = 1, hi = freq.size();  // [lo, hi): first rank with freq < sigma.
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (freq[mid] >= sigma) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

PreprocessResult Preprocess(const FlatDatabase& raw_db,
                            const Hierarchy& raw_h) {
  const size_t n = raw_h.NumItems();
  std::vector<Frequency> raw_freq = GeneralizedItemFrequencies(raw_db, raw_h);

  // Hierarchy-aware total order (Sec. 3.4): frequency desc, then hierarchy
  // level asc (more general items first), then raw id for stability.
  std::vector<ItemId> order(n);
  std::iota(order.begin(), order.end(), 1);
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (raw_freq[a] != raw_freq[b]) return raw_freq[a] > raw_freq[b];
    if (raw_h.Depth(a) != raw_h.Depth(b)) return raw_h.Depth(a) < raw_h.Depth(b);
    return a < b;
  });

  PreprocessResult result;
  result.rank_of_raw.assign(n + 1, kInvalidItem);
  result.raw_of_rank.assign(n + 1, kInvalidItem);
  result.freq.assign(n + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    ItemId raw = order[r];
    ItemId rank = static_cast<ItemId>(r + 1);
    result.rank_of_raw[raw] = rank;
    result.raw_of_rank[rank] = raw;
    result.freq[rank] = raw_freq[raw];
  }

  std::vector<ItemId> rank_parent(n + 1, kInvalidItem);
  for (size_t r = 1; r <= n; ++r) {
    ItemId raw = result.raw_of_rank[r];
    ItemId raw_parent = raw_h.Parent(raw);
    if (raw_parent != kInvalidItem) {
      rank_parent[r] = result.rank_of_raw[raw_parent];
    }
  }
  result.hierarchy = Hierarchy(std::move(rank_parent));
  if (!result.hierarchy.IsRankMonotone()) {
    // Cannot happen: ancestors dominate descendants in generalized frequency
    // and are at a strictly higher level on ties.
    throw std::logic_error("Preprocess: rank order is not hierarchy-monotone");
  }

  // Recode straight into the flat form: same offsets, items mapped in one
  // pass over the arena.
  result.database.Reserve(raw_db.size(), raw_db.TotalItems());
  for (SequenceView t : raw_db) {
    ItemId* recoded = result.database.AppendSlot(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      recoded[i] = result.rank_of_raw[t[i]];
    }
  }
  return result;
}

}  // namespace lash
