#ifndef LASH_CORE_DATABASE_H_
#define LASH_CORE_DATABASE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/flat_database.h"
#include "util/types.h"

namespace lash {

// The legacy `Database` alias lives in core/flat_database.h next to the
// flat form and its converters.

/// A mined partition P_w: rewritten sequences with aggregation weights
/// (Sec. 4.4). Identical rewrites are merged; `weights[i]` counts how many
/// input sequences produced `sequences[i]`. Sequences live in one CSR arena
/// (`sequences[i]` is a SequenceView), so a partition is three flat buffers
/// no matter how many rewrites it aggregates.
struct Partition {
  FlatDatabase sequences;
  std::vector<Frequency> weights;

  size_t size() const { return weights.size(); }
  SequenceView operator[](size_t tid) const { return sequences[tid]; }
  void Add(SequenceView seq, Frequency weight) {
    sequences.Add(seq);
    weights.push_back(weight);
  }
};

/// Summary statistics in the format of Table 1 of the paper.
struct DatasetStats {
  size_t num_sequences = 0;
  double avg_length = 0;
  size_t max_length = 0;
  size_t total_items = 0;
  size_t unique_items = 0;

  friend bool operator==(const DatasetStats&, const DatasetStats&) = default;
};

/// Computes Table-1 style statistics for `db`.
DatasetStats ComputeStats(const FlatDatabase& db);

/// Legacy-form overload (boundary code and tests).
DatasetStats ComputeStats(const Database& db);

}  // namespace lash

#endif  // LASH_CORE_DATABASE_H_
