#ifndef LASH_CORE_DATABASE_H_
#define LASH_CORE_DATABASE_H_

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace lash {

/// A sequence database D = {T1, ..., T|D|} (Sec. 2). A plain vector keeps
/// the mining code allocation-friendly; metadata lives in DatasetStats.
using Database = std::vector<Sequence>;

/// A mined partition P_w: rewritten sequences with aggregation weights
/// (Sec. 4.4). Identical rewrites are merged; `weights[i]` counts how many
/// input sequences produced `sequences[i]`.
struct Partition {
  std::vector<Sequence> sequences;
  std::vector<Frequency> weights;

  size_t size() const { return sequences.size(); }
  void Add(Sequence seq, Frequency weight) {
    sequences.push_back(std::move(seq));
    weights.push_back(weight);
  }
};

/// Summary statistics in the format of Table 1 of the paper.
struct DatasetStats {
  size_t num_sequences = 0;
  double avg_length = 0;
  size_t max_length = 0;
  size_t total_items = 0;
  size_t unique_items = 0;
};

/// Computes Table-1 style statistics for `db`.
DatasetStats ComputeStats(const Database& db);

}  // namespace lash

#endif  // LASH_CORE_DATABASE_H_
