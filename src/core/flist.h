#ifndef LASH_CORE_FLIST_H_
#define LASH_CORE_FLIST_H_

#include <cstddef>
#include <vector>

#include "core/database.h"
#include "core/hierarchy.h"
#include "util/array_ref.h"
#include "util/types.h"

namespace lash {

/// Result of the preprocessing phase (Sec. 3.3 / 3.4): the generalized
/// f-list, the hierarchy-aware total order `<` (realized as a rank recoding),
/// and the database recoded into rank space.
///
/// Ranks start at 1; `rank(u) < rank(v)` iff `u < v` in the paper's order:
/// higher generalized document frequency first, ties broken toward items at
/// a higher (more general) hierarchy level, remaining ties by raw id. This
/// guarantees `rank(parent) < rank(child)` because an ancestor's support set
/// is a superset of its descendant's (Lemma 1).
struct PreprocessResult {
  /// Hierarchy over rank ids; IsRankMonotone() holds.
  Hierarchy hierarchy;
  /// Input database with every item replaced by its rank, stored flat (CSR
  /// arena + offsets): `database[tid]` is a SequenceView. This is the form
  /// every mining layer iterates and the form the dataset snapshot
  /// (io/snapshot.h) serializes verbatim.
  FlatDatabase database;
  /// Generalized document frequency per rank; `freq[0] == 0`, non-increasing
  /// for ranks `1..n`. This is the generalized f-list of Sec. 3.3.
  /// ArrayRef (not vector): a snapshot-mmap'd Dataset borrows these three
  /// arrays straight from the mapping; Preprocess() builds them owned.
  ArrayRef<Frequency> freq;
  /// Raw id -> rank (index 0 unused).
  ArrayRef<ItemId> rank_of_raw;
  /// Rank -> raw id (index 0 unused; always owned — derived on load).
  std::vector<ItemId> raw_of_rank;

  PreprocessResult() : hierarchy(Hierarchy::Flat(0)) {}

  /// Number of frequent items; ranks `1..NumFrequent(sigma)` are exactly the
  /// frequent items because `freq` is non-increasing.
  size_t NumFrequent(Frequency sigma) const;
};

/// Computes the generalized document frequency of every raw item: the number
/// of input sequences containing the item or any descendant (Sec. 3.3).
std::vector<Frequency> GeneralizedItemFrequencies(const FlatDatabase& db,
                                                  const Hierarchy& h);

/// Legacy-form convenience overload.
inline std::vector<Frequency> GeneralizedItemFrequencies(const Database& db,
                                                         const Hierarchy& h) {
  return GeneralizedItemFrequencies(FlatDatabase::FromDatabase(db), h);
}

/// Runs the full preprocessing phase on a raw database + hierarchy.
PreprocessResult Preprocess(const FlatDatabase& raw_db, const Hierarchy& raw_h);

/// Legacy-form convenience overload (tests and generators that assemble a
/// vector-of-vectors Database).
inline PreprocessResult Preprocess(const Database& raw_db,
                                   const Hierarchy& raw_h) {
  return Preprocess(FlatDatabase::FromDatabase(raw_db), raw_h);
}

/// Appends the distinct items of G1(T) — every item of T together with all
/// its generalizations (Sec. 3.3) — to `out` in unspecified order. `scratch`
/// is a caller-provided visited marker of size >= NumItems()+1, zeroed or
/// reusable across calls via the `epoch` trick.
void CollectGeneralizedItems(SequenceView t, const Hierarchy& h,
                             std::vector<uint32_t>* scratch, uint32_t epoch,
                             std::vector<ItemId>* out);

}  // namespace lash

#endif  // LASH_CORE_FLIST_H_
