#include "core/hierarchy.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

namespace lash {

Hierarchy::Hierarchy(std::vector<ItemId> parent) : parent_(std::move(parent)) {
  if (parent_.empty()) parent_.push_back(kInvalidItem);
  parent_[0] = kInvalidItem;
  const size_t n = parent_.size() - 1;
  for (size_t w = 1; w <= n; ++w) {
    ItemId p = parent_[w];
    if (p == static_cast<ItemId>(w) || (p != kInvalidItem && (p == 0 || p > n))) {
      throw std::invalid_argument("Hierarchy: parent id out of range");
    }
  }
  // Compute depths; 0 = unvisited sentinel is fine because we fill roots
  // first and detect cycles via a path-length bound.
  depth_.assign(n + 1, -1);
  for (size_t w = 1; w <= n; ++w) {
    if (depth_[w] >= 0) continue;
    // Walk up collecting the path; stop at a known depth or a root.
    std::vector<ItemId> path;
    ItemId cur = static_cast<ItemId>(w);
    while (cur != kInvalidItem && depth_[cur] < 0) {
      path.push_back(cur);
      if (path.size() > n) throw std::invalid_argument("Hierarchy: cycle detected");
      cur = parent_[cur];
    }
    int base = (cur == kInvalidItem) ? -1 : depth_[cur];
    for (auto it = path.rbegin(); it != path.rend(); ++it) depth_[*it] = ++base;
  }
  max_depth_ = 0;
  for (size_t w = 1; w <= n; ++w) max_depth_ = std::max(max_depth_, depth_[w]);
  is_leaf_.assign(n + 1, true);
  for (size_t w = 1; w <= n; ++w) {
    if (parent_[w] != kInvalidItem) is_leaf_[parent_[w]] = false;
  }

  // Children lists in CSR form, used to run the Euler tour below.
  std::vector<uint32_t> child_off(n + 2, 0);
  for (size_t w = 1; w <= n; ++w) {
    if (parent_[w] != kInvalidItem) ++child_off[parent_[w] + 1];
  }
  for (size_t w = 1; w <= n + 1; ++w) child_off[w] += child_off[w - 1];
  std::vector<ItemId> child_items(child_off[n + 1]);
  {
    std::vector<uint32_t> cursor(child_off.begin(), child_off.end() - 1);
    for (size_t w = 1; w <= n; ++w) {
      if (parent_[w] != kInvalidItem) {
        child_items[cursor[parent_[w]]++] = static_cast<ItemId>(w);
      }
    }
  }

  // Euler-tour interval labels: an iterative DFS from every root assigns
  // tin at discovery and tout one past the subtree's last label, so
  // "anc is an ancestor-or-self of w" <=> tin[anc] <= tin[w] < tout[anc].
  tin_.assign(n + 1, 0);
  tout_.assign(n + 1, 0);
  {
    uint32_t clock = 0;
    std::vector<std::pair<ItemId, uint32_t>> stack;  // (item, next child idx).
    for (size_t r = 1; r <= n; ++r) {
      if (parent_[r] != kInvalidItem) continue;
      stack.emplace_back(static_cast<ItemId>(r), 0);
      tin_[r] = clock++;
      while (!stack.empty()) {
        auto& [w, next] = stack.back();
        if (next < child_off[w + 1] - child_off[w]) {
          ItemId c = child_items[child_off[w] + next++];
          tin_[c] = clock++;
          stack.emplace_back(c, 0);
        } else {
          tout_[w] = clock;
          stack.pop_back();
        }
      }
    }
  }

  // CSR-packed ancestor chains (self first, root last). Total size is
  // sum over items of depth+1; chains are built by one walk each, after
  // which the hot path never follows parent pointers again.
  uint64_t total_chain = 0;
  for (size_t w = 1; w <= n; ++w) total_chain += depth_[w] + 1;
  if (total_chain > std::numeric_limits<uint32_t>::max()) {
    // Would overflow the 32-bit CSR offsets (and cost tens of GB): fail
    // loudly; such pathologically deep hierarchies never arise in practice.
    throw std::invalid_argument("Hierarchy: ancestor chain table too large");
  }
  anc_offsets_.assign(n + 2, 0);
  for (size_t w = 1; w <= n; ++w) {
    anc_offsets_[w + 1] = anc_offsets_[w] + static_cast<uint32_t>(depth_[w] + 1);
  }
  anc_items_.resize(anc_offsets_[n + 1]);
  for (size_t w = 1; w <= n; ++w) {
    uint32_t pos = anc_offsets_[w];
    for (ItemId a = static_cast<ItemId>(w); a != kInvalidItem; a = parent_[a]) {
      anc_items_[pos++] = a;
    }
  }
}

Hierarchy Hierarchy::Flat(size_t num_items) {
  return Hierarchy(std::vector<ItemId>(num_items + 1, kInvalidItem));
}

bool Hierarchy::IsRankMonotone() const {
  for (size_t w = 1; w < parent_.size(); ++w) {
    ItemId p = parent_[w];
    if (p != kInvalidItem && p >= w) return false;
  }
  return true;
}

size_t Hierarchy::NumLeaves() const {
  size_t count = 0;
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (is_leaf_[w]) ++count;
  }
  return count;
}

size_t Hierarchy::NumRoots() const {
  size_t count = 0;
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (parent_[w] == kInvalidItem) ++count;
  }
  return count;
}

size_t Hierarchy::NumIntermediate() const {
  size_t count = 0;
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (!is_leaf_[w] && parent_[w] != kInvalidItem) ++count;
  }
  return count;
}

double Hierarchy::AvgFanOut() const {
  std::vector<size_t> children(parent_.size(), 0);
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (parent_[w] != kInvalidItem) ++children[parent_[w]];
  }
  size_t inner = 0, total = 0;
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (children[w] > 0) {
      ++inner;
      total += children[w];
    }
  }
  return inner == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(inner);
}

size_t Hierarchy::MaxFanOut() const {
  std::vector<size_t> children(parent_.size(), 0);
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (parent_[w] != kInvalidItem) ++children[parent_[w]];
  }
  size_t max_fan = 0;
  for (size_t w = 1; w < parent_.size(); ++w) max_fan = std::max(max_fan, children[w]);
  return max_fan;
}

}  // namespace lash
