#include "core/hierarchy.h"

#include <algorithm>
#include <stdexcept>

namespace lash {

Hierarchy::Hierarchy(std::vector<ItemId> parent) : parent_(std::move(parent)) {
  if (parent_.empty()) parent_.push_back(kInvalidItem);
  parent_[0] = kInvalidItem;
  const size_t n = parent_.size() - 1;
  for (size_t w = 1; w <= n; ++w) {
    ItemId p = parent_[w];
    if (p == static_cast<ItemId>(w) || (p != kInvalidItem && (p == 0 || p > n))) {
      throw std::invalid_argument("Hierarchy: parent id out of range");
    }
  }
  // Compute depths; 0 = unvisited sentinel is fine because we fill roots
  // first and detect cycles via a path-length bound.
  depth_.assign(n + 1, -1);
  for (size_t w = 1; w <= n; ++w) {
    if (depth_[w] >= 0) continue;
    // Walk up collecting the path; stop at a known depth or a root.
    std::vector<ItemId> path;
    ItemId cur = static_cast<ItemId>(w);
    while (cur != kInvalidItem && depth_[cur] < 0) {
      path.push_back(cur);
      if (path.size() > n) throw std::invalid_argument("Hierarchy: cycle detected");
      cur = parent_[cur];
    }
    int base = (cur == kInvalidItem) ? -1 : depth_[cur];
    for (auto it = path.rbegin(); it != path.rend(); ++it) depth_[*it] = ++base;
  }
  max_depth_ = 0;
  for (size_t w = 1; w <= n; ++w) max_depth_ = std::max(max_depth_, depth_[w]);
  is_leaf_.assign(n + 1, true);
  for (size_t w = 1; w <= n; ++w) {
    if (parent_[w] != kInvalidItem) is_leaf_[parent_[w]] = false;
  }
}

Hierarchy Hierarchy::Flat(size_t num_items) {
  return Hierarchy(std::vector<ItemId>(num_items + 1, kInvalidItem));
}

bool Hierarchy::GeneralizesTo(ItemId w, ItemId anc) const {
  for (ItemId a = w; a != kInvalidItem; a = parent_[a]) {
    if (a == anc) return true;
    // In rank space ancestors only get smaller; but we must stay correct for
    // raw-space hierarchies too, so walk all the way up.
  }
  return false;
}

bool Hierarchy::IsRankMonotone() const {
  for (size_t w = 1; w < parent_.size(); ++w) {
    ItemId p = parent_[w];
    if (p != kInvalidItem && p >= w) return false;
  }
  return true;
}

size_t Hierarchy::NumLeaves() const {
  size_t count = 0;
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (is_leaf_[w]) ++count;
  }
  return count;
}

size_t Hierarchy::NumRoots() const {
  size_t count = 0;
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (parent_[w] == kInvalidItem) ++count;
  }
  return count;
}

size_t Hierarchy::NumIntermediate() const {
  size_t count = 0;
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (!is_leaf_[w] && parent_[w] != kInvalidItem) ++count;
  }
  return count;
}

double Hierarchy::AvgFanOut() const {
  std::vector<size_t> children(parent_.size(), 0);
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (parent_[w] != kInvalidItem) ++children[parent_[w]];
  }
  size_t inner = 0, total = 0;
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (children[w] > 0) {
      ++inner;
      total += children[w];
    }
  }
  return inner == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(inner);
}

size_t Hierarchy::MaxFanOut() const {
  std::vector<size_t> children(parent_.size(), 0);
  for (size_t w = 1; w < parent_.size(); ++w) {
    if (parent_[w] != kInvalidItem) ++children[parent_[w]];
  }
  size_t max_fan = 0;
  for (size_t w = 1; w < parent_.size(); ++w) max_fan = std::max(max_fan, children[w]);
  return max_fan;
}

}  // namespace lash
