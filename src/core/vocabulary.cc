#include "core/vocabulary.h"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace lash {

Vocabulary& Vocabulary::operator=(const Vocabulary& other) {
  if (this == &other) return *this;
  Vocabulary copy;
  const size_t n = other.NumItems();
  copy.Reserve(n);
  if (other.blob_ == nullptr && other.dynamic_.size() == n) {
    // Pure-AddItem vocabulary: re-intern (one string copy per name).
    for (size_t id = 1; id <= n; ++id) {
      copy.AddItem(std::string(other.names_[id]));
    }
  } else {
    // Restored (owned blob and/or borrowed mapping): rebuild one owned
    // blob; views into a *borrowed* source would otherwise be shared,
    // which is fine, but one code path covering both is simpler and a
    // copy that owns its bytes is never lifetime-surprising.
    size_t total = 0;
    for (size_t id = 1; id <= n; ++id) total += other.names_[id].size();
    copy.blob_ = std::make_unique<char[]>(total ? total : 1);
    char* cursor = copy.blob_.get();
    for (size_t id = 1; id <= n; ++id) {
      const std::string_view name = other.names_[id];
      std::memcpy(cursor, name.data(), name.size());
      copy.names_.emplace_back(cursor, name.size());
      copy.index_.emplace(copy.names_.back(), static_cast<ItemId>(id));
      cursor += name.size();
    }
    copy.parent_.resize(n + 1, kInvalidItem);
  }
  for (size_t id = 1; id <= n; ++id) copy.parent_[id] = other.parent_[id];
  *this = std::move(copy);
  return *this;
}

ItemId Vocabulary::AddItem(const std::string& name) {
  auto it = index_.find(std::string_view(name));
  if (it != index_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  dynamic_.push_back(name);  // Deque: the string's address is stable.
  names_.emplace_back(dynamic_.back());
  parent_.push_back(kInvalidItem);
  index_.emplace(names_.back(), id);
  return id;
}

ItemId Vocabulary::AddItemWithParent(const std::string& child,
                                     const std::string& parent) {
  if (child == parent) {
    throw std::invalid_argument("Vocabulary: item cannot be its own parent");
  }
  ItemId c = AddItem(child);
  ItemId p = AddItem(parent);
  if (parent_[c] != kInvalidItem && parent_[c] != p) {
    throw std::invalid_argument("Vocabulary: item '" + child +
                                "' already has a different parent");
  }
  parent_[c] = p;
  return c;
}

void Vocabulary::SetParent(ItemId child, ItemId parent) {
  if (child == parent) {
    throw std::invalid_argument("Vocabulary: item cannot be its own parent");
  }
  if (child == kInvalidItem || child >= names_.size() ||
      parent == kInvalidItem || parent >= names_.size()) {
    throw std::invalid_argument("Vocabulary: SetParent id out of range");
  }
  if (parent_[child] != kInvalidItem && parent_[child] != parent) {
    throw std::invalid_argument("Vocabulary: item '" +
                                std::string(names_[child]) +
                                "' already has a different parent");
  }
  parent_[child] = parent;
}

void Vocabulary::Reserve(size_t num_items) {
  names_.reserve(num_items + 1);
  parent_.reserve(num_items + 1);
  index_.reserve(num_items);
}

ItemId Vocabulary::Lookup(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidItem : it->second;
}

Hierarchy Vocabulary::BuildHierarchy() const { return Hierarchy(parent_); }

Vocabulary Vocabulary::Restore(const char* blob, size_t blob_size,
                               const uint32_t* ends, size_t n,
                               bool copy_blob) {
  const size_t total = n == 0 ? 0 : ends[n - 1];
  if (total > blob_size) {
    throw std::invalid_argument(
        "Vocabulary::Restore: name offsets exceed blob size");
  }
  Vocabulary vocab;
  vocab.Reserve(n);
  const char* base = blob;
  if (copy_blob) {
    vocab.blob_ = std::make_unique<char[]>(total ? total : 1);
    std::memcpy(vocab.blob_.get(), blob, total);
    base = vocab.blob_.get();
  }
  uint32_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t end = ends[i];
    if (end < start || end > total) {
      throw std::invalid_argument(
          "Vocabulary::Restore: name offsets are not monotone");
    }
    const std::string_view name(base + start, end - start);
    vocab.names_.push_back(name);
    vocab.parent_.push_back(kInvalidItem);
    // Built eagerly (even for borrowed restores): Lookup must be safely
    // concurrent on a shared Dataset, and eager insertion doubles as the
    // duplicate-name check; the cost is O(vocabulary), not O(corpus).
    if (!vocab.index_.emplace(name, static_cast<ItemId>(i + 1)).second) {
      throw std::invalid_argument(
          "Vocabulary::Restore: duplicate name '" + std::string(name) + "'");
    }
    start = end;
  }
  return vocab;
}

}  // namespace lash
