#include "core/vocabulary.h"

#include <stdexcept>

namespace lash {

ItemId Vocabulary::AddItem(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  names_.push_back(name);
  parent_.push_back(kInvalidItem);
  index_.emplace(name, id);
  return id;
}

ItemId Vocabulary::AddItemWithParent(const std::string& child,
                                     const std::string& parent) {
  if (child == parent) {
    throw std::invalid_argument("Vocabulary: item cannot be its own parent");
  }
  ItemId c = AddItem(child);
  ItemId p = AddItem(parent);
  if (parent_[c] != kInvalidItem && parent_[c] != p) {
    throw std::invalid_argument("Vocabulary: item '" + child +
                                "' already has a different parent");
  }
  parent_[c] = p;
  return c;
}

void Vocabulary::SetParent(ItemId child, ItemId parent) {
  if (child == parent) {
    throw std::invalid_argument("Vocabulary: item cannot be its own parent");
  }
  if (child == kInvalidItem || child >= names_.size() ||
      parent == kInvalidItem || parent >= names_.size()) {
    throw std::invalid_argument("Vocabulary: SetParent id out of range");
  }
  if (parent_[child] != kInvalidItem && parent_[child] != parent) {
    throw std::invalid_argument("Vocabulary: item '" + names_[child] +
                                "' already has a different parent");
  }
  parent_[child] = parent;
}

void Vocabulary::Reserve(size_t num_items) {
  names_.reserve(num_items + 1);
  parent_.reserve(num_items + 1);
  index_.reserve(num_items);
}

ItemId Vocabulary::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidItem : it->second;
}

Hierarchy Vocabulary::BuildHierarchy() const { return Hierarchy(parent_); }

}  // namespace lash
