#include "serve/task_spec.h"

#include "util/varint.h"

namespace lash::serve {

namespace {

/// Bump when the key layout changes, so entries written by an older layout
/// can never alias a newer spec (relevant once keys outlive a process).
constexpr char kCacheKeyVersion = 1;

/// One byte for an optional enum-like knob: 0 = unset, 1 + value otherwise.
template <typename T>
char PresenceByte(const std::optional<T>& knob) {
  return knob.has_value() ? static_cast<char>(1 + static_cast<int>(*knob)) : 0;
}

}  // namespace

MiningTask MakeTask(const Dataset& dataset, const TaskSpec& spec) {
  MiningTask task(dataset);
  task.WithAlgorithm(spec.algorithm)
      .WithParams(spec.params)
      .WithThreads(spec.threads)
      .WithJobConfig(spec.job_config)
      .WithLimits(spec.limits)
      .WithFlatHierarchy(spec.flat)
      .WithFilter(spec.filter)
      .WithTopK(spec.top_k);
  if (spec.miner) task.WithMiner(*spec.miner);
  if (spec.rewrite) task.WithRewrite(*spec.rewrite);
  if (spec.combiner) task.WithCombiner(*spec.combiner);
  return task;
}

std::string EncodeCacheKey(uint64_t dataset_id, const TaskSpec& spec) {
  std::string key;
  key.push_back(kCacheKeyVersion);
  PutVarint64(&key, dataset_id);
  key.push_back(static_cast<char>(spec.algorithm));
  PutVarint64(&key, spec.params.sigma);
  PutVarint32(&key, spec.params.gamma);
  PutVarint32(&key, spec.params.lambda);
  // Canonicalized like MiningTask::UsesFlat(): MG-FSM always mines the flat
  // rank space, so an explicit flat=true must not fragment its key space.
  key.push_back(spec.flat || spec.algorithm == Algorithm::kMgFsm ? 1 : 0);
  key.push_back(static_cast<char>(spec.filter));
  PutVarint64(&key, spec.top_k);
  key.push_back(PresenceByte(spec.miner));
  key.push_back(PresenceByte(spec.rewrite));
  key.push_back(spec.combiner.has_value() ? (*spec.combiner ? 2 : 1) : 0);
  // The emit cap changes what the (semi-)naive baselines output (the
  // "aborted" DNF truncation); for every other algorithm it is inert and
  // must not fragment the key space.
  if (spec.algorithm == Algorithm::kNaive ||
      spec.algorithm == Algorithm::kSemiNaive) {
    PutVarint64(&key, spec.limits.max_emitted_records);
  }
  return key;
}

}  // namespace lash::serve
