#include "serve/task_spec.h"

#include "io/io_error.h"
#include "util/varint.h"

namespace lash::serve {

namespace {

/// Bump when the key layout changes, so entries written by an older layout
/// can never alias a newer spec (relevant once keys outlive a process).
constexpr char kCacheKeyVersion = 1;

/// One byte for an optional enum-like knob: 0 = unset, 1 + value otherwise.
template <typename T>
char PresenceByte(const std::optional<T>& knob) {
  return knob.has_value() ? static_cast<char>(1 + static_cast<int>(*knob)) : 0;
}

}  // namespace

MiningTask MakeTask(const Dataset& dataset, const TaskSpec& spec) {
  MiningTask task(dataset);
  task.WithAlgorithm(spec.algorithm)
      .WithParams(spec.params)
      .WithThreads(spec.threads)
      .WithJobConfig(spec.job_config)
      .WithLimits(spec.limits)
      .WithFlatHierarchy(spec.flat)
      .WithFilter(spec.filter)
      .WithTopK(spec.top_k);
  if (spec.miner) task.WithMiner(*spec.miner);
  if (spec.rewrite) task.WithRewrite(*spec.rewrite);
  if (spec.combiner) task.WithCombiner(*spec.combiner);
  return task;
}

std::string EncodeCacheKey(uint64_t dataset_id, const TaskSpec& spec) {
  std::string key;
  key.push_back(kCacheKeyVersion);
  PutVarint64(&key, dataset_id);
  key.push_back(static_cast<char>(spec.algorithm));
  PutVarint64(&key, spec.params.sigma);
  PutVarint32(&key, spec.params.gamma);
  PutVarint32(&key, spec.params.lambda);
  // Canonicalized like MiningTask::UsesFlat(): MG-FSM always mines the flat
  // rank space, so an explicit flat=true must not fragment its key space.
  key.push_back(spec.flat || spec.algorithm == Algorithm::kMgFsm ? 1 : 0);
  key.push_back(static_cast<char>(spec.filter));
  PutVarint64(&key, spec.top_k);
  key.push_back(PresenceByte(spec.miner));
  key.push_back(PresenceByte(spec.rewrite));
  key.push_back(spec.combiner.has_value() ? (*spec.combiner ? 2 : 1) : 0);
  // The emit cap changes what the (semi-)naive baselines output (the
  // "aborted" DNF truncation); for every other algorithm it is inert and
  // must not fragment the key space.
  if (spec.algorithm == Algorithm::kNaive ||
      spec.algorithm == Algorithm::kSemiNaive) {
    PutVarint64(&key, spec.limits.max_emitted_records);
  }
  return key;
}

namespace {

/// Reads one raw byte of the key, reporting `field` on truncation.
uint8_t ReadKeyByte(ByteReader& reader, const char* field) {
  return static_cast<uint8_t>(reader.ReadBytes(1, field)[0]);
}

/// Decodes a PresenceByte-encoded optional enum knob: 0 = unset, 1 + value
/// otherwise. `count` is the number of valid enum values.
template <typename T>
std::optional<T> ReadPresence(ByteReader& reader, const char* field,
                              unsigned count) {
  const uint8_t byte = ReadKeyByte(reader, field);
  if (byte == 0) return std::nullopt;
  if (byte > count) {
    reader.Malformed(std::string(field) + " presence byte out of range");
  }
  return static_cast<T>(byte - 1);
}

}  // namespace

TaskSpec DecodeTaskSpec(std::string_view key, uint64_t* dataset_id) {
  ByteReader reader(key, "task-spec key");
  const uint8_t version = ReadKeyByte(reader, "version");
  if (version != kCacheKeyVersion) {
    throw IoError(IoErrorKind::kBadVersion, 0,
                  "task-spec key: version " + std::to_string(version) +
                      " (this reader understands " +
                      std::to_string(kCacheKeyVersion) + ")");
  }
  const uint64_t id = reader.ReadVarint64("dataset id");
  if (dataset_id != nullptr) *dataset_id = id;

  TaskSpec spec;
  const uint8_t algorithm = ReadKeyByte(reader, "algorithm");
  if (algorithm > static_cast<uint8_t>(Algorithm::kSemiNaive)) {
    reader.Malformed("algorithm byte out of range");
  }
  spec.algorithm = static_cast<Algorithm>(algorithm);
  spec.params.sigma = reader.ReadVarint64("sigma");
  spec.params.gamma = reader.ReadVarint32("gamma");
  spec.params.lambda = reader.ReadVarint32("lambda");
  const uint8_t flat = ReadKeyByte(reader, "flat");
  if (flat > 1) reader.Malformed("flat byte out of range");
  // The canonicalized flat byte (flat || MG-FSM) decodes back into an
  // explicit flat=true, which re-encodes to the same canonical byte.
  spec.flat = flat != 0;
  const uint8_t filter = ReadKeyByte(reader, "filter");
  if (filter > static_cast<uint8_t>(PatternFilter::kMaximal)) {
    reader.Malformed("filter byte out of range");
  }
  spec.filter = static_cast<PatternFilter>(filter);
  spec.top_k = reader.ReadVarint64("top-k");
  spec.miner = ReadPresence<MinerKind>(
      reader, "miner", 1 + static_cast<unsigned>(MinerKind::kPsmIndex));
  spec.rewrite = ReadPresence<RewriteLevel>(
      reader, "rewrite", 1 + static_cast<unsigned>(RewriteLevel::kFull));
  const uint8_t combiner = ReadKeyByte(reader, "combiner");
  if (combiner > 2) reader.Malformed("combiner byte out of range");
  if (combiner != 0) spec.combiner = combiner == 2;
  if (spec.algorithm == Algorithm::kNaive ||
      spec.algorithm == Algorithm::kSemiNaive) {
    spec.limits.max_emitted_records = reader.ReadVarint64("emit cap");
  }
  if (!reader.AtEnd()) reader.Malformed("trailing bytes after task-spec key");
  return spec;
}

}  // namespace lash::serve
