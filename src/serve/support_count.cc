#include "serve/support_count.h"

#include "core/match.h"

namespace lash::serve {

std::vector<Frequency> CountSupports(const Dataset& dataset,
                                     const NamedPatternList& candidates,
                                     const CountQuery& query) {
  const PreprocessResult& pre =
      query.flat ? dataset.flat_preprocessed() : dataset.preprocessed();
  std::vector<Frequency> supports(candidates.size(), 0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    const NamedPattern& candidate = candidates[c];
    if (candidate.items.empty() || candidate.items.size() > query.lambda) {
      continue;
    }
    Sequence ranks;
    ranks.reserve(candidate.items.size());
    bool known = true;
    for (const std::string& name : candidate.items) {
      const ItemId rank = dataset.RankOfName(name, query.flat);
      if (rank == kInvalidItem) {
        known = false;
        break;
      }
      ranks.push_back(rank);
    }
    if (!known) continue;  // absent from this shard's vocabulary: support 0
    Frequency support = 0;
    for (size_t t = 0; t < pre.database.size(); ++t) {
      if (Matches(ranks, pre.database[t], pre.hierarchy, query.gamma)) {
        ++support;
      }
    }
    supports[c] = support;
  }
  return supports;
}

}  // namespace lash::serve
