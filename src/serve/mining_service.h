#ifndef LASH_SERVE_MINING_SERVICE_H_
#define LASH_SERVE_MINING_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/lash_api.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/executor.h"
#include "serve/histogram.h"
#include "serve/result_cache.h"
#include "serve/task_spec.h"

/// The serving layer above the facade (ROADMAP "Serving layer").
///
/// PR 3 drew the contract — `Dataset` shared and immutable after load,
/// `MiningTask` per request — and this subsystem is the first layer built
/// on it: a `MiningService` owns an admission-controlled executor, a
/// sharded LRU result cache, and in-flight request coalescing, and answers
/// `TaskSpec`s asynchronously through future-like `PendingResult`s. One
/// preprocessing pass is amortized across a stream of repeated queries:
/// identical concurrent requests mine once, identical later requests don't
/// mine at all.
namespace lash::serve {

/// Why a request failed. Every failure a client can observe carries one of
/// these — string matching on error messages is never needed.
enum class ServeErrorCode {
  kInvalidTask,       ///< Spec failed MiningTask::Validate (or bad shard).
  kQueueFull,         ///< Rejected at admission (AdmissionPolicy::kReject).
  kDeadlineExceeded,  ///< Deadline passed at a pipeline stage boundary.
  kCancelled,         ///< Cancel() observed at a pipeline stage boundary.
  kExecutionFailed,   ///< The mining run itself threw.
};

/// Human-readable code name ("queue_full", ...).
const char* ServeErrorCodeName(ServeErrorCode code);

/// Thrown by PendingResult::Get() for a failed request.
class ServeError : public std::runtime_error {
 public:
  ServeError(ServeErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ServeErrorCode code() const { return code_; }

 private:
  ServeErrorCode code_;
};

/// A successful answer. The CachedResult is shared with the cache and with
/// every other response served from the same execution — patterns are never
/// copied on the hit path.
struct Response {
  std::shared_ptr<const CachedResult> result;
  bool cache_hit = false;   ///< Served from the cache without mining.
  bool coalesced = false;   ///< Attached to an execution already in flight.
  double latency_ms = 0;    ///< Submit → resolve wall clock.

  const RunResult& run() const { return result->run; }
  const PatternMap& patterns() const { return result->patterns; }
};

namespace internal {
struct RequestState;
}  // namespace internal

/// Future-like handle to a submitted request. Copyable (shared-state
/// semantics, like std::shared_future); resolved exactly once by the
/// service, with either a Response or a ServeError.
class PendingResult {
 public:
  /// Blocks until the request is resolved.
  void Wait() const;
  /// Waits up to `timeout_ms`; returns whether the request resolved.
  bool WaitFor(double timeout_ms) const;
  bool ready() const;

  /// Requests cancellation. Best-effort: observed by the service between
  /// pipeline stages (a request whose mining already started still
  /// completes and populates the cache, but this waiter's result is
  /// discarded and Get() throws kCancelled).
  void Cancel();

  /// Waits and returns the response; throws ServeError on failure.
  const Response& Get() const;

  /// Waits; true iff the request succeeded (Get() will not throw).
  bool ok() const;
  /// Waits; the failure code (only meaningful when !ok()).
  ServeErrorCode error_code() const;
  /// Waits; the failure message ("" on success).
  std::string error_message() const;

 private:
  friend class MiningService;
  explicit PendingResult(std::shared_ptr<internal::RequestState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::RequestState> state_;
};

struct ServiceOptions {
  /// Executor workers (0 = hardware concurrency). Each worker runs one
  /// request at a time; the request's own mining may parallelize further
  /// (TaskSpec::threads / job config), so size this to concurrent
  /// *requests*, not cores.
  size_t executor_threads = 0;
  /// Bounded admission queue capacity (requests admitted but not started).
  size_t queue_capacity = 64;
  AdmissionPolicy admission = AdmissionPolicy::kReject;
  /// Result-cache byte budget across shards; 0 disables caching (requests
  /// still coalesce).
  uint64_t cache_bytes = uint64_t{64} << 20;
  size_t cache_shards = 8;
  /// Instrumentation/test seam: called on the executor worker immediately
  /// before a request mines (after the dequeue-time deadline/cancel check).
  /// Tests use it to gate execution deterministically; leave empty in
  /// production.
  std::function<void(const TaskSpec&)> pre_execute_hook;
  /// Event-loop seam: called once per request right after it resolves
  /// (success or typed failure), on whichever thread performed the
  /// resolution — the submitting thread for cache hits and validation
  /// failures, an executor worker otherwise. The network front door
  /// (net/service_backend.h) uses it to wake its epoll loop instead of
  /// polling PendingResults; must be cheap and must not call back into the
  /// service.
  std::function<void()> post_resolve_hook;
  /// Registry the service registers its serve.* instruments into. Null (the
  /// default) gives the service a private registry — counters stay isolated
  /// when many services share a process (tests). Tools serving one service
  /// pass &obs::MetricsRegistry::Global() so the stats RPC sees everything.
  obs::MetricsRegistry* metrics = nullptr;
  /// Slow-query log threshold in milliseconds; 0 disables. A request whose
  /// submit→resolve latency reaches the threshold logs one stderr line
  /// (outcome, latency, cache/coalesce flags, trace id when present) at
  /// resolve time.
  double slow_query_ms = 0;
};

/// One consistent snapshot of the service counters — since PR 9 a *view*
/// over the metrics registry: every field below is read from a named
/// serve.* instrument (serve.requests.*, serve.cache.*,
/// serve.executor.queue_depth, serve.latency.{hit,mine}_ms), so Stats()
/// and the registry's own exposition can never disagree.
///
/// Identities (steady state, no requests in flight):
///   submitted == hits + misses + coalesced + invalid
///   submitted == completed + rejected + cancelled + deadline_expired
///                + invalid + failed
/// Every submitted request resolves exactly once, into exactly one of the
/// outcome counters of the second identity. `executions` can be smaller
/// than `misses`: a miss whose waiters all cancelled or expired before a
/// worker picked it up never mines, and an admission-rejected miss never
/// reaches a worker at all.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t hits = 0;       ///< Resolved from the cache at submit time.
  uint64_t misses = 0;     ///< Created a new execution.
  uint64_t coalesced = 0;  ///< Attached to an in-flight execution.
  uint64_t invalid = 0;    ///< Failed validation at submit time.

  uint64_t completed = 0;  ///< Requests resolved with a Response.
  uint64_t rejected = 0;   ///< Requests shed at admission (queue full).
  uint64_t cancelled = 0;
  uint64_t deadline_expired = 0;
  uint64_t failed = 0;     ///< Mining threw (counts requests, not runs).

  uint64_t executions = 0;          ///< Mining runs actually performed.
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_oversized_rejects = 0;
  size_t queue_depth = 0;

  /// Submit→resolve latency of cache hits / of mined (miss + coalesced)
  /// requests, from the fixed-bucket histograms.
  double hit_p50_ms = 0, hit_p95_ms = 0, hit_mean_ms = 0;
  double mine_p50_ms = 0, mine_p95_ms = 0, mine_mean_ms = 0;
};

/// A concurrent mining service over one or more immutable Dataset shards.
///
/// Threading: Submit/SubmitBatch/Stats may be called from any number of
/// threads. Shards are borrowed (the Dataset contract: "a serving layer
/// holds it behind a pointer") and must outlive the service; they are never
/// mutated beyond Dataset's internal thread-safe lazy flat preprocessing.
/// Destruction drains admitted work — every pending request resolves before
/// the destructor returns; submitting concurrently with destruction is a
/// contract violation.
///
/// Request pipeline: validate → cache lookup → coalesce-or-admit → queue →
/// [worker] dequeue-time deadline/cancel check → mine → cache fill →
/// delivery-time deadline/cancel check → resolve. Deadlines and
/// cancellation are checked between stages, never preemptively.
class MiningService {
 public:
  explicit MiningService(const Dataset& dataset, ServiceOptions options = {});
  MiningService(std::vector<const Dataset*> shards,
                ServiceOptions options = {});
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  /// Submits one request. Never throws: every failure (invalid spec, queue
  /// full, ...) is delivered through the PendingResult as a typed error.
  PendingResult Submit(const TaskSpec& spec);

  /// Fans out a batch; results are index-aligned with `specs`. Duplicate
  /// specs within a batch coalesce onto one execution like any other
  /// concurrent duplicates.
  std::vector<PendingResult> SubmitBatch(const std::vector<TaskSpec>& specs);

  ServiceStats Stats() const;

  /// The registry this service records into — the caller-supplied one, or
  /// the service's private registry when none was given.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  size_t num_shards() const { return shards_.size(); }
  const Dataset& shard(size_t index) const { return *shards_[index]; }

 private:
  struct Execution;

  void Execute(const std::shared_ptr<Execution>& exec);
  void ResolveResponse(const std::shared_ptr<internal::RequestState>& state,
                       std::shared_ptr<const CachedResult> result,
                       bool cache_hit);
  void FailRequest(const std::shared_ptr<internal::RequestState>& state,
                   ServeErrorCode code, const std::string& message);
  void MaybeLogSlow(const internal::RequestState& state, double latency_ms,
                    const char* outcome) const;

  std::vector<const Dataset*> shards_;
  ServiceOptions options_;

  /// Engaged iff ServiceOptions::metrics was null; `metrics_` always points
  /// at the registry in use. Declared before the cache and the executor,
  /// which register instruments into it during construction.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;

  ResultCache cache_;

  /// The serve.requests.* / serve.latency.* instruments, resolved once at
  /// construction; recording is lock-free (obs/metrics.h).
  struct Instruments {
    obs::Counter* submitted;
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* coalesced;
    obs::Counter* invalid;
    obs::Counter* completed;
    obs::Counter* rejected;
    obs::Counter* cancelled;
    obs::Counter* deadline_expired;
    obs::Counter* failed;
    obs::Counter* executions;
    obs::LatencyHistogram* hit_latency;
    obs::LatencyHistogram* mine_latency;
  };
  static Instruments MakeInstruments(obs::MetricsRegistry& registry);
  Instruments inst_;

  /// Guards the in-flight table and every Execution::waiters list.
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Execution>> inflight_;

  /// Declared last: destroyed first, draining the queue while the cache,
  /// the in-flight table, and the shards are still alive.
  AdmissionExecutor executor_;
};

}  // namespace lash::serve

#endif  // LASH_SERVE_MINING_SERVICE_H_
