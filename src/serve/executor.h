#ifndef LASH_SERVE_EXECUTOR_H_
#define LASH_SERVE_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace lash::serve {

/// What a full admission queue does to a new submission.
enum class AdmissionPolicy {
  /// Submit returns false immediately — load shedding; the caller turns
  /// the rejection into a typed error for its client.
  kReject,
  /// Submit blocks the submitting thread until a slot frees up —
  /// backpressure; useful for batch drivers that must not drop work.
  kBlock,
};

/// An admission-controlled executor: a bounded task queue in front of the
/// existing ThreadPool.
///
/// ThreadPool's own queue is unbounded by design (MapReduce phases submit a
/// known, finite task set). A serving layer cannot use that directly — an
/// unbounded queue under sustained overload grows without limit and every
/// queued request's latency with it. AdmissionExecutor bounds the queue and
/// makes the overflow behavior an explicit policy; the pool's workers run
/// pump loops that drain the bounded queue, so task execution itself (and
/// ThreadPool::CurrentIndex-based scratch in the mining code below) is
/// unchanged.
///
/// Destruction drains the queue: tasks already admitted are executed, then
/// the workers exit. Submissions concurrent with destruction are a caller
/// contract violation (same as ThreadPool).
class AdmissionExecutor {
 public:
  /// `num_threads` as ThreadPool (0 is promoted to 1); `queue_capacity` is
  /// the maximum number of admitted-but-not-yet-started tasks (at least 1).
  /// `queue_depth_gauge`, if given, tracks the admitted-but-unstarted count
  /// live (the serve.executor.queue_depth metric) — previously that number
  /// was observable only by polling QueueDepth().
  AdmissionExecutor(size_t num_threads, size_t queue_capacity,
                    AdmissionPolicy policy,
                    obs::Gauge* queue_depth_gauge = nullptr);
  ~AdmissionExecutor();

  AdmissionExecutor(const AdmissionExecutor&) = delete;
  AdmissionExecutor& operator=(const AdmissionExecutor&) = delete;

  /// Admits `task` for execution. Returns false if the task was not
  /// admitted: the queue is full under AdmissionPolicy::kReject, or the
  /// executor is shutting down (under kBlock, waits for a slot instead of
  /// failing). A false return means `task` will never run.
  bool Submit(std::function<void()> task);

  /// Tasks admitted but not yet picked up by a worker.
  size_t QueueDepth() const;

  size_t num_threads() const { return pool_.num_threads(); }

 private:
  void PumpLoop();

  const size_t capacity_;
  const AdmissionPolicy policy_;
  obs::Gauge* const queue_depth_gauge_;  ///< May be null.

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable space_ready_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;

  /// Declared last: destroyed first, which joins the pump loops — they must
  /// observe `shutdown_` (set in ~AdmissionExecutor before members die) and
  /// drain `queue_` while both still exist.
  ThreadPool pool_;
};

}  // namespace lash::serve

#endif  // LASH_SERVE_EXECUTOR_H_
