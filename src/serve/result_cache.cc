#include "serve/result_cache.h"

#include <bit>
#include <utility>

#include "util/hash.h"

namespace lash::serve {

uint64_t EstimateResultCost(const std::string& key,
                            const CachedResult& result) {
  // Per-pattern: the items, the frequency, and a flat allowance for the
  // PatternMap node (bucket slot + node header). Constants are deliberately
  // round — the budget steers eviction, it is not an allocator audit.
  constexpr uint64_t kPerPatternOverhead = 48;
  uint64_t bytes = key.size() + sizeof(CachedResult) +
                   sizeof(double) * (result.run.job.map_task_ms.size() +
                                     result.run.job.reduce_task_ms.size());
  for (const auto& [seq, freq] : result.patterns) {
    (void)freq;
    bytes += seq.size() * sizeof(ItemId) + sizeof(Frequency) +
             kPerPatternOverhead;
  }
  return bytes;
}

ResultCache::ResultCache(uint64_t byte_budget, size_t num_shards,
                         obs::MetricsRegistry* metrics) {
  size_t shards = std::bit_ceil(num_shards == 0 ? size_t{1} : num_shards);
  // A budget too small to split is concentrated in one shard rather than
  // rounded down to zero per shard (which would silently disable caching).
  if (byte_budget > 0 && byte_budget / shards == 0) shards = 1;
  shard_budget_ = byte_budget / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (metrics != nullptr) {
    bytes_gauge_ = metrics->GetGauge("serve.cache.bytes");
    entries_gauge_ = metrics->GetGauge("serve.cache.entries");
    evictions_counter_ = metrics->GetCounter("serve.cache.evictions");
    oversized_counter_ = metrics->GetCounter("serve.cache.oversized_rejects");
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  const uint64_t h = FnvHashBytes(key.data(), key.size());
  return *shards_[h & (shards_.size() - 1)];
}

std::shared_ptr<const CachedResult> ResultCache::Get(const std::string& key) {
  if (shard_budget_ == 0) return nullptr;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const CachedResult> value) {
  if (shard_budget_ == 0) return;
  const uint64_t cost = value->cost_bytes;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (cost > shard_budget_) {
    ++shard.oversized_rejects;
    if (oversized_counter_ != nullptr) oversized_counter_->Add();
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place (coalescing makes duplicate executions rare but a
    // lost submit/execute race can produce one); the entry becomes MRU.
    const uint64_t old_cost = it->second->value->cost_bytes;
    shard.bytes -= old_cost;
    shard.bytes += cost;
    if (bytes_gauge_ != nullptr) {
      bytes_gauge_->Add(static_cast<int64_t>(cost) -
                        static_cast<int64_t>(old_cost));
    }
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(value)});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += cost;
    if (bytes_gauge_ != nullptr) bytes_gauge_->Add(static_cast<int64_t>(cost));
    if (entries_gauge_ != nullptr) entries_gauge_->Add(1);
  }
  while (shard.bytes > shard_budget_) {
    Entry& cold = shard.lru.back();
    const uint64_t cold_cost = cold.value->cost_bytes;
    shard.bytes -= cold_cost;
    if (bytes_gauge_ != nullptr) {
      bytes_gauge_->Sub(static_cast<int64_t>(cold_cost));
    }
    if (entries_gauge_ != nullptr) entries_gauge_->Sub(1);
    shard.index.erase(cold.key);
    shard.lru.pop_back();
    ++shard.evictions;
    if (evictions_counter_ != nullptr) evictions_counter_->Add();
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  stats.budget_bytes = shard_budget_ * shards_.size();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
    stats.evictions += shard->evictions;
    stats.oversized_rejects += shard->oversized_rejects;
  }
  return stats;
}

}  // namespace lash::serve
