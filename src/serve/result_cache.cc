#include "serve/result_cache.h"

#include <bit>
#include <utility>

#include "util/hash.h"

namespace lash::serve {

uint64_t EstimateResultCost(const std::string& key,
                            const CachedResult& result) {
  // Per-pattern: the items, the frequency, and a flat allowance for the
  // PatternMap node (bucket slot + node header). Constants are deliberately
  // round — the budget steers eviction, it is not an allocator audit.
  constexpr uint64_t kPerPatternOverhead = 48;
  uint64_t bytes = key.size() + sizeof(CachedResult) +
                   sizeof(double) * (result.run.job.map_task_ms.size() +
                                     result.run.job.reduce_task_ms.size());
  for (const auto& [seq, freq] : result.patterns) {
    (void)freq;
    bytes += seq.size() * sizeof(ItemId) + sizeof(Frequency) +
             kPerPatternOverhead;
  }
  return bytes;
}

ResultCache::ResultCache(uint64_t byte_budget, size_t num_shards) {
  size_t shards = std::bit_ceil(num_shards == 0 ? size_t{1} : num_shards);
  // A budget too small to split is concentrated in one shard rather than
  // rounded down to zero per shard (which would silently disable caching).
  if (byte_budget > 0 && byte_budget / shards == 0) shards = 1;
  shard_budget_ = byte_budget / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  const uint64_t h = FnvHashBytes(key.data(), key.size());
  return *shards_[h & (shards_.size() - 1)];
}

std::shared_ptr<const CachedResult> ResultCache::Get(const std::string& key) {
  if (shard_budget_ == 0) return nullptr;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const CachedResult> value) {
  if (shard_budget_ == 0) return;
  const uint64_t cost = value->cost_bytes;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (cost > shard_budget_) {
    ++shard.oversized_rejects;
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place (coalescing makes duplicate executions rare but a
    // lost submit/execute race can produce one); the entry becomes MRU.
    shard.bytes -= it->second->value->cost_bytes;
    shard.bytes += cost;
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(value)});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += cost;
  }
  while (shard.bytes > shard_budget_) {
    Entry& cold = shard.lru.back();
    shard.bytes -= cold.value->cost_bytes;
    shard.index.erase(cold.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  stats.budget_bytes = shard_budget_ * shards_.size();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
    stats.evictions += shard->evictions;
    stats.oversized_rejects += shard->oversized_rejects;
  }
  return stats;
}

}  // namespace lash::serve
