#ifndef LASH_SERVE_RESULT_CACHE_H_
#define LASH_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/lash_api.h"
#include "obs/metrics.h"

namespace lash::serve {

/// One finished execution, shared immutably between the cache and every
/// response that was served from it: the unified RunResult (timings and
/// counters of the execution that populated the entry — a cache hit
/// deliberately reports the original run's statistics) plus the emitted
/// patterns in rank space.
struct CachedResult {
  RunResult run;
  PatternMap patterns;
  /// Approximate resident footprint, fixed at insert time (see
  /// EstimateResultCost); the eviction currency of ResultCache.
  uint64_t cost_bytes = 0;
};

/// Approximate bytes held by a cached entry: the key, the pattern payload
/// (items + frequency + an allowance for the hash-map node of each
/// pattern), and the fixed structs. Deliberately deterministic — tests and
/// eviction reasoning depend on equal results costing equal bytes.
uint64_t EstimateResultCost(const std::string& key, const CachedResult& result);

/// A sharded, cost-aware LRU cache from canonical cache-key bytes to
/// CachedResults.
///
/// Shards are selected by FNV over the key bytes (util/hash.h), so
/// contention scales with shard count while equal keys always meet the
/// same shard. Each shard keeps an intrusive recency list and evicts from
/// the cold end until its slice of the byte budget is respected. Values
/// are handed out as shared_ptr: eviction never invalidates a response a
/// caller is still holding.
class ResultCache {
 public:
  /// `byte_budget` is the total across shards (a per-shard slice is
  /// enforced, so worst-case residency is the budget regardless of key
  /// skew); 0 disables caching entirely. `num_shards` is rounded up to a
  /// power of two, at least 1. `metrics`, if given, registers the
  /// serve.cache.* instruments (resident bytes/entries as live gauges,
  /// evictions/oversized rejects as counters) updated by delta under the
  /// owning shard's lock; the per-shard counters behind GetStats() are
  /// unchanged.
  ResultCache(uint64_t byte_budget, size_t num_shards,
              obs::MetricsRegistry* metrics = nullptr);

  /// Returns the entry for `key` and marks it most-recently-used, or null.
  std::shared_ptr<const CachedResult> Get(const std::string& key);

  /// Inserts (or replaces) `key`. An entry whose cost exceeds the whole
  /// shard slice is not admitted (it would only evict everything else and
  /// then be evicted by the next insert). No-op when caching is disabled.
  void Put(const std::string& key, std::shared_ptr<const CachedResult> value);

  struct Stats {
    uint64_t budget_bytes = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
    uint64_t evictions = 0;
    uint64_t oversized_rejects = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedResult> value;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    uint64_t bytes = 0;
    uint64_t evictions = 0;
    uint64_t oversized_rejects = 0;
  };

  Shard& ShardFor(const std::string& key);

  uint64_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Registry instruments (all null when no registry was given).
  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* oversized_counter_ = nullptr;
};

}  // namespace lash::serve

#endif  // LASH_SERVE_RESULT_CACHE_H_
