#include "serve/mining_service.h"

#include <exception>
#include <thread>
#include <utility>

namespace lash::serve {

namespace internal {

/// Shared state behind a PendingResult. Resolved exactly once, under `mu`,
/// by the service; `cancel_requested` is the only field a client writes
/// after submission.
struct RequestState {
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  bool failed = false;
  Response response;
  ServeErrorCode code = ServeErrorCode::kInvalidTask;
  std::string error;

  std::atomic<bool> cancel_requested{false};
  /// Set at attach time (under the service mutex, before the worker can see
  /// this waiter), read only at resolve time.
  bool coalesced_join = false;

  Clock::time_point submit_time;
  Clock::time_point deadline = Clock::time_point::max();

  bool DeadlinePassed(Clock::time_point now) const { return now >= deadline; }

  double ElapsedMs(Clock::time_point now) const {
    return std::chrono::duration<double, std::milli>(now - submit_time)
        .count();
  }
};

}  // namespace internal

namespace {

using internal::RequestState;
using Clock = RequestState::Clock;

}  // namespace

const char* ServeErrorCodeName(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kInvalidTask: return "invalid_task";
    case ServeErrorCode::kQueueFull: return "queue_full";
    case ServeErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ServeErrorCode::kCancelled: return "cancelled";
    case ServeErrorCode::kExecutionFailed: return "execution_failed";
  }
  return "unknown";
}

// ---- PendingResult -------------------------------------------------------

void PendingResult::Wait() const {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
}

bool PendingResult::WaitFor(double timeout_ms) const {
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [&] { return state_->done; });
}

bool PendingResult::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void PendingResult::Cancel() {
  state_->cancel_requested.store(true, std::memory_order_relaxed);
}

const Response& PendingResult::Get() const {
  Wait();
  // `done` is monotonic: no lock needed after Wait observes it.
  if (state_->failed) throw ServeError(state_->code, state_->error);
  return state_->response;
}

bool PendingResult::ok() const {
  Wait();
  return !state_->failed;
}

ServeErrorCode PendingResult::error_code() const {
  Wait();
  return state_->code;
}

std::string PendingResult::error_message() const {
  Wait();
  return state_->failed ? state_->error : std::string();
}

// ---- MiningService -------------------------------------------------------

/// One in-flight execution: the canonical key, the spec that will be mined,
/// and every request waiting on the outcome. `waiters` is guarded by the
/// service mutex; the key doubles as the in-flight table key.
struct MiningService::Execution {
  std::string key;
  TaskSpec spec;
  std::vector<std::shared_ptr<RequestState>> waiters;
};

MiningService::MiningService(const Dataset& dataset, ServiceOptions options)
    : MiningService(std::vector<const Dataset*>{&dataset},
                    std::move(options)) {}

MiningService::MiningService(std::vector<const Dataset*> shards,
                             ServiceOptions options)
    : shards_(std::move(shards)),
      options_(std::move(options)),
      cache_(options_.cache_bytes, options_.cache_shards),
      // 0 means hardware concurrency here (the documented default);
      // ThreadPool itself would promote 0 to a single thread.
      executor_(options_.executor_threads > 0
                    ? options_.executor_threads
                    : std::thread::hardware_concurrency(),
                options_.queue_capacity, options_.admission) {
  if (shards_.empty()) {
    throw ApiError("MiningService needs at least one Dataset shard");
  }
}

MiningService::~MiningService() = default;

void MiningService::ResolveResponse(
    const std::shared_ptr<RequestState>& state,
    std::shared_ptr<const CachedResult> result, bool cache_hit) {
  const auto now = Clock::now();
  const double latency = state->ElapsedMs(now);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return;
    // Counters and histograms update before `done` is observable, so a
    // client reading Stats() right after Get() returns sees this request
    // accounted for.
    (cache_hit ? hit_latency_ : mine_latency_).Record(latency);
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
    state->response.result = std::move(result);
    state->response.cache_hit = cache_hit;
    state->response.coalesced = state->coalesced_join;
    state->response.latency_ms = latency;
    state->done = true;
  }
  state->cv.notify_all();
  if (options_.post_resolve_hook) options_.post_resolve_hook();
}

void MiningService::FailRequest(const std::shared_ptr<RequestState>& state,
                                ServeErrorCode code,
                                const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return;
    // Outcome counter before `done`, for the same Stats() visibility
    // guarantee as ResolveResponse.
    switch (code) {
      case ServeErrorCode::kInvalidTask:
        counters_.invalid.fetch_add(1, std::memory_order_relaxed);
        break;
      case ServeErrorCode::kQueueFull:
        counters_.rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      case ServeErrorCode::kDeadlineExceeded:
        counters_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        break;
      case ServeErrorCode::kCancelled:
        counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case ServeErrorCode::kExecutionFailed:
        counters_.failed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    state->failed = true;
    state->code = code;
    state->error = message;
    state->done = true;
  }
  state->cv.notify_all();
  if (options_.post_resolve_hook) options_.post_resolve_hook();
}

PendingResult MiningService::Submit(const TaskSpec& spec) {
  auto state = std::make_shared<RequestState>();
  state->submit_time = Clock::now();
  if (spec.deadline_ms > 0) {
    state->deadline =
        state->submit_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(spec.deadline_ms));
  }
  PendingResult pending(state);
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);

  // Stage 1: validate synchronously, so a broken spec fails fast without
  // consuming queue capacity and a worker never sees an invalid task.
  if (spec.shard >= shards_.size()) {
    FailRequest(state, ServeErrorCode::kInvalidTask,
                "TaskSpec.shard " + std::to_string(spec.shard) +
                    " out of range (service has " +
                    std::to_string(shards_.size()) + " shard(s))");
    return pending;
  }
  const Dataset& dataset = *shards_[spec.shard];
  {
    std::vector<std::string> problems = MakeTask(dataset, spec).Validate();
    if (!problems.empty()) {
      std::string message = "invalid TaskSpec:";
      for (const std::string& p : problems) message += "\n  - " + p;
      FailRequest(state, ServeErrorCode::kInvalidTask, message);
      return pending;
    }
  }

  // Stage 2: cache lookup — a hit resolves on the submitting thread.
  std::string key = EncodeCacheKey(dataset.id(), spec);
  if (std::shared_ptr<const CachedResult> hit = cache_.Get(key)) {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    ResolveResponse(state, std::move(hit), /*cache_hit=*/true);
    return pending;
  }

  // Stage 3: coalesce or become the leader of a new execution. (A miss
  // here can race an execution that completes between the cache probe and
  // this lock; the second execution then recomputes an identical result —
  // harmless, and far cheaper than holding one lock across both.)
  std::shared_ptr<Execution> exec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      state->coalesced_join = true;
      it->second->waiters.push_back(state);
      counters_.coalesced.fetch_add(1, std::memory_order_relaxed);
      return pending;
    }
    exec = std::make_shared<Execution>();
    exec->key = std::move(key);
    exec->spec = spec;
    exec->waiters.push_back(state);
    inflight_.emplace(exec->key, exec);
  }
  counters_.misses.fetch_add(1, std::memory_order_relaxed);

  // Stage 4: admission. Under kBlock this Submit call is where the
  // backpressure is felt (the submitting thread waits for queue space).
  if (!executor_.Submit([this, exec] { Execute(exec); })) {
    std::vector<std::shared_ptr<RequestState>> waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      waiters = std::move(exec->waiters);
      inflight_.erase(exec->key);
    }
    // Coalescers that attached while admission was failing are shed with
    // the leader — their execution never existed.
    for (const auto& waiter : waiters) {
      FailRequest(waiter, ServeErrorCode::kQueueFull,
                  "admission queue full (capacity " +
                      std::to_string(options_.queue_capacity) + ")");
    }
  }
  return pending;
}

std::vector<PendingResult> MiningService::SubmitBatch(
    const std::vector<TaskSpec>& specs) {
  std::vector<PendingResult> results;
  results.reserve(specs.size());
  for (const TaskSpec& spec : specs) results.push_back(Submit(spec));
  return results;
}

void MiningService::Execute(const std::shared_ptr<Execution>& exec) {
  // Stage 5 (worker, dequeue boundary): drop waiters whose deadline passed
  // while queued or that cancelled; if nobody is left, the mining is
  // skipped entirely. Pruning and the empty-check share one critical
  // section with the in-flight erase, so a new submitter either attaches
  // before the decision or starts a fresh execution after it.
  std::vector<std::shared_ptr<RequestState>> pruned;
  bool abandoned = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = Clock::now();
    auto& waiters = exec->waiters;
    for (size_t i = 0; i < waiters.size();) {
      if (waiters[i]->cancel_requested.load(std::memory_order_relaxed) ||
          waiters[i]->DeadlinePassed(now)) {
        pruned.push_back(std::move(waiters[i]));
        waiters[i] = std::move(waiters.back());
        waiters.pop_back();
      } else {
        ++i;
      }
    }
    if (waiters.empty()) {
      inflight_.erase(exec->key);
      abandoned = true;
    }
  }
  for (const auto& waiter : pruned) {
    if (waiter->cancel_requested.load(std::memory_order_relaxed)) {
      FailRequest(waiter, ServeErrorCode::kCancelled,
                  "request cancelled before execution started");
    } else {
      FailRequest(waiter, ServeErrorCode::kDeadlineExceeded,
                  "deadline expired before execution started");
    }
  }
  if (abandoned) return;  // Every waiter is gone; don't mine for nobody.

  if (options_.pre_execute_hook) options_.pre_execute_hook(exec->spec);

  // Stage 6: mine. The spec was validated at submit, so an exception here
  // is an execution failure (e.g. resource exhaustion), not user error.
  counters_.executions.fetch_add(1, std::memory_order_relaxed);
  auto cached = std::make_shared<CachedResult>();
  try {
    const Dataset& dataset = *shards_[exec->spec.shard];
    MiningTask task = MakeTask(dataset, exec->spec);
    cached->patterns = task.Mine(&cached->run);
  } catch (const std::exception& e) {
    std::vector<std::shared_ptr<RequestState>> waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      waiters = std::move(exec->waiters);
      inflight_.erase(exec->key);
    }
    for (const auto& waiter : waiters) {
      FailRequest(waiter, ServeErrorCode::kExecutionFailed, e.what());
    }
    return;
  }
  cached->cost_bytes = EstimateResultCost(exec->key, *cached);

  // Stage 7: publish then retire. Cache fill happens *before* the in-flight
  // erase, so a submitter can never miss both (miss the cache, then find no
  // execution) for a result that exists.
  cache_.Put(exec->key, cached);
  std::vector<std::shared_ptr<RequestState>> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    waiters = std::move(exec->waiters);
    inflight_.erase(exec->key);
  }

  // Stage 8 (delivery boundary): the final deadline/cancel check.
  const auto now = Clock::now();
  for (const auto& waiter : waiters) {
    if (waiter->cancel_requested.load(std::memory_order_relaxed)) {
      FailRequest(waiter, ServeErrorCode::kCancelled,
                  "request cancelled during execution");
    } else if (waiter->DeadlinePassed(now)) {
      FailRequest(waiter, ServeErrorCode::kDeadlineExceeded,
                  "deadline expired during execution");
    } else {
      ResolveResponse(waiter, cached, /*cache_hit=*/false);
    }
  }
}

ServiceStats MiningService::Stats() const {
  ServiceStats stats;
  stats.submitted = counters_.submitted.load(std::memory_order_relaxed);
  stats.hits = counters_.hits.load(std::memory_order_relaxed);
  stats.misses = counters_.misses.load(std::memory_order_relaxed);
  stats.coalesced = counters_.coalesced.load(std::memory_order_relaxed);
  stats.invalid = counters_.invalid.load(std::memory_order_relaxed);
  stats.completed = counters_.completed.load(std::memory_order_relaxed);
  stats.rejected = counters_.rejected.load(std::memory_order_relaxed);
  stats.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  stats.deadline_expired =
      counters_.deadline_expired.load(std::memory_order_relaxed);
  stats.failed = counters_.failed.load(std::memory_order_relaxed);
  stats.executions = counters_.executions.load(std::memory_order_relaxed);

  const ResultCache::Stats cache = cache_.GetStats();
  stats.cache_entries = cache.entries;
  stats.cache_bytes = cache.bytes;
  stats.cache_evictions = cache.evictions;
  stats.cache_oversized_rejects = cache.oversized_rejects;
  stats.queue_depth = executor_.QueueDepth();

  const LatencyHistogram::Snapshot hit = hit_latency_.TakeSnapshot();
  stats.hit_p50_ms = hit.PercentileMs(0.50);
  stats.hit_p95_ms = hit.PercentileMs(0.95);
  stats.hit_mean_ms = hit.MeanMs();
  const LatencyHistogram::Snapshot mine = mine_latency_.TakeSnapshot();
  stats.mine_p50_ms = mine.PercentileMs(0.50);
  stats.mine_p95_ms = mine.PercentileMs(0.95);
  stats.mine_mean_ms = mine.MeanMs();
  return stats;
}

}  // namespace lash::serve
