#include "serve/mining_service.h"

#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

namespace lash::serve {

namespace internal {

/// Shared state behind a PendingResult. Resolved exactly once, under `mu`,
/// by the service; `cancel_requested` is the only field a client writes
/// after submission.
struct RequestState {
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  bool failed = false;
  Response response;
  ServeErrorCode code = ServeErrorCode::kInvalidTask;
  std::string error;

  std::atomic<bool> cancel_requested{false};
  /// Set at attach time (under the service mutex, before the worker can see
  /// this waiter), read only at resolve time.
  bool coalesced_join = false;

  /// The request's trace id (inactive for untraced requests — kept for the
  /// slow-query log even when the tracer itself is off) and its root
  /// `serve.request` span, ended exactly once at resolve time under `mu`.
  obs::TraceId trace_id;
  obs::Span root_span;

  Clock::time_point submit_time;
  Clock::time_point deadline = Clock::time_point::max();

  bool DeadlinePassed(Clock::time_point now) const { return now >= deadline; }

  double ElapsedMs(Clock::time_point now) const {
    return std::chrono::duration<double, std::milli>(now - submit_time)
        .count();
  }
};

}  // namespace internal

namespace {

using internal::RequestState;
using Clock = RequestState::Clock;

}  // namespace

const char* ServeErrorCodeName(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kInvalidTask: return "invalid_task";
    case ServeErrorCode::kQueueFull: return "queue_full";
    case ServeErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ServeErrorCode::kCancelled: return "cancelled";
    case ServeErrorCode::kExecutionFailed: return "execution_failed";
  }
  return "unknown";
}

// ---- PendingResult -------------------------------------------------------

void PendingResult::Wait() const {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
}

bool PendingResult::WaitFor(double timeout_ms) const {
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [&] { return state_->done; });
}

bool PendingResult::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void PendingResult::Cancel() {
  state_->cancel_requested.store(true, std::memory_order_relaxed);
}

const Response& PendingResult::Get() const {
  Wait();
  // `done` is monotonic: no lock needed after Wait observes it.
  if (state_->failed) throw ServeError(state_->code, state_->error);
  return state_->response;
}

bool PendingResult::ok() const {
  Wait();
  return !state_->failed;
}

ServeErrorCode PendingResult::error_code() const {
  Wait();
  return state_->code;
}

std::string PendingResult::error_message() const {
  Wait();
  return state_->failed ? state_->error : std::string();
}

// ---- MiningService -------------------------------------------------------

/// One in-flight execution: the canonical key, the spec that will be mined,
/// and every request waiting on the outcome. `waiters` is guarded by the
/// service mutex; the key doubles as the in-flight table key.
struct MiningService::Execution {
  std::string key;
  TaskSpec spec;
  std::vector<std::shared_ptr<RequestState>> waiters;
  /// The leader's serve.request context (inactive for untraced leaders);
  /// the parent of the execution-scoped serve.queue / serve.mine spans.
  obs::TraceContext trace_ctx;
  /// Covers admission → dequeue; ended by the worker that picks this up.
  obs::Span queue_span;
};

MiningService::MiningService(const Dataset& dataset, ServiceOptions options)
    : MiningService(std::vector<const Dataset*>{&dataset},
                    std::move(options)) {}

MiningService::Instruments MiningService::MakeInstruments(
    obs::MetricsRegistry& registry) {
  return Instruments{
      registry.GetCounter("serve.requests.submitted"),
      registry.GetCounter("serve.requests.hits"),
      registry.GetCounter("serve.requests.misses"),
      registry.GetCounter("serve.requests.coalesced"),
      registry.GetCounter("serve.requests.invalid"),
      registry.GetCounter("serve.requests.completed"),
      registry.GetCounter("serve.requests.rejected"),
      registry.GetCounter("serve.requests.cancelled"),
      registry.GetCounter("serve.requests.deadline_expired"),
      registry.GetCounter("serve.requests.failed"),
      registry.GetCounter("serve.requests.executions"),
      registry.GetHistogram("serve.latency.hit_ms"),
      registry.GetHistogram("serve.latency.mine_ms"),
  };
}

MiningService::MiningService(std::vector<const Dataset*> shards,
                             ServiceOptions options)
    : shards_(std::move(shards)),
      options_(std::move(options)),
      owned_metrics_(options_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>()),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : owned_metrics_.get()),
      cache_(options_.cache_bytes, options_.cache_shards, metrics_),
      inst_(MakeInstruments(*metrics_)),
      // 0 means hardware concurrency here (the documented default);
      // ThreadPool itself would promote 0 to a single thread.
      executor_(options_.executor_threads > 0
                    ? options_.executor_threads
                    : std::thread::hardware_concurrency(),
                options_.queue_capacity, options_.admission,
                metrics_->GetGauge("serve.executor.queue_depth")) {
  if (shards_.empty()) {
    throw ApiError("MiningService needs at least one Dataset shard");
  }
}

MiningService::~MiningService() = default;

void MiningService::MaybeLogSlow(const RequestState& state, double latency_ms,
                                 const char* outcome) const {
  if (options_.slow_query_ms <= 0 || latency_ms < options_.slow_query_ms) {
    return;
  }
  // One line per slow request, grep-stable prefix. stderr keeps it out of
  // the tools' stdout protocol (patterns, stats) without a logging
  // dependency.
  std::fprintf(stderr,
               "[lash.slow] outcome=%s latency_ms=%.3f threshold_ms=%.3f "
               "cache_hit=%d coalesced=%d trace=%s\n",
               outcome, latency_ms, options_.slow_query_ms,
               state.response.cache_hit ? 1 : 0, state.coalesced_join ? 1 : 0,
               state.trace_id.active() ? state.trace_id.Hex().c_str() : "-");
}

void MiningService::ResolveResponse(
    const std::shared_ptr<RequestState>& state,
    std::shared_ptr<const CachedResult> result, bool cache_hit) {
  const auto now = Clock::now();
  const double latency = state->ElapsedMs(now);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return;
    // Counters and histograms update before `done` is observable, so a
    // client reading Stats() right after Get() returns sees this request
    // accounted for.
    (cache_hit ? inst_.hit_latency : inst_.mine_latency)->Record(latency);
    inst_.completed->Add();
    state->response.result = std::move(result);
    state->response.cache_hit = cache_hit;
    state->response.coalesced = state->coalesced_join;
    state->response.latency_ms = latency;
    if (state->root_span.active()) {
      state->root_span.Tag("outcome", "ok");
      state->root_span.Tag("cache_hit", cache_hit ? "true" : "false");
      state->root_span.Tag("coalesced",
                           state->coalesced_join ? "true" : "false");
      state->root_span.End();
    }
    state->done = true;
    MaybeLogSlow(*state, latency, "ok");
  }
  state->cv.notify_all();
  if (options_.post_resolve_hook) options_.post_resolve_hook();
}

void MiningService::FailRequest(const std::shared_ptr<RequestState>& state,
                                ServeErrorCode code,
                                const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return;
    // Outcome counter before `done`, for the same Stats() visibility
    // guarantee as ResolveResponse.
    switch (code) {
      case ServeErrorCode::kInvalidTask:
        inst_.invalid->Add();
        break;
      case ServeErrorCode::kQueueFull:
        inst_.rejected->Add();
        break;
      case ServeErrorCode::kDeadlineExceeded:
        inst_.deadline_expired->Add();
        break;
      case ServeErrorCode::kCancelled:
        inst_.cancelled->Add();
        break;
      case ServeErrorCode::kExecutionFailed:
        inst_.failed->Add();
        break;
    }
    state->failed = true;
    state->code = code;
    state->error = message;
    if (state->root_span.active()) {
      state->root_span.Tag("outcome", ServeErrorCodeName(code));
      state->root_span.End();
    }
    state->done = true;
    MaybeLogSlow(*state, state->ElapsedMs(Clock::now()),
                 ServeErrorCodeName(code));
  }
  state->cv.notify_all();
  if (options_.post_resolve_hook) options_.post_resolve_hook();
}

PendingResult MiningService::Submit(const TaskSpec& spec) {
  auto state = std::make_shared<RequestState>();
  state->submit_time = Clock::now();
  if (spec.deadline_ms > 0) {
    state->deadline =
        state->submit_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(spec.deadline_ms));
  }
  state->trace_id = spec.trace.trace_id;
  // Root span of this process's part of the trace; inactive (one branch,
  // nothing recorded) unless the request carries a trace id and the tracer
  // has a sink. The parent is whatever the caller propagated — a router
  // scatter leg, a client's span, or 0 for an edge request.
  state->root_span =
      obs::Span(&obs::Tracer::Global(), spec.trace, "serve.request");
  PendingResult pending(state);
  inst_.submitted->Add();

  // Stage 1: validate synchronously, so a broken spec fails fast without
  // consuming queue capacity and a worker never sees an invalid task.
  obs::Span validate_span(&obs::Tracer::Global(), state->root_span.context(),
                          "serve.validate");
  if (spec.shard >= shards_.size()) {
    FailRequest(state, ServeErrorCode::kInvalidTask,
                "TaskSpec.shard " + std::to_string(spec.shard) +
                    " out of range (service has " +
                    std::to_string(shards_.size()) + " shard(s))");
    return pending;
  }
  const Dataset& dataset = *shards_[spec.shard];
  {
    std::vector<std::string> problems = MakeTask(dataset, spec).Validate();
    if (!problems.empty()) {
      std::string message = "invalid TaskSpec:";
      for (const std::string& p : problems) message += "\n  - " + p;
      FailRequest(state, ServeErrorCode::kInvalidTask, message);
      return pending;
    }
  }
  validate_span.End();

  // Stage 2: cache lookup — a hit resolves on the submitting thread.
  obs::Span cache_span(&obs::Tracer::Global(), state->root_span.context(),
                       "serve.cache");
  std::string key = EncodeCacheKey(dataset.id(), spec);
  std::shared_ptr<const CachedResult> hit = cache_.Get(key);
  cache_span.Tag("hit", hit != nullptr ? "true" : "false");
  cache_span.End();
  if (hit != nullptr) {
    inst_.hits->Add();
    ResolveResponse(state, std::move(hit), /*cache_hit=*/true);
    return pending;
  }

  // Stage 3: coalesce or become the leader of a new execution. (A miss
  // here can race an execution that completes between the cache probe and
  // this lock; the second execution then recomputes an identical result —
  // harmless, and far cheaper than holding one lock across both.)
  std::shared_ptr<Execution> exec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      state->coalesced_join = true;
      it->second->waiters.push_back(state);
      inst_.coalesced->Add();
      return pending;
    }
    exec = std::make_shared<Execution>();
    exec->key = std::move(key);
    exec->spec = spec;
    exec->waiters.push_back(state);
    // The leader's context parents the execution-scoped spans; a traced
    // coalescer joining an untraced leader's execution gets its root span
    // but no queue/mine children — the execution belongs to the leader.
    exec->trace_ctx = state->root_span.context();
    exec->queue_span =
        obs::Span(&obs::Tracer::Global(), exec->trace_ctx, "serve.queue");
    inflight_.emplace(exec->key, exec);
  }
  inst_.misses->Add();

  // Stage 4: admission. Under kBlock this Submit call is where the
  // backpressure is felt (the submitting thread waits for queue space).
  if (!executor_.Submit([this, exec] { Execute(exec); })) {
    std::vector<std::shared_ptr<RequestState>> waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      waiters = std::move(exec->waiters);
      inflight_.erase(exec->key);
    }
    // Coalescers that attached while admission was failing are shed with
    // the leader — their execution never existed.
    for (const auto& waiter : waiters) {
      FailRequest(waiter, ServeErrorCode::kQueueFull,
                  "admission queue full (capacity " +
                      std::to_string(options_.queue_capacity) + ")");
    }
  }
  return pending;
}

std::vector<PendingResult> MiningService::SubmitBatch(
    const std::vector<TaskSpec>& specs) {
  std::vector<PendingResult> results;
  results.reserve(specs.size());
  for (const TaskSpec& spec : specs) results.push_back(Submit(spec));
  return results;
}

void MiningService::Execute(const std::shared_ptr<Execution>& exec) {
  // Stage 5 (worker, dequeue boundary): drop waiters whose deadline passed
  // while queued or that cancelled; if nobody is left, the mining is
  // skipped entirely. Pruning and the empty-check share one critical
  // section with the in-flight erase, so a new submitter either attaches
  // before the decision or starts a fresh execution after it.
  std::vector<std::shared_ptr<RequestState>> pruned;
  bool abandoned = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    exec->queue_span.End();  // Admission → dequeue, the queueing delay.
    const auto now = Clock::now();
    auto& waiters = exec->waiters;
    for (size_t i = 0; i < waiters.size();) {
      if (waiters[i]->cancel_requested.load(std::memory_order_relaxed) ||
          waiters[i]->DeadlinePassed(now)) {
        pruned.push_back(std::move(waiters[i]));
        waiters[i] = std::move(waiters.back());
        waiters.pop_back();
      } else {
        ++i;
      }
    }
    if (waiters.empty()) {
      inflight_.erase(exec->key);
      abandoned = true;
    }
  }
  for (const auto& waiter : pruned) {
    if (waiter->cancel_requested.load(std::memory_order_relaxed)) {
      FailRequest(waiter, ServeErrorCode::kCancelled,
                  "request cancelled before execution started");
    } else {
      FailRequest(waiter, ServeErrorCode::kDeadlineExceeded,
                  "deadline expired before execution started");
    }
  }
  if (abandoned) return;  // Every waiter is gone; don't mine for nobody.

  if (options_.pre_execute_hook) options_.pre_execute_hook(exec->spec);

  // Stage 6: mine. The spec was validated at submit, so an exception here
  // is an execution failure (e.g. resource exhaustion), not user error.
  inst_.executions->Add();
  obs::Span mine_span(&obs::Tracer::Global(), exec->trace_ctx, "serve.mine");
  auto cached = std::make_shared<CachedResult>();
  try {
    const Dataset& dataset = *shards_[exec->spec.shard];
    MiningTask task = MakeTask(dataset, exec->spec);
    // Ambient context lets layers beneath the TaskSpec (the api/ facade)
    // attach their spans without a signature change.
    obs::ScopedAmbientContext ambient(mine_span.context());
    cached->patterns = task.Mine(&cached->run);
  } catch (const std::exception& e) {
    mine_span.Tag("outcome", "failed");
    mine_span.End();
    std::vector<std::shared_ptr<RequestState>> waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      waiters = std::move(exec->waiters);
      inflight_.erase(exec->key);
    }
    for (const auto& waiter : waiters) {
      FailRequest(waiter, ServeErrorCode::kExecutionFailed, e.what());
    }
    return;
  }
  mine_span.Tag("patterns", static_cast<double>(cached->patterns.size()));
  mine_span.End();
  cached->cost_bytes = EstimateResultCost(exec->key, *cached);

  // Stage 7: publish then retire. Cache fill happens *before* the in-flight
  // erase, so a submitter can never miss both (miss the cache, then find no
  // execution) for a result that exists.
  cache_.Put(exec->key, cached);
  std::vector<std::shared_ptr<RequestState>> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    waiters = std::move(exec->waiters);
    inflight_.erase(exec->key);
  }

  // Stage 8 (delivery boundary): the final deadline/cancel check. Each
  // waiter's serve.deliver span parents to its own serve.request root —
  // coalescers see their delivery under their own trace.
  const auto now = Clock::now();
  for (const auto& waiter : waiters) {
    obs::Span deliver_span(&obs::Tracer::Global(),
                           waiter->root_span.context(), "serve.deliver");
    if (waiter->cancel_requested.load(std::memory_order_relaxed)) {
      FailRequest(waiter, ServeErrorCode::kCancelled,
                  "request cancelled during execution");
    } else if (waiter->DeadlinePassed(now)) {
      FailRequest(waiter, ServeErrorCode::kDeadlineExceeded,
                  "deadline expired during execution");
    } else {
      ResolveResponse(waiter, cached, /*cache_hit=*/false);
    }
  }
}

ServiceStats MiningService::Stats() const {
  // A view over the registry instruments — the same atomics the registry's
  // Snapshot()/ToText() read, so the two surfaces cannot disagree.
  ServiceStats stats;
  stats.submitted = inst_.submitted->Value();
  stats.hits = inst_.hits->Value();
  stats.misses = inst_.misses->Value();
  stats.coalesced = inst_.coalesced->Value();
  stats.invalid = inst_.invalid->Value();
  stats.completed = inst_.completed->Value();
  stats.rejected = inst_.rejected->Value();
  stats.cancelled = inst_.cancelled->Value();
  stats.deadline_expired = inst_.deadline_expired->Value();
  stats.failed = inst_.failed->Value();
  stats.executions = inst_.executions->Value();

  const ResultCache::Stats cache = cache_.GetStats();
  stats.cache_entries = cache.entries;
  stats.cache_bytes = cache.bytes;
  stats.cache_evictions = cache.evictions;
  stats.cache_oversized_rejects = cache.oversized_rejects;
  stats.queue_depth = executor_.QueueDepth();

  const LatencyHistogram::Snapshot hit = inst_.hit_latency->TakeSnapshot();
  stats.hit_p50_ms = hit.PercentileMs(0.50);
  stats.hit_p95_ms = hit.PercentileMs(0.95);
  stats.hit_mean_ms = hit.MeanMs();
  const LatencyHistogram::Snapshot mine = inst_.mine_latency->TakeSnapshot();
  stats.mine_p50_ms = mine.PercentileMs(0.50);
  stats.mine_p95_ms = mine.PercentileMs(0.95);
  stats.mine_mean_ms = mine.MeanMs();
  return stats;
}

}  // namespace lash::serve
