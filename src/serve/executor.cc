#include "serve/executor.h"

#include <algorithm>
#include <utility>

namespace lash::serve {

AdmissionExecutor::AdmissionExecutor(size_t num_threads, size_t queue_capacity,
                                     AdmissionPolicy policy,
                                     obs::Gauge* queue_depth_gauge)
    : capacity_(std::max<size_t>(1, queue_capacity)),
      policy_(policy),
      queue_depth_gauge_(queue_depth_gauge),
      pool_(num_threads) {
  // One pump per worker: each claims the worker for the executor's
  // lifetime, so the bounded queue is the only queue with ever more than
  // a transient depth.
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    pool_.Submit([this] { PumpLoop(); });
  }
}

AdmissionExecutor::~AdmissionExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  space_ready_.notify_all();
  // ~ThreadPool (pool_ is the last member) joins the pumps, which drain the
  // remaining admitted tasks first — Submit's "true means it will run"
  // contract holds through destruction.
}

bool AdmissionExecutor::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_ == AdmissionPolicy::kBlock) {
      space_ready_.wait(
          lock, [this] { return shutdown_ || queue_.size() < capacity_; });
    }
    if (shutdown_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  work_ready_.notify_one();
  return true;
}

size_t AdmissionExecutor::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void AdmissionExecutor::PumpLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    space_ready_.notify_one();
    task();
  }
}

}  // namespace lash::serve
