#ifndef LASH_SERVE_SUPPORT_COUNT_H_
#define LASH_SERVE_SUPPORT_COUNT_H_

#include <cstdint>
#include <vector>

#include "api/lash_api.h"
#include "io/result_io.h"

namespace lash::serve {

/// Exact support counting of named candidate patterns — phase 2 of the
/// router's two-phase candidate/count protocol (net/router.h).
///
/// Counting is deliberately not mining: there is no candidate generation,
/// no σ, no output stream — just the Sec. 2 matching predicate
/// (core/match.h) applied per (candidate, transaction) pair. That makes the
/// work per phase bounded by |candidates| × |shard|, independent of how
/// many patterns a low-σ mine would have produced, which is exactly the
/// cost the two-phase protocol exists to avoid.

/// The match parameters of one counting request. γ and λ come from the
/// query; `flat` selects the flat rank space and must equal the
/// canonicalized `flat || MgFsm` bit of the mine spec
/// (RunResult::used_flat_hierarchy) for counts to agree with mining.
struct CountQuery {
  uint32_t gamma = 0;
  uint32_t lambda = 0;
  bool flat = false;
};

/// Returns the exact (γ, λ)-support of each candidate on `dataset`,
/// index-aligned with `candidates`. Candidate item names are decoded to
/// shard-local ranks via the dataset vocabulary; a candidate containing an
/// unknown name, an empty candidate, and a candidate longer than λ all
/// count 0 (they cannot be an answer of any shard's mine, so a 0 sums
/// correctly in the router's union). Candidate frequencies are ignored.
/// Thread-compatible: safe to call concurrently on one dataset, and safe
/// to split `candidates` across threads and concatenate.
std::vector<Frequency> CountSupports(const Dataset& dataset,
                                     const NamedPatternList& candidates,
                                     const CountQuery& query);

}  // namespace lash::serve

#endif  // LASH_SERVE_SUPPORT_COUNT_H_
