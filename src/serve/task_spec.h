#ifndef LASH_SERVE_TASK_SPEC_H_
#define LASH_SERVE_TASK_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "api/lash_api.h"
#include "obs/trace.h"

namespace lash::serve {

/// One serving request, as plain data: everything MiningTask exposes plus
/// the serving-only knobs (shard routing, deadline). Being a value type —
/// unlike MiningTask, which borrows its Dataset — a TaskSpec can sit in a
/// queue, be compared for coalescing, and be encoded into a cache key
/// before any dataset is touched.
struct TaskSpec {
  /// Which Dataset shard of the service answers this request.
  size_t shard = 0;

  Algorithm algorithm = Algorithm::kSequential;
  GsmParams params;
  /// Optional knobs mirror MiningTask's set-tracking: an engaged optional is
  /// an explicit WithMiner/WithRewrite/WithCombiner call (and is validated
  /// against the algorithm exactly like one); nullopt leaves the default.
  std::optional<MinerKind> miner;
  std::optional<RewriteLevel> rewrite;
  std::optional<bool> combiner;
  size_t threads = 0;
  JobConfig job_config;
  BaselineLimits limits;
  bool flat = false;
  PatternFilter filter = PatternFilter::kNone;
  size_t top_k = 0;

  /// Per-request deadline in milliseconds from Submit (0 = none). Checked
  /// between pipeline stages (admission, dequeue, delivery), not preemptive.
  double deadline_ms = 0;

  /// Per-request override of the router's phase-1 scatter threshold σ′
  /// (0 = the router's default: the pigeonhole bound ⌈σ/k⌉, see
  /// net/router.h). Only the router reads it — workers and the in-process
  /// service ignore it — and like deadline/shard it travels *outside* the
  /// cache-key bytes (kMineRequestV3), so it is deliberately EXCLUDED from
  /// EncodeCacheKey: how a router gathers candidates must not change what
  /// a worker's answer hits or coalesces with.
  Frequency shard_sigma = 0;

  /// Request trace context (obs/trace.h): inactive by default, stamped at
  /// the edge, carried across the wire by kMineRequestV2. Like the
  /// execution-shape knobs, deliberately EXCLUDED from EncodeCacheKey —
  /// tracing a request must not change what it hits or coalesces with.
  obs::TraceContext trace{};
};

/// Builds the facade task for `spec` over `dataset` (shard routing already
/// resolved by the caller). The returned task borrows `dataset`.
MiningTask MakeTask(const Dataset& dataset, const TaskSpec& spec);

/// Canonical cache-key bytes of (dataset, spec).
///
/// Contract (see ROADMAP "Serving layer"): the key covers exactly the knobs
/// that select *what is computed or measured* — dataset id, algorithm,
/// σ/γ/λ, flat, filter, top-k, the explicit miner/rewrite/combiner choices
/// (presence included: "default" and "explicitly the default" encode
/// differently only when that distinction can change validation), and the
/// baseline emit cap for the algorithms it can abort. Pure execution-shape
/// knobs — threads, map/reduce task counts, shuffle mode, deadline, the
/// trace context — are
/// deliberately excluded, so equivalent queries coalesce and hit across
/// different execution shapes; a hit returns the RunResult of the execution
/// that populated the entry. The encoding is canonical: two specs map to
/// the same bytes iff they are equivalent under this contract, so FNV over
/// the bytes is a sound shard/grouping hash (same property the packed
/// shuffle relies on).
std::string EncodeCacheKey(uint64_t dataset_id, const TaskSpec& spec);

/// Inverse of EncodeCacheKey: decodes the canonical key bytes back into the
/// knobs they cover. `dataset_id`, if non-null, receives the encoded dataset
/// id. The wire protocol (net/wire.h) reuses the cache-key bytes as its
/// TaskSpec encoding, so this is the server-side request decoder.
///
/// Exactly the covered knobs round-trip: execution-shape fields (threads,
/// job config, deadline, shard, shard_sigma, trace) are not part of the key
/// and come back at their defaults. Decoding is canonicalizing-stable:
/// EncodeCacheKey(DecodeTaskSpec(key)) == key for every key EncodeCacheKey
/// can produce (tested byte-for-byte). Malformed input throws the typed
/// IoError of io/io_error.h: kBadVersion for an unknown key version,
/// kTruncated when the key ends inside a field, kMalformed for out-of-range
/// enum bytes or trailing garbage.
TaskSpec DecodeTaskSpec(std::string_view key, uint64_t* dataset_id = nullptr);

}  // namespace lash::serve

#endif  // LASH_SERVE_TASK_SPEC_H_
