#ifndef LASH_SERVE_HISTOGRAM_H_
#define LASH_SERVE_HISTOGRAM_H_

#include "obs/histogram.h"

namespace lash::serve {

/// The serving layer's latency histogram moved to obs/histogram.h when the
/// metrics registry (PR 9) made it a general instrument; this alias keeps
/// every serve:: call site and test working unchanged.
using LatencyHistogram = obs::LatencyHistogram;

}  // namespace lash::serve

#endif  // LASH_SERVE_HISTOGRAM_H_
