#ifndef LASH_UTIL_VARINT_H_
#define LASH_UTIL_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace lash {

/// Appends `value` to `out` using LEB128 variable-length encoding.
///
/// The paper compresses data transmitted between the map and reduce phases
/// with variable-length integer encoding (Sec. 6.1); we use the same scheme
/// both for the MAP_OUTPUT_BYTES counter and for on-disk pattern files.
void PutVarint32(std::string* out, uint32_t value);

/// 64-bit variant of PutVarint32.
void PutVarint64(std::string* out, uint64_t value);

/// Decodes a varint32 from `data` at `*pos`, advancing `*pos` past it.
/// Returns false on truncated or malformed input. Takes a string_view so
/// bounded windows (e.g. one snapshot section of a larger buffer) decode
/// in place without a substring copy; std::string converts implicitly.
bool GetVarint32(std::string_view data, size_t* pos, uint32_t* value);

/// 64-bit variant of GetVarint32.
bool GetVarint64(std::string_view data, size_t* pos, uint64_t* value);

/// Returns the number of bytes PutVarint32 would write for `value`.
size_t Varint32Size(uint32_t value);

/// Returns the number of bytes PutVarint64 would write for `value`.
size_t Varint64Size(uint64_t value);

/// Serializes a sequence as `<length><item>*`, all varint-encoded.
void EncodeSequence(std::string* out, const Sequence& seq);

/// Inverse of EncodeSequence. Returns false on malformed input.
bool DecodeSequence(const std::string& data, size_t* pos, Sequence* seq);

/// Returns the serialized size of `seq` under EncodeSequence.
size_t EncodedSequenceSize(const Sequence& seq);

/// Serializes a rewritten (possibly blank-containing) sequence compactly:
/// item ids are varint-encoded shifted by one, and a run of blanks is stored
/// as a 0 marker followed by the run length. This realizes the paper's
/// observation (Sec. 4.2) that blanks and small generalized ids are cheap to
/// represent, which is what makes w-generalization pay off in
/// MAP_OUTPUT_BYTES even when it does not shorten the sequence.
void EncodeRewrittenSequence(std::string* out, const Sequence& seq);

/// Inverse of EncodeRewrittenSequence. Returns false on malformed input.
bool DecodeRewrittenSequence(const std::string& data, size_t* pos,
                             Sequence* seq);

/// Returns the serialized size of `seq` under EncodeRewrittenSequence.
size_t EncodedRewrittenSequenceSize(const Sequence& seq);

/// Span variant of EncodeRewrittenSequence: serializes `items[0..n)` without
/// requiring them to live in their own Sequence. The LASH spill codec uses
/// this to encode the rewritten tail of a (pivot, rewritten...) key in place.
void EncodeRewrittenSpan(std::string* out, const ItemId* items, size_t n);

/// Inverse of EncodeRewrittenSpan; *appends* the decoded items to `seq`
/// (existing content is preserved). Returns false on malformed input.
bool DecodeRewrittenSpanAppend(const std::string& data, size_t* pos,
                               Sequence* seq);

/// Advances *pos past one EncodeRewrittenSpan encoding without
/// materializing the items. Accepts everything the encoder produces
/// (rejecting truncation, plus degenerate zero-length blank runs the
/// encoder never writes). Used by the shuffle scan, which only needs key
/// slice boundaries.
bool SkipRewrittenSpan(const std::string& data, size_t* pos);

/// Returns the serialized size of `items[0..n)` under EncodeRewrittenSpan.
size_t EncodedRewrittenSpanSize(const ItemId* items, size_t n);

}  // namespace lash

#endif  // LASH_UTIL_VARINT_H_
