#ifndef LASH_UTIL_HASH_H_
#define LASH_UTIL_HASH_H_

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/types.h"

namespace lash {

/// FNV-1a over raw bytes; the packed-spill shuffle uses it to bucket
/// encoded key slices without decoding them (grouping only needs equal
/// bytes to collide, and the codecs are canonical: equal keys <=> equal
/// encodings).
inline uint64_t FnvHashBytes(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Incremental FNV-1a64 (same constants as FnvHashBytes: feeding one buffer
/// in pieces yields FnvHashBytes of the concatenation). The snapshot writer
/// uses it to checksum a section assembled from several arrays without
/// materializing the concatenated payload.
class FnvStream {
 public:
  FnvStream& Update(const char* data, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<unsigned char>(data[i]);
      h_ *= 1099511628211ULL;
    }
    return *this;
  }
  uint64_t Digest() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ULL;
};

/// FNV-1a hash over the items of a sequence; used for pattern hash maps.
struct SequenceHash {
  size_t operator()(const Sequence& seq) const {
    uint64_t h = 1469598103934665603ULL;
    for (ItemId w : seq) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Mined patterns with their frequencies (document counts).
using PatternMap = std::unordered_map<Sequence, Frequency, SequenceHash>;

/// A deduplicated set of sequences (e.g. the per-transaction pattern sets of
/// the naive enumerator, Sec. 3.2).
using SequenceSet = std::unordered_set<Sequence, SequenceHash>;

/// Deterministically ordered (lexicographic) view of a PatternMap, used for
/// comparisons in tests and for stable output files.
inline std::vector<std::pair<Sequence, Frequency>> SortedPatterns(
    const PatternMap& patterns) {
  std::vector<std::pair<Sequence, Frequency>> out(patterns.begin(),
                                                  patterns.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lash

#endif  // LASH_UTIL_HASH_H_
