#include "util/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace lash {

namespace {

// Set for the lifetime of a worker thread; threads the pool does not own
// keep the default. A plain thread_local (not a pool member) so CurrentIndex
// stays a static lookup — tasks of nested constructs never outlive their
// worker thread.
thread_local size_t tls_worker_index = ThreadPool::kNotAWorker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, std::function<void(size_t)> body) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }

  struct LoopState {
    std::function<void(size_t)> body;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<LoopState>();
  state->body = std::move(body);
  state->n = n;

  // noexcept enforces the documented contract uniformly: an exception from
  // `body` terminates the process whether it was driven by a helper task or
  // by the calling thread — it must never unwind out of ParallelFor while
  // helpers may still be executing the body against the caller's state.
  auto drive = [](LoopState& s) noexcept {
    for (;;) {
      size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.n) return;
      s.body(i);
      // acq_rel so the waiter's final `done` read sees all body effects.
      if (s.done.fetch_add(1, std::memory_order_acq_rel) + 1 == s.n) {
        std::lock_guard<std::mutex> lock(s.mu);
        s.all_done.notify_all();
      }
    }
  };

  // Helper tasks add parallelism when workers free up; the calling thread
  // drives the loop itself, so the loop finishes even if no helper ever
  // runs (e.g. every worker is busy, or the pool has one thread and the
  // caller *is* it). Helpers scheduled after completion see next >= n and
  // exit immediately; shared_ptr keeps the state alive for them.
  const size_t helpers = std::min(n - 1, threads_.size());
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state, drive] { drive(*state); });
  }
  drive(*state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

size_t ThreadPool::CurrentIndex() { return tls_worker_index; }

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace lash
