#ifndef LASH_UTIL_JSON_H_
#define LASH_UTIL_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace lash {

/// Appends `text` to `out` as a JSON string literal body (no surrounding
/// quotes): the two mandatory escapes (backslash, double quote) plus control
/// characters as \uXXXX. The observability layer emits metric names, span
/// names, and tag values through this — they are ASCII identifiers in
/// practice, but a tag carrying an error message must not be able to break
/// the JSONL line structure.
inline void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

/// Appends a finite double as a JSON number. NaN/inf (not representable in
/// JSON) degrade to 0 — an observability value, not a computation result,
/// so a readable file beats a strict error.
inline void AppendJsonNumber(std::string* out, double value) {
  char buf[32];
  if (!(value == value) || value > 1.7976931348623157e308 ||
      value < -1.7976931348623157e308) {
    value = 0;
  }
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out->append(buf);
}

}  // namespace lash

#endif  // LASH_UTIL_JSON_H_
