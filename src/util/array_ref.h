#ifndef LASH_UTIL_ARRAY_REF_H_
#define LASH_UTIL_ARRAY_REF_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace lash {

/// A contiguous array that either owns its elements (vector semantics) or
/// borrows them from memory someone else keeps alive — for this codebase,
/// a snapshot mapping owned by the `Dataset` (io/snapshot.h "v2" sections).
///
/// The read surface is the vector subset the mining layers actually use
/// (size/data/operator[]/iteration), so `PreprocessResult` fields can hold
/// an ArrayRef and every consumer keeps compiling whether the bytes came
/// from Preprocess() (owned) or a mapped snapshot (borrowed). Mutation
/// (assign / non-const operator[]) is only legal on owned arrays; the
/// preprocessing builders own what they build, and borrowed snapshot
/// sections are immutable by construction (PROT_READ).
///
/// Copying an owned ArrayRef deep-copies; copying a borrowed one shares the
/// borrow (it is a reference — the owner must outlive every copy). Moves
/// never invalidate `data()`: vector buffers survive moves, and borrowed
/// pointers are just copied.
template <typename T>
class ArrayRef {
 public:
  using value_type = T;
  using const_iterator = const T*;

  ArrayRef() = default;

  /// Implicit adopt-a-vector, so `result.freq = std::move(v)` and brace
  /// initialization from builders keep working unchanged.
  ArrayRef(std::vector<T> values)
      : storage_(std::move(values)),
        data_(storage_.data()),
        size_(storage_.size()) {}

  /// A non-owning view of `[data, data + size)`; the memory must outlive
  /// the ArrayRef and every copy of it.
  static ArrayRef Borrowed(const T* data, size_t size) {
    ArrayRef ref;
    ref.data_ = data;
    ref.size_ = size;
    ref.borrowed_ = true;
    return ref;
  }

  ArrayRef(const ArrayRef& other) { *this = other; }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this == &other) return *this;
    if (other.borrowed_) {
      storage_.clear();
      data_ = other.data_;
      size_ = other.size_;
    } else {
      storage_.assign(other.data_, other.data_ + other.size_);
      data_ = storage_.data();
      size_ = storage_.size();
    }
    borrowed_ = other.borrowed_;
    return *this;
  }

  ArrayRef(ArrayRef&& other) noexcept
      : storage_(std::move(other.storage_)),
        data_(other.data_),
        size_(other.size_),
        borrowed_(other.borrowed_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.borrowed_ = false;
  }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    storage_ = std::move(other.storage_);
    data_ = other.data_;
    size_ = other.size_;
    borrowed_ = other.borrowed_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.borrowed_ = false;
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool borrowed() const { return borrowed_; }
  const T* data() const { return data_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& back() const { return data_[size_ - 1]; }

  /// Mutable element access — owned arrays only (the builders in
  /// core/flist.cc / algo/preprocess.cc write ranks in place).
  T& operator[](size_t i) {
    assert(!borrowed_ && "ArrayRef: cannot mutate a borrowed array");
    return storage_[i];
  }

  /// vector::assign semantics; the result is owned.
  void assign(size_t n, const T& value) {
    storage_.assign(n, value);
    data_ = storage_.data();
    size_ = n;
    borrowed_ = false;
  }

  /// Element-wise equality, independent of ownership.
  friend bool operator==(const ArrayRef& a, const ArrayRef& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator==(const ArrayRef& a, const std::vector<T>& b) {
    if (a.size_ != b.size()) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator==(const std::vector<T>& a, const ArrayRef& b) {
    return b == a;
  }

 private:
  std::vector<T> storage_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool borrowed_ = false;
};

}  // namespace lash

#endif  // LASH_UTIL_ARRAY_REF_H_
