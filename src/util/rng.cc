#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lash {

Rng::Rng(uint64_t seed) {
  // SplitMix64 initialization so that nearby seeds give unrelated streams.
  auto splitmix = [](uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  state0_ = splitmix(&x);
  state1_ = splitmix(&x);
  if (state0_ == 0 && state1_ == 0) state0_ = 1;
}

uint64_t Rng::Next() {
  uint64_t s1 = state0_;
  const uint64_t s0 = state1_;
  const uint64_t result = s0 + s1;
  state0_ = s0;
  s1 ^= s1 << 23;
  state1_ = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::Uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (s < 0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (size_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_.back() = 1.0;  // Guard against floating-point round-off.
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace lash
