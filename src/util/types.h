#ifndef LASH_UTIL_TYPES_H_
#define LASH_UTIL_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace lash {

/// Identifier of a vocabulary item after rank recoding.
///
/// Items are recoded to ranks `1, 2, ...` in the hierarchy-aware total order
/// `<` of the paper (Sec. 3.4): smaller rank means more frequent (ties broken
/// toward more general items). Rank comparisons therefore implement the
/// paper's item order directly: `u < v` iff `rank(u) < rank(v)`.
using ItemId = uint32_t;

/// Reserved invalid item id (rank 0 is never assigned to a real item).
inline constexpr ItemId kInvalidItem = 0;

/// The blank placeholder symbol written by w-generalization (Sec. 4.2).
///
/// The paper defines the blank `_` to be larger than every item, which the
/// all-ones encoding satisfies under unsigned comparison.
inline constexpr ItemId kBlank = std::numeric_limits<ItemId>::max();

/// Returns true iff `w` is a real item (neither invalid nor a blank).
inline constexpr bool IsItem(ItemId w) {
  return w != kInvalidItem && w != kBlank;
}

/// A sequence of items; transactions and patterns share this representation.
using Sequence = std::vector<ItemId>;

/// Support / frequency counts (document frequencies).
using Frequency = uint64_t;

}  // namespace lash

#endif  // LASH_UTIL_TYPES_H_
