#include "util/varint.h"

namespace lash {

void PutVarint32(std::string* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint32(std::string_view data, size_t* pos, uint32_t* value) {
  uint32_t result = 0;
  for (int shift = 0; shift <= 28; shift += 7) {
    if (*pos >= data.size()) return false;
    uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    result |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint64(std::string_view data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (*pos >= data.size()) return false;
    uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

size_t Varint32Size(uint32_t value) {
  size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

size_t Varint64Size(uint64_t value) {
  size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

void EncodeSequence(std::string* out, const Sequence& seq) {
  PutVarint32(out, static_cast<uint32_t>(seq.size()));
  for (ItemId w : seq) PutVarint32(out, w);
}

bool DecodeSequence(const std::string& data, size_t* pos, Sequence* seq) {
  uint32_t length = 0;
  if (!GetVarint32(data, pos, &length)) return false;
  seq->clear();
  seq->reserve(length);
  for (uint32_t i = 0; i < length; ++i) {
    uint32_t item = 0;
    if (!GetVarint32(data, pos, &item)) return false;
    seq->push_back(item);
  }
  return true;
}

size_t EncodedSequenceSize(const Sequence& seq) {
  size_t size = Varint32Size(static_cast<uint32_t>(seq.size()));
  for (ItemId w : seq) size += Varint32Size(w);
  return size;
}

void EncodeRewrittenSpan(std::string* out, const ItemId* items, size_t n) {
  PutVarint32(out, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n;) {
    if (items[i] == kBlank) {
      size_t run = 0;
      while (i + run < n && items[i + run] == kBlank) ++run;
      PutVarint32(out, 0);
      PutVarint32(out, static_cast<uint32_t>(run));
      i += run;
    } else {
      PutVarint32(out, items[i] + 1);
      ++i;
    }
  }
}

bool DecodeRewrittenSpanAppend(const std::string& data, size_t* pos,
                               Sequence* seq) {
  uint32_t length = 0;
  if (!GetVarint32(data, pos, &length)) return false;
  const size_t target = seq->size() + length;
  seq->reserve(target);
  while (seq->size() < target) {
    uint32_t token = 0;
    if (!GetVarint32(data, pos, &token)) return false;
    if (token == 0) {
      uint32_t run = 0;
      if (!GetVarint32(data, pos, &run)) return false;
      if (seq->size() + run > target) return false;
      seq->insert(seq->end(), run, kBlank);
    } else {
      seq->push_back(token - 1);
    }
  }
  return true;
}

bool SkipRewrittenSpan(const std::string& data, size_t* pos) {
  uint32_t length = 0;
  if (!GetVarint32(data, pos, &length)) return false;
  uint32_t seen = 0;
  while (seen < length) {
    uint32_t token = 0;
    if (!GetVarint32(data, pos, &token)) return false;
    if (token == 0) {
      uint32_t run = 0;
      if (!GetVarint32(data, pos, &run)) return false;
      // The encoder never writes empty runs; reject to guarantee progress.
      // (run > length - seen, not seen + run > length: the sum can wrap.)
      if (run == 0 || run > length - seen) return false;
      seen += run;
    } else {
      ++seen;
    }
  }
  return true;
}

size_t EncodedRewrittenSpanSize(const ItemId* items, size_t n) {
  size_t size = Varint32Size(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n;) {
    if (items[i] == kBlank) {
      size_t run = 0;
      while (i + run < n && items[i + run] == kBlank) ++run;
      size += 1 + Varint32Size(static_cast<uint32_t>(run));
      i += run;
    } else {
      size += Varint32Size(items[i] + 1);
      ++i;
    }
  }
  return size;
}

void EncodeRewrittenSequence(std::string* out, const Sequence& seq) {
  EncodeRewrittenSpan(out, seq.data(), seq.size());
}

bool DecodeRewrittenSequence(const std::string& data, size_t* pos,
                             Sequence* seq) {
  seq->clear();
  return DecodeRewrittenSpanAppend(data, pos, seq);
}

size_t EncodedRewrittenSequenceSize(const Sequence& seq) {
  return EncodedRewrittenSpanSize(seq.data(), seq.size());
}

}  // namespace lash
