#ifndef LASH_UTIL_TIMER_H_
#define LASH_UTIL_TIMER_H_

#include <chrono>

namespace lash {

/// Wall-clock stopwatch used for the per-phase timings the paper reports
/// (map / shuffle / reduce elapsed times, Sec. 6.1 "Measures").
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or the last Restart.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lash

#endif  // LASH_UTIL_TIMER_H_
