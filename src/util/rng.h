#ifndef LASH_UTIL_RNG_H_
#define LASH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lash {

/// Deterministic xorshift128+ random number generator.
///
/// All synthetic data generation and property tests seed this generator
/// explicitly so that every run of the test suite and the benchmark harness
/// is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Returns the next 64 pseudo-random bits.
  uint64_t Next();

  /// Returns a uniform integer in `[0, bound)`. `bound` must be positive.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform double in `[0, 1)`.
  double NextDouble();

  /// Returns true with probability `p`.
  bool Bernoulli(double p);

 private:
  uint64_t state0_;
  uint64_t state1_;
};

/// Samples from a Zipf distribution over `{0, 1, ..., n-1}` with exponent
/// `s`, i.e. `P(k) ∝ 1 / (k+1)^s`.
///
/// Used to model word frequencies in the NYT-like corpus and product
/// popularity in the AMZN-like dataset; both real datasets are heavily
/// skewed, which is what makes item-based partitioning non-trivial (skew is
/// shortcoming (1) that the paper's rewrites address, Sec. 4).
class ZipfSampler {
 public:
  /// Precomputes the CDF; O(n) memory. `n > 0`, `s >= 0`.
  ZipfSampler(size_t n, double s);

  /// Draws one sample in `[0, n)` using `rng`.
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace lash

#endif  // LASH_UTIL_RNG_H_
