#ifndef LASH_UTIL_THREAD_POOL_H_
#define LASH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace lash {

/// A fixed-size worker pool used by the MapReduce substrate to execute map
/// and reduce tasks concurrently.
///
/// Tasks are `void()` closures. `Wait()` blocks until every submitted task
/// has finished; the pool can then be reused for the next phase. Exceptions
/// escaping a task terminate the process (tasks are expected to handle their
/// own failures), mirroring how a Hadoop task failure kills the attempt.
class ThreadPool {
 public:
  /// CurrentIndex() result when the calling thread is not a pool worker.
  static constexpr size_t kNotAWorker = std::numeric_limits<size_t>::max();

  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending work and joins all workers.
  ~ThreadPool();

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. Must not be called
  /// from inside a pool task (it would wait for itself); tasks that need
  /// nested parallelism use ParallelFor instead.
  void Wait();

  /// Runs `body(0) .. body(n-1)` to completion with dynamic load balancing
  /// (workers claim indexes off a shared atomic counter). Unlike
  /// Submit+Wait, ParallelFor is safe to call from *inside* a pool task:
  /// the calling thread participates in executing the loop body, so the
  /// call completes even when every pool worker is busy — which is how the
  /// LASH reduce-finish hook mines partitions in parallel on the job's own
  /// pool. Exceptions escaping `body` terminate the process (same contract
  /// as Submit).
  void ParallelFor(size_t n, std::function<void(size_t)> body);

  /// Index of the calling pool worker in [0, num_threads()), or kNotAWorker
  /// when called from a thread the pool does not own. Lets tasks keep
  /// per-worker state (scratch buffers, output maps) in plain vectors
  /// indexed by worker.
  static size_t CurrentIndex();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop(size_t worker_index);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lash

#endif  // LASH_UTIL_THREAD_POOL_H_
