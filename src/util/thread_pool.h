#ifndef LASH_UTIL_THREAD_POOL_H_
#define LASH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lash {

/// A fixed-size worker pool used by the MapReduce substrate to execute map
/// and reduce tasks concurrently.
///
/// Tasks are `void()` closures. `Wait()` blocks until every submitted task
/// has finished; the pool can then be reused for the next phase. Exceptions
/// escaping a task terminate the process (tasks are expected to handle their
/// own failures), mirroring how a Hadoop task failure kills the attempt.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending work and joins all workers.
  ~ThreadPool();

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lash

#endif  // LASH_UTIL_THREAD_POOL_H_
