#ifndef LASH_UTIL_READINESS_H_
#define LASH_UTIL_READINESS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace lash {

/// Per-slot countdown latches for pipelined producer/consumer handoff: the
/// packed shuffle gives every reduce partition one slot initialized to the
/// number of map tasks, and each map task calls Seal(r) after it has
/// finished writing partition r's spill buffer. The call that brings a
/// slot to zero returns true exactly once — that caller owns enqueueing
/// the partition's grouping + reduce task.
///
/// Memory ordering: Seal is an acq_rel fetch_sub, so everything the other
/// sealing threads wrote before their Seal calls happens-before the final
/// Seal returns true (the RMW release sequence on the counter chains
/// them). Handing the slot's data to another thread after that (e.g. via
/// ThreadPool::Submit, itself mutex-synchronized) is therefore race-free.
class ReadinessCounters {
 public:
  /// `slots` independent counters, each starting at `count`.
  ReadinessCounters(size_t slots, uint32_t count)
      : slots_(std::make_unique<std::atomic<uint32_t>[]>(slots)),
        size_(slots) {
    for (size_t i = 0; i < slots; ++i) {
      slots_[i].store(count, std::memory_order_relaxed);
    }
  }

  /// Records one producer as done with `slot`. Returns true iff this call
  /// was the last outstanding producer (exactly one caller sees true).
  bool Seal(size_t slot) {
    return slots_[slot].fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  /// Producers still outstanding for `slot`. Exact only once no Seal calls
  /// are in flight (e.g. in tests after a pool Wait).
  uint32_t Remaining(size_t slot) const {
    return slots_[slot].load(std::memory_order_acquire);
  }

  size_t size() const { return size_; }

 private:
  std::unique_ptr<std::atomic<uint32_t>[]> slots_;
  size_t size_;
};

}  // namespace lash

#endif  // LASH_UTIL_READINESS_H_
