#ifndef LASH_IO_RESULT_IO_H_
#define LASH_IO_RESULT_IO_H_

#include <string>
#include <vector>

#include "api/lash_api.h"
#include "io/io_error.h"

namespace lash {

/// Binary serialization of mining results — the payload side of the wire
/// protocol (net/wire.h).
///
/// Patterns cross process boundaries as item *names*, not ranks: each
/// Dataset assigns ranks from its own f-list, so two shard workers loaded
/// from different snapshot files rank the same item differently. Names are
/// the dataset-independent pattern identity, which is what makes the
/// cross-shard merge (net/router.h) a plain key-wise frequency sum. All
/// decoders fail with the typed IoError of io/io_error.h via ByteReader, so
/// a malformed response is distinguishable from a truncated one.

/// One mined pattern decoded to item names.
struct NamedPattern {
  std::vector<std::string> items;
  Frequency frequency = 0;

  bool operator==(const NamedPattern& other) const {
    return frequency == other.frequency && items == other.items;
  }
};

using NamedPatternList = std::vector<NamedPattern>;

/// The canonical wire order: descending frequency, ascending lexicographic
/// item vectors on ties. Every server sorts before encoding, so equal
/// pattern sets serialize to equal bytes — the property the loopback parity
/// tests and the router merge assert.
bool NamedPatternBefore(const NamedPattern& a, const NamedPattern& b);

/// Sorts into the canonical wire order.
void SortNamedPatterns(NamedPatternList* patterns);

/// Decodes a rank-space PatternMap to names through `dataset` (`flat`
/// selects the flat rank space, i.e. RunResult::used_flat_hierarchy), in
/// canonical wire order.
NamedPatternList NamePatterns(const Dataset& dataset,
                              const PatternMap& patterns, bool flat);

/// The canonical byte identity of a pattern's items (length-prefixed name
/// bytes, no frequency). Two patterns are the same sequence iff their keys
/// are byte-equal — the merge identity of the cross-shard reducer, same
/// contract as the shuffle's encoded-key-bytes combiner.
std::string NamedPatternKey(const NamedPattern& pattern);

/// Appends a double as its 8 IEEE-754 bytes, little-endian.
void PutDoubleBits(std::string* out, double value);

/// Inverse of PutDoubleBits.
double ReadDoubleBits(ByteReader& reader, const char* field);

/// Serializes the scalar summary of a RunResult: algorithm, flat flag,
/// pattern accounting, miner/GSP/partition statistics, phase times and
/// Hadoop-style counters, and the wall-clock fields. The per-task duration
/// vectors and the per-partition pipeline timeline are deliberately not
/// transmitted (they are profiling detail of one worker's execution, not
/// part of the answer); they come back empty.
void EncodeRunResult(std::string* out, const RunResult& result);

/// Inverse of EncodeRunResult (see caveat there).
RunResult DecodeRunResult(ByteReader& reader);

/// Serializes a pattern list: varint count, then per pattern the varint
/// item count, each item as varint-length-prefixed name bytes, and the
/// varint64 frequency.
void EncodeNamedPatterns(std::string* out, const NamedPatternList& patterns);

/// Inverse of EncodeNamedPatterns.
NamedPatternList DecodeNamedPatterns(ByteReader& reader);

/// Serializes a bare frequency vector: varint count, then each value as a
/// varint64. The payload of a count response (net/wire.h) — supports ride
/// index-aligned with the candidate list of the request, so no names repeat.
void EncodeFrequencyList(std::string* out,
                         const std::vector<Frequency>& frequencies);

/// Inverse of EncodeFrequencyList.
std::vector<Frequency> DecodeFrequencyList(ByteReader& reader);

}  // namespace lash

#endif  // LASH_IO_RESULT_IO_H_
