#include "io/io_error.h"

namespace lash {

const char* IoErrorKindName(IoErrorKind kind) {
  switch (kind) {
    case IoErrorKind::kOpenFailed: return "open-failed";
    case IoErrorKind::kTruncated: return "truncated";
    case IoErrorKind::kBadMagic: return "bad-magic";
    case IoErrorKind::kBadVersion: return "bad-version";
    case IoErrorKind::kChecksumMismatch: return "checksum-mismatch";
    case IoErrorKind::kMalformed: return "malformed";
    case IoErrorKind::kWriteFailed: return "write-failed";
  }
  return "unknown";
}

}  // namespace lash
