#ifndef LASH_IO_SNAPSHOT_H_
#define LASH_IO_SNAPSHOT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/flat_database.h"
#include "util/types.h"

namespace lash {

/// One-file dataset snapshot: everything a `lash::Dataset` computes at load
/// time — vocabulary, raw hierarchy, the *rank-recoded flat corpus*, the
/// generalized f-list, the rank order, and the Table-1 stats — serialized
/// so that serving shards and tools can skip text parsing *and* the whole
/// preprocessing phase (Sec. 3.3/3.4) on startup. The raw corpus is not
/// stored: recoding is a per-item bijection, so the loader reconstructs it
/// from the ranked corpus in one arena pass.
///
/// Container layout (all integers LEB128 varints unless noted):
///
///   8 raw bytes   magic "LASHSNAP"
///   varint32      format version (kSnapshotVersion)
///   varint32      section count
///   per section:  varint32 id, varint64 payload offset (file-absolute),
///                 varint64 payload length, 8 raw bytes FNV-1a64 checksum
///                 (little-endian) of the payload bytes
///   payloads      back to back
///
/// Readers reject unknown magic (IoErrorKind::kBadMagic), versions newer
/// than kSnapshotVersion (kBadVersion), out-of-bounds section tables
/// (kTruncated/kMalformed), and payloads whose checksum does not match
/// (kChecksumMismatch). Unknown section ids are ignored, so a future
/// version can *add* sections without a version bump; any change to an
/// existing section's encoding must bump kSnapshotVersion (see ROADMAP
/// "Storage layer").
struct DatasetSnapshot {
  /// Item names, ids 1..n in raw (interning) order; index 0 unused.
  std::vector<std::string> names;
  /// Raw-space parent array; parent[0] unused, kInvalidItem marks roots.
  std::vector<ItemId> raw_parent;
  /// The rank-recoded corpus in CSR form (PreprocessResult::database).
  FlatDatabase ranked_corpus;
  /// Generalized document frequency per rank (the f-list); index 0 unused.
  std::vector<Frequency> freq;
  /// Raw id -> rank (index 0 unused). The inverse is derived on load.
  std::vector<ItemId> rank_of_raw;
  /// Table-1 statistics of the raw database.
  DatasetStats stats;
};

inline constexpr uint32_t kSnapshotVersion = 1;

/// Serializes `snapshot`. Throws IoError(kWriteFailed) if the stream
/// rejects a write.
void WriteDatasetSnapshot(std::ostream& out, const DatasetSnapshot& snapshot);

/// Zero-copy writer over borrowed components (what Dataset::Save uses, so
/// a save never duplicates the multi-MB corpus/f-list buffers into a
/// DatasetSnapshot first). Semantics identical to WriteDatasetSnapshot.
void WriteDatasetSnapshotParts(std::ostream& out,
                               const std::vector<std::string>& names,
                               const std::vector<ItemId>& raw_parent,
                               const FlatDatabase& ranked_corpus,
                               const std::vector<Frequency>& freq,
                               const std::vector<ItemId>& rank_of_raw,
                               const DatasetStats& stats);

/// Parses and validates a snapshot (magic, version, section table bounds,
/// per-section checksums, cross-section size consistency). Throws IoError.
DatasetSnapshot ReadDatasetSnapshot(std::istream& in);

}  // namespace lash

#endif  // LASH_IO_SNAPSHOT_H_
