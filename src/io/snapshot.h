#ifndef LASH_IO_SNAPSHOT_H_
#define LASH_IO_SNAPSHOT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/flat_database.h"
#include "core/vocabulary.h"
#include "util/array_ref.h"
#include "util/types.h"

namespace lash {

/// One-file dataset snapshot: everything a `lash::Dataset` computes at load
/// time — vocabulary, raw hierarchy, the *rank-recoded flat corpus*, the
/// generalized f-list, the rank order, and the Table-1 stats — serialized
/// so that serving shards and tools can skip text parsing *and* the whole
/// preprocessing phase (Sec. 3.3/3.4) on startup. The raw corpus is not
/// stored: recoding is a per-item bijection, so the loader reconstructs it
/// from the ranked corpus in one arena pass.
///
/// ## Container layout, version 2 (fixed-width little-endian throughout)
///
///   offset 0   8 raw bytes   magic "LASHSNAP"
///   offset 8   1 byte        format version (kSnapshotVersion; also a
///                            valid varint, so v1 readers reject it as a
///                            future version)
///   offset 9   u32           section count
///   offset 13  32 bytes/sec  section table: u32 id, u32 flags, u64 payload
///                            offset (file-absolute), u64 payload length,
///                            u64 FNV-1a64 checksum of the payload bytes
///   ...        zero padding
///   payloads   every payload starts at a 64-byte-aligned file offset
///              (zero padding between), so a page-aligned mmap of the file
///              gives naturally aligned u32/u64 arrays that are usable
///              *in place* — the zero-copy load path of Dataset::
///              FromSnapshot(LoadMode::kMmap).
///
/// Section payloads (ids fixed; `n` = number of vocabulary items):
///
///   1 kVocabulary     u32 n; u32 ends[n] (cumulative name-end offsets);
///                     name bytes back to back
///   2 kHierarchy      u32 n; u32 parent[n] for ids 1..n (0 = root)
///   3 kCorpusOffsets  u64 num_sequences; u64 offsets[num_sequences + 1]
///   4 kFlist          u32 n; u32 zero pad; u64 freq[n + 1] (slot 0 == 0)
///   5 kStats          u64 num_sequences, total_items, max_length,
///                     unique_items
///   6 kRankOrder      u32 n; u32 rank_of_raw[n + 1] (slot 0 == 0)
///   7 kCorpusArena    u64 total_items; u32 items[total_items]
///
/// Section flag bit 0 (kSectionFlagLazyVerify) marks a section whose
/// checksum a mapped reader may defer (set by the writer on the two corpus
/// sections — the O(corpus bytes) ones). The mapped load verifies the
/// header and every small section eagerly and returns the deferred checks
/// in DatasetSnapshot::deferred for Dataset::VerifyCorpus; the copying
/// reader always verifies everything at load.
///
/// Readers reject unknown magic (IoErrorKind::kBadMagic), versions newer
/// than kSnapshotVersion (kBadVersion), out-of-bounds or misaligned section
/// tables (kTruncated/kMalformed), and payloads whose checksum does not
/// match (kChecksumMismatch). Unknown section ids are ignored, so a future
/// version can *add* sections without a version bump; any change to an
/// existing section's encoding must bump kSnapshotVersion (see ROADMAP
/// "Storage layer"). Version-1 containers (varint sections) remain fully
/// readable: both readers fall back to the v1 decoder, which always copies.
struct SnapshotDeferredCheck {
  const char* what;    ///< Section name for error messages.
  const char* data;    ///< Payload bytes inside the caller's mapping.
  uint64_t length;     ///< Payload length in bytes.
  uint64_t checksum;   ///< Expected FNV-1a64 of the payload.
  uint64_t file_offset;  ///< Payload position (error reporting).
};

struct DatasetSnapshot {
  /// Item names (ids 1..n in raw interning order) and parent edges. After
  /// a mapped load the name bytes are views into the mapping.
  Vocabulary vocabulary;
  /// The rank-recoded corpus in CSR form (PreprocessResult::database);
  /// borrowed from the mapping after a mapped load.
  FlatDatabase ranked_corpus;
  /// Generalized document frequency per rank; index 0 unused (== 0).
  ArrayRef<Frequency> freq;
  /// Raw id -> rank (index 0 unused). The inverse is derived on load.
  ArrayRef<ItemId> rank_of_raw;
  /// Table-1 statistics of the raw database.
  DatasetStats stats;
  /// Checksums the mapped reader deferred (corpus sections only; empty
  /// after a copying load). The mapping owner re-verifies on demand.
  std::vector<SnapshotDeferredCheck> deferred;
};

inline constexpr uint32_t kSnapshotVersion = 2;

/// Section-table flag bit 0: the checksum may be verified lazily by a
/// mapped reader (set on the corpus sections).
inline constexpr uint32_t kSectionFlagLazyVerify = 1;

/// Serializes `snapshot` in the v2 format. Throws IoError(kWriteFailed) if
/// the stream rejects a write.
void WriteDatasetSnapshot(std::ostream& out, const DatasetSnapshot& snapshot);

/// Zero-copy writer over borrowed components (what Dataset::Save uses, so
/// a save never duplicates the multi-MB corpus/f-list buffers into a
/// DatasetSnapshot first). Semantics identical to WriteDatasetSnapshot.
void WriteDatasetSnapshotParts(std::ostream& out, const Vocabulary& vocab,
                               const FlatDatabase& ranked_corpus,
                               const ArrayRef<Frequency>& freq,
                               const ArrayRef<ItemId>& rank_of_raw,
                               const DatasetStats& stats);

/// Writes the *legacy v1* container (varint sections, version byte 1).
/// Kept so the v1-through-current-reader compatibility path stays testable
/// without fixture files; new code always writes v2.
void WriteDatasetSnapshotV1(std::ostream& out, const Vocabulary& vocab,
                            const FlatDatabase& ranked_corpus,
                            const ArrayRef<Frequency>& freq,
                            const ArrayRef<ItemId>& rank_of_raw,
                            const DatasetStats& stats);

/// Parses and validates a snapshot by copying (magic, version, section
/// table bounds and alignment, every checksum, cross-section size
/// consistency, corpus item ranges). v2 sections are streamed straight
/// into their destination arenas — the file is never slurped whole; v1
/// containers take the legacy in-memory decode path. The stream must be
/// seekable for v2 (files and stringstreams are). Throws IoError.
DatasetSnapshot ReadDatasetSnapshot(std::istream& in);

/// Parses a snapshot over `[data, data + size)` — for v2 containers on a
/// little-endian host, *zero-copy*: names, corpus, f-list and rank order
/// borrow the buffer, which must then outlive the returned snapshot and
/// everything moved out of it (the Dataset owns the MmapFile for exactly
/// this reason). Header and small sections are checksum-verified eagerly;
/// the two corpus sections' checksums are returned in `deferred` instead
/// of being verified (their O(corpus) page faults are the cost this path
/// exists to avoid). v1 containers and big-endian hosts decode by copying
/// with nothing deferred. Throws IoError.
DatasetSnapshot ReadDatasetSnapshotMapped(const char* data, size_t size);

}  // namespace lash

#endif  // LASH_IO_SNAPSHOT_H_
