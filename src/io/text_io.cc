#include "io/text_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lash {

void WriteDatabase(std::ostream& out, const Database& db,
                   const Vocabulary& vocab) {
  for (const Sequence& t : db) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << ' ';
      out << vocab.Name(t[i]);
    }
    out << '\n';
  }
}

Database ReadDatabase(std::istream& in, Vocabulary* vocab) {
  Database db;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream tokens(line);
    Sequence seq;
    std::string token;
    while (tokens >> token) seq.push_back(vocab->AddItem(token));
    if (!seq.empty()) db.push_back(std::move(seq));
  }
  return db;
}

void WriteHierarchy(std::ostream& out, const Vocabulary& vocab) {
  for (ItemId id = 1; id <= vocab.NumItems(); ++id) {
    ItemId parent = vocab.Parent(id);
    if (parent != kInvalidItem) {
      out << vocab.Name(id) << '\t' << vocab.Name(parent) << '\n';
    }
  }
}

void ReadHierarchy(std::istream& in, Vocabulary* vocab) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
      throw std::invalid_argument("ReadHierarchy: malformed line: " + line);
    }
    vocab->AddItemWithParent(line.substr(0, tab), line.substr(tab + 1));
  }
}

void WritePatterns(std::ostream& out, const PatternMap& patterns,
                   const std::function<std::string(ItemId)>& name_of) {
  for (const auto& [seq, freq] : SortedPatterns(patterns)) {
    out << freq << '\t';
    for (size_t i = 0; i < seq.size(); ++i) {
      if (i > 0) out << ' ';
      out << name_of(seq[i]);
    }
    out << '\n';
  }
}

}  // namespace lash
