#include "io/snapshot.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "io/io_error.h"
#include "util/hash.h"
#include "util/varint.h"

namespace lash {

namespace {

constexpr char kMagic[8] = {'L', 'A', 'S', 'H', 'S', 'N', 'A', 'P'};

// Section ids. New sections may be added freely (readers skip unknown
// ids); changing the encoding of an existing section requires a version
// bump.
enum SectionId : uint32_t {
  kVocabulary = 1,  // varint n; per item: varint name length + raw bytes.
  kHierarchy = 2,   // varint n; per item: varint parent (0 = root).
  kCorpus = 3,      // varint sequences + varint total items; per sequence:
                    // varint len + items (total lets the reader size the
                    // CSR arena once).
  kFlist = 4,       // varint n; per rank: varint64 freq, varint rank_of_raw.
  kStats = 5,       // num_sequences, total, max_length, unique as varints.
};

void PutFixed64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t GetFixed64(const char* data) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

std::string EncodeVocabulary(const std::vector<std::string>& names) {
  std::string out;
  PutVarint64(&out, names.size() - 1);
  for (size_t id = 1; id < names.size(); ++id) {
    PutVarint64(&out, names[id].size());
    out.append(names[id]);
  }
  return out;
}

std::string EncodeHierarchy(const std::vector<ItemId>& raw_parent) {
  std::string out;
  PutVarint64(&out, raw_parent.size() - 1);
  for (size_t id = 1; id < raw_parent.size(); ++id) {
    ItemId parent = raw_parent[id];
    PutVarint32(&out, parent == kInvalidItem ? 0 : parent);
  }
  return out;
}

std::string EncodeCorpus(const FlatDatabase& db) {
  std::string out;
  PutVarint64(&out, db.size());
  PutVarint64(&out, db.TotalItems());
  for (SequenceView t : db) {
    PutVarint64(&out, t.size());
    for (ItemId w : t) PutVarint32(&out, w);
  }
  return out;
}

std::string EncodeFlist(const std::vector<Frequency>& freq,
                        const std::vector<ItemId>& rank_of_raw) {
  std::string out;
  PutVarint64(&out, freq.size() - 1);
  for (size_t r = 1; r < freq.size(); ++r) {
    PutVarint64(&out, freq[r]);
  }
  for (size_t raw = 1; raw < rank_of_raw.size(); ++raw) {
    PutVarint32(&out, rank_of_raw[raw]);
  }
  return out;
}

std::string EncodeStats(const DatasetStats& stats) {
  std::string out;
  PutVarint64(&out, stats.num_sequences);
  PutVarint64(&out, stats.total_items);
  PutVarint64(&out, stats.max_length);
  PutVarint64(&out, stats.unique_items);
  return out;
}

struct Section {
  uint32_t id;
  std::string payload;
};

}  // namespace

void WriteDatasetSnapshot(std::ostream& out, const DatasetSnapshot& snapshot) {
  WriteDatasetSnapshotParts(out, snapshot.names, snapshot.raw_parent,
                            snapshot.ranked_corpus, snapshot.freq,
                            snapshot.rank_of_raw, snapshot.stats);
}

void WriteDatasetSnapshotParts(std::ostream& out,
                               const std::vector<std::string>& names,
                               const std::vector<ItemId>& raw_parent,
                               const FlatDatabase& ranked_corpus,
                               const std::vector<Frequency>& freq,
                               const std::vector<ItemId>& rank_of_raw,
                               const DatasetStats& stats) {
  if (names.size() != raw_parent.size() ||
      names.size() != rank_of_raw.size() || names.size() != freq.size()) {
    throw IoError(IoErrorKind::kMalformed, 0,
                  "snapshot: inconsistent vocabulary/hierarchy/f-list sizes");
  }
  std::vector<Section> sections;
  sections.push_back({kVocabulary, EncodeVocabulary(names)});
  sections.push_back({kHierarchy, EncodeHierarchy(raw_parent)});
  sections.push_back({kCorpus, EncodeCorpus(ranked_corpus)});
  sections.push_back({kFlist, EncodeFlist(freq, rank_of_raw)});
  sections.push_back({kStats, EncodeStats(stats)});

  // The table encodes file-absolute payload offsets, which depend on the
  // table's own size — varint lengths make that circular, so the header is
  // built twice: once with zero offsets to learn its size, then for real.
  auto build_header = [&](uint64_t payload_base) {
    std::string header(kMagic, sizeof(kMagic));
    PutVarint32(&header, kSnapshotVersion);
    PutVarint32(&header, static_cast<uint32_t>(sections.size()));
    uint64_t offset = payload_base;
    for (const Section& s : sections) {
      PutVarint32(&header, s.id);
      PutVarint64(&header, offset);
      PutVarint64(&header, s.payload.size());
      PutFixed64(&header, FnvHashBytes(s.payload.data(), s.payload.size()));
      offset += s.payload.size();
    }
    return header;
  };
  // Varints only grow with larger offsets, so the header size is
  // nondecreasing across rounds and must reach a fixed point (two rounds
  // in practice); converging is asserted, never assumed, because a
  // non-converged header would shift every payload offset.
  std::string header = build_header(0);
  bool converged = false;
  for (int round = 0; round < 8 && !converged; ++round) {
    std::string next = build_header(header.size());
    converged = next.size() == header.size();
    header = std::move(next);
  }
  if (!converged) {
    throw IoError(IoErrorKind::kWriteFailed, 0,
                  "snapshot: header offset encoding did not converge");
  }

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const Section& s : sections) {
    out.write(s.payload.data(), static_cast<std::streamsize>(s.payload.size()));
  }
  if (!out) {
    throw IoError(IoErrorKind::kWriteFailed, 0, "snapshot: write failed");
  }
}

DatasetSnapshot ReadDatasetSnapshot(std::istream& in) {
  std::string data = ReadAllBytes(in);
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    throw IoError(IoErrorKind::kBadMagic, 0,
                  "snapshot: not a LASHSNAP container");
  }
  ByteReader header(data, "snapshot header");
  (void)header.ReadBytes(sizeof(kMagic), "magic");
  const uint32_t version = header.ReadVarint32("version");
  if (version > kSnapshotVersion) {
    throw IoError(IoErrorKind::kBadVersion, header.pos(),
                  "snapshot: version " + std::to_string(version) +
                      " is newer than supported version " +
                      std::to_string(kSnapshotVersion));
  }
  const uint32_t num_sections = header.ReadVarint32("section count");

  struct TableEntry {
    uint32_t id;
    uint64_t offset;
    uint64_t length;
    uint64_t checksum;
  };
  std::vector<TableEntry> table;
  table.reserve(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    TableEntry e;
    e.id = header.ReadVarint32("section id");
    e.offset = header.ReadVarint64("section offset");
    e.length = header.ReadVarint64("section length");
    e.checksum = GetFixed64(header.ReadBytes(8, "section checksum").data());
    if (e.offset > data.size() || e.length > data.size() - e.offset) {
      throw IoError(IoErrorKind::kTruncated, header.pos(),
                    "snapshot: section " + std::to_string(e.id) +
                        " extends past end of file");
    }
    table.push_back(e);
  }

  // Extract + checksum-verify the sections this version understands;
  // unknown ids are skipped (forward-compatible additions).
  auto find = [&](uint32_t id) -> const TableEntry* {
    for (const TableEntry& e : table) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };
  // Sections are checksummed and parsed *in place* over `data` (a bounded
  // string_view window) — no multi-MB substring copy of the corpus section
  // on the startup path this file exists to make fast.
  auto load = [&](uint32_t id, const char* what) {
    const TableEntry* e = find(id);
    if (e == nullptr) {
      throw IoError(IoErrorKind::kMalformed, 0,
                    std::string("snapshot: missing required section ") + what);
    }
    std::string_view payload(data.data() + e->offset,
                             static_cast<size_t>(e->length));
    const uint64_t actual = FnvHashBytes(payload.data(), payload.size());
    if (actual != e->checksum) {
      throw IoError(IoErrorKind::kChecksumMismatch, e->offset,
                    std::string("snapshot: section ") + what +
                        " failed checksum verification");
    }
    return payload;
  };

  DatasetSnapshot snap;

  {
    const std::string_view payload = load(kVocabulary, "vocabulary");
    ByteReader r(payload, "snapshot vocabulary section",
                 find(kVocabulary)->offset);
    const uint64_t n = r.ReadVarint64("item count");
    if (n > payload.size()) r.Malformed("item count exceeds section size");
    snap.names.resize(1);
    snap.names.reserve(n + 1);
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t len = r.ReadVarint64("name length");
      snap.names.push_back(r.ReadBytes(len, "name bytes"));
    }
  }
  const size_t n = snap.names.size() - 1;

  {
    const std::string_view payload = load(kHierarchy, "hierarchy");
    ByteReader r(payload, "snapshot hierarchy section",
                 find(kHierarchy)->offset);
    const uint64_t count = r.ReadVarint64("item count");
    if (count != n) {
      r.Malformed("hierarchy item count disagrees with vocabulary");
    }
    snap.raw_parent.assign(n + 1, kInvalidItem);
    for (uint64_t id = 1; id <= count; ++id) {
      const uint32_t p = r.ReadVarint32("parent id");
      if (p > n || p == id) r.Malformed("parent id out of range or self");
      snap.raw_parent[id] = p == 0 ? kInvalidItem : p;
    }
  }

  {
    const std::string_view payload = load(kCorpus, "corpus");
    ByteReader r(payload, "snapshot corpus section", find(kCorpus)->offset);
    const uint64_t count = r.ReadVarint64("sequence count");
    const uint64_t total_items = r.ReadVarint64("total item count");
    if (count > payload.size() || total_items > payload.size()) {
      r.Malformed("corpus counts exceed section size");
    }
    snap.ranked_corpus.Reserve(count, total_items);
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t len = r.ReadVarint64("sequence length");
      if (len > payload.size()) r.Malformed("sequence length out of range");
      ItemId* items = snap.ranked_corpus.AppendSlot(len);
      for (uint64_t j = 0; j < len; ++j) {
        const uint32_t rank = r.ReadVarint32("item rank");
        if (rank == kInvalidItem || rank > n) {
          r.Malformed("item rank out of range");
        }
        items[j] = rank;
      }
    }
  }

  {
    const std::string_view payload = load(kFlist, "f-list");
    ByteReader r(payload, "snapshot f-list section", find(kFlist)->offset);
    const uint64_t count = r.ReadVarint64("rank count");
    if (count != n) r.Malformed("f-list rank count disagrees with vocabulary");
    snap.freq.assign(n + 1, 0);
    for (uint64_t rank = 1; rank <= count; ++rank) {
      snap.freq[rank] = r.ReadVarint64("frequency");
      // NumFrequent binary-searches the f-list assuming non-increasing
      // frequencies over ranks; a violation would silently mis-mine.
      if (rank > 1 && snap.freq[rank] > snap.freq[rank - 1]) {
        r.Malformed("f-list is not non-increasing over ranks");
      }
    }
    snap.rank_of_raw.assign(n + 1, kInvalidItem);
    std::vector<char> seen(n + 1, 0);
    for (uint64_t raw = 1; raw <= count; ++raw) {
      const uint32_t rank = r.ReadVarint32("rank of raw id");
      if (rank == kInvalidItem || rank > n || seen[rank]) {
        r.Malformed("rank order is not a permutation of 1..n");
      }
      seen[rank] = 1;
      snap.rank_of_raw[raw] = rank;
    }
  }

  {
    const std::string_view payload = load(kStats, "stats");
    ByteReader r(payload, "snapshot stats section", find(kStats)->offset);
    snap.stats.num_sequences = r.ReadVarint64("num sequences");
    snap.stats.total_items = r.ReadVarint64("total items");
    snap.stats.max_length = r.ReadVarint64("max length");
    snap.stats.unique_items = r.ReadVarint64("unique items");
    snap.stats.avg_length =
        snap.stats.num_sequences == 0
            ? 0.0
            : static_cast<double>(snap.stats.total_items) /
                  static_cast<double>(snap.stats.num_sequences);
  }

  return snap;
}

}  // namespace lash
