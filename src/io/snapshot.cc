#include "io/snapshot.h"

#include <cstring>
#include <deque>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "io/io_error.h"
#include "util/hash.h"
#include "util/varint.h"

namespace lash {

namespace {

constexpr char kMagic[8] = {'L', 'A', 'S', 'H', 'S', 'N', 'A', 'P'};

// v2 section ids (see the layout comment in snapshot.h). New sections may
// be added freely (readers skip unknown ids); changing the encoding of an
// existing section requires a version bump.
enum SectionId : uint32_t {
  kVocabulary = 1,     // u32 n; u32 ends[n]; name bytes.
  kHierarchy = 2,      // u32 n; u32 parent[n] (0 = root).
  kCorpusOffsets = 3,  // u64 num_sequences; u64 offsets[num_sequences + 1].
  kFlist = 4,          // u32 n; u32 pad; u64 freq[n + 1].
  kStats = 5,          // u64 x 4.
  kRankOrder = 6,      // u32 n; u32 rank_of_raw[n + 1].
  kCorpusArena = 7,    // u64 total_items; u32 items[total_items].
};

// v1 section ids (varint payloads; the legacy decoder below).
enum V1SectionId : uint32_t {
  kV1Vocabulary = 1,
  kV1Hierarchy = 2,
  kV1Corpus = 3,
  kV1Flist = 4,
  kV1Stats = 5,
};

constexpr size_t kHeaderFixedBytes = 13;   // magic + version byte + u32 count.
constexpr size_t kTableEntryBytes = 32;
constexpr size_t kSectionAlignment = 64;
constexpr uint32_t kMaxSections = 4096;    // Sanity bound on the table.

bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  return *reinterpret_cast<const unsigned char*>(&probe) == 1;
}

// Byte-composed LE load/store: endian-agnostic and alignment-free (the
// compilers turn these into single loads/stores on little-endian targets).
uint32_t LoadLeU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadLeU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

void AppendLeU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendLeU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutFixed64(std::string* out, uint64_t value) { AppendLeU64(out, value); }

uint64_t GetFixed64(const char* data) { return LoadLeU64(data); }

/// The LE file bytes of `count` integers: on little-endian hosts, a view
/// straight over the array (the zero-copy write path); elsewhere an owned
/// byteswapped copy parked in `keeper`.
template <typename T>
std::string_view ArrayBytes(const T* data, size_t count,
                            std::deque<std::string>* keeper) {
  static_assert(sizeof(T) == 4 || sizeof(T) == 8);
  if (HostIsLittleEndian()) {
    return std::string_view(reinterpret_cast<const char*>(data),
                            count * sizeof(T));
  }
  std::string owned;
  owned.reserve(count * sizeof(T));
  for (size_t i = 0; i < count; ++i) {
    if constexpr (sizeof(T) == 4) {
      AppendLeU32(&owned, static_cast<uint32_t>(data[i]));
    } else {
      AppendLeU64(&owned, static_cast<uint64_t>(data[i]));
    }
  }
  keeper->push_back(std::move(owned));
  return keeper->back();
}

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~uint64_t{kSectionAlignment - 1};
}

// ---- v2 writer -----------------------------------------------------------

struct SectionOut {
  uint32_t id = 0;
  uint32_t flags = 0;
  std::vector<std::string_view> pieces;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
};

void FinishSection(SectionOut* section) {
  FnvStream sum;
  uint64_t length = 0;
  for (std::string_view piece : section->pieces) {
    sum.Update(piece.data(), piece.size());
    length += piece.size();
  }
  section->length = length;
  section->checksum = sum.Digest();
}

// ---- v2 shared section parsers ------------------------------------------
//
// Each parses one section payload that is fully in memory. With `borrow`,
// arrays are reinterpreted in place (callers guarantee a little-endian
// host and 64-byte-aligned, outliving memory — the mmap path); without it,
// elements are copied through the alignment-free LE loads (the streaming
// and big-endian paths, where `p` may be an unaligned temp buffer).

[[noreturn]] void SectionMalformed(uint64_t file_offset, const char* what,
                                   const std::string& message) {
  throw IoError(IoErrorKind::kMalformed, file_offset,
                std::string("snapshot ") + what + " section: " + message);
}

Vocabulary ParseVocabularySection(const char* p, uint64_t len,
                                  uint64_t file_offset, bool borrow) {
  if (len < 4) SectionMalformed(file_offset, "vocabulary", "too short");
  const uint64_t n = LoadLeU32(p);
  if (n > (len - 4) / 4) {
    SectionMalformed(file_offset, "vocabulary",
                     "item count exceeds section size");
  }
  const char* ends_bytes = p + 4;
  const char* blob = p + 4 + 4 * n;
  const uint64_t blob_size = len - 4 - 4 * n;
  const uint64_t total = n == 0 ? 0 : LoadLeU32(ends_bytes + 4 * (n - 1));
  if (total != blob_size) {
    SectionMalformed(file_offset, "vocabulary",
                     "name bytes disagree with offsets");
  }
  try {
    if (borrow) {
      return Vocabulary::Restore(blob, blob_size,
                                 reinterpret_cast<const uint32_t*>(ends_bytes),
                                 n, /*copy_blob=*/false);
    }
    std::vector<uint32_t> ends(n);
    for (uint64_t i = 0; i < n; ++i) ends[i] = LoadLeU32(ends_bytes + 4 * i);
    return Vocabulary::Restore(blob, blob_size, ends.data(), n,
                               /*copy_blob=*/true);
  } catch (const std::invalid_argument& e) {
    SectionMalformed(file_offset, "vocabulary", e.what());
  }
}

void ApplyHierarchySection(const char* p, uint64_t len, uint64_t file_offset,
                           Vocabulary* vocab) {
  const uint64_t n = vocab->NumItems();
  if (len != 4 + 4 * n || LoadLeU32(p) != n) {
    SectionMalformed(file_offset, "hierarchy",
                     "item count disagrees with vocabulary");
  }
  try {
    for (uint64_t id = 1; id <= n; ++id) {
      const uint32_t parent = LoadLeU32(p + 4 * id);
      if (parent != 0) {
        vocab->SetParent(static_cast<ItemId>(id), parent);
      }
    }
  } catch (const std::invalid_argument& e) {
    SectionMalformed(file_offset, "hierarchy", e.what());
  }
}

ArrayRef<Frequency> ParseFlistSection(const char* p, uint64_t len,
                                      uint64_t file_offset, size_t n,
                                      bool borrow) {
  if (len != 8 + 8 * (uint64_t{n} + 1) || LoadLeU32(p) != n) {
    SectionMalformed(file_offset, "f-list",
                     "rank count disagrees with vocabulary");
  }
  const char* array = p + 8;
  if (borrow) {
    return ArrayRef<Frequency>::Borrowed(
        reinterpret_cast<const Frequency*>(array), n + 1);
  }
  std::vector<Frequency> freq(n + 1);
  for (size_t i = 0; i <= n; ++i) freq[i] = LoadLeU64(array + 8 * i);
  return freq;
}

ArrayRef<ItemId> ParseRankOrderSection(const char* p, uint64_t len,
                                       uint64_t file_offset, size_t n,
                                       bool borrow) {
  if (len != 4 + 4 * (uint64_t{n} + 1) || LoadLeU32(p) != n) {
    SectionMalformed(file_offset, "rank-order",
                     "item count disagrees with vocabulary");
  }
  const char* array = p + 4;
  if (borrow) {
    return ArrayRef<ItemId>::Borrowed(reinterpret_cast<const ItemId*>(array),
                                      n + 1);
  }
  std::vector<ItemId> ranks(n + 1);
  for (size_t i = 0; i <= n; ++i) ranks[i] = LoadLeU32(array + 4 * i);
  return ranks;
}

DatasetStats ParseStatsSection(const char* p, uint64_t len,
                               uint64_t file_offset) {
  if (len != 32) SectionMalformed(file_offset, "stats", "wrong size");
  DatasetStats stats;
  stats.num_sequences = LoadLeU64(p);
  stats.total_items = LoadLeU64(p + 8);
  stats.max_length = LoadLeU64(p + 16);
  stats.unique_items = LoadLeU64(p + 24);
  stats.avg_length = stats.num_sequences == 0
                         ? 0.0
                         : static_cast<double>(stats.total_items) /
                               static_cast<double>(stats.num_sequences);
  return stats;
}

/// Cross-section invariants shared by every v2 load path. Corpus interior
/// checks (offset monotonicity, item ranks in range) are O(corpus bytes)
/// and run only when `check_corpus` — the copying loads; a mapped load
/// defers them to Dataset::VerifyCorpus alongside the corpus checksums.
void ValidateSnapshotSemantics(const DatasetSnapshot& snap, bool check_corpus) {
  const size_t n = snap.vocabulary.NumItems();
  auto malformed = [](const std::string& message) -> void {
    throw IoError(IoErrorKind::kMalformed, 0, "snapshot: " + message);
  };
  if (snap.freq.size() != n + 1 || snap.rank_of_raw.size() != n + 1) {
    malformed("f-list / rank-order sizes disagree with vocabulary");
  }
  if (n > 0) {
    if (snap.freq.data()[0] != 0) malformed("f-list slot 0 is not zero");
    for (size_t r = 2; r <= n; ++r) {
      // NumFrequent binary-searches the f-list assuming non-increasing
      // frequencies over ranks; a violation would silently mis-mine.
      if (snap.freq.data()[r] > snap.freq.data()[r - 1]) {
        malformed("f-list is not non-increasing over ranks");
      }
    }
    std::vector<char> seen(n + 1, 0);
    for (size_t raw = 1; raw <= n; ++raw) {
      const ItemId rank = snap.rank_of_raw.data()[raw];
      if (rank == kInvalidItem || rank > n || seen[rank]) {
        malformed("rank order is not a permutation of 1..n");
      }
      seen[rank] = 1;
    }
  }
  if (check_corpus) {
    const FlatDatabase& db = snap.ranked_corpus;
    const uint64_t* offsets = db.offset_table();
    for (size_t i = 1; i <= db.size(); ++i) {
      if (offsets[i] < offsets[i - 1]) {
        malformed("corpus offset table is not monotone");
      }
    }
    const ItemId* arena = db.arena();
    for (size_t i = 0; i < db.TotalItems(); ++i) {
      if (arena[i] == kInvalidItem || arena[i] > n) {
        malformed("corpus item rank out of range");
      }
    }
  }
}

// ---- v2 section table ----------------------------------------------------

struct V2Entry {
  uint32_t id;
  uint32_t flags;
  uint64_t offset;
  uint64_t length;
  uint64_t checksum;
};

/// Decodes and validates the table entries from their raw bytes.
/// `total_size` is the container size (for bounds); both readers know it.
std::vector<V2Entry> ParseV2Entries(const char* table, uint32_t count,
                                    uint64_t total_size) {
  std::vector<V2Entry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const char* p = table + kTableEntryBytes * i;
    V2Entry e;
    e.id = LoadLeU32(p);
    e.flags = LoadLeU32(p + 4);
    e.offset = LoadLeU64(p + 8);
    e.length = LoadLeU64(p + 16);
    e.checksum = LoadLeU64(p + 24);
    const uint64_t table_pos = kHeaderFixedBytes + kTableEntryBytes * i;
    if (e.offset % kSectionAlignment != 0) {
      throw IoError(IoErrorKind::kMalformed, table_pos,
                    "snapshot: section " + std::to_string(e.id) +
                        " does not start at a 64-byte-aligned offset");
    }
    if (e.offset > total_size || e.length > total_size - e.offset) {
      throw IoError(IoErrorKind::kTruncated, table_pos,
                    "snapshot: section " + std::to_string(e.id) +
                        " extends past end of file");
    }
    entries.push_back(e);
  }
  return entries;
}

const V2Entry* FindEntry(const std::vector<V2Entry>& entries, uint32_t id) {
  for (const V2Entry& e : entries) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const V2Entry& RequireEntry(const std::vector<V2Entry>& entries, uint32_t id,
                            const char* what) {
  const V2Entry* e = FindEntry(entries, id);
  if (e == nullptr) {
    throw IoError(IoErrorKind::kMalformed, 0,
                  std::string("snapshot: missing required section ") + what);
  }
  return *e;
}

// ---- v1 legacy codec -----------------------------------------------------

std::string EncodeV1Vocabulary(const Vocabulary& vocab) {
  std::string out;
  const size_t n = vocab.NumItems();
  PutVarint64(&out, n);
  for (size_t id = 1; id <= n; ++id) {
    const std::string_view name = vocab.Name(static_cast<ItemId>(id));
    PutVarint64(&out, name.size());
    out.append(name);
  }
  return out;
}

std::string EncodeV1Hierarchy(const Vocabulary& vocab) {
  std::string out;
  const size_t n = vocab.NumItems();
  PutVarint64(&out, n);
  for (size_t id = 1; id <= n; ++id) {
    ItemId parent = vocab.Parent(static_cast<ItemId>(id));
    PutVarint32(&out, parent == kInvalidItem ? 0 : parent);
  }
  return out;
}

std::string EncodeV1Corpus(const FlatDatabase& db) {
  std::string out;
  PutVarint64(&out, db.size());
  PutVarint64(&out, db.TotalItems());
  for (SequenceView t : db) {
    PutVarint64(&out, t.size());
    for (ItemId w : t) PutVarint32(&out, w);
  }
  return out;
}

std::string EncodeV1Flist(const ArrayRef<Frequency>& freq,
                          const ArrayRef<ItemId>& rank_of_raw) {
  std::string out;
  PutVarint64(&out, freq.size() - 1);
  for (size_t r = 1; r < freq.size(); ++r) {
    PutVarint64(&out, freq[r]);
  }
  for (size_t raw = 1; raw < rank_of_raw.size(); ++raw) {
    PutVarint32(&out, rank_of_raw[raw]);
  }
  return out;
}

std::string EncodeV1Stats(const DatasetStats& stats) {
  std::string out;
  PutVarint64(&out, stats.num_sequences);
  PutVarint64(&out, stats.total_items);
  PutVarint64(&out, stats.max_length);
  PutVarint64(&out, stats.unique_items);
  return out;
}

/// Decodes a whole v1 container held in memory (the pre-v2 reader,
/// preserved as the compatibility fallback; always copies).
DatasetSnapshot DecodeV1(std::string_view data) {
  ByteReader header(data, "snapshot header");
  (void)header.ReadBytes(sizeof(kMagic), "magic");
  (void)header.ReadVarint32("version");  // Caller sniffed it as 1.
  const uint32_t num_sections = header.ReadVarint32("section count");

  struct TableEntry {
    uint32_t id;
    uint64_t offset;
    uint64_t length;
    uint64_t checksum;
  };
  std::vector<TableEntry> table;
  table.reserve(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    TableEntry e;
    e.id = header.ReadVarint32("section id");
    e.offset = header.ReadVarint64("section offset");
    e.length = header.ReadVarint64("section length");
    e.checksum = GetFixed64(header.ReadBytes(8, "section checksum").data());
    if (e.offset > data.size() || e.length > data.size() - e.offset) {
      throw IoError(IoErrorKind::kTruncated, header.pos(),
                    "snapshot: section " + std::to_string(e.id) +
                        " extends past end of file");
    }
    table.push_back(e);
  }

  auto find = [&](uint32_t id) -> const TableEntry* {
    for (const TableEntry& e : table) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };
  // Sections are checksummed and parsed *in place* over `data` (a bounded
  // string_view window) — no multi-MB substring copy of the corpus section.
  auto load = [&](uint32_t id, const char* what) {
    const TableEntry* e = find(id);
    if (e == nullptr) {
      throw IoError(IoErrorKind::kMalformed, 0,
                    std::string("snapshot: missing required section ") + what);
    }
    std::string_view payload(data.data() + e->offset,
                             static_cast<size_t>(e->length));
    const uint64_t actual = FnvHashBytes(payload.data(), payload.size());
    if (actual != e->checksum) {
      throw IoError(IoErrorKind::kChecksumMismatch, e->offset,
                    std::string("snapshot: section ") + what +
                        " failed checksum verification");
    }
    return payload;
  };

  DatasetSnapshot snap;

  std::vector<std::string> names(1);
  {
    const std::string_view payload = load(kV1Vocabulary, "vocabulary");
    ByteReader r(payload, "snapshot vocabulary section",
                 find(kV1Vocabulary)->offset);
    const uint64_t n = r.ReadVarint64("item count");
    if (n > payload.size()) r.Malformed("item count exceeds section size");
    names.reserve(n + 1);
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t len = r.ReadVarint64("name length");
      names.push_back(r.ReadBytes(len, "name bytes"));
    }
  }
  const size_t n = names.size() - 1;
  snap.vocabulary.Reserve(n);
  for (size_t id = 1; id <= n; ++id) {
    if (snap.vocabulary.AddItem(names[id]) != static_cast<ItemId>(id)) {
      throw IoError(IoErrorKind::kMalformed, find(kV1Vocabulary)->offset,
                    "snapshot vocabulary section: duplicate name '" +
                        names[id] + "'");
    }
  }

  {
    const std::string_view payload = load(kV1Hierarchy, "hierarchy");
    ByteReader r(payload, "snapshot hierarchy section",
                 find(kV1Hierarchy)->offset);
    const uint64_t count = r.ReadVarint64("item count");
    if (count != n) {
      r.Malformed("hierarchy item count disagrees with vocabulary");
    }
    for (uint64_t id = 1; id <= count; ++id) {
      const uint32_t p = r.ReadVarint32("parent id");
      if (p > n || p == id) r.Malformed("parent id out of range or self");
      if (p != 0) {
        snap.vocabulary.SetParent(static_cast<ItemId>(id), p);
      }
    }
  }

  {
    const std::string_view payload = load(kV1Corpus, "corpus");
    ByteReader r(payload, "snapshot corpus section", find(kV1Corpus)->offset);
    const uint64_t count = r.ReadVarint64("sequence count");
    const uint64_t total_items = r.ReadVarint64("total item count");
    if (count > payload.size() || total_items > payload.size()) {
      r.Malformed("corpus counts exceed section size");
    }
    snap.ranked_corpus.Reserve(count, total_items);
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t len = r.ReadVarint64("sequence length");
      if (len > payload.size()) r.Malformed("sequence length out of range");
      ItemId* items = snap.ranked_corpus.AppendSlot(len);
      for (uint64_t j = 0; j < len; ++j) {
        const uint32_t rank = r.ReadVarint32("item rank");
        if (rank == kInvalidItem || rank > n) {
          r.Malformed("item rank out of range");
        }
        items[j] = rank;
      }
    }
  }

  {
    const std::string_view payload = load(kV1Flist, "f-list");
    ByteReader r(payload, "snapshot f-list section", find(kV1Flist)->offset);
    const uint64_t count = r.ReadVarint64("rank count");
    if (count != n) r.Malformed("f-list rank count disagrees with vocabulary");
    std::vector<Frequency> freq(n + 1, 0);
    for (uint64_t rank = 1; rank <= count; ++rank) {
      freq[rank] = r.ReadVarint64("frequency");
      if (rank > 1 && freq[rank] > freq[rank - 1]) {
        r.Malformed("f-list is not non-increasing over ranks");
      }
    }
    std::vector<ItemId> rank_of_raw(n + 1, kInvalidItem);
    std::vector<char> seen(n + 1, 0);
    for (uint64_t raw = 1; raw <= count; ++raw) {
      const uint32_t rank = r.ReadVarint32("rank of raw id");
      if (rank == kInvalidItem || rank > n || seen[rank]) {
        r.Malformed("rank order is not a permutation of 1..n");
      }
      seen[rank] = 1;
      rank_of_raw[raw] = rank;
    }
    snap.freq = std::move(freq);
    snap.rank_of_raw = std::move(rank_of_raw);
  }

  {
    const std::string_view payload = load(kV1Stats, "stats");
    ByteReader r(payload, "snapshot stats section", find(kV1Stats)->offset);
    snap.stats.num_sequences = r.ReadVarint64("num sequences");
    snap.stats.total_items = r.ReadVarint64("total items");
    snap.stats.max_length = r.ReadVarint64("max length");
    snap.stats.unique_items = r.ReadVarint64("unique items");
    snap.stats.avg_length =
        snap.stats.num_sequences == 0
            ? 0.0
            : static_cast<double>(snap.stats.total_items) /
                  static_cast<double>(snap.stats.num_sequences);
  }

  return snap;
}

/// Sniffs the leading magic + version. Throws kBadMagic / kTruncated /
/// kBadVersion; returns 1 or 2.
uint32_t SniffVersion(const char* data, size_t size) {
  if (size < sizeof(kMagic) ||
      std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    throw IoError(IoErrorKind::kBadMagic, 0,
                  "snapshot: not a LASHSNAP container");
  }
  if (size < sizeof(kMagic) + 1) {
    throw IoError(IoErrorKind::kTruncated, size,
                  "snapshot: cannot decode version");
  }
  const unsigned char version = static_cast<unsigned char>(data[8]);
  // Versions 1 and 2 are single-byte varints; anything else (including a
  // multi-byte varint continuation) is from the future.
  if (version != 1 && version != kSnapshotVersion) {
    throw IoError(IoErrorKind::kBadVersion, 8,
                  "snapshot: version " + std::to_string(version) +
                      " is newer than supported version " +
                      std::to_string(kSnapshotVersion));
  }
  return version;
}

// ---- v2 mapped reader ----------------------------------------------------

DatasetSnapshot ParseV2Mapped(const char* data, size_t size) {
  if (size < kHeaderFixedBytes) {
    throw IoError(IoErrorKind::kTruncated, size,
                  "snapshot: cannot decode section count");
  }
  const uint32_t count = LoadLeU32(data + 9);
  if (count > kMaxSections) {
    throw IoError(IoErrorKind::kMalformed, 9,
                  "snapshot: unreasonable section count");
  }
  if (kHeaderFixedBytes + uint64_t{kTableEntryBytes} * count > size) {
    throw IoError(IoErrorKind::kTruncated, size,
                  "snapshot: section table extends past end of file");
  }
  const std::vector<V2Entry> entries =
      ParseV2Entries(data + kHeaderFixedBytes, count, size);

  // Borrow only on little-endian hosts: the on-disk arrays are LE, so a BE
  // host must decode by copying (the interface stays identical).
  const bool borrow = HostIsLittleEndian();
  DatasetSnapshot snap;

  auto verify = [&](const V2Entry& e, const char* what) {
    if (FnvHashBytes(data + e.offset, e.length) != e.checksum) {
      throw IoError(IoErrorKind::kChecksumMismatch, e.offset,
                    std::string("snapshot: section ") + what +
                        " failed checksum verification");
    }
  };

  const V2Entry& ev = RequireEntry(entries, kVocabulary, "vocabulary");
  verify(ev, "vocabulary");
  snap.vocabulary =
      ParseVocabularySection(data + ev.offset, ev.length, ev.offset, borrow);
  const size_t n = snap.vocabulary.NumItems();

  const V2Entry& eh = RequireEntry(entries, kHierarchy, "hierarchy");
  verify(eh, "hierarchy");
  ApplyHierarchySection(data + eh.offset, eh.length, eh.offset,
                        &snap.vocabulary);

  const V2Entry& ef = RequireEntry(entries, kFlist, "f-list");
  verify(ef, "f-list");
  snap.freq = ParseFlistSection(data + ef.offset, ef.length, ef.offset, n,
                                borrow);

  const V2Entry& er = RequireEntry(entries, kRankOrder, "rank-order");
  verify(er, "rank-order");
  snap.rank_of_raw =
      ParseRankOrderSection(data + er.offset, er.length, er.offset, n, borrow);

  const V2Entry& es = RequireEntry(entries, kStats, "stats");
  verify(es, "stats");
  snap.stats = ParseStatsSection(data + es.offset, es.length, es.offset);

  const V2Entry& eo = RequireEntry(entries, kCorpusOffsets, "corpus-offsets");
  const V2Entry& ea = RequireEntry(entries, kCorpusArena, "corpus-arena");
  // The two corpus sections are the O(corpus bytes) ones: with the writer's
  // lazy flag and a borrowing host, their checksums are deferred to
  // Dataset::VerifyCorpus so the mapped load stays O(page faults).
  auto corpus_checksum = [&](const V2Entry& e, const char* what) {
    if (borrow && (e.flags & kSectionFlagLazyVerify) != 0) {
      snap.deferred.push_back({what, data + e.offset, e.length, e.checksum,
                               e.offset});
    } else {
      verify(e, what);
    }
  };
  corpus_checksum(eo, "corpus-offsets");
  corpus_checksum(ea, "corpus-arena");

  if (eo.length < 8 || ea.length < 8) {
    throw IoError(IoErrorKind::kMalformed, eo.offset,
                  "snapshot corpus section: too short");
  }
  const uint64_t num_sequences = LoadLeU64(data + eo.offset);
  const uint64_t total_items = LoadLeU64(data + ea.offset);
  if (num_sequences > size / 8 ||
      eo.length != 8 + 8 * (num_sequences + 1)) {
    SectionMalformed(eo.offset, "corpus-offsets",
                     "sequence count disagrees with section size");
  }
  if (total_items > size / 4 || ea.length != 8 + 4 * total_items) {
    SectionMalformed(ea.offset, "corpus-arena",
                     "item count disagrees with section size");
  }
  try {
    if (borrow) {
      snap.ranked_corpus = FlatDatabase::Borrowed(
          reinterpret_cast<const ItemId*>(data + ea.offset + 8), total_items,
          reinterpret_cast<const uint64_t*>(data + eo.offset + 8),
          num_sequences);
    } else {
      std::vector<uint64_t> offsets(num_sequences + 1);
      for (uint64_t i = 0; i <= num_sequences; ++i) {
        offsets[i] = LoadLeU64(data + eo.offset + 8 + 8 * i);
      }
      std::vector<ItemId> arena(total_items);
      for (uint64_t i = 0; i < total_items; ++i) {
        arena[i] = LoadLeU32(data + ea.offset + 8 + 4 * i);
      }
      snap.ranked_corpus =
          FlatDatabase::FromBuffers(std::move(arena), std::move(offsets));
    }
  } catch (const std::invalid_argument& e) {
    SectionMalformed(eo.offset, "corpus", e.what());
  }

  ValidateSnapshotSemantics(snap, /*check_corpus=*/!borrow);
  return snap;
}

// ---- v2 streaming (copying) reader ---------------------------------------

[[noreturn]] void StreamTruncated(const char* what) {
  throw IoError(IoErrorKind::kTruncated, 0,
                std::string("snapshot: unexpected end of file reading ") +
                    what);
}

void ReadExact(std::istream& in, char* dst, size_t size, const char* what) {
  in.read(dst, static_cast<std::streamsize>(size));
  if (static_cast<size_t>(in.gcount()) != size) StreamTruncated(what);
}

DatasetSnapshot ParseV2Stream(std::istream& in, std::streampos base) {
  // Learn the container size (the table bounds check needs it), then pick
  // each section up with an absolute seek — sections are streamed straight
  // into their destination arenas, never into a whole-file buffer.
  in.clear();
  if (!in.seekg(0, std::ios::end)) {
    throw IoError(IoErrorKind::kOpenFailed, 0,
                  "snapshot: stream is not seekable (v2 requires seeking)");
  }
  const uint64_t total_size = static_cast<uint64_t>(in.tellg() - base);

  auto seek_to = [&](uint64_t offset, const char* what) {
    in.clear();
    if (!in.seekg(base + static_cast<std::streamoff>(offset))) {
      StreamTruncated(what);
    }
  };

  seek_to(9, "section count");
  char count_bytes[4];
  ReadExact(in, count_bytes, 4, "section count");
  const uint32_t count = LoadLeU32(count_bytes);
  if (count > kMaxSections) {
    throw IoError(IoErrorKind::kMalformed, 9,
                  "snapshot: unreasonable section count");
  }
  if (kHeaderFixedBytes + uint64_t{kTableEntryBytes} * count > total_size) {
    throw IoError(IoErrorKind::kTruncated, total_size,
                  "snapshot: section table extends past end of file");
  }
  std::string table(kTableEntryBytes * count, '\0');
  ReadExact(in, table.data(), table.size(), "section table");
  const std::vector<V2Entry> entries =
      ParseV2Entries(table.data(), count, total_size);

  DatasetSnapshot snap;

  /// Reads + checksum-verifies a (small) section payload into a buffer.
  auto read_small = [&](const V2Entry& e, const char* what) {
    seek_to(e.offset, what);
    std::string payload(e.length, '\0');
    ReadExact(in, payload.data(), payload.size(), what);
    if (FnvHashBytes(payload.data(), payload.size()) != e.checksum) {
      throw IoError(IoErrorKind::kChecksumMismatch, e.offset,
                    std::string("snapshot: section ") + what +
                        " failed checksum verification");
    }
    return payload;
  };

  const V2Entry& ev = RequireEntry(entries, kVocabulary, "vocabulary");
  {
    const std::string payload = read_small(ev, "vocabulary");
    snap.vocabulary = ParseVocabularySection(payload.data(), payload.size(),
                                             ev.offset, /*borrow=*/false);
  }
  const size_t n = snap.vocabulary.NumItems();

  const V2Entry& eh = RequireEntry(entries, kHierarchy, "hierarchy");
  {
    const std::string payload = read_small(eh, "hierarchy");
    ApplyHierarchySection(payload.data(), payload.size(), eh.offset,
                          &snap.vocabulary);
  }

  const V2Entry& ef = RequireEntry(entries, kFlist, "f-list");
  {
    const std::string payload = read_small(ef, "f-list");
    snap.freq = ParseFlistSection(payload.data(), payload.size(), ef.offset,
                                  n, /*borrow=*/false);
  }

  const V2Entry& er = RequireEntry(entries, kRankOrder, "rank-order");
  {
    const std::string payload = read_small(er, "rank-order");
    snap.rank_of_raw = ParseRankOrderSection(payload.data(), payload.size(),
                                             er.offset, n, /*borrow=*/false);
  }

  const V2Entry& es = RequireEntry(entries, kStats, "stats");
  {
    const std::string payload = read_small(es, "stats");
    snap.stats = ParseStatsSection(payload.data(), payload.size(), es.offset);
  }

  // Corpus: stream the arrays straight into their destination buffers —
  // the fix for the v1 reader's double buffering (whole-file slurp + copy).
  // The checksum runs over the destination bytes as read; on big-endian
  // hosts the elements are fixed up in place afterwards.
  const V2Entry& eo = RequireEntry(entries, kCorpusOffsets, "corpus-offsets");
  const V2Entry& ea = RequireEntry(entries, kCorpusArena, "corpus-arena");
  if (eo.length < 8 || ea.length < 8) {
    throw IoError(IoErrorKind::kMalformed, eo.offset,
                  "snapshot corpus section: too short");
  }

  auto read_array_section =
      [&](const V2Entry& e, const char* what, char* dst, uint64_t dst_bytes) {
        // Caller seeked past the 8-byte count; dst_bytes == e.length - 8.
        ReadExact(in, dst, dst_bytes, what);
        FnvStream sum;
        char head[8];
        seek_to(e.offset, what);
        ReadExact(in, head, 8, what);
        sum.Update(head, 8);
        sum.Update(dst, dst_bytes);
        if (sum.Digest() != e.checksum) {
          throw IoError(IoErrorKind::kChecksumMismatch, e.offset,
                        std::string("snapshot: section ") + what +
                            " failed checksum verification");
        }
      };

  seek_to(eo.offset, "corpus-offsets");
  char head[8];
  ReadExact(in, head, 8, "corpus-offsets");
  const uint64_t num_sequences = LoadLeU64(head);
  if (num_sequences > total_size / 8 ||
      eo.length != 8 + 8 * (num_sequences + 1)) {
    SectionMalformed(eo.offset, "corpus-offsets",
                     "sequence count disagrees with section size");
  }
  std::vector<uint64_t> offsets(num_sequences + 1);
  read_array_section(eo, "corpus-offsets",
                     reinterpret_cast<char*>(offsets.data()),
                     eo.length - 8);
  if (!HostIsLittleEndian()) {
    for (uint64_t i = 0; i <= num_sequences; ++i) {
      char bytes[8];
      std::memcpy(bytes, &offsets[i], 8);
      offsets[i] = LoadLeU64(bytes);
    }
  }

  seek_to(ea.offset, "corpus-arena");
  ReadExact(in, head, 8, "corpus-arena");
  const uint64_t total_items = LoadLeU64(head);
  if (total_items > total_size / 4 || ea.length != 8 + 4 * total_items) {
    SectionMalformed(ea.offset, "corpus-arena",
                     "item count disagrees with section size");
  }
  std::vector<ItemId> arena(total_items);
  read_array_section(ea, "corpus-arena", reinterpret_cast<char*>(arena.data()),
                     ea.length - 8);
  if (!HostIsLittleEndian()) {
    for (uint64_t i = 0; i < total_items; ++i) {
      char bytes[4];
      std::memcpy(bytes, &arena[i], 4);
      arena[i] = LoadLeU32(bytes);
    }
  }

  try {
    snap.ranked_corpus =
        FlatDatabase::FromBuffers(std::move(arena), std::move(offsets));
  } catch (const std::invalid_argument& e) {
    SectionMalformed(eo.offset, "corpus", e.what());
  }

  ValidateSnapshotSemantics(snap, /*check_corpus=*/true);
  return snap;
}

}  // namespace

// ---- public API ----------------------------------------------------------

void WriteDatasetSnapshot(std::ostream& out, const DatasetSnapshot& snapshot) {
  WriteDatasetSnapshotParts(out, snapshot.vocabulary, snapshot.ranked_corpus,
                            snapshot.freq, snapshot.rank_of_raw,
                            snapshot.stats);
}

void WriteDatasetSnapshotParts(std::ostream& out, const Vocabulary& vocab,
                               const FlatDatabase& ranked_corpus,
                               const ArrayRef<Frequency>& freq,
                               const ArrayRef<ItemId>& rank_of_raw,
                               const DatasetStats& stats) {
  const size_t n = vocab.NumItems();
  if (freq.size() != n + 1 || rank_of_raw.size() != n + 1) {
    throw IoError(IoErrorKind::kMalformed, 0,
                  "snapshot: inconsistent vocabulary/f-list sizes");
  }

  // Section payloads are assembled as *views* wherever possible: the big
  // arrays (corpus arena/offsets, f-list, rank order) are checksummed and
  // written straight from their in-memory buffers — a save never
  // duplicates them. `keeper` owns the small headers (and, on big-endian
  // hosts, byteswapped array copies).
  std::deque<std::string> keeper;
  auto own = [&keeper](std::string bytes) -> std::string_view {
    keeper.push_back(std::move(bytes));
    return keeper.back();
  };

  std::vector<SectionOut> sections;

  {
    SectionOut vocab_section;
    vocab_section.id = kVocabulary;
    std::string header;
    AppendLeU32(&header, static_cast<uint32_t>(n));
    std::vector<uint32_t> ends(n);
    uint64_t cursor = 0;
    for (size_t id = 1; id <= n; ++id) {
      cursor += vocab.Name(static_cast<ItemId>(id)).size();
      ends[id - 1] = static_cast<uint32_t>(cursor);
    }
    vocab_section.pieces.push_back(own(std::move(header)));
    vocab_section.pieces.push_back(
        own(std::string(ArrayBytes(ends.data(), ends.size(), &keeper))));
    for (size_t id = 1; id <= n; ++id) {
      vocab_section.pieces.push_back(vocab.Name(static_cast<ItemId>(id)));
    }
    sections.push_back(std::move(vocab_section));
  }

  {
    SectionOut hierarchy;
    hierarchy.id = kHierarchy;
    std::string payload;
    AppendLeU32(&payload, static_cast<uint32_t>(n));
    for (size_t id = 1; id <= n; ++id) {
      ItemId parent = vocab.Parent(static_cast<ItemId>(id));
      AppendLeU32(&payload, parent == kInvalidItem ? 0 : parent);
    }
    hierarchy.pieces.push_back(own(std::move(payload)));
    sections.push_back(std::move(hierarchy));
  }

  {
    SectionOut corpus_offsets;
    corpus_offsets.id = kCorpusOffsets;
    corpus_offsets.flags = kSectionFlagLazyVerify;
    std::string header;
    AppendLeU64(&header, ranked_corpus.size());
    corpus_offsets.pieces.push_back(own(std::move(header)));
    corpus_offsets.pieces.push_back(ArrayBytes(
        ranked_corpus.offset_table(), ranked_corpus.size() + 1, &keeper));
    sections.push_back(std::move(corpus_offsets));
  }

  {
    SectionOut flist;
    flist.id = kFlist;
    std::string header;
    AppendLeU32(&header, static_cast<uint32_t>(n));
    AppendLeU32(&header, 0);  // Padding: the u64 array starts 8-aligned.
    AppendLeU64(&header, 0);  // freq slot 0, normalized.
    flist.pieces.push_back(own(std::move(header)));
    flist.pieces.push_back(ArrayBytes(freq.data() + 1, n, &keeper));
    sections.push_back(std::move(flist));
  }

  {
    SectionOut stats_section;
    stats_section.id = kStats;
    std::string payload;
    AppendLeU64(&payload, stats.num_sequences);
    AppendLeU64(&payload, stats.total_items);
    AppendLeU64(&payload, stats.max_length);
    AppendLeU64(&payload, stats.unique_items);
    stats_section.pieces.push_back(own(std::move(payload)));
    sections.push_back(std::move(stats_section));
  }

  {
    SectionOut rank_order;
    rank_order.id = kRankOrder;
    std::string header;
    AppendLeU32(&header, static_cast<uint32_t>(n));
    AppendLeU32(&header, 0);  // rank_of_raw slot 0, normalized.
    rank_order.pieces.push_back(own(std::move(header)));
    rank_order.pieces.push_back(ArrayBytes(rank_of_raw.data() + 1, n,
                                           &keeper));
    sections.push_back(std::move(rank_order));
  }

  {
    SectionOut arena;
    arena.id = kCorpusArena;
    arena.flags = kSectionFlagLazyVerify;
    std::string header;
    AppendLeU64(&header, ranked_corpus.TotalItems());
    arena.pieces.push_back(own(std::move(header)));
    arena.pieces.push_back(ArrayBytes(ranked_corpus.arena(),
                                      ranked_corpus.TotalItems(), &keeper));
    sections.push_back(std::move(arena));
  }

  // Fixed-width table: offsets are computable in one pass (no varint
  // fixed-point convergence like v1 needed). Every payload starts
  // 64-byte-aligned so a page-aligned mapping yields aligned arrays.
  uint64_t offset =
      kHeaderFixedBytes + kTableEntryBytes * sections.size();
  for (SectionOut& s : sections) {
    FinishSection(&s);
    offset = AlignUp(offset);
    s.offset = offset;
    offset += s.length;
  }

  std::string header(kMagic, sizeof(kMagic));
  header.push_back(static_cast<char>(kSnapshotVersion));
  AppendLeU32(&header, static_cast<uint32_t>(sections.size()));
  for (const SectionOut& s : sections) {
    AppendLeU32(&header, s.id);
    AppendLeU32(&header, s.flags);
    AppendLeU64(&header, s.offset);
    AppendLeU64(&header, s.length);
    AppendLeU64(&header, s.checksum);
  }

  const char zeros[kSectionAlignment] = {};
  uint64_t pos = header.size();
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const SectionOut& s : sections) {
    if (s.offset > pos) {
      out.write(zeros, static_cast<std::streamsize>(s.offset - pos));
      pos = s.offset;
    }
    for (std::string_view piece : s.pieces) {
      out.write(piece.data(), static_cast<std::streamsize>(piece.size()));
      pos += piece.size();
    }
  }
  if (!out) {
    throw IoError(IoErrorKind::kWriteFailed, 0, "snapshot: write failed");
  }
}

void WriteDatasetSnapshotV1(std::ostream& out, const Vocabulary& vocab,
                            const FlatDatabase& ranked_corpus,
                            const ArrayRef<Frequency>& freq,
                            const ArrayRef<ItemId>& rank_of_raw,
                            const DatasetStats& stats) {
  const size_t n = vocab.NumItems();
  if (freq.size() != n + 1 || rank_of_raw.size() != n + 1) {
    throw IoError(IoErrorKind::kMalformed, 0,
                  "snapshot: inconsistent vocabulary/f-list sizes");
  }
  struct Section {
    uint32_t id;
    std::string payload;
  };
  std::vector<Section> sections;
  sections.push_back({kV1Vocabulary, EncodeV1Vocabulary(vocab)});
  sections.push_back({kV1Hierarchy, EncodeV1Hierarchy(vocab)});
  sections.push_back({kV1Corpus, EncodeV1Corpus(ranked_corpus)});
  sections.push_back({kV1Flist, EncodeV1Flist(freq, rank_of_raw)});
  sections.push_back({kV1Stats, EncodeV1Stats(stats)});

  // The v1 table encodes file-absolute payload offsets as varints, which
  // depend on the table's own size — circular, so the header is built
  // twice: once with zero offsets to learn its size, then for real.
  auto build_header = [&](uint64_t payload_base) {
    std::string header(kMagic, sizeof(kMagic));
    PutVarint32(&header, 1);  // Version 1.
    PutVarint32(&header, static_cast<uint32_t>(sections.size()));
    uint64_t offset = payload_base;
    for (const Section& s : sections) {
      PutVarint32(&header, s.id);
      PutVarint64(&header, offset);
      PutVarint64(&header, s.payload.size());
      PutFixed64(&header, FnvHashBytes(s.payload.data(), s.payload.size()));
      offset += s.payload.size();
    }
    return header;
  };
  std::string header = build_header(0);
  bool converged = false;
  for (int round = 0; round < 8 && !converged; ++round) {
    std::string next = build_header(header.size());
    converged = next.size() == header.size();
    header = std::move(next);
  }
  if (!converged) {
    throw IoError(IoErrorKind::kWriteFailed, 0,
                  "snapshot: header offset encoding did not converge");
  }

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const Section& s : sections) {
    out.write(s.payload.data(), static_cast<std::streamsize>(s.payload.size()));
  }
  if (!out) {
    throw IoError(IoErrorKind::kWriteFailed, 0, "snapshot: write failed");
  }
}

DatasetSnapshot ReadDatasetSnapshot(std::istream& in) {
  const std::streampos base = in.tellg();
  char prefix[9];
  in.read(prefix, sizeof(prefix));
  const size_t got = static_cast<size_t>(in.gcount());
  const uint32_t version = SniffVersion(prefix, got);
  if (version == 1) {
    // Legacy container: the v1 varint decoder works over one in-memory
    // buffer (acceptable for the compatibility path; v2 streams).
    std::string data(prefix, got);
    in.clear();
    data += ReadAllBytes(in);
    return DecodeV1(data);
  }
  return ParseV2Stream(in, base);
}

DatasetSnapshot ReadDatasetSnapshotMapped(const char* data, size_t size) {
  const uint32_t version = SniffVersion(data, size);
  if (version == 1) {
    return DecodeV1(std::string_view(data, size));
  }
  return ParseV2Mapped(data, size);
}

}  // namespace lash
