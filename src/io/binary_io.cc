#include "io/binary_io.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "io/io_error.h"
#include "util/varint.h"

namespace lash {

namespace {

constexpr uint32_t kDatabaseMagic = 0x4c414442;   // "LADB"
constexpr uint32_t kHierarchyMagic = 0x4c414849;  // "LAHI"
constexpr uint32_t kPatternsMagic = 0x4c415054;   // "LAPT"

void WriteAll(std::ostream& out, const std::string& buffer) {
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out) {
    throw IoError(IoErrorKind::kWriteFailed, 0, "binary_io: write failed");
  }
}

// An unrecognized or truncated prefix is kBadMagic — "this is not a <what>
// container at all" — rather than a truncation inside a known format.
void CheckMagic(ByteReader* reader, uint32_t expected, const char* what) {
  try {
    if (reader->ReadVarint32("magic") == expected) return;
  } catch (const IoError&) {
  }
  throw IoError(IoErrorKind::kBadMagic, 0,
                std::string("binary_io: bad magic for ") + what);
}

// Validates a decoded element count against the bytes actually left in the
// buffer (every element costs >= 1 byte): the input ends before the
// promised elements can exist, which is a typed kTruncated — and never an
// escaping std::length_error/bad_alloc from a huge reserve/resize.
uint64_t CheckCount(const ByteReader& reader, const std::string& data,
                    uint64_t count, const char* what) {
  if (count > data.size() - std::min(reader.pos(), data.size())) {
    throw IoError(IoErrorKind::kTruncated, reader.pos(),
                  std::string("binary_io: input too short for the declared ") +
                      what + " count");
  }
  return count;
}

}  // namespace

void WriteDatabaseBinary(std::ostream& out, const Database& db) {
  std::string buffer;
  PutVarint32(&buffer, kDatabaseMagic);
  PutVarint64(&buffer, db.size());
  for (const Sequence& t : db) EncodeSequence(&buffer, t);
  WriteAll(out, buffer);
}

void WriteDatabaseBinary(std::ostream& out, const FlatDatabase& db) {
  std::string buffer;
  PutVarint32(&buffer, kDatabaseMagic);
  PutVarint64(&buffer, db.size());
  for (SequenceView t : db) {
    PutVarint64(&buffer, t.size());
    for (ItemId w : t) PutVarint32(&buffer, w);
  }
  WriteAll(out, buffer);
}

Database ReadDatabaseBinary(std::istream& in) {
  // One decode loop for both forms: decode flat, then materialize (the
  // same per-sequence vectors this function used to build directly).
  return ReadFlatDatabaseBinary(in).Materialize();
}

FlatDatabase ReadFlatDatabaseBinary(std::istream& in) {
  std::string data = ReadAllBytes(in);
  ByteReader reader(data, "database");
  CheckMagic(&reader, kDatabaseMagic, "database");
  const uint64_t count = CheckCount(
      reader, data, reader.ReadVarint64("sequence count"), "sequence");
  FlatDatabase db;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t len = CheckCount(
        reader, data, reader.ReadVarint64("sequence length"), "item");
    ItemId* items = db.AppendSlot(len);
    for (uint64_t j = 0; j < len; ++j) {
      items[j] = reader.ReadVarint32("sequence item");
    }
  }
  return db;
}

void WriteHierarchyBinary(std::ostream& out, const Hierarchy& h) {
  std::string buffer;
  PutVarint32(&buffer, kHierarchyMagic);
  PutVarint64(&buffer, h.NumItems());
  for (ItemId w = 1; w <= h.NumItems(); ++w) {
    ItemId parent = h.Parent(w);
    PutVarint32(&buffer, parent == kInvalidItem ? 0 : parent);
  }
  WriteAll(out, buffer);
}

Hierarchy ReadHierarchyBinary(std::istream& in) {
  std::string data = ReadAllBytes(in);
  ByteReader reader(data, "hierarchy");
  CheckMagic(&reader, kHierarchyMagic, "hierarchy");
  const uint64_t count = CheckCount(
      reader, data, reader.ReadVarint64("item count"), "item");
  std::vector<ItemId> parent(count + 1, kInvalidItem);
  for (uint64_t w = 1; w <= count; ++w) {
    const uint32_t p = reader.ReadVarint32("parent id");
    parent[w] = p == 0 ? kInvalidItem : p;
  }
  return Hierarchy(std::move(parent));
}

void WritePatternsBinary(std::ostream& out, const PatternMap& patterns) {
  std::string buffer;
  PutVarint32(&buffer, kPatternsMagic);
  PutVarint64(&buffer, patterns.size());
  for (const auto& [seq, freq] : SortedPatterns(patterns)) {
    EncodeSequence(&buffer, seq);
    PutVarint64(&buffer, freq);
  }
  WriteAll(out, buffer);
}

PatternMap ReadPatternsBinary(std::istream& in) {
  std::string data = ReadAllBytes(in);
  ByteReader reader(data, "patterns");
  CheckMagic(&reader, kPatternsMagic, "patterns");
  const uint64_t count = CheckCount(
      reader, data, reader.ReadVarint64("pattern count"), "pattern");
  PatternMap patterns;
  patterns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t len = CheckCount(
        reader, data, reader.ReadVarint64("pattern length"), "item");
    Sequence seq;
    seq.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      seq.push_back(reader.ReadVarint32("pattern item"));
    }
    const uint64_t freq = reader.ReadVarint64("pattern frequency");
    patterns.emplace(std::move(seq), freq);
  }
  return patterns;
}

}  // namespace lash
