#include "io/binary_io.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/varint.h"

namespace lash {

namespace {

constexpr uint32_t kDatabaseMagic = 0x4c414442;   // "LADB"
constexpr uint32_t kHierarchyMagic = 0x4c414849;  // "LAHI"
constexpr uint32_t kPatternsMagic = 0x4c415054;   // "LAPT"

void WriteAll(std::ostream& out, const std::string& buffer) {
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out) throw std::runtime_error("binary_io: write failed");
}

std::string ReadAll(std::istream& in) {
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void CheckMagic(const std::string& data, size_t* pos, uint32_t expected,
                const char* what) {
  uint32_t magic = 0;
  if (!GetVarint32(data, pos, &magic) || magic != expected) {
    throw std::runtime_error(std::string("binary_io: bad magic for ") + what);
  }
}

}  // namespace

void WriteDatabaseBinary(std::ostream& out, const Database& db) {
  std::string buffer;
  PutVarint32(&buffer, kDatabaseMagic);
  PutVarint64(&buffer, db.size());
  for (const Sequence& t : db) EncodeSequence(&buffer, t);
  WriteAll(out, buffer);
}

Database ReadDatabaseBinary(std::istream& in) {
  std::string data = ReadAll(in);
  size_t pos = 0;
  CheckMagic(data, &pos, kDatabaseMagic, "database");
  uint64_t count = 0;
  if (!GetVarint64(data, &pos, &count)) {
    throw std::runtime_error("binary_io: truncated database header");
  }
  Database db;
  db.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Sequence seq;
    if (!DecodeSequence(data, &pos, &seq)) {
      throw std::runtime_error("binary_io: truncated database body");
    }
    db.push_back(std::move(seq));
  }
  return db;
}

void WriteHierarchyBinary(std::ostream& out, const Hierarchy& h) {
  std::string buffer;
  PutVarint32(&buffer, kHierarchyMagic);
  PutVarint64(&buffer, h.NumItems());
  for (ItemId w = 1; w <= h.NumItems(); ++w) {
    ItemId parent = h.Parent(w);
    PutVarint32(&buffer, parent == kInvalidItem ? 0 : parent);
  }
  WriteAll(out, buffer);
}

Hierarchy ReadHierarchyBinary(std::istream& in) {
  std::string data = ReadAll(in);
  size_t pos = 0;
  CheckMagic(data, &pos, kHierarchyMagic, "hierarchy");
  uint64_t count = 0;
  if (!GetVarint64(data, &pos, &count)) {
    throw std::runtime_error("binary_io: truncated hierarchy header");
  }
  std::vector<ItemId> parent(count + 1, kInvalidItem);
  for (uint64_t w = 1; w <= count; ++w) {
    uint32_t p = 0;
    if (!GetVarint32(data, &pos, &p)) {
      throw std::runtime_error("binary_io: truncated hierarchy body");
    }
    parent[w] = p == 0 ? kInvalidItem : p;
  }
  return Hierarchy(std::move(parent));
}

void WritePatternsBinary(std::ostream& out, const PatternMap& patterns) {
  std::string buffer;
  PutVarint32(&buffer, kPatternsMagic);
  PutVarint64(&buffer, patterns.size());
  for (const auto& [seq, freq] : SortedPatterns(patterns)) {
    EncodeSequence(&buffer, seq);
    PutVarint64(&buffer, freq);
  }
  WriteAll(out, buffer);
}

PatternMap ReadPatternsBinary(std::istream& in) {
  std::string data = ReadAll(in);
  size_t pos = 0;
  CheckMagic(data, &pos, kPatternsMagic, "patterns");
  uint64_t count = 0;
  if (!GetVarint64(data, &pos, &count)) {
    throw std::runtime_error("binary_io: truncated patterns header");
  }
  PatternMap patterns;
  patterns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Sequence seq;
    uint64_t freq = 0;
    if (!DecodeSequence(data, &pos, &seq) || !GetVarint64(data, &pos, &freq)) {
      throw std::runtime_error("binary_io: truncated patterns body");
    }
    patterns.emplace(std::move(seq), freq);
  }
  return patterns;
}

}  // namespace lash
