#include "io/result_io.h"

#include <algorithm>
#include <cstring>

#include "util/varint.h"

namespace lash {

bool NamedPatternBefore(const NamedPattern& a, const NamedPattern& b) {
  if (a.frequency != b.frequency) return a.frequency > b.frequency;
  return a.items < b.items;
}

void SortNamedPatterns(NamedPatternList* patterns) {
  std::sort(patterns->begin(), patterns->end(), NamedPatternBefore);
}

NamedPatternList NamePatterns(const Dataset& dataset,
                              const PatternMap& patterns, bool flat) {
  NamedPatternList named;
  named.reserve(patterns.size());
  for (const auto& [ranks, frequency] : patterns) {
    NamedPattern pattern;
    pattern.items.reserve(ranks.size());
    for (ItemId rank : ranks) {
      pattern.items.push_back(dataset.NameOfRank(rank, flat));
    }
    pattern.frequency = frequency;
    named.push_back(std::move(pattern));
  }
  SortNamedPatterns(&named);
  return named;
}

std::string NamedPatternKey(const NamedPattern& pattern) {
  std::string key;
  PutVarint64(&key, pattern.items.size());
  for (const std::string& item : pattern.items) {
    PutVarint64(&key, item.size());
    key.append(item);
  }
  return key;
}

void PutDoubleBits(std::string* out, double value) {
  static_assert(sizeof(double) == sizeof(uint64_t));
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

double ReadDoubleBits(ByteReader& reader, const char* field) {
  const std::string bytes = reader.ReadBytes(8, field);
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void EncodeRunResult(std::string* out, const RunResult& result) {
  out->push_back(static_cast<char>(result.algorithm));
  out->push_back(result.used_flat_hierarchy ? 1 : 0);
  out->push_back(result.aborted ? 1 : 0);
  PutVarint64(out, result.patterns_mined);
  PutVarint64(out, result.patterns_emitted);
  PutVarint64(out, result.miner_stats.candidates);
  PutVarint64(out, result.miner_stats.outputs);
  PutVarint64(out, result.gsp_stats.extended_items);
  PutVarint64(out, result.gsp_stats.candidates);
  PutVarint64(out, result.gsp_stats.database_scans);
  PutVarint64(out, result.partition_shape.partitions);
  PutVarint64(out, result.partition_shape.total_sequences);
  PutVarint64(out, result.partition_shape.max_partition);
  PutDoubleBits(out, result.job.times.map_ms);
  PutDoubleBits(out, result.job.times.shuffle_ms);
  PutDoubleBits(out, result.job.times.reduce_ms);
  PutVarint64(out, result.job.counters.map_input_records);
  PutVarint64(out, result.job.counters.map_output_records);
  PutVarint64(out, result.job.counters.map_output_bytes);
  PutVarint64(out, result.job.counters.reduce_input_groups);
  PutVarint64(out, result.job.counters.reduce_output_records);
  PutDoubleBits(out, result.mine_ms);
  PutDoubleBits(out, result.filter_ms);
  PutDoubleBits(out, result.total_ms);
}

RunResult DecodeRunResult(ByteReader& reader) {
  RunResult result;
  const std::string head = reader.ReadBytes(3, "run-result flags");
  const uint8_t algorithm = static_cast<uint8_t>(head[0]);
  if (algorithm > static_cast<uint8_t>(Algorithm::kSemiNaive)) {
    reader.Malformed("run-result algorithm byte out of range");
  }
  result.algorithm = static_cast<Algorithm>(algorithm);
  if (static_cast<uint8_t>(head[1]) > 1 || static_cast<uint8_t>(head[2]) > 1) {
    reader.Malformed("run-result flag byte out of range");
  }
  result.used_flat_hierarchy = head[1] != 0;
  result.aborted = head[2] != 0;
  result.patterns_mined = reader.ReadVarint64("patterns mined");
  result.patterns_emitted = reader.ReadVarint64("patterns emitted");
  result.miner_stats.candidates = reader.ReadVarint64("miner candidates");
  result.miner_stats.outputs = reader.ReadVarint64("miner outputs");
  result.gsp_stats.extended_items = reader.ReadVarint64("gsp extended items");
  result.gsp_stats.candidates = reader.ReadVarint64("gsp candidates");
  result.gsp_stats.database_scans = reader.ReadVarint64("gsp database scans");
  result.partition_shape.partitions = reader.ReadVarint64("partitions");
  result.partition_shape.total_sequences =
      reader.ReadVarint64("partition sequences");
  result.partition_shape.max_partition = reader.ReadVarint64("max partition");
  result.job.times.map_ms = ReadDoubleBits(reader, "map ms");
  result.job.times.shuffle_ms = ReadDoubleBits(reader, "shuffle ms");
  result.job.times.reduce_ms = ReadDoubleBits(reader, "reduce ms");
  result.job.counters.map_input_records =
      reader.ReadVarint64("map input records");
  result.job.counters.map_output_records =
      reader.ReadVarint64("map output records");
  result.job.counters.map_output_bytes =
      reader.ReadVarint64("map output bytes");
  result.job.counters.reduce_input_groups =
      reader.ReadVarint64("reduce input groups");
  result.job.counters.reduce_output_records =
      reader.ReadVarint64("reduce output records");
  result.mine_ms = ReadDoubleBits(reader, "mine ms");
  result.filter_ms = ReadDoubleBits(reader, "filter ms");
  result.total_ms = ReadDoubleBits(reader, "total ms");
  return result;
}

void EncodeNamedPatterns(std::string* out, const NamedPatternList& patterns) {
  PutVarint64(out, patterns.size());
  for (const NamedPattern& pattern : patterns) {
    PutVarint64(out, pattern.items.size());
    for (const std::string& item : pattern.items) {
      PutVarint64(out, item.size());
      out->append(item);
    }
    PutVarint64(out, pattern.frequency);
  }
}

NamedPatternList DecodeNamedPatterns(ByteReader& reader) {
  const uint64_t count = reader.ReadVarint64("pattern count");
  NamedPatternList patterns;
  patterns.reserve(count < 4096 ? count : 4096);
  for (uint64_t p = 0; p < count; ++p) {
    NamedPattern pattern;
    const uint64_t items = reader.ReadVarint64("item count");
    pattern.items.reserve(items < 4096 ? items : 4096);
    for (uint64_t i = 0; i < items; ++i) {
      const uint64_t length = reader.ReadVarint64("item name length");
      pattern.items.push_back(reader.ReadBytes(length, "item name"));
    }
    pattern.frequency = reader.ReadVarint64("pattern frequency");
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

void EncodeFrequencyList(std::string* out,
                         const std::vector<Frequency>& frequencies) {
  PutVarint64(out, frequencies.size());
  for (Frequency frequency : frequencies) {
    PutVarint64(out, frequency);
  }
}

std::vector<Frequency> DecodeFrequencyList(ByteReader& reader) {
  const uint64_t count = reader.ReadVarint64("frequency count");
  std::vector<Frequency> frequencies;
  frequencies.reserve(count < 4096 ? count : 4096);
  for (uint64_t i = 0; i < count; ++i) {
    frequencies.push_back(reader.ReadVarint64("frequency"));
  }
  return frequencies;
}

}  // namespace lash
