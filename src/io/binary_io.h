#ifndef LASH_IO_BINARY_IO_H_
#define LASH_IO_BINARY_IO_H_

#include <iosfwd>
#include <string>

#include "core/database.h"
#include "core/hierarchy.h"
#include "util/hash.h"

namespace lash {

/// Compact binary container formats (varint-based, with magic headers) for
/// databases, hierarchies and pattern sets. These are the formats a
/// deployment would use for large inputs — the text formats of
/// io/text_io.h are for interchange and debugging.
///
/// All readers validate the magic and throw a typed IoError (io/io_error.h)
/// on corrupt input — bad magic, truncation, and malformed fields are
/// distinguished and carry the byte offset of the failure; the snapshot
/// reader (io/snapshot.h) shares the same failure taxonomy. Item ids are
/// stored verbatim: writer and reader must agree on the id space (raw or
/// rank), typically by storing the vocabulary alongside (text format), by
/// re-running preprocessing — or by using a self-contained dataset
/// snapshot instead.

/// Writes `db` as: magic, sequence count, then each sequence via
/// EncodeSequence.
void WriteDatabaseBinary(std::ostream& out, const Database& db);

/// Flat-form writer; byte-identical output to the Database overload.
void WriteDatabaseBinary(std::ostream& out, const FlatDatabase& db);

/// Inverse of WriteDatabaseBinary.
Database ReadDatabaseBinary(std::istream& in);

/// Inverse of WriteDatabaseBinary, decoded straight into the flat form (no
/// per-sequence heap vectors).
FlatDatabase ReadFlatDatabaseBinary(std::istream& in);

/// Writes a parent array as: magic, item count, parent per item (0 = root).
void WriteHierarchyBinary(std::ostream& out, const Hierarchy& h);

/// Inverse of WriteHierarchyBinary.
Hierarchy ReadHierarchyBinary(std::istream& in);

/// Writes patterns as: magic, count, then (sequence, frequency) pairs in
/// deterministic order.
void WritePatternsBinary(std::ostream& out, const PatternMap& patterns);

/// Inverse of WritePatternsBinary.
PatternMap ReadPatternsBinary(std::istream& in);

}  // namespace lash

#endif  // LASH_IO_BINARY_IO_H_
