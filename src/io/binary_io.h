#ifndef LASH_IO_BINARY_IO_H_
#define LASH_IO_BINARY_IO_H_

#include <iosfwd>
#include <string>

#include "core/database.h"
#include "core/hierarchy.h"
#include "util/hash.h"

namespace lash {

/// Compact binary container formats (varint-based, with magic headers) for
/// databases, hierarchies and pattern sets. These are the formats a
/// deployment would use for large inputs — the text formats of
/// io/text_io.h are for interchange and debugging.
///
/// All readers validate magic/version and throw std::runtime_error on
/// corrupt input. Item ids are stored verbatim: writer and reader must
/// agree on the id space (raw or rank), typically by storing the
/// vocabulary alongside (text format) or re-running preprocessing.

/// Writes `db` as: magic, sequence count, then each sequence via
/// EncodeSequence.
void WriteDatabaseBinary(std::ostream& out, const Database& db);

/// Inverse of WriteDatabaseBinary.
Database ReadDatabaseBinary(std::istream& in);

/// Writes a parent array as: magic, item count, parent per item (0 = root).
void WriteHierarchyBinary(std::ostream& out, const Hierarchy& h);

/// Inverse of WriteHierarchyBinary.
Hierarchy ReadHierarchyBinary(std::istream& in);

/// Writes patterns as: magic, count, then (sequence, frequency) pairs in
/// deterministic order.
void WritePatternsBinary(std::ostream& out, const PatternMap& patterns);

/// Inverse of WritePatternsBinary.
PatternMap ReadPatternsBinary(std::istream& in);

}  // namespace lash

#endif  // LASH_IO_BINARY_IO_H_
