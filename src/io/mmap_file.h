#ifndef LASH_IO_MMAP_FILE_H_
#define LASH_IO_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

namespace lash {

/// A read-only memory mapping of a whole file (RAII: the mapping lives
/// exactly as long as the MmapFile). This is the substrate of the zero-copy
/// snapshot load path (io/snapshot.h "v2"): `Dataset` keeps the MmapFile
/// alive for its own lifetime, so every borrowed SequenceView / ArrayRef /
/// name view handed to miners stays valid without any copy.
///
/// On POSIX, `Open` is open(O_RDONLY) → fstat → mmap(PROT_READ,
/// MAP_PRIVATE) → madvise(MADV_SEQUENTIAL) (snapshot loads scan the small
/// sections front to back; the corpus pages fault in on first access). The
/// fd is closed immediately after mapping — the mapping keeps the file
/// alive. Mapping multiple processes onto one snapshot shares a single
/// page-cache copy, which is the point: an N-worker fan-out pays the corpus
/// RSS once per machine, not once per process.
///
/// Every failure throws IoError(kOpenFailed) naming the path. On platforms
/// without mmap the file is read into a heap buffer instead — same
/// interface, same lifetime rules, no sharing.
///
/// Move-only. `data()` is stable across moves (the mapping itself never
/// relocates), so borrowed pointers taken before a move remain valid.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Throws IoError(IoErrorKind::kOpenFailed) if the
  /// file cannot be opened, stat'ed, or mapped. An empty file yields a
  /// valid mapping with size() == 0.
  static MmapFile Open(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  /// True once Open succeeded (even for an empty file).
  bool valid() const { return valid_; }

 private:
  void Reset();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool valid_ = false;
  /// Non-null only for the non-mmap fallback (heap-buffer ownership).
  std::unique_ptr<char[]> fallback_;
};

}  // namespace lash

#endif  // LASH_IO_MMAP_FILE_H_
