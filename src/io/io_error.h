#ifndef LASH_IO_IO_ERROR_H_
#define LASH_IO_IO_ERROR_H_

#include <cstdint>
#include <istream>
#include <string_view>
#include <stdexcept>
#include <string>

#include "util/types.h"
#include "util/varint.h"

namespace lash {

/// Reads a whole stream into one string. Seekable streams (files) are read
/// with a single sized read instead of a byte-by-byte iterator — on a
/// multi-megabyte snapshot that is the difference between ~0.2 ms and
/// several ms of istreambuf_iterator overhead.
inline std::string ReadAllBytes(std::istream& in) {
  const std::streampos start = in.tellg();
  if (start != std::streampos(-1) && in.seekg(0, std::ios::end)) {
    const std::streampos end = in.tellg();
    in.seekg(start);
    std::string data(static_cast<size_t>(end - start), '\0');
    in.read(data.data(), static_cast<std::streamsize>(data.size()));
    data.resize(static_cast<size_t>(in.gcount()));
    return data;
  }
  in.clear();
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// What went wrong while decoding a binary container (io/binary_io.h,
/// io/snapshot.h). One typed taxonomy shared by every reader, so callers
/// can distinguish "not this format at all" (kBadMagic), "this format from
/// the future" (kBadVersion), "cut short" (kTruncated), and "bit rot"
/// (kChecksumMismatch) without string matching.
enum class IoErrorKind {
  kOpenFailed,        ///< File/stream could not be opened or read.
  kTruncated,         ///< Input ended inside a field.
  kBadMagic,          ///< Leading magic does not identify the format.
  kBadVersion,        ///< Version newer than this reader understands.
  kChecksumMismatch,  ///< Section bytes do not hash to the stored checksum.
  kMalformed,         ///< Structurally invalid (bad varint, bounds, counts).
  kWriteFailed,       ///< Output stream rejected a write.
};

/// Human-readable kind name ("truncated", "bad-magic", ...).
const char* IoErrorKindName(IoErrorKind kind);

/// The one error every binary reader/writer in io/ throws. Derives from
/// std::runtime_error (what the pre-hardening readers threw), so existing
/// catch sites keep working; new code can switch on `kind()` and report
/// `byte_offset()` — the position in the input at which decoding failed.
class IoError : public std::runtime_error {
 public:
  IoError(IoErrorKind kind, uint64_t byte_offset, const std::string& message)
      : std::runtime_error(std::string(IoErrorKindName(kind)) +
                           " at byte offset " + std::to_string(byte_offset) +
                           ": " + message),
        kind_(kind),
        byte_offset_(byte_offset) {}

  IoErrorKind kind() const { return kind_; }
  uint64_t byte_offset() const { return byte_offset_; }

 private:
  IoErrorKind kind_;
  uint64_t byte_offset_;
};

/// Cursor over an in-memory buffer with hardened decoding: every failure is
/// an IoError carrying the byte offset at which it happened. Shared by the
/// binary container readers (io/binary_io.cc) and the snapshot reader
/// (io/snapshot.cc), so all of them fail the same way.
class ByteReader {
 public:
  /// `what` names the container in error messages ("database", "snapshot
  /// vocabulary section", ...). `base_offset` is added to reported offsets
  /// (sections of a larger file report file-absolute positions). The view
  /// may be a bounded window of a larger buffer — decoding never reads
  /// past it — and must outlive the reader.
  ByteReader(std::string_view data, std::string what, uint64_t base_offset = 0)
      : data_(data), what_(std::move(what)), base_(base_offset) {}

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  uint32_t ReadVarint32(const char* field) {
    uint32_t value = 0;
    if (!GetVarint32(data_, &pos_, &value)) Fail(field);
    return value;
  }

  uint64_t ReadVarint64(const char* field) {
    uint64_t value = 0;
    if (!GetVarint64(data_, &pos_, &value)) Fail(field);
    return value;
  }

  /// Reads `n` raw bytes (e.g. a name) into a string.
  std::string ReadBytes(uint64_t n, const char* field) {
    if (n > data_.size() - pos_) Fail(field);
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  /// Throws kMalformed at the current offset.
  [[noreturn]] void Malformed(const std::string& message) const {
    throw IoError(IoErrorKind::kMalformed, base_ + pos_,
                  what_ + ": " + message);
  }

 private:
  [[noreturn]] void Fail(const char* field) const {
    // A field that cannot be decoded at the end of the buffer is a
    // truncation; mid-buffer it is a malformed varint.
    const IoErrorKind kind = pos_ >= data_.size() ? IoErrorKind::kTruncated
                                                  : IoErrorKind::kMalformed;
    throw IoError(kind, base_ + pos_,
                  what_ + ": cannot decode " + std::string(field));
  }

  std::string_view data_;
  size_t pos_ = 0;
  std::string what_;
  uint64_t base_;
};

}  // namespace lash

#endif  // LASH_IO_IO_ERROR_H_
