#ifndef LASH_IO_TEXT_IO_H_
#define LASH_IO_TEXT_IO_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "core/database.h"
#include "core/vocabulary.h"
#include "util/hash.h"

namespace lash {

/// Plain-text dataset exchange formats:
///   * database  — one sequence per line, whitespace-separated item names;
///   * hierarchy — one `child<TAB>parent` edge per line;
///   * patterns  — one `frequency<TAB>item item ...` per line, sorted.
/// These formats make the example binaries' output diffable and let users
/// bring their own data (README "Using your own data").

/// Writes `db` using item names from `vocab`.
void WriteDatabase(std::ostream& out, const Database& db,
                   const Vocabulary& vocab);

/// Reads a database, interning items (as roots) into `vocab`.
Database ReadDatabase(std::istream& in, Vocabulary* vocab);

/// Writes all child→parent edges of `vocab`.
void WriteHierarchy(std::ostream& out, const Vocabulary& vocab);

/// Reads hierarchy edges into `vocab` (items created as needed). Throws
/// std::invalid_argument on malformed lines or conflicting parents.
void ReadHierarchy(std::istream& in, Vocabulary* vocab);

/// Writes patterns in deterministic (lexicographic) order; `name_of` maps an
/// item id in the patterns' id space to a printable name.
void WritePatterns(std::ostream& out, const PatternMap& patterns,
                   const std::function<std::string(ItemId)>& name_of);

}  // namespace lash

#endif  // LASH_IO_TEXT_IO_H_
