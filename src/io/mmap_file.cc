#include "io/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "io/io_error.h"

#if defined(__unix__) || defined(__APPLE__)
#define LASH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace lash {

namespace {

[[noreturn]] void OpenFail(const std::string& path, const std::string& what) {
  throw IoError(IoErrorKind::kOpenFailed, 0,
                "mmap: " + what + ": " + path +
                    (errno != 0 ? std::string(" (") + std::strerror(errno) + ")"
                                : std::string()));
}

}  // namespace

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  data_ = other.data_;
  size_ = other.size_;
  valid_ = other.valid_;
  fallback_ = std::move(other.fallback_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.valid_ = false;
  return *this;
}

void MmapFile::Reset() {
#if LASH_HAVE_MMAP
  if (data_ != nullptr && fallback_ == nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  fallback_.reset();
  data_ = nullptr;
  size_ = 0;
  valid_ = false;
}

MmapFile MmapFile::Open(const std::string& path) {
  MmapFile file;
#if LASH_HAVE_MMAP
  errno = 0;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) OpenFail(path, "cannot open file");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    OpenFail(path, "cannot stat file");
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    errno = 0;
    OpenFail(path, "not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap(len=0) is EINVAL; an empty mapping is simply data_ == nullptr.
    ::close(fd);
    file.valid_ = true;
    return file;
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive; the fd is not needed.
  if (base == MAP_FAILED) OpenFail(path, "cannot map file");
  // Advisory only — the snapshot reader scans header + small sections
  // front to back at load; ignore failures.
  (void)::madvise(base, size, MADV_SEQUENTIAL);
  file.data_ = static_cast<const char*>(base);
  file.size_ = size;
  file.valid_ = true;
  return file;
#else
  // Fallback for platforms without mmap: same interface over a heap copy
  // (no page sharing, but identical lifetime semantics).
  std::ifstream in(path, std::ios::binary);
  if (!in) OpenFail(path, "cannot open file");
  std::string bytes = ReadAllBytes(in);
  file.fallback_ = std::make_unique<char[]>(bytes.size() ? bytes.size() : 1);
  std::memcpy(file.fallback_.get(), bytes.data(), bytes.size());
  file.data_ = file.fallback_.get();
  file.size_ = bytes.size();
  file.valid_ = true;
  return file;
#endif
}

}  // namespace lash
