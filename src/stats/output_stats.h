#ifndef LASH_STATS_OUTPUT_STATS_H_
#define LASH_STATS_OUTPUT_STATS_H_

#include <vector>

#include "core/hierarchy.h"
#include "util/hash.h"
#include "util/types.h"

namespace lash {

/// Output statistics in the format of Table 3 (Sec. 6.7).
struct OutputStatsResult {
  size_t total = 0;            ///< Number of mined generalized sequences.
  double nontrivial_pct = 0;   ///< % not derivable from flat mining output.
  double closed_pct = 0;       ///< % with no equal-frequency supersequence.
  double maximal_pct = 0;      ///< % with no frequent supersequence.
};

/// Computes Table-3 statistics for a GSM output.
///
/// Definitions (Sec. 6.7): a frequent sequence S is *maximal* if every
/// supersequence S' ⊒0 S is infrequent, and *closed* if every supersequence
/// has a different frequency. S is *trivial* if it can be generated from the
/// output of a standard (hierarchy-ignoring) sequence miner by generalizing
/// items.
///
/// Both pattern maps must use the same item-id space. `flat_output` is the
/// result of mining the same database with the same (σ, γ, λ) but a flat
/// hierarchy. As in the paper, closedness/maximality are evaluated within
/// the mined set (length-λ boundary effects are shared with the paper).
///
/// Implementation: S ⊑0 S' holds iff S matches a *contiguous* window of S'
/// with itemwise generalization, so every witness is reachable through
/// one-step neighbours (drop an end item / generalize one item one level),
/// all of which are frequent by Lemma 1 and hence present in the output.
/// One marking pass over the output therefore suffices; the trivial set is
/// the closure of the flat output under one-step generalization (every
/// element of which is frequent, hence also in the output).
OutputStatsResult ComputeOutputStats(const PatternMap& gsm_output,
                                     const PatternMap& flat_output,
                                     const Hierarchy& h);

/// Remaps the item ids of every pattern via `id_map` (old id -> new id);
/// used to translate between the rank spaces of different preprocessing
/// runs (e.g. flat vs hierarchical). Throws std::invalid_argument if a
/// pattern contains an id without a mapping.
PatternMap RemapPatterns(const PatternMap& patterns,
                         const std::vector<ItemId>& id_map);

}  // namespace lash

#endif  // LASH_STATS_OUTPUT_STATS_H_
