#include "stats/filters.h"

#include <algorithm>

namespace lash {

namespace {

// Shared marking pass: for every output pattern P, visits each one-step
// reduction R (end-item drop or single one-level generalization); if R is
// in the output, P witnesses R ⊑0 P. `fn(R_iterator, P_frequency)` decides
// what to record.
template <typename Fn>
void MarkOneStepReductions(const PatternMap& output, const Hierarchy& h,
                           Fn fn) {
  Sequence copy;
  for (const auto& [p, freq] : output) {
    if (p.size() >= 3) {
      copy.assign(p.begin() + 1, p.end());
      auto it = output.find(copy);
      if (it != output.end()) fn(it, freq);
      copy.assign(p.begin(), p.end() - 1);
      it = output.find(copy);
      if (it != output.end()) fn(it, freq);
    }
    copy = p;
    for (size_t i = 0; i < p.size(); ++i) {
      ItemId parent = h.Parent(p[i]);
      if (parent == kInvalidItem) continue;
      copy[i] = parent;
      auto it = output.find(copy);
      if (it != output.end()) fn(it, freq);
      copy[i] = p[i];
    }
  }
}

}  // namespace

SequenceSet NonMaximalPatterns(const PatternMap& output, const Hierarchy& h) {
  SequenceSet marked;
  MarkOneStepReductions(output, h, [&](PatternMap::const_iterator it,
                                       Frequency) { marked.insert(it->first); });
  return marked;
}

SequenceSet NonClosedPatterns(const PatternMap& output, const Hierarchy& h) {
  SequenceSet marked;
  MarkOneStepReductions(output, h,
                        [&](PatternMap::const_iterator it, Frequency freq) {
                          if (it->second == freq) marked.insert(it->first);
                        });
  return marked;
}

PatternMap FilterMaximal(const PatternMap& output, const Hierarchy& h) {
  SequenceSet non_maximal = NonMaximalPatterns(output, h);
  PatternMap filtered;
  for (const auto& [s, freq] : output) {
    if (!non_maximal.contains(s)) filtered.emplace(s, freq);
  }
  return filtered;
}

PatternMap FilterClosed(const PatternMap& output, const Hierarchy& h) {
  SequenceSet non_closed = NonClosedPatterns(output, h);
  PatternMap filtered;
  for (const auto& [s, freq] : output) {
    if (!non_closed.contains(s)) filtered.emplace(s, freq);
  }
  return filtered;
}

std::vector<std::pair<Sequence, Frequency>> TopK(const PatternMap& output,
                                                 size_t k) {
  std::vector<std::pair<Sequence, Frequency>> all(output.begin(), output.end());
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  all.resize(take);
  return all;
}

}  // namespace lash
