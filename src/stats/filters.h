#ifndef LASH_STATS_FILTERS_H_
#define LASH_STATS_FILTERS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/hierarchy.h"
#include "util/hash.h"

namespace lash {

/// Redundancy filters over a *complete* GSM output (every frequent pattern
/// of admissible length present — which LASH guarantees).
///
/// Sec. 6.7 of the paper measures closed/maximal fractions and names direct
/// mining of closed/maximal generalized sequences as future work; these
/// post-processing filters realize that output reduction exactly. Both run
/// in O(|output| * λ) via the one-step-neighbour marking argument (each
/// witness S' ⊒0 S is reachable through frequent one-step intermediates,
/// all of which are in the output by Lemma 1).

/// Marks every pattern with a frequent supersequence (S ⊑0 S', S' in the
/// output, S' != S).
SequenceSet NonMaximalPatterns(const PatternMap& output, const Hierarchy& h);

/// Marks every pattern with an *equal-frequency* frequent supersequence.
SequenceSet NonClosedPatterns(const PatternMap& output, const Hierarchy& h);

/// Keeps only maximal patterns.
PatternMap FilterMaximal(const PatternMap& output, const Hierarchy& h);

/// Keeps only closed patterns.
PatternMap FilterClosed(const PatternMap& output, const Hierarchy& h);

/// The `k` most frequent patterns (ties broken lexicographically for
/// determinism), as (sequence, frequency) pairs in descending frequency.
std::vector<std::pair<Sequence, Frequency>> TopK(const PatternMap& output,
                                                 size_t k);

}  // namespace lash

#endif  // LASH_STATS_FILTERS_H_
